// Quickstart: co-optimize wrappers and the TAM for the d695 benchmark SOC
// and print the resulting test schedule.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [tam_width]
#include <cstdio>
#include <cstdlib>

#include "baseline/lower_bound.h"
#include "core/gantt.h"
#include "core/optimizer.h"
#include "core/validator.h"
#include "soc/benchmarks.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace soctest;

  const int tam_width = argc > 1 ? std::atoi(argv[1]) : 32;
  if (tam_width < 1) {
    std::fprintf(stderr, "usage: %s [tam_width >= 1]\n", argv[0]);
    return 1;
  }

  // 1. Load an SOC. d695 ships with the library; your own designs can be
  //    loaded from .soc files (see examples/custom_soc.cpp).
  const TestProblem problem = TestProblem::FromSoc(MakeD695());

  // 2. Configure and run the co-optimizer.
  OptimizerParams params;
  params.tam_width = tam_width;
  params.s_percent = 5.0;  // preferred width: within 5% of the time at w=64
  params.delta = 1;        // bump to the top Pareto width when 1 wire away

  const OptimizerResult result = Optimize(problem, params);
  if (!result.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n", result.error->c_str());
    return 1;
  }

  // 3. Inspect the result.
  std::printf("%s @ W=%d: makespan %s cycles, TAM utilization %.1f%%\n\n",
              problem.soc.name().c_str(), tam_width,
              WithCommas(result.makespan).c_str(),
              100.0 * result.schedule.Utilization());

  std::printf("%-10s %9s %9s %12s\n", "core", "pref.w", "assign.w", "time");
  for (const auto& a : result.assignments) {
    std::printf("%-10s %9d %9d %12s\n",
                problem.soc.core(a.core).name.c_str(), a.preferred_width,
                a.assigned_width, WithCommas(a.test_time).c_str());
  }

  const LowerBoundBreakdown lb = ComputeLowerBound(problem.soc, tam_width, 64);
  std::printf("\nlower bound: %s cycles (%.2f%% above LB)\n",
              WithCommas(lb.value()).c_str(),
              100.0 * (static_cast<double>(result.makespan) /
                           static_cast<double>(lb.value()) -
                       1.0));

  // 4. Certify the schedule against every constraint.
  const auto violations = ValidateSchedule(problem, result.schedule);
  std::printf("schedule valid: %s\n\n", violations.empty() ? "yes" : "NO");
  if (!violations.empty()) {
    std::fputs(FormatViolations(violations).c_str(), stderr);
    return 1;
  }

  // 5. Visualize.
  std::fputs(RenderCoreGantt(problem.soc, result.schedule).c_str(), stdout);
  return 0;
}
