// Constraint-driven preemptive scheduling (paper Problem 2) on a hierarchical
// SOC with precedence constraints (memories tested first), a shared BIST
// engine, a power budget, and selective preemption.
//
// Run: ./build/examples/constrained_schedule
#include <cstdio>

#include "core/gantt.h"
#include "core/optimizer.h"
#include "core/validator.h"
#include "soc/benchmarks.h"
#include "util/strings.h"

using namespace soctest;

namespace {

CoreSpec MakeCore(const std::string& name, int io, std::int64_t patterns,
                  std::vector<int> chains) {
  CoreSpec c;
  c.name = name;
  c.num_inputs = io;
  c.num_outputs = io;
  c.num_patterns = patterns;
  c.scan_chain_lengths = std::move(chains);
  return c;
}

}  // namespace

int main() {
  // --- Build a small hierarchical SOC -------------------------------------
  Soc soc("constrained_demo");

  // Two embedded memories, tested and diagnosed first so they can back
  // system test later (a common precedence policy the paper cites).
  const CoreId mem0 = soc.AddCore(MakeCore("mem0", 20, 80, {}));
  const CoreId mem1 = soc.AddCore(MakeCore("mem1", 24, 60, {}));

  // A hierarchical parent with two child cores: the parent's Intest cannot
  // overlap the children's tests (their wrappers must be in Extest mode).
  const CoreId fabric = soc.AddCore(MakeCore("fabric", 30, 250, {40, 40, 36}));
  CoreSpec cpu = MakeCore("cpu", 24, 300, {50, 50, 44, 44});
  cpu.parent = fabric;
  cpu.max_preemptions = 2;
  const CoreId cpu_id = soc.AddCore(cpu);
  CoreSpec dsp = MakeCore("dsp", 16, 220, {32, 32, 30});
  dsp.parent = fabric;
  dsp.max_preemptions = 2;
  const CoreId dsp_id = soc.AddCore(dsp);

  // Two cores sharing one BIST engine (resource id 1): never concurrent.
  CoreSpec bist_a = MakeCore("bist_a", 6, 500, {24});
  bist_a.resources = {1};
  const CoreId bist_a_id = soc.AddCore(bist_a);
  CoreSpec bist_b = MakeCore("bist_b", 6, 420, {20, 20});
  bist_b.resources = {1};
  const CoreId bist_b_id = soc.AddCore(bist_b);

  // A large scan core allowed up to 3 preemptions.
  CoreSpec big = MakeCore("big_scan", 40, 400, {60, 60, 60, 52, 52});
  big.max_preemptions = 3;
  const CoreId big_id = soc.AddCore(big);

  // --- Constraints ---------------------------------------------------------
  TestProblem problem = TestProblem::FromSoc(std::move(soc));
  problem.precedence.Add(mem0, cpu_id);  // memories before the big digitals
  problem.precedence.Add(mem1, cpu_id);
  problem.precedence.Add(mem0, dsp_id);
  problem.power = PowerModel::FromSoc(problem.soc, /*budget_factor=*/1.4);

  std::printf("SOC with %d cores, %zu precedence edges, %zu concurrency "
              "pairs, Pmax=%lld\n\n",
              problem.soc.num_cores(), problem.precedence.num_edges(),
              problem.concurrency.num_pairs(),
              static_cast<long long>(problem.power.pmax()));

  // --- Schedule: non-preemptive vs. preemptive -----------------------------
  OptimizerParams params;
  params.tam_width = 24;

  params.allow_preemption = false;
  const auto np = OptimizeBestOverParams(problem, params);
  params.allow_preemption = true;
  const auto pre = OptimizeBestOverParams(problem, params);
  if (!np.ok() || !pre.ok()) {
    std::fprintf(stderr, "scheduling failed\n");
    return 1;
  }

  std::printf("non-preemptive makespan: %s cycles\n",
              WithCommas(np.makespan).c_str());
  std::printf("preemptive makespan:     %s cycles (%d preemptions, %s "
              "overhead cycles)\n\n",
              WithCommas(pre.makespan).c_str(),
              pre.schedule.TotalPreemptions(),
              WithCommas([&] {
                Time o = 0;
                for (const auto& e : pre.schedule.entries()) {
                  o += e.overhead_cycles;
                }
                return o;
              }()).c_str());

  // --- Certify every constraint --------------------------------------------
  for (const auto* result : {&np, &pre}) {
    const auto violations = ValidateSchedule(problem, result->schedule);
    if (!violations.empty()) {
      std::fprintf(stderr, "INVALID SCHEDULE:\n%s",
                   FormatViolations(violations).c_str());
      return 1;
    }
  }
  std::printf("both schedules satisfy precedence, hierarchy, BIST-resource "
              "and power constraints\n\n");

  // Show where constraints bit: BIST cores serialized, memories first.
  const auto& s = pre.schedule;
  std::printf("mem0 ends %s, cpu begins %s (precedence)\n",
              WithCommas(s.FindCore(mem0)->EndTime()).c_str(),
              WithCommas(s.FindCore(cpu_id)->BeginTime()).c_str());
  std::printf("bist_a [%s, %s) vs bist_b [%s, %s) (shared engine)\n\n",
              WithCommas(s.FindCore(bist_a_id)->BeginTime()).c_str(),
              WithCommas(s.FindCore(bist_a_id)->EndTime()).c_str(),
              WithCommas(s.FindCore(bist_b_id)->BeginTime()).c_str(),
              WithCommas(s.FindCore(bist_b_id)->EndTime()).c_str());
  (void)big_id;

  std::fputs(RenderCoreGantt(problem.soc, s).c_str(), stdout);
  return 0;
}
