// Loading your own SOC from a .soc file and running the full pipeline:
// parse -> co-optimize -> validate -> wire assignment -> Gantt.
//
// Run: ./build/examples/custom_soc [path/to/design.soc] [tam_width]
// With no arguments a demo file is written to the current directory first.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/gantt.h"
#include "core/optimizer.h"
#include "core/validator.h"
#include "core/wire_assign.h"
#include "soc/soc_parser.h"
#include "util/strings.h"

using namespace soctest;

namespace {

constexpr const char* kDemoSoc = R"(# demo_design.soc — annotated example of the .soc format
soc demo_design

core riscv_cpu
  inputs 38
  outputs 32
  patterns 220
  scanchains 64 64 60 60 56
  maxpreemptions 2      # the integrator allows two preemptions
end

core l2_sram
  inputs 28
  outputs 28
  patterns 90           # memory BIST-like pattern set
end

core dsp            # nested under the cpu subsystem in the design hierarchy
  inputs 20
  outputs 24
  patterns 160
  scanchains 40 40 36
  parent riscv_cpu      # => never tested concurrently with riscv_cpu
end

core serdes_a
  inputs 6
  outputs 6
  patterns 300
  scanchains 18
  resources 1           # shares the analog BIST engine with serdes_b
end

core serdes_b
  inputs 6
  outputs 6
  patterns 280
  scanchains 16
  resources 1
end

precedence l2_sram < riscv_cpu   # test the memory first
powermax 900
)";

}  // namespace

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "";
  const int tam_width = argc > 2 ? std::atoi(argv[2]) : 16;

  if (path.empty()) {
    path = "demo_design.soc";
    std::ofstream f(path);
    f << kDemoSoc;
    std::printf("wrote annotated demo to %s\n\n", path.c_str());
  }

  // --- Parse ---------------------------------------------------------------
  const ParseResult parsed = ParseSocFile(path);
  if (const auto* err = std::get_if<ParseError>(&parsed)) {
    std::fprintf(stderr, "%s:%d: %s\n", path.c_str(), err->line,
                 err->message.c_str());
    return 1;
  }
  const TestProblem problem =
      TestProblem::FromParsed(std::get<ParsedSoc>(parsed));
  std::printf("parsed %s: %d cores, %zu precedence edges, %zu concurrency "
              "pairs, Pmax=%lld\n\n",
              problem.soc.name().c_str(), problem.soc.num_cores(),
              problem.precedence.num_edges(), problem.concurrency.num_pairs(),
              static_cast<long long>(problem.power.pmax()));

  // --- Co-optimize wrappers + TAM + schedule -------------------------------
  OptimizerParams params;
  params.tam_width = tam_width;
  params.allow_preemption = true;
  const OptimizerResult result = OptimizeBestOverParams(problem, params);
  if (!result.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n", result.error->c_str());
    return 1;
  }
  std::printf("W=%d: makespan %s cycles, utilization %.1f%%\n\n", tam_width,
              WithCommas(result.makespan).c_str(),
              100.0 * result.schedule.Utilization());

  // --- Validate ------------------------------------------------------------
  const auto violations = ValidateSchedule(problem, result.schedule);
  if (!violations.empty()) {
    std::fprintf(stderr, "INVALID SCHEDULE:\n%s",
                 FormatViolations(violations).c_str());
    return 1;
  }
  std::printf("all constraints verified (precedence, hierarchy, shared BIST, "
              "power, width)\n\n");

  // --- Physical wires + Gantt ----------------------------------------------
  const auto wires = AssignWires(result.schedule);
  if (!wires) {
    std::fprintf(stderr, "wire assignment failed\n");
    return 1;
  }
  std::fputs(RenderCoreGantt(problem.soc, result.schedule).c_str(), stdout);
  std::printf("\n");
  std::fputs(
      RenderWireGantt(problem.soc, result.schedule, *wires).c_str(), stdout);
  return 0;
}
