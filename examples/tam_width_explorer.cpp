// TAM width exploration (paper Problem 3): sweep W, record testing time and
// tester data volume, pick effective widths for several rho values, and dump
// everything as CSV for plotting. Also shows the multisite-testing payoff of
// a narrow TAM.
//
// Run: ./build/examples/tam_width_explorer [soc] [max_width] [csv_path]
//   soc: d695 (default), p22810s, p34392s, p93791s
#include <cstdio>
#include <cstdlib>

#include "soc/benchmarks.h"
#include "tdv/effective_width.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

using namespace soctest;

int main(int argc, char** argv) {
  const std::string soc_name = argc > 1 ? argv[1] : "d695";
  const int max_width = argc > 2 ? std::atoi(argv[2]) : 64;
  const std::string csv_path =
      argc > 3 ? argv[3] : ("tam_sweep_" + soc_name + ".csv");

  const Soc soc = BenchmarkByName(soc_name);
  if (soc.num_cores() == 0) {
    std::fprintf(stderr,
                 "unknown SOC '%s' (try d695, p22810s, p34392s, p93791s)\n",
                 soc_name.c_str());
    return 1;
  }

  const TestProblem problem = TestProblem::FromSoc(soc);
  SweepOptions options;
  options.min_width = 1;
  options.max_width = max_width;
  std::printf("sweeping W = 1..%d on %s (%d cores)...\n", max_width,
              soc.name().c_str(), soc.num_cores());
  const auto sweep = SweepWidths(problem, options);
  if (sweep.empty()) {
    std::fprintf(stderr, "sweep produced no points\n");
    return 1;
  }

  // CSV dump for external plotting.
  CsvWriter csv({"w", "time_cycles", "volume_bits", "cost_rho_0.25",
                 "cost_rho_0.50", "cost_rho_0.75"});
  const auto c25 = CostCurve(sweep, 0.25);
  const auto c50 = CostCurve(sweep, 0.50);
  const auto c75 = CostCurve(sweep, 0.75);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    csv.Add(sweep[i].tam_width, sweep[i].test_time, sweep[i].data_volume,
            StrFormat("%.4f", c25[i].cost), StrFormat("%.4f", c50[i].cost),
            StrFormat("%.4f", c75[i].cost));
  }
  if (csv.WriteFile(csv_path)) {
    std::printf("wrote %zu rows to %s\n\n", csv.rows(), csv_path.c_str());
  }

  const SweepPoint t_min = MinTimePoint(sweep);
  const SweepPoint d_min = MinVolumePoint(sweep);
  std::printf("T_min = %s cycles at W=%d\n", WithCommas(t_min.test_time).c_str(),
              t_min.tam_width);
  std::printf("D_min = %s bits at W=%d\n\n",
              WithCommas(d_min.data_volume).c_str(), d_min.tam_width);

  TablePrinter table({"rho", "W_E", "C_min", "T (cycles)", "D (bits)"});
  for (double rho : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const TradeoffRow row = MakeTradeoffRow(sweep, rho);
    table.AddRow({StrFormat("%.2f", rho), std::to_string(row.effective_width),
                  StrFormat("%.3f", row.min_cost),
                  WithCommas(row.time_at_effective),
                  WithCommas(row.volume_at_effective)});
  }
  std::fputs(table.ToString().c_str(), stdout);

  // Multisite testing: why a narrower TAM can win for production batches.
  std::printf("\nmultisite view (96-channel tester, batch of 24 devices):\n");
  TablePrinter multi({"config", "W", "sites", "batch time (cycles)"},
                     {Align::kLeft});
  const int channels = 96;
  const int devices = 24;
  const TradeoffRow narrow = MakeTradeoffRow(sweep, 0.25);
  const SweepPoint narrow_point{narrow.effective_width, narrow.time_at_effective,
                                narrow.volume_at_effective};
  multi.AddRow({"fastest-per-device", std::to_string(t_min.tam_width),
                std::to_string(channels / t_min.tam_width),
                WithCommas(MultisiteBatchTime(t_min, channels, devices))});
  multi.AddRow({"effective (rho=0.25)", std::to_string(narrow_point.tam_width),
                std::to_string(channels / narrow_point.tam_width),
                WithCommas(MultisiteBatchTime(narrow_point, channels, devices))});
  std::fputs(multi.ToString().c_str(), stdout);
  return 0;
}
