// Quantifies the paper's Section 5 motivation for narrow TAMs:
//
//  * per-pin vector depth must be "contained to a single tester buffer" —
//    otherwise buffer reloads from the workstation dominate the test cost;
//  * in multisite testing, a device using fewer tester channels lets more
//    devices run in parallel, cutting production-batch test time.
//
// The physical ATE is simulated by tdv/ate_model (see DESIGN.md's
// substitution table). For each benchmark SOC this bench sweeps W and prints
// sites, reload counts, per-device and batch cost, and the batch-optimal
// width — which lands well below the time-optimal width.
#include <cstdio>

#include "soc/benchmarks.h"
#include "tdv/ate_model.h"
#include "tdv/effective_width.h"
#include "util/strings.h"
#include "util/table.h"

using namespace soctest;

int main() {
  AteParams ate;
  ate.channels = 96;
  ate.reload_cost_cycles = 2'000'000;
  const int batch = 48;  // devices per production batch

  std::printf("=== Multisite / ATE buffer analysis (96-channel tester, "
              "batch of %d devices) ===\n\n",
              batch);

  for (const auto& soc : AllBenchmarkSocs()) {
    const TestProblem problem = TestProblem::FromSoc(soc);
    SweepOptions options;
    options.min_width = 8;
    options.max_width = 64;
    const auto sweep = SweepWidths(problem, options);
    if (sweep.empty()) return 1;

    // Size the buffer so that mid-sweep depths straddle it: half the depth
    // at the narrowest width.
    ate.buffer_depth_bits = sweep.front().test_time / 2;

    TablePrinter table({"W", "T (cycles)", "sites", "reloads/pin",
                        "per-device", "batch (cycles)", "1-buffer?"});
    for (const auto& point : sweep) {
      if (point.tam_width % 8 != 0) continue;  // table readability
      const AteCost cost = EvaluateAte(point, ate, batch);
      table.AddRow({std::to_string(point.tam_width),
                    WithCommas(point.test_time), std::to_string(cost.sites),
                    std::to_string(cost.reloads_per_pin),
                    WithCommas(cost.per_device_cycles),
                    WithCommas(cost.batch_cycles),
                    cost.fits_single_buffer ? "yes" : "no"});
    }
    std::printf("--- %s (buffer %s bits/channel) ---\n", soc.name().c_str(),
                WithCommas(ate.buffer_depth_bits).c_str());
    std::fputs(table.ToString().c_str(), stdout);

    const SweepPoint t_min = MinTimePoint(sweep);
    const std::size_t best = BestAtePoint(sweep, ate, batch);
    const AteCost best_cost = EvaluateAte(sweep[best], ate, batch);
    const AteCost tmin_cost = EvaluateAte(t_min, ate, batch);
    std::printf(
        "time-optimal W=%d gives batch %s cycles; batch-optimal W=%d gives "
        "%s cycles (%.2fx faster for the batch)\n\n",
        t_min.tam_width, WithCommas(tmin_cost.batch_cycles).c_str(),
        sweep[best].tam_width, WithCommas(best_cost.batch_cycles).c_str(),
        static_cast<double>(tmin_cost.batch_cycles) /
            static_cast<double>(best_cost.batch_cycles));

    // Machine-readable lines in the run_all.sh format every other bench
    // emits: the batch-optimal point's batch cost is this bench's makespan.
    std::printf("MAKESPAN soc=%s w=%d mode=multisite cycles=%lld\n",
                soc.name().c_str(), sweep[best].tam_width,
                static_cast<long long>(best_cost.batch_cycles));
    std::printf("STATS bench=multisite_ate soc=%s time_opt_w=%d "
                "batch_opt_w=%d batch_cycles=%lld sites=%d\n",
                soc.name().c_str(), t_min.tam_width, sweep[best].tam_width,
                static_cast<long long>(best_cost.batch_cycles),
                best_cost.sites);
  }
  return 0;
}
