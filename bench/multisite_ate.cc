// Quantifies the paper's Section 5 motivation for narrow TAMs:
//
//  * per-pin vector depth must be "contained to a single tester buffer" —
//    otherwise buffer reloads from the workstation dominate the test cost;
//  * in multisite testing, a device using fewer tester channels lets more
//    devices run in parallel, cutting production-batch test time.
//
// The physical ATE is simulated by tdv/ate_model (see DESIGN.md's
// substitution table). For each benchmark SOC this bench sweeps W and prints
// sites, reload counts, per-device and batch cost, and the batch-optimal
// width — which lands well below the time-optimal width.
// Part 2 drives the sharing end-to-end: N sites test d695 concurrently on
// one tester whose rail round-robins its full cap across the sites — each
// window, one site gets the high rail, the rest are pinned at the serial
// floor. Each site is a BatchRequest with the site's rail timeline as its
// budget= override, served through BatchScheduler, and every per-site
// schedule is validator-verified against that site's timeline.
#include <algorithm>
#include <cstdio>

#include "core/validator.h"
#include "service/batch_scheduler.h"
#include "soc/benchmarks.h"
#include "tdv/ate_model.h"
#include "tdv/effective_width.h"
#include "util/strings.h"
#include "util/table.h"

using namespace soctest;

namespace {

// Site `site`'s rail timeline: windows of `span` cycles; window k carries the
// high cap iff k % sites == site, the serial floor otherwise. After `horizon`
// the rail stays high for everyone (the batch has drained).
PowerBudget SiteRail(int site, int sites, std::int64_t high, std::int64_t low,
                     Time span, Time horizon) {
  std::vector<PowerBudget::Segment> segments;
  Time t = 0;
  for (int k = 0; t < horizon; ++k, t += span) {
    const std::int64_t cap = (k % sites == site) ? high : low;
    if (segments.empty() || segments.back().pmax != cap) {
      segments.push_back({t, cap});
    }
  }
  if (segments.back().pmax != high) segments.push_back({t, high});
  return PowerBudget::FromSegments(std::move(segments)).value();
}

int RunDrivenSharedRail() {
  // W=64 is where d695's factor-2 rail actually binds (at narrow widths the
  // schedule is width-bound and every rail behaves like the floor); each
  // rail turn spans one full solo-test length, so the turn order staggers
  // the sites' completions instead of averaging out.
  const int sites = 4;
  const int width = 64;
  const ParsedSoc d695 = [] {
    ParsedSoc parsed;
    parsed.soc = MakeD695();
    return parsed;
  }();
  const PowerModel power = PowerModel::FromSoc(d695.soc, 2.0);
  const std::int64_t high = power.pmax();
  const std::int64_t low = power.MaxCorePower();

  BatchOptions options;
  options.threads = 1;
  options.dedup = true;
  BatchScheduler scheduler(options);

  // Baseline: one site owning the whole rail, to size the windows.
  BatchRequest base;
  base.soc_spec = "d695";
  base.soc = d695;
  base.tam_width = width;
  base.budget = PowerBudget::Constant(high).segments();
  const BatchOutcome solo = scheduler.Run({base});
  if (!solo.results[0].ok()) {
    std::fprintf(stderr, "driven multisite baseline failed: %s\n",
                 solo.results[0].error->c_str());
    return 1;
  }
  const Time base_makespan = solo.results[0].makespan;
  const Time span = base_makespan;  // one full solo test per rail turn
  const Time horizon = sites * span;

  std::vector<BatchRequest> requests;
  for (int site = 0; site < sites; ++site) {
    BatchRequest req = base;
    req.budget = SiteRail(site, sites, high, low, span, horizon).segments();
    requests.push_back(std::move(req));
  }
  const BatchOutcome outcome = scheduler.Run(requests);

  std::printf("=== Driven shared rail: %d sites x d695, W=%d, rail "
              "round-robin (high %s, floor %s, window %s cycles) ===\n\n",
              sites, width, WithCommas(high).c_str(), WithCommas(low).c_str(),
              WithCommas(span).c_str());
  int status = 0;
  Time batch_makespan = 0;
  for (int site = 0; site < sites; ++site) {
    const BatchItemResult& result = outcome.results[site];
    if (!result.ok()) {
      std::fprintf(stderr, "site %d failed: %s\n", site,
                   result.error->c_str());
      status = 1;
      continue;
    }
    TestProblem problem = TestProblem::FromParsed(d695);
    problem.power = WithBudget(
        problem.soc, problem.power,
        PowerBudget::FromSegments(requests[site].budget).value());
    const auto violations =
        ValidateSchedule(problem, result.result.schedule);
    if (!violations.empty()) {
      std::fprintf(stderr, "site %d schedule INVALID\n%s", site,
                   FormatViolations(violations).c_str());
      status = 1;
      continue;
    }
    batch_makespan = std::max(batch_makespan, result.makespan);
    std::printf("site %d finishes at %s cycles (+%s over solo rail)\n", site,
                WithCommas(result.makespan).c_str(),
                WithCommas(result.makespan - base_makespan).c_str());
    std::printf("MAKESPAN soc=d695 w=%d mode=multisite_site%d cycles=%lld\n",
                width, site, static_cast<long long>(result.makespan));
  }
  std::printf("STATS bench=multisite_driven sites=%d rail_high=%lld "
              "rail_low=%lld span=%lld solo=%lld batch_makespan=%lld "
              "served=%d\n",
              sites, static_cast<long long>(high),
              static_cast<long long>(low), static_cast<long long>(span),
              static_cast<long long>(base_makespan),
              static_cast<long long>(batch_makespan), outcome.served);
  std::printf("\n");
  return status;
}

}  // namespace

int main() {
  AteParams ate;
  ate.channels = 96;
  ate.reload_cost_cycles = 2'000'000;
  const int batch = 48;  // devices per production batch

  std::printf("=== Multisite / ATE buffer analysis (96-channel tester, "
              "batch of %d devices) ===\n\n",
              batch);

  for (const auto& soc : AllBenchmarkSocs()) {
    const TestProblem problem = TestProblem::FromSoc(soc);
    SweepOptions options;
    options.min_width = 8;
    options.max_width = 64;
    const auto sweep = SweepWidths(problem, options);
    if (sweep.empty()) return 1;

    // Size the buffer so that mid-sweep depths straddle it: half the depth
    // at the narrowest width.
    ate.buffer_depth_bits = sweep.front().test_time / 2;

    TablePrinter table({"W", "T (cycles)", "sites", "reloads/pin",
                        "per-device", "batch (cycles)", "1-buffer?"});
    for (const auto& point : sweep) {
      if (point.tam_width % 8 != 0) continue;  // table readability
      const AteCost cost = EvaluateAte(point, ate, batch);
      table.AddRow({std::to_string(point.tam_width),
                    WithCommas(point.test_time), std::to_string(cost.sites),
                    std::to_string(cost.reloads_per_pin),
                    WithCommas(cost.per_device_cycles),
                    WithCommas(cost.batch_cycles),
                    cost.fits_single_buffer ? "yes" : "no"});
    }
    std::printf("--- %s (buffer %s bits/channel) ---\n", soc.name().c_str(),
                WithCommas(ate.buffer_depth_bits).c_str());
    std::fputs(table.ToString().c_str(), stdout);

    const SweepPoint t_min = MinTimePoint(sweep);
    const std::size_t best = BestAtePoint(sweep, ate, batch);
    const AteCost best_cost = EvaluateAte(sweep[best], ate, batch);
    const AteCost tmin_cost = EvaluateAte(t_min, ate, batch);
    std::printf(
        "time-optimal W=%d gives batch %s cycles; batch-optimal W=%d gives "
        "%s cycles (%.2fx faster for the batch)\n\n",
        t_min.tam_width, WithCommas(tmin_cost.batch_cycles).c_str(),
        sweep[best].tam_width, WithCommas(best_cost.batch_cycles).c_str(),
        static_cast<double>(tmin_cost.batch_cycles) /
            static_cast<double>(best_cost.batch_cycles));

    // Machine-readable lines in the run_all.sh format every other bench
    // emits: the batch-optimal point's batch cost is this bench's makespan.
    std::printf("MAKESPAN soc=%s w=%d mode=multisite cycles=%lld\n",
                soc.name().c_str(), sweep[best].tam_width,
                static_cast<long long>(best_cost.batch_cycles));
    std::printf("STATS bench=multisite_ate soc=%s time_opt_w=%d "
                "batch_opt_w=%d batch_cycles=%lld sites=%d\n",
                soc.name().c_str(), t_min.tam_width, sweep[best].tam_width,
                static_cast<long long>(best_cost.batch_cycles),
                best_cost.sites);
  }
  std::printf("\n");
  return RunDrivenSharedRail();
}
