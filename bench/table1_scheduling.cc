// Reproduces paper Table 1: wrapper/TAM co-optimization and test scheduling.
//
// For every benchmark SOC and every TAM width the paper tabulates, prints:
//   * the lower bound on SOC test time,
//   * non-preemptive scheduling (best over the paper's S/delta grid),
//   * preemptive scheduling (maxpreempts=2 for the larger cores), and
//   * preemptive + power-constrained scheduling (Pmax = 1.5 * peak power).
// Every schedule is validated before its number is reported, and per-row CPU
// time is measured (the paper's "< 5 s" claim refers to a single run; the
// sweep column shows the full S/delta/sizing/rank grid).
#include <chrono>
#include <cstdio>

#include "baseline/lower_bound.h"
#include "core/optimizer.h"
#include "core/validator.h"
#include "soc/benchmarks.h"
#include "util/strings.h"
#include "util/table.h"

using namespace soctest;

namespace {

struct RowResult {
  Time value = 0;
  bool valid = false;
  double sweep_seconds = 0.0;
};

// Runs the restart-grid search against pre-compiled wrapper artifacts on all
// hardware threads (threads = 0). The result is bit-identical to the serial
// sweep — the driver's (makespan, config-index) tie-break guarantees it.
RowResult RunMode(const TestProblem& problem, const CompiledProblem& compiled,
                  int tam_width, bool preemptive) {
  OptimizerParams params;
  params.tam_width = tam_width;
  params.allow_preemption = preemptive;
  const auto t0 = std::chrono::steady_clock::now();
  const OptimizerResult result =
      OptimizeBestOverParams(compiled, params, /*threads=*/0);
  const auto t1 = std::chrono::steady_clock::now();

  RowResult row;
  row.sweep_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (!result.ok()) return row;
  row.value = result.makespan;
  ValidationOptions options;
  options.check_preemption_limits = preemptive;
  row.valid = ValidateSchedule(problem, result.schedule, options).empty();
  return row;
}

// Machine-readable quality record: bench/run_all.sh collects these lines
// into bench_results/BENCH_*.json so makespan regressions show up in the
// trajectory alongside wall-clock.
void EmitMakespan(const char* soc, int w, const char* mode, Time value) {
  std::printf("MAKESPAN soc=%s w=%d mode=%s cycles=%lld\n", soc, w, mode,
              static_cast<long long>(value));
}

}  // namespace

int main() {
  std::printf(
      "=== Table 1: wrapper/TAM co-optimization and test scheduling ===\n"
      "(times in cycles; best over S in [1,10], delta in [0,4], both sizing\n"
      " modes and both admission ranks; schedules validated before "
      "reporting)\n\n");

  TablePrinter table({"SOC", "W", "lower bound", "non-preemptive",
                      "preemptive", "pre+power", "LB gap np", "sweep s"},
                     {Align::kLeft});

  for (const auto& soc : AllBenchmarkSocs()) {
    const std::vector<int> widths = soc.name() == "p34392s"
                                        ? std::vector<int>{16, 24, 28, 32}
                                        : std::vector<int>{16, 32, 48, 64};
    // Compile once per problem variant; every width/mode reuses the
    // artifacts (the power-constrained variant has a different PowerModel
    // but shares nothing schedule-independent with the wrapper layer, so it
    // gets its own TestProblem and compilation).
    const TestProblem problem = MakeBenchmarkProblem(soc, false);
    const TestProblem power_problem = MakeBenchmarkProblem(soc, true);
    const CompiledProblem compiled(problem);
    const CompiledProblem power_compiled(power_problem);
    for (int w : widths) {
      const auto lb = ComputeLowerBound(soc, w, 64);
      const RowResult np = RunMode(problem, compiled, w, false);
      const RowResult pre = RunMode(problem, compiled, w, true);
      const RowResult pwr = RunMode(power_problem, power_compiled, w, true);
      if (!np.valid || !pre.valid || !pwr.valid) {
        std::fprintf(stderr, "validation failed for %s W=%d\n",
                     soc.name().c_str(), w);
        return 1;
      }
      EmitMakespan(soc.name().c_str(), w, "np", np.value);
      EmitMakespan(soc.name().c_str(), w, "pre", pre.value);
      EmitMakespan(soc.name().c_str(), w, "pre_power", pwr.value);
      const double gap =
          100.0 * (static_cast<double>(np.value) /
                       static_cast<double>(lb.value()) -
                   1.0);
      table.AddRow({soc.name(), std::to_string(w), WithCommas(lb.value()),
                    WithCommas(np.value), WithCommas(pre.value),
                    WithCommas(pwr.value), StrFormat("%.1f%%", gap),
                    StrFormat("%.2f", np.sweep_seconds + pre.sweep_seconds +
                                          pwr.sweep_seconds)});
    }
    table.AddSeparator();
  }
  std::fputs(table.ToString().c_str(), stdout);

  std::printf(
      "\nShape checks vs. the paper:\n"
      " * test time tracks the lower bound (gaps in the same few-%% band),\n"
      " * preemptive <= non-preemptive in most rows, occasionally worse due\n"
      "   to the (s_i + s_o) flush overhead per preemption,\n"
      " * power-constrained >= unconstrained in every row,\n"
      " * p34392s saturates at its bottleneck core's floor at W=32.\n");
  return 0;
}
