// Reproduces paper Table 2: TAM widths for tester data volume reduction.
//
// For every benchmark SOC: the minimum testing time T_min and tester data
// volume D_min with the widths where they occur, then for several values of
// rho the minimum normalized cost C_min, the effective TAM width W_E, and
// the resulting T and D at W_E.
#include <cstdio>

#include "soc/benchmarks.h"
#include "tdv/effective_width.h"
#include "util/strings.h"
#include "util/table.h"

using namespace soctest;

namespace {

// The rho values tabulated per SOC in the paper's Table 2.
std::vector<double> RhosFor(const std::string& soc) {
  if (soc == "d695") return {0.1, 0.3, 0.5};
  if (soc == "p22810s") return {0.01, 0.3, 0.5};
  if (soc == "p34392s") return {0.2, 0.25, 0.3};
  return {0.5, 0.95, 0.99};  // p93791s
}

}  // namespace

int main() {
  std::printf(
      "=== Table 2: TAM widths for tester data volume reduction ===\n"
      "(D = W * T tester memory bits; W_E minimizes C = rho*T/T_min + "
      "(1-rho)*D/D_min)\n\n");

  for (const auto& soc : AllBenchmarkSocs()) {
    const TestProblem problem = TestProblem::FromSoc(soc);
    SweepOptions options;
    // Sweep from the smallest practical TAM (the paper's Fig. 9 data also
    // starts around W=8): below that, a width-1 serial schedule packs
    // perfectly and pins D_min at the degenerate W=1 point.
    options.min_width = 8;
    options.max_width = 80;
    const auto sweep = SweepWidths(problem, options);
    if (sweep.empty()) {
      std::fprintf(stderr, "sweep failed for %s\n", soc.name().c_str());
      return 1;
    }
    const SweepPoint t_min = MinTimePoint(sweep);
    const SweepPoint d_min = MinVolumePoint(sweep);

    std::printf("%s:  T_min = %s cycles at W = %d;  D_min = %s bits at W = %d\n",
                soc.name().c_str(), WithCommas(t_min.test_time).c_str(),
                t_min.tam_width, WithCommas(d_min.data_volume).c_str(),
                d_min.tam_width);

    TablePrinter table(
        {"rho", "C_min", "W_E", "T at W_E (cycles)", "D at W_E (bits)"});
    for (double rho : RhosFor(soc.name())) {
      const TradeoffRow row = MakeTradeoffRow(sweep, rho);
      table.AddRow({StrFormat("%.2f", rho), StrFormat("%.3f", row.min_cost),
                    std::to_string(row.effective_width),
                    WithCommas(row.time_at_effective),
                    WithCommas(row.volume_at_effective)});
    }
    std::fputs(table.ToString().c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "Shape checks vs. the paper:\n"
      " * D_min occurs at a narrower width than T_min for every SOC,\n"
      " * raising rho moves W_E from the D-minimizing width toward the\n"
      "   T-minimizing width, letting the integrator trade test time\n"
      "   against tester memory (multisite testing).\n");
  return 0;
}
