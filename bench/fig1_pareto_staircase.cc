// Reproduces paper Fig. 1: test time vs. TAM width staircase for a single
// core, with Pareto-optimal widths marked. The paper plots Core 6 of Philips
// p93791; we plot the largest core of the p93791s stand-in plus d695's
// s38584 for reference.
#include <cstdio>

#include "soc/benchmarks.h"
#include "util/ascii_plot.h"
#include "util/strings.h"
#include "util/table.h"
#include "wrapper/pareto.h"
#include "wrapper/time_curve.h"

using namespace soctest;

namespace {

void PlotCore(const CoreSpec& core, const char* soc_name) {
  const TimeCurve curve(core, 64);
  const auto pareto = ParetoPoints(curve);

  std::printf("=== Fig. 1: testing time vs. TAM width — %s / %s ===\n",
              soc_name, core.name.c_str());
  std::printf("patterns=%lld scan_chains=%zu scan_cells=%lld io=%d/%d\n\n",
              static_cast<long long>(core.num_patterns),
              core.scan_chain_lengths.size(),
              static_cast<long long>(core.TotalScanCells()), core.num_inputs,
              core.num_outputs);

  // Series (CSV-style) for external plotting.
  std::printf("w,time,pareto\n");
  for (int w = 1; w <= 64; ++w) {
    bool is_pareto = false;
    for (const auto& p : pareto) is_pareto |= p.width == w;
    std::printf("%d,%lld,%d\n", w, static_cast<long long>(curve.TimeAt(w)),
                is_pareto ? 1 : 0);
  }

  AsciiPlot plot(72, 18);
  plot.SetTitle(StrFormat("\n%s: T(w) staircase ('*'), Pareto widths ('o')",
                          core.name.c_str()));
  std::vector<double> xs;
  std::vector<double> ys;
  for (int w = 1; w <= 64; ++w) {
    xs.push_back(w);
    ys.push_back(static_cast<double>(curve.TimeAt(w)));
  }
  plot.AddSeries(xs, ys, '*');
  std::vector<double> pxs;
  std::vector<double> pys;
  for (const auto& p : pareto) {
    pxs.push_back(p.width);
    pys.push_back(static_cast<double>(p.time));
  }
  plot.AddSeries(pxs, pys, 'o');
  plot.SetXLabel("TAM width (bits)");
  std::fputs(plot.Render().c_str(), stdout);

  TablePrinter table({"Pareto width", "testing time (cycles)"});
  for (const auto& p : pareto) {
    table.AddRow({std::to_string(p.width), WithCommas(p.time)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("saturation width: %d (no improvement beyond this up to 64)\n\n",
              curve.SaturationWidth());
}

}  // namespace

int main() {
  const Soc p93791s = MakeP93791s();
  CoreId biggest = 0;
  std::int64_t best_bits = 0;
  for (const auto& core : p93791s.cores()) {
    if (core.TotalTestBits() > best_bits) {
      best_bits = core.TotalTestBits();
      biggest = core.id;
    }
  }
  PlotCore(p93791s.core(biggest), "p93791s");

  const Soc d695 = MakeD695();
  PlotCore(d695.core(d695.FindCore("s38584")), "d695");
  return 0;
}
