// Heuristic-vs-optimal quality audit on small instances.
//
// The rectangle-packing problem is NP-hard, so optimality can only be
// certified where exhaustive branch-and-bound is feasible. This bench runs
// the exact packer (core/exact.h) against the heuristic on random 4-6 core
// SOCs and reports the gap distribution, plus the lower-bound looseness of
// both (how much of the heuristic's LB gap is the LB's fault vs. the
// heuristic's).
#include <cstdio>

#include "baseline/lower_bound.h"
#include "core/exact.h"
#include "core/improver.h"
#include "core/optimizer.h"
#include "soc/generator.h"
#include "util/strings.h"
#include "util/table.h"

using namespace soctest;

namespace {

Soc TinySoc(int cores, std::uint64_t seed) {
  GeneratorParams params;
  params.seed = seed;
  params.num_cores = cores;
  params.min_inputs = 2;
  params.max_inputs = 24;
  params.min_outputs = 2;
  params.max_outputs = 24;
  params.min_patterns = 5;
  params.max_patterns = 60;
  params.min_chains = 1;
  params.max_chains = 5;
  params.min_chain_len = 4;
  params.max_chain_len = 40;
  return GenerateSoc(params);
}

}  // namespace

int main() {
  std::printf("=== Exact-vs-heuristic optimality audit (small instances) ===\n\n");

  TablePrinter table({"cores", "W", "seed", "LB", "exact (opt)", "heuristic",
                      "heur/opt", "opt/LB", "B&B nodes", "warm nodes"});
  int optimal_hits = 0;
  int total = 0;
  int warm_strictly_fewer = 0;
  double worst_ratio = 1.0;
  std::int64_t nodes_cold_total = 0;
  std::int64_t nodes_warm_total = 0;
  for (int cores : {4, 5, 6}) {
    for (std::uint64_t seed : {21u, 22u, 23u, 24u}) {
      const Soc soc = TinySoc(cores, seed);
      const int w = cores + 2;
      ExactPackOptions options;
      options.max_nodes = 20'000'000;
      const auto exact = ExactPack(soc, w, options);
      if (!exact || !exact->proven_optimal) continue;

      const TestProblem problem = TestProblem::FromSoc(soc);
      const CompiledProblem compiled(problem);
      ImproverParams improver;
      improver.optimizer.tam_width = w;
      improver.iterations = 128;
      const ImproverResult improved = ImproveSchedule(compiled, improver);
      if (!improved.best.ok()) return 1;
      const OptimizerResult& heuristic = improved.best;

      // Warm start: the full heuristic pipeline's best (restart grid +
      // batched hill climb) seeds the incumbent bound, its width assignment
      // is dived first. Must reach the same proven optimum over a strictly
      // smaller tree.
      ExactPackOptions warm_options = options;
      SeedWarmStart(warm_options, heuristic);
      const auto warm = ExactPack(soc, w, warm_options);
      if (!warm || !warm->proven_optimal ||
          warm->makespan != exact->makespan) {
        std::printf("WARM-START MISMATCH on tiny-%d-%llu\n", cores,
                    static_cast<unsigned long long>(seed));
        return 1;
      }
      nodes_cold_total += exact->nodes_explored;
      nodes_warm_total += warm->nodes_explored;
      warm_strictly_fewer +=
          warm->nodes_explored < exact->nodes_explored ? 1 : 0;
      std::printf("STATS bench=exact_gap soc=tiny-%d-%llu w=%d "
                  "nodes_cold=%lld nodes_warm=%lld\n",
                  cores, static_cast<unsigned long long>(seed), w,
                  static_cast<long long>(exact->nodes_explored),
                  static_cast<long long>(warm->nodes_explored));
      const auto lb = ComputeLowerBound(soc, w, 64);
      std::printf("MAKESPAN soc=tiny-%d-%llu w=%d mode=exact cycles=%lld\n",
                  cores, static_cast<unsigned long long>(seed), w,
                  static_cast<long long>(exact->makespan));
      std::printf("MAKESPAN soc=tiny-%d-%llu w=%d mode=heuristic cycles=%lld\n",
                  cores, static_cast<unsigned long long>(seed), w,
                  static_cast<long long>(heuristic.makespan));

      const double ratio = static_cast<double>(heuristic.makespan) /
                           static_cast<double>(exact->makespan);
      worst_ratio = std::max(worst_ratio, ratio);
      optimal_hits += heuristic.makespan == exact->makespan ? 1 : 0;
      ++total;
      table.AddRow({std::to_string(cores), std::to_string(w),
                    std::to_string(seed), WithCommas(lb.value()),
                    WithCommas(exact->makespan), WithCommas(heuristic.makespan),
                    StrFormat("%.3f", ratio),
                    StrFormat("%.3f", static_cast<double>(exact->makespan) /
                                          static_cast<double>(lb.value())),
                    WithCommas(exact->nodes_explored),
                    WithCommas(warm->nodes_explored)});
    }
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf(
      "\nheuristic matched the proven optimum on %d/%d instances; worst "
      "ratio %.3f\n"
      "(tiny instances are the heuristic's worst case — on the benchmark\n"
      " SOCs its gap to the lower bound is 0-13%%, see table1_scheduling)\n",
      optimal_hits, total, worst_ratio);
  std::printf(
      "\nwarm start explored strictly fewer B&B nodes on %d/%d instances "
      "(%lld -> %lld total, -%.1f%%), identical optima everywhere\n",
      warm_strictly_fewer, total,
      static_cast<long long>(nodes_cold_total),
      static_cast<long long>(nodes_warm_total),
      nodes_cold_total > 0
          ? 100.0 * (1.0 - static_cast<double>(nodes_warm_total) /
                               static_cast<double>(nodes_cold_total))
          : 0.0);
  std::printf("STATS bench=exact_gap scope=total nodes_cold=%lld "
              "nodes_warm=%lld warm_strictly_fewer=%d instances=%d\n",
              static_cast<long long>(nodes_cold_total),
              static_cast<long long>(nodes_warm_total), warm_strictly_fewer,
              total);
  // Hard acceptance gate: the warm start must prune on EVERY audited
  // instance (equal optima are already enforced per instance above).
  if (warm_strictly_fewer != total) {
    std::printf("FAIL: warm start did not explore strictly fewer nodes on "
                "%d instance(s)\n", total - warm_strictly_fewer);
    return 1;
  }
  return 0;
}
