// Heuristic-vs-optimal quality audit on small instances.
//
// The rectangle-packing problem is NP-hard, so optimality can only be
// certified where exhaustive branch-and-bound is feasible. This bench runs
// the exact packer (core/exact.h) against the heuristic on random 4-6 core
// SOCs and reports the gap distribution, plus the lower-bound looseness of
// both (how much of the heuristic's LB gap is the LB's fault vs. the
// heuristic's).
#include <cstdio>

#include "baseline/lower_bound.h"
#include "core/exact.h"
#include "core/optimizer.h"
#include "soc/generator.h"
#include "util/strings.h"
#include "util/table.h"

using namespace soctest;

namespace {

Soc TinySoc(int cores, std::uint64_t seed) {
  GeneratorParams params;
  params.seed = seed;
  params.num_cores = cores;
  params.min_inputs = 2;
  params.max_inputs = 24;
  params.min_outputs = 2;
  params.max_outputs = 24;
  params.min_patterns = 5;
  params.max_patterns = 60;
  params.min_chains = 1;
  params.max_chains = 5;
  params.min_chain_len = 4;
  params.max_chain_len = 40;
  return GenerateSoc(params);
}

}  // namespace

int main() {
  std::printf("=== Exact-vs-heuristic optimality audit (small instances) ===\n\n");

  TablePrinter table({"cores", "W", "seed", "LB", "exact (opt)", "heuristic",
                      "heur/opt", "opt/LB", "B&B nodes"});
  int optimal_hits = 0;
  int total = 0;
  double worst_ratio = 1.0;
  for (int cores : {4, 5, 6}) {
    for (std::uint64_t seed : {21u, 22u, 23u, 24u}) {
      const Soc soc = TinySoc(cores, seed);
      const int w = cores + 2;
      ExactPackOptions options;
      options.max_nodes = 20'000'000;
      const auto exact = ExactPack(soc, w, options);
      if (!exact || !exact->proven_optimal) continue;

      const TestProblem problem = TestProblem::FromSoc(soc);
      const CompiledProblem compiled(problem);
      OptimizerParams params;
      params.tam_width = w;
      const auto heuristic =
          OptimizeBestOverParams(compiled, params, /*threads=*/0);
      if (!heuristic.ok()) return 1;
      const auto lb = ComputeLowerBound(soc, w, 64);
      std::printf("MAKESPAN soc=tiny-%d-%llu w=%d mode=exact cycles=%lld\n",
                  cores, static_cast<unsigned long long>(seed), w,
                  static_cast<long long>(exact->makespan));
      std::printf("MAKESPAN soc=tiny-%d-%llu w=%d mode=heuristic cycles=%lld\n",
                  cores, static_cast<unsigned long long>(seed), w,
                  static_cast<long long>(heuristic.makespan));

      const double ratio = static_cast<double>(heuristic.makespan) /
                           static_cast<double>(exact->makespan);
      worst_ratio = std::max(worst_ratio, ratio);
      optimal_hits += heuristic.makespan == exact->makespan ? 1 : 0;
      ++total;
      table.AddRow({std::to_string(cores), std::to_string(w),
                    std::to_string(seed), WithCommas(lb.value()),
                    WithCommas(exact->makespan), WithCommas(heuristic.makespan),
                    StrFormat("%.3f", ratio),
                    StrFormat("%.3f", static_cast<double>(exact->makespan) /
                                          static_cast<double>(lb.value())),
                    WithCommas(exact->nodes_explored)});
    }
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf(
      "\nheuristic matched the proven optimum on %d/%d instances; worst "
      "ratio %.3f\n"
      "(tiny instances are the heuristic's worst case — on the benchmark\n"
      " SOCs its gap to the lower bound is 0-13%%, see table1_scheduling)\n",
      optimal_hits, total, worst_ratio);
  return 0;
}
