// Ablation study of the optimizer's heuristics (DESIGN.md design choices):
//   * idle-time rectangle insertion (paper lines 13-14, 3-wire window),
//   * the extra critical-path-safe insert/shrink fill,
//   * the width-boost for just-started cores (paper lines 15-16),
//   * the delta bump to the top Pareto width (paper Initialize lines 5-6),
//   * deadline-driven sizing vs. the paper's per-core S% sizing,
//   * preemption budgets 0/1/2/4,
//   * the improver engine's layers: fixed single-move climb vs. the UCB1
//     move portfolio, and what bounding + memoization skip.
#include <cstdio>

#include "baseline/lower_bound.h"
#include "core/improver.h"
#include "core/optimizer.h"
#include "search/driver.h"
#include "soc/benchmarks.h"
#include "soc/generator.h"
#include "util/strings.h"
#include "util/table.h"

using namespace soctest;

namespace {

Time Run(const TestProblem& problem, OptimizerParams params) {
  const auto result = Optimize(problem, params);
  return result.ok() ? result.makespan : -1;
}

}  // namespace

int main() {
  std::printf("=== Ablation: contribution of each scheduling heuristic ===\n"
              "(single run per cell: S=5, delta=1, time rank; cycles)\n\n");

  TablePrinter table({"SOC", "W", "full", "-idle_fill", "-insert_fill",
                      "-width_boost", "-all fills", "deadline sizing"},
                     {Align::kLeft});
  for (const auto& soc : AllBenchmarkSocs()) {
    const TestProblem problem = TestProblem::FromSoc(soc);
    for (int w : {24, 48}) {
      OptimizerParams base;
      base.tam_width = w;

      OptimizerParams no_idle = base;
      no_idle.enable_idle_fill = false;
      OptimizerParams no_insert = base;
      no_insert.enable_insert_fill = false;
      OptimizerParams no_boost = base;
      no_boost.enable_width_boost = false;
      OptimizerParams bare = base;
      bare.enable_idle_fill = false;
      bare.enable_insert_fill = false;
      bare.enable_width_boost = false;
      OptimizerParams deadline = base;
      deadline.deadline_sizing = true;

      table.AddRow({soc.name(), std::to_string(w),
                    WithCommas(Run(problem, base)),
                    WithCommas(Run(problem, no_idle)),
                    WithCommas(Run(problem, no_insert)),
                    WithCommas(Run(problem, no_boost)),
                    WithCommas(Run(problem, bare)),
                    WithCommas(Run(problem, deadline))});
    }
    table.AddSeparator();
  }
  std::fputs(table.ToString().c_str(), stdout);

  std::printf("\n=== Ablation: preemption budget sweep (d695, W=24) ===\n\n");
  TablePrinter pre_table({"max preemptions", "makespan", "total preemptions",
                          "overhead cycles"});
  for (int budget : {0, 1, 2, 4}) {
    Soc soc = MakeD695();
    for (int c = 0; c < soc.num_cores(); ++c) {
      soc.mutable_core(c).max_preemptions = budget;
    }
    const TestProblem problem = TestProblem::FromSoc(std::move(soc));
    OptimizerParams params;
    params.tam_width = 24;
    params.allow_preemption = budget > 0;
    const auto result = Optimize(problem, params);
    if (!result.ok()) return 1;
    Time overhead = 0;
    for (const auto& entry : result.schedule.entries()) {
      overhead += entry.overhead_cycles;
    }
    pre_table.AddRow({std::to_string(budget), WithCommas(result.makespan),
                      std::to_string(result.schedule.TotalPreemptions()),
                      WithCommas(overhead)});
  }
  std::fputs(pre_table.ToString().c_str(), stdout);

  std::printf("\n=== Ablation: delta bump (paper Initialize lines 5-6) ===\n"
              "(p34392s, the SOC whose bottleneck core motivated the "
              "heuristic; S=5)\n\n");
  TablePrinter delta_table({"W", "delta=0", "delta=1", "delta=2", "delta=4"});
  const TestProblem p34392 = TestProblem::FromSoc(MakeP34392s());
  for (int w : {24, 28, 32}) {
    std::vector<std::string> row{std::to_string(w)};
    for (int delta : {0, 1, 2, 4}) {
      OptimizerParams params;
      params.tam_width = w;
      params.delta = delta;
      row.push_back(WithCommas(Run(p34392, params)));
    }
    delta_table.AddRow(row);
  }
  std::fputs(delta_table.ToString().c_str(), stdout);

  std::printf("\n=== Ablation: restart-grid quality vs. restarts ===\n"
              "(canonical 200-config grid vs. the wide grid with rank=width,\n"
              " idle-fill slack, and preemption-budget axes; threads=0)\n\n");
  TablePrinter grid_table({"SOC", "W", "restarts 200", "makespan",
                           "restarts wide", "makespan (wide)", "gain"});
  for (const auto& soc : AllBenchmarkSocs()) {
    const TestProblem problem = TestProblem::FromSoc(soc);
    const CompiledProblem compiled(problem);
    for (int w : {24, 48}) {
      OptimizerParams base;
      base.tam_width = w;
      base.allow_preemption = true;
      SearchOptions options;
      options.threads = 0;
      const SearchOutcome narrow = RunRestartSearch(compiled, base, options);
      options.extent = GridExtent::kWide;
      const SearchOutcome wide = RunRestartSearch(compiled, base, options);
      if (!narrow.best.ok() || !wide.best.ok()) return 1;
      std::printf("MAKESPAN soc=%s w=%d mode=grid200 cycles=%lld\n",
                  soc.name().c_str(), w,
                  static_cast<long long>(narrow.best.makespan));
      std::printf("MAKESPAN soc=%s w=%d mode=gridwide cycles=%lld\n",
                  soc.name().c_str(), w,
                  static_cast<long long>(wide.best.makespan));
      std::printf("STATS bench=ablation soc=%s w=%d restarts200=%d "
                  "restartswide=%d makespan200=%lld makespanwide=%lld\n",
                  soc.name().c_str(), w, narrow.evaluated, wide.evaluated,
                  static_cast<long long>(narrow.best.makespan),
                  static_cast<long long>(wide.best.makespan));
      grid_table.AddRow(
          {soc.name(), std::to_string(w), std::to_string(narrow.evaluated),
           WithCommas(narrow.best.makespan), std::to_string(wide.evaluated),
           WithCommas(wide.best.makespan),
           StrFormat("%.2f%%",
                     100.0 * (1.0 - static_cast<double>(wide.best.makespan) /
                                        static_cast<double>(
                                            narrow.best.makespan)))});
    }
  }
  std::fputs(grid_table.ToString().c_str(), stdout);

  std::printf("\n=== Ablation: improver engine — fixed climb vs. adaptive "
              "portfolio ===\n"
              "(gen64 seed 99, W=32, 256 draws, batch 8, seed 17; accepted/"
              "attempted per move)\n\n");
  GeneratorParams gen;
  gen.seed = 99;
  gen.num_cores = 64;
  const TestProblem gen64 = TestProblem::FromSoc(GenerateSoc(gen));
  const CompiledProblem compiled64(gen64);
  TablePrinter imp_table({"mode", "final", "improved", "drawn", "evaluated",
                          "dups", "aborts", "nudge", "swap", "block"});
  const auto imp_row = [&](const char* name, const char* slug,
                           const ImproverParams& params) {
    const ImproverResult r = ImproveSchedule(compiled64, params);
    if (!r.best.ok()) return false;
    const auto frac = [&](ImproverMove m) {
      const auto i = static_cast<std::size_t>(m);
      return StrFormat("%d/%d", r.accepted[i], r.attempted[i]);
    };
    imp_table.AddRow({name, WithCommas(r.best.makespan),
                      std::to_string(r.improvements), std::to_string(r.drawn),
                      std::to_string(r.evaluated),
                      std::to_string(r.duplicates_skipped),
                      std::to_string(r.bound_aborts),
                      frac(ImproverMove::kNudge), frac(ImproverMove::kPairSwap),
                      frac(ImproverMove::kBlockPerturb)});
    std::printf("STATS bench=ablation_improver mode=%s final=%lld "
                "evaluated=%d dups=%d bound_aborts=%d\n",
                slug, static_cast<long long>(r.best.makespan), r.evaluated,
                r.duplicates_skipped, r.bound_aborts);
    return true;
  };
  ImproverParams imp;
  imp.optimizer.tam_width = 32;
  imp.iterations = 256;
  imp.batch = 8;
  imp.seed = 17;
  ImproverParams fixed_plain = imp;  // the pre-engine configuration
  fixed_plain.bound_candidates = false;
  fixed_plain.memoize = false;
  ImproverParams adaptive = imp;
  adaptive.adaptive = true;
  ImproverParams adaptive_capped = adaptive;
  adaptive_capped.max_evaluations = 24;
  if (!imp_row("fixed, no layers", "fixed_plain", fixed_plain) ||
      !imp_row("fixed + bound + memo", "fixed_layered", imp) ||
      !imp_row("adaptive (3 arms)", "adaptive", adaptive) ||
      !imp_row("adaptive, 24-eval cap", "adaptive_capped", adaptive_capped)) {
    return 1;
  }
  std::fputs(imp_table.ToString().c_str(), stdout);
  return 0;
}
