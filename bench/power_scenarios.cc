// Power/priority scenario pack: time-varying budgets and priority-class
// admission as end-to-end scheduling scenarios.
//
// Scenario 1 (throttling windows): each benchmark SOC is scheduled under a
// constant cap, then under a throttling-window timeline (alternating
// high/low rail caps, low pinned at the serial floor) sized off the
// constant-cap makespan so the drops land mid-schedule. Every throttled
// schedule is validator-verified against the timeline; the MAKESPAN lines
// carry both makespans so the throttling cost shows up in the cross-PR
// trajectory (bench_diff gates them — all deterministic).
//
// Scenario 2 (mixed priority): d695 with deterministic priority classes
// (core id mod 4) under a tight constant cap, scheduled twice — honoring
// classes and blind. The hot lot (class 0) must finish no later when
// classes are honored; the bench fails (exit 1) if it does not, making the
// acceptance criterion executable.
#include <algorithm>
#include <cstdio>

#include "core/optimizer.h"
#include "core/validator.h"
#include "soc/benchmarks.h"
#include "soc/generator.h"
#include "util/strings.h"

using namespace soctest;

namespace {

bool ValidateOrComplain(const TestProblem& problem, const Schedule& schedule,
                        const char* label) {
  const auto violations = ValidateSchedule(problem, schedule);
  if (violations.empty()) return true;
  std::fprintf(stderr, "%s: schedule INVALID\n%s", label,
               FormatViolations(violations).c_str());
  return false;
}

int RunThrottleScenarios() {
  int status = 0;
  std::printf("=== Throttling-window scenarios (W=32, factor-2 rail, low "
              "phase at the serial floor) ===\n\n");
  for (const auto& soc : AllBenchmarkSocs()) {
    TestProblem problem = TestProblem::FromSoc(soc);
    problem.power = PowerModel::FromSoc(soc, 2.0);
    const std::int64_t high = problem.power.pmax();
    const std::int64_t low = problem.power.MaxCorePower();

    OptimizerParams params;
    params.tam_width = 32;
    const OptimizerResult constant = Optimize(problem, params);
    if (!constant.ok()) {
      std::fprintf(stderr, "%s constant-cap schedule failed: %s\n",
                   soc.name().c_str(), constant.error->c_str());
      status = 1;
      continue;
    }

    const Time span = std::max<Time>(1, constant.makespan / 6);
    TestProblem throttled = problem;
    throttled.power = WithBudget(
        soc, problem.power,
        MakeThrottleTimeline(high, low, span, span, constant.makespan));
    const OptimizerResult result = Optimize(throttled, params);
    if (!result.ok()) {
      std::fprintf(stderr, "%s throttled schedule failed: %s\n",
                   soc.name().c_str(), result.error->c_str());
      status = 1;
      continue;
    }
    if (!ValidateOrComplain(throttled, result.schedule, soc.name().c_str())) {
      status = 1;
      continue;
    }

    const double cost = 100.0 * (static_cast<double>(result.makespan) /
                                     static_cast<double>(constant.makespan) -
                                 1.0);
    std::printf("%-10s constant %s -> throttled %s cycles (+%.1f%%)\n",
                soc.name().c_str(), WithCommas(constant.makespan).c_str(),
                WithCommas(result.makespan).c_str(), cost);
    std::printf("MAKESPAN soc=%s w=32 mode=throttle cycles=%lld\n",
                soc.name().c_str(), static_cast<long long>(result.makespan));
    std::printf("STATS bench=power_throttle soc=%s high=%lld low=%lld "
                "span=%lld constant=%lld throttled=%lld rounds=%d\n",
                soc.name().c_str(), static_cast<long long>(high),
                static_cast<long long>(low), static_cast<long long>(span),
                static_cast<long long>(constant.makespan),
                static_cast<long long>(result.makespan),
                result.admission_rounds);
  }
  std::printf("\n");
  return status;
}

Time HotLotFinish(const Soc& soc, const OptimizerResult& result) {
  Time latest = 0;
  for (const auto& entry : result.schedule.entries()) {
    if (soc.core(entry.core).prio == 0) {
      latest = std::max(latest, entry.EndTime());
    }
  }
  return latest;
}

int RunPriorityScenario() {
  std::printf("=== Mixed-priority scenario (d695, classes = core id mod 4, "
              "tight rail) ===\n\n");
  Soc soc = MakeD695();
  for (int i = 0; i < soc.num_cores(); ++i) {
    soc.mutable_core(i).prio = i % 4;
  }
  TestProblem problem = TestProblem::FromSoc(soc);
  problem.power = PowerModel::FromSoc(soc, 1.5);

  OptimizerParams honor;
  honor.tam_width = 32;
  OptimizerParams blind = honor;
  blind.honor_priority = false;

  const OptimizerResult with_prio = Optimize(problem, honor);
  const OptimizerResult uniform = Optimize(problem, blind);
  if (!with_prio.ok() || !uniform.ok()) {
    std::fprintf(stderr, "priority scenario scheduling failed\n");
    return 1;
  }
  if (!ValidateOrComplain(problem, with_prio.schedule, "priority") ||
      !ValidateOrComplain(problem, uniform.schedule, "uniform")) {
    return 1;
  }

  const Time hot_prio = HotLotFinish(soc, with_prio);
  const Time hot_uniform = HotLotFinish(soc, uniform);
  std::printf("hot lot finishes at %s honoring classes, %s blind; full "
              "makespan %s vs %s\n",
              WithCommas(hot_prio).c_str(), WithCommas(hot_uniform).c_str(),
              WithCommas(with_prio.makespan).c_str(),
              WithCommas(uniform.makespan).c_str());
  std::printf("MAKESPAN soc=d695 w=32 mode=priority cycles=%lld\n",
              static_cast<long long>(with_prio.makespan));
  std::printf("STATS bench=power_priority hot_finish_prio=%lld "
              "hot_finish_uniform=%lld makespan_prio=%lld "
              "makespan_uniform=%lld\n",
              static_cast<long long>(hot_prio),
              static_cast<long long>(hot_uniform),
              static_cast<long long>(with_prio.makespan),
              static_cast<long long>(uniform.makespan));

  if (hot_prio > hot_uniform) {
    std::fprintf(stderr,
                 "FAIL: hot lot finished later under priority scheduling "
                 "(%lld > %lld)\n",
                 static_cast<long long>(hot_prio),
                 static_cast<long long>(hot_uniform));
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  int status = RunThrottleScenarios();
  status |= RunPriorityScenario();
  return status;
}
