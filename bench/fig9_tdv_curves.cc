// Reproduces paper Fig. 9 for the p22810 stand-in:
//   (a) testing time T vs. TAM width W,
//   (b) tester data volume D = W * T vs. W (non-monotonic, local minima at
//       Pareto points of T),
//   (c) normalized cost C for rho = 0.5, and
//   (d) rho = 0.25 (both U-shaped).
#include <cstdio>

#include "soc/benchmarks.h"
#include "tdv/effective_width.h"
#include "util/ascii_plot.h"
#include "util/strings.h"

using namespace soctest;

namespace {

void PlotSeries(const char* title, const char* ylabel,
                const std::vector<double>& xs, const std::vector<double>& ys) {
  AsciiPlot plot(72, 16);
  plot.SetTitle(title);
  plot.SetYLabel(ylabel);
  plot.SetXLabel("TAM width (bits)");
  plot.AddSeries(xs, ys, '*');
  std::fputs(plot.Render().c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main() {
  const TestProblem problem = TestProblem::FromSoc(MakeP22810s());
  SweepOptions options;
  options.min_width = 8;   // smallest practical TAM (see table2 bench note)
  options.max_width = 80;  // the paper sweeps to 80
  const auto sweep = SweepWidths(problem, options);
  if (sweep.empty()) {
    std::fprintf(stderr, "sweep failed\n");
    return 1;
  }

  std::printf("=== Fig. 9: T, D and C vs. TAM width for %s ===\n\n",
              problem.soc.name().c_str());

  // Raw series for external plotting.
  std::printf("w,time_cycles,volume_bits,cost_rho_0.50,cost_rho_0.25\n");
  const auto c50 = CostCurve(sweep, 0.50);
  const auto c25 = CostCurve(sweep, 0.25);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::printf("%d,%lld,%lld,%.4f,%.4f\n", sweep[i].tam_width,
                static_cast<long long>(sweep[i].test_time),
                static_cast<long long>(sweep[i].data_volume), c50[i].cost,
                c25[i].cost);
  }
  std::printf("\n");

  std::vector<double> xs, ts, ds, costs50, costs25;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    xs.push_back(sweep[i].tam_width);
    ts.push_back(static_cast<double>(sweep[i].test_time));
    ds.push_back(static_cast<double>(sweep[i].data_volume));
    costs50.push_back(c50[i].cost);
    costs25.push_back(c25[i].cost);
  }
  PlotSeries("(a) testing time vs. TAM width", "T (cycles)", xs, ts);
  PlotSeries("(b) tester data volume vs. TAM width", "D = W*T (bits)", xs, ds);
  PlotSeries("(c) cost C, rho = 0.50", "C", xs, costs50);
  PlotSeries("(d) cost C, rho = 0.25", "C", xs, costs25);

  const SweepPoint t_min = MinTimePoint(sweep);
  const SweepPoint d_min = MinVolumePoint(sweep);
  std::printf("T_min = %s cycles at W = %d\n", WithCommas(t_min.test_time).c_str(),
              t_min.tam_width);
  std::printf("D_min = %s bits   at W = %d\n",
              WithCommas(d_min.data_volume).c_str(), d_min.tam_width);

  const auto minima = LocalVolumeMinima(sweep);
  std::printf("local minima of D at W = ");
  for (std::size_t i = 0; i < minima.size(); ++i) {
    std::printf("%s%d", i ? ", " : "", sweep[minima[i]].tam_width);
  }
  std::printf("\n(the paper observes these coincide with Pareto points of the "
              "T curve)\n");
  return 0;
}
