// Load bench for the TCP serving front-end: an in-process SocServer under a
// duplicate-heavy multi-connection workload — the shape a production SOC
// test service actually sees (many clients asking about the same few
// designs), and the case the dedup + core-cache stack exists for.
//
// Output follows the bench contract (bench/run_all.sh):
//  * MAKESPAN lines for the DISTINCT requests — deterministic response
//    content, gated strictly by tools/bench_diff.py;
//  * one "STATS bench=load_server ..." line with throughput (qps) and
//    latency percentiles — volatile keys bench_diff default-ignores.
//
// The bench fails (non-zero) if any request is shed, any response is an
// ERROR line, or any duplicate answers different bytes than its first
// occurrence — load must never break the bit-identity contract.
#include <cstdio>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "service/net/client.h"
#include "service/net/soc_server.h"
#include "util/strings.h"

using namespace soctest;

namespace {

// The distinct request pool; every client cycles through it, so all but the
// first evaluation of each line is dedup food.
const std::vector<std::string>& DistinctRequests() {
  static const std::vector<std::string> kPool = {
      "d695 16 schedule",
      "d695 20 schedule",
      "d695 24 schedule",
      "d695 28 schedule preempt=1",
      "d695 16 sweep min=12",
      "d695 24 improve iters=8 batch=2 seed=7",
  };
  return kPool;
}

struct ClientRun {
  std::vector<std::string> responses;  // indexed by req (arrival order varies)
  bool ok = false;
};

// One client connection: send `rounds` passes over the pool, half-close,
// read everything back, index responses by their req= tag.
ClientRun RunClient(int port, int rounds) {
  ClientRun run;
  LineClient client;
  std::string error;
  if (!client.Connect(port, &error)) {
    std::fprintf(stderr, "connect: %s\n", error.c_str());
    return run;
  }
  const auto& pool = DistinctRequests();
  const std::size_t total = pool.size() * static_cast<std::size_t>(rounds);
  for (int r = 0; r < rounds; ++r) {
    for (const std::string& line : pool) {
      if (!client.SendLine(line)) return run;
    }
  }
  client.ShutdownWrite();

  std::map<int, std::string> by_index;
  while (auto line = client.ReadLine(30000)) {
    const std::size_t tag = line->find("req=");
    if (tag == std::string::npos) return run;
    by_index[std::stoi(line->substr(tag + 4))] = std::move(*line);
  }
  if (by_index.size() != total) {
    std::fprintf(stderr, "client got %zu/%zu responses\n", by_index.size(),
                 total);
    return run;
  }
  run.responses.reserve(total);
  for (auto& [index, line] : by_index) run.responses.push_back(std::move(line));
  run.ok = true;
  return run;
}

}  // namespace

int main() {
  constexpr int kClients = 4;
  constexpr int kRounds = 10;

  ServerOptions options;
  options.batch.threads = 0;  // hardware
  options.batch.dedup = true;
  options.admission_depth = 1024;  // this bench measures throughput, not sheds
  options.write_buffer_lines = 1024;
  SocServer server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "start: %s\n", error.c_str());
    return 1;
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<ClientRun> runs(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&runs, c, port = server.port()] {
        runs[static_cast<std::size_t>(c)] = RunClient(port, kRounds);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  const auto elapsed_us = std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();

  const auto& pool = DistinctRequests();
  const int total_requests = kClients * kRounds * static_cast<int>(pool.size());
  for (const ClientRun& run : runs) {
    if (!run.ok) return 1;
  }
  // Every duplicate (across rounds AND across connections) must answer the
  // exact bytes of its first occurrence, modulo the req= tag.
  const auto strip_req = [](const std::string& line) {
    const std::size_t tag = line.find(' ', line.find("req="));
    return line.substr(tag == std::string::npos ? 0 : tag);
  };
  for (const ClientRun& run : runs) {
    for (std::size_t i = 0; i < run.responses.size(); ++i) {
      const std::string& first = runs[0].responses[i % pool.size()];
      if (run.responses[i].rfind("MAKESPAN ", 0) != 0 ||
          strip_req(run.responses[i]) != strip_req(first)) {
        std::fprintf(stderr, "response divergence at %zu:\n  %s\n  %s\n", i,
                     run.responses[i].c_str(), first.c_str());
        return 1;
      }
    }
  }

  // Deterministic content: the distinct responses, once.
  for (std::size_t i = 0; i < pool.size(); ++i) {
    std::printf("%s\n", runs[0].responses[i].c_str());
  }

  const ServerStats stats = server.stats();
  const double qps = elapsed_us > 0
                         ? static_cast<double>(total_requests) * 1e6 /
                               static_cast<double>(elapsed_us)
                         : 0.0;
  std::printf(
      "STATS bench=load_server clients=%d requests=%d served=%lld "
      "shed_overload=%lld shed_deadline=%lld responses_dropped=%lld "
      "queue_depth_peak=%lld dedup_hits=%lld dedup_joins=%lld "
      "elapsed_us=%lld qps=%d p50_service_us=%lld p99_service_us=%lld\n",
      kClients, total_requests, static_cast<long long>(stats.served),
      static_cast<long long>(stats.shed_overload),
      static_cast<long long>(stats.shed_deadline),
      static_cast<long long>(stats.responses_dropped),
      static_cast<long long>(stats.queue_depth_peak),
      static_cast<long long>(server.scheduler().results().stats().hits),
      static_cast<long long>(server.scheduler().results().stats().joins),
      static_cast<long long>(elapsed_us), static_cast<int>(qps),
      static_cast<long long>(stats.p50_service_us),
      static_cast<long long>(stats.p99_service_us));

  server.Stop();
  return stats.served == total_requests ? 0 : 1;
}
