// Reproduces the paper's Section 6 CPU-time claim and baseline comparisons:
//
//  * flexible-width rectangle packing (this paper) vs. the exact fixed-width
//    TAM baseline (the [12]-style formulation whose cost explodes with the
//    number of TAMs) — both quality and wall-clock time;
//  * level-oriented shelf packing (NFDH/FFDH, ref [8]) as the classical
//    rectangle-packing baseline the paper generalizes.
#include <chrono>
#include <cstdio>

#include "baseline/fixed_width.h"
#include "baseline/lower_bound.h"
#include "baseline/shelf.h"
#include "core/optimizer.h"
#include "soc/benchmarks.h"
#include "util/strings.h"
#include "util/table.h"

using namespace soctest;

namespace {

template <typename Fn>
double TimeIt(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const Soc soc = MakeD695();
  const TestProblem problem = TestProblem::FromSoc(soc);
  const CompiledProblem compiled(problem);

  std::printf("=== Baseline comparison on %s ===\n\n", soc.name().c_str());

  // --- Quality + runtime vs. the exact fixed-width baseline --------------
  TablePrinter table({"W", "B", "flexible (cycles)", "fixed exact (cycles)",
                      "flex s", "fixed s", "B&B nodes"});
  for (int w : {12, 16, 20}) {
    OptimizerParams params;
    params.tam_width = w;
    OptimizerResult flexible;
    const double flex_s =
        TimeIt([&] { flexible = Optimize(compiled, params); });
    if (!flexible.ok()) {
      std::fprintf(stderr, "flexible scheduling failed\n");
      return 1;
    }
    std::printf("MAKESPAN soc=d695 w=%d mode=flexible cycles=%lld\n", w,
                static_cast<long long>(flexible.makespan));
    for (int buses : {2, 3}) {
      FixedWidthOptions options;
      options.num_buses = buses;
      options.max_nodes = 20'000'000;
      FixedWidthResult fixed;
      const double fixed_s =
          TimeIt([&] { fixed = OptimizeFixedWidth(soc, w, options); });
      table.AddRow({std::to_string(w), std::to_string(buses),
                    WithCommas(flexible.makespan), WithCommas(fixed.test_time),
                    StrFormat("%.4f", flex_s), StrFormat("%.3f", fixed_s),
                    WithCommas(fixed.nodes_explored)});
    }
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf(
      "\nThe fixed-width exact search explores exponentially many nodes as B\n"
      "grows; the rectangle-packing heuristic runs orders of magnitude\n"
      "faster at equal or better test times (the paper's Section 6 claim\n"
      "against the exact method of [12]).\n\n");

  // --- Shelf packing baseline --------------------------------------------
  TablePrinter shelf_table(
      {"SOC", "W", "lower bound", "flexible", "FFDH shelf", "NFDH shelf"},
      {Align::kLeft});
  for (const auto& bench : AllBenchmarkSocs()) {
    const TestProblem bench_problem = TestProblem::FromSoc(bench);
    const CompiledProblem bench_compiled(bench_problem);
    for (int w : {24, 48}) {
      OptimizerParams params;
      params.tam_width = w;
      const auto flexible =
          OptimizeBestOverParams(bench_compiled, params, /*threads=*/0);
      if (!flexible.ok()) return 1;
      std::printf("MAKESPAN soc=%s w=%d mode=flexible_best cycles=%lld\n",
                  bench.name().c_str(), w,
                  static_cast<long long>(flexible.makespan));
      ShelfOptions ffdh;
      ffdh.policy = ShelfPolicy::kFirstFitDecreasingHeight;
      ShelfOptions nfdh;
      nfdh.policy = ShelfPolicy::kNextFitDecreasingHeight;
      shelf_table.AddRow({bench.name(), std::to_string(w),
                          WithCommas(ComputeLowerBound(bench, w, 64).value()),
                          WithCommas(flexible.makespan),
                          WithCommas(ShelfPack(bench, w, ffdh).Makespan()),
                          WithCommas(ShelfPack(bench, w, nfdh).Makespan())});
    }
  }
  std::fputs(shelf_table.ToString().c_str(), stdout);
  std::printf(
      "\nFlexible-width packing dominates both shelf heuristics on every "
      "SOC/width.\n");
  return 0;
}
