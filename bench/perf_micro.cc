// Micro-benchmarks (google-benchmark): wrapper design, Pareto extraction,
// full co-optimization, the compile-once/search split, restart-sweep
// threading scalability, validation, and wire assignment throughput.
#include <benchmark/benchmark.h>

#include "core/compiled_problem.h"
#include "core/optimizer.h"
#include "core/validator.h"
#include "core/wire_assign.h"
#include "soc/benchmarks.h"
#include "soc/generator.h"
#include "wrapper/rectangles.h"
#include "wrapper/wrapper_design.h"

namespace soctest {
namespace {

const Soc& D695() {
  static const Soc soc = MakeD695();
  return soc;
}

void BM_DesignWrapper(benchmark::State& state) {
  const CoreSpec& core = D695().core(D695().FindCore("s38584"));
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DesignWrapper(core, width));
  }
}
BENCHMARK(BM_DesignWrapper)->Arg(4)->Arg(16)->Arg(64);

void BM_RectangleSetConstruction(benchmark::State& state) {
  const CoreSpec& core = D695().core(D695().FindCore("s13207"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RectangleSet(core, 64, 64));
  }
}
BENCHMARK(BM_RectangleSetConstruction);

void BM_OptimizeSoc(benchmark::State& state) {
  GeneratorParams gen;
  gen.seed = 99;
  gen.num_cores = static_cast<int>(state.range(0));
  const TestProblem problem = TestProblem::FromSoc(GenerateSoc(gen));
  OptimizerParams params;
  params.tam_width = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Optimize(problem, params));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OptimizeSoc)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_OptimizeD695(benchmark::State& state) {
  const TestProblem problem = TestProblem::FromSoc(D695());
  OptimizerParams params;
  params.tam_width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Optimize(problem, params));
  }
}
BENCHMARK(BM_OptimizeD695)->Arg(16)->Arg(32)->Arg(64);

const TestProblem& Generated64() {
  static const TestProblem problem = [] {
    GeneratorParams gen;
    gen.seed = 99;
    gen.num_cores = 64;
    return TestProblem::FromSoc(GenerateSoc(gen));
  }();
  return problem;
}

// The compile stage on its own: what every restart historically re-paid.
void BM_CompiledProblemBuild(benchmark::State& state) {
  const TestProblem& problem = Generated64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompiledProblem(problem));
  }
}
BENCHMARK(BM_CompiledProblemBuild)->Unit(benchmark::kMillisecond);

// One scheduler run against pre-compiled artifacts. Compare against
// BM_OptimizeSoc/64 (which compiles per call) for the compile-once win.
void BM_OptimizeCompiled64(benchmark::State& state) {
  const TestProblem& problem = Generated64();
  const CompiledProblem compiled(problem);
  OptimizerParams params;
  params.tam_width = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Optimize(compiled, params));
  }
}
BENCHMARK(BM_OptimizeCompiled64)->Unit(benchmark::kMillisecond);

// The full 200-restart sweep on a 64-core SOC at 1/2/4/8 worker threads.
// The result is bit-identical across thread counts; only wall-clock moves.
// (Pre-refactor, the serial sweep recompiled the wrapper layer in every
// restart; the compile-once split alone is a ~10x cut before threading.)
void BM_RestartSweep64(benchmark::State& state) {
  const TestProblem& problem = Generated64();
  const CompiledProblem compiled(problem);
  OptimizerParams params;
  params.tam_width = 32;
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(OptimizeBestOverParams(compiled, params, threads));
  }
}
BENCHMARK(BM_RestartSweep64)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ValidateSchedule(benchmark::State& state) {
  const TestProblem problem = TestProblem::FromSoc(MakeP93791s());
  OptimizerParams params;
  params.tam_width = 32;
  const auto result = Optimize(problem, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValidateSchedule(problem, result.schedule));
  }
}
BENCHMARK(BM_ValidateSchedule);

void BM_AssignWires(benchmark::State& state) {
  const TestProblem problem = TestProblem::FromSoc(MakeP93791s());
  OptimizerParams params;
  params.tam_width = 64;
  const auto result = Optimize(problem, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AssignWires(result.schedule));
  }
}
BENCHMARK(BM_AssignWires);

}  // namespace
}  // namespace soctest

BENCHMARK_MAIN();
