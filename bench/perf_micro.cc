// Micro-benchmarks (google-benchmark): wrapper design, Pareto extraction,
// full co-optimization, validation, and wire assignment throughput.
#include <benchmark/benchmark.h>

#include "core/optimizer.h"
#include "core/validator.h"
#include "core/wire_assign.h"
#include "soc/benchmarks.h"
#include "soc/generator.h"
#include "wrapper/rectangles.h"
#include "wrapper/wrapper_design.h"

namespace soctest {
namespace {

const Soc& D695() {
  static const Soc soc = MakeD695();
  return soc;
}

void BM_DesignWrapper(benchmark::State& state) {
  const CoreSpec& core = D695().core(D695().FindCore("s38584"));
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DesignWrapper(core, width));
  }
}
BENCHMARK(BM_DesignWrapper)->Arg(4)->Arg(16)->Arg(64);

void BM_RectangleSetConstruction(benchmark::State& state) {
  const CoreSpec& core = D695().core(D695().FindCore("s13207"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RectangleSet(core, 64, 64));
  }
}
BENCHMARK(BM_RectangleSetConstruction);

void BM_OptimizeSoc(benchmark::State& state) {
  GeneratorParams gen;
  gen.seed = 99;
  gen.num_cores = static_cast<int>(state.range(0));
  const TestProblem problem = TestProblem::FromSoc(GenerateSoc(gen));
  OptimizerParams params;
  params.tam_width = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Optimize(problem, params));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OptimizeSoc)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_OptimizeD695(benchmark::State& state) {
  const TestProblem problem = TestProblem::FromSoc(D695());
  OptimizerParams params;
  params.tam_width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Optimize(problem, params));
  }
}
BENCHMARK(BM_OptimizeD695)->Arg(16)->Arg(32)->Arg(64);

void BM_ValidateSchedule(benchmark::State& state) {
  const TestProblem problem = TestProblem::FromSoc(MakeP93791s());
  OptimizerParams params;
  params.tam_width = 32;
  const auto result = Optimize(problem, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValidateSchedule(problem, result.schedule));
  }
}
BENCHMARK(BM_ValidateSchedule);

void BM_AssignWires(benchmark::State& state) {
  const TestProblem problem = TestProblem::FromSoc(MakeP93791s());
  OptimizerParams params;
  params.tam_width = 64;
  const auto result = Optimize(problem, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AssignWires(result.schedule));
  }
}
BENCHMARK(BM_AssignWires);

}  // namespace
}  // namespace soctest

BENCHMARK_MAIN();
