// Micro-benchmarks (google-benchmark): wrapper design, Pareto extraction,
// full co-optimization, the compile-once/search split, restart-sweep
// threading scalability, validation, and wire assignment throughput.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "core/compiled_problem.h"
#include "core/exact.h"
#include "core/improver.h"
#include "core/optimizer.h"
#include "core/validator.h"
#include "core/wire_assign.h"
#include "service/batch_scheduler.h"
#include "service/core_cache.h"
#include "soc/benchmarks.h"
#include "soc/generator.h"
#include "wrapper/rectangles.h"
#include "wrapper/wrapper_design.h"

namespace soctest {
namespace {

const Soc& D695() {
  static const Soc soc = MakeD695();
  return soc;
}

void BM_DesignWrapper(benchmark::State& state) {
  const CoreSpec& core = D695().core(D695().FindCore("s38584"));
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DesignWrapper(core, width));
  }
}
BENCHMARK(BM_DesignWrapper)->Arg(4)->Arg(16)->Arg(64);

void BM_RectangleSetConstruction(benchmark::State& state) {
  const CoreSpec& core = D695().core(D695().FindCore("s13207"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RectangleSet(core, 64, 64));
  }
}
BENCHMARK(BM_RectangleSetConstruction);

void BM_OptimizeSoc(benchmark::State& state) {
  GeneratorParams gen;
  gen.seed = 99;
  gen.num_cores = static_cast<int>(state.range(0));
  const TestProblem problem = TestProblem::FromSoc(GenerateSoc(gen));
  OptimizerParams params;
  params.tam_width = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Optimize(problem, params));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OptimizeSoc)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_OptimizeD695(benchmark::State& state) {
  const TestProblem problem = TestProblem::FromSoc(D695());
  OptimizerParams params;
  params.tam_width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Optimize(problem, params));
  }
}
BENCHMARK(BM_OptimizeD695)->Arg(16)->Arg(32)->Arg(64);

const TestProblem& Generated64() {
  static const TestProblem problem = [] {
    GeneratorParams gen;
    gen.seed = 99;
    gen.num_cores = 64;
    return TestProblem::FromSoc(GenerateSoc(gen));
  }();
  return problem;
}

// The compile stage on its own: what every restart historically re-paid.
// Arg 0 compiles the whole SOC cold. Arg 1 is the incremental path a
// near-duplicate takes through the core-artifact cache: each iteration edits
// a different core of the (resident) base SOC, so the variant fetches 63
// cached cores, compiles the one edited core, and assembles. The artifacts
// are bit-identical either way; the delta is ~the cost of 63 core compiles.
void BM_CompiledProblemBuild(benchmark::State& state) {
  const TestProblem& problem = Generated64();
  if (state.range(0) == 0) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(CompiledProblem(problem));
    }
    return;
  }
  CoreArtifactCache cache(CoreArtifactCache::Options{4, 4096});
  for (const auto& core : problem.soc.cores()) {
    cache.GetOrCompile(core, kDefaultWMax);  // warm: the base SOC is resident
  }
  int edit = 0;
  for (auto _ : state) {
    Soc variant_soc = problem.soc;
    CoreSpec& edited = variant_soc.mutable_core(
        static_cast<CoreId>(edit % variant_soc.num_cores()));
    edited.num_patterns += 1 + edit;  // a never-before-seen core each time
    const TestProblem variant = TestProblem::FromSoc(variant_soc);
    std::vector<CompiledCorePtr> cores;
    cores.reserve(static_cast<std::size_t>(variant.soc.num_cores()));
    for (const auto& core : variant.soc.cores()) {
      cores.push_back(cache.GetOrCompile(core, kDefaultWMax));
    }
    benchmark::DoNotOptimize(
        CompiledProblem(variant, kDefaultWMax, std::move(cores)));
    ++edit;
  }
}
BENCHMARK(BM_CompiledProblemBuild)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// One scheduler run against pre-compiled artifacts. Compare against
// BM_OptimizeSoc/64 (which compiles per call) for the compile-once win.
// Arg 0 allocates fresh per run (the historical inner loop); arg 1 reuses a
// ScheduleWorkspace across runs (the restart-loop fast path) — the delta is
// the per-run allocation cost the workspace removes (rectangle re-clipping,
// state vectors, admission scratch).
void BM_OptimizeCompiled64(benchmark::State& state) {
  const TestProblem& problem = Generated64();
  const CompiledProblem compiled(problem);
  OptimizerParams params;
  params.tam_width = 32;
  const bool reuse_workspace = state.range(0) == 1;
  ScheduleWorkspace ws;
  OptimizerResult last;
  for (auto _ : state) {
    if (reuse_workspace) {
      last = Optimize(compiled, params, ws);
    } else {
      last = Optimize(compiled, params);
    }
    benchmark::DoNotOptimize(last);
  }
  // google-benchmark re-invokes the function while calibrating the iteration
  // count; the guard keeps exactly one line per arg so the parsed
  // bench_results JSON stays deterministic (bench_diff compares it).
  static bool printed[2] = {false, false};
  if (last.ok() && !printed[reuse_workspace ? 1 : 0]) {
    printed[reuse_workspace ? 1 : 0] = true;
    std::printf("MAKESPAN soc=gen64 w=32 mode=schedule reuse_ws=%d "
                "cycles=%lld\n",
                reuse_workspace ? 1 : 0,
                static_cast<long long>(last.makespan));
    std::printf("STATS bench=optimize_compiled reuse_ws=%d rounds=%d "
                "candidates_examined=%lld buckets_skipped=%lld\n",
                reuse_workspace ? 1 : 0, last.admission_rounds,
                static_cast<long long>(last.candidates_examined),
                static_cast<long long>(last.buckets_skipped));
  }
}
BENCHMARK(BM_OptimizeCompiled64)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// The time-varying budget machinery on the hot path: the same 64-core
// compiled problem and reused workspace as BM_OptimizeCompiled64, under a
// factor-2 rail. Arg 0 is the constant cap (FitsAt short-circuits to the
// legacy compare — the pre-timeline fast path), arg 1 a throttling-window
// timeline sized off the constant-cap makespan; the delta is the cost of
// window admission checks plus budget change-point events.
void BM_OptimizeThrottled64(benchmark::State& state) {
  static const TestProblem problem = [] {
    TestProblem p = Generated64();
    p.power = PowerModel::FromSoc(p.soc, 2.0);
    return p;
  }();
  static const CompiledProblem compiled(problem);
  static const Time constant_makespan = [] {
    OptimizerParams params;
    params.tam_width = 32;
    return Optimize(problem, params).makespan;
  }();
  OptimizerParams params;
  params.tam_width = 32;
  const bool throttle = state.range(0) == 1;
  if (throttle) {
    const Time span = std::max<Time>(1, constant_makespan / 6);
    params.power_budget_override =
        MakeThrottleTimeline(problem.power.pmax(), problem.power.MaxCorePower(),
                             span, span, constant_makespan)
            .segments();
  }
  ScheduleWorkspace ws;
  OptimizerResult last;
  for (auto _ : state) {
    last = Optimize(compiled, params, ws);
    benchmark::DoNotOptimize(last);
  }
  static bool printed[2] = {false, false};
  if (last.ok() && !printed[throttle ? 1 : 0]) {
    printed[throttle ? 1 : 0] = true;
    std::printf("MAKESPAN soc=gen64 w=32 mode=schedule throttle=%d "
                "cycles=%lld\n",
                throttle ? 1 : 0, static_cast<long long>(last.makespan));
    std::printf("STATS bench=optimize_throttled throttle=%d rounds=%d "
                "candidates_examined=%lld buckets_skipped=%lld\n",
                throttle ? 1 : 0, last.admission_rounds,
                static_cast<long long>(last.candidates_examined),
                static_cast<long long>(last.buckets_skipped));
  }
}
BENCHMARK(BM_OptimizeThrottled64)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// The admission loop in isolation, at scale: one scheduler run on a 256-core
// synthetic SOC against pre-compiled artifacts with a reused workspace, so
// the measured time is almost entirely admission rounds (selection, conflict
// checks, the width-bucketed index). Arg 0 is non-preemptive — every paused
// core funnels through the Priority-1 resume path, the index's biggest win —
// and arg 1 is preemptive with a budget of 2. The STATS counters quantify
// the pruning: candidates_examined is what the selection loops actually
// touched, buckets_skipped the non-empty width buckets they never scanned.
void BM_AdmissionScan(benchmark::State& state) {
  static const TestProblem problem = [] {
    GeneratorParams gen;
    gen.seed = 7;
    gen.num_cores = 256;
    gen.max_preemptions = 2;
    return TestProblem::FromSoc(GenerateSoc(gen));
  }();
  static const CompiledProblem compiled(problem);
  OptimizerParams params;
  params.tam_width = 64;
  params.allow_preemption = state.range(0) == 1;
  ScheduleWorkspace ws;
  OptimizerResult last;
  for (auto _ : state) {
    last = Optimize(compiled, params, ws);
    benchmark::DoNotOptimize(last);
  }
  static bool printed[2] = {false, false};
  const int preempt = params.allow_preemption ? 1 : 0;
  if (last.ok() && !printed[preempt]) {
    printed[preempt] = true;
    std::printf("MAKESPAN soc=gen256 w=64 mode=schedule preempt=%d "
                "cycles=%lld\n",
                preempt, static_cast<long long>(last.makespan));
    std::printf("STATS bench=admission_scan preempt=%d rounds=%d "
                "candidates_examined=%lld buckets_skipped=%lld\n",
                preempt, last.admission_rounds,
                static_cast<long long>(last.candidates_examined),
                static_cast<long long>(last.buckets_skipped));
  }
}
BENCHMARK(BM_AdmissionScan)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// The batched parallel hill climb (restart search + K-candidate rounds) at
// 1 and 8 worker threads. Results are bit-identical across thread counts;
// per-improvement wall-clock is what moves. MAKESPAN/STATS lines feed
// bench/run_all.sh's quality trajectory.
void BM_ImproveCompiled64(benchmark::State& state) {
  const TestProblem& problem = Generated64();
  const CompiledProblem compiled(problem);
  ImproverParams params;
  params.optimizer.tam_width = 32;
  params.iterations = 64;
  params.batch = 8;
  params.threads = static_cast<int>(state.range(0));
  ImproverResult last;
  for (auto _ : state) {
    last = ImproveSchedule(compiled, params);
    benchmark::DoNotOptimize(last);
  }
  state.counters["improvements"] =
      static_cast<double>(last.improvements);
  if (last.best.ok()) {
    std::printf("MAKESPAN soc=gen64 w=32 mode=improve threads=%d cycles=%lld\n",
                params.threads, static_cast<long long>(last.best.makespan));
    std::printf("STATS bench=improve threads=%d improvements=%d drawn=%d "
                "evaluated=%d noops=%d dups=%d bound_aborts=%d rounds=%d "
                "initial=%lld final=%lld\n",
                params.threads, last.improvements, last.drawn, last.evaluated,
                last.noops, last.duplicates_skipped, last.bound_aborts,
                last.rounds, static_cast<long long>(last.initial_makespan),
                static_cast<long long>(last.best.makespan));
  }
}
BENCHMARK(BM_ImproveCompiled64)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The adaptive engine on the same SOC: UCB1 move selection over
// {nudge, swap, block} with memoization feeding an explicit evaluation
// budget (--max-evals semantics) — the draw budget is generous, but only
// max_evaluations scheduler runs are paid for. The quality gate in
// bench/baselines: final makespan must match or beat the fixed climb's at
// no more than half of its evaluations. Bit-identical across thread counts
// (the bandit is rewarded serially at round boundaries).
void BM_ImproveAdaptive64(benchmark::State& state) {
  const TestProblem& problem = Generated64();
  const CompiledProblem compiled(problem);
  ImproverParams params;
  params.optimizer.tam_width = 32;
  params.iterations = 256;
  params.batch = 8;
  params.adaptive = true;
  params.seed = 17;
  params.max_evaluations = 24;
  params.threads = static_cast<int>(state.range(0));
  ImproverResult last;
  for (auto _ : state) {
    last = ImproveSchedule(compiled, params);
    benchmark::DoNotOptimize(last);
  }
  state.counters["improvements"] =
      static_cast<double>(last.improvements);
  if (last.best.ok()) {
    std::printf("MAKESPAN soc=gen64 w=32 mode=improve-adaptive threads=%d "
                "cycles=%lld\n",
                params.threads, static_cast<long long>(last.best.makespan));
    std::printf("STATS bench=improve_adaptive threads=%d improvements=%d "
                "drawn=%d evaluated=%d noops=%d dups=%d bound_aborts=%d "
                "rounds=%d nudge=%d/%d swap=%d/%d block=%d/%d "
                "initial=%lld final=%lld\n",
                params.threads, last.improvements, last.drawn, last.evaluated,
                last.noops, last.duplicates_skipped, last.bound_aborts,
                last.rounds,
                last.accepted[0], last.attempted[0],
                last.accepted[1], last.attempted[1],
                last.accepted[2], last.attempted[2],
                static_cast<long long>(last.initial_makespan),
                static_cast<long long>(last.best.makespan));
  }
}
BENCHMARK(BM_ImproveAdaptive64)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Exact branch-and-bound, cold (arg 0) vs. warm-started from the restart
// search's best (arg 1). The warm tree is strictly smaller; the optimum is
// identical. Node counts land in the counters and a STATS line.
void BM_ExactWarmStart(benchmark::State& state) {
  GeneratorParams gen;
  gen.seed = 21;
  gen.num_cores = 6;
  gen.min_inputs = 2;
  gen.max_inputs = 24;
  gen.min_outputs = 2;
  gen.max_outputs = 24;
  gen.min_patterns = 5;
  gen.max_patterns = 60;
  gen.min_chains = 1;
  gen.max_chains = 5;
  gen.min_chain_len = 4;
  gen.max_chain_len = 40;
  const Soc soc = GenerateSoc(gen);
  const int w = 8;
  ExactPackOptions options;
  options.max_nodes = 20'000'000;
  const bool warm = state.range(0) == 1;
  if (warm) {
    const TestProblem problem = TestProblem::FromSoc(soc);
    const CompiledProblem compiled(problem);
    OptimizerParams params;
    params.tam_width = w;
    const auto heuristic = OptimizeBestOverParams(compiled, params, 0);
    if (!heuristic.ok()) {
      state.SkipWithError("heuristic warm source failed");
      return;
    }
    SeedWarmStart(options, heuristic);
  }
  std::int64_t nodes = 0;
  for (auto _ : state) {
    const auto result = ExactPack(soc, w, options);
    nodes = result ? result->nodes_explored : -1;
    benchmark::DoNotOptimize(result);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  std::printf("STATS bench=exact_warm_start warm=%d nodes=%lld\n", warm ? 1 : 0,
              static_cast<long long>(nodes));
}
BENCHMARK(BM_ExactWarmStart)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The full 200-restart sweep on a 64-core SOC at 1/2/4/8 worker threads.
// The result is bit-identical across thread counts; only wall-clock moves.
// (Pre-refactor, the serial sweep recompiled the wrapper layer in every
// restart; the compile-once split alone is a ~10x cut before threading.)
void BM_RestartSweep64(benchmark::State& state) {
  const TestProblem& problem = Generated64();
  const CompiledProblem compiled(problem);
  OptimizerParams params;
  params.tam_width = 32;
  const int threads = static_cast<int>(state.range(0));
  OptimizerResult best;
  for (auto _ : state) {
    best = OptimizeBestOverParams(compiled, params, threads);
    benchmark::DoNotOptimize(best);
  }
  if (best.ok()) {
    std::printf("MAKESPAN soc=gen64 w=32 mode=sweep threads=%d cycles=%lld\n",
                threads, static_cast<long long>(best.makespan));
    // The counters describe the winning restart's run — deterministic across
    // thread counts, like the schedule itself.
    std::printf("STATS bench=restart_sweep threads=%d rounds=%d "
                "candidates_examined=%lld buckets_skipped=%lld\n",
                threads, best.admission_rounds,
                static_cast<long long>(best.candidates_examined),
                static_cast<long long>(best.buckets_skipped));
  }
}
BENCHMARK(BM_RestartSweep64)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The batch-serving layer at 1 and 8 worker threads: a mixed request list
// over 12 distinct generated SOCs plus 6 repeats of the most recent ones
// (18 requests), so the CompiledProblem cache serves hits and — capacity 8
// against 12 distinct SOCs — evictions as well as cold compiles. Results
// are bit-identical across thread counts; wall-clock and the STATS cache
// counters are what move.
void BM_BatchServe(benchmark::State& state) {
  static const std::vector<BatchRequest> requests = [] {
    std::vector<BatchRequest> list;
    for (int s = 0; s < 12; ++s) {
      GeneratorParams gen;
      gen.seed = 100 + static_cast<std::uint64_t>(s);
      gen.num_cores = 12 + 2 * (s % 5);
      ParsedSoc parsed;
      parsed.soc = GenerateSoc(gen);
      BatchRequest req;
      req.soc_spec = parsed.soc.name();
      req.soc = std::move(parsed);
      req.tam_width = 16 + 8 * (s % 3);
      switch (s % 3) {
        case 0:
          req.mode = BatchMode::kSchedule;
          req.search = true;
          break;
        case 1:
          req.mode = BatchMode::kImprove;
          req.iterations = 16;
          req.batch = 4;
          break;
        default:
          req.mode = BatchMode::kSweep;
          req.sweep_min = req.tam_width - 6;
          break;
      }
      list.push_back(std::move(req));
    }
    // Repeats at the tail, of the most recently compiled SOCs: resident
    // under LRU, so they exercise the hit path at every thread count.
    for (int s = 6; s < 12; ++s) {
      list.push_back(list[static_cast<std::size_t>(s)]);
    }
    return list;
  }();

  const int threads = static_cast<int>(state.range(0));
  BatchOptions options;
  options.threads = threads;
  options.shards = 4;
  options.cache_entries = 8;  // below the 12 distinct SOCs: evictions too
  BatchOutcome last;
  for (auto _ : state) {
    BatchScheduler scheduler(options);  // cold cache per iteration
    last = scheduler.Run(requests);
    benchmark::DoNotOptimize(last);
  }
  state.counters["requests"] = static_cast<double>(last.results.size());
  state.counters["cache_hits"] = static_cast<double>(last.cache.hits);
  long long total = 0;
  for (const BatchItemResult& item : last.results) {
    if (item.ok()) total += static_cast<long long>(item.makespan);
  }
  std::printf("MAKESPAN soc=batch12 w=mixed mode=batch threads=%d "
              "cycles=%lld\n", threads, total);
  std::printf("STATS bench=batch_serve threads=%d requests=%d served=%d "
              "cache_hits=%lld cache_misses=%lld cache_evictions=%lld "
              "compiles=%lld\n",
              threads, static_cast<int>(last.results.size()), last.served,
              static_cast<long long>(last.cache.hits),
              static_cast<long long>(last.cache.misses),
              static_cast<long long>(last.cache.evictions),
              static_cast<long long>(last.cache.compiles));
}
BENCHMARK(BM_BatchServe)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Variant-heavy traffic — the workload the core-artifact cache exists for:
// 64 requests over a 64-core base SOC and 63 near-duplicates, each editing
// one core's pattern count. Every request misses the whole-SOC cache (all 64
// SOCs are distinct), so arg 0 (core cache off) pays 64 full compiles where
// arg 1 (core cache on) pays 64 base-core compiles once plus one edited core
// per variant. MAKESPAN totals must be bit-identical between the two — the
// cache changes how compilation is paid for, never what it produces.
void BM_BatchServeVariants(benchmark::State& state) {
  static const std::vector<BatchRequest> requests = [] {
    GeneratorParams gen;
    gen.seed = 99;
    gen.num_cores = 64;
    const Soc base = GenerateSoc(gen);
    std::vector<BatchRequest> list;
    for (int v = 0; v < 64; ++v) {
      ParsedSoc parsed;
      parsed.soc = base;
      parsed.soc.set_name(base.name() + "_v" + std::to_string(v));
      if (v > 0) {
        // 7 is coprime with 64: every variant edits a different core, and
        // the distinct offsets make every edited core new to the cache.
        CoreSpec& edited = parsed.soc.mutable_core(
            static_cast<CoreId>((v * 7) % base.num_cores()));
        edited.num_patterns += v;
      }
      BatchRequest req;
      req.soc_spec = parsed.soc.name();
      req.soc = std::move(parsed);
      req.tam_width = 32;
      req.mode = BatchMode::kSchedule;
      list.push_back(std::move(req));
    }
    return list;
  }();

  BatchOptions options;
  options.threads = 8;
  options.shards = 4;
  options.cache_entries = 64;
  options.core_cache_entries = state.range(0) == 1 ? 4096 : 0;
  BatchOutcome last;
  for (auto _ : state) {
    BatchScheduler scheduler(options);  // cold caches per iteration
    last = scheduler.Run(requests);
    benchmark::DoNotOptimize(last);
  }
  state.counters["compiles"] = static_cast<double>(last.cache.compiles);
  state.counters["core_compiles"] = static_cast<double>(last.core.compiles);
  long long total = 0;
  for (const BatchItemResult& item : last.results) {
    if (item.ok()) total += static_cast<long long>(item.makespan);
  }
  std::printf("MAKESPAN soc=gen64vars w=32 mode=batch core_cache=%d "
              "cycles=%lld\n",
              static_cast<int>(state.range(0)), total);
  std::printf("STATS bench=batch_variants core_cache=%d requests=%d "
              "served=%d compiles=%lld core_hits=%lld core_misses=%lld "
              "core_evictions=%lld core_collisions=%lld core_compiles=%lld "
              "core_entries=%d\n",
              static_cast<int>(state.range(0)),
              static_cast<int>(last.results.size()), last.served,
              static_cast<long long>(last.cache.compiles),
              static_cast<long long>(last.core.hits),
              static_cast<long long>(last.core.misses),
              static_cast<long long>(last.core.evictions),
              static_cast<long long>(last.core.collisions),
              static_cast<long long>(last.core.compiles),
              last.core.entries);
}
BENCHMARK(BM_BatchServeVariants)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Cross-request deduplication on a request list with heavy repetition: 4
// distinct requests over 2 SOCs, each repeated 6x and interleaved so
// identical requests land in flight together. state.range(0) toggles dedup;
// the MAKESPAN totals must match between the two — dedup may only change
// how much work runs, never what the batch returns.
void BM_BatchDedup(benchmark::State& state) {
  static const std::vector<BatchRequest> requests = [] {
    std::vector<BatchRequest> distinct;
    for (int s = 0; s < 2; ++s) {
      GeneratorParams gen;
      gen.seed = 200 + static_cast<std::uint64_t>(s);
      gen.num_cores = 12 + 4 * s;
      ParsedSoc parsed;
      parsed.soc = GenerateSoc(gen);
      BatchRequest search;
      search.soc_spec = parsed.soc.name();
      search.soc = parsed;
      search.tam_width = 16 + 8 * s;
      search.mode = BatchMode::kSchedule;
      search.search = true;
      distinct.push_back(search);
      BatchRequest improve;
      improve.soc_spec = parsed.soc.name();
      improve.soc = std::move(parsed);
      improve.tam_width = 24;
      improve.mode = BatchMode::kImprove;
      improve.iterations = 16;
      improve.batch = 4;
      distinct.push_back(improve);
    }
    std::vector<BatchRequest> list;
    for (int repeat = 0; repeat < 6; ++repeat) {
      for (const BatchRequest& req : distinct) list.push_back(req);
    }
    return list;
  }();

  const bool dedup = state.range(0) != 0;
  BatchOptions options;
  options.threads = 8;
  options.shards = 4;
  options.dedup = dedup;
  BatchOutcome last;
  for (auto _ : state) {
    BatchScheduler scheduler(options);  // cold caches per iteration
    last = scheduler.Run(requests);
    benchmark::DoNotOptimize(last);
  }
  state.counters["requests"] = static_cast<double>(last.results.size());
  const std::int64_t evaluations =
      dedup ? last.dedup.misses
            : static_cast<std::int64_t>(last.results.size());
  state.counters["evaluations"] = static_cast<double>(evaluations);
  long long total = 0;
  for (const BatchItemResult& item : last.results) {
    if (item.ok()) total += static_cast<long long>(item.makespan);
  }
  std::printf("MAKESPAN soc=batchdup w=mixed mode=batch dedup=%d "
              "cycles=%lld\n", dedup ? 1 : 0, total);
  std::printf("STATS bench=batch_dedup dedup=%d requests=%d served=%d "
              "evaluations=%lld dedup_hits=%lld dedup_joins=%lld "
              "compiles=%lld\n",
              dedup ? 1 : 0, static_cast<int>(last.results.size()),
              last.served, static_cast<long long>(evaluations),
              static_cast<long long>(last.dedup.hits),
              static_cast<long long>(last.dedup.joins),
              static_cast<long long>(last.cache.compiles));
}
BENCHMARK(BM_BatchDedup)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ValidateSchedule(benchmark::State& state) {
  const TestProblem problem = TestProblem::FromSoc(MakeP93791s());
  OptimizerParams params;
  params.tam_width = 32;
  const auto result = Optimize(problem, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValidateSchedule(problem, result.schedule));
  }
}
BENCHMARK(BM_ValidateSchedule);

void BM_AssignWires(benchmark::State& state) {
  const TestProblem problem = TestProblem::FromSoc(MakeP93791s());
  OptimizerParams params;
  params.tam_width = 64;
  const auto result = Optimize(problem, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AssignWires(result.schedule));
  }
}
BENCHMARK(BM_AssignWires);

}  // namespace
}  // namespace soctest

BENCHMARK_MAIN();
