#!/usr/bin/env sh
# Build every benchmark in Release and run each one, recording wall-clock
# timings AND result quality. Each bench writes bench_results/BENCH_<name>.json
# with the wall-clock plus every "MAKESPAN key=value ..." line the bench
# printed, parsed into a "makespans" array — so schedule-quality regressions
# show up in the cross-PR trajectory, not just speed. "STATS key=value ..."
# lines (B&B node counts, improver acceptance rates, restart counts) are
# parsed the same way into a "stats" array (B&B node counts, improver
# acceptance rates, the batch-serving layer's cache hit/miss/eviction and
# requests-served counters from BM_BatchServe, the cross-request dedup
# evaluations/hits/joins counters from BM_BatchDedup, the core-artifact
# cache core_hits/core_misses/core_compiles counters from the variant-heavy
# BM_BatchServeVariants, and multisite_ate's batch-optimal width and batch
# cost per SOC); CI uploads bench_results/ as an artifact so the perf
# trajectory is visible per PR.
#
# Usage: bench/run_all.sh [--filter <regex>] [build-dir]   (default: build)
#   --filter runs only the bench executables whose basename matches the
#   (extended) regex — e.g. `bench/run_all.sh --filter perf_micro` while
#   iterating on one bench.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
filter=
while [ $# -gt 0 ]; do
  case $1 in
    --filter)
      [ $# -ge 2 ] || { echo "error: --filter needs a regex" >&2; exit 2; }
      filter=$2
      shift 2
      ;;
    --filter=*)
      filter=${1#--filter=}
      shift
      ;;
    *)
      break
      ;;
  esac
done
build_dir=${1:-"$repo_root/build"}
out_dir=$repo_root/bench_results
mkdir -p "$out_dir"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target bench_all -j
# The benches run with bench_results/ as cwd, so the build dir must be
# absolute by the time the loop resolves binary paths.
build_dir=$(CDPATH= cd -- "$build_dir" && pwd)

# Millisecond timer: GNU date gives nanoseconds; fall back to second
# resolution where %N is unsupported.
now_ms() {
  ns=$(date +%s%N 2>/dev/null || true)
  case $ns in
    ''|*[!0-9]*) echo $(( $(date +%s) * 1000 )) ;;
    *) echo $((ns / 1000000)) ;;
  esac
}

# "<TAG> a=1 b=x" lines from a bench log -> JSON objects; integers stay
# unquoted. Shared by the MAKESPAN (quality) and STATS (search effort)
# extraction below.
parse_kv_lines() {
  awk -v tag="$1" '
    $1 == tag {
      obj = ""
      for (i = 2; i <= NF; ++i) {
        eq = index($i, "=")
        if (eq == 0) continue
        key = substr($i, 1, eq - 1)
        val = substr($i, eq + 1)
        if (val !~ /^-?[0-9]+$/) val = "\"" val "\""
        obj = obj (obj == "" ? "" : ", ") "\"" key "\": " val
      }
      printf "%s    {%s}", sep, obj
      sep = ",\n"
    }' "$2"
}

status=0
for exe in "$build_dir"/bench/*; do
  [ -f "$exe" ] && [ -x "$exe" ] || continue
  name=$(basename "$exe")
  case $name in
    CMakeFiles|cmake_install.cmake|*.cmake|CTestTestfile*) continue ;;
  esac
  if [ -n "$filter" ] && ! printf '%s\n' "$name" | grep -Eq -- "$filter"; then
    continue
  fi
  printf '== %s ==\n' "$name"
  start=$(now_ms)
  if (cd "$out_dir" && "$exe" >"$out_dir/$name.out" 2>&1); then
    bench_status=ok
  else
    bench_status=failed
    status=1
  fi
  end=$(now_ms)
  elapsed=$((end - start))
  printf '   %s: %s ms (%s)\n' "$bench_status" "$elapsed" "$name"
  makespans=$(parse_kv_lines MAKESPAN "$out_dir/$name.out")
  if [ -n "$makespans" ]; then
    makespans=$(printf '[\n%s\n  ]' "$makespans")
  else
    makespans='[]'
  fi
  # "STATS key=value" lines: search-effort / quality counters (B&B nodes,
  # improver acceptance, restart counts) for the cross-PR trajectory.
  stats=$(parse_kv_lines STATS "$out_dir/$name.out")
  if [ -n "$stats" ]; then
    stats=$(printf '[\n%s\n  ]' "$stats")
  else
    stats='[]'
  fi
  cat >"$out_dir/BENCH_$name.json" <<EOF
{
  "bench": "$name",
  "status": "$bench_status",
  "wall_ms": $elapsed,
  "build_type": "Release",
  "log": "bench_results/$name.out",
  "makespans": $makespans,
  "stats": $stats
}
EOF
done

echo "timings written to $out_dir/BENCH_*.json"
exit $status
