// Reproduces paper Fig. 2: an example packed test schedule rendered as a
// Gantt chart (cores x time), plus the physical per-wire occupancy view that
// demonstrates vertical rectangle splitting (fork-and-merge of TAM wires).
#include <cstdio>

#include "core/gantt.h"
#include "core/optimizer.h"
#include "core/validator.h"
#include "core/wire_assign.h"
#include "soc/benchmarks.h"
#include "util/strings.h"

using namespace soctest;

int main() {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  OptimizerParams params;
  params.tam_width = 32;
  const OptimizerResult result = OptimizeBestOverParams(problem, params);
  if (!result.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n", result.error->c_str());
    return 1;
  }

  std::printf("=== Fig. 2: example test schedule via rectangle packing ===\n");
  std::printf("SOC %s, W=%d, makespan=%s cycles, utilization=%.1f%%\n\n",
              problem.soc.name().c_str(), params.tam_width,
              WithCommas(result.makespan).c_str(),
              100.0 * result.schedule.Utilization());

  std::fputs(RenderCoreGantt(problem.soc, result.schedule).c_str(), stdout);

  const auto wires = AssignWires(result.schedule);
  if (!wires) {
    std::fprintf(stderr, "wire assignment failed\n");
    return 1;
  }
  std::printf("\nPhysical TAM wire view (vertical splits = forked wires):\n");
  std::fputs(RenderWireGantt(problem.soc, result.schedule, *wires).c_str(),
             stdout);
  std::printf("\nfork statistics: max fragments per grant = %d, "
              "forked grants = %.0f%%\n",
              wires->MaxFragments(), 100.0 * wires->ForkShare());

  const auto violations = ValidateSchedule(problem, result.schedule);
  std::printf("schedule valid: %s\n", violations.empty() ? "yes" : "NO");
  return violations.empty() ? 0 : 1;
}
