// Old-vs-new scheduler equivalence: the PR-7 hot-path refactor (struct-of-
// arrays state, width-bucketed admission index, heap selection, per-width
// LUTs) must be a pure performance change. Every case runs the production
// TamScheduleOptimizer and the frozen pre-refactor copy
// (tests/reference_optimizer.cc) on the same problem and requires the full
// result to match bit for bit: every segment of every core's schedule, every
// assignment diagnostic, the makespan, and the admission-round count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/optimizer.h"
#include "soc/benchmarks.h"
#include "soc/generator.h"
#include "reference_optimizer.h"

namespace soctest {
namespace {

struct IndexCase {
  std::string name;
  std::uint64_t seed = 0;  // 0 = d695, else generated with this seed
  int num_cores = 0;
  int tam_width = 32;
  bool preemptive = false;
  bool constrained = false;  // hierarchy + resources + power cap + precedence
};

std::string CaseName(const ::testing::TestParamInfo<IndexCase>& info) {
  return info.param.name;
}

TestProblem BuildProblem(const IndexCase& ic) {
  TestProblem problem;
  if (ic.seed == 0) {
    problem = TestProblem::FromSoc(MakeD695());
  } else {
    GeneratorParams params;
    params.name = "idx";
    params.seed = ic.seed;
    params.num_cores = ic.num_cores;
    params.min_inputs = 1;
    params.max_inputs = 80;
    params.min_outputs = 1;
    params.max_outputs = 80;
    params.min_patterns = 1;
    params.max_patterns = 300;
    params.min_chains = 1;
    params.max_chains = 12;
    params.min_chain_len = 1;
    params.max_chain_len = 90;
    params.max_preemptions = ic.preemptive ? 2 : 0;
    if (ic.constrained) {
      params.child_probability = 0.2;
      params.num_resources = 2;
      params.resource_probability = 0.3;
    }
    problem = TestProblem::FromSoc(GenerateSoc(params));
  }
  if (ic.constrained) {
    problem.power = PowerModel::FromSoc(problem.soc, 2.0);
    if (problem.soc.num_cores() >= 4) {
      problem.precedence.Add(0, 2);
      problem.precedence.Add(1, 3);
    }
  }
  return problem;
}

// The parameter variations the refactor touched: candidate ranking (heap
// order), sizing modes (LUT-backed preferred widths), and each admission
// heuristic toggled off (the restructured selection loops).
std::vector<OptimizerParams> ParamGrid(const IndexCase& ic) {
  OptimizerParams base;
  base.tam_width = ic.tam_width;
  base.allow_preemption = ic.preemptive;
  std::vector<OptimizerParams> grid;
  grid.push_back(base);
  grid.push_back(base);
  grid.back().rank = AdmissionRank::kWidth;
  grid.push_back(base);
  grid.back().rank = AdmissionRank::kArea;
  grid.push_back(base);
  grid.back().deadline_sizing = true;
  grid.push_back(base);
  grid.back().enable_idle_fill = false;
  grid.push_back(base);
  grid.back().enable_insert_fill = false;
  grid.push_back(base);
  grid.back().enable_width_boost = false;
  if (ic.preemptive) {
    grid.push_back(base);
    grid.back().preemption_budget_override = 1;
  }
  return grid;
}

void ExpectBitIdentical(const OptimizerResult& ref, const OptimizerResult& got,
                        const std::string& label) {
  ASSERT_EQ(ref.ok(), got.ok()) << label;
  if (!ref.ok()) return;
  EXPECT_EQ(ref.makespan, got.makespan) << label;
  EXPECT_EQ(ref.admission_rounds, got.admission_rounds) << label;

  ASSERT_EQ(ref.schedule.entries().size(), got.schedule.entries().size())
      << label;
  for (std::size_t i = 0; i < ref.schedule.entries().size(); ++i) {
    const CoreSchedule& r = ref.schedule.entries()[i];
    const CoreSchedule& g = got.schedule.entries()[i];
    const std::string at = label + " core " + std::to_string(r.core);
    EXPECT_EQ(r.core, g.core) << at;
    EXPECT_EQ(r.assigned_width, g.assigned_width) << at;
    EXPECT_EQ(r.preemptions, g.preemptions) << at;
    EXPECT_EQ(r.overhead_cycles, g.overhead_cycles) << at;
    ASSERT_EQ(r.segments.size(), g.segments.size()) << at;
    for (std::size_t s = 0; s < r.segments.size(); ++s) {
      EXPECT_EQ(r.segments[s].span.begin, g.segments[s].span.begin) << at;
      EXPECT_EQ(r.segments[s].span.end, g.segments[s].span.end) << at;
      EXPECT_EQ(r.segments[s].width, g.segments[s].width) << at;
    }
  }

  ASSERT_EQ(ref.assignments.size(), got.assignments.size()) << label;
  for (std::size_t i = 0; i < ref.assignments.size(); ++i) {
    const CoreAssignment& r = ref.assignments[i];
    const CoreAssignment& g = got.assignments[i];
    const std::string at = label + " assignment " + std::to_string(r.core);
    EXPECT_EQ(r.core, g.core) << at;
    EXPECT_EQ(r.preferred_width, g.preferred_width) << at;
    EXPECT_EQ(r.assigned_width, g.assigned_width) << at;
    EXPECT_EQ(r.test_time, g.test_time) << at;
    EXPECT_EQ(r.scheduled_time, g.scheduled_time) << at;
    EXPECT_EQ(r.preemptions, g.preemptions) << at;
  }
}

class AdmissionIndexTest : public ::testing::TestWithParam<IndexCase> {};

TEST_P(AdmissionIndexTest, BitIdenticalToReference) {
  const IndexCase ic = GetParam();
  const TestProblem problem = BuildProblem(ic);
  const CompiledProblem compiled(problem);
  ASSERT_TRUE(compiled.ok());
  ScheduleWorkspace reused;  // also covers workspace reuse across the grid
  int variant = 0;
  for (const OptimizerParams& params : ParamGrid(ic)) {
    const std::string label = ic.name + " variant " + std::to_string(variant++);
    const OptimizerResult ref = testref::ReferenceOptimize(compiled, params);
    const OptimizerResult fresh = Optimize(compiled, params);
    ExpectBitIdentical(ref, fresh, label + " (fresh ws)");
    const OptimizerResult warm = Optimize(compiled, params, reused);
    ExpectBitIdentical(ref, warm, label + " (reused ws)");
  }
}

// The effort counters are part of the deterministic contract: fixed inputs
// give fixed counts, and a reused workspace must not change them (stale
// bucket or bitset state leaking across runs would show up here first).
TEST_P(AdmissionIndexTest, CountersDeterministicAndReuseInvariant) {
  const IndexCase ic = GetParam();
  const TestProblem problem = BuildProblem(ic);
  const CompiledProblem compiled(problem);
  ASSERT_TRUE(compiled.ok());
  OptimizerParams params;
  params.tam_width = ic.tam_width;
  params.allow_preemption = ic.preemptive;

  const OptimizerResult fresh = Optimize(compiled, params);
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh.candidates_examined, 0);

  ScheduleWorkspace ws;
  const OptimizerResult first = Optimize(compiled, params, ws);
  const OptimizerResult second = Optimize(compiled, params, ws);
  for (const OptimizerResult* r : {&first, &second}) {
    ASSERT_TRUE(r->ok());
    EXPECT_EQ(fresh.makespan, r->makespan);
    EXPECT_EQ(fresh.candidates_examined, r->candidates_examined);
    EXPECT_EQ(fresh.buckets_skipped, r->buckets_skipped);
  }
}

std::vector<IndexCase> MakeCases() {
  std::vector<IndexCase> cases;
  cases.push_back({"d695_w16_np_free", 0, 0, 16, false, false});
  cases.push_back({"d695_w32_pre_con", 0, 0, 32, true, true});
  cases.push_back({"gen8_w13_np_con", 81, 8, 13, false, true});
  cases.push_back({"gen8_w32_pre_free", 82, 8, 32, true, false});
  cases.push_back({"gen16_w24_pre_con", 83, 16, 24, true, true});
  cases.push_back({"gen32_w32_np_free", 84, 32, 32, false, false});
  cases.push_back({"gen32_w16_pre_con", 85, 32, 16, true, true});
  cases.push_back({"gen64_w32_pre_con", 99, 64, 32, true, true});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AdmissionIndexEquivalence, AdmissionIndexTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

}  // namespace
}  // namespace soctest
