#include "search/driver.h"

#include <gtest/gtest.h>

#include "core/validator.h"
#include "soc/benchmarks.h"
#include "soc/generator.h"

namespace soctest {
namespace {

TestProblem GeneratedProblem(std::uint64_t seed, int cores) {
  GeneratorParams params;
  params.seed = seed;
  params.num_cores = cores;
  params.max_preemptions = 2;
  return TestProblem::FromSoc(GenerateSoc(params));
}

void ExpectIdenticalSchedules(const Schedule& a, const Schedule& b) {
  EXPECT_EQ(a.tam_width(), b.tam_width());
  EXPECT_EQ(a.Makespan(), b.Makespan());
  ASSERT_EQ(a.entries().size(), b.entries().size());
  for (std::size_t i = 0; i < a.entries().size(); ++i) {
    const auto& ea = a.entries()[i];
    const auto& eb = b.entries()[i];
    EXPECT_EQ(ea.core, eb.core);
    EXPECT_EQ(ea.assigned_width, eb.assigned_width);
    EXPECT_EQ(ea.preemptions, eb.preemptions);
    EXPECT_EQ(ea.overhead_cycles, eb.overhead_cycles);
    ASSERT_EQ(ea.segments.size(), eb.segments.size()) << "core " << ea.core;
    for (std::size_t s = 0; s < ea.segments.size(); ++s) {
      EXPECT_EQ(ea.segments[s].span, eb.segments[s].span);
      EXPECT_EQ(ea.segments[s].width, eb.segments[s].width);
    }
  }
}

TEST(SearchGridTest, CanonicalOrderAndSize) {
  OptimizerParams base;
  base.tam_width = 24;
  const auto grid = BuildRestartGrid(base);
  ASSERT_EQ(grid.size(), 200u);  // 2 ranks x 2 sizings x 10 S x 5 delta
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].index, static_cast<int>(i));
    EXPECT_EQ(grid[i].params.tam_width, 24);  // base fields preserved
  }
  // Nesting order: rank is the outermost axis, delta the innermost.
  EXPECT_EQ(grid[0].params.rank, AdmissionRank::kTime);
  EXPECT_FALSE(grid[0].params.deadline_sizing);
  EXPECT_DOUBLE_EQ(grid[0].params.s_percent, 1.0);
  EXPECT_EQ(grid[0].params.delta, 0);
  EXPECT_EQ(grid[1].params.delta, 1);
  EXPECT_DOUBLE_EQ(grid[5].params.s_percent, 2.0);
  EXPECT_TRUE(grid[50].params.deadline_sizing);
  EXPECT_EQ(grid[100].params.rank, AdmissionRank::kArea);
}

// The wide grid extends the canonical one: indices 0-199 are bit-identical
// (so equal-makespan ties still resolve to a canonical configuration), and
// the appended blocks sweep the extended axes.
TEST(SearchGridTest, WideGridExtendsCanonical) {
  OptimizerParams base;
  base.tam_width = 24;
  const auto canonical = BuildRestartGrid(base);
  const auto wide = BuildRestartGrid(base, GridExtent::kWide);
  // 200 canonical + 100 rank=width + 3*60 idle-fill slack (non-preemptive
  // base: no preemption-budget block).
  ASSERT_EQ(wide.size(), 480u);
  for (std::size_t i = 0; i < canonical.size(); ++i) {
    EXPECT_EQ(wide[i].index, static_cast<int>(i));
    EXPECT_EQ(wide[i].params.rank, canonical[i].params.rank);
    EXPECT_EQ(wide[i].params.deadline_sizing, canonical[i].params.deadline_sizing);
    EXPECT_DOUBLE_EQ(wide[i].params.s_percent, canonical[i].params.s_percent);
    EXPECT_EQ(wide[i].params.delta, canonical[i].params.delta);
    EXPECT_EQ(wide[i].params.idle_fill_slack, canonical[i].params.idle_fill_slack);
  }
  // Block order after the canonical 200: rank=width, then idle-fill slack.
  EXPECT_EQ(wide[200].params.rank, AdmissionRank::kWidth);
  EXPECT_EQ(wide[300].params.idle_fill_slack, 0);
  EXPECT_EQ(wide[360].params.idle_fill_slack, 1);
  EXPECT_EQ(wide[420].params.idle_fill_slack, 6);
  for (const auto& config : wide) {
    EXPECT_EQ(config.params.preemption_budget_override, -1);
  }

  // A preemptive base appends the budget-cap block {0, 1, 2}.
  base.allow_preemption = true;
  const auto preemptive = BuildRestartGrid(base, GridExtent::kWide);
  ASSERT_EQ(preemptive.size(), 660u);
  EXPECT_EQ(preemptive[480].params.preemption_budget_override, 0);
  EXPECT_EQ(preemptive[540].params.preemption_budget_override, 1);
  EXPECT_EQ(preemptive[600].params.preemption_budget_override, 2);
}

// The wide grid contains the canonical one as its prefix, so its best can
// never be worse — and the search stays thread-invariant over it.
TEST(SearchDriverTest, WideSearchNeverWorseAndThreadInvariant) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  const CompiledProblem compiled(problem);
  OptimizerParams params;
  params.tam_width = 24;
  SearchOptions options;
  options.threads = 1;
  const SearchOutcome narrow = RunRestartSearch(compiled, params, options);
  options.extent = GridExtent::kWide;
  const SearchOutcome wide1 = RunRestartSearch(compiled, params, options);
  options.threads = 8;
  const SearchOutcome wide8 = RunRestartSearch(compiled, params, options);
  ASSERT_TRUE(narrow.best.ok());
  ASSERT_TRUE(wide1.best.ok());
  ASSERT_TRUE(wide8.best.ok());
  EXPECT_LE(wide1.best.makespan, narrow.best.makespan);
  EXPECT_EQ(wide1.best_config, wide8.best_config);
  ExpectIdenticalSchedules(wide1.best.schedule, wide8.best.schedule);
}

// The headline determinism contract: the restart search returns an identical
// best schedule for every thread count, on d695 and d695-style generated
// SOCs, with and without preemption.
TEST(SearchDriverTest, ParallelSearchBitIdenticalToSerial) {
  std::vector<TestProblem> problems;
  problems.push_back(TestProblem::FromSoc(MakeD695()));
  problems.push_back(GeneratedProblem(3, 10));
  problems.push_back(GeneratedProblem(17, 12));
  for (const auto& problem : problems) {
    const CompiledProblem compiled(problem);
    ASSERT_TRUE(compiled.ok());
    for (const bool preempt : {false, true}) {
      OptimizerParams params;
      params.tam_width = 24;
      params.allow_preemption = preempt;

      SearchOptions serial;
      serial.threads = 1;
      const SearchOutcome one = RunRestartSearch(compiled, params, serial);

      SearchOptions parallel;
      parallel.threads = 8;
      const SearchOutcome eight = RunRestartSearch(compiled, params, parallel);

      ASSERT_TRUE(one.best.ok());
      ASSERT_TRUE(eight.best.ok());
      EXPECT_EQ(one.best_config, eight.best_config);
      EXPECT_EQ(one.best.makespan, eight.best.makespan);
      ExpectIdenticalSchedules(one.best.schedule, eight.best.schedule);
      EXPECT_TRUE(IsValidSchedule(problem, eight.best.schedule));
    }
  }
}

// The documented tie-break: among all configurations achieving the minimum
// makespan, the smallest grid index wins — independent of evaluation order.
TEST(SearchDriverTest, TieBreakPicksSmallestGridIndex) {
  const TestProblem problem = GeneratedProblem(5, 8);
  const CompiledProblem compiled(problem);
  ASSERT_TRUE(compiled.ok());
  OptimizerParams params;
  params.tam_width = 16;
  SearchOptions options;
  options.threads = 8;
  options.keep_trace = true;
  const SearchOutcome outcome = RunRestartSearch(compiled, params, options);
  ASSERT_TRUE(outcome.best.ok());
  ASSERT_EQ(outcome.makespans.size(), 200u);
  EXPECT_EQ(outcome.evaluated, 200);

  int expected = -1;
  for (std::size_t i = 0; i < outcome.makespans.size(); ++i) {
    if (outcome.makespans[i] < 0) continue;
    if (expected < 0 ||
        outcome.makespans[i] <
            outcome.makespans[static_cast<std::size_t>(expected)]) {
      expected = static_cast<int>(i);
    }
  }
  EXPECT_EQ(outcome.best_config, expected);
  EXPECT_EQ(outcome.best.makespan,
            outcome.makespans[static_cast<std::size_t>(expected)]);
  // The winner's makespan is the grid minimum, and every smaller index is
  // strictly worse (that is exactly what "smallest index on ties" means).
  for (int i = 0; i < expected; ++i) {
    const Time m = outcome.makespans[static_cast<std::size_t>(i)];
    EXPECT_TRUE(m < 0 || m > outcome.best.makespan) << "config " << i;
  }
}

// The caller-workspace serial overload (the batch-serving layer's per-worker
// path) must agree with the pooled overload at every thread count — they
// share one reduction, and this pins the contract.
TEST(SearchDriverTest, CallerWorkspaceOverloadMatchesPooled) {
  const TestProblem problem = GeneratedProblem(3, 10);
  const CompiledProblem compiled(problem);
  ASSERT_TRUE(compiled.ok());
  OptimizerParams params;
  params.tam_width = 24;
  const auto grid = BuildRestartGrid(params);
  SearchOptions options;
  options.threads = 8;
  const SearchOutcome pooled = RunRestartSearch(compiled, grid, options);
  ScheduleWorkspace ws;
  const SearchOutcome serial = RunRestartSearch(compiled, grid, ws);
  ASSERT_TRUE(pooled.best.ok());
  ASSERT_TRUE(serial.best.ok());
  EXPECT_EQ(pooled.best_config, serial.best_config);
  EXPECT_EQ(pooled.feasible, serial.feasible);
  ExpectIdenticalSchedules(pooled.best.schedule, serial.best.schedule);

  const SearchOutcome empty = RunRestartSearch(compiled, {}, ws);
  EXPECT_FALSE(empty.best.ok());
  EXPECT_EQ(empty.best_config, -1);
}

// OptimizeBestOverParams is the user-facing wrapper of the driver; its
// compatibility (TestProblem) overload and compiled overload must agree at
// every thread count.
TEST(SearchDriverTest, OptimizeBestOverParamsThreadInvariant) {
  const TestProblem problem = GeneratedProblem(9, 10);
  const CompiledProblem compiled(problem);
  OptimizerParams params;
  params.tam_width = 20;
  const OptimizerResult compat = OptimizeBestOverParams(problem, params);
  const OptimizerResult t1 = OptimizeBestOverParams(compiled, params, 1);
  const OptimizerResult t8 = OptimizeBestOverParams(compiled, params, 8);
  ASSERT_TRUE(compat.ok());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t8.ok());
  EXPECT_EQ(compat.makespan, t1.makespan);
  EXPECT_EQ(t1.makespan, t8.makespan);
  ExpectIdenticalSchedules(compat.schedule, t1.schedule);
  ExpectIdenticalSchedules(t1.schedule, t8.schedule);
}

// Unschedulable inputs surface one deterministic error, not a race on which
// configuration failed "first".
TEST(SearchDriverTest, AllConfigsFailingPropagatesError) {
  Soc soc("invalid");
  CoreSpec core;
  core.name = "empty";  // no patterns/IO: Soc::Validate rejects it
  soc.AddCore(core);
  const TestProblem problem = TestProblem::FromSoc(std::move(soc));
  const CompiledProblem compiled(problem);
  EXPECT_FALSE(compiled.ok());
  OptimizerParams params;
  params.tam_width = 16;
  SearchOptions options;
  options.threads = 4;
  const SearchOutcome outcome = RunRestartSearch(compiled, params, options);
  EXPECT_FALSE(outcome.best.ok());
  EXPECT_EQ(outcome.best_config, -1);
  EXPECT_EQ(outcome.feasible, 0);
}

}  // namespace
}  // namespace soctest
