#include "util/interval.h"

#include <gtest/gtest.h>

namespace soctest {
namespace {

TEST(IntervalTest, LengthAndEmptiness) {
  EXPECT_EQ((Interval{2, 7}.length()), 5);
  EXPECT_TRUE((Interval{3, 3}.empty()));
  EXPECT_TRUE((Interval{5, 2}.empty()));
  EXPECT_EQ((Interval{5, 2}.length()), 0);
}

TEST(IntervalTest, ContainsIsHalfOpen) {
  const Interval iv{2, 5};
  EXPECT_FALSE(iv.Contains(1));
  EXPECT_TRUE(iv.Contains(2));
  EXPECT_TRUE(iv.Contains(4));
  EXPECT_FALSE(iv.Contains(5));
}

TEST(OverlapsTest, SharedInteriorOverlaps) {
  EXPECT_TRUE(Overlaps({0, 10}, {5, 15}));
  EXPECT_TRUE(Overlaps({5, 15}, {0, 10}));
  EXPECT_TRUE(Overlaps({0, 10}, {2, 3}));
}

TEST(OverlapsTest, TouchingEndpointsDoNotOverlap) {
  EXPECT_FALSE(Overlaps({0, 5}, {5, 10}));
  EXPECT_FALSE(Overlaps({5, 10}, {0, 5}));
}

TEST(OverlapsTest, EmptyNeverOverlaps) {
  EXPECT_FALSE(Overlaps({3, 3}, {0, 10}));
  EXPECT_FALSE(Overlaps({0, 10}, {7, 7}));
}

TEST(IntersectTest, ComputesSharedSpan) {
  const Interval iv = Intersect({0, 10}, {5, 15});
  EXPECT_EQ(iv.begin, 5);
  EXPECT_EQ(iv.end, 10);
  EXPECT_TRUE(Intersect({0, 5}, {7, 9}).empty());
}

TEST(StepProfileTest, MaxOfOverlappingWeights) {
  StepProfile p;
  p.Add({0, 10}, 3);
  p.Add({5, 15}, 4);
  EXPECT_EQ(p.Max(), 7);
  EXPECT_EQ(p.ValueAt(0), 3);
  EXPECT_EQ(p.ValueAt(5), 7);
  EXPECT_EQ(p.ValueAt(10), 4);
  EXPECT_EQ(p.ValueAt(15), 0);
  EXPECT_EQ(p.ValueAt(-1), 0);
}

TEST(StepProfileTest, EmptyProfile) {
  StepProfile p;
  EXPECT_EQ(p.Max(), 0);
  EXPECT_EQ(p.ValueAt(0), 0);
  EXPECT_EQ(p.Area(), 0);
}

TEST(StepProfileTest, IgnoresEmptyAndZeroWeight) {
  StepProfile p;
  p.Add({5, 5}, 10);
  p.Add({0, 10}, 0);
  EXPECT_EQ(p.Max(), 0);
}

TEST(StepProfileTest, AreaIsWeightTimesLength) {
  StepProfile p;
  p.Add({0, 10}, 2);
  p.Add({5, 20}, 3);
  EXPECT_EQ(p.Area(), 2 * 10 + 3 * 15);
}

TEST(StepProfileTest, NegativeWeightsCancel) {
  StepProfile p;
  p.Add({0, 10}, 5);
  p.Add({2, 8}, -5);
  EXPECT_EQ(p.ValueAt(5), 0);
  EXPECT_EQ(p.Max(), 5);
}

TEST(StepProfileTest, FlattenMergesSimultaneousEvents) {
  StepProfile p;
  p.Add({0, 5}, 1);
  p.Add({5, 10}, 1);  // release+acquire at t=5 must not create a step
  const auto steps = p.Flatten();
  ASSERT_EQ(steps.breakpoints.size(), 2u);
  EXPECT_EQ(steps.breakpoints[0], 0);
  EXPECT_EQ(steps.values[0], 1);
  EXPECT_EQ(steps.breakpoints[1], 10);
  EXPECT_EQ(steps.values[1], 0);
}

TEST(NormalizeIntervalsTest, MergesOverlapsAndAdjacency) {
  auto merged = NormalizeIntervals({{5, 7}, {0, 3}, {3, 5}, {10, 12}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (Interval{0, 7}));
  EXPECT_EQ(merged[1], (Interval{10, 12}));
}

TEST(NormalizeIntervalsTest, DropsEmpty) {
  auto merged = NormalizeIntervals({{4, 4}, {9, 2}});
  EXPECT_TRUE(merged.empty());
}

TEST(TotalCoverageTest, CountsEachInstantOnce) {
  EXPECT_EQ(TotalCoverage({{0, 10}, {5, 15}, {20, 21}}), 16);
  EXPECT_EQ(TotalCoverage({}), 0);
}

}  // namespace
}  // namespace soctest
