#include "core/schedule.h"

#include <gtest/gtest.h>

namespace soctest {
namespace {

CoreSchedule Entry(CoreId core, int width,
                   std::vector<std::pair<Time, Time>> spans, int preemptions = 0) {
  CoreSchedule e;
  e.core = core;
  e.assigned_width = width;
  for (const auto& [b, t] : spans) {
    e.segments.push_back(ScheduleSegment{Interval{b, t}, width});
  }
  e.preemptions = preemptions;
  return e;
}

TEST(CoreScheduleTest, BeginEndActive) {
  const CoreSchedule e = Entry(0, 4, {{10, 20}, {30, 45}}, 1);
  EXPECT_EQ(e.BeginTime(), 10);
  EXPECT_EQ(e.EndTime(), 45);
  EXPECT_EQ(e.ActiveTime(), 25);
}

TEST(CoreScheduleTest, EmptyEntry) {
  CoreSchedule e;
  EXPECT_EQ(e.BeginTime(), 0);
  EXPECT_EQ(e.EndTime(), 0);
  EXPECT_EQ(e.ActiveTime(), 0);
}

TEST(ScheduleTest, MakespanIsLatestEnd) {
  Schedule s("soc", 8);
  s.Add(Entry(0, 4, {{0, 100}}));
  s.Add(Entry(1, 4, {{0, 60}, {70, 130}}));
  EXPECT_EQ(s.Makespan(), 130);
  EXPECT_EQ(s.tam_width(), 8);
  EXPECT_EQ(s.soc_name(), "soc");
}

TEST(ScheduleTest, UsedAndIdleArea) {
  Schedule s("soc", 8);
  s.Add(Entry(0, 4, {{0, 100}}));
  s.Add(Entry(1, 2, {{0, 50}}));
  EXPECT_EQ(s.UsedArea(), 4 * 100 + 2 * 50);
  EXPECT_EQ(s.IdleArea(), 8 * 100 - 500);
  EXPECT_DOUBLE_EQ(s.Utilization(), 500.0 / 800.0);
}

TEST(ScheduleTest, PeakWidthViaProfile) {
  Schedule s("soc", 10);
  s.Add(Entry(0, 4, {{0, 100}}));
  s.Add(Entry(1, 5, {{50, 150}}));
  s.Add(Entry(2, 3, {{140, 160}}));
  EXPECT_EQ(s.PeakWidth(), 9);  // cores 0+1 overlap on [50,100)
}

TEST(ScheduleTest, FindCore) {
  Schedule s("soc", 4);
  s.Add(Entry(7, 2, {{0, 10}}));
  ASSERT_NE(s.FindCore(7), nullptr);
  EXPECT_EQ(s.FindCore(7)->assigned_width, 2);
  EXPECT_EQ(s.FindCore(3), nullptr);
}

TEST(ScheduleTest, TotalsAcrossEntries) {
  Schedule s("soc", 4);
  s.Add(Entry(0, 1, {{0, 10}}, 0));
  s.Add(Entry(1, 1, {{0, 5}, {8, 13}}, 1));
  EXPECT_EQ(s.TotalActiveTime(), 20);
  EXPECT_EQ(s.TotalPreemptions(), 1);
}

TEST(ScheduleTest, EmptySchedule) {
  Schedule s;
  EXPECT_EQ(s.Makespan(), 0);
  EXPECT_EQ(s.PeakWidth(), 0);
  EXPECT_DOUBLE_EQ(s.Utilization(), 0.0);
}

}  // namespace
}  // namespace soctest
