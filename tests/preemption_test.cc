// Focused tests of the preemptive scheduling semantics (paper Problem 2).
#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "core/validator.h"
#include "soc/benchmarks.h"
#include "wrapper/wrapper_design.h"

namespace soctest {
namespace {

CoreSpec Core(const std::string& name, int io, std::int64_t patterns,
              std::vector<int> chains, int max_preemptions) {
  CoreSpec c;
  c.name = name;
  c.num_inputs = io;
  c.num_outputs = io;
  c.num_patterns = patterns;
  c.scan_chain_lengths = std::move(chains);
  c.max_preemptions = max_preemptions;
  return c;
}

TEST(PreemptionTest, DisabledByDefault) {
  Soc soc("np");
  soc.AddCore(Core("a", 4, 200, {30, 30}, 2));
  soc.AddCore(Core("b", 4, 200, {30, 30}, 2));
  const TestProblem problem = TestProblem::FromSoc(std::move(soc));
  OptimizerParams params;
  params.tam_width = 8;
  params.allow_preemption = false;  // master switch overrides core budgets
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.schedule.TotalPreemptions(), 0);
}

TEST(PreemptionTest, LimitsRespectedUnderContention) {
  // Narrow TAM + concurrency conflicts force pauses; limits must still hold.
  Soc soc("lim");
  soc.AddCore(Core("long1", 2, 400, {25}, 1));
  soc.AddCore(Core("long2", 2, 400, {25}, 1));
  soc.AddCore(Core("long3", 2, 400, {25}, 1));
  soc.AddCore(Core("short", 2, 40, {10}, 0));
  TestProblem problem = TestProblem::FromSoc(std::move(soc));
  problem.concurrency.Add(0, 1);
  OptimizerParams params;
  params.tam_width = 4;
  params.allow_preemption = true;
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  ValidationOptions options;
  options.check_preemption_limits = true;
  const auto violations = ValidateSchedule(problem, result.schedule, options);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
}

TEST(PreemptionTest, EachPreemptionPaysScanFlush) {
  const Soc soc = MakeD695();
  TestProblem problem = MakeBenchmarkProblem(soc, false);
  OptimizerParams params;
  params.tam_width = 24;
  params.allow_preemption = true;
  const auto result = OptimizeBestOverParams(problem, params);
  ASSERT_TRUE(result.ok());
  for (const auto& entry : result.schedule.entries()) {
    const auto& core = problem.soc.core(entry.core);
    const WrapperConfig config = DesignWrapper(core, entry.assigned_width);
    const Time expected_overhead =
        (config.scan_in_length + config.scan_out_length) * entry.preemptions;
    EXPECT_EQ(entry.overhead_cycles, expected_overhead) << core.name;
    EXPECT_EQ(entry.ActiveTime(),
              config.TestTime(core.num_patterns) + expected_overhead);
  }
}

TEST(PreemptionTest, SegmentsNeverOverlapAndStayOrdered) {
  TestProblem problem = MakeBenchmarkProblem(MakeP22810s(), true);
  OptimizerParams params;
  params.tam_width = 20;
  params.allow_preemption = true;
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  for (const auto& entry : result.schedule.entries()) {
    for (std::size_t i = 1; i < entry.segments.size(); ++i) {
      EXPECT_GE(entry.segments[i].span.begin, entry.segments[i - 1].span.end);
    }
    EXPECT_LE(static_cast<int>(entry.segments.size()), entry.preemptions + 1);
  }
}

TEST(PreemptionTest, PreemptiveNeverInvalidAcrossWidths) {
  TestProblem problem = MakeBenchmarkProblem(MakeD695(), false);
  for (int w : {6, 12, 20, 33, 50}) {
    OptimizerParams params;
    params.tam_width = w;
    params.allow_preemption = true;
    const auto result = Optimize(problem, params);
    ASSERT_TRUE(result.ok()) << "W=" << w;
    const auto violations = ValidateSchedule(problem, result.schedule);
    EXPECT_TRUE(violations.empty()) << "W=" << w << "\n"
                                    << FormatViolations(violations);
  }
}

TEST(PreemptionTest, ZeroBudgetCoreNeverSplit) {
  Soc soc("mix");
  soc.AddCore(Core("rigid", 4, 300, {40}, 0));
  soc.AddCore(Core("flex1", 4, 300, {40}, 3));
  soc.AddCore(Core("flex2", 4, 300, {40}, 3));
  TestProblem problem = TestProblem::FromSoc(std::move(soc));
  OptimizerParams params;
  params.tam_width = 6;
  params.allow_preemption = true;
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  const auto* rigid = result.schedule.FindCore(0);
  ASSERT_NE(rigid, nullptr);
  EXPECT_EQ(rigid->segments.size(), 1u);
  EXPECT_EQ(rigid->preemptions, 0);
}

// Paper Table 1 observation: preemption usually helps or ties, but the
// (s_i + s_o) flush overhead can make it lose on SOCs with many short tests.
TEST(PreemptionTest, OverheadCanMakePreemptionWorse) {
  // This is a statistical property across the benchmark set; we assert the
  // weaker guarantee that both modes stay within a few percent of each other
  // and that at least one benchmark shows preemptive <= non-preemptive.
  bool preemptive_wins_somewhere = false;
  for (const auto& soc : {MakeD695(), MakeP34392s()}) {
    TestProblem problem = MakeBenchmarkProblem(soc, false);
    OptimizerParams params;
    params.tam_width = 32;
    params.allow_preemption = false;
    const auto np = OptimizeBestOverParams(problem, params);
    params.allow_preemption = true;
    const auto pre = OptimizeBestOverParams(problem, params);
    ASSERT_TRUE(np.ok() && pre.ok());
    preemptive_wins_somewhere |= pre.makespan <= np.makespan;
    EXPECT_LT(std::abs(static_cast<double>(pre.makespan - np.makespan)),
              0.15 * static_cast<double>(np.makespan));
  }
  EXPECT_TRUE(preemptive_wins_somewhere);
}

}  // namespace
}  // namespace soctest
