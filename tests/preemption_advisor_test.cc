#include "core/preemption_advisor.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "core/validator.h"
#include "soc/benchmarks.h"

namespace soctest {
namespace {

CoreSpec Core(const std::string& name, std::int64_t patterns,
              std::vector<int> chains) {
  CoreSpec c;
  c.name = name;
  c.num_inputs = 4;
  c.num_outputs = 4;
  c.num_patterns = patterns;
  c.scan_chain_lengths = std::move(chains);
  return c;
}

TEST(PreemptionAdvisorTest, LongTestsEarnBudget) {
  Soc soc("adv");
  soc.AddCore(Core("long", 5000, {30, 30}));  // thousands of flushes long
  soc.AddCore(Core("short", 3, {30, 30}));    // a handful of flushes long
  const auto advice = AdvisePreemption(soc);
  ASSERT_EQ(advice.size(), 2u);
  EXPECT_GT(advice[0].recommended_budget, 0);
  EXPECT_EQ(advice[1].recommended_budget, 0);
  EXPECT_GT(advice[0].ratio, advice[1].ratio);
}

TEST(PreemptionAdvisorTest, BudgetCappedAtMax) {
  Soc soc("cap");
  soc.AddCore(Core("huge", 100000, {20}));
  AdvisorParams params;
  params.max_budget = 2;
  const auto advice = AdvisePreemption(soc, params);
  EXPECT_EQ(advice[0].recommended_budget, 2);
}

TEST(PreemptionAdvisorTest, ThresholdControlsStrictness) {
  Soc soc("thr");
  soc.AddCore(Core("mid", 300, {40, 40}));
  AdvisorParams lenient;
  lenient.ratio_threshold = 10.0;
  AdvisorParams strict;
  strict.ratio_threshold = 1000.0;
  const auto lo = AdvisePreemption(soc, strict);
  const auto hi = AdvisePreemption(soc, lenient);
  EXPECT_LE(lo[0].recommended_budget, hi[0].recommended_budget);
}

TEST(PreemptionAdvisorTest, ApplyWritesBudgets) {
  Soc soc = MakeD695();
  ApplyPreemptionAdvice(soc);
  const auto advice = AdvisePreemption(soc);
  for (const auto& a : advice) {
    EXPECT_EQ(soc.core(a.core).max_preemptions, a.recommended_budget);
  }
}

TEST(PreemptionAdvisorTest, AdvisedBudgetsYieldValidSchedules) {
  Soc soc = MakeD695();
  ApplyPreemptionAdvice(soc);
  const TestProblem problem = TestProblem::FromSoc(std::move(soc));
  OptimizerParams params;
  params.tam_width = 24;
  params.allow_preemption = true;
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  const auto violations = ValidateSchedule(problem, result.schedule);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
}

TEST(PreemptionAdvisorTest, RatioIsTestTimeOverFlush) {
  Soc soc("ratio");
  soc.AddCore(Core("c", 100, {50}));
  const auto advice = AdvisePreemption(soc);
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_GT(advice[0].flush_cost, 0);
  EXPECT_NEAR(advice[0].ratio,
              static_cast<double>(advice[0].test_time) /
                  static_cast<double>(advice[0].flush_cost),
              1e-9);
}

}  // namespace
}  // namespace soctest
