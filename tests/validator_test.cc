#include "core/validator.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "soc/benchmarks.h"

namespace soctest {
namespace {

// Builds a known-good schedule via the optimizer, then corrupts it in
// specific ways and checks the validator flags each corruption.
class ValidatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    problem_ = TestProblem::FromSoc(MakeD695());
    OptimizerParams params;
    params.tam_width = 32;
    auto result = Optimize(problem_, params);
    ASSERT_TRUE(result.ok());
    schedule_ = std::move(result.schedule);
  }

  TestProblem problem_;
  Schedule schedule_;
};

TEST_F(ValidatorTest, AcceptsOptimizerOutput) {
  const auto violations = ValidateSchedule(problem_, schedule_);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
  EXPECT_TRUE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsMissingCore) {
  schedule_.mutable_entries().pop_back();
  EXPECT_FALSE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsDuplicateCore) {
  schedule_.Add(schedule_.entries().front());
  EXPECT_FALSE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsUnknownCoreId) {
  schedule_.mutable_entries().front().core = 99;
  EXPECT_FALSE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsWidthOverflow) {
  // Stretch one core's width beyond the bin: aggregate profile must trip.
  auto& entry = schedule_.mutable_entries().front();
  entry.assigned_width = schedule_.tam_width() + 1;
  for (auto& seg : entry.segments) seg.width = entry.assigned_width;
  EXPECT_FALSE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsDurationTampering) {
  auto& entry = schedule_.mutable_entries().front();
  entry.segments.back().span.end += 1;
  EXPECT_FALSE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsSegmentWidthMismatch) {
  auto& entry = schedule_.mutable_entries().front();
  // Keep duration identical but lie about the segment width.
  entry.segments.front().width -= 1;
  EXPECT_FALSE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsNegativeTime) {
  auto& entry = schedule_.mutable_entries().front();
  const Time len = entry.segments.front().span.length();
  entry.segments.front().span.begin = -5;
  entry.segments.front().span.end = -5 + len;
  EXPECT_FALSE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsPreemptionOverLimit) {
  auto& entry = schedule_.mutable_entries().front();
  // Fabricate a split: same total duration but two segments, zero budget.
  const auto seg = entry.segments.front();
  const Time mid = seg.span.begin + seg.span.length() / 2;
  ASSERT_GT(seg.span.length(), 1);
  entry.segments.clear();
  entry.segments.push_back({{seg.span.begin, mid}, seg.width});
  entry.segments.push_back({{mid + 10, seg.span.end + 10}, seg.width});
  entry.preemptions = 0;  // lies: 2 segments need >= 1 preemption
  EXPECT_FALSE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsPrecedenceViolation) {
  TestProblem constrained = problem_;
  // Add a precedence edge the schedule certainly violates: the last-ending
  // core must precede the first-beginning one.
  CoreId last_end = 0;
  CoreId first_begin = 0;
  Time latest = -1;
  Time earliest = -1;
  for (const auto& e : schedule_.entries()) {
    if (e.EndTime() > latest) {
      latest = e.EndTime();
      last_end = e.core;
    }
    if (earliest < 0 || e.BeginTime() < earliest) {
      earliest = e.BeginTime();
      first_begin = e.core;
    }
  }
  ASSERT_NE(last_end, first_begin);
  constrained.precedence = PrecedenceGraph(constrained.soc.num_cores());
  constrained.precedence.Add(last_end, first_begin);
  EXPECT_FALSE(IsValidSchedule(constrained, schedule_));
}

TEST_F(ValidatorTest, DetectsConcurrencyViolation) {
  // Find two overlapping cores and declare them mutually exclusive.
  TestProblem constrained = problem_;
  bool planted = false;
  const auto& entries = schedule_.entries();
  for (std::size_t i = 0; i < entries.size() && !planted; ++i) {
    for (std::size_t j = i + 1; j < entries.size() && !planted; ++j) {
      for (const auto& a : entries[i].segments) {
        for (const auto& b : entries[j].segments) {
          if (Overlaps(a.span, b.span)) {
            constrained.concurrency.Add(entries[i].core, entries[j].core);
            planted = true;
          }
        }
      }
    }
  }
  ASSERT_TRUE(planted) << "schedule unexpectedly fully serial";
  EXPECT_FALSE(IsValidSchedule(constrained, schedule_));
}

TEST_F(ValidatorTest, DetectsPowerViolation) {
  TestProblem constrained = problem_;
  constrained.power = PowerModel::FromSoc(constrained.soc, 1.0);
  // Shrink the budget below what the (unconstrained) schedule actually draws.
  StepProfile profile;
  for (const auto& e : schedule_.entries()) {
    for (const auto& seg : e.segments) {
      profile.Add(seg.span, constrained.power.PowerOf(e.core));
    }
  }
  const auto peak = profile.Max();
  ASSERT_GT(peak, constrained.power.MaxCorePower())
      << "schedule never overlaps two cores; cannot plant a power violation";
  constrained.power.set_pmax(peak - 1);
  EXPECT_FALSE(IsValidSchedule(constrained, schedule_));
}

TEST_F(ValidatorTest, DetectsTimelineBudgetViolation) {
  // A schedule valid under a constant cap becomes invalid when the budget
  // drops below the draw in some window — and the violation names the window.
  TestProblem constrained = problem_;
  constrained.power = PowerModel::FromSoc(constrained.soc, 10.0);
  StepProfile profile;
  for (const auto& e : schedule_.entries()) {
    for (const auto& seg : e.segments) {
      profile.Add(seg.span, constrained.power.PowerOf(e.core));
    }
  }
  const auto peak = profile.Max();
  // Generous everywhere except a drop to peak-1 over the whole schedule from
  // cycle 1 on: the peak window (wherever it is) must trip.
  constrained.power.set_budget(
      PowerBudget::FromSegments({{0, peak}, {1, peak - 1}}).value());
  const auto violations = ValidateSchedule(constrained, schedule_);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().message.find("exceeds budget"),
            std::string::npos)
      << violations.front().message;

  // The same timeline with the drop kept at the true peak stays valid.
  constrained.power.set_budget(
      PowerBudget::FromSegments({{0, peak + 1}, {1, peak}}).value());
  EXPECT_TRUE(IsValidSchedule(constrained, schedule_));
}

TEST_F(ValidatorTest, PriorityOrderDiagnostic) {
  // Two-core SOC, serial because of a tight constant budget. Scheduling the
  // low-class core first while the hot-lot core was equally admissible is
  // exactly what the diagnostic exists to flag.
  Soc soc("prio");
  for (int i = 0; i < 2; ++i) {
    CoreSpec c;
    c.name = i == 0 ? "hot" : "cold";
    c.num_inputs = 4;
    c.num_outputs = 4;
    c.num_patterns = 10;
    c.power = 10;
    c.prio = i == 0 ? 0 : 3;
    soc.AddCore(c);
  }
  TestProblem problem = TestProblem::FromSoc(soc);
  problem.power = PowerModel({10, 10}, 10);  // serial: one core at a time

  OptimizerParams params;
  params.tam_width = 32;
  params.honor_priority = false;  // pretend priorities don't exist
  auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());

  ValidationOptions options;
  options.check_priority_order = true;
  const auto violations = ValidateSchedule(problem, result.schedule, options);
  // Either order is possible from the ranking; the diagnostic fires iff the
  // cold core went first. Force the bad order by swapping if needed.
  Schedule bad = result.schedule;
  auto& entries = bad.mutable_entries();
  ASSERT_EQ(entries.size(), 2u);
  const bool hot_first =
      entries[0].core == 0
          ? entries[0].BeginTime() < entries[1].BeginTime()
          : entries[1].BeginTime() < entries[0].BeginTime();
  if (hot_first) {
    // Swap the two cores' slots: identical wrapper times make the swapped
    // schedule structurally valid but priority-inverted.
    std::swap(entries[0].core, entries[1].core);
  }
  const auto flagged = ValidateSchedule(problem, bad, options);
  bool saw_priority = false;
  for (const auto& v : flagged) {
    saw_priority |= v.message.find("priority order violated") !=
                    std::string::npos;
  }
  EXPECT_TRUE(saw_priority) << FormatViolations(flagged);

  // With the diagnostic off (the default), the same schedule passes.
  EXPECT_TRUE(IsValidSchedule(problem, bad));
  (void)violations;
}

TEST_F(ValidatorTest, FormatViolationsListsEachProblem) {
  schedule_.mutable_entries().pop_back();
  const auto violations = ValidateSchedule(problem_, schedule_);
  ASSERT_FALSE(violations.empty());
  const std::string text = FormatViolations(violations);
  EXPECT_NE(text.find("missing"), std::string::npos);
}

TEST_F(ValidatorTest, ExactDurationCheckCanBeDisabled) {
  auto& entry = schedule_.mutable_entries().front();
  entry.segments.back().span.end += 1;
  ValidationOptions options;
  options.check_exact_durations = false;
  // Still must satisfy capacity etc., which a 1-cycle stretch rarely breaks.
  const auto violations = ValidateSchedule(problem_, schedule_, options);
  for (const auto& v : violations) {
    EXPECT_EQ(v.message.find("active time"), std::string::npos) << v.message;
  }
}

}  // namespace
}  // namespace soctest
