#include "core/validator.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "soc/benchmarks.h"

namespace soctest {
namespace {

// Builds a known-good schedule via the optimizer, then corrupts it in
// specific ways and checks the validator flags each corruption.
class ValidatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    problem_ = TestProblem::FromSoc(MakeD695());
    OptimizerParams params;
    params.tam_width = 32;
    auto result = Optimize(problem_, params);
    ASSERT_TRUE(result.ok());
    schedule_ = std::move(result.schedule);
  }

  TestProblem problem_;
  Schedule schedule_;
};

TEST_F(ValidatorTest, AcceptsOptimizerOutput) {
  const auto violations = ValidateSchedule(problem_, schedule_);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
  EXPECT_TRUE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsMissingCore) {
  schedule_.mutable_entries().pop_back();
  EXPECT_FALSE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsDuplicateCore) {
  schedule_.Add(schedule_.entries().front());
  EXPECT_FALSE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsUnknownCoreId) {
  schedule_.mutable_entries().front().core = 99;
  EXPECT_FALSE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsWidthOverflow) {
  // Stretch one core's width beyond the bin: aggregate profile must trip.
  auto& entry = schedule_.mutable_entries().front();
  entry.assigned_width = schedule_.tam_width() + 1;
  for (auto& seg : entry.segments) seg.width = entry.assigned_width;
  EXPECT_FALSE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsDurationTampering) {
  auto& entry = schedule_.mutable_entries().front();
  entry.segments.back().span.end += 1;
  EXPECT_FALSE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsSegmentWidthMismatch) {
  auto& entry = schedule_.mutable_entries().front();
  // Keep duration identical but lie about the segment width.
  entry.segments.front().width -= 1;
  EXPECT_FALSE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsNegativeTime) {
  auto& entry = schedule_.mutable_entries().front();
  const Time len = entry.segments.front().span.length();
  entry.segments.front().span.begin = -5;
  entry.segments.front().span.end = -5 + len;
  EXPECT_FALSE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsPreemptionOverLimit) {
  auto& entry = schedule_.mutable_entries().front();
  // Fabricate a split: same total duration but two segments, zero budget.
  const auto seg = entry.segments.front();
  const Time mid = seg.span.begin + seg.span.length() / 2;
  ASSERT_GT(seg.span.length(), 1);
  entry.segments.clear();
  entry.segments.push_back({{seg.span.begin, mid}, seg.width});
  entry.segments.push_back({{mid + 10, seg.span.end + 10}, seg.width});
  entry.preemptions = 0;  // lies: 2 segments need >= 1 preemption
  EXPECT_FALSE(IsValidSchedule(problem_, schedule_));
}

TEST_F(ValidatorTest, DetectsPrecedenceViolation) {
  TestProblem constrained = problem_;
  // Add a precedence edge the schedule certainly violates: the last-ending
  // core must precede the first-beginning one.
  CoreId last_end = 0;
  CoreId first_begin = 0;
  Time latest = -1;
  Time earliest = -1;
  for (const auto& e : schedule_.entries()) {
    if (e.EndTime() > latest) {
      latest = e.EndTime();
      last_end = e.core;
    }
    if (earliest < 0 || e.BeginTime() < earliest) {
      earliest = e.BeginTime();
      first_begin = e.core;
    }
  }
  ASSERT_NE(last_end, first_begin);
  constrained.precedence = PrecedenceGraph(constrained.soc.num_cores());
  constrained.precedence.Add(last_end, first_begin);
  EXPECT_FALSE(IsValidSchedule(constrained, schedule_));
}

TEST_F(ValidatorTest, DetectsConcurrencyViolation) {
  // Find two overlapping cores and declare them mutually exclusive.
  TestProblem constrained = problem_;
  bool planted = false;
  const auto& entries = schedule_.entries();
  for (std::size_t i = 0; i < entries.size() && !planted; ++i) {
    for (std::size_t j = i + 1; j < entries.size() && !planted; ++j) {
      for (const auto& a : entries[i].segments) {
        for (const auto& b : entries[j].segments) {
          if (Overlaps(a.span, b.span)) {
            constrained.concurrency.Add(entries[i].core, entries[j].core);
            planted = true;
          }
        }
      }
    }
  }
  ASSERT_TRUE(planted) << "schedule unexpectedly fully serial";
  EXPECT_FALSE(IsValidSchedule(constrained, schedule_));
}

TEST_F(ValidatorTest, DetectsPowerViolation) {
  TestProblem constrained = problem_;
  constrained.power = PowerModel::FromSoc(constrained.soc, 1.0);
  // Shrink the budget below what the (unconstrained) schedule actually draws.
  StepProfile profile;
  for (const auto& e : schedule_.entries()) {
    for (const auto& seg : e.segments) {
      profile.Add(seg.span, constrained.power.PowerOf(e.core));
    }
  }
  const auto peak = profile.Max();
  ASSERT_GT(peak, constrained.power.MaxCorePower())
      << "schedule never overlaps two cores; cannot plant a power violation";
  constrained.power.set_pmax(peak - 1);
  EXPECT_FALSE(IsValidSchedule(constrained, schedule_));
}

TEST_F(ValidatorTest, FormatViolationsListsEachProblem) {
  schedule_.mutable_entries().pop_back();
  const auto violations = ValidateSchedule(problem_, schedule_);
  ASSERT_FALSE(violations.empty());
  const std::string text = FormatViolations(violations);
  EXPECT_NE(text.find("missing"), std::string::npos);
}

TEST_F(ValidatorTest, ExactDurationCheckCanBeDisabled) {
  auto& entry = schedule_.mutable_entries().front();
  entry.segments.back().span.end += 1;
  ValidationOptions options;
  options.check_exact_durations = false;
  // Still must satisfy capacity etc., which a 1-cycle stretch rarely breaks.
  const auto violations = ValidateSchedule(problem_, schedule_, options);
  for (const auto& v : violations) {
    EXPECT_EQ(v.message.find("active time"), std::string::npos) << v.message;
  }
}

}  // namespace
}  // namespace soctest
