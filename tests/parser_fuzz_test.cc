// Robustness suite: the .soc parser must never crash and must return either
// a valid SOC or a located error, for arbitrarily mutated inputs.
#include <gtest/gtest.h>

#include "soc/benchmarks.h"
#include "soc/soc_parser.h"
#include "util/rng.h"
#include "util/strings.h"

namespace soctest {
namespace {

// Checks the parser's postcondition on arbitrary text.
void ExpectParserTotal(const std::string& text) {
  const ParseResult result = ParseSocText(text);
  if (const auto* parsed = std::get_if<ParsedSoc>(&result)) {
    // Success implies a structurally valid SOC and resolvable constraints.
    EXPECT_FALSE(parsed->soc.Validate().has_value());
    for (const auto& [a, b] : parsed->precedence) {
      EXPECT_GE(a, 0);
      EXPECT_LT(a, parsed->soc.num_cores());
      EXPECT_GE(b, 0);
      EXPECT_LT(b, parsed->soc.num_cores());
    }
  } else {
    const auto& err = std::get<ParseError>(result);
    EXPECT_FALSE(err.message.empty());
    EXPECT_GE(err.line, 0);
  }
}

class ParserFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzzTest, CharacterMutationsNeverCrash) {
  Rng rng(GetParam());
  std::string text = SerializeSoc(MakeD695());
  for (int round = 0; round < 50; ++round) {
    // Mutate 1-4 random positions.
    const int edits = static_cast<int>(rng.UniformInt(1, 4));
    std::string mutated = text;
    for (int e = 0; e < edits; ++e) {
      if (mutated.empty()) break;
      const auto pos = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(mutated.size()) - 1));
      const auto op = rng.UniformInt(0, 2);
      if (op == 0) {
        mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
      } else if (op == 1) {
        mutated.erase(pos, 1);
      } else {
        mutated.insert(pos, 1, static_cast<char>(rng.UniformInt(32, 126)));
      }
    }
    ExpectParserTotal(mutated);
  }
}

TEST_P(ParserFuzzTest, LineShufflesNeverCrash) {
  Rng rng(GetParam() ^ 0xabcdef);
  const std::string text = SerializeSoc(MakeP22810s());
  std::vector<std::string> lines = SplitLines(text);
  for (int round = 0; round < 10; ++round) {
    rng.Shuffle(lines);
    std::string shuffled;
    for (const auto& line : lines) {
      shuffled += line;
      shuffled += '\n';
    }
    ExpectParserTotal(shuffled);
  }
}

TEST_P(ParserFuzzTest, TruncationsNeverCrash) {
  Rng rng(GetParam() ^ 0x1234);
  const std::string text = SerializeSoc(MakeP34392s());
  for (int round = 0; round < 20; ++round) {
    const auto cut = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(text.size())));
    ExpectParserTotal(text.substr(0, cut));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST(ParserHostileInputTest, PathologicalDocuments) {
  ExpectParserTotal(std::string(1 << 16, 'x'));
  ExpectParserTotal(std::string(1 << 12, '\n'));
  ExpectParserTotal("soc a\n" + std::string(4096, '#') + "\n");
  ExpectParserTotal("soc \xff\xfe\n");
  ExpectParserTotal("soc a\ncore c\npatterns 999999999999999999999\nend\n");
  ExpectParserTotal("soc a\ncore c\ninputs -999999999999\nend\n");
  // Deep but valid: 200 cores chained by parent links.
  std::string deep = "soc deep\n";
  for (int i = 0; i < 200; ++i) {
    deep += "core c" + std::to_string(i) + "\n  inputs 1\n  outputs 1\n  patterns 1\n";
    if (i > 0) deep += "  parent c" + std::to_string(i - 1) + "\n";
    deep += "end\n";
  }
  const auto result = ParseSocText(deep);
  EXPECT_TRUE(std::holds_alternative<ParsedSoc>(result));
}

}  // namespace
}  // namespace soctest
