// Robustness suite: the .soc parser, the request-line parser, and the
// network line protocol must never crash and must return either a valid
// result or a located error, for arbitrarily mutated inputs.
#include <gtest/gtest.h>

#include <variant>

#include "service/net/protocol.h"
#include "service/request.h"
#include "soc/benchmarks.h"
#include "soc/soc_parser.h"
#include "util/rng.h"
#include "util/strings.h"

namespace soctest {
namespace {

// Checks the parser's postcondition on arbitrary text.
void ExpectParserTotal(const std::string& text) {
  const ParseResult result = ParseSocText(text);
  if (const auto* parsed = std::get_if<ParsedSoc>(&result)) {
    // Success implies a structurally valid SOC and resolvable constraints.
    EXPECT_FALSE(parsed->soc.Validate().has_value());
    for (const auto& [a, b] : parsed->precedence) {
      EXPECT_GE(a, 0);
      EXPECT_LT(a, parsed->soc.num_cores());
      EXPECT_GE(b, 0);
      EXPECT_LT(b, parsed->soc.num_cores());
    }
  } else {
    const auto& err = std::get<ParseError>(result);
    EXPECT_FALSE(err.message.empty());
    EXPECT_GE(err.line, 0);
  }
}

// Checks the request parser's postcondition on arbitrary text: every input
// yields either well-formed requests or a RequestParseError with a sane
// file:line locus — never a crash, never an empty diagnostic.
void ExpectRequestParserTotal(const std::string& text) {
  const RequestFileResult result = ParseRequestText(text, "fuzz");
  if (const auto* requests =
          std::get_if<std::vector<BatchRequest>>(&result)) {
    for (const BatchRequest& req : *requests) {
      EXPECT_GT(req.tam_width, 0);
      EXPECT_FALSE(req.soc_spec.empty());
    }
  } else {
    const auto& err = std::get<RequestParseError>(result);
    EXPECT_FALSE(err.message.empty());
    EXPECT_EQ(err.file, "fuzz");
    EXPECT_GE(err.line, 1);
  }
  // The network protocol wraps the same parser per line plus transport
  // params; it must be equally total (kSkip/kStats/kRequest/kError, with a
  // non-empty diagnostic on kError).
  for (const std::string& line : SplitLines(text)) {
    const NetLine parsed = ParseNetLine(line);
    if (parsed.kind == NetLine::Kind::kError) {
      EXPECT_FALSE(parsed.error.empty());
    }
  }
}

class ParserFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzzTest, CharacterMutationsNeverCrash) {
  Rng rng(GetParam());
  std::string text = SerializeSoc(MakeD695());
  for (int round = 0; round < 50; ++round) {
    // Mutate 1-4 random positions.
    const int edits = static_cast<int>(rng.UniformInt(1, 4));
    std::string mutated = text;
    for (int e = 0; e < edits; ++e) {
      if (mutated.empty()) break;
      const auto pos = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(mutated.size()) - 1));
      const auto op = rng.UniformInt(0, 2);
      if (op == 0) {
        mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
      } else if (op == 1) {
        mutated.erase(pos, 1);
      } else {
        mutated.insert(pos, 1, static_cast<char>(rng.UniformInt(32, 126)));
      }
    }
    ExpectParserTotal(mutated);
  }
}

TEST_P(ParserFuzzTest, LineShufflesNeverCrash) {
  Rng rng(GetParam() ^ 0xabcdef);
  const std::string text = SerializeSoc(MakeP22810s());
  std::vector<std::string> lines = SplitLines(text);
  for (int round = 0; round < 10; ++round) {
    rng.Shuffle(lines);
    std::string shuffled;
    for (const auto& line : lines) {
      shuffled += line;
      shuffled += '\n';
    }
    ExpectParserTotal(shuffled);
  }
}

TEST_P(ParserFuzzTest, TruncationsNeverCrash) {
  Rng rng(GetParam() ^ 0x1234);
  const std::string text = SerializeSoc(MakeP34392s());
  for (int round = 0; round < 20; ++round) {
    const auto cut = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(text.size())));
    ExpectParserTotal(text.substr(0, cut));
  }
}

// The request grammar is line-oriented and small; mutate a healthy request
// file the same three ways the .soc fuzz does (character edits, random byte
// junk including NUL/CR, truncated key=value tails).
TEST_P(ParserFuzzTest, RequestLineMutationsNeverCrash) {
  Rng rng(GetParam() ^ 0x9e3779b9);
  const std::string text =
      "d695 16 schedule\n"
      "d695 24 schedule search=1 deadline_ms=100\n"
      "d695 24 improve iters=8 batch=2 seed=7\n"
      "d695 16 sweep min=12 max=16\n";
  for (int round = 0; round < 50; ++round) {
    std::string mutated = text;
    const int edits = static_cast<int>(rng.UniformInt(1, 5));
    for (int e = 0; e < edits; ++e) {
      if (mutated.empty()) break;
      const auto pos = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(mutated.size()) - 1));
      const auto op = rng.UniformInt(0, 2);
      // Full byte range, not just printable: embedded NUL, CR, and high
      // bytes must parse as request-breaking characters, not crash.
      if (op == 0) {
        mutated[pos] = static_cast<char>(rng.UniformInt(0, 255));
      } else if (op == 1) {
        mutated.erase(pos, 1);
      } else {
        mutated.insert(pos, 1, static_cast<char>(rng.UniformInt(0, 255)));
      }
    }
    ExpectRequestParserTotal(mutated);
  }
}

TEST_P(ParserFuzzTest, RequestLineTruncationsNeverCrash) {
  Rng rng(GetParam() ^ 0x51ed);
  const std::string text =
      "d695 24 improve iters=12 batch=4 seed=99 deadline_ms=250\n";
  for (int round = 0; round < 30; ++round) {
    const auto cut = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(text.size())));
    // "d695 16 improve iters=" and friends: truncated key=value tails must
    // produce located errors, not crashes or silent defaults.
    ExpectRequestParserTotal(text.substr(0, cut));
  }
}

TEST_P(ParserFuzzTest, RequestRandomByteJunkNeverCrashes) {
  Rng rng(GetParam() ^ 0xdeadbeef);
  for (int round = 0; round < 30; ++round) {
    const auto size = static_cast<std::size_t>(rng.UniformInt(0, 512));
    std::string junk(size, '\0');
    for (char& c : junk) c = static_cast<char>(rng.UniformInt(0, 255));
    ExpectRequestParserTotal(junk);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST(RequestHostileInputTest, PathologicalRequestLines) {
  // Oversized single line (far past any sane request).
  ExpectRequestParserTotal("d695 16 schedule " + std::string(1 << 16, 'x') +
                           "\n");
  // Truncated key=value in every position.
  ExpectRequestParserTotal("d695 16 improve iters=\n");
  ExpectRequestParserTotal("d695 16 improve =8\n");
  ExpectRequestParserTotal("d695 16 improve iters\n");
  ExpectRequestParserTotal("d695 16 schedule deadline_ms=\n");
  // Embedded NUL and CR inside tokens.
  ExpectRequestParserTotal(std::string("d695 16 sch\0edule\n", 18));
  ExpectRequestParserTotal("d695 16\r schedule\r\n");
  // Numeric edges.
  ExpectRequestParserTotal("d695 99999999999999999999 schedule\n");
  ExpectRequestParserTotal("d695 -4 schedule\n");
  ExpectRequestParserTotal("d695 16 improve seed=18446744073709551617\n");
}

TEST(ParserHostileInputTest, PathologicalDocuments) {
  ExpectParserTotal(std::string(1 << 16, 'x'));
  ExpectParserTotal(std::string(1 << 12, '\n'));
  ExpectParserTotal("soc a\n" + std::string(4096, '#') + "\n");
  ExpectParserTotal("soc \xff\xfe\n");
  ExpectParserTotal("soc a\ncore c\npatterns 999999999999999999999\nend\n");
  ExpectParserTotal("soc a\ncore c\ninputs -999999999999\nend\n");
  // Deep but valid: 200 cores chained by parent links.
  std::string deep = "soc deep\n";
  for (int i = 0; i < 200; ++i) {
    deep += "core c" + std::to_string(i) + "\n  inputs 1\n  outputs 1\n  patterns 1\n";
    if (i > 0) deep += "  parent c" + std::to_string(i - 1) + "\n";
    deep += "end\n";
  }
  const auto result = ParseSocText(deep);
  EXPECT_TRUE(std::holds_alternative<ParsedSoc>(result));
}

}  // namespace
}  // namespace soctest
