#include "constraints/power.h"

#include <gtest/gtest.h>

#include <cmath>

#include "soc/benchmarks.h"

namespace soctest {
namespace {

TEST(PowerModelTest, DefaultIsUnlimited) {
  PowerModel model;
  EXPECT_TRUE(model.unlimited());
  EXPECT_TRUE(model.Fits(1'000'000, 1'000'000));
  EXPECT_EQ(model.PowerOf(0), 0);
}

TEST(PowerModelTest, ExplicitBudget) {
  PowerModel model({10, 20, 30}, 45);
  EXPECT_FALSE(model.unlimited());
  EXPECT_EQ(model.pmax(), 45);
  EXPECT_EQ(model.PowerOf(2), 30);
  EXPECT_EQ(model.PowerOf(99), 0);  // out of range is powerless
  EXPECT_TRUE(model.Fits(10, 30));
  EXPECT_TRUE(model.Fits(15, 30));
  EXPECT_FALSE(model.Fits(20, 30));
  EXPECT_EQ(model.MaxCorePower(), 30);
}

TEST(PowerModelTest, FromSocUsesBitsPerPattern) {
  const Soc soc = MakeD695();
  const PowerModel model = PowerModel::FromSoc(soc, 1.5);
  for (const auto& core : soc.cores()) {
    EXPECT_EQ(model.PowerOf(core.id), core.BitsPerPattern());
  }
  EXPECT_EQ(model.pmax(),
            static_cast<std::int64_t>(
                std::ceil(1.5 * static_cast<double>(model.MaxCorePower()))));
}

TEST(PowerModelTest, FromSocKeepsExplicitPower) {
  Soc soc("p");
  CoreSpec c;
  c.name = "x";
  c.num_inputs = 4;
  c.num_outputs = 4;
  c.num_patterns = 10;
  c.power = 777;
  soc.AddCore(c);
  const PowerModel model = PowerModel::FromSoc(soc);
  EXPECT_EQ(model.PowerOf(0), 777);
}

TEST(PowerModelTest, BudgetFactorFloorsAtOne) {
  const Soc soc = MakeD695();
  const PowerModel model = PowerModel::FromSoc(soc, 0.2);
  // factor < 1 is clamped to 1: the peak core must always be schedulable.
  EXPECT_GE(model.pmax(), model.MaxCorePower());
}

TEST(PowerModelTest, SetPmaxOverrides) {
  PowerModel model({5, 6}, 100);
  model.set_pmax(7);
  EXPECT_FALSE(model.Fits(5, 6));
  EXPECT_TRUE(model.Fits(0, 6));
}

}  // namespace
}  // namespace soctest
