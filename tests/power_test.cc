#include "constraints/power.h"

#include <gtest/gtest.h>

#include <cmath>

#include "soc/benchmarks.h"

namespace soctest {
namespace {

TEST(PowerModelTest, DefaultIsUnlimited) {
  PowerModel model;
  EXPECT_TRUE(model.unlimited());
  EXPECT_TRUE(model.Fits(1'000'000, 1'000'000));
  EXPECT_EQ(model.PowerOf(0), 0);
}

TEST(PowerModelTest, ExplicitBudget) {
  PowerModel model({10, 20, 30}, 45);
  EXPECT_FALSE(model.unlimited());
  EXPECT_EQ(model.pmax(), 45);
  EXPECT_EQ(model.PowerOf(2), 30);
  EXPECT_TRUE(model.Fits(10, 30));
  EXPECT_TRUE(model.Fits(15, 30));
  EXPECT_FALSE(model.Fits(20, 30));
  EXPECT_EQ(model.MaxCorePower(), 30);
}

TEST(PowerModelDeathTest, OutOfRangeCoreAborts) {
  // A model WITH a per-core table must not silently answer 0 for ids it has
  // no row for — that once masked indexing bugs as free power. Only the
  // table-less default model is allowed to answer 0 everywhere.
  PowerModel model({10, 20, 30}, 45);
  EXPECT_DEATH(model.PowerOf(99), "out of range");
  EXPECT_DEATH(model.PowerOf(-1), "out of range");
}

TEST(PowerModelTest, FromSocUsesBitsPerPattern) {
  const Soc soc = MakeD695();
  const PowerModel model = PowerModel::FromSoc(soc, 1.5);
  for (const auto& core : soc.cores()) {
    EXPECT_EQ(model.PowerOf(core.id), core.BitsPerPattern());
  }
  EXPECT_EQ(model.pmax(),
            static_cast<std::int64_t>(
                std::ceil(1.5 * static_cast<double>(model.MaxCorePower()))));
}

TEST(PowerModelTest, FromSocKeepsExplicitPower) {
  Soc soc("p");
  CoreSpec c;
  c.name = "x";
  c.num_inputs = 4;
  c.num_outputs = 4;
  c.num_patterns = 10;
  c.power = 777;
  soc.AddCore(c);
  const PowerModel model = PowerModel::FromSoc(soc);
  EXPECT_EQ(model.PowerOf(0), 777);
}

TEST(PowerModelTest, BudgetFactorFloorsAtOne) {
  const Soc soc = MakeD695();
  const PowerModel model = PowerModel::FromSoc(soc, 0.2);
  // factor < 1 is clamped to 1: the peak core must always be schedulable.
  EXPECT_GE(model.pmax(), model.MaxCorePower());
}

TEST(PowerModelTest, SetPmaxOverrides) {
  PowerModel model({5, 6}, 100);
  model.set_pmax(7);
  EXPECT_FALSE(model.Fits(5, 6));
  EXPECT_TRUE(model.Fits(0, 6));
}

TEST(PowerBudgetTest, DefaultIsUnlimited) {
  PowerBudget budget;
  EXPECT_TRUE(budget.unlimited());
  EXPECT_FALSE(budget.has_changes());
  EXPECT_EQ(budget.BudgetAt(0), -1);
  EXPECT_EQ(budget.MinOver(0, 1'000'000), -1);
  EXPECT_EQ(budget.MaxBudget(), -1);
  EXPECT_FALSE(budget.NextChangeAfter(0).has_value());
}

TEST(PowerBudgetTest, ConstantSingleSegment) {
  const PowerBudget budget = PowerBudget::Constant(50);
  EXPECT_FALSE(budget.unlimited());
  EXPECT_FALSE(budget.has_changes());
  EXPECT_EQ(budget.BudgetAt(0), 50);
  EXPECT_EQ(budget.BudgetAt(1'000'000), 50);
  EXPECT_EQ(budget.MinOver(0, 1'000'000), 50);
  EXPECT_EQ(budget.MaxBudget(), 50);
  EXPECT_FALSE(budget.NextChangeAfter(0).has_value());
  // Negative = unlimited, mirroring the historical PowerModel encoding.
  EXPECT_TRUE(PowerBudget::Constant(-1).unlimited());
}

TEST(PowerBudgetTest, TimelineQueries) {
  const auto budget =
      PowerBudget::FromSegments({{0, 100}, {500, 40}, {800, 70}});
  ASSERT_TRUE(budget.has_value());
  EXPECT_TRUE(budget->has_changes());
  EXPECT_EQ(budget->BudgetAt(-5), 100);  // t < 0 treated as t = 0
  EXPECT_EQ(budget->BudgetAt(0), 100);
  EXPECT_EQ(budget->BudgetAt(499), 100);
  EXPECT_EQ(budget->BudgetAt(500), 40);
  EXPECT_EQ(budget->BudgetAt(799), 40);
  EXPECT_EQ(budget->BudgetAt(800), 70);
  EXPECT_EQ(budget->MaxBudget(), 100);

  EXPECT_EQ(budget->NextChangeAfter(0), std::optional<Time>(500));
  EXPECT_EQ(budget->NextChangeAfter(499), std::optional<Time>(500));
  EXPECT_EQ(budget->NextChangeAfter(500), std::optional<Time>(800));
  EXPECT_FALSE(budget->NextChangeAfter(800).has_value());

  // Half-open window semantics: [0, 500) never sees the drop at 500.
  EXPECT_EQ(budget->MinOver(0, 500), 100);
  EXPECT_EQ(budget->MinOver(0, 501), 40);
  EXPECT_EQ(budget->MinOver(500, 800), 40);
  EXPECT_EQ(budget->MinOver(800, 10'000), 70);
  EXPECT_EQ(budget->MinOver(600, 10'000), 40);
  // Empty window answers BudgetAt(begin).
  EXPECT_EQ(budget->MinOver(600, 600), 40);
}

TEST(PowerBudgetTest, FromSegmentsValidation) {
  std::string error;
  EXPECT_FALSE(
      PowerBudget::FromSegments({{5, 100}}, &error).has_value());
  EXPECT_NE(error.find("start at cycle 0"), std::string::npos);
  EXPECT_FALSE(
      PowerBudget::FromSegments({{0, 100}, {10, 0}}, &error).has_value());
  EXPECT_NE(error.find("positive"), std::string::npos);
  EXPECT_FALSE(
      PowerBudget::FromSegments({{0, 100}, {10, 50}, {10, 60}}, &error)
          .has_value());
  EXPECT_NE(error.find("strictly increasing"), std::string::npos);
  // Empty vector = the unlimited budget.
  const auto unlimited = PowerBudget::FromSegments({});
  ASSERT_TRUE(unlimited.has_value());
  EXPECT_TRUE(unlimited->unlimited());
}

TEST(PowerBudgetTest, FormatParseRoundTrip) {
  const auto budget =
      PowerBudget::FromSegments({{0, 100}, {500, 40}, {800, 70}});
  ASSERT_TRUE(budget.has_value());
  const std::string text = FormatBudgetTimeline(*budget);
  EXPECT_EQ(text, "0:100,500:40,800:70");
  const auto reparsed = ParseBudgetTimeline(text);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, *budget);
  EXPECT_EQ(FormatBudgetTimeline(PowerBudget()), "");
}

TEST(PowerBudgetTest, ParseRejectsMalformed) {
  std::string error;
  EXPECT_FALSE(ParseBudgetTimeline("nonsense", &error).has_value());
  EXPECT_FALSE(ParseBudgetTimeline("0:100,", &error).has_value());
  EXPECT_FALSE(ParseBudgetTimeline("0:100,500", &error).has_value());
  EXPECT_FALSE(ParseBudgetTimeline("-5:100", &error).has_value());
  EXPECT_FALSE(ParseBudgetTimeline("5:100", &error).has_value());  // start != 0
  EXPECT_FALSE(ParseBudgetTimeline("0:0", &error).has_value());
}

TEST(PowerBudgetTest, FitsAtWindows) {
  PowerModel model({10, 20, 30},
                   PowerBudget::FromSegments({{0, 100}, {500, 40}}).value());
  // Instantaneous admission: only the budget at `now` matters.
  EXPECT_TRUE(model.FitsAt(50, 30, 0, 0));
  EXPECT_FALSE(model.FitsAt(20, 30, 500, 0));
  // Windowed admission: a hold straddling the drop must fit the minimum.
  EXPECT_TRUE(model.FitsAt(50, 30, 0, 500));   // [0, 500) misses the drop
  EXPECT_FALSE(model.FitsAt(50, 30, 0, 501));  // [0, 501) sees cap 40
  EXPECT_TRUE(model.FitsAt(10, 30, 0, 501));
  // Single-segment budgets ignore time entirely (legacy comparison).
  PowerModel constant({10, 20, 30}, 45);
  EXPECT_TRUE(constant.FitsAt(15, 30, 9'999, 9'999));
  EXPECT_FALSE(constant.FitsAt(20, 30, 0, 0));
}

TEST(PowerBudgetTest, WithBudgetDerivesCorePower) {
  const Soc soc = MakeD695();
  // Base problem has no power table (no powermax declared): WithBudget must
  // derive per-core power the same way FromParsed/FromSoc do.
  const PowerModel base;
  const PowerModel model =
      WithBudget(soc, base, PowerBudget::FromSegments({{0, 90}, {10, 50}})
                                .value());
  EXPECT_TRUE(model.budget().has_changes());
  for (const auto& core : soc.cores()) {
    EXPECT_EQ(model.PowerOf(core.id), core.BitsPerPattern());
  }
  // A base with a table keeps it.
  const PowerModel table({7, 8, 9}, 45);
  const PowerModel swapped = WithBudget(soc, table, PowerBudget::Constant(30));
  EXPECT_EQ(swapped.PowerOf(1), 8);
  EXPECT_EQ(swapped.pmax(), 30);
}

}  // namespace
}  // namespace soctest
