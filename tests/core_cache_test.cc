// Tests for the per-core artifact cache (service/core_cache.h): content-keyed
// identity over wrapper fields only, shared handouts, eviction safety, the
// capacity bound, and the collision-vs-eviction accounting — the same
// contracts as CompiledProblemCache, one level down.
#include "service/core_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/compiled_core.h"
#include "core/compiled_problem.h"
#include "soc/benchmarks.h"
#include "soc/core_hash.h"

namespace soctest {
namespace {

CoreSpec SmallCore() {
  CoreSpec core;
  core.name = "small";
  core.num_inputs = 6;
  core.num_outputs = 4;
  core.num_bidirs = 1;
  core.num_patterns = 30;
  core.scan_chain_lengths = {24, 18, 7};
  return core;
}

// RAII hook guard, mirroring service_test's ProblemHashHookGuard.
struct CoreHashHookGuard {
  explicit CoreHashHookGuard(CoreHash128 (*hook)(const std::string&, int)) {
    CoreArtifactCache::SetKeyHashHookForTest(hook);
  }
  ~CoreHashHookGuard() { CoreArtifactCache::SetKeyHashHookForTest(nullptr); }
};

CoreHash128 CollideCoreHash(const std::string&, int) { return {42, 42}; }

TEST(CoreHashTest, CanonicalTextCoversWrapperFieldsOnly) {
  CoreSpec core = SmallCore();
  const std::string base = CanonicalCoreText(core);

  // Scheduling-only fields never change the compiled artifacts, so they are
  // not part of the identity: variants sharing wrapper fields share a key.
  core.name = "renamed";
  core.id = 7;
  core.power = 999;
  core.parent = 3;
  core.resources = {1, 2};
  core.max_preemptions = 2;
  core.prio = 3;
  EXPECT_EQ(CanonicalCoreText(core), base);

  // Every wrapper field is part of the identity.
  CoreSpec edited = SmallCore();
  edited.num_inputs += 1;
  EXPECT_NE(CanonicalCoreText(edited), base);
  edited = SmallCore();
  edited.num_outputs += 1;
  EXPECT_NE(CanonicalCoreText(edited), base);
  edited = SmallCore();
  edited.num_bidirs += 1;
  EXPECT_NE(CanonicalCoreText(edited), base);
  edited = SmallCore();
  edited.num_patterns += 1;
  EXPECT_NE(CanonicalCoreText(edited), base);
  edited = SmallCore();
  edited.scan_chain_lengths.push_back(5);
  EXPECT_NE(CanonicalCoreText(edited), base);
  // Chain ORDER is identity too (conservative: wrapper design is order-
  // dependent in principle, so reordered chains never share artifacts).
  edited = SmallCore();
  edited.scan_chain_lengths = {7, 18, 24};
  EXPECT_NE(CanonicalCoreText(edited), base);
}

TEST(CoreHashTest, HashCoversTextAndWMax) {
  const std::string text = CanonicalCoreText(SmallCore());
  EXPECT_EQ(CoreContentHash(text, 64), CoreContentHash(text, 64));
  EXPECT_FALSE(CoreContentHash(text, 64) == CoreContentHash(text, 32));
  EXPECT_FALSE(CoreContentHash(text, 64) == CoreContentHash(text + "x", 64));
  // The two 64-bit halves are independently seeded digests.
  const CoreHash128 h = CoreContentHash(text, 64);
  EXPECT_NE(h.hi, h.lo);
}

TEST(CoreArtifactCacheTest, HitsShareOneCompilation) {
  CoreArtifactCache cache({/*shards=*/4, /*capacity=*/8});
  bool hit = true;
  const CompiledCorePtr first = cache.GetOrCompile(SmallCore(), 64, &hit);
  EXPECT_FALSE(hit);
  // A renamed, repowered copy of the same wrapper is the same key: content,
  // not provenance.
  CoreSpec renamed = SmallCore();
  renamed.name = "other";
  renamed.power = 123;
  const CompiledCorePtr second = cache.GetOrCompile(renamed, 64, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // literally the same artifacts
  // A different w_max is a different key.
  const CompiledCorePtr third = cache.GetOrCompile(SmallCore(), 32, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(first.get(), third.get());
  EXPECT_EQ(third->w_max(), 32);
  const CoreCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.compiles, 2);
  EXPECT_EQ(stats.entries, 2);
}

// The handout survives eviction, and a recompiled entry carries bit-identical
// artifacts — eviction can never change a schedule.
TEST(CoreArtifactCacheTest, HandoutSurvivesEvictionBitIdentical) {
  CoreArtifactCache cache({/*shards=*/1, /*capacity=*/1});
  const CompiledCorePtr held = cache.GetOrCompile(SmallCore(), 64);

  CoreSpec other = SmallCore();
  other.num_patterns += 5;
  cache.GetOrCompile(other, 64);  // evicts SmallCore's entry
  EXPECT_GE(cache.stats().evictions, 1);

  // The displaced handout stays fully usable (CompiledCore is
  // self-contained) and the recompile is indistinguishable from it.
  const CompiledCorePtr recompiled = cache.GetOrCompile(SmallCore(), 64);
  EXPECT_NE(held.get(), recompiled.get());
  EXPECT_EQ(held->pareto(), recompiled->pareto());
  EXPECT_EQ(held->max_useful_width(), recompiled->max_useful_width());
  for (int w = 1; w <= 64; ++w) {
    ASSERT_EQ(held->curve().TimeAt(w), recompiled->curve().TimeAt(w));
    ASSERT_EQ(held->FlushPenalty(w), recompiled->FlushPenalty(w));
  }
}

TEST(CoreArtifactCacheTest, CapacityIsAHardTotalBound) {
  CoreArtifactCache cache({/*shards=*/4, /*capacity=*/1});
  EXPECT_EQ(cache.shards(), 1);
  EXPECT_EQ(cache.capacity_per_shard(), 1);
  for (int i = 0; i < 3; ++i) {
    CoreSpec core = SmallCore();
    core.num_patterns += i;
    cache.GetOrCompile(core, 64);
  }
  EXPECT_EQ(cache.stats().entries, 1);

  CoreArtifactCache uneven({/*shards=*/4, /*capacity=*/6});
  EXPECT_EQ(uneven.shards(), 4);
  EXPECT_EQ(uneven.capacity_per_shard(), 1);  // floor(6/4): total bound 4 <= 6
}

// A 128-bit hash collision between distinct cores replaces the resident
// entry and is counted as a collision, NOT as a capacity eviction (a bigger
// cache cannot fix a collision, so conflating the two misleads tuning) — and
// the exact canonical-text compare means it never serves wrong artifacts.
TEST(CoreArtifactCacheTest, HashCollisionCountsSeparatelyFromEviction) {
  CoreHashHookGuard guard(&CollideCoreHash);  // every key hashes to {42,42}
  CoreArtifactCache cache({/*shards=*/1, /*capacity=*/8});
  CoreSpec other = SmallCore();
  other.num_patterns += 11;

  bool hit = true;
  const CompiledCorePtr held = cache.GetOrCompile(SmallCore(), 64, &hit);
  EXPECT_FALSE(hit);
  // Distinct core, same hash: never served the wrong artifacts...
  const CompiledCorePtr displacing = cache.GetOrCompile(other, 64, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(held.get(), displacing.get());
  EXPECT_NE(held->curve().TimeAt(1), displacing->curve().TimeAt(1));
  // ...and the displacement is a collision, not an eviction (capacity 8 is
  // nowhere near full).
  CoreCacheStats stats = cache.stats();
  EXPECT_EQ(stats.collisions, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.entries, 1);

  // Re-asking for the displaced core recompiles (a miss — the two hot keys
  // thrash, which is exactly what the counter surfaces).
  cache.GetOrCompile(SmallCore(), 64, &hit);
  EXPECT_FALSE(hit);
  stats = cache.stats();
  EXPECT_EQ(stats.collisions, 2);
  EXPECT_EQ(stats.evictions, 0);
}

// Concurrent same-key requesters may all compile, but every one of them
// returns the single resident entry (losers adopt the winner).
TEST(CoreArtifactCacheTest, ConcurrentSameKeyRequestersAdoptOneEntry) {
  CoreArtifactCache cache({/*shards=*/2, /*capacity=*/8});
  constexpr int kThreads = 8;
  std::vector<CompiledCorePtr> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, &results, t] {
        results[static_cast<std::size_t>(t)] =
            cache.GetOrCompile(SmallCore(), 64);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (const CompiledCorePtr& result : results) {
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result.get(), results[0].get());
  }
  const CoreCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.hits + stats.misses, kThreads);
  EXPECT_GE(stats.compiles, 1);
}

// The cached unit is exactly what a monolithic CompiledProblem builds: fetch
// d695's cores from the cache, assemble, and compare against a cold compile.
TEST(CoreArtifactCacheTest, AssembledProblemMatchesColdCompile) {
  CoreArtifactCache cache({/*shards=*/4, /*capacity=*/64});
  const TestProblem problem = TestProblem::FromSoc(MakeD695());

  std::vector<CompiledCorePtr> units;
  for (const CoreSpec& core : problem.soc.cores()) {
    units.push_back(cache.GetOrCompile(core, 64));
  }
  const CompiledProblem assembled(problem, 64, std::move(units));
  const CompiledProblem cold(problem, 64);
  ASSERT_TRUE(assembled.ok());
  ASSERT_TRUE(cold.ok());
  for (CoreId c = 0; c < problem.soc.num_cores(); ++c) {
    EXPECT_EQ(assembled.pareto(c), cold.pareto(c));
    EXPECT_EQ(assembled.max_useful_width(c), cold.max_useful_width(c));
    for (int w = 1; w <= 64; ++w) {
      ASSERT_EQ(assembled.curve(c).TimeAt(w), cold.curve(c).TimeAt(w));
      ASSERT_EQ(assembled.FlushPenalty(c, w), cold.FlushPenalty(c, w));
    }
  }
}

}  // namespace
}  // namespace soctest
