#include "baseline/lower_bound.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "soc/benchmarks.h"

namespace soctest {
namespace {

TEST(LowerBoundTest, AreaBoundScalesInverselyWithWidth) {
  const Soc soc = MakeD695();
  const auto lb16 = ComputeLowerBound(soc, 16, 64);
  const auto lb32 = ComputeLowerBound(soc, 32, 64);
  const auto lb64 = ComputeLowerBound(soc, 64, 64);
  EXPECT_EQ(lb16.total_min_area, lb32.total_min_area);
  EXPECT_NEAR(static_cast<double>(lb16.area_bound) /
                  static_cast<double>(lb32.area_bound),
              2.0, 0.01);
  EXPECT_NEAR(static_cast<double>(lb16.area_bound) /
                  static_cast<double>(lb64.area_bound),
              4.0, 0.01);
}

TEST(LowerBoundTest, ValueIsMaxOfBothTerms) {
  for (const auto& soc : AllBenchmarkSocs()) {
    for (int w : {8, 16, 32, 64}) {
      const auto lb = ComputeLowerBound(soc, w, 64);
      EXPECT_EQ(lb.value(), std::max(lb.bottleneck_bound, lb.area_bound));
      EXPECT_GT(lb.value(), 0);
    }
  }
}

TEST(LowerBoundTest, BottleneckIdentifiesARealCore) {
  const Soc soc = MakeP34392s();
  const auto lb = ComputeLowerBound(soc, 32, 64);
  ASSERT_GE(lb.bottleneck_core, 0);
  ASSERT_LT(lb.bottleneck_core, soc.num_cores());
  // The named core's floor time matches the reported bound.
  const RectangleSet rect(soc.core(lb.bottleneck_core), 64, 32);
  EXPECT_EQ(rect.MinTime(), lb.bottleneck_bound);
}

TEST(LowerBoundTest, BottleneckBoundMonotoneInWidth) {
  const Soc soc = MakeP34392s();
  Time prev = -1;
  for (int w = 4; w <= 64; w += 4) {
    const auto lb = ComputeLowerBound(soc, w, 64);
    if (prev >= 0) {
      EXPECT_LE(lb.bottleneck_bound, prev);
    }
    prev = lb.bottleneck_bound;
  }
}

TEST(LowerBoundTest, ReusesPrebuiltRectangles) {
  const Soc soc = MakeD695();
  const auto rects = BuildRectangleSets(soc, 64, 32);
  const auto a = ComputeLowerBound(rects, 32);
  const auto b = ComputeLowerBound(soc, 32, 64);
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.total_min_area, b.total_min_area);
}

TEST(LowerBoundTest, OptimizerNeverBeatsIt) {
  // Cross-check on a mix of widths and all four SOCs (smoke-level sweep).
  for (const auto& soc : AllBenchmarkSocs()) {
    const TestProblem problem = TestProblem::FromSoc(soc);
    for (int w : {12, 28, 56}) {
      OptimizerParams params;
      params.tam_width = w;
      const auto result = Optimize(problem, params);
      ASSERT_TRUE(result.ok());
      EXPECT_GE(result.makespan, ComputeLowerBound(soc, w, 64).value())
          << soc.name() << " W=" << w;
    }
  }
}

TEST(LowerBoundTest, SingleCoreBoundIsExactlyItsFloor) {
  Soc soc("single");
  CoreSpec c;
  c.name = "c";
  c.num_inputs = 8;
  c.num_outputs = 8;
  c.num_patterns = 100;
  c.scan_chain_lengths = {32, 32};
  soc.AddCore(c);
  const auto lb = ComputeLowerBound(soc, 64, 64);
  const RectangleSet rect(soc.core(0), 64, 64);
  EXPECT_EQ(lb.bottleneck_bound, rect.MinTime());
}

}  // namespace
}  // namespace soctest
