#include <gtest/gtest.h>

#include "util/ascii_plot.h"
#include "util/csv.h"
#include "util/table.h"

namespace soctest {
namespace {

TEST(CsvWriterTest, HeaderAndRows) {
  CsvWriter csv({"w", "time"});
  EXPECT_TRUE(csv.Add(16, 41232));
  EXPECT_TRUE(csv.Add(32, 20616));
  EXPECT_EQ(csv.ToString(), "w,time\n16,41232\n32,20616\n");
  EXPECT_EQ(csv.rows(), 2u);
  EXPECT_EQ(csv.columns(), 2u);
}

TEST(CsvWriterTest, RejectsArityMismatch) {
  CsvWriter csv({"a", "b"});
  EXPECT_FALSE(csv.AddRow({"only-one"}));
  EXPECT_EQ(csv.rows(), 0u);
}

TEST(CsvWriterTest, EscapesSpecialCharacters) {
  CsvWriter csv({"name"});
  EXPECT_TRUE(csv.AddRow({"a,b"}));
  EXPECT_TRUE(csv.AddRow({"say \"hi\""}));
  EXPECT_TRUE(csv.AddRow({"line\nbreak"}));
  const std::string s = csv.ToString();
  EXPECT_NE(s.find("\"a,b\""), std::string::npos);
  EXPECT_NE(s.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(s.find("\"line\nbreak\""), std::string::npos);
}

TEST(CsvWriterTest, WritesFile) {
  CsvWriter csv({"x"});
  csv.Add(1);
  const std::string path = testing::TempDir() + "/soctest_csv_test.csv";
  EXPECT_TRUE(csv.WriteFile(path));
  EXPECT_FALSE(csv.WriteFile("/nonexistent-dir/zzz.csv"));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"SOC", "cycles"}, {Align::kLeft, Align::kRight});
  EXPECT_TRUE(t.AddRow({"d695", "41232"}));
  EXPECT_TRUE(t.AddRow({"p93791s", "9"}));
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| d695    |"), std::string::npos);
  EXPECT_NE(s.find("|      9 |"), std::string::npos);
}

TEST(TablePrinterTest, RejectsWrongArity) {
  TablePrinter t({"a", "b"});
  EXPECT_FALSE(t.AddRow({"x"}));
}

TEST(TablePrinterTest, SeparatorsRenderedOnce) {
  TablePrinter t({"a"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddSeparator();  // duplicate collapses
  t.AddRow({"2"});
  const std::string s = t.ToString();
  // header rule + post-header rule + one mid rule + final rule = 4 rules
  std::size_t rules = 0;
  std::size_t pos = 0;
  while ((pos = s.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(AsciiPlotTest, RendersSeriesWithinBounds) {
  AsciiPlot plot(40, 10);
  plot.SetTitle("T vs W");
  plot.AddSeries({1, 2, 3, 4}, {10, 8, 6, 4}, '*');
  const std::string s = plot.Render();
  EXPECT_NE(s.find("T vs W"), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);
}

TEST(AsciiPlotTest, EmptyPlotDoesNotCrash) {
  AsciiPlot plot(40, 10);
  EXPECT_EQ(plot.Render(), "(empty plot)\n");
}

TEST(AsciiPlotTest, SinglePointPlots) {
  AsciiPlot plot(20, 6);
  plot.AddSeries({5}, {5}, 'o');
  EXPECT_NE(plot.Render().find('o'), std::string::npos);
}

}  // namespace
}  // namespace soctest
