#include "wrapper/wrapper_design.h"

#include <gtest/gtest.h>

#include <numeric>

#include "soc/benchmarks.h"

namespace soctest {
namespace {

CoreSpec SeqCore(int inputs, int outputs, std::int64_t patterns,
                 std::vector<int> chains) {
  CoreSpec c;
  c.name = "seq";
  c.num_inputs = inputs;
  c.num_outputs = outputs;
  c.num_patterns = patterns;
  c.scan_chain_lengths = std::move(chains);
  return c;
}

TEST(WrapperDesignTest, CombinationalSingleChain) {
  CoreSpec c;
  c.name = "comb";
  c.num_inputs = 10;
  c.num_outputs = 4;
  c.num_patterns = 7;
  const WrapperConfig config = DesignWrapper(c, 1);
  EXPECT_EQ(config.used_width, 1);
  EXPECT_EQ(config.scan_in_length, 10);
  EXPECT_EQ(config.scan_out_length, 4);
  // T = (1 + max(si, so)) * p + min(si, so)
  EXPECT_EQ(config.TestTime(7), (1 + 10) * 7 + 4);
}

TEST(WrapperDesignTest, CombinationalWidthSplitsIoCells) {
  CoreSpec c;
  c.name = "comb";
  c.num_inputs = 10;
  c.num_outputs = 10;
  c.num_patterns = 1;
  const WrapperConfig config = DesignWrapper(c, 5);
  EXPECT_EQ(config.used_width, 5);
  EXPECT_EQ(config.scan_in_length, 2);  // 10 cells over 5 chains
  EXPECT_EQ(config.scan_out_length, 2);
}

TEST(WrapperDesignTest, SingleScanChainAtWidthOne) {
  const CoreSpec c = SeqCore(3, 2, 10, {20});
  const WrapperConfig config = DesignWrapper(c, 1);
  EXPECT_EQ(config.scan_in_length, 23);   // 20 scan + 3 inputs
  EXPECT_EQ(config.scan_out_length, 22);  // 20 scan + 2 outputs
  EXPECT_EQ(config.TestTime(10), (1 + 23) * 10 + 22);
}

TEST(WrapperDesignTest, BalancesChainsAcrossWidth) {
  const CoreSpec c = SeqCore(0, 0, 1, {10, 10, 10, 10});
  const WrapperConfig two = DesignWrapper(c, 2);
  EXPECT_EQ(two.scan_in_length, 20);  // two internal chains per wrapper chain
  const WrapperConfig four = DesignWrapper(c, 4);
  EXPECT_EQ(four.scan_in_length, 10);
}

TEST(WrapperDesignTest, BfdHandlesUnequalChains) {
  // 9+1 vs 5+5 split: BFD (longest first into emptiest) gives {9,1}+{5,5}=10.
  const CoreSpec c = SeqCore(0, 0, 1, {9, 5, 5, 1});
  const WrapperConfig config = DesignWrapper(c, 2);
  EXPECT_EQ(config.scan_in_length, 10);
}

TEST(WrapperDesignTest, WidthBeyondUsefulIsClamped) {
  const CoreSpec c = SeqCore(2, 2, 5, {7, 7});
  const WrapperConfig config = DesignWrapper(c, 64);
  EXPECT_LE(config.used_width, c.MaxUsefulWidth());
  // Extra width can't reduce the longest internal chain.
  EXPECT_GE(config.scan_in_length, 7);
}

TEST(WrapperDesignTest, NoEmptyChainsEmitted) {
  const CoreSpec c = SeqCore(1, 1, 5, {30});
  const WrapperConfig config = DesignWrapper(c, 8);
  for (const auto& chain : config.chains) {
    EXPECT_GT(chain.scan_cells + chain.input_cells + chain.output_cells, 0);
  }
}

TEST(WrapperDesignTest, AllInternalChainsPlacedExactlyOnce) {
  const CoreSpec c = SeqCore(5, 5, 5, {12, 9, 7, 5, 3});
  const WrapperConfig config = DesignWrapper(c, 3);
  std::vector<int> placed;
  std::int64_t scan_total = 0;
  int in_cells = 0;
  int out_cells = 0;
  for (const auto& chain : config.chains) {
    placed.insert(placed.end(), chain.internal_chains.begin(),
                  chain.internal_chains.end());
    scan_total += chain.scan_cells;
    in_cells += chain.input_cells;
    out_cells += chain.output_cells;
  }
  std::sort(placed.begin(), placed.end());
  EXPECT_EQ(placed, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(scan_total, c.TotalScanCells());
  EXPECT_EQ(in_cells, c.ScanInIoCells());
  EXPECT_EQ(out_cells, c.ScanOutIoCells());
}

TEST(WrapperDesignTest, BidirsCountOnBothSides) {
  CoreSpec c = SeqCore(2, 2, 4, {});
  c.num_bidirs = 3;
  const WrapperConfig config = DesignWrapper(c, 1);
  EXPECT_EQ(config.scan_in_length, 5);
  EXPECT_EQ(config.scan_out_length, 5);
}

// Property suite: wrapper invariants across the d695 cores and all widths.
class WrapperPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WrapperPropertyTest, ScanLengthsNonIncreasingInWidth) {
  const Soc soc = MakeD695();
  const CoreSpec& core = soc.core(GetParam());
  std::int64_t prev_max = -1;
  for (int w = 1; w <= 64; ++w) {
    const WrapperConfig config = DesignWrapper(core, w);
    const std::int64_t len =
        std::max(config.scan_in_length, config.scan_out_length);
    if (prev_max >= 0) {
      // BFD is heuristic but on these structures width never hurts by more
      // than the longest internal chain; assert the practical invariant that
      // the max never grows.
      EXPECT_LE(len, prev_max) << core.name << " w=" << w;
    }
    prev_max = len;
  }
}

TEST_P(WrapperPropertyTest, UsedWidthNeverExceedsRequest) {
  const Soc soc = MakeD695();
  const CoreSpec& core = soc.core(GetParam());
  for (int w = 1; w <= 64; ++w) {
    const WrapperConfig config = DesignWrapper(core, w);
    EXPECT_GE(config.used_width, 1);
    EXPECT_LE(config.used_width, w);
  }
}

TEST_P(WrapperPropertyTest, TestTimePositiveAndConsistent) {
  const Soc soc = MakeD695();
  const CoreSpec& core = soc.core(GetParam());
  for (int w : {1, 2, 4, 8, 16, 32, 64}) {
    const WrapperConfig config = DesignWrapper(core, w);
    const Time t = config.TestTime(core.num_patterns);
    EXPECT_GT(t, 0);
    EXPECT_EQ(t, WrapperTestTime(core, w));
  }
}

INSTANTIATE_TEST_SUITE_P(D695Cores, WrapperPropertyTest, ::testing::Range(0, 10),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return MakeD695().core(info.param).name;
                         });

}  // namespace
}  // namespace soctest
