#include "search/bandit.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

namespace soctest {
namespace {

TEST(Ucb1BanditTest, UnpulledArmsClaimedInAscendingIndexOrder) {
  Ucb1Bandit bandit(4);
  EXPECT_EQ(bandit.SelectAndPull(), 0u);
  EXPECT_EQ(bandit.SelectAndPull(), 1u);
  EXPECT_EQ(bandit.SelectAndPull(), 2u);
  EXPECT_EQ(bandit.SelectAndPull(), 3u);
  EXPECT_EQ(bandit.total_pulls(), 4);
  for (std::size_t arm = 0; arm < 4; ++arm) EXPECT_EQ(bandit.pulls(arm), 1);
}

// The determinism pin: a fixed reward sequence reproduces a fixed selection
// sequence. Hand-computed UCB1 values with the canonical sqrt(2) exploration
// constant — arm 0 earns on its first two pulls, goes cold, and the
// confidence bonus hands the next pull to arm 1 (ties toward the smaller
// index: arm 2 has the identical value).
TEST(Ucb1BanditTest, PinnedSelectionOnFixedRewardSequence) {
  Ucb1Bandit bandit(3);
  const std::vector<double> rewards = {1.0, 0.0, 0.0, 1.0, 0.0, 0.0};
  const std::vector<std::size_t> expected = {0, 1, 2, 0, 0, 1};
  for (std::size_t i = 0; i < rewards.size(); ++i) {
    const std::size_t arm = bandit.SelectAndPull();
    EXPECT_EQ(arm, expected[i]) << "pull " << i;
    bandit.Reward(arm, rewards[i]);
  }
  EXPECT_EQ(bandit.total_pulls(), 6);
  EXPECT_EQ(bandit.pulls(0), 3);
  EXPECT_EQ(bandit.pulls(1), 2);
  EXPECT_EQ(bandit.pulls(2), 1);
  EXPECT_DOUBLE_EQ(bandit.total_reward(0), 2.0);
  EXPECT_DOUBLE_EQ(bandit.total_reward(1), 0.0);
}

// Two bandits fed the same pull/reward history agree forever — selection is
// a pure function of the history (nothing random, nothing timed).
TEST(Ucb1BanditTest, ReplayIsBitIdentical) {
  Ucb1Bandit a(3);
  Ucb1Bandit b(3);
  // An arbitrary but fixed reward pattern.
  const double pattern[] = {0.0, 1.0, 0.0, 0.0, 1.0};
  for (int i = 0; i < 40; ++i) {
    const std::size_t pa = a.SelectAndPull();
    const std::size_t pb = b.SelectAndPull();
    ASSERT_EQ(pa, pb) << "pull " << i;
    const double r = pattern[i % 5];
    a.Reward(pa, r);
    b.Reward(pb, r);
  }
}

// Zero exploration degenerates to greedy-by-mean with ties toward the
// smallest index.
TEST(Ucb1BanditTest, GreedyTiesGoToSmallestIndex) {
  Ucb1Bandit bandit(3, /*exploration=*/0.0);
  bandit.Reward(bandit.SelectAndPull(), 0.5);  // arm 0
  bandit.Reward(bandit.SelectAndPull(), 0.5);  // arm 1
  bandit.Reward(bandit.SelectAndPull(), 0.0);  // arm 2
  // Means: 0.5, 0.5, 0.0 — arm 0 wins the tie, and keeps winning while its
  // mean stays level with arm 1's.
  const std::size_t arm = bandit.SelectAndPull();
  EXPECT_EQ(arm, 0u);
  bandit.Reward(arm, 0.5);
  EXPECT_EQ(bandit.SelectAndPull(), 0u);
}

// An arm that keeps losing is still revisited eventually: the log(total)
// bonus grows without bound while the pulled arm's bonus shrinks.
TEST(Ucb1BanditTest, ColdArmsAreEventuallyRevisited) {
  Ucb1Bandit bandit(2);
  bandit.Reward(bandit.SelectAndPull(), 1.0);
  bandit.Reward(bandit.SelectAndPull(), 0.0);
  bool revisited = false;
  for (int i = 0; i < 100 && !revisited; ++i) {
    const std::size_t arm = bandit.SelectAndPull();
    revisited = arm == 1;
    bandit.Reward(arm, arm == 0 ? 1.0 : 0.0);
  }
  EXPECT_TRUE(revisited);
}

}  // namespace
}  // namespace soctest
