#include "constraints/concurrency.h"

#include <gtest/gtest.h>

namespace soctest {
namespace {

CoreSpec SimpleCore(const std::string& name) {
  CoreSpec c;
  c.name = name;
  c.num_inputs = 2;
  c.num_outputs = 2;
  c.num_patterns = 5;
  return c;
}

TEST(ConcurrencySetTest, SymmetricPairs) {
  ConcurrencySet set(4);
  EXPECT_TRUE(set.Add(1, 3));
  EXPECT_TRUE(set.Conflicts(1, 3));
  EXPECT_TRUE(set.Conflicts(3, 1));
  EXPECT_FALSE(set.Conflicts(1, 2));
  EXPECT_EQ(set.num_pairs(), 1u);
}

TEST(ConcurrencySetTest, RejectsInvalidPairs) {
  ConcurrencySet set(3);
  EXPECT_FALSE(set.Add(0, 0));
  EXPECT_FALSE(set.Add(-1, 2));
  EXPECT_FALSE(set.Add(0, 5));
  EXPECT_TRUE(set.empty());
}

TEST(ConcurrencySetTest, DuplicatesCollapse) {
  ConcurrencySet set(3);
  set.Add(0, 2);
  set.Add(2, 0);
  EXPECT_EQ(set.num_pairs(), 1u);
}

TEST(ConcurrencySetTest, PairsSortedCanonical) {
  ConcurrencySet set(5);
  set.Add(4, 1);
  set.Add(2, 0);
  const auto pairs = set.Pairs();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<CoreId, CoreId>{0, 2}));
  EXPECT_EQ(pairs[1], (std::pair<CoreId, CoreId>{1, 4}));
}

TEST(ConcurrencySetTest, FromSocDerivesHierarchyConflicts) {
  Soc soc("h");
  const CoreId top = soc.AddCore(SimpleCore("top"));
  CoreSpec mid = SimpleCore("mid");
  mid.parent = top;
  const CoreId mid_id = soc.AddCore(mid);
  CoreSpec leaf = SimpleCore("leaf");
  leaf.parent = mid_id;
  const CoreId leaf_id = soc.AddCore(leaf);
  soc.AddCore(SimpleCore("free"));

  const ConcurrencySet set = ConcurrencySet::FromSoc(soc);
  // Child conflicts with every ancestor, not only the direct parent.
  EXPECT_TRUE(set.Conflicts(mid_id, top));
  EXPECT_TRUE(set.Conflicts(leaf_id, mid_id));
  EXPECT_TRUE(set.Conflicts(leaf_id, top));
  EXPECT_FALSE(set.Conflicts(top, 3));
}

TEST(ConcurrencySetTest, FromSocDerivesResourceConflicts) {
  Soc soc("r");
  CoreSpec a = SimpleCore("a");
  a.resources = {7};
  CoreSpec b = SimpleCore("b");
  b.resources = {7, 9};
  CoreSpec c = SimpleCore("c");
  c.resources = {9};
  soc.AddCore(a);
  soc.AddCore(b);
  soc.AddCore(c);
  soc.AddCore(SimpleCore("d"));

  const ConcurrencySet set = ConcurrencySet::FromSoc(soc);
  EXPECT_TRUE(set.Conflicts(0, 1));   // share resource 7 (BIST-scan conflict)
  EXPECT_TRUE(set.Conflicts(1, 2));   // share resource 9
  EXPECT_FALSE(set.Conflicts(0, 2));  // no shared resource
  EXPECT_FALSE(set.Conflicts(0, 3));
}

TEST(ConcurrencySetTest, FromSocMergesExplicitPairs) {
  Soc soc("e");
  soc.AddCore(SimpleCore("a"));
  soc.AddCore(SimpleCore("b"));
  const ConcurrencySet set = ConcurrencySet::FromSoc(soc, {{0, 1}});
  EXPECT_TRUE(set.Conflicts(0, 1));
}

}  // namespace
}  // namespace soctest
