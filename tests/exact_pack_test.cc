#include "core/exact.h"

#include <gtest/gtest.h>

#include "baseline/lower_bound.h"
#include "core/improver.h"
#include "core/optimizer.h"
#include "core/validator.h"
#include "soc/generator.h"

namespace soctest {
namespace {

Soc TinySoc(int cores, std::uint64_t seed) {
  GeneratorParams params;
  params.seed = seed;
  params.num_cores = cores;
  params.min_inputs = 2;
  params.max_inputs = 24;
  params.min_outputs = 2;
  params.max_outputs = 24;
  params.min_patterns = 5;
  params.max_patterns = 60;
  params.min_chains = 1;
  params.max_chains = 5;
  params.min_chain_len = 4;
  params.max_chain_len = 40;
  return GenerateSoc(params);
}

TEST(ExactPackTest, RefusesOversizedInstances) {
  const Soc soc = TinySoc(12, 1);
  ExactPackOptions options;
  options.max_cores = 10;
  EXPECT_FALSE(ExactPack(soc, 16, options).has_value());
}

TEST(ExactPackTest, SingleCoreIsItsFloorTime) {
  const Soc soc = TinySoc(1, 2);
  const auto result = ExactPack(soc, 16);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->proven_optimal);
  const RectangleSet rect(soc.core(0), 64, 16);
  EXPECT_EQ(result->makespan, rect.MinTime());
}

TEST(ExactPackTest, RespectsLowerBoundAndHeuristicSandwich) {
  for (std::uint64_t seed : {3u, 4u, 5u, 6u}) {
    const Soc soc = TinySoc(5, seed);
    const int w = 8;
    const auto exact = ExactPack(soc, w);
    ASSERT_TRUE(exact.has_value()) << seed;

    const auto lb = ComputeLowerBound(soc, w, 64);
    const TestProblem problem = TestProblem::FromSoc(soc);
    OptimizerParams params;
    params.tam_width = w;
    const auto heuristic = OptimizeBestOverParams(problem, params);
    ASSERT_TRUE(heuristic.ok());

    // LB <= exact <= heuristic.
    EXPECT_GE(exact->makespan, lb.value()) << "seed " << seed;
    EXPECT_LE(exact->makespan, heuristic.makespan) << "seed " << seed;
  }
}

TEST(ExactPackTest, ScheduleIsStructurallyValid) {
  const Soc soc = TinySoc(5, 7);
  const auto exact = ExactPack(soc, 10);
  ASSERT_TRUE(exact.has_value());
  const TestProblem problem = TestProblem::FromSoc(soc);
  ValidationOptions options;
  // The exact packer chooses Pareto rectangles, so durations are exact.
  const auto violations =
      ValidateSchedule(problem, exact->schedule, options);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
  EXPECT_EQ(exact->schedule.Makespan(), exact->makespan);
}

TEST(ExactPackTest, MatchesBruteForceOnTwoCores) {
  // Two cores, W=3: the optimum is either parallel (widths summing <= 3) or
  // serial at full width; verify the exact packer finds the best of all
  // candidate combinations.
  const Soc soc = TinySoc(2, 8);
  const int w = 3;
  const auto exact = ExactPack(soc, w);
  ASSERT_TRUE(exact.has_value());

  const auto rects = BuildRectangleSets(soc, 64, w);
  Time best = -1;
  for (const auto& a : rects[0].pareto()) {
    for (const auto& b : rects[1].pareto()) {
      // Parallel if widths fit together.
      if (a.width + b.width <= w) {
        const Time parallel = std::max(a.time, b.time);
        if (best < 0 || parallel < best) best = parallel;
      }
      // Serial always feasible.
      const Time serial = a.time + b.time;
      if (best < 0 || serial < best) best = serial;
      // Staggered starts never beat one of the above for two rectangles.
    }
  }
  EXPECT_EQ(exact->makespan, best);
}

TEST(ExactPackTest, NodeCapMarksUnproven) {
  const Soc soc = TinySoc(7, 9);
  ExactPackOptions options;
  options.max_nodes = 10;
  const auto result = ExactPack(soc, 12, options);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->proven_optimal);
  // Still returns the heuristic-quality incumbent.
  EXPECT_GT(result->makespan, 0);
}

// Warm starting from the parallel search's best must return the identical
// optimum while exploring strictly fewer B&B nodes: the warm bound is
// exclusive (the warm schedule already realizes it) and the candidate order
// is untouched, so the warm tree is a strict subtree of the cold one on
// every instance where the cold search expands any node that cannot beat
// the warm solution.
TEST(ExactPackTest, WarmStartSameOptimumStrictlyFewerNodes) {
  for (std::uint64_t seed : {3u, 4u, 5u, 6u}) {
    const Soc soc = TinySoc(5, seed);
    const int w = 8;
    const auto cold = ExactPack(soc, w);
    ASSERT_TRUE(cold.has_value()) << seed;
    ASSERT_TRUE(cold->proven_optimal) << seed;

    const TestProblem problem = TestProblem::FromSoc(soc);
    ImproverParams improver;
    improver.optimizer.tam_width = w;
    improver.iterations = 64;
    const ImproverResult heuristic = ImproveSchedule(problem, improver);
    ASSERT_TRUE(heuristic.best.ok());

    ExactPackOptions options;
    SeedWarmStart(options, heuristic.best);
    const auto warm = ExactPack(soc, w, options);
    ASSERT_TRUE(warm.has_value()) << seed;
    EXPECT_TRUE(warm->proven_optimal) << seed;
    EXPECT_EQ(warm->makespan, cold->makespan) << seed;
    EXPECT_LT(warm->nodes_explored, cold->nodes_explored) << seed;
    // The returned schedule realizes the optimum whichever side supplied it.
    EXPECT_EQ(warm->schedule.Makespan(), warm->makespan) << seed;
  }
}

// SeedWarmStart refuses sources the B&B cannot soundly prune against: error
// results and preemptive schedules (ExactPack solves the non-preemptive
// P_NPS, which a preempted makespan can undercut).
TEST(ExactPackTest, SeedWarmStartRefusesUnsoundSources) {
  OptimizerResult preemptive;
  preemptive.makespan = 100;
  preemptive.schedule = Schedule("warm", 8);
  CoreSchedule entry;
  entry.core = 0;
  entry.assigned_width = 2;
  entry.preemptions = 1;
  entry.segments.push_back(ScheduleSegment{Interval{0, 50}, 2});
  entry.segments.push_back(ScheduleSegment{Interval{60, 110}, 2});
  preemptive.schedule.Add(std::move(entry));

  ExactPackOptions options;
  SeedWarmStart(options, preemptive);
  EXPECT_EQ(options.warm_makespan, 0);  // refused: preempted schedule

  OptimizerResult failed;
  failed.error = "unschedulable";
  SeedWarmStart(options, failed);
  EXPECT_EQ(options.warm_makespan, 0);  // refused: error result

  // A clean non-preemptive result seeds all three fields.
  const Soc soc = TinySoc(3, 1);
  const TestProblem problem = TestProblem::FromSoc(soc);
  OptimizerParams params;
  params.tam_width = 6;
  const OptimizerResult good = Optimize(problem, params);
  ASSERT_TRUE(good.ok());
  SeedWarmStart(options, good);
  EXPECT_EQ(options.warm_makespan, good.makespan);
  EXPECT_EQ(options.warm_schedule.Makespan(), good.makespan);
  EXPECT_EQ(static_cast<int>(options.warm_widths.size()), soc.num_cores());

  // Refusing a later source clears the earlier seed, so one options object
  // reused across instances can never carry a stale bound forward.
  SeedWarmStart(options, failed);
  EXPECT_EQ(options.warm_makespan, 0);
  EXPECT_TRUE(options.warm_widths.empty());
}

// When the warm solution IS optimal, the B&B proves it without ever
// recording an incumbent and hands the warm schedule back unchanged.
TEST(ExactPackTest, WarmStartAtOptimumReturnsWarmSchedule) {
  const Soc soc = TinySoc(5, 7);
  const int w = 10;
  const auto cold = ExactPack(soc, w);
  ASSERT_TRUE(cold.has_value());
  ASSERT_TRUE(cold->proven_optimal);

  ExactPackOptions options;
  options.warm_makespan = cold->makespan;  // provably optimal bound
  options.warm_schedule = cold->schedule;
  const auto warm = ExactPack(soc, w, options);
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(warm->proven_optimal);
  EXPECT_EQ(warm->makespan, cold->makespan);
  EXPECT_EQ(warm->schedule.Makespan(), cold->makespan);
}

TEST(ExactPackTest, HeuristicWithinHonestBandOfOptimal) {
  // Quality audit: tiny instances (4 cores, W=6) are the heuristic's worst
  // case — measured gaps run up to ~45% there, while on the benchmark SOCs
  // the gap to the lower bound is under 14% (EXPERIMENTS.md). Assert the
  // measured band and that the heuristic is exactly optimal at least once.
  int optimal_hits = 0;
  int cases = 0;
  for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    const Soc soc = TinySoc(4, seed);
    const int w = 6;
    const auto exact = ExactPack(soc, w);
    ASSERT_TRUE(exact.has_value());
    if (!exact->proven_optimal) continue;
    const TestProblem problem = TestProblem::FromSoc(soc);
    OptimizerParams params;
    params.tam_width = w;
    const auto heuristic = OptimizeBestOverParams(problem, params);
    ASSERT_TRUE(heuristic.ok());
    ++cases;
    optimal_hits += heuristic.makespan == exact->makespan ? 1 : 0;
    EXPECT_LE(static_cast<double>(heuristic.makespan),
              1.5 * static_cast<double>(exact->makespan))
        << "seed " << seed;
  }
  ASSERT_GT(cases, 0);
  EXPECT_GT(optimal_hits, 0);
}

}  // namespace
}  // namespace soctest
