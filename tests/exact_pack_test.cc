#include "core/exact.h"

#include <gtest/gtest.h>

#include "baseline/lower_bound.h"
#include "core/optimizer.h"
#include "core/validator.h"
#include "soc/generator.h"

namespace soctest {
namespace {

Soc TinySoc(int cores, std::uint64_t seed) {
  GeneratorParams params;
  params.seed = seed;
  params.num_cores = cores;
  params.min_inputs = 2;
  params.max_inputs = 24;
  params.min_outputs = 2;
  params.max_outputs = 24;
  params.min_patterns = 5;
  params.max_patterns = 60;
  params.min_chains = 1;
  params.max_chains = 5;
  params.min_chain_len = 4;
  params.max_chain_len = 40;
  return GenerateSoc(params);
}

TEST(ExactPackTest, RefusesOversizedInstances) {
  const Soc soc = TinySoc(12, 1);
  ExactPackOptions options;
  options.max_cores = 10;
  EXPECT_FALSE(ExactPack(soc, 16, options).has_value());
}

TEST(ExactPackTest, SingleCoreIsItsFloorTime) {
  const Soc soc = TinySoc(1, 2);
  const auto result = ExactPack(soc, 16);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->proven_optimal);
  const RectangleSet rect(soc.core(0), 64, 16);
  EXPECT_EQ(result->makespan, rect.MinTime());
}

TEST(ExactPackTest, RespectsLowerBoundAndHeuristicSandwich) {
  for (std::uint64_t seed : {3u, 4u, 5u, 6u}) {
    const Soc soc = TinySoc(5, seed);
    const int w = 8;
    const auto exact = ExactPack(soc, w);
    ASSERT_TRUE(exact.has_value()) << seed;

    const auto lb = ComputeLowerBound(soc, w, 64);
    const TestProblem problem = TestProblem::FromSoc(soc);
    OptimizerParams params;
    params.tam_width = w;
    const auto heuristic = OptimizeBestOverParams(problem, params);
    ASSERT_TRUE(heuristic.ok());

    // LB <= exact <= heuristic.
    EXPECT_GE(exact->makespan, lb.value()) << "seed " << seed;
    EXPECT_LE(exact->makespan, heuristic.makespan) << "seed " << seed;
  }
}

TEST(ExactPackTest, ScheduleIsStructurallyValid) {
  const Soc soc = TinySoc(5, 7);
  const auto exact = ExactPack(soc, 10);
  ASSERT_TRUE(exact.has_value());
  const TestProblem problem = TestProblem::FromSoc(soc);
  ValidationOptions options;
  // The exact packer chooses Pareto rectangles, so durations are exact.
  const auto violations =
      ValidateSchedule(problem, exact->schedule, options);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
  EXPECT_EQ(exact->schedule.Makespan(), exact->makespan);
}

TEST(ExactPackTest, MatchesBruteForceOnTwoCores) {
  // Two cores, W=3: the optimum is either parallel (widths summing <= 3) or
  // serial at full width; verify the exact packer finds the best of all
  // candidate combinations.
  const Soc soc = TinySoc(2, 8);
  const int w = 3;
  const auto exact = ExactPack(soc, w);
  ASSERT_TRUE(exact.has_value());

  const auto rects = BuildRectangleSets(soc, 64, w);
  Time best = -1;
  for (const auto& a : rects[0].pareto()) {
    for (const auto& b : rects[1].pareto()) {
      // Parallel if widths fit together.
      if (a.width + b.width <= w) {
        const Time parallel = std::max(a.time, b.time);
        if (best < 0 || parallel < best) best = parallel;
      }
      // Serial always feasible.
      const Time serial = a.time + b.time;
      if (best < 0 || serial < best) best = serial;
      // Staggered starts never beat one of the above for two rectangles.
    }
  }
  EXPECT_EQ(exact->makespan, best);
}

TEST(ExactPackTest, NodeCapMarksUnproven) {
  const Soc soc = TinySoc(7, 9);
  ExactPackOptions options;
  options.max_nodes = 10;
  const auto result = ExactPack(soc, 12, options);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->proven_optimal);
  // Still returns the heuristic-quality incumbent.
  EXPECT_GT(result->makespan, 0);
}

TEST(ExactPackTest, HeuristicWithinHonestBandOfOptimal) {
  // Quality audit: tiny instances (4 cores, W=6) are the heuristic's worst
  // case — measured gaps run up to ~45% there, while on the benchmark SOCs
  // the gap to the lower bound is under 14% (EXPERIMENTS.md). Assert the
  // measured band and that the heuristic is exactly optimal at least once.
  int optimal_hits = 0;
  int cases = 0;
  for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    const Soc soc = TinySoc(4, seed);
    const int w = 6;
    const auto exact = ExactPack(soc, w);
    ASSERT_TRUE(exact.has_value());
    if (!exact->proven_optimal) continue;
    const TestProblem problem = TestProblem::FromSoc(soc);
    OptimizerParams params;
    params.tam_width = w;
    const auto heuristic = OptimizeBestOverParams(problem, params);
    ASSERT_TRUE(heuristic.ok());
    ++cases;
    optimal_hits += heuristic.makespan == exact->makespan ? 1 : 0;
    EXPECT_LE(static_cast<double>(heuristic.makespan),
              1.5 * static_cast<double>(exact->makespan))
        << "seed " << seed;
  }
  ASSERT_GT(cases, 0);
  EXPECT_GT(optimal_hits, 0);
}

}  // namespace
}  // namespace soctest
