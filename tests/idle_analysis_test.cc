#include "core/idle_analysis.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "soc/benchmarks.h"

namespace soctest {
namespace {

Schedule HandSchedule() {
  // W=4; core 0 uses 3 wires [0,10); core 1 uses 4 wires [10,20).
  Schedule s("hand", 4);
  CoreSchedule a;
  a.core = 0;
  a.assigned_width = 3;
  a.segments.push_back({{0, 10}, 3});
  s.Add(a);
  CoreSchedule b;
  b.core = 1;
  b.assigned_width = 4;
  b.segments.push_back({{10, 20}, 4});
  s.Add(b);
  return s;
}

TEST(IdleAnalysisTest, FindsTheSingleIdleWindow) {
  const IdleReport report = AnalyzeIdle(HandSchedule());
  EXPECT_EQ(report.total_idle_area, 10);  // 1 wire x 10 cycles
  ASSERT_EQ(report.windows.size(), 1u);
  EXPECT_EQ(report.windows[0].span, (Interval{0, 10}));
  EXPECT_EQ(report.windows[0].free_width, 1);
  EXPECT_EQ(report.windows[0].Area(), 10);
  ASSERT_NE(report.LargestWindow(), nullptr);
  EXPECT_EQ(report.LargestWindow()->Area(), 10);
}

TEST(IdleAnalysisTest, FullBinHasNoWindows) {
  Schedule s("full", 2);
  CoreSchedule a;
  a.core = 0;
  a.assigned_width = 2;
  a.segments.push_back({{0, 5}, 2});
  s.Add(a);
  const IdleReport report = AnalyzeIdle(s);
  EXPECT_EQ(report.total_idle_area, 0);
  EXPECT_TRUE(report.windows.empty());
  EXPECT_DOUBLE_EQ(report.utilization, 1.0);
}

TEST(IdleAnalysisTest, GapBetweenTestsIsFullyIdle) {
  Schedule s("gap", 2);
  CoreSchedule a;
  a.core = 0;
  a.assigned_width = 2;
  a.segments.push_back({{0, 5}, 2});
  s.Add(a);
  CoreSchedule b;
  b.core = 1;
  b.assigned_width = 2;
  b.segments.push_back({{8, 12}, 2});
  s.Add(b);
  const IdleReport report = AnalyzeIdle(s);
  // [5,8) x 2 wires idle.
  EXPECT_EQ(report.total_idle_area, 6);
  ASSERT_EQ(report.windows.size(), 1u);
  EXPECT_EQ(report.windows[0].span, (Interval{5, 8}));
  EXPECT_EQ(report.windows[0].free_width, 2);
}

TEST(IdleAnalysisTest, WindowAreasSumToIdleArea) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  OptimizerParams params;
  params.tam_width = 32;
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  const IdleReport report = AnalyzeIdle(result.schedule);
  std::int64_t windows_total = 0;
  for (const auto& w : report.windows) windows_total += w.Area();
  EXPECT_EQ(windows_total, report.total_idle_area);
  EXPECT_EQ(report.total_idle_area, result.schedule.IdleArea());
}

TEST(IdleAnalysisTest, EmptyScheduleSafe) {
  const IdleReport report = AnalyzeIdle(Schedule("empty", 8));
  EXPECT_EQ(report.total_idle_area, 0);
  EXPECT_TRUE(report.windows.empty());
  EXPECT_EQ(report.LargestWindow(), nullptr);
}

TEST(IdleAnalysisTest, FormatMentionsUtilization) {
  const IdleReport report = AnalyzeIdle(HandSchedule());
  const std::string text = FormatIdleReport(report);
  EXPECT_NE(text.find("utilization"), std::string::npos);
  EXPECT_NE(text.find("wire-cycles"), std::string::npos);
}

}  // namespace
}  // namespace soctest
