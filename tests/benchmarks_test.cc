#include "soc/benchmarks.h"

#include <gtest/gtest.h>

#include "baseline/lower_bound.h"
#include "wrapper/rectangles.h"

namespace soctest {
namespace {

TEST(BenchmarksTest, D695HasTenValidCores) {
  const Soc soc = MakeD695();
  EXPECT_EQ(soc.name(), "d695");
  EXPECT_EQ(soc.num_cores(), 10);
  EXPECT_FALSE(soc.Validate().has_value());
  EXPECT_NE(soc.FindCore("s38417"), kNoCore);
  EXPECT_NE(soc.FindCore("c6288"), kNoCore);
}

TEST(BenchmarksTest, D695CombinationalCoresHaveNoScan) {
  const Soc soc = MakeD695();
  EXPECT_TRUE(soc.core(soc.FindCore("c6288")).scan_chain_lengths.empty());
  EXPECT_TRUE(soc.core(soc.FindCore("c7552")).scan_chain_lengths.empty());
  EXPECT_FALSE(soc.core(soc.FindCore("s38584")).scan_chain_lengths.empty());
}

TEST(BenchmarksTest, D695ScanCellTotalsMatchPublishedCounts) {
  const Soc soc = MakeD695();
  EXPECT_EQ(soc.core(soc.FindCore("s9234")).TotalScanCells(), 211);
  EXPECT_EQ(soc.core(soc.FindCore("s38584")).TotalScanCells(), 1426);
  EXPECT_EQ(soc.core(soc.FindCore("s35932")).TotalScanCells(), 1728);
  EXPECT_EQ(soc.core(soc.FindCore("s38417")).TotalScanCells(), 1636);
}

TEST(BenchmarksTest, SyntheticSocsAreValidAndSized) {
  const Soc p22810s = MakeP22810s();
  EXPECT_EQ(p22810s.num_cores(), 28);
  EXPECT_FALSE(p22810s.Validate().has_value());

  const Soc p34392s = MakeP34392s();
  EXPECT_EQ(p34392s.num_cores(), 19);
  EXPECT_FALSE(p34392s.Validate().has_value());

  const Soc p93791s = MakeP93791s();
  EXPECT_EQ(p93791s.num_cores(), 32);
  EXPECT_FALSE(p93791s.Validate().has_value());

  // Scale ordering mirrors the real designs: p93791 > p34392 > p22810 > d695.
  EXPECT_GT(p93791s.TotalTestBits(), p34392s.TotalTestBits());
  EXPECT_GT(p34392s.TotalTestBits(), p22810s.TotalTestBits());
  EXPECT_GT(p22810s.TotalTestBits(), MakeD695().TotalTestBits());
}

TEST(BenchmarksTest, SyntheticSocsAreDeterministic) {
  EXPECT_EQ(MakeP22810s().TotalTestBits(), MakeP22810s().TotalTestBits());
  EXPECT_EQ(MakeP93791s().TotalTestBits(), MakeP93791s().TotalTestBits());
}

TEST(BenchmarksTest, P34392sBottleneckSaturates) {
  const Soc soc = MakeP34392s();
  const CoreId bottleneck = soc.FindCore("core18_bottleneck");
  ASSERT_NE(bottleneck, kNoCore);
  // The bottleneck core's test time floor dominates the SOC lower bound at
  // W=32 (the paper's p34392 behaviour at Core 18).
  const auto lb32 = ComputeLowerBound(soc, 32, 64);
  EXPECT_EQ(lb32.bottleneck_core, bottleneck);
  EXPECT_EQ(lb32.value(), lb32.bottleneck_bound);
  // At narrow widths the area bound dominates instead.
  const auto lb16 = ComputeLowerBound(soc, 16, 64);
  EXPECT_GT(lb16.area_bound, lb16.bottleneck_bound);
}

TEST(BenchmarksTest, AllBenchmarkSocsInPaperOrder) {
  const auto all = AllBenchmarkSocs();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name(), "d695");
  EXPECT_EQ(all[1].name(), "p22810s");
  EXPECT_EQ(all[2].name(), "p34392s");
  EXPECT_EQ(all[3].name(), "p93791s");
}

TEST(BenchmarksTest, BenchmarkByNameResolvesAliases) {
  EXPECT_EQ(BenchmarkByName("d695").name(), "d695");
  EXPECT_EQ(BenchmarkByName("p22810").name(), "p22810s");
  EXPECT_EQ(BenchmarkByName("p93791s").name(), "p93791s");
  EXPECT_EQ(BenchmarkByName("nope").num_cores(), 0);
}

TEST(BenchmarksTest, BenchmarkProblemSetsPreemptionAndPower) {
  const TestProblem with_power = MakeBenchmarkProblem(MakeD695(), true);
  EXPECT_FALSE(with_power.power.unlimited());
  EXPECT_GE(with_power.power.pmax(), with_power.power.MaxCorePower());

  int preemptable = 0;
  for (const auto& core : with_power.soc.cores()) {
    if (core.max_preemptions > 0) {
      EXPECT_EQ(core.max_preemptions, 2);
      ++preemptable;
    }
  }
  // The "larger cores" get budget 2: at least a third, not all, of the SOC.
  EXPECT_GE(preemptable, 3);
  EXPECT_LT(preemptable, with_power.soc.num_cores());

  const TestProblem no_power = MakeBenchmarkProblem(MakeD695(), false);
  EXPECT_TRUE(no_power.power.unlimited());
}

}  // namespace
}  // namespace soctest
