#include "core/wire_assign.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "soc/benchmarks.h"

namespace soctest {
namespace {

Schedule TwoCoreSchedule() {
  Schedule s("demo", 8);
  CoreSchedule a;
  a.core = 0;
  a.assigned_width = 5;
  a.segments.push_back({{0, 100}, 5});
  s.Add(a);
  CoreSchedule b;
  b.core = 1;
  b.assigned_width = 3;
  b.segments.push_back({{50, 150}, 3});
  s.Add(b);
  return s;
}

TEST(WireAssignTest, GrantsMatchSegmentWidths) {
  const Schedule s = TwoCoreSchedule();
  const auto wires = AssignWires(s);
  ASSERT_TRUE(wires.has_value());
  ASSERT_EQ(wires->grants.size(), 2u);
  EXPECT_EQ(wires->grants[0].wires.size(), 5u);
  EXPECT_EQ(wires->grants[1].wires.size(), 3u);
  EXPECT_FALSE(CheckWireAssignment(s, *wires).has_value());
}

TEST(WireAssignTest, FailsWhenCapacityExceeded) {
  Schedule s("overflow", 4);
  CoreSchedule a;
  a.core = 0;
  a.assigned_width = 3;
  a.segments.push_back({{0, 10}, 3});
  s.Add(a);
  CoreSchedule b;
  b.core = 1;
  b.assigned_width = 3;
  b.segments.push_back({{5, 15}, 3});
  s.Add(b);
  EXPECT_FALSE(AssignWires(s).has_value());
}

TEST(WireAssignTest, ReleasedWiresAreReused) {
  Schedule s("reuse", 4);
  CoreSchedule a;
  a.core = 0;
  a.assigned_width = 4;
  a.segments.push_back({{0, 10}, 4});
  s.Add(a);
  CoreSchedule b;
  b.core = 1;
  b.assigned_width = 4;
  b.segments.push_back({{10, 20}, 4});  // back-to-back reuse at t=10
  s.Add(b);
  const auto wires = AssignWires(s);
  ASSERT_TRUE(wires.has_value());
  EXPECT_FALSE(CheckWireAssignment(s, *wires).has_value());
}

TEST(WireAssignTest, ForkDetection) {
  // Core 1 arrives when wires {0,1} are busy, then core 0's release leaves a
  // hole; core 2 must fork around it.
  Schedule s("fork", 6);
  CoreSchedule a;
  a.core = 0;
  a.assigned_width = 2;
  a.segments.push_back({{0, 10}, 2});  // wires 0-1
  s.Add(a);
  CoreSchedule b;
  b.core = 1;
  b.assigned_width = 2;
  b.segments.push_back({{0, 30}, 2});  // wires 2-3
  s.Add(b);
  CoreSchedule c;
  c.core = 2;
  c.assigned_width = 3;
  c.segments.push_back({{10, 25}, 3});  // wires 0,1 + 4 -> forked
  s.Add(c);
  const auto wires = AssignWires(s);
  ASSERT_TRUE(wires.has_value());
  const auto& grant_c = wires->grants[2];
  EXPECT_EQ(grant_c.core, 2);
  EXPECT_GT(grant_c.NumFragments(), 1);
  EXPECT_GT(wires->ForkShare(), 0.0);
  EXPECT_FALSE(CheckWireAssignment(s, *wires).has_value());
}

TEST(WireAssignTest, ContiguousGrantHasOneFragment) {
  const Schedule s = TwoCoreSchedule();
  const auto wires = AssignWires(s);
  ASSERT_TRUE(wires.has_value());
  EXPECT_EQ(wires->grants[0].NumFragments(), 1);
  EXPECT_EQ(wires->MaxFragments(), 1);
  EXPECT_DOUBLE_EQ(wires->ForkShare(), 0.0);
}

TEST(WireAssignTest, CheckCatchesDoubleBooking) {
  const Schedule s = TwoCoreSchedule();
  auto wires = AssignWires(s);
  ASSERT_TRUE(wires.has_value());
  // Corrupt: give core 1 a wire already used by core 0 in the overlap.
  wires->grants[1].wires[0] = wires->grants[0].wires[0];
  EXPECT_TRUE(CheckWireAssignment(s, *wires).has_value());
}

TEST(WireAssignTest, CheckCatchesOutOfRangeWire) {
  const Schedule s = TwoCoreSchedule();
  auto wires = AssignWires(s);
  ASSERT_TRUE(wires.has_value());
  wires->grants[0].wires[0] = 99;
  EXPECT_TRUE(CheckWireAssignment(s, *wires).has_value());
}

TEST(WireAssignTest, WorksOnRealOptimizerOutput) {
  for (const auto& soc : AllBenchmarkSocs()) {
    TestProblem problem = MakeBenchmarkProblem(soc, false);
    OptimizerParams params;
    params.tam_width = 24;
    params.allow_preemption = true;
    const auto result = Optimize(problem, params);
    ASSERT_TRUE(result.ok()) << soc.name();
    const auto wires = AssignWires(result.schedule);
    ASSERT_TRUE(wires.has_value()) << soc.name();
    EXPECT_FALSE(CheckWireAssignment(result.schedule, *wires).has_value())
        << soc.name();
  }
}

}  // namespace
}  // namespace soctest
