#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace soctest {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const auto first = sm.Next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.Next());
  EXPECT_NE(sm.Next(), first);
}

}  // namespace
}  // namespace soctest
