// Time-varying power budgets and priority-class admission.
//
// Two contracts under test:
//  1. Bit-identity: a one-segment budget and uniform priority classes must
//     leave the scheduler byte-for-byte where it was — every schedule,
//     assignment, and counter identical to both the scalar-pmax encoding and
//     the frozen reference scheduler (tests/reference_optimizer.cc).
//  2. Timeline correctness: under a genuinely time-varying budget, every
//     produced schedule satisfies power(t) <= BudgetAt(t) at every instant
//     (validator property suite across generated SOCs: preemptive x
//     power-capped x priority mixes), budget drops act as admission barriers
//     or preemption points, idle-advance crosses infeasible windows, and
//     priority classes are honored (hot-lot cores complete no later than
//     under uniform priority).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "core/validator.h"
#include "soc/benchmarks.h"
#include "soc/generator.h"
#include "reference_optimizer.h"

namespace soctest {
namespace {

void ExpectBitIdentical(const OptimizerResult& ref, const OptimizerResult& got,
                        const std::string& label) {
  ASSERT_EQ(ref.ok(), got.ok()) << label;
  if (!ref.ok()) return;
  EXPECT_EQ(ref.makespan, got.makespan) << label;
  EXPECT_EQ(ref.admission_rounds, got.admission_rounds) << label;
  ASSERT_EQ(ref.schedule.entries().size(), got.schedule.entries().size())
      << label;
  for (std::size_t i = 0; i < ref.schedule.entries().size(); ++i) {
    const CoreSchedule& r = ref.schedule.entries()[i];
    const CoreSchedule& g = got.schedule.entries()[i];
    const std::string at = label + " core " + std::to_string(r.core);
    EXPECT_EQ(r.core, g.core) << at;
    EXPECT_EQ(r.assigned_width, g.assigned_width) << at;
    EXPECT_EQ(r.preemptions, g.preemptions) << at;
    ASSERT_EQ(r.segments.size(), g.segments.size()) << at;
    for (std::size_t s = 0; s < r.segments.size(); ++s) {
      EXPECT_EQ(r.segments[s].span, g.segments[s].span) << at;
      EXPECT_EQ(r.segments[s].width, g.segments[s].width) << at;
    }
  }
  ASSERT_EQ(ref.assignments.size(), got.assignments.size()) << label;
  for (std::size_t i = 0; i < ref.assignments.size(); ++i) {
    EXPECT_EQ(ref.assignments[i].assigned_width,
              got.assignments[i].assigned_width) << label;
    EXPECT_EQ(ref.assignments[i].scheduled_time,
              got.assignments[i].scheduled_time) << label;
  }
}

TestProblem GeneratedProblem(std::uint64_t seed, int cores, bool preemptive,
                             int priority_classes) {
  GeneratorParams params;
  params.name = "budget";
  params.seed = seed;
  params.num_cores = cores;
  params.min_inputs = 1;
  params.max_inputs = 80;
  params.min_outputs = 1;
  params.max_outputs = 80;
  params.min_patterns = 1;
  params.max_patterns = 300;
  params.min_chains = 1;
  params.max_chains = 12;
  params.min_chain_len = 1;
  params.max_chain_len = 90;
  params.max_preemptions = preemptive ? 2 : 0;
  params.priority_classes = priority_classes;
  return TestProblem::FromSoc(GenerateSoc(params));
}

// ---- Contract 1: one segment / uniform priority = bit-identical ----------

TEST(BudgetIdentityTest, OneSegmentEqualsScalarPmaxAndReference) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    TestProblem scalar = GeneratedProblem(seed, 12, seed % 2 == 0, 1);
    scalar.power = PowerModel::FromSoc(scalar.soc, 1.8);
    const std::int64_t pmax = scalar.power.pmax();

    TestProblem one_segment = scalar;
    one_segment.power.set_budget(PowerBudget::Constant(pmax));

    for (const bool preempt : {false, true}) {
      OptimizerParams params;
      params.tam_width = 24;
      params.allow_preemption = preempt;
      const std::string label =
          "seed " + std::to_string(seed) + " preempt " + std::to_string(preempt);
      const OptimizerResult ref = testref::ReferenceOptimize(scalar, params);
      ExpectBitIdentical(ref, Optimize(scalar, params), label + " scalar");
      ExpectBitIdentical(ref, Optimize(one_segment, params),
                         label + " one-segment");

      // The override plumbing with a single segment is the same special case.
      OptimizerParams override_params = params;
      override_params.power_budget_override = {{0, pmax}};
      ExpectBitIdentical(ref, Optimize(scalar, override_params),
                         label + " override");
    }
  }
}

TEST(BudgetIdentityTest, UniformNonzeroPriorityIsInert) {
  // Every core in the same class (whatever its value) must schedule exactly
  // as class 0 does: the ranking key only exists when classes differ.
  TestProblem base = GeneratedProblem(21, 12, true, 1);
  base.power = PowerModel::FromSoc(base.soc, 1.6);
  TestProblem uniform2 = base;
  for (int i = 0; i < uniform2.soc.num_cores(); ++i) {
    uniform2.soc.mutable_core(i).prio = 2;
  }
  OptimizerParams params;
  params.tam_width = 24;
  params.allow_preemption = true;
  const OptimizerResult ref = testref::ReferenceOptimize(base, params);
  ExpectBitIdentical(ref, Optimize(uniform2, params), "uniform prio 2");

  // honor_priority=false neutralizes even a mixed-class SOC.
  TestProblem mixed = uniform2;
  for (int i = 0; i < mixed.soc.num_cores(); ++i) {
    mixed.soc.mutable_core(i).prio = i % 4;
  }
  OptimizerParams blind = params;
  blind.honor_priority = false;
  ExpectBitIdentical(ref, Optimize(mixed, blind), "honor_priority=false");
}

// ---- Contract 2: timeline correctness ------------------------------------

// Attaches the timeline to the problem (so the validator checks against it)
// and schedules. Expects success and a validator-clean schedule.
OptimizerResult ScheduleUnderTimeline(TestProblem& problem,
                                      const PowerBudget& budget,
                                      const OptimizerParams& params,
                                      const std::string& label) {
  problem.power = WithBudget(problem.soc, problem.power, budget);
  OptimizerResult result = Optimize(problem, params);
  EXPECT_TRUE(result.ok()) << label << ": " << result.error.value_or("");
  if (result.ok()) {
    const auto violations = ValidateSchedule(problem, result.schedule);
    EXPECT_TRUE(violations.empty())
        << label << "\n" << FormatViolations(violations);
  }
  return result;
}

TEST(BudgetTimelineTest, ThrottlePropertyGrid) {
  // Generated-SOC grid: preemptive x priority mixes, each scheduled under a
  // throttling-window timeline sized off the constant-cap makespan so drops
  // land mid-schedule. Every result must validate (power <= BudgetAt(t) at
  // every event).
  int checked = 0;
  for (const std::uint64_t seed : {31u, 32u, 33u, 34u}) {
    for (const bool preemptive : {false, true}) {
      for (const int classes : {1, 3}) {
        TestProblem problem = GeneratedProblem(seed, 10, preemptive, classes);
        problem.power = PowerModel::FromSoc(problem.soc, 2.0);
        const std::int64_t high = problem.power.pmax();
        const std::int64_t low =
            std::max<std::int64_t>(problem.power.MaxCorePower(), high / 2);

        OptimizerParams params;
        params.tam_width = 20;
        params.allow_preemption = preemptive;
        const OptimizerResult constant = Optimize(problem, params);
        ASSERT_TRUE(constant.ok()) << constant.error.value_or("");

        const Time span = std::max<Time>(1, constant.makespan / 7);
        const PowerBudget budget = MakeThrottleTimeline(
            high, low, span, span, constant.makespan);
        const std::string label =
            "seed " + std::to_string(seed) + " pre " +
            std::to_string(preemptive) + " classes " + std::to_string(classes);
        ScheduleUnderTimeline(problem, budget, params, label);
        ++checked;
      }
    }
  }
  EXPECT_EQ(checked, 16);
}

TEST(BudgetTimelineTest, ThrottleWindowChangesTheSchedule) {
  // The acceptance criterion: a budget drop demonstrably changes the
  // schedule. Low phase pinned at the serial floor, so overlap that the
  // constant-cap schedule relies on is illegal during drops.
  TestProblem problem = TestProblem::FromSoc(MakeD695());
  problem.power = PowerModel::FromSoc(problem.soc, 2.0);
  const std::int64_t high = problem.power.pmax();
  const std::int64_t low = problem.power.MaxCorePower();

  OptimizerParams params;
  params.tam_width = 24;
  const OptimizerResult constant = Optimize(problem, params);
  ASSERT_TRUE(constant.ok());

  TestProblem throttled = problem;
  const Time span = std::max<Time>(1, constant.makespan / 5);
  const OptimizerResult result = ScheduleUnderTimeline(
      throttled, MakeThrottleTimeline(high, low, span, span, constant.makespan),
      params, "throttled d695");
  ASSERT_TRUE(result.ok());
  // Cutting the cap roughly in half for half the horizon must cost cycles.
  EXPECT_GT(result.makespan, constant.makespan);

  // And the throttled schedule must NOT validate against a problem whose
  // budget is the low cap everywhere — i.e. the scheduler genuinely used the
  // high windows, not just the safe minimum.
  TestProblem all_low = problem;
  all_low.power.set_pmax(low);
  EXPECT_FALSE(IsValidSchedule(all_low, constant.schedule));
}

TEST(BudgetTimelineTest, IdleAdvanceCrossesInfeasibleWindow) {
  // At t=0 the budget admits nothing; the scheduler must idle until the
  // change-point rather than deadlock.
  Soc soc("idle");
  for (int i = 0; i < 3; ++i) {
    CoreSpec c;
    c.name = "c" + std::to_string(i);
    c.num_inputs = 4;
    c.num_outputs = 4;
    c.num_patterns = 20;
    c.power = 10;
    soc.AddCore(c);
  }
  TestProblem problem = TestProblem::FromSoc(soc);
  OptimizerParams params;
  params.tam_width = 16;
  const OptimizerResult result = ScheduleUnderTimeline(
      problem, PowerBudget::FromSegments({{0, 5}, {1000, 30}}).value(), params,
      "idle-advance");
  ASSERT_TRUE(result.ok());
  for (const auto& entry : result.schedule.entries()) {
    EXPECT_GE(entry.BeginTime(), 1000) << "core started inside the dead window";
  }
}

TEST(BudgetTimelineTest, CorePowerAboveEverySegmentIsAnError) {
  Soc soc("hot");
  CoreSpec c;
  c.name = "x";
  c.num_inputs = 4;
  c.num_outputs = 4;
  c.num_patterns = 10;
  c.power = 100;
  soc.AddCore(c);
  TestProblem problem = TestProblem::FromSoc(soc);
  problem.power = WithBudget(
      soc, problem.power, PowerBudget::FromSegments({{0, 20}, {50, 40}}).value());
  OptimizerParams params;
  params.tam_width = 8;
  const OptimizerResult result = Optimize(problem, params);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error->find("can never be scheduled"), std::string::npos)
      << *result.error;
}

TEST(BudgetTimelineTest, InvalidOverrideReportsError) {
  TestProblem problem = TestProblem::FromSoc(MakeD695());
  OptimizerParams params;
  params.tam_width = 16;
  params.power_budget_override = {{5, 100}};  // first segment must start at 0
  const OptimizerResult result = Optimize(problem, params);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error->find("power_budget_override"), std::string::npos)
      << *result.error;
}

TEST(BudgetTimelineTest, OverrideEquivalentToInProblemTimeline) {
  TestProblem in_problem = TestProblem::FromSoc(MakeD695());
  in_problem.power = PowerModel::FromSoc(in_problem.soc, 2.0);
  const std::int64_t high = in_problem.power.pmax();
  const std::int64_t low = in_problem.power.MaxCorePower();
  const std::vector<PowerBudget::Segment> segments = {
      {0, high}, {20'000, low}, {40'000, high}};

  TestProblem overridden = in_problem;  // keeps the constant cap
  in_problem.power.set_budget(PowerBudget::FromSegments(segments).value());

  OptimizerParams params;
  params.tam_width = 24;
  OptimizerParams with_override = params;
  with_override.power_budget_override = segments;
  ExpectBitIdentical(Optimize(in_problem, params),
                     Optimize(overridden, with_override), "override vs inline");
}

TEST(BudgetTimelineTest, BoundedRunsKeepIdentityUnderTimeline) {
  // Makespan certificates are power-free, so bounding at the known makespan
  // must reproduce the run bit-for-bit (the improver leans on this).
  TestProblem problem = TestProblem::FromSoc(MakeD695());
  problem.power = PowerModel::FromSoc(problem.soc, 2.0);
  const std::int64_t high = problem.power.pmax();
  problem.power.set_budget(
      PowerBudget::FromSegments(
          {{0, high}, {15'000, std::max<std::int64_t>(1, high / 2)},
           {30'000, high}})
          .value());
  OptimizerParams params;
  params.tam_width = 24;
  const OptimizerResult free_run = Optimize(problem, params);
  ASSERT_TRUE(free_run.ok());
  OptimizerParams bounded = params;
  bounded.makespan_bound = free_run.makespan + 1;
  const OptimizerResult bounded_run = Optimize(problem, bounded);
  ASSERT_TRUE(bounded_run.ok());
  EXPECT_FALSE(bounded_run.aborted_by_bound);
  ExpectBitIdentical(free_run, bounded_run, "bounded");
}

// ---- Priority classes ----------------------------------------------------

TEST(PriorityTest, MixedClassesValidateCleanlyWithDiagnostics) {
  // Priority-ordering invariant: schedules honoring priority pass the
  // validator's conservative priority diagnostic across the grid.
  for (const std::uint64_t seed : {41u, 42u, 43u}) {
    for (const bool preemptive : {false, true}) {
      TestProblem problem = GeneratedProblem(seed, 10, preemptive, 4);
      problem.power = PowerModel::FromSoc(problem.soc, 2.0);
      OptimizerParams params;
      params.tam_width = 20;
      params.allow_preemption = preemptive;
      const OptimizerResult result = Optimize(problem, params);
      ASSERT_TRUE(result.ok()) << result.error.value_or("");
      ValidationOptions options;
      options.check_priority_order = true;
      const auto violations =
          ValidateSchedule(problem, result.schedule, options);
      EXPECT_TRUE(violations.empty())
          << "seed " << seed << " pre " << preemptive << "\n"
          << FormatViolations(violations);
    }
  }
}

TEST(PriorityTest, HotLotCompletesNoLaterThanUniform) {
  // The mixed-priority acceptance criterion: cores in class 0 finish no
  // later when the scheduler honors classes than when it ignores them.
  // Tight power budget so admission order actually decides completion times:
  // only one core can run at a time.
  Soc soc("lots");
  for (int i = 0; i < 6; ++i) {
    CoreSpec c;
    c.name = "c" + std::to_string(i);
    c.num_inputs = 4 + i;
    c.num_outputs = 4;
    c.num_patterns = 50 + 10 * i;
    c.power = 10;
    c.prio = i < 2 ? 0 : 3;  // two hot-lot cores, four best-effort
    soc.AddCore(c);
  }
  TestProblem problem = TestProblem::FromSoc(soc);
  problem.power = WithBudget(soc, PowerModel({10, 10, 10, 10, 10, 10}, 10),
                             PowerBudget::Constant(10));

  OptimizerParams honor;
  honor.tam_width = 16;
  OptimizerParams blind = honor;
  blind.honor_priority = false;

  const OptimizerResult with_prio = Optimize(problem, honor);
  const OptimizerResult without = Optimize(problem, blind);
  ASSERT_TRUE(with_prio.ok());
  ASSERT_TRUE(without.ok());

  const auto hot_finish = [&](const OptimizerResult& r) {
    Time latest = 0;
    for (const auto& e : r.schedule.entries()) {
      if (soc.core(e.core).prio == 0) latest = std::max(latest, e.EndTime());
    }
    return latest;
  };
  EXPECT_LE(hot_finish(with_prio), hot_finish(without));
  // With a serial budget and six cores the hot lot must actually lead.
  EXPECT_LT(hot_finish(with_prio), hot_finish(without));
}

}  // namespace
}  // namespace soctest
