#include "soc/soc_parser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "soc/benchmarks.h"

namespace soctest {
namespace {

constexpr const char* kSmallSoc = R"(# demo SOC
soc demo
core alpha
  inputs 10
  outputs 5
  patterns 100
  scanchains 20 20 16
  power 7
end
core beta
  inputs 3
  outputs 3
  bidirs 2
  patterns 50
  maxpreemptions 2
  parent alpha
  resources 1 2
end
precedence alpha < beta
concurrency alpha ~ beta
powermax 99
)";

TEST(SocParserTest, ParsesFullExample) {
  const auto result = ParseSocText(kSmallSoc);
  ASSERT_TRUE(std::holds_alternative<ParsedSoc>(result))
      << std::get<ParseError>(result).message;
  const auto& parsed = std::get<ParsedSoc>(result);

  EXPECT_EQ(parsed.soc.name(), "demo");
  ASSERT_EQ(parsed.soc.num_cores(), 2);

  const CoreSpec& alpha = parsed.soc.core(0);
  EXPECT_EQ(alpha.num_inputs, 10);
  EXPECT_EQ(alpha.num_outputs, 5);
  EXPECT_EQ(alpha.num_patterns, 100);
  EXPECT_EQ(alpha.scan_chain_lengths, (std::vector<int>{20, 20, 16}));
  EXPECT_EQ(alpha.power, 7);

  const CoreSpec& beta = parsed.soc.core(1);
  EXPECT_EQ(beta.num_bidirs, 2);
  EXPECT_EQ(beta.max_preemptions, 2);
  ASSERT_TRUE(beta.parent.has_value());
  EXPECT_EQ(*beta.parent, 0);
  EXPECT_EQ(beta.resources, (std::vector<int>{1, 2}));

  ASSERT_EQ(parsed.precedence.size(), 1u);
  EXPECT_EQ(parsed.precedence[0], (std::pair<CoreId, CoreId>{0, 1}));
  ASSERT_EQ(parsed.concurrency.size(), 1u);
  EXPECT_EQ(parsed.power_max, 99);
}

TEST(SocParserTest, RoundTripsThroughSerializer) {
  const auto first = ParseSocText(kSmallSoc);
  ASSERT_TRUE(std::holds_alternative<ParsedSoc>(first));
  const std::string text = SerializeSoc(std::get<ParsedSoc>(first));
  const auto second = ParseSocText(text);
  ASSERT_TRUE(std::holds_alternative<ParsedSoc>(second))
      << std::get<ParseError>(second).message;
  const auto& a = std::get<ParsedSoc>(first);
  const auto& b = std::get<ParsedSoc>(second);
  EXPECT_EQ(a.soc.num_cores(), b.soc.num_cores());
  EXPECT_EQ(a.precedence, b.precedence);
  EXPECT_EQ(a.concurrency, b.concurrency);
  EXPECT_EQ(a.power_max, b.power_max);
  for (int i = 0; i < a.soc.num_cores(); ++i) {
    EXPECT_EQ(a.soc.core(i).name, b.soc.core(i).name);
    EXPECT_EQ(a.soc.core(i).scan_chain_lengths, b.soc.core(i).scan_chain_lengths);
    EXPECT_EQ(a.soc.core(i).num_patterns, b.soc.core(i).num_patterns);
  }
}

constexpr const char* kBudgetSoc = R"(soc throttled
core alpha
  inputs 10
  outputs 5
  patterns 100
  prio 2
end
core beta
  inputs 3
  outputs 3
  patterns 50
end
powerbudget 0 100
powerbudget 500 40
powerbudget 800 70
)";

TEST(SocParserTest, ParsesPrioAndBudgetTimeline) {
  const auto result = ParseSocText(kBudgetSoc);
  ASSERT_TRUE(std::holds_alternative<ParsedSoc>(result))
      << std::get<ParseError>(result).message;
  const auto& parsed = std::get<ParsedSoc>(result);
  EXPECT_EQ(parsed.soc.core(0).prio, 2);
  EXPECT_EQ(parsed.soc.core(1).prio, 0);  // default hot-lot class
  ASSERT_EQ(parsed.budget.size(), 3u);
  EXPECT_EQ(parsed.budget[0], (PowerBudget::Segment{0, 100}));
  EXPECT_EQ(parsed.budget[1], (PowerBudget::Segment{500, 40}));
  EXPECT_EQ(parsed.budget[2], (PowerBudget::Segment{800, 70}));
  EXPECT_EQ(parsed.power_max, -1);  // powerbudget does not alias powermax
}

TEST(SocParserTest, PrioAndBudgetRoundTripThroughSerializer) {
  const auto first = ParseSocText(kBudgetSoc);
  ASSERT_TRUE(std::holds_alternative<ParsedSoc>(first));
  const std::string text = SerializeSoc(std::get<ParsedSoc>(first));
  const auto second = ParseSocText(text);
  ASSERT_TRUE(std::holds_alternative<ParsedSoc>(second))
      << std::get<ParseError>(second).message;
  const auto& a = std::get<ParsedSoc>(first);
  const auto& b = std::get<ParsedSoc>(second);
  EXPECT_EQ(a.budget, b.budget);
  for (int i = 0; i < a.soc.num_cores(); ++i) {
    EXPECT_EQ(a.soc.core(i).prio, b.soc.core(i).prio);
  }
  // Serialization is a fixed point: reserializing reproduces the same bytes
  // (the stability the content-addressed caches key off).
  EXPECT_EQ(SerializeSoc(b), text);
}

TEST(SocParserTest, PowermaxSpellingIsStable) {
  // A plain powermax SOC must keep serializing with `powermax` — never
  // rewritten to a one-segment powerbudget — so existing files' canonical
  // text (and every cache key derived from it) is unchanged.
  const auto result = ParseSocText(kSmallSoc);
  ASSERT_TRUE(std::holds_alternative<ParsedSoc>(result));
  const std::string text = SerializeSoc(std::get<ParsedSoc>(result));
  EXPECT_NE(text.find("powermax 99"), std::string::npos);
  EXPECT_EQ(text.find("powerbudget"), std::string::npos);
}

TEST(SocParserTest, SerializesBenchmarkSocs) {
  for (const auto& soc : AllBenchmarkSocs()) {
    const auto result = ParseSocText(SerializeSoc(soc));
    ASSERT_TRUE(std::holds_alternative<ParsedSoc>(result)) << soc.name();
    EXPECT_EQ(std::get<ParsedSoc>(result).soc.num_cores(), soc.num_cores());
  }
}

struct ErrorCase {
  const char* label;
  const char* text;
};

class SocParserErrorTest : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(SocParserErrorTest, ReportsError) {
  const auto result = ParseSocText(GetParam().text);
  EXPECT_TRUE(std::holds_alternative<ParseError>(result)) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Errors, SocParserErrorTest,
    ::testing::Values(
        ErrorCase{"empty", ""},
        ErrorCase{"no_soc", "core x\ninputs 1\nend\n"},
        ErrorCase{"dup_soc", "soc a\nsoc b\n"},
        ErrorCase{"unclosed_core", "soc a\ncore x\ninputs 1\n"},
        ErrorCase{"nested_core", "soc a\ncore x\ncore y\nend\nend\n"},
        ErrorCase{"dup_core", "soc a\ncore x\npatterns 1\ninputs 1\nend\ncore "
                              "x\npatterns 1\ninputs 1\nend\n"},
        ErrorCase{"bad_attr", "soc a\ncore x\nbogus 1\nend\n"},
        ErrorCase{"bad_patterns", "soc a\ncore x\npatterns -2\nend\n"},
        ErrorCase{"bad_chain", "soc a\ncore x\npatterns 1\nscanchains 0\nend\n"},
        ErrorCase{"unknown_parent",
                  "soc a\ncore x\npatterns 1\ninputs 1\nparent q\nend\n"},
        ErrorCase{"unknown_prec_core",
                  "soc a\ncore x\npatterns 1\ninputs 1\nend\nprecedence x < y\n"},
        ErrorCase{"self_constraint",
                  "soc a\ncore x\npatterns 1\ninputs 1\nend\nprecedence x < x\n"},
        ErrorCase{"bad_powermax",
                  "soc a\ncore x\npatterns 1\ninputs 1\nend\npowermax -3\n"},
        ErrorCase{"end_outside", "soc a\nend\n"},
        ErrorCase{"cyclic_precedence",
                  "soc a\ncore x\npatterns 1\ninputs 1\nend\ncore y\npatterns "
                  "1\ninputs 1\nend\nprecedence x < y\nprecedence y < x\n"},
        ErrorCase{"unknown_directive", "soc a\nfrobnicate 3\n"},
        ErrorCase{"bad_prio",
                  "soc a\ncore x\npatterns 1\ninputs 1\nprio q\nend\n"},
        ErrorCase{"prio_out_of_range",
                  "soc a\ncore x\npatterns 1\ninputs 1\nprio 4\nend\n"},
        ErrorCase{"prio_negative",
                  "soc a\ncore x\npatterns 1\ninputs 1\nprio -1\nend\n"},
        ErrorCase{"budget_bad_arity",
                  "soc a\ncore x\npatterns 1\ninputs 1\nend\npowerbudget 5\n"},
        ErrorCase{"budget_negative_start",
                  "soc a\ncore x\npatterns 1\ninputs 1\nend\n"
                  "powerbudget -1 50\n"},
        ErrorCase{"budget_zero_pmax",
                  "soc a\ncore x\npatterns 1\ninputs 1\nend\n"
                  "powerbudget 0 0\n"},
        ErrorCase{"budget_first_not_zero",
                  "soc a\ncore x\npatterns 1\ninputs 1\nend\n"
                  "powerbudget 5 50\n"},
        ErrorCase{"budget_not_increasing",
                  "soc a\ncore x\npatterns 1\ninputs 1\nend\n"
                  "powerbudget 0 50\npowerbudget 0 60\n"},
        ErrorCase{"budget_after_powermax",
                  "soc a\ncore x\npatterns 1\ninputs 1\nend\n"
                  "powermax 99\npowerbudget 0 50\n"},
        ErrorCase{"powermax_after_budget",
                  "soc a\ncore x\npatterns 1\ninputs 1\nend\n"
                  "powerbudget 0 50\npowermax 99\n"}),
    [](const ::testing::TestParamInfo<ErrorCase>& info) {
      return info.param.label;
    });

TEST(SocParserTest, ErrorCarriesLineNumber) {
  const auto result = ParseSocText("soc a\ncore x\nbogus 1\nend\n");
  ASSERT_TRUE(std::holds_alternative<ParseError>(result));
  EXPECT_EQ(std::get<ParseError>(result).line, 3);
}

TEST(SocParserTest, CommentsAndBlankLinesIgnored) {
  const auto result = ParseSocText(
      "# header\n\nsoc a\n  # indented comment\ncore x\npatterns 1\ninputs "
      "2\nend\n");
  ASSERT_TRUE(std::holds_alternative<ParsedSoc>(result));
}

TEST(SocParserTest, FileNotFound) {
  const auto result = ParseSocFile("/does/not/exist.soc");
  ASSERT_TRUE(std::holds_alternative<ParseError>(result));
  const auto& err = std::get<ParseError>(result);
  EXPECT_EQ(err.line, 0);
  // File-level error: "path: message", no line component.
  EXPECT_EQ(err.file, "/does/not/exist.soc");
  EXPECT_EQ(err.ToString(), "/does/not/exist.soc: cannot open file");
}

// Errors from files carry "<path>:<line>: <message>" so multi-SOC batch
// failures attribute to the right file and line.
TEST(SocParserTest, FileErrorsCarryPathAndLine) {
  const std::string path = testing::TempDir() + "/parser_error_test.soc";
  {
    std::ofstream f(path);
    f << "soc a\ncore x\nbogus 1\nend\n";
  }
  const auto result = ParseSocFile(path);
  ASSERT_TRUE(std::holds_alternative<ParseError>(result));
  const auto& err = std::get<ParseError>(result);
  EXPECT_EQ(err.file, path);
  EXPECT_EQ(err.line, 3);
  EXPECT_EQ(err.ToString(), path + ":3: unknown core attribute 'bogus'");

  // Text-level parses stay file-less: "line N: message".
  const auto text_result = ParseSocText("soc a\ncore x\nbogus 1\nend\n");
  ASSERT_TRUE(std::holds_alternative<ParseError>(text_result));
  const auto& text_err = std::get<ParseError>(text_result);
  EXPECT_TRUE(text_err.file.empty());
  EXPECT_EQ(text_err.ToString(), "line 3: unknown core attribute 'bogus'");
  std::remove(path.c_str());
}

TEST(SocParserTest, ParsesFromFile) {
  const std::string path = testing::TempDir() + "/parser_test.soc";
  {
    std::ofstream f(path);
    f << kSmallSoc;
  }
  const auto result = ParseSocFile(path);
  ASSERT_TRUE(std::holds_alternative<ParsedSoc>(result));
  EXPECT_EQ(std::get<ParsedSoc>(result).soc.name(), "demo");
}

}  // namespace
}  // namespace soctest
