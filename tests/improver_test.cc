#include "core/improver.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/validator.h"
#include "soc/benchmarks.h"
#include "soc/generator.h"

namespace soctest {
namespace {

// The budget ledger must always balance: every draw is evaluated, skipped
// as a duplicate, or discarded as a no-op.
void ExpectCounterInvariant(const ImproverResult& r) {
  EXPECT_EQ(r.evaluated + r.duplicates_skipped + r.noops, r.drawn);
  int attempted = 0;
  int accepted = 0;
  for (int kind = 0; kind < kNumImproverMoves; ++kind) {
    attempted += r.attempted[static_cast<std::size_t>(kind)];
    accepted += r.accepted[static_cast<std::size_t>(kind)];
  }
  EXPECT_EQ(attempted, r.drawn);
  EXPECT_EQ(accepted, r.improvements);
}

void ExpectIdenticalSchedules(const ImproverResult& a,
                              const ImproverResult& b) {
  ASSERT_EQ(a.best.schedule.entries().size(), b.best.schedule.entries().size());
  for (std::size_t i = 0; i < a.best.schedule.entries().size(); ++i) {
    const auto& ea = a.best.schedule.entries()[i];
    const auto& eb = b.best.schedule.entries()[i];
    EXPECT_EQ(ea.core, eb.core);
    EXPECT_EQ(ea.assigned_width, eb.assigned_width);
    ASSERT_EQ(ea.segments.size(), eb.segments.size()) << "core " << ea.core;
    for (std::size_t s = 0; s < ea.segments.size(); ++s) {
      EXPECT_EQ(ea.segments[s].span, eb.segments[s].span);
      EXPECT_EQ(ea.segments[s].width, eb.segments[s].width);
    }
  }
}

// Full bit-equality of two improver outcomes: same trajectory, same budget
// ledger (every counter, including the per-move-kind split), and an
// identical schedule. Used where the runs share one configuration and only
// the thread count differs.
void ExpectIdenticalOutcomes(const ImproverResult& a, const ImproverResult& b) {
  ASSERT_TRUE(a.best.ok());
  ASSERT_TRUE(b.best.ok());
  EXPECT_EQ(a.initial_makespan, b.initial_makespan);
  EXPECT_EQ(a.best.makespan, b.best.makespan);
  EXPECT_EQ(a.improvements, b.improvements);
  EXPECT_EQ(a.drawn, b.drawn);
  EXPECT_EQ(a.evaluated, b.evaluated);
  EXPECT_EQ(a.noops, b.noops);
  EXPECT_EQ(a.duplicates_skipped, b.duplicates_skipped);
  EXPECT_EQ(a.bound_aborts, b.bound_aborts);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.attempted, b.attempted);
  EXPECT_EQ(a.accepted, b.accepted);
  ExpectIdenticalSchedules(a, b);
}

// Trajectory equality under engine-layer toggles: bounding and memoization
// must leave the accepted moves — and so the draw stream, improvement count,
// and final schedule — untouched. The evaluation-side counters (evaluated,
// duplicates_skipped, bound_aborts, rounds) legitimately differ; that is
// the point of the layers.
void ExpectSameTrajectory(const ImproverResult& a, const ImproverResult& b) {
  ASSERT_TRUE(a.best.ok());
  ASSERT_TRUE(b.best.ok());
  EXPECT_EQ(a.initial_makespan, b.initial_makespan);
  EXPECT_EQ(a.best.makespan, b.best.makespan);
  EXPECT_EQ(a.improvements, b.improvements);
  EXPECT_EQ(a.drawn, b.drawn);
  ExpectIdenticalSchedules(a, b);
}

TEST(ImproverTest, NeverWorseThanStartingPoint) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  ImproverParams params;
  params.optimizer.tam_width = 48;
  params.iterations = 60;
  const ImproverResult result = ImproveSchedule(problem, params);
  ASSERT_TRUE(result.best.ok());
  EXPECT_LE(result.best.makespan, result.initial_makespan);
  EXPECT_GT(result.drawn, 0);
  ExpectCounterInvariant(result);
}

TEST(ImproverTest, OutputValidatesAndDeterministic) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  ImproverParams params;
  params.optimizer.tam_width = 32;
  params.iterations = 40;
  params.seed = 7;
  const ImproverResult a = ImproveSchedule(problem, params);
  const ImproverResult b = ImproveSchedule(problem, params);
  ASSERT_TRUE(a.best.ok());
  EXPECT_EQ(a.best.makespan, b.best.makespan);
  const auto violations = ValidateSchedule(problem, a.best.schedule);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
}

TEST(ImproverTest, PropagatesErrors) {
  Soc soc("hot");
  CoreSpec c;
  c.name = "c";
  c.num_inputs = 2;
  c.num_outputs = 2;
  c.num_patterns = 5;
  soc.AddCore(c);
  TestProblem problem = TestProblem::FromSoc(std::move(soc));
  problem.power = PowerModel({100}, 10);  // unschedulable
  ImproverParams params;
  params.optimizer.tam_width = 8;
  const ImproverResult result = ImproveSchedule(problem, params);
  EXPECT_FALSE(result.best.ok());
}

TEST(ImproverTest, RespectsConstraintsWhileImproving) {
  TestProblem problem = MakeBenchmarkProblem(MakeD695(), true);
  ImproverParams params;
  params.optimizer.tam_width = 24;
  params.optimizer.allow_preemption = true;
  params.iterations = 30;
  const ImproverResult result = ImproveSchedule(problem, params);
  ASSERT_TRUE(result.best.ok());
  const auto violations = ValidateSchedule(problem, result.best.schedule);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
}

// The batched-climb determinism contract: for a fixed seed and batch size,
// the hill climb is bit-identical at every thread count — candidates are
// drawn serially from the RNG and reduced by (makespan, candidate index),
// exactly the search driver's rule.
TEST(ImproverTest, BatchedClimbBitIdenticalAcrossThreads) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  const CompiledProblem compiled(problem);
  for (const int batch : {1, 4, 8}) {
    ImproverParams params;
    params.optimizer.tam_width = 32;
    params.iterations = 48;
    params.seed = 11;
    params.batch = batch;
    params.threads = 1;
    const ImproverResult serial = ImproveSchedule(compiled, params);
    params.threads = 8;
    const ImproverResult parallel = ImproveSchedule(compiled, params);
    SCOPED_TRACE("batch " + std::to_string(batch));
    ExpectIdenticalOutcomes(serial, parallel);
    const auto violations = ValidateSchedule(problem, parallel.best.schedule);
    EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
  }
}

// Same contract on a generated 64-core SOC (the production-scale shape the
// benches track), including preemption.
TEST(ImproverTest, BatchedClimbBitIdenticalOnGenerated64) {
  GeneratorParams gen;
  gen.seed = 99;
  gen.num_cores = 64;
  gen.max_preemptions = 2;
  const TestProblem problem = TestProblem::FromSoc(GenerateSoc(gen));
  const CompiledProblem compiled(problem);
  ImproverParams params;
  params.optimizer.tam_width = 32;
  params.optimizer.allow_preemption = true;
  params.iterations = 24;
  params.seed = 5;
  params.batch = 8;
  params.threads = 1;
  const ImproverResult serial = ImproveSchedule(compiled, params);
  params.threads = 8;
  const ImproverResult parallel = ImproveSchedule(compiled, params);
  ExpectIdenticalOutcomes(serial, parallel);
  EXPECT_LE(parallel.best.makespan, parallel.initial_makespan);
}

// batch=1 is the historical sequential climb: one candidate per round,
// accepted iff improving. The counters must reflect that shape.
TEST(ImproverTest, BatchOneIsTheSequentialClimb) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  ImproverParams params;
  params.optimizer.tam_width = 48;
  params.iterations = 30;
  params.batch = 1;
  const ImproverResult result = ImproveSchedule(problem, params);
  ASSERT_TRUE(result.best.ok());
  EXPECT_EQ(result.drawn, 30);
  EXPECT_LE(result.rounds, result.drawn);
  EXPECT_LE(result.best.makespan, result.initial_makespan);
  ExpectCounterInvariant(result);
}

// ---- PR 9 engine-layer property suite --------------------------------------

struct EngineCase {
  std::string name;
  TestProblem problem;
  bool preempt = false;
  int tam_width = 32;
  int iterations = 24;
};

std::vector<EngineCase> EngineCases() {
  std::vector<EngineCase> cases;
  cases.push_back({"d695_w32", TestProblem::FromSoc(MakeD695()), false, 32, 32});

  GeneratorParams gen8;
  gen8.seed = 42;
  gen8.num_cores = 8;
  // Power-capped: the budget constrains which candidate width vectors are
  // even schedulable, exercising the bound on constraint-heavy schedules.
  cases.push_back(
      {"gen8_power", MakeBenchmarkProblem(GenerateSoc(gen8), true), false, 16,
       32});

  GeneratorParams gen16;
  gen16.seed = 7;
  gen16.num_cores = 16;
  cases.push_back(
      {"gen16_w32", TestProblem::FromSoc(GenerateSoc(gen16)), false, 32, 24});

  GeneratorParams gen64;
  gen64.seed = 99;
  gen64.num_cores = 64;
  gen64.max_preemptions = 2;
  cases.push_back(
      {"gen64_pre", TestProblem::FromSoc(GenerateSoc(gen64)), true, 32, 12});
  return cases;
}

// The tentpole determinism property: incumbent bounding and memoization are
// pure evaluation-cost optimizations. Over every SOC shape × {bound on/off}
// × {memo on/off} × {threads 1,8} × {batch 1,8}, the final schedule is
// bit-identical to the plain climb's, and the budget ledger balances.
TEST(ImproverEngineTest, BoundAndMemoPreserveTrajectoryAcrossGrid) {
  for (const EngineCase& c : EngineCases()) {
    const CompiledProblem compiled(c.problem);
    for (const int batch : {1, 8}) {
      ImproverParams base;
      base.optimizer.tam_width = c.tam_width;
      base.optimizer.allow_preemption = c.preempt;
      base.iterations = c.iterations;
      base.seed = 13;
      base.batch = batch;

      // Reference: both layers off, serial.
      ImproverParams ref_params = base;
      ref_params.bound_candidates = false;
      ref_params.memoize = false;
      ref_params.threads = 1;
      const ImproverResult ref = ImproveSchedule(compiled, ref_params);
      ASSERT_TRUE(ref.best.ok()) << c.name;
      ExpectCounterInvariant(ref);

      for (const bool bound : {false, true}) {
        for (const bool memo : {false, true}) {
          for (const int threads : {1, 8}) {
            SCOPED_TRACE(c.name + " batch=" + std::to_string(batch) +
                         " bound=" + std::to_string(bound) +
                         " memo=" + std::to_string(memo) +
                         " threads=" + std::to_string(threads));
            ImproverParams params = base;
            params.bound_candidates = bound;
            params.memoize = memo;
            params.threads = threads;
            const ImproverResult got = ImproveSchedule(compiled, params);
            ExpectCounterInvariant(got);
            ExpectSameTrajectory(ref, got);
            if (!bound) {
              EXPECT_EQ(got.bound_aborts, 0);
            }
          }
        }
      }
    }
  }
}

// Adaptive runs don't promise the plain climb's trajectory — they promise
// seed-reproducibility and thread-count independence: the bandit is pulled
// while candidates are drawn serially and rewarded serially at round
// boundaries, so threads move wall-clock only.
TEST(ImproverEngineTest, AdaptiveBitIdenticalAcrossThreads) {
  for (const EngineCase& c : EngineCases()) {
    SCOPED_TRACE(c.name);
    const CompiledProblem compiled(c.problem);
    ImproverParams params;
    params.optimizer.tam_width = c.tam_width;
    params.optimizer.allow_preemption = c.preempt;
    params.iterations = c.iterations;
    params.seed = 17;
    params.batch = 8;
    params.adaptive = true;
    params.threads = 1;
    const ImproverResult serial = ImproveSchedule(compiled, params);
    ASSERT_TRUE(serial.best.ok());
    ExpectCounterInvariant(serial);
    params.threads = 8;
    const ImproverResult parallel = ImproveSchedule(compiled, params);
    ExpectIdenticalOutcomes(serial, parallel);
    // And reproducible: a third run with the same seed replays everything.
    const ImproverResult again = ImproveSchedule(compiled, params);
    ExpectIdenticalOutcomes(serial, again);
    const auto violations =
        ValidateSchedule(c.problem, parallel.best.schedule);
    EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
  }
}

// Memoization turns repeat draws into skips without losing quality, and the
// evaluation budget (max_evaluations) counts scheduler runs, not draws.
TEST(ImproverEngineTest, MemoSkipsRepeatsAndMaxEvalsCapsRuns) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  const CompiledProblem compiled(problem);
  ImproverParams params;
  params.optimizer.tam_width = 32;
  params.iterations = 200;  // plenty of draws on a 10-core SOC: repeats occur
  params.seed = 3;
  const ImproverResult memo = ImproveSchedule(compiled, params);
  ASSERT_TRUE(memo.best.ok());
  ExpectCounterInvariant(memo);
  EXPECT_GT(memo.duplicates_skipped, 0);

  params.memoize = false;
  const ImproverResult plain = ImproveSchedule(compiled, params);
  ExpectSameTrajectory(plain, memo);
  // The memo can only remove evaluations relative to the within-round dedup.
  EXPECT_LE(memo.evaluated, plain.evaluated);

  params.memoize = true;
  params.max_evaluations = 10;
  const ImproverResult capped = ImproveSchedule(compiled, params);
  ASSERT_TRUE(capped.best.ok());
  ExpectCounterInvariant(capped);
  EXPECT_LE(capped.evaluated, 10);
  // Skipped draws must not consume the evaluation budget: with repeats
  // present, more than max_evaluations draws were made.
  EXPECT_GE(capped.drawn, capped.evaluated);
}

// With bounding on, losing candidates abandon at the incumbent instead of
// packing their tails — visible as bound_aborts — while the final schedule
// stays that of the unbounded climb (covered by the grid test above).
TEST(ImproverEngineTest, BoundingAbortsLosingCandidates) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  const CompiledProblem compiled(problem);
  ImproverParams params;
  params.optimizer.tam_width = 32;
  params.iterations = 64;
  params.seed = 3;
  const ImproverResult result = ImproveSchedule(compiled, params);
  ASSERT_TRUE(result.best.ok());
  ExpectCounterInvariant(result);
  EXPECT_GT(result.bound_aborts, 0);
  EXPECT_LE(result.bound_aborts, result.evaluated);
}

TEST(ImproverEngineTest, MoveNamesAreStable) {
  EXPECT_STREQ(ImproverMoveName(ImproverMove::kNudge), "nudge");
  EXPECT_STREQ(ImproverMoveName(ImproverMove::kPairSwap), "swap");
  EXPECT_STREQ(ImproverMoveName(ImproverMove::kBlockPerturb), "block");
}

TEST(OptimizerOverrideTest, OverrideWidthsAreHonored) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  OptimizerParams params;
  params.tam_width = 32;
  params.preferred_width_override.assign(10, 4);
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  for (const auto& a : result.assignments) {
    // Preferred width snaps to the Pareto grid at or below 4.
    EXPECT_LE(a.preferred_width, 4);
  }
}

TEST(OptimizerOverrideTest, WrongArityIsAnError) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  OptimizerParams params;
  params.tam_width = 32;
  params.preferred_width_override = {4, 4};  // 10 cores expected
  EXPECT_FALSE(Optimize(problem, params).ok());
}

}  // namespace
}  // namespace soctest
