#include "core/improver.h"

#include <gtest/gtest.h>

#include "core/validator.h"
#include "soc/benchmarks.h"

namespace soctest {
namespace {

TEST(ImproverTest, NeverWorseThanStartingPoint) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  ImproverParams params;
  params.optimizer.tam_width = 48;
  params.iterations = 60;
  const ImproverResult result = ImproveSchedule(problem, params);
  ASSERT_TRUE(result.best.ok());
  EXPECT_LE(result.best.makespan, result.initial_makespan);
  EXPECT_GT(result.attempts, 0);
}

TEST(ImproverTest, OutputValidatesAndDeterministic) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  ImproverParams params;
  params.optimizer.tam_width = 32;
  params.iterations = 40;
  params.seed = 7;
  const ImproverResult a = ImproveSchedule(problem, params);
  const ImproverResult b = ImproveSchedule(problem, params);
  ASSERT_TRUE(a.best.ok());
  EXPECT_EQ(a.best.makespan, b.best.makespan);
  const auto violations = ValidateSchedule(problem, a.best.schedule);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
}

TEST(ImproverTest, PropagatesErrors) {
  Soc soc("hot");
  CoreSpec c;
  c.name = "c";
  c.num_inputs = 2;
  c.num_outputs = 2;
  c.num_patterns = 5;
  soc.AddCore(c);
  TestProblem problem = TestProblem::FromSoc(std::move(soc));
  problem.power = PowerModel({100}, 10);  // unschedulable
  ImproverParams params;
  params.optimizer.tam_width = 8;
  const ImproverResult result = ImproveSchedule(problem, params);
  EXPECT_FALSE(result.best.ok());
}

TEST(ImproverTest, RespectsConstraintsWhileImproving) {
  TestProblem problem = MakeBenchmarkProblem(MakeD695(), true);
  ImproverParams params;
  params.optimizer.tam_width = 24;
  params.optimizer.allow_preemption = true;
  params.iterations = 30;
  const ImproverResult result = ImproveSchedule(problem, params);
  ASSERT_TRUE(result.best.ok());
  const auto violations = ValidateSchedule(problem, result.best.schedule);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
}

TEST(OptimizerOverrideTest, OverrideWidthsAreHonored) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  OptimizerParams params;
  params.tam_width = 32;
  params.preferred_width_override.assign(10, 4);
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  for (const auto& a : result.assignments) {
    // Preferred width snaps to the Pareto grid at or below 4.
    EXPECT_LE(a.preferred_width, 4);
  }
}

TEST(OptimizerOverrideTest, WrongArityIsAnError) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  OptimizerParams params;
  params.tam_width = 32;
  params.preferred_width_override = {4, 4};  // 10 cores expected
  EXPECT_FALSE(Optimize(problem, params).ok());
}

}  // namespace
}  // namespace soctest
