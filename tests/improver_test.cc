#include "core/improver.h"

#include <gtest/gtest.h>

#include "core/validator.h"
#include "soc/benchmarks.h"
#include "soc/generator.h"

namespace soctest {
namespace {

// Full bit-equality of two improver outcomes: same trajectory (attempt and
// acceptance counters), same winning makespan, and an identical schedule.
void ExpectIdenticalOutcomes(const ImproverResult& a, const ImproverResult& b) {
  ASSERT_TRUE(a.best.ok());
  ASSERT_TRUE(b.best.ok());
  EXPECT_EQ(a.initial_makespan, b.initial_makespan);
  EXPECT_EQ(a.best.makespan, b.best.makespan);
  EXPECT_EQ(a.improvements, b.improvements);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.rounds, b.rounds);
  ASSERT_EQ(a.best.schedule.entries().size(), b.best.schedule.entries().size());
  for (std::size_t i = 0; i < a.best.schedule.entries().size(); ++i) {
    const auto& ea = a.best.schedule.entries()[i];
    const auto& eb = b.best.schedule.entries()[i];
    EXPECT_EQ(ea.core, eb.core);
    EXPECT_EQ(ea.assigned_width, eb.assigned_width);
    ASSERT_EQ(ea.segments.size(), eb.segments.size()) << "core " << ea.core;
    for (std::size_t s = 0; s < ea.segments.size(); ++s) {
      EXPECT_EQ(ea.segments[s].span, eb.segments[s].span);
      EXPECT_EQ(ea.segments[s].width, eb.segments[s].width);
    }
  }
}

TEST(ImproverTest, NeverWorseThanStartingPoint) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  ImproverParams params;
  params.optimizer.tam_width = 48;
  params.iterations = 60;
  const ImproverResult result = ImproveSchedule(problem, params);
  ASSERT_TRUE(result.best.ok());
  EXPECT_LE(result.best.makespan, result.initial_makespan);
  EXPECT_GT(result.attempts, 0);
}

TEST(ImproverTest, OutputValidatesAndDeterministic) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  ImproverParams params;
  params.optimizer.tam_width = 32;
  params.iterations = 40;
  params.seed = 7;
  const ImproverResult a = ImproveSchedule(problem, params);
  const ImproverResult b = ImproveSchedule(problem, params);
  ASSERT_TRUE(a.best.ok());
  EXPECT_EQ(a.best.makespan, b.best.makespan);
  const auto violations = ValidateSchedule(problem, a.best.schedule);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
}

TEST(ImproverTest, PropagatesErrors) {
  Soc soc("hot");
  CoreSpec c;
  c.name = "c";
  c.num_inputs = 2;
  c.num_outputs = 2;
  c.num_patterns = 5;
  soc.AddCore(c);
  TestProblem problem = TestProblem::FromSoc(std::move(soc));
  problem.power = PowerModel({100}, 10);  // unschedulable
  ImproverParams params;
  params.optimizer.tam_width = 8;
  const ImproverResult result = ImproveSchedule(problem, params);
  EXPECT_FALSE(result.best.ok());
}

TEST(ImproverTest, RespectsConstraintsWhileImproving) {
  TestProblem problem = MakeBenchmarkProblem(MakeD695(), true);
  ImproverParams params;
  params.optimizer.tam_width = 24;
  params.optimizer.allow_preemption = true;
  params.iterations = 30;
  const ImproverResult result = ImproveSchedule(problem, params);
  ASSERT_TRUE(result.best.ok());
  const auto violations = ValidateSchedule(problem, result.best.schedule);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
}

// The batched-climb determinism contract: for a fixed seed and batch size,
// the hill climb is bit-identical at every thread count — candidates are
// drawn serially from the RNG and reduced by (makespan, candidate index),
// exactly the search driver's rule.
TEST(ImproverTest, BatchedClimbBitIdenticalAcrossThreads) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  const CompiledProblem compiled(problem);
  for (const int batch : {1, 4, 8}) {
    ImproverParams params;
    params.optimizer.tam_width = 32;
    params.iterations = 48;
    params.seed = 11;
    params.batch = batch;
    params.threads = 1;
    const ImproverResult serial = ImproveSchedule(compiled, params);
    params.threads = 8;
    const ImproverResult parallel = ImproveSchedule(compiled, params);
    SCOPED_TRACE("batch " + std::to_string(batch));
    ExpectIdenticalOutcomes(serial, parallel);
    const auto violations = ValidateSchedule(problem, parallel.best.schedule);
    EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
  }
}

// Same contract on a generated 64-core SOC (the production-scale shape the
// benches track), including preemption.
TEST(ImproverTest, BatchedClimbBitIdenticalOnGenerated64) {
  GeneratorParams gen;
  gen.seed = 99;
  gen.num_cores = 64;
  gen.max_preemptions = 2;
  const TestProblem problem = TestProblem::FromSoc(GenerateSoc(gen));
  const CompiledProblem compiled(problem);
  ImproverParams params;
  params.optimizer.tam_width = 32;
  params.optimizer.allow_preemption = true;
  params.iterations = 24;
  params.seed = 5;
  params.batch = 8;
  params.threads = 1;
  const ImproverResult serial = ImproveSchedule(compiled, params);
  params.threads = 8;
  const ImproverResult parallel = ImproveSchedule(compiled, params);
  ExpectIdenticalOutcomes(serial, parallel);
  EXPECT_LE(parallel.best.makespan, parallel.initial_makespan);
}

// batch=1 is the historical sequential climb: one candidate per round,
// accepted iff improving. The counters must reflect that shape.
TEST(ImproverTest, BatchOneIsTheSequentialClimb) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  ImproverParams params;
  params.optimizer.tam_width = 48;
  params.iterations = 30;
  params.batch = 1;
  const ImproverResult result = ImproveSchedule(problem, params);
  ASSERT_TRUE(result.best.ok());
  EXPECT_EQ(result.attempts, 30);
  EXPECT_LE(result.rounds, result.attempts);
  EXPECT_LE(result.best.makespan, result.initial_makespan);
}

TEST(OptimizerOverrideTest, OverrideWidthsAreHonored) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  OptimizerParams params;
  params.tam_width = 32;
  params.preferred_width_override.assign(10, 4);
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  for (const auto& a : result.assignments) {
    // Preferred width snaps to the Pareto grid at or below 4.
    EXPECT_LE(a.preferred_width, 4);
  }
}

TEST(OptimizerOverrideTest, WrongArityIsAnError) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  OptimizerParams params;
  params.tam_width = 32;
  params.preferred_width_override = {4, 4};  // 10 cores expected
  EXPECT_FALSE(Optimize(problem, params).ok());
}

}  // namespace
}  // namespace soctest
