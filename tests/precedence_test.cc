#include "constraints/precedence.h"

#include <gtest/gtest.h>

namespace soctest {
namespace {

TEST(PrecedenceGraphTest, AddAndQueryEdges) {
  PrecedenceGraph g(4);
  EXPECT_TRUE(g.Add(0, 1));
  EXPECT_TRUE(g.Add(1, 2));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.SuccessorsOf(0), (std::vector<CoreId>{1}));
  EXPECT_EQ(g.PredecessorsOf(2), (std::vector<CoreId>{1}));
  EXPECT_TRUE(g.PredecessorsOf(0).empty());
}

TEST(PrecedenceGraphTest, DuplicateEdgesIgnored) {
  PrecedenceGraph g(3);
  EXPECT_TRUE(g.Add(0, 1));
  EXPECT_TRUE(g.Add(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(PrecedenceGraphTest, RejectsInvalidEdges) {
  PrecedenceGraph g(3);
  EXPECT_FALSE(g.Add(0, 0));   // self loop
  EXPECT_FALSE(g.Add(-1, 1));  // out of range
  EXPECT_FALSE(g.Add(0, 3));
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.empty());
}

TEST(PrecedenceGraphTest, ReachabilityIsTransitive) {
  PrecedenceGraph g(5);
  g.Add(0, 1);
  g.Add(1, 2);
  g.Add(2, 3);
  EXPECT_TRUE(g.Reaches(0, 3));
  EXPECT_TRUE(g.Reaches(1, 3));
  EXPECT_FALSE(g.Reaches(3, 0));
  EXPECT_FALSE(g.Reaches(0, 4));
}

TEST(PrecedenceGraphTest, TopologicalOrderRespectsEdges) {
  PrecedenceGraph g(5);
  g.Add(3, 1);
  g.Add(1, 4);
  g.Add(0, 4);
  const auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 5u);
  auto pos = [&order](CoreId c) {
    for (std::size_t i = 0; i < order->size(); ++i) {
      if ((*order)[i] == c) return i;
    }
    return std::size_t{999};
  };
  EXPECT_LT(pos(3), pos(1));
  EXPECT_LT(pos(1), pos(4));
  EXPECT_LT(pos(0), pos(4));
}

TEST(PrecedenceGraphTest, CycleDetection) {
  PrecedenceGraph g(3);
  g.Add(0, 1);
  g.Add(1, 2);
  EXPECT_FALSE(g.HasCycle());
  g.Add(2, 0);
  EXPECT_TRUE(g.HasCycle());
  EXPECT_FALSE(g.TopologicalOrder().has_value());
}

TEST(PrecedenceGraphTest, LongestChain) {
  PrecedenceGraph g(6);
  EXPECT_EQ(g.LongestChain(), 0);
  g.Add(0, 1);
  g.Add(1, 2);
  g.Add(2, 3);
  g.Add(0, 4);  // shorter branch
  EXPECT_EQ(g.LongestChain(), 3);
}

TEST(PrecedenceGraphTest, EmptyGraphBehaves) {
  PrecedenceGraph g;
  EXPECT_EQ(g.num_cores(), 0);
  EXPECT_TRUE(g.empty());
  EXPECT_FALSE(g.HasCycle());
  EXPECT_FALSE(g.Reaches(0, 1));
}

}  // namespace
}  // namespace soctest
