// Tests for the batch-serving layer: the sharded CompiledProblemCache, the
// request-file parser, the cross-request ResultCache (canonical keys,
// single-flight, collision accounting), and the BatchScheduler determinism
// contract (batch results bit-identical for every threads x shards x dedup
// combination — the same bar as search/driver.h, one level up).
#include "service/batch_scheduler.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/validator.h"
#include "service/problem_cache.h"
#include "service/request.h"
#include "service/result_cache.h"
#include "soc/benchmarks.h"
#include "soc/generator.h"
#include "soc/soc_parser.h"
#include "util/rng.h"

namespace soctest {
namespace {

ParsedSoc ParsedFromSoc(Soc soc) {
  ParsedSoc parsed;
  parsed.soc = std::move(soc);
  return parsed;
}

ParsedSoc GeneratedParsed(std::uint64_t seed, int cores) {
  GeneratorParams params;
  params.seed = seed;
  params.num_cores = cores;
  params.max_preemptions = 2;
  return ParsedFromSoc(GenerateSoc(params));
}

// A mixed 8-request workload over three SOCs: every mode, duplicated SOCs
// (cache hits), and a repeated (soc, width, mode) triple (identical slots).
std::vector<BatchRequest> MixedRequests() {
  std::vector<BatchRequest> requests;
  const ParsedSoc d695 = ParsedFromSoc(MakeD695());
  const ParsedSoc gen_a = GeneratedParsed(3, 10);
  const ParsedSoc gen_b = GeneratedParsed(17, 12);

  const auto add = [&requests](const ParsedSoc& soc, int width, BatchMode mode) {
    BatchRequest req;
    req.soc_spec = soc.soc.name();
    req.soc = soc;
    req.tam_width = width;
    req.mode = mode;
    req.iterations = 12;
    req.batch = 4;
    req.sweep_min = width - 4;
    requests.push_back(std::move(req));
    return &requests.back();
  };

  add(d695, 24, BatchMode::kSchedule)->search = true;
  add(gen_a, 16, BatchMode::kSchedule);
  add(d695, 16, BatchMode::kSweep);
  add(gen_b, 24, BatchMode::kImprove);
  add(gen_a, 16, BatchMode::kSchedule);  // duplicate of request 1
  add(d695, 32, BatchMode::kSchedule)->preempt = true;
  add(gen_b, 20, BatchMode::kSchedule)->search = true;
  add(d695, 24, BatchMode::kImprove)->seed = 7;
  return requests;
}

void ExpectIdenticalItems(const BatchItemResult& a, const BatchItemResult& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.soc_name, b.soc_name);
  EXPECT_EQ(a.ok(), b.ok());
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.sweep.size(), b.sweep.size());
  for (std::size_t i = 0; i < a.sweep.size(); ++i) {
    EXPECT_EQ(a.sweep[i].tam_width, b.sweep[i].tam_width);
    EXPECT_EQ(a.sweep[i].test_time, b.sweep[i].test_time);
    EXPECT_EQ(a.sweep[i].data_volume, b.sweep[i].data_volume);
  }
  const auto& sa = a.result.schedule;
  const auto& sb = b.result.schedule;
  ASSERT_EQ(sa.entries().size(), sb.entries().size());
  for (std::size_t i = 0; i < sa.entries().size(); ++i) {
    const auto& ea = sa.entries()[i];
    const auto& eb = sb.entries()[i];
    EXPECT_EQ(ea.core, eb.core);
    EXPECT_EQ(ea.assigned_width, eb.assigned_width);
    EXPECT_EQ(ea.preemptions, eb.preemptions);
    ASSERT_EQ(ea.segments.size(), eb.segments.size());
    for (std::size_t s = 0; s < ea.segments.size(); ++s) {
      EXPECT_EQ(ea.segments[s].span, eb.segments[s].span);
      EXPECT_EQ(ea.segments[s].width, eb.segments[s].width);
    }
  }
}

// Restores the (global) cache hash hooks even when an assertion fails.
struct ProblemHashHookGuard {
  explicit ProblemHashHookGuard(std::uint64_t (*hook)(const std::string&,
                                                      int)) {
    CompiledProblemCache::SetKeyHashHookForTest(hook);
  }
  ~ProblemHashHookGuard() {
    CompiledProblemCache::SetKeyHashHookForTest(nullptr);
  }
};

struct ResultHashHookGuard {
  explicit ResultHashHookGuard(std::uint64_t (*hook)(const std::string&)) {
    ResultCache::SetKeyHashHookForTest(hook);
  }
  ~ResultHashHookGuard() { ResultCache::SetKeyHashHookForTest(nullptr); }
};

std::uint64_t CollideProblemHash(const std::string&, int) { return 42; }
std::uint64_t CollideResultHash(const std::string&) { return 42; }

// The headline contract: bit-identical results for every (threads, shards)
// combination. threads=1 shards=1 is the reference serial serving loop.
TEST(BatchSchedulerTest, ResultsBitIdenticalAcrossThreadsAndShards) {
  const std::vector<BatchRequest> requests = MixedRequests();

  BatchOptions reference_options;
  reference_options.threads = 1;
  reference_options.shards = 1;
  BatchScheduler reference(reference_options);
  const BatchOutcome expected = reference.Run(requests);
  ASSERT_EQ(expected.results.size(), requests.size());
  ASSERT_EQ(expected.served, static_cast<int>(requests.size()));

  for (const int threads : {1, 8}) {
    for (const int shards : {1, 4}) {
      BatchOptions options;
      options.threads = threads;
      options.shards = shards;
      BatchScheduler scheduler(options);
      const BatchOutcome outcome = scheduler.Run(requests);
      ASSERT_EQ(outcome.results.size(), requests.size());
      EXPECT_EQ(outcome.served, expected.served);
      for (std::size_t i = 0; i < requests.size(); ++i) {
        SCOPED_TRACE(testing::Message() << "threads=" << threads
                                        << " shards=" << shards << " req=" << i);
        ExpectIdenticalItems(outcome.results[i], expected.results[i]);
      }
    }
  }

  // Duplicate requests land identical results in their own slots.
  ExpectIdenticalItems(expected.results[1], [&] {
    BatchItemResult copy = expected.results[4];
    copy.index = expected.results[1].index;
    return copy;
  }());

  // Spot-check validity: served schedules satisfy the full validator.
  const TestProblem d695 = TestProblem::FromParsed(requests[0].soc);
  EXPECT_TRUE(IsValidSchedule(d695, expected.results[0].result.schedule));
}

// Eviction pressure: with a 1-entry cache, alternating SOCs evict each other
// every request, and the post-eviction recompile serves a schedule
// bit-identical to the cached one's.
TEST(BatchSchedulerTest, EvictionRecompileIsBitIdentical) {
  const ParsedSoc a = GeneratedParsed(3, 10);
  const ParsedSoc b = GeneratedParsed(17, 12);
  std::vector<BatchRequest> requests;
  for (int round = 0; round < 2; ++round) {
    for (const ParsedSoc* soc : {&a, &b}) {
      BatchRequest req;
      req.soc_spec = soc->soc.name();
      req.soc = *soc;
      req.tam_width = 16;
      requests.push_back(std::move(req));
    }
  }

  BatchOptions options;
  options.threads = 1;  // serial: the eviction sequence is deterministic
  options.shards = 1;
  options.cache_entries = 1;
  BatchScheduler scheduler(options);
  const BatchOutcome outcome = scheduler.Run(requests);
  ASSERT_EQ(outcome.served, 4);

  // Requests 0/2 and 1/3 are identical; every one was compiled fresh.
  ExpectIdenticalItems(outcome.results[0], [&] {
    BatchItemResult copy = outcome.results[2];
    copy.index = 0;
    return copy;
  }());
  ExpectIdenticalItems(outcome.results[1], [&] {
    BatchItemResult copy = outcome.results[3];
    copy.index = 1;
    return copy;
  }());
  EXPECT_EQ(outcome.cache.hits, 0);
  EXPECT_EQ(outcome.cache.compiles, 4);
  EXPECT_GE(outcome.cache.evictions, 3);
  EXPECT_EQ(outcome.cache.entries, 1);
}

// Cross-request dedup must be invisible in the results: a duplicate-heavy
// batch returns bit-identical output for every (dedup, threads, shards)
// combination, while the dedup-on runs evaluate strictly fewer times than
// they serve.
TEST(BatchSchedulerTest, DedupOnOffBitIdenticalAcrossThreadsAndShards) {
  std::vector<BatchRequest> requests = MixedRequests();
  const std::vector<BatchRequest> once = requests;
  requests.insert(requests.end(), once.begin(), once.end());  // every line x2

  BatchOptions reference_options;
  reference_options.threads = 1;
  reference_options.shards = 1;
  reference_options.dedup = false;
  BatchScheduler reference(reference_options);
  const BatchOutcome expected = reference.Run(requests);
  ASSERT_EQ(expected.served, static_cast<int>(requests.size()));
  EXPECT_EQ(expected.dedup.hits + expected.dedup.joins + expected.dedup.misses,
            0);  // dedup off: the result cache is never consulted

  for (const bool dedup : {false, true}) {
    for (const int threads : {1, 8}) {
      for (const int shards : {1, 4}) {
        if (!dedup && threads == 1 && shards == 1) continue;  // the reference
        BatchOptions options;
        options.threads = threads;
        options.shards = shards;
        options.dedup = dedup;
        BatchScheduler scheduler(options);
        const BatchOutcome outcome = scheduler.Run(requests);
        ASSERT_EQ(outcome.results.size(), requests.size());
        EXPECT_EQ(outcome.served, expected.served);
        for (std::size_t i = 0; i < requests.size(); ++i) {
          SCOPED_TRACE(testing::Message()
                       << "dedup=" << dedup << " threads=" << threads
                       << " shards=" << shards << " req=" << i);
          ExpectIdenticalItems(outcome.results[i], expected.results[i]);
        }
        if (dedup) {
          // Strictly fewer evaluations than requests, the rest dedup-served.
          EXPECT_LT(outcome.dedup.misses,
                    static_cast<std::int64_t>(requests.size()));
          EXPECT_EQ(outcome.dedup.hits + outcome.dedup.joins +
                        outcome.dedup.misses,
                    static_cast<std::int64_t>(requests.size()));
          EXPECT_GT(outcome.dedup.hits + outcome.dedup.joins, 0);
        }
      }
    }
  }
}

// Single-flight at the scheduler level: a batch of identical requests wide
// enough to be in flight together still evaluates exactly once — the other
// workers either join the leader's in-flight evaluation or hit the resident
// result, they never start a second one.
TEST(BatchSchedulerTest, BudgetOverrideFlowsThroughToSchedules) {
  // budget=/prio request params must reach the optimizer: a throttled
  // request produces a validator-clean schedule against the overridden
  // timeline and a strictly longer makespan than the unthrottled twin —
  // which also proves the two dedup keys are distinct (same SOC, same
  // width, same mode).
  const ParsedSoc d695 = ParsedFromSoc(MakeD695());
  BatchRequest plain;
  plain.soc_spec = "d695";
  plain.soc = d695;
  plain.tam_width = 24;
  plain.mode = BatchMode::kSchedule;

  BatchOptions options;
  options.threads = 1;
  options.dedup = true;
  BatchScheduler scheduler(options);
  const BatchOutcome first = scheduler.Run({plain});
  ASSERT_TRUE(first.results[0].ok()) << *first.results[0].error;
  const Time base_makespan = first.results[0].makespan;

  // Throttle windows sized off the unthrottled makespan so drops land
  // mid-schedule; low phase at the serial floor.
  const PowerModel power = PowerModel::FromSoc(d695.soc, 2.0);
  const Time span = std::max<Time>(1, base_makespan / 5);
  const PowerBudget budget = MakeThrottleTimeline(
      power.pmax(), power.MaxCorePower(), span, span, base_makespan);
  BatchRequest throttled = plain;
  throttled.budget = budget.segments();

  const BatchOutcome second = scheduler.Run({plain, throttled});
  ASSERT_TRUE(second.results[0].ok());
  ASSERT_TRUE(second.results[1].ok()) << *second.results[1].error;
  EXPECT_EQ(second.results[0].makespan, base_makespan);
  EXPECT_GT(second.results[1].makespan, base_makespan);

  TestProblem problem = TestProblem::FromParsed(d695);
  problem.power = WithBudget(problem.soc, problem.power, budget);
  const auto violations =
      ValidateSchedule(problem, second.results[1].result.schedule);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
}

TEST(BatchSchedulerTest, IdenticalConcurrentRequestsEvaluateOnce) {
  BatchRequest req;
  const ParsedSoc soc = GeneratedParsed(3, 10);
  req.soc_spec = soc.soc.name();
  req.soc = soc;
  req.tam_width = 16;
  req.mode = BatchMode::kSchedule;
  req.search = true;
  const std::vector<BatchRequest> requests(8, req);

  BatchOptions options;
  options.threads = 8;
  options.shards = 4;
  options.dedup = true;
  BatchScheduler scheduler(options);
  const BatchOutcome outcome = scheduler.Run(requests);
  ASSERT_EQ(outcome.served, 8);
  EXPECT_EQ(outcome.dedup.misses, 1);  // exactly one evaluation
  EXPECT_EQ(outcome.dedup.hits + outcome.dedup.joins, 7);
  for (std::size_t i = 1; i < requests.size(); ++i) {
    ExpectIdenticalItems(outcome.results[i], [&] {
      BatchItemResult copy = outcome.results[0];
      copy.index = outcome.results[i].index;
      return copy;
    }());
  }
}

// Result-cache eviction pressure: with a 1-entry result cache, alternating
// requests evict each other every time, and every re-evaluation is
// bit-identical to the first one.
TEST(BatchSchedulerTest, DedupEvictionReevaluatesBitIdentical) {
  const ParsedSoc a = GeneratedParsed(3, 10);
  const ParsedSoc b = GeneratedParsed(17, 12);
  std::vector<BatchRequest> requests;
  for (int round = 0; round < 2; ++round) {
    for (const ParsedSoc* soc : {&a, &b}) {
      BatchRequest req;
      req.soc_spec = soc->soc.name();
      req.soc = *soc;
      req.tam_width = 16;
      requests.push_back(std::move(req));
    }
  }

  BatchOptions options;
  options.threads = 1;  // serial: the eviction sequence is deterministic
  options.shards = 1;
  options.dedup = true;
  options.result_entries = 1;
  BatchScheduler scheduler(options);
  const BatchOutcome outcome = scheduler.Run(requests);
  ASSERT_EQ(outcome.served, 4);
  EXPECT_EQ(outcome.dedup.misses, 4);  // every lookup re-evaluated
  EXPECT_EQ(outcome.dedup.hits, 0);
  EXPECT_EQ(outcome.dedup.evictions, 3);
  EXPECT_EQ(outcome.dedup.entries, 1);
  for (const int pair : {0, 1}) {
    ExpectIdenticalItems(outcome.results[static_cast<std::size_t>(pair)], [&] {
      BatchItemResult copy = outcome.results[static_cast<std::size_t>(pair + 2)];
      copy.index = pair;
      return copy;
    }());
  }
}

TEST(CompiledProblemCacheTest, HitsShareOneCompilation) {
  CompiledProblemCache cache({/*shards=*/4, /*capacity=*/8});
  const ParsedSoc d695 = ParsedFromSoc(MakeD695());
  bool hit = true;
  const auto first = cache.GetOrCompile(d695, kDefaultWMax, &hit);
  EXPECT_FALSE(hit);
  const auto second = cache.GetOrCompile(d695, kDefaultWMax, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // literally the same artifacts
  ASSERT_TRUE(first->ok());
  // A different w_max is a different key.
  const auto third = cache.GetOrCompile(d695, 32, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(first.get(), third.get());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.compiles, 2);
  EXPECT_EQ(stats.entries, 2);
}

// The handout survives eviction: an in-flight shared_ptr keeps the evicted
// entry (and the TestProblem its artifacts reference) alive and usable.
TEST(CompiledProblemCacheTest, HandoutSurvivesEviction) {
  CompiledProblemCache cache({/*shards=*/1, /*capacity=*/1});
  const ParsedSoc a = GeneratedParsed(3, 10);
  const ParsedSoc b = GeneratedParsed(17, 12);
  const auto held = cache.GetOrCompile(a, kDefaultWMax);
  cache.GetOrCompile(b, kDefaultWMax);  // evicts a
  EXPECT_GE(cache.stats().evictions, 1);
  ASSERT_TRUE(held->ok());
  OptimizerParams params;
  params.tam_width = 16;
  const OptimizerResult result = Optimize(*held, params);
  ASSERT_TRUE(result.ok());  // the referenced TestProblem is still alive

  // And the recompiled entry schedules bit-identically to the evicted one.
  const auto recompiled = cache.GetOrCompile(a, kDefaultWMax);
  const OptimizerResult again = Optimize(*recompiled, params);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(result.makespan, again.makespan);
}

// Options::capacity is a hard bound: shards clamp to it and per-shard
// capacity floors, so the resident total can never exceed it.
TEST(CompiledProblemCacheTest, CapacityIsAHardTotalBound) {
  CompiledProblemCache cache({/*shards=*/4, /*capacity=*/1});
  EXPECT_EQ(cache.shards(), 1);
  EXPECT_EQ(cache.capacity_per_shard(), 1);
  cache.GetOrCompile(GeneratedParsed(3, 10), kDefaultWMax);
  cache.GetOrCompile(GeneratedParsed(17, 12), kDefaultWMax);
  cache.GetOrCompile(ParsedFromSoc(MakeD695()), kDefaultWMax);
  EXPECT_EQ(cache.stats().entries, 1);

  CompiledProblemCache uneven({/*shards=*/4, /*capacity=*/6});
  EXPECT_EQ(uneven.shards(), 4);
  EXPECT_EQ(uneven.capacity_per_shard(), 1);  // floor(6/4): total bound 4 <= 6
}

TEST(CompiledProblemCacheTest, KeyIsContentNotProvenance) {
  // Two independently constructed ParsedSocs with equal content share a key.
  const ParsedSoc first = GeneratedParsed(3, 10);
  const ParsedSoc second = GeneratedParsed(3, 10);
  EXPECT_EQ(CompiledProblemCache::CanonicalKey(first),
            CompiledProblemCache::CanonicalKey(second));
  EXPECT_NE(CompiledProblemCache::KeyHash(
                CompiledProblemCache::CanonicalKey(first), 64),
            CompiledProblemCache::KeyHash(
                CompiledProblemCache::CanonicalKey(first), 32));
  CompiledProblemCache cache({/*shards=*/2, /*capacity=*/4});
  bool hit = true;
  cache.GetOrCompile(first, 64, &hit);
  EXPECT_FALSE(hit);
  cache.GetOrCompile(second, 64, &hit);
  EXPECT_TRUE(hit);
}

// A 64-bit hash collision between distinct keys replaces the resident entry
// and is counted as a collision, NOT as a capacity eviction (a bigger cache
// cannot fix a collision, so conflating the two misleads capacity tuning).
TEST(CompiledProblemCacheTest, HashCollisionCountsSeparatelyFromEviction) {
  ProblemHashHookGuard guard(&CollideProblemHash);  // every key hashes to 42
  CompiledProblemCache cache({/*shards=*/1, /*capacity=*/8});
  const ParsedSoc a = GeneratedParsed(3, 6);
  const ParsedSoc b = GeneratedParsed(17, 8);

  bool hit = true;
  const auto held = cache.GetOrCompile(a, kDefaultWMax, &hit);
  EXPECT_FALSE(hit);
  // Distinct key, same hash: never served the wrong artifacts...
  const auto other = cache.GetOrCompile(b, kDefaultWMax, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(held.get(), other.get());
  // ...and the displacement is a collision, not an eviction (capacity 8 is
  // nowhere near full).
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.collisions, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.entries, 1);

  // The displaced handout stays usable, and re-asking recompiles (a miss —
  // the two hot keys thrash, which is exactly what the counter surfaces).
  ASSERT_TRUE(held->ok());
  cache.GetOrCompile(a, kDefaultWMax, &hit);
  EXPECT_FALSE(hit);
  stats = cache.stats();
  EXPECT_EQ(stats.collisions, 2);
  EXPECT_EQ(stats.evictions, 0);
}

// Incremental compilation — the core-artifact cache's headline property:
// editing 1 of 64 cores compiles the variant with EXACTLY 63 per-core cache
// hits and one fresh core compile, shares the 63 unedited units
// pointer-for-pointer with the base compile, and assembles artifacts
// bit-identical to a cold, cache-free compile.
TEST(CompiledProblemCacheTest, OneEditedCoreOf64IsExactly63CoreHits) {
  ParsedSoc base = GeneratedParsed(99, 64);
  // Force all-distinct per-core identities so the hit accounting is exact
  // (the generator is free to emit two cores with equal wrapper fields, and
  // an intra-SOC duplicate would turn a miss into a hit).
  for (CoreId c = 0; c < base.soc.num_cores(); ++c) {
    base.soc.mutable_core(c).num_patterns += c;
  }
  std::set<std::string> identities;
  for (const CoreSpec& core : base.soc.cores()) {
    identities.insert(CoreArtifactCache::CanonicalKey(core));
  }
  ASSERT_EQ(identities.size(), 64u);

  ParsedSoc variant = base;
  variant.soc.mutable_core(20).num_patterns += 1000;

  CompiledProblemCache cache(
      {/*shards=*/4, /*capacity=*/8, /*core_entries=*/4096});
  const auto first = cache.GetOrCompile(base, kDefaultWMax);
  ASSERT_TRUE(first->ok());
  CoreCacheStats stats = cache.core_stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 64);

  bool hit = true;
  const auto second = cache.GetOrCompile(variant, kDefaultWMax, &hit);
  EXPECT_FALSE(hit);  // the whole-SOC cache misses on any one-core edit...
  ASSERT_TRUE(second->ok());
  stats = cache.core_stats();
  EXPECT_EQ(stats.hits, 63);  // ...but 63 of the 64 cores come from cache
  EXPECT_EQ(stats.misses, 65);
  EXPECT_EQ(stats.compiles, 65);

  for (CoreId c = 0; c < second->num_cores(); ++c) {
    if (c == 20) {
      EXPECT_NE(second->core_artifact(c).get(),
                first->core_artifact(c).get());
    } else {
      EXPECT_EQ(second->core_artifact(c).get(),
                first->core_artifact(c).get());
    }
  }

  // The assembly is bit-identical to a cold compile that never saw a cache.
  const TestProblem cold_problem = TestProblem::FromParsed(variant);
  const CompiledProblem cold(cold_problem, kDefaultWMax);
  ASSERT_TRUE(cold.ok());
  for (CoreId c = 0; c < cold.num_cores(); ++c) {
    EXPECT_EQ(second->pareto(c), cold.pareto(c));
    EXPECT_EQ(second->max_useful_width(c), cold.max_useful_width(c));
    for (int w = 1; w <= kDefaultWMax; ++w) {
      ASSERT_EQ(second->curve(c).TimeAt(w), cold.curve(c).TimeAt(w));
      ASSERT_EQ(second->FlushPenalty(c, w), cold.FlushPenalty(c, w));
    }
  }
}

// The core cache must be invisible in batch results: a variant-heavy batch
// (a 64-core base plus near-duplicates editing one core each, and a
// duplicate line for the dedup runs) returns bit-identical output for every
// (threads, shards, dedup, core cache on/off) combination. Only the STATS
// counters may move.
TEST(BatchSchedulerTest, CoreCacheOnOffBitIdenticalAcrossThreadsShardsDedup) {
  const ParsedSoc base = GeneratedParsed(99, 64);
  std::vector<BatchRequest> requests;
  for (int v = 0; v < 3; ++v) {
    ParsedSoc variant = base;
    variant.soc.set_name(base.soc.name() + "_v" + std::to_string(v));
    if (v > 0) variant.soc.mutable_core(7 * v).num_patterns += v;
    BatchRequest req;
    req.soc_spec = variant.soc.name();
    req.soc = std::move(variant);
    req.tam_width = 24;
    req.mode = BatchMode::kSchedule;
    requests.push_back(std::move(req));
  }
  requests.push_back(requests[1]);  // identical line: dedup has work to do

  // Serial core-cache accounting, computed rather than assumed: the three
  // distinct SOCs run 3 x 64 per-core lookups (the duplicate line hits the
  // whole-SOC cache or the result cache and looks nothing up); every
  // distinct core identity misses once and every repeat hits.
  std::set<std::string> distinct_cores;
  for (int v = 0; v < 3; ++v) {
    for (const CoreSpec& core : requests[static_cast<std::size_t>(v)]
                                    .soc.soc.cores()) {
      distinct_cores.insert(CoreArtifactCache::CanonicalKey(core));
    }
  }
  const auto serial_misses = static_cast<std::int64_t>(distinct_cores.size());
  const std::int64_t serial_hits = 3 * 64 - serial_misses;

  BatchOptions reference_options;
  reference_options.threads = 1;
  reference_options.shards = 1;
  reference_options.core_cache_entries = 0;  // reference: monolithic compiles
  BatchScheduler reference(reference_options);
  const BatchOutcome expected = reference.Run(requests);
  ASSERT_EQ(expected.served, static_cast<int>(requests.size()));
  EXPECT_EQ(expected.core.hits + expected.core.misses, 0);  // cache off

  for (const int core_entries : {0, 4096}) {
    for (const int threads : {1, 8}) {
      for (const int shards : {1, 4}) {
        for (const bool dedup : {false, true}) {
          BatchOptions options;
          options.threads = threads;
          options.shards = shards;
          options.dedup = dedup;
          options.core_cache_entries = core_entries;
          BatchScheduler scheduler(options);
          const BatchOutcome outcome = scheduler.Run(requests);
          ASSERT_EQ(outcome.results.size(), requests.size());
          EXPECT_EQ(outcome.served, expected.served);
          if (core_entries == 0) {
            EXPECT_EQ(outcome.core.hits + outcome.core.misses, 0);
          } else if (threads == 1) {
            EXPECT_EQ(outcome.core.hits, serial_hits);
            EXPECT_EQ(outcome.core.misses, serial_misses);
          } else {
            EXPECT_GT(outcome.core.hits, 0);
          }
          for (std::size_t i = 0; i < requests.size(); ++i) {
            SCOPED_TRACE(testing::Message()
                         << "core_entries=" << core_entries
                         << " threads=" << threads << " shards=" << shards
                         << " dedup=" << dedup << " req=" << i);
            ExpectIdenticalItems(outcome.results[i], expected.results[i]);
          }
        }
      }
    }
  }
}

TEST(ResultCacheTest, CanonicalKeyIsContentAndSemanticsNotSpelling) {
  BatchRequest base;
  base.soc_spec = "d695";
  base.soc = ParsedFromSoc(MakeD695());
  base.tam_width = 16;

  // The spec token is NOT part of the identity — content is.
  BatchRequest renamed = base;
  renamed.soc_spec = "designs/copy_of_d695.soc";
  EXPECT_EQ(ResultCache::CanonicalKey(base, 64),
            ResultCache::CanonicalKey(renamed, 64));

  // Different SOC content, same spec token: different key.
  BatchRequest other_soc = base;
  other_soc.soc = GeneratedParsed(3, 10);
  EXPECT_NE(ResultCache::CanonicalKey(base, 64),
            ResultCache::CanonicalKey(other_soc, 64));

  // Every semantic parameter is part of the identity.
  EXPECT_NE(ResultCache::CanonicalKey(base, 64),
            ResultCache::CanonicalKey(base, 32));  // w_max
  BatchRequest wider = base;
  wider.tam_width = 24;
  EXPECT_NE(ResultCache::CanonicalKey(base, 64),
            ResultCache::CanonicalKey(wider, 64));
  BatchRequest preempting = base;
  preempting.preempt = true;
  EXPECT_NE(ResultCache::CanonicalKey(base, 64),
            ResultCache::CanonicalKey(preempting, 64));

  // A flag the mode never consults is NOT part of the identity: wide without
  // search changes nothing about a schedule-mode run, so the keys match...
  BatchRequest wide_no_search = base;
  wide_no_search.wide = true;
  EXPECT_EQ(ResultCache::CanonicalKey(base, 64),
            ResultCache::CanonicalKey(wide_no_search, 64));
  // ...while wide WITH search selects a different grid: different key.
  BatchRequest searching = base;
  searching.search = true;
  BatchRequest wide_search = searching;
  wide_search.wide = true;
  EXPECT_NE(ResultCache::CanonicalKey(searching, 64),
            ResultCache::CanonicalKey(wide_search, 64));
}

TEST(ResultCacheTest, SingleFlightJoinersAdoptTheLeadersResult) {
  ResultCache cache({/*shards=*/1, /*capacity=*/8});
  const std::string key = "request-under-evaluation";

  const ResultCache::Lookup leader = cache.Begin(key);
  ASSERT_TRUE(leader.leader);
  EXPECT_EQ(leader.result, nullptr);

  // Two identical requests arrive while the leader is "evaluating". Each
  // blocks inside Begin until the leader commits.
  std::vector<std::shared_ptr<const BatchItemResult>> adopted(2);
  std::vector<bool> was_leader(2, true), was_join(2, false);
  std::vector<std::thread> joiners;
  for (int i = 0; i < 2; ++i) {
    joiners.emplace_back([&cache, &key, &adopted, &was_leader, &was_join, i] {
      const ResultCache::Lookup found = cache.Begin(key);
      was_leader[static_cast<std::size_t>(i)] = found.leader;
      was_join[static_cast<std::size_t>(i)] = found.joined;
      adopted[static_cast<std::size_t>(i)] = found.result;
    });
  }
  // Joins are counted at Begin, before the blocking wait — so this observes
  // both joiners parked on the in-flight future.
  while (cache.stats().joins < 2) std::this_thread::yield();

  BatchItemResult result;
  result.soc_name = "x";
  result.makespan = 42;
  const std::shared_ptr<const BatchItemResult> resident =
      cache.Commit(key, std::move(result));
  for (std::thread& t : joiners) t.join();

  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(was_leader[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(was_join[static_cast<std::size_t>(i)]);
    // Literally the same object the leader published, not a re-evaluation.
    EXPECT_EQ(adopted[static_cast<std::size_t>(i)].get(), resident.get());
  }
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.joins, 2);
  EXPECT_EQ(stats.entries, 1);

  // After the commit the key is a plain hit.
  const ResultCache::Lookup after = cache.Begin(key);
  EXPECT_FALSE(after.leader);
  EXPECT_FALSE(after.joined);
  EXPECT_EQ(after.result.get(), resident.get());
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(ResultCacheTest, LeaderErrorPropagatesToEveryBlockedJoiner) {
  // Stress the single-flight ERROR path: the leader's evaluation fails
  // while 8 joiners sit blocked in Begin. Every joiner must receive the
  // published error result — the same object, no hang, no partial adoption,
  // no joiner promoted to re-evaluate.
  ResultCache cache({/*shards=*/1, /*capacity=*/8});
  const std::string key = "request-that-will-fail";

  const ResultCache::Lookup leader = cache.Begin(key);
  ASSERT_TRUE(leader.leader);

  constexpr int kJoiners = 8;
  std::vector<std::shared_ptr<const BatchItemResult>> adopted(kJoiners);
  std::vector<bool> was_leader(kJoiners, true);
  std::vector<std::thread> joiners;
  joiners.reserve(kJoiners);
  for (int i = 0; i < kJoiners; ++i) {
    joiners.emplace_back([&cache, &key, &adopted, &was_leader, i] {
      const ResultCache::Lookup found = cache.Begin(key);
      was_leader[static_cast<std::size_t>(i)] = found.leader;
      adopted[static_cast<std::size_t>(i)] = found.result;
    });
  }
  // Joins are counted at Begin, before the blocking wait: all 8 parked.
  while (cache.stats().joins < kJoiners) std::this_thread::yield();

  BatchItemResult failure;
  failure.soc_name = "x";
  failure.makespan = -1;
  failure.error = "evaluation failed: no feasible schedule";
  const std::shared_ptr<const BatchItemResult> resident =
      cache.Commit(key, std::move(failure));
  for (std::thread& t : joiners) t.join();

  for (int i = 0; i < kJoiners; ++i) {
    EXPECT_FALSE(was_leader[static_cast<std::size_t>(i)]);
    ASSERT_NE(adopted[static_cast<std::size_t>(i)], nullptr);
    // The SAME published error object, not a re-evaluation or a blank.
    EXPECT_EQ(adopted[static_cast<std::size_t>(i)].get(), resident.get());
    EXPECT_FALSE(adopted[static_cast<std::size_t>(i)]->ok());
  }
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.joins, kJoiners);
  EXPECT_EQ(stats.hits, 0);
}

TEST(ResultCacheTest, HashCollisionReplacesButNeverServesWrongKey) {
  ResultHashHookGuard guard(&CollideResultHash);  // every key hashes to 42
  ResultCache cache({/*shards=*/1, /*capacity=*/8});

  ResultCache::Lookup first = cache.Begin("key-a");
  ASSERT_TRUE(first.leader);
  BatchItemResult ra;
  ra.makespan = 1;
  cache.Commit("key-a", std::move(ra));

  // Same hash, different key: a miss (never a wrong-key hit), whose commit
  // displaces the squatter as a collision, not an eviction.
  ResultCache::Lookup second = cache.Begin("key-b");
  ASSERT_TRUE(second.leader);
  BatchItemResult rb;
  rb.makespan = 2;
  cache.Commit("key-b", std::move(rb));

  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.collisions, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.entries, 1);

  const ResultCache::Lookup hit = cache.Begin("key-b");
  ASSERT_NE(hit.result, nullptr);
  EXPECT_EQ(hit.result->makespan, 2);
  // The displaced key re-evaluates.
  EXPECT_TRUE(cache.Begin("key-a").leader);
}

TEST(ResultCacheTest, CapacityIsAHardTotalBound) {
  ResultCache cache({/*shards=*/4, /*capacity=*/1});
  EXPECT_EQ(cache.shards(), 1);
  EXPECT_EQ(cache.capacity_per_shard(), 1);
  for (const char* key : {"a", "b", "c"}) {
    ASSERT_TRUE(cache.Begin(key).leader);
    cache.Commit(key, BatchItemResult{});
  }
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.evictions, 2);
  EXPECT_EQ(stats.collisions, 0);
}

TEST(RequestParserTest, ParsesModesAndFlags) {
  const std::string text =
      "# comment line\n"
      "\n"
      "d695 24 schedule search=1 wide=1 preempt=1 s=2.5 delta=3\n"
      "d695 16 improve iters=50 batch=4 seed=9\n"
      "d695 20 sweep min=8 max=18\n";
  const RequestFileResult result = ParseRequestText(text, "requests.txt");
  const auto* requests = std::get_if<std::vector<BatchRequest>>(&result);
  ASSERT_NE(requests, nullptr)
      << std::get<RequestParseError>(result).ToString();
  ASSERT_EQ(requests->size(), 3u);

  const BatchRequest& schedule = (*requests)[0];
  EXPECT_EQ(schedule.soc_spec, "d695");
  EXPECT_EQ(schedule.soc.soc.name(), "d695");
  EXPECT_EQ(schedule.tam_width, 24);
  EXPECT_EQ(schedule.mode, BatchMode::kSchedule);
  EXPECT_TRUE(schedule.search);
  EXPECT_TRUE(schedule.wide);
  EXPECT_TRUE(schedule.preempt);
  EXPECT_DOUBLE_EQ(schedule.s_percent, 2.5);
  EXPECT_EQ(schedule.delta, 3);

  const BatchRequest& improve = (*requests)[1];
  EXPECT_EQ(improve.mode, BatchMode::kImprove);
  EXPECT_EQ(improve.iterations, 50);
  EXPECT_EQ(improve.batch, 4);
  EXPECT_EQ(improve.seed, 9u);

  // Seeds above int64 range are valid uint64 values, not parse errors.
  const RequestFileResult big_seed = ParseRequestText(
      "d695 16 improve seed=18446744073709551615\n", "seed.txt");
  const auto* big = std::get_if<std::vector<BatchRequest>>(&big_seed);
  ASSERT_NE(big, nullptr) << std::get<RequestParseError>(big_seed).ToString();
  EXPECT_EQ((*big)[0].seed, 18446744073709551615ull);
  const RequestFileResult neg_seed =
      ParseRequestText("d695 16 improve seed=-1\n", "seed.txt");
  EXPECT_NE(std::get_if<RequestParseError>(&neg_seed), nullptr);

  const BatchRequest& sweep = (*requests)[2];
  EXPECT_EQ(sweep.mode, BatchMode::kSweep);
  EXPECT_EQ(sweep.sweep_min, 8);
  EXPECT_EQ(sweep.sweep_max, 18);
}

TEST(RequestParserTest, ParsesBudgetAndPrio) {
  const RequestFileResult result = ParseRequestText(
      "d695 24 schedule budget=0:100,500:40 prio=0\n", "req.txt");
  const auto* requests = std::get_if<std::vector<BatchRequest>>(&result);
  ASSERT_NE(requests, nullptr)
      << std::get<RequestParseError>(result).ToString();
  const BatchRequest& req = (*requests)[0];
  ASSERT_EQ(req.budget.size(), 2u);
  EXPECT_EQ(req.budget[0], (PowerBudget::Segment{0, 100}));
  EXPECT_EQ(req.budget[1], (PowerBudget::Segment{500, 40}));
  EXPECT_FALSE(req.use_priority);

  // Validation runs at parse time with the file:line diagnostic.
  for (const char* bad :
       {"d695 24 schedule budget=\n", "d695 24 schedule budget=5:100\n",
        "d695 24 schedule budget=0:0\n", "d695 24 schedule budget=0:100,0:5\n",
        "d695 24 schedule prio=2\n"}) {
    const RequestFileResult r = ParseRequestText(bad, "req.txt");
    EXPECT_NE(std::get_if<RequestParseError>(&r), nullptr) << bad;
  }
}

// Round-trip contract: Parse(Format(r)) reproduces every field.
TEST(RequestParserTest, FormatParseRoundTrip) {
  const std::string text =
      "d695 24 schedule search=1 wide=1 preempt=1 s=2.5 delta=3\n"
      "d695 16 improve iters=50 batch=4 seed=9\n"
      "d695 20 sweep min=8 max=18\n"
      "d695 28 schedule budget=0:90,1000:45,2000:90 prio=0\n"
      "d695 32 schedule\n";
  const auto first = std::get<std::vector<BatchRequest>>(
      ParseRequestText(text, "requests.txt"));
  std::string formatted;
  for (const BatchRequest& req : first) {
    formatted += FormatRequestLine(req) + "\n";
  }
  const auto second = std::get<std::vector<BatchRequest>>(
      ParseRequestText(formatted, "requests.txt"));
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE(FormatRequestLine(first[i]));
    EXPECT_EQ(first[i].soc_spec, second[i].soc_spec);
    EXPECT_EQ(first[i].tam_width, second[i].tam_width);
    EXPECT_EQ(first[i].mode, second[i].mode);
    EXPECT_EQ(first[i].preempt, second[i].preempt);
    EXPECT_DOUBLE_EQ(first[i].s_percent, second[i].s_percent);
    EXPECT_EQ(first[i].delta, second[i].delta);
    EXPECT_EQ(first[i].search, second[i].search);
    EXPECT_EQ(first[i].wide, second[i].wide);
    EXPECT_EQ(first[i].iterations, second[i].iterations);
    EXPECT_EQ(first[i].batch, second[i].batch);
    EXPECT_EQ(first[i].seed, second[i].seed);
    EXPECT_EQ(first[i].sweep_min, second[i].sweep_min);
    EXPECT_EQ(first[i].sweep_max, second[i].sweep_max);
    EXPECT_EQ(first[i].budget, second[i].budget);
    EXPECT_EQ(first[i].use_priority, second[i].use_priority);
  }
}

// The randomized half of the round-trip contract: for any valid request
// (fields populated the way the parser itself would), Parse(Format(r))
// reproduces every field, and Format is idempotent across the round trip.
// This property is what qualifies FormatRequestParams as the textual half of
// the dedup canonical key.
TEST(RequestParserTest, FormatParseRoundTripRandomizedProperty) {
  Rng rng(20260728);
  for (int trial = 0; trial < 100; ++trial) {
    BatchRequest req;
    req.soc_spec = "d695";
    req.tam_width = static_cast<int>(rng.UniformInt(1, 64));
    req.preempt = rng.Bernoulli(0.5);
    if (rng.Bernoulli(0.5)) {
      // Full-precision doubles: %.17g must reproduce every bit.
      req.s_percent = rng.UniformDouble() * 30.0 + 0.125;
    }
    if (rng.Bernoulli(0.5)) req.delta = static_cast<int>(rng.UniformInt(0, 6));
    if (rng.Bernoulli(0.3)) {
      // A random valid timeline: strictly increasing starts from 0,
      // positive caps.
      Time start = 0;
      const int segments = static_cast<int>(rng.UniformInt(1, 4));
      for (int s = 0; s < segments; ++s) {
        req.budget.push_back(
            {start, static_cast<std::int64_t>(rng.UniformInt(1, 10'000))});
        start += rng.UniformInt(1, 100'000);
      }
    }
    req.use_priority = rng.Bernoulli(0.8);
    switch (rng.UniformInt(0, 2)) {
      case 0:
        req.mode = BatchMode::kSchedule;
        req.search = rng.Bernoulli(0.5);
        if (req.search) req.wide = rng.Bernoulli(0.5);
        break;
      case 1:
        req.mode = BatchMode::kImprove;
        req.iterations = static_cast<int>(rng.UniformInt(1, 200));
        req.batch = static_cast<int>(rng.UniformInt(1, 16));
        req.seed = rng.Next();  // full uint64 range round-trips
        req.wide = rng.Bernoulli(0.5);
        break;
      default:
        req.mode = BatchMode::kSweep;
        req.sweep_min =
            static_cast<int>(rng.UniformInt(1, req.tam_width));
        if (rng.Bernoulli(0.5)) {
          req.sweep_max = static_cast<int>(rng.UniformInt(req.sweep_min, 80));
        }
        break;
    }

    const std::string line = FormatRequestLine(req);
    SCOPED_TRACE(testing::Message() << "trial " << trial << ": " << line);
    const RequestFileResult result = ParseRequestText(line + "\n", "rt.txt");
    const auto* parsed = std::get_if<std::vector<BatchRequest>>(&result);
    ASSERT_NE(parsed, nullptr)
        << std::get<RequestParseError>(result).ToString();
    ASSERT_EQ(parsed->size(), 1u);
    const BatchRequest& back = (*parsed)[0];
    EXPECT_EQ(back.soc_spec, req.soc_spec);
    EXPECT_EQ(back.tam_width, req.tam_width);
    EXPECT_EQ(back.mode, req.mode);
    EXPECT_EQ(back.preempt, req.preempt);
    EXPECT_DOUBLE_EQ(back.s_percent, req.s_percent);
    EXPECT_EQ(back.delta, req.delta);
    EXPECT_EQ(back.search, req.search);
    EXPECT_EQ(back.wide, req.wide);
    EXPECT_EQ(back.iterations, req.iterations);
    EXPECT_EQ(back.batch, req.batch);
    EXPECT_EQ(back.seed, req.seed);
    EXPECT_EQ(back.sweep_min, req.sweep_min);
    EXPECT_EQ(back.sweep_max, req.sweep_max);
    EXPECT_EQ(back.budget, req.budget);
    EXPECT_EQ(back.use_priority, req.use_priority);
    EXPECT_EQ(FormatRequestLine(back), line);  // idempotent
  }
}

// Hand-built requests may carry junk in fields their mode never consults
// (test fixtures and benches do). Format must not leak those into the line:
// the output always re-parses, with every consulted field intact.
TEST(RequestParserTest, FormatIsParseableForNonCanonicalRequests) {
  std::vector<BatchRequest> awkward;

  BatchRequest wide_no_search;  // schedule mode ignores wide without search
  wide_no_search.mode = BatchMode::kSchedule;
  wide_no_search.wide = true;
  wide_no_search.iterations = 99;  // improve-only junk
  wide_no_search.sweep_min = 5;    // sweep-only junk
  awkward.push_back(wide_no_search);

  BatchRequest improve_with_search;  // improve mode has no search flag
  improve_with_search.mode = BatchMode::kImprove;
  improve_with_search.search = true;
  improve_with_search.wide = true;
  improve_with_search.iterations = 7;
  awkward.push_back(improve_with_search);

  BatchRequest sweep_with_everything;  // sweep rejects search/wide/iters
  sweep_with_everything.mode = BatchMode::kSweep;
  sweep_with_everything.search = true;
  sweep_with_everything.wide = true;
  sweep_with_everything.iterations = 3;
  sweep_with_everything.sweep_min = 4;
  sweep_with_everything.sweep_max = 12;
  sweep_with_everything.preempt = true;
  awkward.push_back(sweep_with_everything);

  for (BatchRequest& req : awkward) {
    req.soc_spec = "d695";
    req.tam_width = 16;
    const std::string line = FormatRequestLine(req);
    SCOPED_TRACE(line);
    const RequestFileResult result = ParseRequestText(line + "\n", "fmt.txt");
    const auto* parsed = std::get_if<std::vector<BatchRequest>>(&result);
    ASSERT_NE(parsed, nullptr)
        << std::get<RequestParseError>(result).ToString();
    ASSERT_EQ(parsed->size(), 1u);
    EXPECT_EQ((*parsed)[0].mode, req.mode);
    EXPECT_EQ((*parsed)[0].tam_width, req.tam_width);
    EXPECT_EQ((*parsed)[0].preempt, req.preempt);
    if (req.mode == BatchMode::kImprove) {
      EXPECT_EQ((*parsed)[0].iterations, req.iterations);
      EXPECT_EQ((*parsed)[0].wide, req.wide);
    }
    if (req.mode == BatchMode::kSweep) {
      EXPECT_EQ((*parsed)[0].sweep_min, req.sweep_min);
      EXPECT_EQ((*parsed)[0].sweep_max, req.sweep_max);
    }
  }
}

// Spec resolution: an existing file on disk wins over an embedded benchmark
// of the same name, and the explicit prefixes force either resolution.
TEST(RequestParserTest, FileOnDiskShadowsBenchmarkName) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(testing::TempDir()) / "soctest_shadow";
  fs::create_directories(dir);
  // A local file literally named `d695` whose content is a different SOC.
  const ParsedSoc generated = GeneratedParsed(3, 4);
  { std::ofstream f(dir / "d695"); f << SerializeSoc(generated); }
  const int embedded_cores = MakeD695().num_cores();
  ASSERT_NE(generated.soc.num_cores(), embedded_cores);

  const fs::path old_cwd = fs::current_path();
  fs::current_path(dir);
  const RequestFileResult result = ParseRequestText(
      "d695 16 schedule\n"
      "bench:d695 16 schedule\n"
      "file:d695 16 schedule\n",
      "shadow.txt");
  fs::current_path(old_cwd);

  const auto* requests = std::get_if<std::vector<BatchRequest>>(&result);
  ASSERT_NE(requests, nullptr)
      << std::get<RequestParseError>(result).ToString();
  ASSERT_EQ(requests->size(), 3u);
  // Bare token: the file, not the embedded benchmark.
  EXPECT_EQ((*requests)[0].soc.soc.num_cores(), generated.soc.num_cores());
  EXPECT_EQ((*requests)[0].soc.soc.name(), generated.soc.name());
  // bench: forces the embedded benchmark even with the file present.
  EXPECT_EQ((*requests)[1].soc.soc.num_cores(), embedded_cores);
  EXPECT_EQ((*requests)[1].soc.soc.name(), "d695");
  // file: forces the filesystem.
  EXPECT_EQ((*requests)[2].soc.soc.num_cores(), generated.soc.num_cores());

  fs::remove_all(dir);
}

TEST(RequestParserTest, LoadSocSpecDiagnosesBothResolutions) {
  // Unknown benchmark under bench:, even if a file of that name exists.
  const ParseResult unknown = LoadSocSpec("bench:not_a_benchmark");
  const auto* err = std::get_if<ParseError>(&unknown);
  ASSERT_NE(err, nullptr);
  EXPECT_NE(err->ToString().find("unknown benchmark"), std::string::npos);

  // A bare token matching neither names both possibilities.
  const ParseResult neither = LoadSocSpec("no_such_thing");
  const auto* neither_err = std::get_if<ParseError>(&neither);
  ASSERT_NE(neither_err, nullptr);
  EXPECT_NE(neither_err->ToString().find("neither"), std::string::npos);

  // Without a file in the way, the bare token still resolves embedded.
  const ParseResult embedded = LoadSocSpec("d695");
  const auto* parsed = std::get_if<ParsedSoc>(&embedded);
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->soc.name(), "d695");
}

struct MalformedCase {
  const char* label;
  const char* line;
  int error_line;
  const char* needle;  // must appear in the message
};

class RequestParserMalformedTest
    : public testing::TestWithParam<MalformedCase> {};

TEST_P(RequestParserMalformedTest, DiagnosesWithFileAndLine) {
  const std::string text = std::string("d695 16 schedule\n") + GetParam().line + "\n";
  const RequestFileResult result = ParseRequestText(text, "req.txt");
  const auto* err = std::get_if<RequestParseError>(&result);
  ASSERT_NE(err, nullptr) << GetParam().label;
  EXPECT_EQ(err->file, "req.txt");
  EXPECT_EQ(err->line, GetParam().error_line);
  EXPECT_NE(err->message.find(GetParam().needle), std::string::npos)
      << "message: " << err->message;
  // file:line: prefix is part of the printed diagnostic.
  EXPECT_EQ(err->ToString().find("req.txt:2: "), 0u) << err->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RequestParserMalformedTest,
    testing::Values(
        MalformedCase{"too_few_tokens", "d695 16", 2, "expected"},
        MalformedCase{"bad_width", "d695 zero schedule", 2, "bad width"},
        MalformedCase{"bad_mode", "d695 16 anneal", 2, "unknown mode"},
        MalformedCase{"bad_flag_shape", "d695 16 schedule wide", 2, "key=value"},
        MalformedCase{"unknown_flag", "d695 16 schedule fast=1", 2,
                      "unknown flag"},
        MalformedCase{"flag_wrong_mode", "d695 16 schedule iters=5", 2,
                      "unknown flag"},
        MalformedCase{"bad_value", "d695 16 improve iters=-2", 2,
                      "positive integer"},
        // Overflow values must be range errors, not silent int truncation
        // (4294967297 = 2^32 + 1 narrows to 1 without the check).
        MalformedCase{"width_overflow", "d695 4294967297 schedule", 2,
                      "out of range"},
        MalformedCase{"iters_overflow", "d695 16 improve iters=4294967297", 2,
                      "out of range"},
        MalformedCase{"batch_overflow", "d695 16 improve batch=2147483648", 2,
                      "out of range"},
        MalformedCase{"delta_overflow", "d695 16 schedule delta=4294967297", 2,
                      "out of range"},
        MalformedCase{"sweep_min_overflow", "d695 16 sweep min=4294967297", 2,
                      "out of range"},
        MalformedCase{"sweep_inverted", "d695 16 sweep min=12 max=8", 2,
                      "below min"},
        MalformedCase{"sweep_min_over_defaulted_max", "d695 16 sweep min=20",
                      2, "below min"},
        MalformedCase{"wide_without_search", "d695 16 schedule wide=1", 2,
                      "requires search=1"},
        MalformedCase{"missing_soc", "no_such.soc 16 schedule", 2,
                      "cannot load soc"}),
    [](const testing::TestParamInfo<MalformedCase>& info) {
      return info.param.label;
    });

// LoadRequestFile plumbs the on-disk path into diagnostics.
TEST(RequestParserTest, LoadRequestFileReportsPath) {
  const std::string path = testing::TempDir() + "/soctest_bad_requests.txt";
  {
    std::ofstream f(path);
    f << "d695 16 schedule\n"
      << "d695 16 warp\n";
  }
  const RequestFileResult result = LoadRequestFile(path);
  const auto* err = std::get_if<RequestParseError>(&result);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->file, path);
  EXPECT_EQ(err->line, 2);
  std::remove(path.c_str());

  const RequestFileResult missing = LoadRequestFile(path + ".nope");
  const auto* missing_err = std::get_if<RequestParseError>(&missing);
  ASSERT_NE(missing_err, nullptr);
  EXPECT_EQ(missing_err->line, 0);
  EXPECT_NE(missing_err->ToString().find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace soctest
