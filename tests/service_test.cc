// Tests for the batch-serving layer: the sharded CompiledProblemCache, the
// request-file parser, and the BatchScheduler determinism contract (batch
// results bit-identical for every threads x shards combination — the same
// bar as search/driver.h, one level up).
#include "service/batch_scheduler.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/validator.h"
#include "service/problem_cache.h"
#include "service/request.h"
#include "soc/benchmarks.h"
#include "soc/generator.h"
#include "soc/soc_parser.h"

namespace soctest {
namespace {

ParsedSoc ParsedFromSoc(Soc soc) {
  ParsedSoc parsed;
  parsed.soc = std::move(soc);
  return parsed;
}

ParsedSoc GeneratedParsed(std::uint64_t seed, int cores) {
  GeneratorParams params;
  params.seed = seed;
  params.num_cores = cores;
  params.max_preemptions = 2;
  return ParsedFromSoc(GenerateSoc(params));
}

// A mixed 8-request workload over three SOCs: every mode, duplicated SOCs
// (cache hits), and a repeated (soc, width, mode) triple (identical slots).
std::vector<BatchRequest> MixedRequests() {
  std::vector<BatchRequest> requests;
  const ParsedSoc d695 = ParsedFromSoc(MakeD695());
  const ParsedSoc gen_a = GeneratedParsed(3, 10);
  const ParsedSoc gen_b = GeneratedParsed(17, 12);

  const auto add = [&requests](const ParsedSoc& soc, int width, BatchMode mode) {
    BatchRequest req;
    req.soc_spec = soc.soc.name();
    req.soc = soc;
    req.tam_width = width;
    req.mode = mode;
    req.iterations = 12;
    req.batch = 4;
    req.sweep_min = width - 4;
    requests.push_back(std::move(req));
    return &requests.back();
  };

  add(d695, 24, BatchMode::kSchedule)->search = true;
  add(gen_a, 16, BatchMode::kSchedule);
  add(d695, 16, BatchMode::kSweep);
  add(gen_b, 24, BatchMode::kImprove);
  add(gen_a, 16, BatchMode::kSchedule);  // duplicate of request 1
  add(d695, 32, BatchMode::kSchedule)->preempt = true;
  add(gen_b, 20, BatchMode::kSchedule)->search = true;
  add(d695, 24, BatchMode::kImprove)->seed = 7;
  return requests;
}

void ExpectIdenticalItems(const BatchItemResult& a, const BatchItemResult& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.soc_name, b.soc_name);
  EXPECT_EQ(a.ok(), b.ok());
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.sweep.size(), b.sweep.size());
  for (std::size_t i = 0; i < a.sweep.size(); ++i) {
    EXPECT_EQ(a.sweep[i].tam_width, b.sweep[i].tam_width);
    EXPECT_EQ(a.sweep[i].test_time, b.sweep[i].test_time);
    EXPECT_EQ(a.sweep[i].data_volume, b.sweep[i].data_volume);
  }
  const auto& sa = a.result.schedule;
  const auto& sb = b.result.schedule;
  ASSERT_EQ(sa.entries().size(), sb.entries().size());
  for (std::size_t i = 0; i < sa.entries().size(); ++i) {
    const auto& ea = sa.entries()[i];
    const auto& eb = sb.entries()[i];
    EXPECT_EQ(ea.core, eb.core);
    EXPECT_EQ(ea.assigned_width, eb.assigned_width);
    EXPECT_EQ(ea.preemptions, eb.preemptions);
    ASSERT_EQ(ea.segments.size(), eb.segments.size());
    for (std::size_t s = 0; s < ea.segments.size(); ++s) {
      EXPECT_EQ(ea.segments[s].span, eb.segments[s].span);
      EXPECT_EQ(ea.segments[s].width, eb.segments[s].width);
    }
  }
}

// The headline contract: bit-identical results for every (threads, shards)
// combination. threads=1 shards=1 is the reference serial serving loop.
TEST(BatchSchedulerTest, ResultsBitIdenticalAcrossThreadsAndShards) {
  const std::vector<BatchRequest> requests = MixedRequests();

  BatchOptions reference_options;
  reference_options.threads = 1;
  reference_options.shards = 1;
  BatchScheduler reference(reference_options);
  const BatchOutcome expected = reference.Run(requests);
  ASSERT_EQ(expected.results.size(), requests.size());
  ASSERT_EQ(expected.served, static_cast<int>(requests.size()));

  for (const int threads : {1, 8}) {
    for (const int shards : {1, 4}) {
      BatchOptions options;
      options.threads = threads;
      options.shards = shards;
      BatchScheduler scheduler(options);
      const BatchOutcome outcome = scheduler.Run(requests);
      ASSERT_EQ(outcome.results.size(), requests.size());
      EXPECT_EQ(outcome.served, expected.served);
      for (std::size_t i = 0; i < requests.size(); ++i) {
        SCOPED_TRACE(testing::Message() << "threads=" << threads
                                        << " shards=" << shards << " req=" << i);
        ExpectIdenticalItems(outcome.results[i], expected.results[i]);
      }
    }
  }

  // Duplicate requests land identical results in their own slots.
  ExpectIdenticalItems(expected.results[1], [&] {
    BatchItemResult copy = expected.results[4];
    copy.index = expected.results[1].index;
    copy.cache_hit = expected.results[1].cache_hit;
    return copy;
  }());

  // Spot-check validity: served schedules satisfy the full validator.
  const TestProblem d695 = TestProblem::FromParsed(requests[0].soc);
  EXPECT_TRUE(IsValidSchedule(d695, expected.results[0].result.schedule));
}

// Eviction pressure: with a 1-entry cache, alternating SOCs evict each other
// every request, and the post-eviction recompile serves a schedule
// bit-identical to the cached one's.
TEST(BatchSchedulerTest, EvictionRecompileIsBitIdentical) {
  const ParsedSoc a = GeneratedParsed(3, 10);
  const ParsedSoc b = GeneratedParsed(17, 12);
  std::vector<BatchRequest> requests;
  for (int round = 0; round < 2; ++round) {
    for (const ParsedSoc* soc : {&a, &b}) {
      BatchRequest req;
      req.soc_spec = soc->soc.name();
      req.soc = *soc;
      req.tam_width = 16;
      requests.push_back(std::move(req));
    }
  }

  BatchOptions options;
  options.threads = 1;  // serial: the eviction sequence is deterministic
  options.shards = 1;
  options.cache_entries = 1;
  BatchScheduler scheduler(options);
  const BatchOutcome outcome = scheduler.Run(requests);
  ASSERT_EQ(outcome.served, 4);

  // Requests 0/2 and 1/3 are identical; every one was compiled fresh.
  ExpectIdenticalItems(outcome.results[0], [&] {
    BatchItemResult copy = outcome.results[2];
    copy.index = 0;
    return copy;
  }());
  ExpectIdenticalItems(outcome.results[1], [&] {
    BatchItemResult copy = outcome.results[3];
    copy.index = 1;
    return copy;
  }());
  EXPECT_EQ(outcome.cache.hits, 0);
  EXPECT_EQ(outcome.cache.compiles, 4);
  EXPECT_GE(outcome.cache.evictions, 3);
  EXPECT_EQ(outcome.cache.entries, 1);
}

TEST(CompiledProblemCacheTest, HitsShareOneCompilation) {
  CompiledProblemCache cache({/*shards=*/4, /*capacity=*/8});
  const ParsedSoc d695 = ParsedFromSoc(MakeD695());
  bool hit = true;
  const auto first = cache.GetOrCompile(d695, kDefaultWMax, &hit);
  EXPECT_FALSE(hit);
  const auto second = cache.GetOrCompile(d695, kDefaultWMax, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // literally the same artifacts
  ASSERT_TRUE(first->ok());
  // A different w_max is a different key.
  const auto third = cache.GetOrCompile(d695, 32, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(first.get(), third.get());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.compiles, 2);
  EXPECT_EQ(stats.entries, 2);
}

// The handout survives eviction: an in-flight shared_ptr keeps the evicted
// entry (and the TestProblem its artifacts reference) alive and usable.
TEST(CompiledProblemCacheTest, HandoutSurvivesEviction) {
  CompiledProblemCache cache({/*shards=*/1, /*capacity=*/1});
  const ParsedSoc a = GeneratedParsed(3, 10);
  const ParsedSoc b = GeneratedParsed(17, 12);
  const auto held = cache.GetOrCompile(a, kDefaultWMax);
  cache.GetOrCompile(b, kDefaultWMax);  // evicts a
  EXPECT_GE(cache.stats().evictions, 1);
  ASSERT_TRUE(held->ok());
  OptimizerParams params;
  params.tam_width = 16;
  const OptimizerResult result = Optimize(*held, params);
  ASSERT_TRUE(result.ok());  // the referenced TestProblem is still alive

  // And the recompiled entry schedules bit-identically to the evicted one.
  const auto recompiled = cache.GetOrCompile(a, kDefaultWMax);
  const OptimizerResult again = Optimize(*recompiled, params);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(result.makespan, again.makespan);
}

// Options::capacity is a hard bound: shards clamp to it and per-shard
// capacity floors, so the resident total can never exceed it.
TEST(CompiledProblemCacheTest, CapacityIsAHardTotalBound) {
  CompiledProblemCache cache({/*shards=*/4, /*capacity=*/1});
  EXPECT_EQ(cache.shards(), 1);
  EXPECT_EQ(cache.capacity_per_shard(), 1);
  cache.GetOrCompile(GeneratedParsed(3, 10), kDefaultWMax);
  cache.GetOrCompile(GeneratedParsed(17, 12), kDefaultWMax);
  cache.GetOrCompile(ParsedFromSoc(MakeD695()), kDefaultWMax);
  EXPECT_EQ(cache.stats().entries, 1);

  CompiledProblemCache uneven({/*shards=*/4, /*capacity=*/6});
  EXPECT_EQ(uneven.shards(), 4);
  EXPECT_EQ(uneven.capacity_per_shard(), 1);  // floor(6/4): total bound 4 <= 6
}

TEST(CompiledProblemCacheTest, KeyIsContentNotProvenance) {
  // Two independently constructed ParsedSocs with equal content share a key.
  const ParsedSoc first = GeneratedParsed(3, 10);
  const ParsedSoc second = GeneratedParsed(3, 10);
  EXPECT_EQ(CompiledProblemCache::CanonicalKey(first),
            CompiledProblemCache::CanonicalKey(second));
  EXPECT_NE(CompiledProblemCache::KeyHash(
                CompiledProblemCache::CanonicalKey(first), 64),
            CompiledProblemCache::KeyHash(
                CompiledProblemCache::CanonicalKey(first), 32));
  CompiledProblemCache cache({/*shards=*/2, /*capacity=*/4});
  bool hit = true;
  cache.GetOrCompile(first, 64, &hit);
  EXPECT_FALSE(hit);
  cache.GetOrCompile(second, 64, &hit);
  EXPECT_TRUE(hit);
}

TEST(RequestParserTest, ParsesModesAndFlags) {
  const std::string text =
      "# comment line\n"
      "\n"
      "d695 24 schedule search=1 wide=1 preempt=1 s=2.5 delta=3\n"
      "d695 16 improve iters=50 batch=4 seed=9\n"
      "d695 20 sweep min=8 max=18\n";
  const RequestFileResult result = ParseRequestText(text, "requests.txt");
  const auto* requests = std::get_if<std::vector<BatchRequest>>(&result);
  ASSERT_NE(requests, nullptr)
      << std::get<RequestParseError>(result).ToString();
  ASSERT_EQ(requests->size(), 3u);

  const BatchRequest& schedule = (*requests)[0];
  EXPECT_EQ(schedule.soc_spec, "d695");
  EXPECT_EQ(schedule.soc.soc.name(), "d695");
  EXPECT_EQ(schedule.tam_width, 24);
  EXPECT_EQ(schedule.mode, BatchMode::kSchedule);
  EXPECT_TRUE(schedule.search);
  EXPECT_TRUE(schedule.wide);
  EXPECT_TRUE(schedule.preempt);
  EXPECT_DOUBLE_EQ(schedule.s_percent, 2.5);
  EXPECT_EQ(schedule.delta, 3);

  const BatchRequest& improve = (*requests)[1];
  EXPECT_EQ(improve.mode, BatchMode::kImprove);
  EXPECT_EQ(improve.iterations, 50);
  EXPECT_EQ(improve.batch, 4);
  EXPECT_EQ(improve.seed, 9u);

  const BatchRequest& sweep = (*requests)[2];
  EXPECT_EQ(sweep.mode, BatchMode::kSweep);
  EXPECT_EQ(sweep.sweep_min, 8);
  EXPECT_EQ(sweep.sweep_max, 18);
}

// Round-trip contract: Parse(Format(r)) reproduces every field.
TEST(RequestParserTest, FormatParseRoundTrip) {
  const std::string text =
      "d695 24 schedule search=1 wide=1 preempt=1 s=2.5 delta=3\n"
      "d695 16 improve iters=50 batch=4 seed=9\n"
      "d695 20 sweep min=8 max=18\n"
      "d695 32 schedule\n";
  const auto first = std::get<std::vector<BatchRequest>>(
      ParseRequestText(text, "requests.txt"));
  std::string formatted;
  for (const BatchRequest& req : first) {
    formatted += FormatRequestLine(req) + "\n";
  }
  const auto second = std::get<std::vector<BatchRequest>>(
      ParseRequestText(formatted, "requests.txt"));
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE(FormatRequestLine(first[i]));
    EXPECT_EQ(first[i].soc_spec, second[i].soc_spec);
    EXPECT_EQ(first[i].tam_width, second[i].tam_width);
    EXPECT_EQ(first[i].mode, second[i].mode);
    EXPECT_EQ(first[i].preempt, second[i].preempt);
    EXPECT_DOUBLE_EQ(first[i].s_percent, second[i].s_percent);
    EXPECT_EQ(first[i].delta, second[i].delta);
    EXPECT_EQ(first[i].search, second[i].search);
    EXPECT_EQ(first[i].wide, second[i].wide);
    EXPECT_EQ(first[i].iterations, second[i].iterations);
    EXPECT_EQ(first[i].batch, second[i].batch);
    EXPECT_EQ(first[i].seed, second[i].seed);
    EXPECT_EQ(first[i].sweep_min, second[i].sweep_min);
    EXPECT_EQ(first[i].sweep_max, second[i].sweep_max);
  }
}

struct MalformedCase {
  const char* label;
  const char* line;
  int error_line;
  const char* needle;  // must appear in the message
};

class RequestParserMalformedTest
    : public testing::TestWithParam<MalformedCase> {};

TEST_P(RequestParserMalformedTest, DiagnosesWithFileAndLine) {
  const std::string text = std::string("d695 16 schedule\n") + GetParam().line + "\n";
  const RequestFileResult result = ParseRequestText(text, "req.txt");
  const auto* err = std::get_if<RequestParseError>(&result);
  ASSERT_NE(err, nullptr) << GetParam().label;
  EXPECT_EQ(err->file, "req.txt");
  EXPECT_EQ(err->line, GetParam().error_line);
  EXPECT_NE(err->message.find(GetParam().needle), std::string::npos)
      << "message: " << err->message;
  // file:line: prefix is part of the printed diagnostic.
  EXPECT_EQ(err->ToString().find("req.txt:2: "), 0u) << err->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RequestParserMalformedTest,
    testing::Values(
        MalformedCase{"too_few_tokens", "d695 16", 2, "expected"},
        MalformedCase{"bad_width", "d695 zero schedule", 2, "bad width"},
        MalformedCase{"bad_mode", "d695 16 anneal", 2, "unknown mode"},
        MalformedCase{"bad_flag_shape", "d695 16 schedule wide", 2, "key=value"},
        MalformedCase{"unknown_flag", "d695 16 schedule fast=1", 2,
                      "unknown flag"},
        MalformedCase{"flag_wrong_mode", "d695 16 schedule iters=5", 2,
                      "unknown flag"},
        MalformedCase{"bad_value", "d695 16 improve iters=-2", 2,
                      "positive integer"},
        MalformedCase{"sweep_inverted", "d695 16 sweep min=12 max=8", 2,
                      "below min"},
        MalformedCase{"sweep_min_over_defaulted_max", "d695 16 sweep min=20",
                      2, "below min"},
        MalformedCase{"wide_without_search", "d695 16 schedule wide=1", 2,
                      "requires search=1"},
        MalformedCase{"missing_soc", "no_such.soc 16 schedule", 2,
                      "cannot load soc"}),
    [](const testing::TestParamInfo<MalformedCase>& info) {
      return info.param.label;
    });

// LoadRequestFile plumbs the on-disk path into diagnostics.
TEST(RequestParserTest, LoadRequestFileReportsPath) {
  const std::string path = testing::TempDir() + "/soctest_bad_requests.txt";
  {
    std::ofstream f(path);
    f << "d695 16 schedule\n"
      << "d695 16 warp\n";
  }
  const RequestFileResult result = LoadRequestFile(path);
  const auto* err = std::get_if<RequestParseError>(&result);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->file, path);
  EXPECT_EQ(err->line, 2);
  std::remove(path.c_str());

  const RequestFileResult missing = LoadRequestFile(path + ".nope");
  const auto* missing_err = std::get_if<RequestParseError>(&missing);
  ASSERT_NE(missing_err, nullptr);
  EXPECT_EQ(missing_err->line, 0);
  EXPECT_NE(missing_err->ToString().find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace soctest
