#include "wrapper/rectangles.h"

#include <gtest/gtest.h>

#include "soc/benchmarks.h"

namespace soctest {
namespace {

TEST(RectangleSetTest, ClipsToBinHeight) {
  const Soc soc = MakeD695();
  const RectangleSet rect(soc.core(soc.FindCore("s38584")), 64, 12);
  EXPECT_LE(rect.MaxWidth(), 12);
  for (const auto& p : rect.pareto()) EXPECT_LE(p.width, 12);
}

TEST(RectangleSetTest, SnapWidthIsMonotone) {
  const Soc soc = MakeD695();
  const RectangleSet rect(soc.core(soc.FindCore("s13207")), 64, 64);
  int prev = 0;
  for (int w = 1; w <= 64; ++w) {
    const int snapped = rect.SnapWidth(w);
    EXPECT_GE(snapped, prev);
    EXPECT_LE(snapped, w);
    prev = snapped;
  }
}

TEST(RectangleSetTest, TimeAtWidthMatchesCurve) {
  const Soc soc = MakeD695();
  const auto& core = soc.core(soc.FindCore("s9234"));
  const RectangleSet rect(core, 64, 64);
  for (int w = 1; w <= 64; ++w) {
    EXPECT_EQ(rect.TimeAtWidth(w), rect.curve().TimeAt(w));
  }
}

TEST(RectangleSetTest, MinTimeAtMaxWidth) {
  const Soc soc = MakeD695();
  const RectangleSet rect(soc.core(0), 64, 64);
  EXPECT_EQ(rect.MinTime(), rect.TimeAtWidth(rect.MaxWidth()));
  EXPECT_EQ(rect.MinTime(), rect.pareto().back().time);
}

TEST(RectangleSetTest, MinAreaNoLargerThanAnyCandidate) {
  const Soc soc = MakeD695();
  for (const auto& core : soc.cores()) {
    const RectangleSet rect(core, 64, 64);
    const std::int64_t min_area = rect.MinArea();
    for (const auto& p : rect.pareto()) {
      EXPECT_LE(min_area, static_cast<std::int64_t>(p.width) * p.time);
    }
    EXPECT_GT(min_area, 0);
  }
}

TEST(RectangleSetTest, WidthOneAlwaysPresent) {
  const Soc soc = MakeD695();
  for (const auto& core : soc.cores()) {
    const RectangleSet rect(core, 64, 1);
    EXPECT_EQ(rect.MaxWidth(), 1);
    EXPECT_EQ(rect.SnapWidth(64), 1);
  }
}

TEST(BuildRectangleSetsTest, OnePerCoreInOrder) {
  const Soc soc = MakeD695();
  const auto rects = BuildRectangleSets(soc, 64, 32);
  ASSERT_EQ(rects.size(), 10u);
  for (int c = 0; c < soc.num_cores(); ++c) {
    EXPECT_EQ(rects[static_cast<std::size_t>(c)].core_id(), c);
  }
}

}  // namespace
}  // namespace soctest
