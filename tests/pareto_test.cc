#include "wrapper/pareto.h"

#include <gtest/gtest.h>

#include "soc/benchmarks.h"
#include "wrapper/time_curve.h"

namespace soctest {
namespace {

CoreSpec BigCore() {
  CoreSpec c;
  c.name = "big";
  c.num_inputs = 20;
  c.num_outputs = 20;
  c.num_patterns = 100;
  c.scan_chain_lengths = {50, 50, 50, 50, 40, 40, 30, 30};
  return c;
}

TEST(TimeCurveTest, NonIncreasingStaircase) {
  const TimeCurve curve(BigCore(), 64);
  ASSERT_EQ(curve.w_max(), 64);
  for (int w = 2; w <= 64; ++w) {
    EXPECT_LE(curve.TimeAt(w), curve.TimeAt(w - 1)) << "w=" << w;
  }
}

TEST(TimeCurveTest, ClampsOutOfRangeQueries) {
  const TimeCurve curve(BigCore(), 16);
  EXPECT_EQ(curve.TimeAt(0), curve.TimeAt(1));
  EXPECT_EQ(curve.TimeAt(-5), curve.TimeAt(1));
  EXPECT_EQ(curve.TimeAt(99), curve.TimeAt(16));
}

TEST(TimeCurveTest, SaturationWidthIsFirstFloorWidth) {
  const TimeCurve curve(BigCore(), 64);
  const int sat = curve.SaturationWidth();
  EXPECT_EQ(curve.TimeAt(sat), curve.TimeAt(64));
  if (sat > 1) {
    EXPECT_GT(curve.TimeAt(sat - 1), curve.TimeAt(sat));
  }
}

TEST(ParetoPointsTest, StrictlyDecreasingTimes) {
  const TimeCurve curve(BigCore(), 64);
  const auto pareto = ParetoPoints(curve);
  ASSERT_FALSE(pareto.empty());
  EXPECT_EQ(pareto.front().width, 1);
  for (std::size_t i = 1; i < pareto.size(); ++i) {
    EXPECT_GT(pareto[i].width, pareto[i - 1].width);
    EXPECT_LT(pareto[i].time, pareto[i - 1].time);
  }
}

TEST(ParetoPointsTest, EveryDropIsCaptured) {
  const TimeCurve curve(BigCore(), 64);
  const auto pareto = ParetoPoints(curve);
  for (int w = 2; w <= 64; ++w) {
    if (curve.TimeAt(w) < curve.TimeAt(w - 1)) {
      bool found = false;
      for (const auto& p : pareto) found |= (p.width == w);
      EXPECT_TRUE(found) << "missing Pareto width " << w;
    }
  }
}

TEST(PreferredWidthTest, ZeroSlackPicksSaturation) {
  const TimeCurve curve(BigCore(), 64);
  const int pref = PreferredWidth(curve, {0.0, 0});
  EXPECT_EQ(curve.TimeAt(pref), curve.TimeAt(64));
  EXPECT_EQ(pref, curve.SaturationWidth());
}

TEST(PreferredWidthTest, SlackReducesWidth) {
  const TimeCurve curve(BigCore(), 64);
  const int tight = PreferredWidth(curve, {1.0, 0});
  const int loose = PreferredWidth(curve, {10.0, 0});
  EXPECT_LE(loose, tight);
  // The resulting time is within the promised envelope.
  const auto floor_time = static_cast<double>(curve.TimeAt(64));
  EXPECT_LE(static_cast<double>(curve.TimeAt(loose)), floor_time * 1.10 + 1);
}

TEST(PreferredWidthTest, DeltaBumpsToTopPareto) {
  const TimeCurve curve(BigCore(), 64);
  const int sat = curve.SaturationWidth();
  // With a huge delta the preferred width always bumps to saturation.
  const int pref = PreferredWidth(curve, {10.0, 64});
  EXPECT_EQ(pref, sat);
}

TEST(PreferredWidthTest, DeltaZeroNeverBumps) {
  const TimeCurve curve(BigCore(), 64);
  const int with_slack = PreferredWidth(curve, {10.0, 0});
  // Recomputing with delta 0 yields the same width (no bump applied).
  EXPECT_EQ(PreferredWidth(curve, {10.0, 0}), with_slack);
}

TEST(LargestParetoWidthAtMostTest, SnapsDownToGrid) {
  const TimeCurve curve(BigCore(), 64);
  const auto pareto = ParetoPoints(curve);
  for (int w = 1; w <= 64; ++w) {
    const int snapped = LargestParetoWidthAtMost(pareto, w);
    EXPECT_LE(snapped, w);
    // Snapping loses no time at the same width budget.
    EXPECT_EQ(curve.TimeAt(snapped), curve.TimeAt(w));
  }
}

// Paper Fig. 1 semantics: only Pareto widths matter; widths between Pareto
// points give the same time as the next lower Pareto width.
TEST(ParetoTest, Fig1PlateauSemanticsOnP93791s) {
  const Soc soc = MakeP93791s();
  // Use the largest core as the paper uses p93791 Core 6.
  CoreId biggest = 0;
  std::int64_t best_bits = 0;
  for (const auto& core : soc.cores()) {
    if (core.TotalTestBits() > best_bits) {
      best_bits = core.TotalTestBits();
      biggest = core.id;
    }
  }
  const TimeCurve curve(soc.core(biggest), 64);
  const auto pareto = ParetoPoints(curve);
  EXPECT_GE(pareto.size(), 4u) << "expected a multi-step staircase";
  // Verify a plateau exists (some width where time equals the previous one).
  bool plateau = false;
  for (int w = 2; w <= 64; ++w) plateau |= curve.TimeAt(w) == curve.TimeAt(w - 1);
  EXPECT_TRUE(plateau);
}

class PreferredWidthSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PreferredWidthSweepTest, AlwaysAParetoWidthWithinEnvelope) {
  const auto [s, delta] = GetParam();
  const Soc soc = MakeD695();
  for (const auto& core : soc.cores()) {
    const TimeCurve curve(core, 64);
    const auto pareto = ParetoPoints(curve);
    const int pref =
        PreferredWidth(curve, {static_cast<double>(s), delta});
    EXPECT_GE(pref, 1);
    EXPECT_LE(pref, 64);
    // Preferred width sits on the Pareto grid.
    EXPECT_EQ(LargestParetoWidthAtMost(pareto, pref), pref);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, PreferredWidthSweepTest,
                         ::testing::Combine(::testing::Values(1, 5, 10),
                                            ::testing::Values(0, 2, 4)));

}  // namespace
}  // namespace soctest
