#include "wrapper/flexible_scan.h"

#include <gtest/gtest.h>

#include "soc/benchmarks.h"
#include "wrapper/wrapper_design.h"

namespace soctest {
namespace {

CoreSpec ScanCore(std::vector<int> chains, int io = 4,
                  std::int64_t patterns = 10) {
  CoreSpec c;
  c.name = "scan";
  c.num_inputs = io;
  c.num_outputs = io;
  c.num_patterns = patterns;
  c.scan_chain_lengths = std::move(chains);
  return c;
}

TEST(FlexibleScanTest, MatchesFormulaAtWidthOne) {
  const CoreSpec c = ScanCore({30, 30}, 5, 10);
  // One chain: si = 60 + 5, so = 60 + 5.
  EXPECT_EQ(FlexibleScanTestTime(c, 1), (1 + 65) * 10 + 65);
}

TEST(FlexibleScanTest, EqualSplitAtMatchingWidth) {
  const CoreSpec c = ScanCore({30, 30}, 0, 10);
  // Two chains of 30: si = so = 30.
  EXPECT_EQ(FlexibleScanTestTime(c, 2), (1 + 30) * 10 + 30);
  // Four chains of 15.
  EXPECT_EQ(FlexibleScanTestTime(c, 4), (1 + 15) * 10 + 15);
}

TEST(FlexibleScanTest, NeverSlowerThanFixedChains) {
  // Flexible stitching lower-bounds any fixed-chain wrapper with the same
  // flip-flop count, across the d695 scan cores and all widths.
  const Soc soc = MakeD695();
  for (const auto& core : soc.cores()) {
    if (core.scan_chain_lengths.empty()) continue;
    const auto flexible = FlexibleScanCurve(core, 64);
    const TimeCurve fixed(core, 64);
    for (int w = 1; w <= 64; ++w) {
      EXPECT_LE(flexible[static_cast<std::size_t>(w - 1)], fixed.TimeAt(w))
          << core.name << " w=" << w;
    }
  }
}

TEST(FlexibleScanTest, CurveNonIncreasing) {
  const CoreSpec c = ScanCore({100, 45, 30, 17}, 8, 25);
  const auto curve = FlexibleScanCurve(c, 64);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1]);
  }
}

TEST(FlexibleScanTest, PenaltyAtLeastOne) {
  const Soc soc = MakeD695();
  for (const auto& core : soc.cores()) {
    EXPECT_GE(FixedChainPenalty(core, 64), 1.0) << core.name;
  }
}

TEST(FlexibleScanTest, LongFixedChainsCarryRealPenalty) {
  // One long fixed chain cannot be split: fixed T is flat in w while the
  // flexible model keeps improving, so the penalty must exceed 2x by w=4.
  const CoreSpec c = ScanCore({400}, 0, 10);
  EXPECT_GT(FixedChainPenalty(c, 8), 2.0);
}

TEST(FlexibleScanTest, CombinationalCoresHaveNoScanPenalty) {
  // Without scan cells both models reduce to balanced I/O chains; allow a
  // tiny slack for the ceil-based I/O split difference.
  const Soc soc = MakeD695();
  const auto& comb = soc.core(soc.FindCore("c7552"));
  EXPECT_LE(FixedChainPenalty(comb, 64), 1.05);
}

}  // namespace
}  // namespace soctest
