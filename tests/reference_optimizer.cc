// Frozen copy of the pre-refactor TamScheduleOptimizer (see the header).
// This is the historical core/optimizer.cc admission loop, verbatim except
// for mechanical adaptation: the per-run state lives in local vectors here
// (the old ScheduleWorkspace::CoreState array-of-structs layout) instead of
// the reusable workspace, and helpers are members of a local class. Any
// behavioral edit to this file defeats its purpose as the bit-identity
// oracle — do not "improve" it.
#include "reference_optimizer.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <vector>

#include "util/strings.h"

namespace soctest {
namespace testref {
namespace {

struct RefCoreState {
  int preferred_width = 0;
  int max_preemptions = 0;

  int assigned_width = 0;
  bool begun = false;
  bool running = false;
  bool complete = false;
  Time first_begin = 0;
  Time end_time = 0;
  Time time_remaining = 0;
  int preemptions = 0;
  std::vector<ScheduleSegment> segments;
  Time overhead = 0;
};

struct RefCandidate {
  CoreId core;
  Time remaining;
  bool begun;
  int width;
};

class ReferenceScheduler {
 public:
  ReferenceScheduler(const CompiledProblem& compiled, OptimizerParams params)
      : compiled_(&compiled),
        problem_(&compiled.problem()),
        params_(std::move(params)),
        conflict_(&problem_->precedence, &problem_->concurrency,
                  &problem_->power) {}

  OptimizerResult Run();

 private:
  bool AdmitLimitReached();
  bool AdmitRanked();
  bool AdmitIdleFill();
  bool AdmitInsertFill();
  bool BoostJustStarted();
  void AdvanceTime();
  void Admit(CoreId core, int width);
  bool IsBlocked(CoreId core) const;
  int AvailableWidth() const { return params_.tam_width - used_width_; }
  Time PreemptionPenalty(CoreId core, int width) const {
    return compiled_->FlushPenalty(core, std::max(1, width));
  }

  const CompiledProblem* compiled_;
  const TestProblem* problem_;
  OptimizerParams params_;
  ConflictPolicy conflict_;

  std::vector<RectangleSet> rects_;
  std::vector<RefCoreState> state_;
  std::vector<bool> completed_;
  std::vector<CoreId> active_;
  int used_width_ = 0;
  std::int64_t active_power_ = 0;
  Time now_ = 0;
  int incomplete_ = 0;
  int rounds_ = 0;
};

bool ReferenceScheduler::IsBlocked(CoreId core) const {
  return conflict_.Blocked(core, completed_, active_, active_power_)
      .has_value();
}

void ReferenceScheduler::Admit(CoreId core, int width) {
  auto& s = state_[static_cast<std::size_t>(core)];
  assert(!s.running && !s.complete);
  const auto& rect = rects_[static_cast<std::size_t>(core)];
  if (!s.begun) {
    s.assigned_width = rect.SnapWidth(width);
    s.time_remaining = rect.TimeAtWidth(s.assigned_width);
    s.begun = true;
    s.first_begin = now_;
    s.end_time = now_;
  } else if (s.end_time < now_) {
    ++s.preemptions;
    const Time penalty = PreemptionPenalty(core, s.assigned_width);
    s.time_remaining += penalty;
    s.overhead += penalty;
  }
  s.running = true;
  active_.push_back(core);
  used_width_ += s.assigned_width;
  active_power_ += problem_->power.PowerOf(core);
}

bool ReferenceScheduler::AdmitLimitReached() {
  bool any = false;
  while (true) {
    CoreId best = kNoCore;
    Time best_rem = -1;
    const int avail = AvailableWidth();
    for (CoreId c = 0; c < problem_->soc.num_cores(); ++c) {
      const auto& s = state_[static_cast<std::size_t>(c)];
      if (!s.begun || s.running || s.complete) continue;
      if (s.preemptions < s.max_preemptions) continue;
      if (s.assigned_width > avail) continue;
      if (IsBlocked(c)) continue;
      if (s.time_remaining > best_rem) {
        best = c;
        best_rem = s.time_remaining;
      }
    }
    if (best == kNoCore) break;
    Admit(best, state_[static_cast<std::size_t>(best)].assigned_width);
    any = true;
  }
  return any;
}

bool ReferenceScheduler::AdmitRanked() {
  std::vector<RefCandidate> candidates;
  for (CoreId c = 0; c < problem_->soc.num_cores(); ++c) {
    const auto& s = state_[static_cast<std::size_t>(c)];
    if (s.running || s.complete) continue;
    if (s.begun) {
      candidates.push_back({c, s.time_remaining, true, s.assigned_width});
    } else {
      candidates.push_back(
          {c,
           rects_[static_cast<std::size_t>(c)].TimeAtWidth(s.preferred_width),
           false, s.preferred_width});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [this](const RefCandidate& a, const RefCandidate& b) {
              if (!params_.allow_preemption && a.begun != b.begun) {
                return a.begun;
              }
              switch (params_.rank) {
                case AdmissionRank::kWidth:
                  if (a.width != b.width) return a.width > b.width;
                  break;
                case AdmissionRank::kArea: {
                  const auto aa = static_cast<std::int64_t>(a.width) * a.remaining;
                  const auto ab = static_cast<std::int64_t>(b.width) * b.remaining;
                  if (aa != ab) return aa > ab;
                  break;
                }
                case AdmissionRank::kTime:
                  break;
              }
              if (a.remaining != b.remaining) return a.remaining > b.remaining;
              if (a.begun != b.begun) return a.begun;
              return a.core < b.core;
            });

  bool any = false;
  for (const auto& cand : candidates) {
    const auto& s = state_[static_cast<std::size_t>(cand.core)];
    if (s.running) continue;
    const int avail = AvailableWidth();
    int width = cand.width;
    if (width > avail) {
      if (!params_.enable_insert_fill || cand.begun || avail <= 0) continue;
      Time critical = 0;
      for (const CoreId a : active_) {
        critical = std::max(critical,
                            state_[static_cast<std::size_t>(a)].time_remaining);
      }
      const auto& rect = rects_[static_cast<std::size_t>(cand.core)];
      const int shrunk = rect.SnapWidth(avail);
      if (shrunk > avail || rect.TimeAtWidth(shrunk) > critical) continue;
      width = shrunk;
    }
    if (IsBlocked(cand.core)) continue;
    Admit(cand.core, width);
    any = true;
  }
  return any;
}

bool ReferenceScheduler::AdmitIdleFill() {
  if (!params_.enable_idle_fill) return false;
  bool any = false;
  while (true) {
    const int avail = AvailableWidth();
    if (avail <= 0) break;
    CoreId best = kNoCore;
    int best_pref = 0;
    for (CoreId c = 0; c < problem_->soc.num_cores(); ++c) {
      const auto& s = state_[static_cast<std::size_t>(c)];
      if (s.begun || s.running || s.complete) continue;
      if (s.preferred_width > avail + params_.idle_fill_slack) continue;
      if (s.preferred_width <= avail) continue;
      if (IsBlocked(c)) continue;
      if (best == kNoCore || s.preferred_width < best_pref) {
        best = c;
        best_pref = s.preferred_width;
      }
    }
    if (best == kNoCore) break;
    const int width = rects_[static_cast<std::size_t>(best)].SnapWidth(avail);
    if (width <= 0 || width > avail) break;
    Admit(best, width);
    any = true;
  }
  return any;
}

bool ReferenceScheduler::AdmitInsertFill() {
  if (!params_.enable_insert_fill) return false;
  bool any = false;
  while (true) {
    const int avail = AvailableWidth();
    if (avail <= 0) break;
    Time critical = 0;
    for (const CoreId a : active_) {
      critical = std::max(critical,
                          state_[static_cast<std::size_t>(a)].time_remaining);
    }
    if (critical == 0) break;
    CoreId best = kNoCore;
    Time best_time = -1;
    int best_width = 0;
    for (CoreId c = 0; c < problem_->soc.num_cores(); ++c) {
      const auto& s = state_[static_cast<std::size_t>(c)];
      if (s.begun || s.running || s.complete) continue;
      const auto& rect = rects_[static_cast<std::size_t>(c)];
      const int width = rect.SnapWidth(avail);
      if (width > avail) continue;
      const Time t = rect.TimeAtWidth(width);
      if (t > critical) continue;
      if (IsBlocked(c)) continue;
      if (t > best_time) {
        best = c;
        best_time = t;
        best_width = width;
      }
    }
    if (best == kNoCore) break;
    Admit(best, best_width);
    any = true;
  }
  return any;
}

bool ReferenceScheduler::BoostJustStarted() {
  if (!params_.enable_width_boost) return false;
  bool any = false;
  while (true) {
    const int avail = AvailableWidth();
    if (avail <= 0) break;
    CoreId best = kNoCore;
    Time best_gain = 0;
    int best_new_width = 0;
    for (CoreId c = 0; c < problem_->soc.num_cores(); ++c) {
      const auto& s = state_[static_cast<std::size_t>(c)];
      if (!s.running || s.first_begin != now_) continue;
      const auto& rect = rects_[static_cast<std::size_t>(c)];
      const int new_width = rect.SnapWidth(s.assigned_width + avail);
      if (new_width <= s.assigned_width) continue;
      const Time gain =
          rect.TimeAtWidth(s.assigned_width) - rect.TimeAtWidth(new_width);
      if (gain > best_gain) {
        best = c;
        best_gain = gain;
        best_new_width = new_width;
      }
    }
    if (best == kNoCore) break;
    auto& s = state_[static_cast<std::size_t>(best)];
    used_width_ += best_new_width - s.assigned_width;
    s.assigned_width = best_new_width;
    s.time_remaining =
        rects_[static_cast<std::size_t>(best)].TimeAtWidth(best_new_width) +
        s.overhead;
    any = true;
  }
  return any;
}

void ReferenceScheduler::AdvanceTime() {
  Time min_rem = -1;
  for (const CoreId a : active_) {
    const auto& s = state_[static_cast<std::size_t>(a)];
    if (min_rem < 0 || s.time_remaining < min_rem) min_rem = s.time_remaining;
  }
  assert(min_rem > 0 && "AdvanceTime requires at least one running core");
  const Time new_time = now_ + min_rem;
  for (const CoreId c : active_) {
    auto& s = state_[static_cast<std::size_t>(c)];
    if (!s.segments.empty() && s.segments.back().span.end == now_ &&
        s.segments.back().width == s.assigned_width) {
      s.segments.back().span.end = new_time;
    } else {
      s.segments.push_back(
          ScheduleSegment{Interval{now_, new_time}, s.assigned_width});
    }
    s.time_remaining -= min_rem;
    s.running = false;
    s.end_time = new_time;
    if (s.time_remaining <= 0) {
      s.complete = true;
      completed_[static_cast<std::size_t>(c)] = true;
      --incomplete_;
    }
  }
  active_.clear();
  used_width_ = 0;
  active_power_ = 0;
  now_ = new_time;
  ++rounds_;
}

OptimizerResult ReferenceScheduler::Run() {
  OptimizerResult result;

  // ---- Input validation -------------------------------------------------
  if (params_.tam_width < 1) {
    result.error = "tam_width must be >= 1";
    return result;
  }
  if (params_.w_max < 1) {
    result.error = "w_max must be >= 1";
    return result;
  }
  if (!compiled_->ok()) {
    result.error = *compiled_->error();
    return result;
  }
  if (params_.w_max != compiled_->w_max()) {
    result.error = StrFormat(
        "params.w_max (%d) does not match the CompiledProblem's w_max (%d)",
        params_.w_max, compiled_->w_max());
    return result;
  }
  if (auto problem = problem_->soc.Validate()) {
    result.error = *problem;
    return result;
  }
  if (problem_->precedence.HasCycle()) {
    result.error = "precedence constraints form a cycle";
    return result;
  }
  if (!problem_->power.unlimited()) {
    for (const auto& core : problem_->soc.cores()) {
      if (problem_->power.PowerOf(core.id) > problem_->power.pmax()) {
        result.error = StrFormat(
            "core '%s' has power %lld > Pmax %lld and can never be scheduled",
            core.name.c_str(),
            static_cast<long long>(problem_->power.PowerOf(core.id)),
            static_cast<long long>(problem_->power.pmax()));
        return result;
      }
    }
  }

  // ---- Initialize (paper Fig. 5) ----------------------------------------
  rects_ = compiled_->RectsFor(params_.tam_width);
  const std::vector<RectangleSet>& rects = rects_;
  std::vector<int> preferred;
  if (!params_.preferred_width_override.empty()) {
    if (params_.preferred_width_override.size() !=
        static_cast<std::size_t>(problem_->soc.num_cores())) {
      result.error = "preferred_width_override must have one entry per core";
      return result;
    }
    for (CoreId c = 0; c < problem_->soc.num_cores(); ++c) {
      const int w = params_.preferred_width_override[static_cast<std::size_t>(c)];
      preferred.push_back(rects[static_cast<std::size_t>(c)].SnapWidth(
          std::clamp(w, 1, params_.tam_width)));
    }
  } else if (params_.deadline_sizing) {
    const SocBounds bounds = compiled_->Bounds(params_.tam_width);
    Time lo = bounds.LowerBound(params_.tam_width);
    Time hi = bounds.serial_time;

    auto width_for_deadline = [this](const RectangleSet& rect, Time deadline) {
      int pref = rect.MaxWidth();
      for (const auto& p : rect.pareto()) {
        if (p.time <= deadline) {
          pref = p.width;
          break;
        }
      }
      return rect.SnapWidth(std::min(pref, params_.tam_width));
    };
    auto demand = [&](Time deadline) {
      int total = 0;
      for (const auto& rect : rects) total += width_for_deadline(rect, deadline);
      return total;
    };

    Time deadline = hi;
    if (demand(lo) <= params_.tam_width) {
      deadline = lo;
    } else {
      while (lo + 1 < hi) {
        const Time mid = lo + (hi - lo) / 2;
        if (demand(mid) <= params_.tam_width) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      deadline = hi;
    }
    deadline = static_cast<Time>(static_cast<double>(deadline) *
                                 (1.0 + params_.s_percent / 100.0));
    for (const auto& rect : rects) {
      preferred.push_back(width_for_deadline(rect, deadline));
    }
  } else {
    PreferredWidthParams pw{params_.s_percent, params_.delta};
    for (const auto& rect : rects) {
      const int pref = PreferredWidth(rect.curve(), pw);
      preferred.push_back(rect.SnapWidth(std::min(pref, params_.tam_width)));
    }
  }

  const auto n = static_cast<std::size_t>(problem_->soc.num_cores());
  state_.assign(n, RefCoreState{});
  completed_.assign(n, false);
  active_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    auto& s = state_[i];
    s.preferred_width = preferred[i];
    if (params_.allow_preemption) {
      s.max_preemptions = problem_->soc.cores()[i].max_preemptions;
      if (params_.preemption_budget_override >= 0) {
        s.max_preemptions =
            std::min(s.max_preemptions, params_.preemption_budget_override);
      }
    }
  }
  now_ = 0;
  rounds_ = 0;
  incomplete_ = problem_->soc.num_cores();
  used_width_ = 0;
  active_power_ = 0;

  // ---- Main loop (paper Fig. 4) ------------------------------------------
  while (incomplete_ > 0) {
    bool progress = false;
    progress |= AdmitLimitReached();
    progress |= AdmitRanked();
    progress |= AdmitIdleFill();
    progress |= AdmitInsertFill();
    BoostJustStarted();

    if (active_.empty()) {
      if (!progress) {
        result.error = "scheduler deadlock: no core admissible";
        return result;
      }
      continue;
    }
    AdvanceTime();
  }

  // ---- Emit schedule -----------------------------------------------------
  result.schedule = Schedule(problem_->soc.name(), params_.tam_width);
  for (CoreId c = 0; c < problem_->soc.num_cores(); ++c) {
    auto& s = state_[static_cast<std::size_t>(c)];
    CoreSchedule entry;
    entry.core = c;
    entry.assigned_width = s.assigned_width;
    entry.segments = std::move(s.segments);
    entry.preemptions = s.preemptions;
    entry.overhead_cycles = s.overhead;
    result.schedule.Add(std::move(entry));

    CoreAssignment assignment;
    assignment.core = c;
    assignment.preferred_width = s.preferred_width;
    assignment.assigned_width = s.assigned_width;
    assignment.test_time =
        rects[static_cast<std::size_t>(c)].TimeAtWidth(s.assigned_width);
    assignment.scheduled_time = assignment.test_time + s.overhead;
    assignment.preemptions = s.preemptions;
    result.assignments.push_back(assignment);
  }
  result.makespan = result.schedule.Makespan();
  result.admission_rounds = rounds_;
  return result;
}

}  // namespace

OptimizerResult ReferenceOptimize(const CompiledProblem& compiled,
                                  const OptimizerParams& params) {
  return ReferenceScheduler(compiled, params).Run();
}

OptimizerResult ReferenceOptimize(const TestProblem& problem,
                                  const OptimizerParams& params) {
  const CompiledProblem compiled(problem, params.w_max);
  return ReferenceOptimize(compiled, params);
}

}  // namespace testref
}  // namespace soctest
