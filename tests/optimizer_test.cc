#include "core/optimizer.h"

#include <gtest/gtest.h>

#include "baseline/lower_bound.h"
#include "core/validator.h"
#include "soc/benchmarks.h"

namespace soctest {
namespace {

CoreSpec SmallCore(const std::string& name, int io, std::int64_t patterns,
                   std::vector<int> chains = {}) {
  CoreSpec c;
  c.name = name;
  c.num_inputs = io;
  c.num_outputs = io;
  c.num_patterns = patterns;
  c.scan_chain_lengths = std::move(chains);
  return c;
}

TEST(OptimizerTest, SingleCoreUsesWholeTam) {
  Soc soc("one");
  soc.AddCore(SmallCore("only", 8, 50, {40, 40}));
  const TestProblem problem = TestProblem::FromSoc(std::move(soc));
  OptimizerParams params;
  params.tam_width = 16;
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  // With the width-boost heuristic the lone core gets its best usable width.
  const RectangleSet rect(problem.soc.core(0), 64, 16);
  EXPECT_EQ(result.makespan, rect.MinTime());
  EXPECT_TRUE(IsValidSchedule(problem, result.schedule));
}

TEST(OptimizerTest, TwoIndependentCoresRunInParallel) {
  Soc soc("two");
  soc.AddCore(SmallCore("a", 4, 100, {20}));
  soc.AddCore(SmallCore("b", 4, 100, {20}));
  const TestProblem problem = TestProblem::FromSoc(std::move(soc));
  OptimizerParams params;
  params.tam_width = 32;
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  const auto* a = result.schedule.FindCore(0);
  const auto* b = result.schedule.FindCore(1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->BeginTime(), 0);
  EXPECT_EQ(b->BeginTime(), 0);
}

TEST(OptimizerTest, RespectsTamCapacityWidthOne) {
  Soc soc("narrow");
  soc.AddCore(SmallCore("a", 2, 10));
  soc.AddCore(SmallCore("b", 2, 10));
  soc.AddCore(SmallCore("c", 2, 10));
  const TestProblem problem = TestProblem::FromSoc(std::move(soc));
  OptimizerParams params;
  params.tam_width = 1;
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.schedule.PeakWidth(), 1);
  EXPECT_TRUE(IsValidSchedule(problem, result.schedule));
}

TEST(OptimizerTest, MakespanNonIncreasingInWidth) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  OptimizerParams params;
  Time prev = -1;
  for (int w : {8, 16, 24, 32, 48, 64}) {
    params.tam_width = w;
    const auto result = OptimizeBestOverParams(problem, params);
    ASSERT_TRUE(result.ok());
    if (prev >= 0) {
      EXPECT_LE(result.makespan, prev) << "W=" << w;
    }
    prev = result.makespan;
  }
}

TEST(OptimizerTest, NeverBeatsLowerBound) {
  for (const auto& soc : AllBenchmarkSocs()) {
    const TestProblem problem = TestProblem::FromSoc(soc);
    for (int w : {16, 32}) {
      OptimizerParams params;
      params.tam_width = w;
      const auto result = Optimize(problem, params);
      ASSERT_TRUE(result.ok()) << soc.name();
      const auto lb = ComputeLowerBound(soc, w, 64);
      EXPECT_GE(result.makespan, lb.value()) << soc.name() << " W=" << w;
    }
  }
}

TEST(OptimizerTest, PrecedenceOrdersTests) {
  Soc soc("prec");
  soc.AddCore(SmallCore("first", 4, 50, {16}));
  soc.AddCore(SmallCore("second", 4, 50, {16}));
  TestProblem problem = TestProblem::FromSoc(std::move(soc));
  problem.precedence.Add(0, 1);
  OptimizerParams params;
  params.tam_width = 32;
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.schedule.FindCore(1)->BeginTime(),
            result.schedule.FindCore(0)->EndTime());
  EXPECT_TRUE(IsValidSchedule(problem, result.schedule));
}

TEST(OptimizerTest, ConcurrencySerializesTests) {
  Soc soc("conc");
  soc.AddCore(SmallCore("a", 4, 80, {16}));
  soc.AddCore(SmallCore("b", 4, 80, {16}));
  TestProblem problem = TestProblem::FromSoc(std::move(soc));
  problem.concurrency.Add(0, 1);
  OptimizerParams params;
  params.tam_width = 32;
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  const auto* a = result.schedule.FindCore(0);
  const auto* b = result.schedule.FindCore(1);
  const bool disjoint =
      a->EndTime() <= b->BeginTime() || b->EndTime() <= a->BeginTime();
  EXPECT_TRUE(disjoint);
}

TEST(OptimizerTest, HierarchyConflictsAreImplicit) {
  Soc soc("hier");
  const CoreId parent = soc.AddCore(SmallCore("parent", 4, 60, {16}));
  CoreSpec child = SmallCore("child", 4, 60, {16});
  child.parent = parent;
  soc.AddCore(child);
  const TestProblem problem = TestProblem::FromSoc(std::move(soc));
  OptimizerParams params;
  params.tam_width = 64;
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsValidSchedule(problem, result.schedule));
  const auto* p = result.schedule.FindCore(0);
  const auto* c = result.schedule.FindCore(1);
  const bool disjoint =
      p->EndTime() <= c->BeginTime() || c->EndTime() <= p->BeginTime();
  EXPECT_TRUE(disjoint);
}

TEST(OptimizerTest, PowerBudgetLengthensSchedule) {
  const Soc soc = MakeD695();
  OptimizerParams params;
  params.tam_width = 48;

  const TestProblem unconstrained = TestProblem::FromSoc(soc);
  const auto base = OptimizeBestOverParams(unconstrained, params);

  TestProblem constrained = TestProblem::FromSoc(soc);
  constrained.power = PowerModel::FromSoc(soc, 1.0);  // tightest valid budget
  const auto tight = OptimizeBestOverParams(constrained, params);

  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(tight.ok());
  EXPECT_GE(tight.makespan, base.makespan);
  EXPECT_TRUE(IsValidSchedule(constrained, tight.schedule));
}

TEST(OptimizerTest, ErrorOnInvalidWidth) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  OptimizerParams params;
  params.tam_width = 0;
  EXPECT_FALSE(Optimize(problem, params).ok());
  params.tam_width = 16;
  params.w_max = 0;
  EXPECT_FALSE(Optimize(problem, params).ok());
}

TEST(OptimizerTest, ErrorOnCyclicPrecedence) {
  Soc soc("cyc");
  soc.AddCore(SmallCore("a", 4, 10));
  soc.AddCore(SmallCore("b", 4, 10));
  TestProblem problem = TestProblem::FromSoc(std::move(soc));
  problem.precedence.Add(0, 1);
  problem.precedence.Add(1, 0);
  OptimizerParams params;
  params.tam_width = 8;
  const auto result = Optimize(problem, params);
  EXPECT_FALSE(result.ok());
}

TEST(OptimizerTest, ErrorOnUnschedulablePower) {
  Soc soc("hot");
  soc.AddCore(SmallCore("a", 4, 10));
  TestProblem problem = TestProblem::FromSoc(std::move(soc));
  problem.power = PowerModel({100}, 50);  // core hotter than the budget
  OptimizerParams params;
  params.tam_width = 8;
  const auto result = Optimize(problem, params);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error->find("power"), std::string::npos);
}

TEST(OptimizerTest, AssignmentsMirrorSchedule) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  OptimizerParams params;
  params.tam_width = 32;
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.assignments.size(), 10u);
  for (const auto& a : result.assignments) {
    const auto* entry = result.schedule.FindCore(a.core);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->assigned_width, a.assigned_width);
    EXPECT_EQ(entry->ActiveTime(), a.scheduled_time);
    EXPECT_GE(a.preferred_width, 1);
    EXPECT_LE(a.assigned_width, params.tam_width);
  }
}

TEST(OptimizerTest, DeterministicAcrossRuns) {
  const TestProblem problem = TestProblem::FromSoc(MakeP22810s());
  OptimizerParams params;
  params.tam_width = 24;
  const auto a = Optimize(problem, params);
  const auto b = Optimize(problem, params);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.schedule.UsedArea(), b.schedule.UsedArea());
}

TEST(OptimizerTest, BestOverParamsNoWorseThanDefault) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  OptimizerParams params;
  params.tam_width = 32;
  const auto single = Optimize(problem, params);
  const auto swept = OptimizeBestOverParams(problem, params);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(swept.ok());
  EXPECT_LE(swept.makespan, single.makespan);
}

TEST(OptimizerTest, AblationHeuristicsNeverBreakValidity) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  for (int mask = 0; mask < 8; ++mask) {
    OptimizerParams params;
    params.tam_width = 32;
    params.enable_idle_fill = mask & 1;
    params.enable_width_boost = mask & 2;
    params.enable_insert_fill = mask & 4;
    const auto result = Optimize(problem, params);
    ASSERT_TRUE(result.ok()) << "mask=" << mask;
    EXPECT_TRUE(IsValidSchedule(problem, result.schedule)) << "mask=" << mask;
  }
}

// A reused ScheduleWorkspace is pure scratch: runs with one workspace across
// changing parameters AND changing TAM widths (which invalidates its
// rectangle cache) are bit-identical to fresh runs.
TEST(OptimizerTest, WorkspaceReuseBitIdenticalAcrossRuns) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  const CompiledProblem compiled(problem);
  ScheduleWorkspace ws;
  // Revisit width 24 after 32 to prove the cache invalidates and re-fills.
  const int widths[] = {24, 32, 24};
  const double s_values[] = {5.0, 2.0, 9.0};
  for (int i = 0; i < 3; ++i) {
    OptimizerParams params;
    params.tam_width = widths[i];
    params.s_percent = s_values[i];
    params.allow_preemption = i == 1;
    const auto fresh = Optimize(compiled, params);
    const auto reused = Optimize(compiled, params, ws);
    ASSERT_TRUE(fresh.ok()) << i;
    ASSERT_TRUE(reused.ok()) << i;
    EXPECT_EQ(fresh.makespan, reused.makespan) << i;
    EXPECT_EQ(fresh.admission_rounds, reused.admission_rounds) << i;
    ASSERT_EQ(fresh.schedule.entries().size(), reused.schedule.entries().size());
    for (std::size_t c = 0; c < fresh.schedule.entries().size(); ++c) {
      const auto& ef = fresh.schedule.entries()[c];
      const auto& er = reused.schedule.entries()[c];
      ASSERT_EQ(ef.segments.size(), er.segments.size())
          << "run " << i << " core " << c;
      for (std::size_t s = 0; s < ef.segments.size(); ++s) {
        EXPECT_EQ(ef.segments[s].span, er.segments[s].span);
        EXPECT_EQ(ef.segments[s].width, er.segments[s].width);
      }
    }
  }
}

// The preemption-budget cap can only tighten CoreSpec budgets: capping at 0
// forbids preemption entirely, and a cap above every spec budget changes
// nothing.
TEST(OptimizerTest, PreemptionBudgetOverrideCapsSpecBudgets) {
  TestProblem problem = TestProblem::FromSoc(MakeD695());
  for (int c = 0; c < problem.soc.num_cores(); ++c) {
    problem.soc.mutable_core(c).max_preemptions = 2;
  }
  OptimizerParams params;
  params.tam_width = 24;
  params.allow_preemption = true;
  const auto uncapped = Optimize(problem, params);
  ASSERT_TRUE(uncapped.ok());

  params.preemption_budget_override = 0;
  const auto capped = Optimize(problem, params);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped.schedule.TotalPreemptions(), 0);

  params.preemption_budget_override = 99;  // above every spec budget: no-op
  const auto loose = Optimize(problem, params);
  ASSERT_TRUE(loose.ok());
  EXPECT_EQ(loose.makespan, uncapped.makespan);
  EXPECT_EQ(loose.schedule.TotalPreemptions(),
            uncapped.schedule.TotalPreemptions());
}

// makespan_bound semantics (PR 9): packed time is monotone non-decreasing,
// so the run may abandon the instant it reaches the bound — the reported
// partial makespan is a certificate that the full schedule would have been
// at least that long.
TEST(OptimizerTest, MakespanBoundAbortsEarly) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  OptimizerParams params;
  params.tam_width = 32;
  const auto full = Optimize(problem, params);
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(full.aborted_by_bound);

  params.makespan_bound = full.makespan / 2;
  const auto bounded = Optimize(problem, params);
  ASSERT_TRUE(bounded.ok());  // an abort is not an error
  EXPECT_TRUE(bounded.aborted_by_bound);
  EXPECT_GE(bounded.makespan, params.makespan_bound);
  EXPECT_LT(bounded.makespan, full.makespan);
  // The abandoned run did strictly less admission work.
  EXPECT_LT(bounded.admission_rounds, full.admission_rounds);
}

// A bound the schedule never reaches is a no-op: bit-identical result,
// flag clear.
TEST(OptimizerTest, MakespanBoundAboveFinalIsNoop) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  OptimizerParams params;
  params.tam_width = 32;
  const auto full = Optimize(problem, params);
  ASSERT_TRUE(full.ok());

  params.makespan_bound = full.makespan + 1;
  const auto bounded = Optimize(problem, params);
  ASSERT_TRUE(bounded.ok());
  EXPECT_FALSE(bounded.aborted_by_bound);
  EXPECT_EQ(bounded.makespan, full.makespan);
  EXPECT_EQ(bounded.admission_rounds, full.admission_rounds);
  EXPECT_EQ(bounded.candidates_examined, full.candidates_examined);
  ASSERT_EQ(bounded.schedule.entries().size(), full.schedule.entries().size());
  for (std::size_t i = 0; i < full.schedule.entries().size(); ++i) {
    const auto& a = full.schedule.entries()[i];
    const auto& b = bounded.schedule.entries()[i];
    EXPECT_EQ(a.core, b.core);
    EXPECT_EQ(a.assigned_width, b.assigned_width);
    ASSERT_EQ(a.segments.size(), b.segments.size());
    for (std::size_t s = 0; s < a.segments.size(); ++s) {
      EXPECT_EQ(a.segments[s].span, b.segments[s].span);
      EXPECT_EQ(a.segments[s].width, b.segments[s].width);
    }
  }
}

// A bound exactly at the final makespan must abort (>=, not >): the
// improver passes its incumbent, and "ties the incumbent" is a rejection.
TEST(OptimizerTest, MakespanBoundAtFinalAborts) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  OptimizerParams params;
  params.tam_width = 32;
  const auto full = Optimize(problem, params);
  ASSERT_TRUE(full.ok());

  params.makespan_bound = full.makespan;
  const auto bounded = Optimize(problem, params);
  ASSERT_TRUE(bounded.ok());
  EXPECT_TRUE(bounded.aborted_by_bound);
  EXPECT_GE(bounded.makespan, full.makespan);
}

TEST(OptimizerTest, NonPreemptiveSchedulesHaveOneSegmentPerCore) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  OptimizerParams params;
  params.tam_width = 32;
  params.allow_preemption = false;
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  for (const auto& entry : result.schedule.entries()) {
    EXPECT_EQ(entry.segments.size(), 1u)
        << "core " << entry.core << " was preempted in non-preemptive mode";
    EXPECT_EQ(entry.preemptions, 0);
  }
}

}  // namespace
}  // namespace soctest
