#include "tdv/ate_model.h"

#include <gtest/gtest.h>

#include "soc/benchmarks.h"

namespace soctest {
namespace {

TEST(AteModelTest, SingleBufferNoReloads) {
  SweepPoint point{32, 100'000, 3'200'000};
  AteParams params;
  params.channels = 64;
  params.buffer_depth_bits = 200'000;
  const AteCost cost = EvaluateAte(point, params, 1);
  EXPECT_TRUE(cost.fits_single_buffer);
  EXPECT_EQ(cost.reloads_per_pin, 0);
  EXPECT_EQ(cost.per_device_cycles, 100'000);
  EXPECT_EQ(cost.sites, 2);
}

TEST(AteModelTest, ReloadsChargedWhenDepthExceedsBuffer) {
  SweepPoint point{32, 500'000, 16'000'000};
  AteParams params;
  params.buffer_depth_bits = 200'000;
  params.reload_cost_cycles = 1'000'000;
  const AteCost cost = EvaluateAte(point, params, 1);
  EXPECT_FALSE(cost.fits_single_buffer);
  EXPECT_EQ(cost.reloads_per_pin, 2);  // ceil(500k/200k) - 1
  EXPECT_EQ(cost.per_device_cycles, 500'000 + 2 * 1'000'000);
}

TEST(AteModelTest, MultisiteWavesComputed) {
  SweepPoint point{24, 100'000, 2'400'000};
  AteParams params;
  params.channels = 96;  // 4 sites
  params.buffer_depth_bits = 1'000'000;
  const AteCost cost = EvaluateAte(point, params, 10);
  EXPECT_EQ(cost.sites, 4);
  EXPECT_EQ(cost.batch_cycles, 3 * 100'000);  // ceil(10/4) = 3 waves
}

TEST(AteModelTest, WiderThanTesterStillOneSite) {
  SweepPoint point{128, 50'000, 6'400'000};
  AteParams params;
  params.channels = 96;
  const AteCost cost = EvaluateAte(point, params, 2);
  EXPECT_EQ(cost.sites, 1);
  EXPECT_EQ(cost.batch_cycles, 2 * cost.per_device_cycles);
}

TEST(AteModelTest, BestPointBalancesSitesAndReloads) {
  // Two operating points: wide-and-fast (1 site) vs narrow-and-slow (4
  // sites). For a large batch the narrow point must win.
  std::vector<SweepPoint> sweep = {
      {96, 100'000, 9'600'000},  // 1 site
      {24, 180'000, 4'320'000},  // 4 sites
  };
  AteParams params;
  params.channels = 96;
  params.buffer_depth_bits = 1'000'000;
  const std::size_t best = BestAtePoint(sweep, params, 16);
  EXPECT_EQ(best, 1u);
}

TEST(AteModelTest, ReloadPenaltyCanFlipTheChoice) {
  // The narrow point's depth exceeds the buffer; with a punishing reload
  // cost the wide single-buffer point wins despite fewer sites.
  std::vector<SweepPoint> sweep = {
      {96, 100'000, 9'600'000},  // fits buffer
      {24, 300'000, 7'200'000},  // needs reloads
  };
  AteParams params;
  params.channels = 96;
  params.buffer_depth_bits = 120'000;
  params.reload_cost_cycles = 10'000'000;
  const std::size_t best = BestAtePoint(sweep, params, 16);
  EXPECT_EQ(best, 0u);
}

TEST(AteModelTest, RealSweepProducesConsistentCosts) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  SweepOptions options;
  options.min_width = 8;
  options.max_width = 48;
  const auto sweep = SweepWidths(problem, options);
  ASSERT_FALSE(sweep.empty());
  AteParams params;
  params.channels = 96;
  params.buffer_depth_bits = 30'000;
  for (const auto& point : sweep) {
    const AteCost cost = EvaluateAte(point, params, 8);
    EXPECT_GE(cost.per_device_cycles, point.test_time);
    EXPECT_GE(cost.batch_cycles, cost.per_device_cycles);
  }
  const std::size_t best = BestAtePoint(sweep, params, 8);
  EXPECT_LT(best, sweep.size());
}

}  // namespace
}  // namespace soctest
