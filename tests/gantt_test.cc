#include "core/gantt.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "soc/benchmarks.h"

namespace soctest {
namespace {

class GanttTest : public ::testing::Test {
 protected:
  void SetUp() override {
    problem_ = TestProblem::FromSoc(MakeD695());
    OptimizerParams params;
    params.tam_width = 32;
    auto result = Optimize(problem_, params);
    ASSERT_TRUE(result.ok());
    schedule_ = std::move(result.schedule);
  }

  TestProblem problem_;
  Schedule schedule_;
};

TEST_F(GanttTest, CoreGanttListsEveryCore) {
  const std::string g = RenderCoreGantt(problem_.soc, schedule_);
  for (const auto& core : problem_.soc.cores()) {
    EXPECT_NE(g.find(core.name), std::string::npos) << core.name;
  }
  EXPECT_NE(g.find("W=32"), std::string::npos);
}

TEST_F(GanttTest, CoreGanttShowsWidthAnnotations) {
  GanttOptions options;
  options.show_widths = true;
  const std::string with = RenderCoreGantt(problem_.soc, schedule_, options);
  EXPECT_NE(with.find("w="), std::string::npos);
  options.show_widths = false;
  const std::string without = RenderCoreGantt(problem_.soc, schedule_, options);
  EXPECT_EQ(without.find("  w="), std::string::npos);
}

TEST_F(GanttTest, WireGanttHasOneRowPerWire) {
  const auto wires = AssignWires(schedule_);
  ASSERT_TRUE(wires.has_value());
  const std::string g = RenderWireGantt(problem_.soc, schedule_, *wires);
  // Rows w00..w31.
  EXPECT_NE(g.find("w00"), std::string::npos);
  EXPECT_NE(g.find("w31"), std::string::npos);
  EXPECT_EQ(g.find("w32"), std::string::npos);
}

TEST_F(GanttTest, RespectsWidthChars) {
  GanttOptions options;
  options.width_chars = 40;
  const std::string g = RenderCoreGantt(problem_.soc, schedule_, options);
  // No line massively exceeds label + 40 chars + annotations.
  std::size_t start = 0;
  while (start < g.size()) {
    const std::size_t end = g.find('\n', start);
    const std::size_t len =
        (end == std::string::npos ? g.size() : end) - start;
    EXPECT_LT(len, 80u);
    if (end == std::string::npos) break;
    start = end + 1;
  }
}

TEST(GanttEmptyTest, HandlesZeroMakespan) {
  Soc soc("tiny");
  CoreSpec c;
  c.name = "c";
  c.num_inputs = 1;
  c.num_outputs = 1;
  c.num_patterns = 1;
  soc.AddCore(c);
  Schedule schedule("tiny", 4);
  CoreSchedule entry;
  entry.core = 0;
  entry.assigned_width = 1;
  schedule.Add(entry);  // no segments
  const std::string g = RenderCoreGantt(soc, schedule);
  EXPECT_FALSE(g.empty());
}

}  // namespace
}  // namespace soctest
