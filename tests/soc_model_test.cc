#include <gtest/gtest.h>

#include "soc/core_spec.h"
#include "soc/soc.h"

namespace soctest {
namespace {

CoreSpec MakeCore(const std::string& name) {
  CoreSpec c;
  c.name = name;
  c.num_inputs = 4;
  c.num_outputs = 3;
  c.num_patterns = 10;
  c.scan_chain_lengths = {8, 6};
  return c;
}

TEST(CoreSpecTest, DerivedQuantities) {
  CoreSpec c = MakeCore("x");
  c.num_bidirs = 2;
  EXPECT_EQ(c.TotalScanCells(), 14);
  EXPECT_EQ(c.ScanInIoCells(), 6);   // 4 inputs + 2 bidirs
  EXPECT_EQ(c.ScanOutIoCells(), 5);  // 3 outputs + 2 bidirs
  EXPECT_EQ(c.BitsPerPattern(), (6 + 14) + (5 + 14));
  EXPECT_EQ(c.TotalTestBits(), c.BitsPerPattern() * 10);
}

TEST(CoreSpecTest, MaxUsefulWidthCombinational) {
  CoreSpec c;
  c.name = "comb";
  c.num_inputs = 10;
  c.num_outputs = 3;
  c.num_patterns = 5;
  EXPECT_EQ(c.MaxUsefulWidth(), 10);  // max(in, out) IO cells, no chains
}

TEST(CoreSpecTest, MaxUsefulWidthSequential) {
  const CoreSpec c = MakeCore("seq");
  EXPECT_EQ(c.MaxUsefulWidth(), 2 + 4);  // chains + max(in, out)
}

TEST(CoreSpecTest, ValidateAcceptsWellFormed) {
  EXPECT_FALSE(MakeCore("ok").Validate().has_value());
}

TEST(CoreSpecTest, ValidateRejectsBadSpecs) {
  CoreSpec c = MakeCore("bad");
  c.num_patterns = 0;
  EXPECT_TRUE(c.Validate().has_value());

  c = MakeCore("bad");
  c.scan_chain_lengths = {5, 0};
  EXPECT_TRUE(c.Validate().has_value());

  c = MakeCore("bad");
  c.num_inputs = -1;
  EXPECT_TRUE(c.Validate().has_value());

  c = MakeCore("");
  EXPECT_TRUE(c.Validate().has_value());

  c = MakeCore("bad");
  c.power = -5;
  EXPECT_TRUE(c.Validate().has_value());

  c = MakeCore("bad");
  c.max_preemptions = -1;
  EXPECT_TRUE(c.Validate().has_value());
}

TEST(CoreSpecTest, ValidateRejectsEmptyCore) {
  CoreSpec c;
  c.name = "empty";
  c.num_patterns = 1;
  EXPECT_TRUE(c.Validate().has_value());
}

TEST(SocTest, AddAndFindCores) {
  Soc soc("test");
  const CoreId a = soc.AddCore(MakeCore("a"));
  const CoreId b = soc.AddCore(MakeCore("b"));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(soc.num_cores(), 2);
  EXPECT_EQ(soc.FindCore("b"), b);
  EXPECT_EQ(soc.FindCore("zzz"), kNoCore);
  EXPECT_EQ(soc.core(a).name, "a");
}

TEST(SocTest, ChildrenOf) {
  Soc soc("test");
  const CoreId parent = soc.AddCore(MakeCore("parent"));
  CoreSpec child1 = MakeCore("child1");
  child1.parent = parent;
  CoreSpec child2 = MakeCore("child2");
  child2.parent = parent;
  soc.AddCore(child1);
  soc.AddCore(child2);
  soc.AddCore(MakeCore("free"));
  const auto kids = soc.ChildrenOf(parent);
  EXPECT_EQ(kids.size(), 2u);
}

TEST(SocTest, TotalTestBitsSumsCores) {
  Soc soc("test");
  soc.AddCore(MakeCore("a"));
  soc.AddCore(MakeCore("b"));
  EXPECT_EQ(soc.TotalTestBits(), 2 * MakeCore("x").TotalTestBits());
}

TEST(SocTest, ValidateCatchesDuplicateNames) {
  Soc soc("test");
  soc.AddCore(MakeCore("a"));
  soc.AddCore(MakeCore("a"));
  EXPECT_TRUE(soc.Validate().has_value());
}

TEST(SocTest, ValidateCatchesHierarchyProblems) {
  Soc soc("test");
  CoreSpec a = MakeCore("a");
  soc.AddCore(a);
  // Parent out of range.
  CoreSpec b = MakeCore("b");
  b.parent = 99;
  soc.AddCore(b);
  EXPECT_TRUE(soc.Validate().has_value());
}

TEST(SocTest, ValidateCatchesHierarchyCycle) {
  Soc soc("test");
  soc.AddCore(MakeCore("a"));
  soc.AddCore(MakeCore("b"));
  soc.mutable_core(0).parent = 1;
  soc.mutable_core(1).parent = 0;
  EXPECT_TRUE(soc.Validate().has_value());
}

TEST(SocTest, ValidateCatchesSelfParent) {
  Soc soc("test");
  soc.AddCore(MakeCore("a"));
  soc.mutable_core(0).parent = 0;
  EXPECT_TRUE(soc.Validate().has_value());
}

TEST(SocTest, ValidateRejectsEmptySoc) {
  Soc soc("empty");
  EXPECT_TRUE(soc.Validate().has_value());
  Soc unnamed;
  unnamed.AddCore(MakeCore("a"));
  EXPECT_TRUE(unnamed.Validate().has_value());
}

TEST(SocTest, ValidateAcceptsDeepHierarchy) {
  Soc soc("deep");
  soc.AddCore(MakeCore("l0"));
  for (int i = 1; i < 5; ++i) {
    CoreSpec c = MakeCore("l" + std::to_string(i));
    c.parent = i - 1;
    soc.AddCore(c);
  }
  EXPECT_FALSE(soc.Validate().has_value());
}

}  // namespace
}  // namespace soctest
