// End-to-end pipeline tests: parse -> co-optimize -> validate -> wire-assign
// -> analyze, on all four benchmark SOCs and from .soc text.
#include <gtest/gtest.h>

#include "baseline/lower_bound.h"
#include "baseline/shelf.h"
#include "core/gantt.h"
#include "core/optimizer.h"
#include "core/validator.h"
#include "core/wire_assign.h"
#include "soc/benchmarks.h"
#include "soc/soc_parser.h"
#include "tdv/effective_width.h"

namespace soctest {
namespace {

class BenchmarkPipelineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkPipelineTest, FullPipelineAllModes) {
  const Soc soc = BenchmarkByName(GetParam());
  ASSERT_GT(soc.num_cores(), 0);

  for (const bool power : {false, true}) {
    for (const bool preemptive : {false, true}) {
      TestProblem problem = MakeBenchmarkProblem(soc, power);
      OptimizerParams params;
      params.tam_width = 32;
      params.allow_preemption = preemptive;
      const auto result = Optimize(problem, params);
      ASSERT_TRUE(result.ok()) << GetParam();

      // Constraints and structure hold.
      const auto violations = ValidateSchedule(problem, result.schedule);
      EXPECT_TRUE(violations.empty())
          << GetParam() << " power=" << power << " pre=" << preemptive << "\n"
          << FormatViolations(violations);

      // Physically realizable (fork/merge wire assignment exists).
      const auto wires = AssignWires(result.schedule);
      ASSERT_TRUE(wires.has_value());
      EXPECT_FALSE(CheckWireAssignment(result.schedule, *wires).has_value());

      // Sound vs. lower bound and not absurdly loose.
      const auto lb = ComputeLowerBound(soc, 32, params.w_max);
      EXPECT_GE(result.makespan, lb.value());
      EXPECT_LE(result.makespan, 3 * lb.value());

      // Gantt renders every core.
      const std::string gantt = RenderCoreGantt(problem.soc, result.schedule);
      for (const auto& core : problem.soc.cores()) {
        EXPECT_NE(gantt.find(core.name), std::string::npos);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkPipelineTest,
                         ::testing::Values("d695", "p22810s", "p34392s",
                                           "p93791s"));

TEST(PipelineFromTextTest, ParseScheduleValidate) {
  const char* text = R"(
soc mini
core cpu
  inputs 24
  outputs 24
  patterns 120
  scanchains 40 40 36 30
end
core dsp
  inputs 16
  outputs 20
  patterns 80
  scanchains 24 24 24
  maxpreemptions 1
end
core mem
  inputs 30
  outputs 30
  patterns 60
end
core bist_ctl
  inputs 4
  outputs 4
  patterns 500
  resources 1
end
core bist_ram
  inputs 4
  outputs 4
  patterns 400
  resources 1
end
precedence mem < cpu
concurrency cpu ~ dsp
)";
  const auto parsed = ParseSocText(text);
  ASSERT_TRUE(std::holds_alternative<ParsedSoc>(parsed))
      << std::get<ParseError>(parsed).message;
  TestProblem problem = TestProblem::FromParsed(std::get<ParsedSoc>(parsed));

  OptimizerParams params;
  params.tam_width = 16;
  params.allow_preemption = true;
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok()) << *result.error;
  const auto violations = ValidateSchedule(problem, result.schedule);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);

  // Declared constraints visibly shaped the schedule.
  const CoreId mem = problem.soc.FindCore("mem");
  const CoreId cpu = problem.soc.FindCore("cpu");
  EXPECT_GE(result.schedule.FindCore(cpu)->BeginTime(),
            result.schedule.FindCore(mem)->EndTime());
}

TEST(PipelineTest, TdvAnalysisFollowsScheduling) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  SweepOptions options;
  options.max_width = 40;
  const auto sweep = SweepWidths(problem, options);
  ASSERT_FALSE(sweep.empty());
  const TradeoffRow row = MakeTradeoffRow(sweep, 0.5);
  EXPECT_GE(row.effective_width, 1);
  EXPECT_LE(row.effective_width, 40);
  EXPECT_GE(row.min_cost, 1.0 - 1e-12);
}

TEST(PipelineTest, BaselinesAreDominatedEndToEnd) {
  const Soc soc = MakeD695();
  const TestProblem problem = TestProblem::FromSoc(soc);
  OptimizerParams params;
  params.tam_width = 24;
  const auto flexible = OptimizeBestOverParams(problem, params);
  ASSERT_TRUE(flexible.ok());
  const Time shelf = ShelfPack(soc, 24, {}).Makespan();
  EXPECT_LE(flexible.makespan, shelf);
}

TEST(PipelineTest, SerializedBenchmarksStayEquivalent) {
  // Round-trip d695 through text and check the schedule is identical.
  const Soc soc = MakeD695();
  const auto parsed = ParseSocText(SerializeSoc(soc));
  ASSERT_TRUE(std::holds_alternative<ParsedSoc>(parsed));
  const TestProblem a = TestProblem::FromSoc(soc);
  const TestProblem b = TestProblem::FromParsed(std::get<ParsedSoc>(parsed));
  OptimizerParams params;
  params.tam_width = 32;
  EXPECT_EQ(Optimize(a, params).makespan, Optimize(b, params).makespan);
}

}  // namespace
}  // namespace soctest
