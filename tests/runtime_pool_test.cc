// Tests for the runtime layer: ThreadPool (the shared concurrency primitive)
// and WorkspacePool (per-worker ScheduleWorkspace pooling). The pool tests
// moved here from search_driver_test.cc when the pool was promoted out of
// search/ — the determinism conventions they pin down are now inherited by
// every parallel consumer (search, improver, sweeps, batch serving).
#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "core/optimizer.h"
#include "runtime/workspace_pool.h"
#include "soc/benchmarks.h"

namespace soctest {
namespace {

TEST(ThreadPoolTest, ResolveThreadCountGuards) {
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
  // 0 means "use the hardware", which is always at least one thread.
  EXPECT_GE(ResolveThreadCount(0), 1);
  // Negative requests clamp to 1 instead of spawning nothing.
  EXPECT_EQ(ResolveThreadCount(-1), 1);
  EXPECT_EQ(ResolveThreadCount(-100), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.ParallelFor(1, [&](std::size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);  // threads=1 is literally the serial code path
}

// The contract WorkspacePool relies on: a worker slot is owned by exactly
// one concurrent drain loop, so per-slot scratch needs no synchronization.
TEST(ThreadPoolTest, ParallelForWorkerSlotsAreExclusive) {
  ThreadPool pool(4);
  constexpr std::size_t kItems = 512;
  // One counter per slot, incremented non-atomically under the exclusivity
  // guarantee; a violated guarantee shows up as lost updates (and as a data
  // race under the CI TSan-less ASan job's torn reads, caught by the total).
  std::vector<int> per_slot(static_cast<std::size_t>(pool.size()), 0);
  std::vector<int> slot_of(kItems, -1);
  pool.ParallelForWorker(kItems, [&](std::size_t worker, std::size_t i) {
    per_slot[worker] += 1;
    slot_of[i] = static_cast<int>(worker);
  });
  int total = 0;
  for (const int c : per_slot) total += c;
  EXPECT_EQ(total, static_cast<int>(kItems));
  for (std::size_t i = 0; i < kItems; ++i) {
    ASSERT_GE(slot_of[i], 0) << "index " << i << " never ran";
    ASSERT_LT(slot_of[i], pool.size());
  }
}

TEST(WorkspacePoolTest, SizesMatchPoolAndClampToOne) {
  ThreadPool pool(3);
  WorkspacePool sized(pool);
  EXPECT_EQ(sized.size(), 3);
  WorkspacePool clamped(0);
  EXPECT_EQ(clamped.size(), 1);
  WorkspacePool negative(-5);
  EXPECT_EQ(negative.size(), 1);
}

TEST(WorkspacePoolTest, SlotsAreDistinctAndStable) {
  WorkspacePool pool(4);
  std::set<const ScheduleWorkspace*> distinct;
  for (std::size_t w = 0; w < 4; ++w) distinct.insert(&pool.slot(w));
  EXPECT_EQ(distinct.size(), 4u);
  // References stay valid across calls (workers cache them per drain loop).
  EXPECT_EQ(&pool.slot(2), &pool.slot(2));
}

// Reusing one workspace across runs is bit-identical to fresh workspaces —
// the guarantee that makes pooling safe everywhere it is used.
TEST(WorkspacePoolTest, ReuseIsBitIdenticalToFreshWorkspace) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  const CompiledProblem compiled(problem);
  ASSERT_TRUE(compiled.ok());
  WorkspacePool pool(1);
  for (const int width : {16, 24, 16, 32}) {  // revisit 16: cached rects path
    OptimizerParams params;
    params.tam_width = width;
    const OptimizerResult fresh = Optimize(compiled, params);
    const OptimizerResult reused = Optimize(compiled, params, pool.slot(0));
    ASSERT_TRUE(fresh.ok());
    ASSERT_TRUE(reused.ok());
    EXPECT_EQ(fresh.makespan, reused.makespan) << "W=" << width;
    ASSERT_EQ(fresh.schedule.entries().size(), reused.schedule.entries().size());
  }
}

}  // namespace
}  // namespace soctest
