// Cross-module consistency checks: quantities reported by different modules
// for the same schedule/SOC must agree exactly.
#include <gtest/gtest.h>

#include "baseline/lower_bound.h"
#include "core/idle_analysis.h"
#include "core/optimizer.h"
#include "core/wire_assign.h"
#include "io/schedule_export.h"
#include "soc/benchmarks.h"
#include "tdv/data_volume.h"
#include "util/strings.h"

namespace soctest {
namespace {

class ConsistencyTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    problem_ = TestProblem::FromSoc(MakeD695());
    OptimizerParams params;
    params.tam_width = GetParam();
    auto result = Optimize(problem_, params);
    ASSERT_TRUE(result.ok());
    result_ = std::move(result);
  }

  TestProblem problem_;
  OptimizerResult result_;
};

TEST_P(ConsistencyTest, SweepPointMatchesDirectOptimization) {
  SweepOptions options;
  options.min_width = GetParam();
  options.max_width = GetParam();
  const auto sweep = SweepWidths(problem_, options);
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_EQ(sweep[0].test_time, result_.makespan);
  EXPECT_EQ(sweep[0].data_volume,
            static_cast<std::int64_t>(GetParam()) * result_.makespan);
}

TEST_P(ConsistencyTest, IdlePlusUsedEqualsBinArea) {
  const IdleReport report = AnalyzeIdle(result_.schedule);
  EXPECT_EQ(report.used_area + report.total_idle_area,
            static_cast<std::int64_t>(GetParam()) * result_.makespan);
}

TEST_P(ConsistencyTest, WireGrantAreaEqualsUsedArea) {
  const auto wires = AssignWires(result_.schedule);
  ASSERT_TRUE(wires.has_value());
  std::int64_t grant_area = 0;
  for (const auto& grant : wires->grants) {
    grant_area += static_cast<std::int64_t>(grant.wires.size()) *
                  grant.span.length();
  }
  EXPECT_EQ(grant_area, result_.schedule.UsedArea());
}

TEST_P(ConsistencyTest, JsonMakespanMatchesSchedule) {
  const std::string json = ScheduleToJson(problem_.soc, result_.schedule);
  EXPECT_NE(json.find(StrFormat("\"makespan\": %lld",
                                static_cast<long long>(result_.makespan))),
            std::string::npos);
}

TEST_P(ConsistencyTest, AssignmentTimesSumToActiveTime) {
  Time total = 0;
  for (const auto& a : result_.assignments) total += a.scheduled_time;
  EXPECT_EQ(total, result_.schedule.TotalActiveTime());
}

TEST_P(ConsistencyTest, PeakWidthNeverExceedsBin) {
  EXPECT_LE(result_.schedule.PeakWidth(), GetParam());
  // The schedule actually uses the TAM: peak is at least the widest core.
  int max_core_width = 0;
  for (const auto& e : result_.schedule.entries()) {
    max_core_width = std::max(max_core_width, e.assigned_width);
  }
  EXPECT_GE(result_.schedule.PeakWidth(), max_core_width);
}

TEST_P(ConsistencyTest, LowerBoundAreaMatchesRectangles) {
  const auto rects = BuildRectangleSets(problem_.soc, 64, GetParam());
  std::int64_t area = 0;
  for (const auto& r : rects) area += r.MinArea();
  const auto lb = ComputeLowerBound(problem_.soc, GetParam(), 64);
  EXPECT_EQ(lb.total_min_area, area);
}

INSTANTIATE_TEST_SUITE_P(Widths, ConsistencyTest,
                         ::testing::Values(8, 16, 24, 32, 48, 64),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "W" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace soctest
