// Reference scheduler — a frozen copy of the pre-PR-7 TamScheduleOptimizer
// admission loop, kept test-only as the oracle for the hot-path refactor.
//
// The production scheduler (core/optimizer.cc) was restructured for speed:
// struct-of-arrays core state, a width-bucketed admission index, heap-based
// candidate selection with early exit, and per-width lookup tables. All of
// that is required to be a pure performance change — bit-identical schedules,
// assignments, and admission-round counts for every input. This file keeps
// the original rebuild-everything / sort-everything implementation (array-of-
// structs state, full candidate sort per round, linear scans over all cores)
// so the property suite can diff the two end to end.
//
// Deliberately unoptimized and allocation-heavy: its value is being obviously
// equivalent to the historical code, not being fast. Test-only — never link
// this into the library or tools.
#pragma once

#include "core/optimizer.h"

namespace soctest {
namespace testref {

// Runs the frozen reference algorithm against pre-compiled artifacts.
// Equivalent (bit-for-bit) to soctest::Optimize(compiled, params) before the
// admission-index refactor; the new scheduler must keep matching it.
OptimizerResult ReferenceOptimize(const CompiledProblem& compiled,
                                  const OptimizerParams& params);

// Compatibility overload: compiles privately at params.w_max, then runs.
OptimizerResult ReferenceOptimize(const TestProblem& problem,
                                  const OptimizerParams& params);

}  // namespace testref
}  // namespace soctest
