// Tests for util/histogram.h — the fixed-bucket latency histogram behind the
// server's p50/p99 service-time counters.
#include "util/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace soctest {
namespace {

TEST(FixedBucketHistogramTest, EmptyHistogramReportsZero) {
  FixedBucketHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(50.0), 0);
  EXPECT_EQ(h.Percentile(99.0), 0);
}

TEST(FixedBucketHistogramTest, BucketUpperBoundsArePowersOfTwoMinusOne) {
  EXPECT_EQ(FixedBucketHistogram::BucketUpperBound(0), 0);
  EXPECT_EQ(FixedBucketHistogram::BucketUpperBound(1), 1);
  EXPECT_EQ(FixedBucketHistogram::BucketUpperBound(2), 3);
  EXPECT_EQ(FixedBucketHistogram::BucketUpperBound(3), 7);
  EXPECT_EQ(FixedBucketHistogram::BucketUpperBound(10), 1023);
}

TEST(FixedBucketHistogramTest, PercentileReportsConservativeUpperBound) {
  FixedBucketHistogram h;
  // 700 has bit width 10 -> bucket 10, upper bound 1023: the reported p50
  // must bound the true value from above, never below.
  h.Record(700);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.Percentile(50.0), 1023);
  EXPECT_EQ(h.Percentile(99.0), 1023);
}

TEST(FixedBucketHistogramTest, NearestRankSplitsAcrossBuckets) {
  FixedBucketHistogram h;
  // 99 values in bucket 3 (values of 5: range [4,8)) and 1 value far above:
  // p50 sits in the low bucket, p99.9-ish rank lands the high one only at
  // p100.
  for (int i = 0; i < 99; ++i) h.Record(5);
  h.Record(1 << 20);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.Percentile(50.0), 7);
  EXPECT_EQ(h.Percentile(99.0), 7);
  EXPECT_EQ(h.Percentile(100.0), (1 << 21) - 1);
}

TEST(FixedBucketHistogramTest, ZeroAndNegativeClampToBucketZero) {
  FixedBucketHistogram h;
  h.Record(0);
  h.Record(-17);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.Percentile(50.0), 0);
  EXPECT_EQ(h.Percentile(100.0), 0);
}

TEST(FixedBucketHistogramTest, HugeValuesSaturateIntoLastBucket) {
  FixedBucketHistogram h;
  h.Record(std::int64_t{1} << 62);  // way past the 40-bucket range
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.Percentile(50.0),
            FixedBucketHistogram::BucketUpperBound(
                FixedBucketHistogram::kBuckets - 1));
}

TEST(FixedBucketHistogramTest, ConcurrentRecordsAllLand) {
  FixedBucketHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Record((t + 1) * 100);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::int64_t>(kThreads) * kPerThread);
  // All values live in [100, 800] -> buckets 7..10; the p100 upper bound is
  // 1023 and the p1 lower bucket bound is 127.
  EXPECT_EQ(h.Percentile(100.0), 1023);
  EXPECT_EQ(h.Percentile(1.0), 127);
}

}  // namespace
}  // namespace soctest
