#include "core/conflict.h"

#include <gtest/gtest.h>

namespace soctest {
namespace {

class ConflictPolicyTest : public ::testing::Test {
 protected:
  ConflictPolicyTest()
      : precedence_(4), concurrency_(4), power_({10, 20, 30, 40}, 50) {}

  PrecedenceGraph precedence_;
  ConcurrencySet concurrency_;
  PowerModel power_;
  std::vector<bool> completed_ = std::vector<bool>(4, false);
};

TEST_F(ConflictPolicyTest, NoConstraintsNoBlock) {
  ConflictPolicy policy(&precedence_, &concurrency_, &power_);
  EXPECT_FALSE(policy.Blocked(0, completed_, {}, 0).has_value());
}

TEST_F(ConflictPolicyTest, PrecedenceBlocksUntilPredecessorCompletes) {
  precedence_.Add(0, 1);
  ConflictPolicy policy(&precedence_, &concurrency_, &power_);
  EXPECT_TRUE(policy.Blocked(1, completed_, {}, 0).has_value());
  completed_[0] = true;
  EXPECT_FALSE(policy.Blocked(1, completed_, {}, 0).has_value());
}

TEST_F(ConflictPolicyTest, PrecedenceOnlyConstrainsSuccessor) {
  precedence_.Add(0, 1);
  ConflictPolicy policy(&precedence_, &concurrency_, &power_);
  EXPECT_FALSE(policy.Blocked(0, completed_, {}, 0).has_value());
}

TEST_F(ConflictPolicyTest, ConcurrencyBlocksWhileActive) {
  concurrency_.Add(1, 2);
  ConflictPolicy policy(&precedence_, &concurrency_, &power_);
  EXPECT_TRUE(policy.Blocked(1, completed_, {2}, 0).has_value());
  EXPECT_FALSE(policy.Blocked(1, completed_, {3}, 0).has_value());
}

TEST_F(ConflictPolicyTest, PowerBudgetEnforced) {
  ConflictPolicy policy(&precedence_, &concurrency_, &power_);
  // Core 3 consumes 40; with 20 already drawn the 50 budget is exceeded.
  EXPECT_TRUE(policy.Blocked(3, completed_, {1}, 20).has_value());
  EXPECT_FALSE(policy.Blocked(2, completed_, {1}, 20).has_value());
}

TEST_F(ConflictPolicyTest, UnlimitedPowerNeverBlocks) {
  PowerModel unlimited;
  ConflictPolicy policy(&precedence_, &concurrency_, &unlimited);
  EXPECT_FALSE(policy.Blocked(3, completed_, {}, 1 << 30).has_value());
}

TEST_F(ConflictPolicyTest, ReasonsAreInformative) {
  precedence_.Add(0, 1);
  ConflictPolicy policy(&precedence_, &concurrency_, &power_);
  const auto reason = policy.Blocked(1, completed_, {}, 0);
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("precedence"), std::string::npos);
}

TEST_F(ConflictPolicyTest, MultipleActiveConflictsDetected) {
  concurrency_.Add(0, 3);
  ConflictPolicy policy(&precedence_, &concurrency_, &power_);
  EXPECT_TRUE(policy.Blocked(0, completed_, {1, 2, 3}, 0).has_value());
}

// The CoreBitset overload (the scheduler's hot-path completion state) must
// answer exactly like the vector<bool> overload for identical membership,
// across every constraint kind.
TEST_F(ConflictPolicyTest, BitsetOverloadMatchesVectorOverload) {
  precedence_.Add(0, 1);
  concurrency_.Add(1, 2);
  ConflictPolicy policy(&precedence_, &concurrency_, &power_);

  CoreBitset completed_bits;
  completed_bits.AssignClear(4);
  const std::vector<CoreId> active_sets[] = {{}, {2}, {3}, {1, 2, 3}};
  for (int done = 0; done < 2; ++done) {
    if (done == 1) {
      completed_[0] = true;
      completed_bits.set(0);
    }
    for (const auto& active : active_sets) {
      for (CoreId c = 0; c < 4; ++c) {
        for (std::int64_t drawn : {0, 20, 45}) {
          EXPECT_EQ(policy.Blocked(c, completed_, active, drawn).has_value(),
                    policy.Blocked(c, completed_bits, active, drawn).has_value())
              << "core " << c << " done=" << done << " power=" << drawn;
        }
      }
    }
  }
}

TEST_F(ConflictPolicyTest, BitsetPrecedenceUnblocksOnCompletion) {
  precedence_.Add(0, 1);
  ConflictPolicy policy(&precedence_, &concurrency_, &power_);
  CoreBitset completed;
  completed.AssignClear(4);
  EXPECT_TRUE(policy.Blocked(1, completed, {}, 0).has_value());
  completed.set(0);
  EXPECT_FALSE(policy.Blocked(1, completed, {}, 0).has_value());
}

}  // namespace
}  // namespace soctest
