#include "util/strings.h"

#include <gtest/gtest.h>

namespace soctest {
namespace {

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r\n"), "x");
  EXPECT_EQ(Trim("nospace"), "nospace");
}

TEST(TrimTest, EmptyAndAllWhitespace) {
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   \t "), "");
}

TEST(SplitTest, PreservesEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, SingleFieldNoSeparator) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitWhitespaceTest, DropsEmptyTokens) {
  const auto parts = SplitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWhitespaceTest, EmptyInput) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(SplitLinesTest, HandlesCrLf) {
  const auto lines = SplitLines("a\r\nb\nc");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  EXPECT_EQ(lines[2], "c");
}

TEST(ParseIntTest, ValidValues) {
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt("-17"), -17);
  EXPECT_EQ(ParseInt("  99 "), 99);
  EXPECT_EQ(ParseInt("0"), 0);
}

TEST(ParseIntTest, RejectsGarbage) {
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("12x").has_value());
  EXPECT_FALSE(ParseInt("x12").has_value());
  EXPECT_FALSE(ParseInt("1.5").has_value());
  EXPECT_FALSE(ParseInt("1 2").has_value());
}

TEST(ParseUintTest, CoversFullRangeAndRejectsSigns) {
  EXPECT_EQ(ParseUint("42"), 42u);
  EXPECT_EQ(ParseUint("0"), 0u);
  // Above int64 range — the values ParseInt cannot represent.
  EXPECT_EQ(ParseUint("9223372036854775808"), 9223372036854775808ull);
  EXPECT_EQ(ParseUint("18446744073709551615"), 18446744073709551615ull);
  EXPECT_FALSE(ParseUint("18446744073709551616").has_value());  // 2^64
  EXPECT_FALSE(ParseUint("-1").has_value());
  EXPECT_FALSE(ParseUint("").has_value());
  EXPECT_FALSE(ParseUint("12x").has_value());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.2.3").has_value());
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("precedence a < b", "precedence"));
  EXPECT_FALSE(StartsWith("pre", "precedence"));
}

TEST(ToLowerTest, MixedCase) { EXPECT_EQ(ToLower("SoC TeSt"), "soc test"); }

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.234), "1.23");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(WithCommasTest, GroupsThousands) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
  EXPECT_EQ(WithCommas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace soctest
