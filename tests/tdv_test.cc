#include "tdv/data_volume.h"

#include <gtest/gtest.h>

#include "soc/benchmarks.h"
#include "wrapper/pareto.h"

namespace soctest {
namespace {

std::vector<SweepPoint> D695Sweep(int max_width = 48) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  SweepOptions options;
  options.min_width = 1;
  options.max_width = max_width;
  return SweepWidths(problem, options);
}

TEST(SweepTest, CoversEveryWidth) {
  const auto sweep = D695Sweep(24);
  ASSERT_EQ(sweep.size(), 24u);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(sweep[i].tam_width, static_cast<int>(i) + 1);
    EXPECT_GT(sweep[i].test_time, 0);
    EXPECT_EQ(sweep[i].data_volume,
              static_cast<std::int64_t>(sweep[i].tam_width) * sweep[i].test_time);
  }
}

TEST(SweepTest, TimeTrendsDownWithWidth) {
  const auto sweep = D695Sweep(48);
  // The heuristic is not strictly monotone point-to-point, but the trend must
  // hold: T at the widest point is far below T at width 1, and the curve
  // never rises above its running minimum by more than a few percent.
  EXPECT_LT(sweep.back().test_time, sweep.front().test_time / 10);
  Time running_min = sweep.front().test_time;
  for (const auto& p : sweep) {
    EXPECT_LE(static_cast<double>(p.test_time),
              1.10 * static_cast<double>(running_min))
        << "W=" << p.tam_width;
    running_min = std::min(running_min, p.test_time);
  }
}

// Satellite contract for the pooled-workspace sweep: the per-worker
// ScheduleWorkspace reuse (and the parallel path generally) is bit-identical
// to the historical fresh-workspace-per-width serial loop.
TEST(SweepTest, PooledWorkspaceSweepBitIdenticalToFreshPerWidth) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  const CompiledProblem compiled(problem);
  ASSERT_TRUE(compiled.ok());
  SweepOptions options;
  options.min_width = 4;
  options.max_width = 28;

  // The historical path: a fresh private workspace per width.
  std::vector<SweepPoint> expected;
  for (int w = options.min_width; w <= options.max_width; ++w) {
    OptimizerParams params = options.optimizer;
    params.tam_width = w;
    const OptimizerResult result = Optimize(compiled, params);
    ASSERT_TRUE(result.ok()) << "W=" << w;
    expected.push_back({w, result.makespan,
                        static_cast<std::int64_t>(w) * result.makespan});
  }

  for (const int threads : {1, 4}) {
    options.threads = threads;
    const auto sweep = SweepWidths(compiled, options);
    ASSERT_EQ(sweep.size(), expected.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      EXPECT_EQ(sweep[i].tam_width, expected[i].tam_width);
      EXPECT_EQ(sweep[i].test_time, expected[i].test_time) << "threads=" << threads;
      EXPECT_EQ(sweep[i].data_volume, expected[i].data_volume);
    }
  }
}

TEST(SweepTest, MinPointsAreConsistent) {
  const auto sweep = D695Sweep();
  const SweepPoint t_min = MinTimePoint(sweep);
  const SweepPoint d_min = MinVolumePoint(sweep);
  for (const auto& p : sweep) {
    EXPECT_GE(p.test_time, t_min.test_time);
    EXPECT_GE(p.data_volume, d_min.data_volume);
  }
  // Paper Section 5: the width minimizing D is below the width minimizing T.
  EXPECT_LE(d_min.tam_width, t_min.tam_width);
}

TEST(SweepTest, VolumeIsNonMonotonic) {
  const auto sweep = D695Sweep();
  bool rises = false;
  bool falls = false;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    rises |= sweep[i].data_volume > sweep[i - 1].data_volume;
    falls |= sweep[i].data_volume < sweep[i - 1].data_volume;
  }
  EXPECT_TRUE(rises);
  EXPECT_TRUE(falls);
}

TEST(SweepTest, LocalVolumeMinimaExist) {
  const auto sweep = D695Sweep();
  const auto minima = LocalVolumeMinima(sweep);
  EXPECT_GE(minima.size(), 2u) << "expected several local minima (paper Fig. 9b)";
  // Each reported index is a genuine local minimum vs. strict neighbors.
  for (std::size_t idx : minima) {
    if (idx > 0) {
      EXPECT_GE(sweep[idx - 1].data_volume, sweep[idx].data_volume);
    }
  }
}

TEST(SweepTest, VolumeLocalMinimaSitAtTimeDrops) {
  // Paper Fig. 9(b): D's local minima coincide with Pareto points of T —
  // i.e. at a local minimum the time just dropped (or it's the first point).
  const auto sweep = D695Sweep();
  const auto minima = LocalVolumeMinima(sweep);
  for (std::size_t idx : minima) {
    if (idx == 0) continue;
    EXPECT_LT(sweep[idx].test_time, sweep[idx - 1].test_time)
        << "W=" << sweep[idx].tam_width;
  }
}

TEST(SweepTest, SkipsNothingOnValidInput) {
  const TestProblem problem = TestProblem::FromSoc(MakeP22810s());
  SweepOptions options;
  options.min_width = 10;
  options.max_width = 14;
  const auto sweep = SweepWidths(problem, options);
  EXPECT_EQ(sweep.size(), 5u);
}

}  // namespace
}  // namespace soctest
