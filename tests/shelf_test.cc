#include "baseline/shelf.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "core/validator.h"
#include "soc/benchmarks.h"

namespace soctest {
namespace {

TEST(ShelfTest, ProducesCapacityRespectingSchedule) {
  const Soc soc = MakeD695();
  for (const auto policy : {ShelfPolicy::kNextFitDecreasingHeight,
                            ShelfPolicy::kFirstFitDecreasingHeight}) {
    ShelfOptions options;
    options.policy = policy;
    const Schedule schedule = ShelfPack(soc, 32, options);
    EXPECT_EQ(schedule.entries().size(), 10u);
    EXPECT_LE(schedule.PeakWidth(), 32);
    EXPECT_GT(schedule.Makespan(), 0);
  }
}

TEST(ShelfTest, ValidatesAsProperSchedule) {
  const Soc soc = MakeD695();
  const TestProblem problem = TestProblem::FromSoc(soc);
  ShelfOptions options;
  const Schedule schedule = ShelfPack(soc, 24, options);
  // Shelf packing ignores constraints but must satisfy the structural and
  // duration invariants for an unconstrained problem.
  const auto violations = ValidateSchedule(problem, schedule);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
}

TEST(ShelfTest, FfdhNoWorseThanNfdhUsually) {
  // FFDH revisits earlier shelves, so it can only tighten NFDH's packing for
  // identical inputs (a classical result for these heuristics).
  for (const auto& soc : AllBenchmarkSocs()) {
    ShelfOptions nfdh;
    nfdh.policy = ShelfPolicy::kNextFitDecreasingHeight;
    ShelfOptions ffdh;
    ffdh.policy = ShelfPolicy::kFirstFitDecreasingHeight;
    const Time t_nfdh = ShelfPack(soc, 32, nfdh).Makespan();
    const Time t_ffdh = ShelfPack(soc, 32, ffdh).Makespan();
    EXPECT_LE(t_ffdh, t_nfdh) << soc.name();
  }
}

TEST(ShelfTest, FlexibleOptimizerBeatsShelfBaseline) {
  // The paper's integrated approach must dominate level-oriented packing.
  for (const auto& soc : AllBenchmarkSocs()) {
    const TestProblem problem = TestProblem::FromSoc(soc);
    OptimizerParams params;
    params.tam_width = 32;
    const auto flexible = OptimizeBestOverParams(problem, params);
    ASSERT_TRUE(flexible.ok());
    ShelfOptions options;
    const Time shelf = ShelfPack(soc, 32, options).Makespan();
    EXPECT_LE(flexible.makespan, shelf) << soc.name();
  }
}

TEST(ShelfTest, SingleCoreSingleShelf) {
  Soc soc("one");
  CoreSpec c;
  c.name = "only";
  c.num_inputs = 4;
  c.num_outputs = 4;
  c.num_patterns = 20;
  c.scan_chain_lengths = {16};
  soc.AddCore(c);
  const Schedule schedule = ShelfPack(soc, 8, {});
  ASSERT_EQ(schedule.entries().size(), 1u);
  EXPECT_EQ(schedule.entries()[0].BeginTime(), 0);
}

TEST(ShelfTest, WorksAtWidthOne) {
  const Soc soc = MakeD695();
  const Schedule schedule = ShelfPack(soc, 1, {});
  EXPECT_LE(schedule.PeakWidth(), 1);
  // Everything serial: makespan equals the sum of widths-1 test times.
  Time sum = 0;
  for (const auto& entry : schedule.entries()) sum += entry.ActiveTime();
  EXPECT_EQ(schedule.Makespan(), sum);
}

}  // namespace
}  // namespace soctest
