#include "baseline/fixed_width.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "soc/benchmarks.h"
#include "soc/generator.h"

namespace soctest {
namespace {

Soc TinySoc(int cores, std::uint64_t seed = 3) {
  GeneratorParams params;
  params.seed = seed;
  params.num_cores = cores;
  params.min_inputs = 2;
  params.max_inputs = 20;
  params.min_outputs = 2;
  params.max_outputs = 20;
  params.min_patterns = 5;
  params.max_patterns = 80;
  params.max_chains = 6;
  params.max_chain_len = 40;
  return GenerateSoc(params);
}

TEST(FixedWidthTest, PartitionWidthsSumToTotal) {
  const Soc soc = TinySoc(5);
  FixedWidthOptions options;
  options.num_buses = 3;
  const auto result = OptimizeFixedWidth(soc, 12, options);
  int sum = 0;
  for (int w : result.bus_widths) sum += w;
  EXPECT_EQ(sum, 12);
  EXPECT_EQ(result.bus_widths.size(), 3u);
}

TEST(FixedWidthTest, EveryCoreAssignedToAValidBus) {
  const Soc soc = TinySoc(6);
  FixedWidthOptions options;
  options.num_buses = 2;
  const auto result = OptimizeFixedWidth(soc, 10, options);
  ASSERT_EQ(result.core_to_bus.size(), 6u);
  for (int bus : result.core_to_bus) {
    EXPECT_GE(bus, 0);
    EXPECT_LT(bus, 2);
  }
}

TEST(FixedWidthTest, ExactNoWorseThanGreedy) {
  const Soc soc = TinySoc(7);
  FixedWidthOptions options;
  options.num_buses = 2;
  const auto greedy = GreedyFixedWidth(soc, 14, options);
  const auto exact = OptimizeFixedWidth(soc, 14, options);
  EXPECT_LE(exact.test_time, greedy.test_time);
  EXPECT_GT(exact.test_time, 0);
}

TEST(FixedWidthTest, ExactMatchesBruteForceOnMicroInstance) {
  // 3 cores, 2 buses, W=4: small enough to verify by explicit enumeration.
  const Soc soc = TinySoc(3, 9);
  FixedWidthOptions options;
  options.num_buses = 2;
  options.w_max = 16;
  const auto exact = OptimizeFixedWidth(soc, 4, options);

  const auto rects = BuildRectangleSets(soc, 16, 4);
  Time best = -1;
  for (int w1 = 1; w1 < 4; ++w1) {
    const int w2 = 4 - w1;
    for (int mask = 0; mask < 8; ++mask) {
      Time load1 = 0;
      Time load2 = 0;
      for (int c = 0; c < 3; ++c) {
        if (mask & (1 << c)) {
          load1 += rects[static_cast<std::size_t>(c)].TimeAtWidth(w1);
        } else {
          load2 += rects[static_cast<std::size_t>(c)].TimeAtWidth(w2);
        }
      }
      const Time makespan = std::max(load1, load2);
      if (best < 0 || makespan < best) best = makespan;
    }
  }
  EXPECT_EQ(exact.test_time, best);
}

TEST(FixedWidthTest, FlexibleCompetitiveWithExactFixedWidth) {
  // The paper's argument against [12]-style fixed-width TAMs is that the
  // flexible heuristic matches the EXACT exponential search at a fraction of
  // the cost. The exact baseline may edge the heuristic out by a percent or
  // two at narrow widths, so we assert near-parity rather than dominance.
  const Soc soc = MakeD695();
  FixedWidthOptions options;
  options.num_buses = 3;
  options.max_nodes = 2'000'000;
  const auto fixed = OptimizeFixedWidth(soc, 16, options);

  const TestProblem problem = TestProblem::FromSoc(soc);
  OptimizerParams params;
  params.tam_width = 16;
  const auto flexible = OptimizeBestOverParams(problem, params);
  ASSERT_TRUE(flexible.ok());
  EXPECT_LE(static_cast<double>(flexible.makespan),
            1.05 * static_cast<double>(fixed.test_time));
}

TEST(FixedWidthTest, FlexibleBeatsFixedWidthAtWideTams) {
  // The paper's criticism of fixed-width architectures — inflexible
  // partitions waste TAM wires — bites hardest at wide TAMs with few buses.
  for (const auto& soc : {MakeD695(), MakeP22810s()}) {
    const TestProblem problem = TestProblem::FromSoc(soc);
    OptimizerParams params;
    params.tam_width = 64;
    const auto flexible = OptimizeBestOverParams(problem, params);
    ASSERT_TRUE(flexible.ok());
    for (int buses : {2, 3}) {
      FixedWidthOptions options;
      options.num_buses = buses;
      const auto fixed = GreedyFixedWidth(soc, 64, options);
      EXPECT_LT(flexible.makespan, fixed.test_time)
          << soc.name() << " B=" << buses;
    }
  }
}

TEST(FixedWidthTest, EffortCountersGrowWithBuses) {
  const Soc soc = TinySoc(6);
  FixedWidthOptions two;
  two.num_buses = 2;
  FixedWidthOptions three;
  three.num_buses = 3;
  const auto r2 = OptimizeFixedWidth(soc, 9, two);
  const auto r3 = OptimizeFixedWidth(soc, 9, three);
  EXPECT_GT(r2.partitions_tried, 0);
  EXPECT_GT(r3.partitions_tried, r2.partitions_tried);
  EXPECT_GT(r3.nodes_explored, 0);
}

TEST(FixedWidthTest, SingleBusDegeneratesToSerialSchedule) {
  const Soc soc = TinySoc(4);
  FixedWidthOptions options;
  options.num_buses = 1;
  const auto result = OptimizeFixedWidth(soc, 8, options);
  const auto rects = BuildRectangleSets(soc, options.w_max, 8);
  Time serial = 0;
  for (const auto& rect : rects) serial += rect.TimeAtWidth(8);
  EXPECT_EQ(result.test_time, serial);
}

TEST(FixedWidthTest, NodeCapTruncatesButStaysFeasible) {
  const Soc soc = TinySoc(10);
  FixedWidthOptions options;
  options.num_buses = 3;
  options.max_nodes = 50;  // drastic cap: fall back to greedy incumbents
  const auto result = OptimizeFixedWidth(soc, 12, options);
  EXPECT_GT(result.test_time, 0);
  ASSERT_EQ(result.core_to_bus.size(), 10u);
}

}  // namespace
}  // namespace soctest
