// Property-based suite: random SOCs x TAM widths x scheduling modes, all of
// which must produce schedules that pass the full validator.
#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "core/validator.h"
#include "core/wire_assign.h"
#include "baseline/lower_bound.h"
#include "soc/generator.h"

namespace soctest {
namespace {

struct PropertyCase {
  std::uint64_t seed;
  int num_cores;
  int tam_width;
  bool preemptive;
  bool constrained;  // hierarchy + resources + power budget
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  const auto& p = info.param;
  std::string name = "seed" + std::to_string(p.seed) + "_n" +
                     std::to_string(p.num_cores) + "_w" +
                     std::to_string(p.tam_width);
  name += p.preemptive ? "_pre" : "_np";
  name += p.constrained ? "_con" : "_free";
  return name;
}

TestProblem BuildProblem(const PropertyCase& pc) {
  GeneratorParams params;
  params.name = "prop";
  params.seed = pc.seed;
  params.num_cores = pc.num_cores;
  params.min_inputs = 1;
  params.max_inputs = 80;
  params.min_outputs = 1;
  params.max_outputs = 80;
  params.min_patterns = 1;
  params.max_patterns = 300;
  params.min_chains = 1;
  params.max_chains = 12;
  params.min_chain_len = 1;
  params.max_chain_len = 90;
  params.max_preemptions = pc.preemptive ? 2 : 0;
  if (pc.constrained) {
    params.child_probability = 0.2;
    params.num_resources = 2;
    params.resource_probability = 0.3;
  }
  Soc soc = GenerateSoc(params);
  TestProblem problem = TestProblem::FromSoc(std::move(soc));
  if (pc.constrained) {
    problem.power = PowerModel::FromSoc(problem.soc, 2.0);
    // A couple of precedence chains keyed off the seed.
    if (problem.soc.num_cores() >= 4) {
      problem.precedence.Add(0, 2);
      problem.precedence.Add(1, 3);
    }
  }
  return problem;
}

class OptimizerPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(OptimizerPropertyTest, ScheduleSatisfiesEveryInvariant) {
  const PropertyCase pc = GetParam();
  const TestProblem problem = BuildProblem(pc);
  OptimizerParams params;
  params.tam_width = pc.tam_width;
  params.allow_preemption = pc.preemptive;
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok()) << *result.error;

  ValidationOptions options;
  options.check_preemption_limits = true;
  const auto violations = ValidateSchedule(problem, result.schedule, options);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
}

TEST_P(OptimizerPropertyTest, MakespanAtLeastLowerBound) {
  const PropertyCase pc = GetParam();
  const TestProblem problem = BuildProblem(pc);
  OptimizerParams params;
  params.tam_width = pc.tam_width;
  params.allow_preemption = pc.preemptive;
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  const auto lb = ComputeLowerBound(problem.soc, pc.tam_width, params.w_max);
  EXPECT_GE(result.makespan, lb.value());
}

TEST_P(OptimizerPropertyTest, WiresAlwaysAssignable) {
  const PropertyCase pc = GetParam();
  const TestProblem problem = BuildProblem(pc);
  OptimizerParams params;
  params.tam_width = pc.tam_width;
  params.allow_preemption = pc.preemptive;
  const auto result = Optimize(problem, params);
  ASSERT_TRUE(result.ok());
  const auto wires = AssignWires(result.schedule);
  ASSERT_TRUE(wires.has_value());
  EXPECT_FALSE(CheckWireAssignment(result.schedule, *wires).has_value());
}

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  int which = 0;
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    for (int cores : {3, 9, 18}) {
      for (int width : {4, 17, 40}) {
        PropertyCase pc;
        pc.seed = seed;
        pc.num_cores = cores;
        pc.tam_width = width;
        pc.preemptive = (which % 2) == 0;
        pc.constrained = (which % 3) == 0;
        cases.push_back(pc);
        ++which;
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomSocs, OptimizerPropertyTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

// Degenerate shapes that have historically broken packers.
TEST(OptimizerEdgeCaseTest, ManyTinyCombinationalCores) {
  GeneratorParams params;
  params.seed = 5;
  params.num_cores = 40;
  params.combinational_probability = 1.0;
  params.min_inputs = 1;
  params.max_inputs = 4;
  params.min_outputs = 1;
  params.max_outputs = 4;
  params.min_patterns = 1;
  params.max_patterns = 10;
  const TestProblem problem = TestProblem::FromSoc(GenerateSoc(params));
  OptimizerParams op;
  op.tam_width = 3;
  const auto result = Optimize(problem, op);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsValidSchedule(problem, result.schedule));
}

TEST(OptimizerEdgeCaseTest, MoreCoresThanWires) {
  GeneratorParams params;
  params.seed = 6;
  params.num_cores = 25;
  const TestProblem problem = TestProblem::FromSoc(GenerateSoc(params));
  OptimizerParams op;
  op.tam_width = 2;
  const auto result = Optimize(problem, op);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsValidSchedule(problem, result.schedule));
  EXPECT_LE(result.schedule.PeakWidth(), 2);
}

TEST(OptimizerEdgeCaseTest, FullyChainedPrecedenceSerializes) {
  GeneratorParams gp;
  gp.seed = 7;
  gp.num_cores = 6;
  Soc soc = GenerateSoc(gp);
  TestProblem problem = TestProblem::FromSoc(std::move(soc));
  for (int i = 0; i + 1 < problem.soc.num_cores(); ++i) {
    problem.precedence.Add(i, i + 1);
  }
  OptimizerParams op;
  op.tam_width = 32;
  const auto result = Optimize(problem, op);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsValidSchedule(problem, result.schedule));
  // Makespan equals the sum of individual test times (complete serialization).
  Time sum = 0;
  for (const auto& a : result.assignments) sum += a.scheduled_time;
  EXPECT_EQ(result.makespan, sum);
}

TEST(OptimizerEdgeCaseTest, AllPairsConcurrencySerializes) {
  GeneratorParams gp;
  gp.seed = 8;
  gp.num_cores = 5;
  TestProblem problem = TestProblem::FromSoc(GenerateSoc(gp));
  for (int i = 0; i < problem.soc.num_cores(); ++i) {
    for (int j = i + 1; j < problem.soc.num_cores(); ++j) {
      problem.concurrency.Add(i, j);
    }
  }
  OptimizerParams op;
  op.tam_width = 48;
  const auto result = Optimize(problem, op);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsValidSchedule(problem, result.schedule));
}

}  // namespace
}  // namespace soctest
