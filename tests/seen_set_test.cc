#include "search/seen_set.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

namespace soctest {
namespace {

TEST(SeenSetTest, InsertReportsNovelty) {
  SeenSet seen;
  EXPECT_TRUE(seen.Insert({1, 2, 3}));
  EXPECT_FALSE(seen.Insert({1, 2, 3}));
  EXPECT_TRUE(seen.Insert({3, 2, 1}));  // order matters
  EXPECT_EQ(seen.size(), 2u);
}

TEST(SeenSetTest, ContainsMatchesInsertHistory) {
  SeenSet seen;
  EXPECT_FALSE(seen.Contains({4, 5}));
  seen.Insert({4, 5});
  EXPECT_TRUE(seen.Contains({4, 5}));
  EXPECT_FALSE(seen.Contains({4}));
  EXPECT_FALSE(seen.Contains({4, 5, 0}));  // prefix is not membership
}

TEST(SeenSetTest, EmptyAndNegativeValues) {
  SeenSet seen;
  EXPECT_TRUE(seen.Insert({}));
  EXPECT_FALSE(seen.Insert({}));
  EXPECT_TRUE(seen.Insert({-1, -2}));
  EXPECT_TRUE(seen.Insert({-2, -1}));
  EXPECT_FALSE(seen.Insert({-1, -2}));
  EXPECT_EQ(seen.size(), 3u);
}

// Growth: push well past the initial slot table so every element survives
// several rehashes, then verify exact membership — present vectors found,
// near-miss vectors (one element off) rejected.
TEST(SeenSetTest, SurvivesRehashing) {
  SeenSet seen;
  constexpr int kCount = 1000;
  for (int i = 0; i < kCount; ++i) {
    EXPECT_TRUE(seen.Insert({i, i * 7, i * 13 + 1}));
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_TRUE(seen.Contains({i, i * 7, i * 13 + 1})) << i;
    EXPECT_FALSE(seen.Contains({i, i * 7, i * 13 + 2})) << i;
    EXPECT_FALSE(seen.Insert({i, i * 7, i * 13 + 1})) << i;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kCount));
}

// Width-vector shapes the improver actually feeds in: many vectors sharing
// most coordinates (neighbors differing in one or two entries) must stay
// distinct.
TEST(SeenSetTest, NearDuplicateWidthVectorsStayDistinct) {
  SeenSet seen;
  std::vector<int> base(64, 16);
  ASSERT_TRUE(seen.Insert(base));
  std::size_t expected = 1;
  for (std::size_t core = 0; core < base.size(); ++core) {
    for (const int width : {8, 24}) {
      std::vector<int> v = base;
      v[core] = width;
      EXPECT_TRUE(seen.Insert(v));
      EXPECT_FALSE(seen.Insert(v));
      ++expected;
    }
  }
  EXPECT_EQ(seen.size(), expected);
  EXPECT_TRUE(seen.Contains(base));
}

}  // namespace
}  // namespace soctest
