#include "tdv/effective_width.h"

#include <gtest/gtest.h>

#include "soc/benchmarks.h"

namespace soctest {
namespace {

class EffectiveWidthTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const TestProblem problem = TestProblem::FromSoc(MakeD695());
    SweepOptions options;
    options.min_width = 1;
    options.max_width = 48;
    sweep_ = new std::vector<SweepPoint>(SweepWidths(problem, options));
  }
  static void TearDownTestSuite() {
    delete sweep_;
    sweep_ = nullptr;
  }

  static std::vector<SweepPoint>* sweep_;
};

std::vector<SweepPoint>* EffectiveWidthTest::sweep_ = nullptr;

TEST_F(EffectiveWidthTest, CostCurveNormalizedAboveOne) {
  for (double rho : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto curve = CostCurve(*sweep_, rho);
    ASSERT_EQ(curve.size(), sweep_->size());
    for (const auto& p : curve) {
      EXPECT_GE(p.cost, 1.0 - 1e-12) << "rho=" << rho << " W=" << p.tam_width;
    }
  }
}

TEST_F(EffectiveWidthTest, RhoOneMinimizesTime) {
  const CostPoint best = EffectiveWidth(*sweep_, 1.0);
  const SweepPoint t_min = MinTimePoint(*sweep_);
  EXPECT_EQ(best.test_time, t_min.test_time);
  EXPECT_NEAR(best.cost, 1.0, 1e-12);
}

TEST_F(EffectiveWidthTest, RhoZeroMinimizesVolume) {
  const CostPoint best = EffectiveWidth(*sweep_, 0.0);
  const SweepPoint d_min = MinVolumePoint(*sweep_);
  EXPECT_EQ(best.data_volume, d_min.data_volume);
  EXPECT_NEAR(best.cost, 1.0, 1e-12);
}

TEST_F(EffectiveWidthTest, EffectiveWidthMovesWithRho) {
  // As rho rises from 0 to 1 the effective width moves from the D-minimizer
  // toward the T-minimizer (paper Table 2), monotonically in between.
  int prev = 0;
  for (double rho : {0.0, 0.3, 0.6, 0.9, 1.0}) {
    const CostPoint best = EffectiveWidth(*sweep_, rho);
    EXPECT_GE(best.tam_width, prev) << "rho=" << rho;
    prev = best.tam_width;
  }
}

TEST_F(EffectiveWidthTest, RhoIsClampedToUnitRange) {
  EXPECT_EQ(EffectiveWidth(*sweep_, -3.0).tam_width,
            EffectiveWidth(*sweep_, 0.0).tam_width);
  EXPECT_EQ(EffectiveWidth(*sweep_, 7.0).tam_width,
            EffectiveWidth(*sweep_, 1.0).tam_width);
}

TEST_F(EffectiveWidthTest, TradeoffRowsMatchCurve) {
  const TradeoffRow row = MakeTradeoffRow(*sweep_, 0.5);
  const CostPoint best = EffectiveWidth(*sweep_, 0.5);
  EXPECT_EQ(row.effective_width, best.tam_width);
  EXPECT_EQ(row.time_at_effective, best.test_time);
  EXPECT_EQ(row.volume_at_effective, best.data_volume);
  EXPECT_DOUBLE_EQ(row.min_cost, best.cost);
  EXPECT_DOUBLE_EQ(row.rho, 0.5);
}

TEST_F(EffectiveWidthTest, CostIsUShapedForMidRho) {
  // Paper Fig. 9(c,d): a single practical minimum — the curve never dips
  // again after it has risen 10% above the global minimum.
  const auto curve = CostCurve(*sweep_, 0.5);
  double best = curve.front().cost;
  std::size_t best_idx = 0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (curve[i].cost < best) {
      best = curve[i].cost;
      best_idx = i;
    }
  }
  for (std::size_t i = best_idx; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].cost, best - 1e-12);
  }
}

TEST(MultisiteTest, NarrowTamAllowsMoreSites) {
  SweepPoint wide{48, 100'000, 4'800'000};
  SweepPoint narrow{12, 180'000, 2'160'000};
  // 96-channel tester, batch of 16 devices.
  const Time t_wide = MultisiteBatchTime(wide, 96, 16);     // 2 sites
  const Time t_narrow = MultisiteBatchTime(narrow, 96, 16);  // 8 sites
  EXPECT_EQ(t_wide, 8 * 100'000);
  EXPECT_EQ(t_narrow, 2 * 180'000);
  EXPECT_LT(t_narrow, t_wide);  // the paper's multisite motivation
}

TEST(MultisiteTest, SingleSiteFallback) {
  SweepPoint point{64, 50'000, 3'200'000};
  EXPECT_EQ(MultisiteBatchTime(point, 32, 3), 3 * 50'000);
}

}  // namespace
}  // namespace soctest
