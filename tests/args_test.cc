#include "util/args.h"

#include <gtest/gtest.h>

namespace soctest {
namespace {

std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  return std::vector<const char*>(args);
}

TEST(ArgParserTest, FlagsOptionsPositionals) {
  ArgParser parser({"verbose"}, {"width", "out"});
  const auto argv =
      Argv({"prog", "input.soc", "--width", "32", "--verbose", "--out=x.json"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(parser.HasFlag("verbose"));
  EXPECT_EQ(parser.Option("width"), "32");
  EXPECT_EQ(parser.Option("out"), "x.json");
  ASSERT_EQ(parser.positional().size(), 1u);
  EXPECT_EQ(parser.positional()[0], "input.soc");
}

TEST(ArgParserTest, UnknownArgumentFails) {
  ArgParser parser({}, {"width"});
  const auto argv = Argv({"prog", "--bogus"});
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(parser.Error().find("bogus"), std::string::npos);
}

TEST(ArgParserTest, OptionMissingValueFails) {
  ArgParser parser({}, {"width"});
  const auto argv = Argv({"prog", "--width"});
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(ArgParserTest, FlagWithValueFails) {
  ArgParser parser({"verbose"}, {});
  const auto argv = Argv({"prog", "--verbose=yes"});
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(ArgParserTest, TypedAccessorsWithDefaults) {
  ArgParser parser({}, {"n", "x"});
  const auto argv = Argv({"prog", "--n", "7", "--x", "2.5"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.IntOr("n", 1), 7);
  EXPECT_DOUBLE_EQ(parser.DoubleOr("x", 0.0), 2.5);
  EXPECT_EQ(parser.IntOr("missing", 42), 42);
  EXPECT_EQ(parser.StringOr("missing", "d"), "d");
  EXPECT_TRUE(parser.ok());
}

// Int32Or narrows with a range check: the CLI's int-typed options must
// reject 2^32 + 1 instead of silently truncating it to 1.
TEST(ArgParserTest, Int32OrRejectsOutOfRangeValues) {
  ArgParser parser({}, {"width", "seed", "low"});
  const auto argv = Argv({"prog", "--width", "4294967297", "--seed", "7",
                          "--low", "-4294967297"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));

  EXPECT_EQ(parser.Int32Or("seed", 1), 7);
  EXPECT_EQ(parser.Int32Or("missing", 42), 42);
  EXPECT_TRUE(parser.ok());

  EXPECT_EQ(parser.Int32Or("width", 3), 3);  // default back, error recorded
  EXPECT_FALSE(parser.ok());
  EXPECT_NE(parser.Error().find("out of range"), std::string::npos);

  ArgParser negative({}, {"low"});
  const auto argv2 = Argv({"prog", "--low", "-4294967297"});
  ASSERT_TRUE(negative.Parse(static_cast<int>(argv2.size()), argv2.data()));
  EXPECT_EQ(negative.Int32Or("low", -3), -3);
  EXPECT_FALSE(negative.ok());
}

// The CLI's parallel-search flags: --threads takes a worker count (0 = use
// the hardware) and --search is a boolean switch for the restart-grid
// search. Mirrors the parser configuration in tools/soctest_cli.cc.
TEST(ArgParserTest, ThreadsAndSearchFlags) {
  ArgParser parser({"search", "sweep"}, {"width", "threads"});
  const auto argv =
      Argv({"prog", "d695", "--width", "16", "--search", "--threads", "0"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(parser.HasFlag("search"));
  EXPECT_FALSE(parser.HasFlag("sweep"));
  EXPECT_EQ(parser.IntOr("threads", 1), 0);
  EXPECT_TRUE(parser.ok());

  // Default when --threads is omitted: the CLI passes 0 ("use the
  // hardware") for both the schedule and sweep subcommands.
  ArgParser defaulted({"search", "sweep"}, {"width", "threads"});
  const auto argv2 = Argv({"prog", "d695", "--width", "16"});
  ASSERT_TRUE(defaulted.Parse(static_cast<int>(argv2.size()), argv2.data()));
  EXPECT_FALSE(defaulted.HasFlag("search"));
  EXPECT_EQ(defaulted.IntOr("threads", 0), 0);

  // --threads requires a value.
  ArgParser missing({"search"}, {"threads"});
  const auto argv3 = Argv({"prog", "--threads"});
  EXPECT_FALSE(missing.Parse(static_cast<int>(argv3.size()), argv3.data()));
}

// The CLI's batched-improver flags: --improve takes the perturbation count,
// --improver-threads the evaluation workers (0 = hardware), --batch the
// candidates per round; --wide switches the restart grid to the extended
// axes. Mirrors the schedule-subcommand parser in tools/soctest_cli.cc.
TEST(ArgParserTest, ImproverAndWideGridFlags) {
  ArgParser parser({"search", "wide"},
                   {"width", "improve", "improver-threads", "batch"});
  const auto argv = Argv({"prog", "d695", "--width", "16", "--improve", "50",
                          "--improver-threads", "0", "--batch", "4", "--wide"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.IntOr("improve", 0), 50);
  EXPECT_EQ(parser.IntOr("improver-threads", 1), 0);
  EXPECT_EQ(parser.IntOr("batch", 8), 4);
  EXPECT_TRUE(parser.HasFlag("wide"));
  EXPECT_TRUE(parser.ok());

  // Defaults when omitted: improver off, hardware threads, batch 8.
  ArgParser defaulted({"search", "wide"},
                      {"width", "improve", "improver-threads", "batch"});
  const auto argv2 = Argv({"prog", "d695", "--width", "16"});
  ASSERT_TRUE(defaulted.Parse(static_cast<int>(argv2.size()), argv2.data()));
  EXPECT_EQ(defaulted.IntOr("improve", 0), 0);
  EXPECT_EQ(defaulted.IntOr("improver-threads", 0), 0);
  EXPECT_EQ(defaulted.IntOr("batch", 8), 8);
  EXPECT_FALSE(defaulted.HasFlag("wide"));
}

TEST(ArgParserTest, BadIntegerSurfacesError) {
  ArgParser parser({}, {"n"});
  const auto argv = Argv({"prog", "--n", "seven"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.IntOr("n", 1), 1);
  EXPECT_FALSE(parser.ok());
}

TEST(ArgParserTest, LaterValueWins) {
  ArgParser parser({}, {"w"});
  const auto argv = Argv({"prog", "--w", "1", "--w", "2"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.Option("w"), "2");
}

}  // namespace
}  // namespace soctest
