#include "util/args.h"

#include <gtest/gtest.h>

namespace soctest {
namespace {

std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  return std::vector<const char*>(args);
}

TEST(ArgParserTest, FlagsOptionsPositionals) {
  ArgParser parser({"verbose"}, {"width", "out"});
  const auto argv =
      Argv({"prog", "input.soc", "--width", "32", "--verbose", "--out=x.json"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(parser.HasFlag("verbose"));
  EXPECT_EQ(parser.Option("width"), "32");
  EXPECT_EQ(parser.Option("out"), "x.json");
  ASSERT_EQ(parser.positional().size(), 1u);
  EXPECT_EQ(parser.positional()[0], "input.soc");
}

TEST(ArgParserTest, UnknownArgumentFails) {
  ArgParser parser({}, {"width"});
  const auto argv = Argv({"prog", "--bogus"});
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(parser.Error().find("bogus"), std::string::npos);
}

TEST(ArgParserTest, OptionMissingValueFails) {
  ArgParser parser({}, {"width"});
  const auto argv = Argv({"prog", "--width"});
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(ArgParserTest, FlagWithValueFails) {
  ArgParser parser({"verbose"}, {});
  const auto argv = Argv({"prog", "--verbose=yes"});
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(ArgParserTest, TypedAccessorsWithDefaults) {
  ArgParser parser({}, {"n", "x"});
  const auto argv = Argv({"prog", "--n", "7", "--x", "2.5"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.IntOr("n", 1), 7);
  EXPECT_DOUBLE_EQ(parser.DoubleOr("x", 0.0), 2.5);
  EXPECT_EQ(parser.IntOr("missing", 42), 42);
  EXPECT_EQ(parser.StringOr("missing", "d"), "d");
  EXPECT_TRUE(parser.ok());
}

TEST(ArgParserTest, BadIntegerSurfacesError) {
  ArgParser parser({}, {"n"});
  const auto argv = Argv({"prog", "--n", "seven"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.IntOr("n", 1), 1);
  EXPECT_FALSE(parser.ok());
}

TEST(ArgParserTest, LaterValueWins) {
  ArgParser parser({}, {"w"});
  const auto argv = Argv({"prog", "--w", "1", "--w", "2"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.Option("w"), "2");
}

}  // namespace
}  // namespace soctest
