#include "core/compiled_problem.h"

#include <gtest/gtest.h>

#include "baseline/lower_bound.h"
#include "core/optimizer.h"
#include "soc/benchmarks.h"
#include "soc/generator.h"
#include "wrapper/wrapper_design.h"

namespace soctest {
namespace {

TestProblem GeneratedProblem(std::uint64_t seed, int cores) {
  GeneratorParams params;
  params.seed = seed;
  params.num_cores = cores;
  return TestProblem::FromSoc(GenerateSoc(params));
}

// The compiled curves must be the same object the wrapper layer would build
// fresh: same times at every width, same flush (s_i + s_o) lengths.
TEST(CompiledProblemTest, CurvesMatchFreshTimeCurves) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  const CompiledProblem compiled(problem, 64);
  ASSERT_TRUE(compiled.ok());
  ASSERT_EQ(compiled.num_cores(), problem.soc.num_cores());
  for (CoreId c = 0; c < problem.soc.num_cores(); ++c) {
    const TimeCurve fresh(problem.soc.core(c), 64);
    EXPECT_EQ(compiled.curve(c).times(), fresh.times()) << "core " << c;
    for (int w = 1; w <= 64; ++w) {
      EXPECT_EQ(compiled.curve(c).FlushAt(w), fresh.FlushAt(w))
          << "core " << c << " width " << w;
    }
  }
}

// FlushAt must agree with an actual wrapper design at every Pareto width —
// those are the widths the scheduler assigns, so the preemption penalty the
// compiled path charges must be bit-identical to re-running DesignWrapper.
TEST(CompiledProblemTest, FlushPenaltyMatchesDesignWrapper) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  const CompiledProblem compiled(problem, 64);
  ASSERT_TRUE(compiled.ok());
  for (CoreId c = 0; c < problem.soc.num_cores(); ++c) {
    for (const auto& p : compiled.pareto(c)) {
      const WrapperConfig config = DesignWrapper(problem.soc.core(c), p.width);
      EXPECT_EQ(compiled.FlushPenalty(c, p.width),
                config.scan_in_length + config.scan_out_length)
          << "core " << c << " width " << p.width;
    }
  }
}

// RectsFor must reproduce BuildRectangleSets for any TAM width clip.
TEST(CompiledProblemTest, RectsForMatchesFreshRectangleSets) {
  const TestProblem problem = GeneratedProblem(7, 12);
  const CompiledProblem compiled(problem, 64);
  ASSERT_TRUE(compiled.ok());
  for (int tam_width : {1, 5, 16, 32, 64, 100}) {
    const auto fresh = BuildRectangleSets(problem.soc, 64, tam_width);
    const auto derived = compiled.RectsFor(tam_width);
    ASSERT_EQ(derived.size(), fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_EQ(derived[i].core_id(), fresh[i].core_id());
      EXPECT_EQ(derived[i].pareto(), fresh[i].pareto())
          << "core " << i << " W " << tam_width;
      EXPECT_EQ(derived[i].MaxWidth(), fresh[i].MaxWidth());
      EXPECT_EQ(derived[i].MinTime(), fresh[i].MinTime());
      EXPECT_EQ(derived[i].MinArea(), fresh[i].MinArea());
      for (int w = 1; w <= tam_width + 2; ++w) {
        ASSERT_EQ(derived[i].SnapWidth(w), fresh[i].SnapWidth(w));
        ASSERT_EQ(derived[i].TimeAtWidth(w), fresh[i].TimeAtWidth(w));
      }
    }
  }
}

TEST(CompiledProblemTest, MaxUsefulWidthIsTopParetoWidth) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  const CompiledProblem compiled(problem, 64);
  ASSERT_TRUE(compiled.ok());
  for (CoreId c = 0; c < problem.soc.num_cores(); ++c) {
    EXPECT_EQ(compiled.max_useful_width(c), compiled.pareto(c).back().width);
    EXPECT_EQ(compiled.max_useful_width(c), compiled.curve(c).SaturationWidth());
  }
}

// The bound aggregates must agree with the baseline lower-bound module.
TEST(CompiledProblemTest, BoundsMatchComputeLowerBound) {
  const TestProblem problem = GeneratedProblem(11, 10);
  const CompiledProblem compiled(problem, 64);
  ASSERT_TRUE(compiled.ok());
  for (int tam_width : {8, 16, 32, 48}) {
    const SocBounds bounds = compiled.Bounds(tam_width);
    const auto lb = ComputeLowerBound(problem.soc, tam_width, 64);
    EXPECT_EQ(bounds.bottleneck_time, lb.bottleneck_bound);
    EXPECT_EQ(bounds.total_min_area, lb.total_min_area);
    EXPECT_EQ(bounds.AreaBound(tam_width), lb.area_bound);
    EXPECT_EQ(bounds.LowerBound(tam_width), lb.value());
  }
  // serial_time: the width-1 schedule run back to back.
  Time serial = 0;
  for (CoreId c = 0; c < problem.soc.num_cores(); ++c) {
    serial += compiled.curve(c).TimeAt(1);
  }
  EXPECT_EQ(compiled.Bounds(16).serial_time, serial);
}

// Scheduling against the compiled problem must be bit-identical to the
// compile-per-run compatibility path, preemption overheads included.
TEST(CompiledProblemTest, OptimizeCompiledMatchesOptimizeProblem) {
  const TestProblem problem = MakeBenchmarkProblem(MakeP22810s(), true);
  const CompiledProblem compiled(problem, 64);
  ASSERT_TRUE(compiled.ok());
  for (const bool preempt : {false, true}) {
    OptimizerParams params;
    params.tam_width = 24;
    params.allow_preemption = preempt;
    const OptimizerResult fresh = Optimize(problem, params);
    const OptimizerResult reused = Optimize(compiled, params);
    ASSERT_TRUE(fresh.ok());
    ASSERT_TRUE(reused.ok());
    EXPECT_EQ(fresh.makespan, reused.makespan);
    EXPECT_EQ(fresh.admission_rounds, reused.admission_rounds);
    ASSERT_EQ(fresh.schedule.entries().size(), reused.schedule.entries().size());
    for (std::size_t i = 0; i < fresh.schedule.entries().size(); ++i) {
      const auto& a = fresh.schedule.entries()[i];
      const auto& b = reused.schedule.entries()[i];
      EXPECT_EQ(a.assigned_width, b.assigned_width);
      EXPECT_EQ(a.preemptions, b.preemptions);
      EXPECT_EQ(a.overhead_cycles, b.overhead_cycles);
      ASSERT_EQ(a.segments.size(), b.segments.size());
      for (std::size_t s = 0; s < a.segments.size(); ++s) {
        EXPECT_EQ(a.segments[s].span, b.segments[s].span);
        EXPECT_EQ(a.segments[s].width, b.segments[s].width);
      }
    }
  }
}

TEST(CompiledProblemTest, InvalidWmaxReportsError) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  const CompiledProblem compiled(problem, 0);
  EXPECT_FALSE(compiled.ok());
  OptimizerParams params;
  params.tam_width = 16;
  params.w_max = 0;
  const OptimizerResult result = Optimize(compiled, params);
  EXPECT_FALSE(result.ok());
}

TEST(CompiledProblemTest, WmaxMismatchReportsError) {
  const TestProblem problem = TestProblem::FromSoc(MakeD695());
  const CompiledProblem compiled(problem, 32);
  ASSERT_TRUE(compiled.ok());
  OptimizerParams params;  // default w_max = 64 != 32
  params.tam_width = 16;
  const OptimizerResult result = Optimize(compiled, params);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error->find("w_max"), std::string::npos);

  params.w_max = 32;
  EXPECT_TRUE(Optimize(compiled, params).ok());
}

// The assembly constructor reproduces the compiling constructor exactly when
// handed that compile's own units, and schedules identically through the
// optimizer — the bit-identity the incremental compile path rests on.
TEST(CompiledProblemTest, AssemblyFromOwnUnitsMatchesCompile) {
  const TestProblem problem = GeneratedProblem(7, 12);
  const CompiledProblem compiled(problem, 64);
  ASSERT_TRUE(compiled.ok());

  std::vector<CompiledCorePtr> units;
  for (CoreId c = 0; c < compiled.num_cores(); ++c) {
    units.push_back(compiled.core_artifact(c));
  }
  const CompiledProblem assembled(problem, 64, std::move(units));
  ASSERT_TRUE(assembled.ok());
  EXPECT_NE(assembled.id(), compiled.id());  // a distinct compilation...
  for (CoreId c = 0; c < compiled.num_cores(); ++c) {
    // ...sharing the per-core units themselves, not copies.
    EXPECT_EQ(assembled.core_artifact(c).get(), compiled.core_artifact(c).get());
  }

  OptimizerParams params;
  params.tam_width = 24;
  const OptimizerResult a = Optimize(assembled, params);
  const OptimizerResult b = Optimize(compiled, params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.makespan, b.makespan);
}

// A malformed handoff is reported through error(), never trusted: the
// assembly constructor validates unit count, w_max agreement, and non-null
// units with the same rigor the compiling constructor applies to its inputs.
TEST(CompiledProblemTest, AssemblyRejectsMalformedHandoffs) {
  const TestProblem problem = GeneratedProblem(7, 12);
  const CompiledProblem compiled(problem, 64);
  ASSERT_TRUE(compiled.ok());
  const auto units_of = [&](int n) {
    std::vector<CompiledCorePtr> units;
    for (CoreId c = 0; c < n; ++c) units.push_back(compiled.core_artifact(c));
    return units;
  };

  const CompiledProblem short_handoff(problem, 64, units_of(11));
  EXPECT_FALSE(short_handoff.ok());

  std::vector<CompiledCorePtr> with_null = units_of(12);
  with_null[3] = nullptr;
  const CompiledProblem null_unit(problem, 64, std::move(with_null));
  EXPECT_FALSE(null_unit.ok());

  // Units compiled at another w_max answer different widths: rejected.
  const CompiledProblem wrong_wmax(problem, 32, units_of(12));
  EXPECT_FALSE(wrong_wmax.ok());

  // The invalid-input checks run before any unit is accepted.
  const CompiledProblem bad_wmax(problem, 0, units_of(12));
  EXPECT_FALSE(bad_wmax.ok());
}

}  // namespace
}  // namespace soctest
