#include "io/schedule_export.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "soc/benchmarks.h"

namespace soctest {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    problem_ = TestProblem::FromSoc(MakeD695());
    OptimizerParams params;
    params.tam_width = 24;
    auto result = Optimize(problem_, params);
    ASSERT_TRUE(result.ok());
    schedule_ = std::move(result.schedule);
  }

  TestProblem problem_;
  Schedule schedule_;
};

std::size_t CountOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST_F(ExportTest, JsonContainsEveryCoreAndKeyFields) {
  const std::string json = ScheduleToJson(problem_.soc, schedule_);
  for (const auto& core : problem_.soc.cores()) {
    EXPECT_NE(json.find("\"" + core.name + "\""), std::string::npos);
  }
  EXPECT_NE(json.find("\"tam_width\": 24"), std::string::npos);
  EXPECT_NE(json.find("\"makespan\""), std::string::npos);
  EXPECT_NE(json.find("\"utilization\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(CountOccurrences(json, "{"), CountOccurrences(json, "}"));
  EXPECT_EQ(CountOccurrences(json, "["), CountOccurrences(json, "]"));
}

TEST_F(ExportTest, JsonEscapesSpecialCharacters) {
  Soc soc("quoted");
  CoreSpec c;
  c.name = "we\"ird\\name";
  c.num_inputs = 1;
  c.num_outputs = 1;
  c.num_patterns = 1;
  soc.AddCore(c);
  Schedule s("quoted", 2);
  CoreSchedule e;
  e.core = 0;
  e.assigned_width = 1;
  e.segments.push_back({{0, 3}, 1});
  s.Add(e);
  const std::string json = ScheduleToJson(soc, s);
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST_F(ExportTest, CsvHasOneRowPerSegmentPlusHeader) {
  const std::string csv = ScheduleToCsv(problem_.soc, schedule_);
  std::size_t segments = 0;
  for (const auto& entry : schedule_.entries()) segments += entry.segments.size();
  EXPECT_EQ(CountOccurrences(csv, "\n"), segments + 1);
  EXPECT_NE(csv.find("core_id,core_name,width"), std::string::npos);
}

TEST_F(ExportTest, SvgIsWellFormed) {
  const std::string svg = ScheduleToSvg(problem_.soc, schedule_);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  std::size_t segments = 0;
  for (const auto& entry : schedule_.entries()) segments += entry.segments.size();
  // One <rect> per segment (titles carry exact cycles).
  EXPECT_EQ(CountOccurrences(svg, "<rect"), segments);
  EXPECT_EQ(CountOccurrences(svg, "<title>"), CountOccurrences(svg, "</title>"));
}

TEST_F(ExportTest, WireSvgCoversAllGrantedWires) {
  const auto wires = AssignWires(schedule_);
  ASSERT_TRUE(wires.has_value());
  const std::string svg = WireMapToSvg(problem_.soc, schedule_, *wires);
  std::size_t rects = 0;
  for (const auto& grant : wires->grants) rects += grant.wires.size();
  EXPECT_EQ(CountOccurrences(svg, "<rect"), rects);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST_F(ExportTest, EmptyScheduleStillValidDocuments) {
  Soc soc("empty");
  CoreSpec c;
  c.name = "c";
  c.num_inputs = 1;
  c.num_outputs = 1;
  c.num_patterns = 1;
  soc.AddCore(c);
  const Schedule s("empty", 4);
  const std::string json = ScheduleToJson(soc, s);
  EXPECT_NE(json.find("\"cores\": [\n  ]"), std::string::npos);
  const std::string svg = ScheduleToSvg(soc, s);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace soctest
