#include "soc/generator.h"

#include <gtest/gtest.h>

#include "soc/soc_parser.h"

namespace soctest {
namespace {

TEST(GeneratorTest, ProducesRequestedCoreCount) {
  GeneratorParams params;
  params.num_cores = 17;
  const Soc soc = GenerateSoc(params);
  EXPECT_EQ(soc.num_cores(), 17);
  EXPECT_FALSE(soc.Validate().has_value());
}

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorParams params;
  params.seed = 42;
  params.num_cores = 12;
  const Soc a = GenerateSoc(params);
  const Soc b = GenerateSoc(params);
  EXPECT_EQ(SerializeSoc(a), SerializeSoc(b));
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorParams params;
  params.num_cores = 12;
  params.seed = 1;
  const Soc a = GenerateSoc(params);
  params.seed = 2;
  const Soc b = GenerateSoc(params);
  EXPECT_NE(SerializeSoc(a), SerializeSoc(b));
}

TEST(GeneratorTest, RespectsRanges) {
  GeneratorParams params;
  params.num_cores = 50;
  params.min_inputs = 5;
  params.max_inputs = 9;
  params.min_patterns = 100;
  params.max_patterns = 200;
  params.combinational_probability = 0.0;
  params.min_chains = 2;
  params.max_chains = 4;
  params.min_chain_len = 10;
  params.max_chain_len = 12;
  const Soc soc = GenerateSoc(params);
  for (const auto& core : soc.cores()) {
    EXPECT_GE(core.num_inputs, 5);
    EXPECT_LE(core.num_inputs, 9);
    EXPECT_GE(core.num_patterns, 100);
    EXPECT_LE(core.num_patterns, 200);
    EXPECT_GE(core.scan_chain_lengths.size(), 2u);
    EXPECT_LE(core.scan_chain_lengths.size(), 4u);
    for (int len : core.scan_chain_lengths) {
      EXPECT_GE(len, 10);
      EXPECT_LE(len, 12);
    }
  }
}

TEST(GeneratorTest, CombinationalProbabilityOneMeansNoScan) {
  GeneratorParams params;
  params.num_cores = 20;
  params.combinational_probability = 1.0;
  const Soc soc = GenerateSoc(params);
  for (const auto& core : soc.cores()) {
    EXPECT_TRUE(core.scan_chain_lengths.empty());
  }
}

TEST(GeneratorTest, HierarchyStaysValid) {
  GeneratorParams params;
  params.num_cores = 40;
  params.child_probability = 0.5;
  const Soc soc = GenerateSoc(params);
  EXPECT_FALSE(soc.Validate().has_value());
  int children = 0;
  for (const auto& core : soc.cores()) children += core.parent ? 1 : 0;
  EXPECT_GT(children, 0);
}

TEST(GeneratorTest, ResourcesAssigned) {
  GeneratorParams params;
  params.num_cores = 30;
  params.num_resources = 3;
  params.resource_probability = 1.0;
  const Soc soc = GenerateSoc(params);
  for (const auto& core : soc.cores()) {
    ASSERT_EQ(core.resources.size(), 1u);
    EXPECT_GE(core.resources[0], 0);
    EXPECT_LT(core.resources[0], 3);
  }
}

TEST(ScalePatternsTest, ScalesTowardTarget) {
  GeneratorParams params;
  params.num_cores = 10;
  Soc soc = GenerateSoc(params);
  const auto before = soc.TotalTestBits();
  ScalePatterns(soc, 2.0);
  const auto after = soc.TotalTestBits();
  EXPECT_GT(after, before);
  // Rounding on small pattern counts keeps this approximate.
  EXPECT_NEAR(static_cast<double>(after) / static_cast<double>(before), 2.0, 0.2);
}

TEST(ScalePatternsTest, NeverDropsBelowOnePattern) {
  GeneratorParams params;
  params.num_cores = 5;
  Soc soc = GenerateSoc(params);
  ScalePatterns(soc, 1e-9);
  for (const auto& core : soc.cores()) EXPECT_GE(core.num_patterns, 1);
}

}  // namespace
}  // namespace soctest
