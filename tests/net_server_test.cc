// Tests for the TCP serving front-end (service/net/): the line protocol,
// the bounded admission queue, and SocServer's robustness contracts — every
// degraded path (overload shed, deadline shed, slow reader, dead client,
// graceful drain) driven deterministically through the FaultInjector seam,
// plus the headline guarantee: responses over a socket are bit-identical to
// the offline batch path for every (threads, shards, dedup) setting.
#include "service/net/soc_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "service/batch_scheduler.h"
#include "service/net/admission_queue.h"
#include "service/net/client.h"
#include "service/net/fault_injector.h"
#include "service/net/protocol.h"
#include "service/request.h"

namespace soctest {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// BoundedQueue

TEST(BoundedQueueTest, DepthClampsToAtLeastOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.depth(), 1);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_FALSE(queue.TryPush(2));
}

TEST(BoundedQueueTest, TryPushFailsWhenFullAndTracksPeak) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_EQ(queue.size(), 2);
  EXPECT_EQ(queue.peak(), 2);
  int out = 0;
  EXPECT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_EQ(queue.peak(), 2);  // high water survives the pop
}

TEST(BoundedQueueTest, CloseDrainsRatherThanDiscards) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(7));
  ASSERT_TRUE(queue.TryPush(8));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(9));  // closed to new work...
  int out = 0;
  EXPECT_TRUE(queue.Pop(out));  // ...but queued work still pops
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(queue.Pop(out));  // closed AND empty: done
}

TEST(BoundedQueueTest, CloseWakesBlockedPop) {
  BoundedQueue<int> queue(1);
  std::thread popper([&queue] {
    int out = 0;
    EXPECT_FALSE(queue.Pop(out));
  });
  std::this_thread::sleep_for(20ms);
  queue.Close();
  popper.join();
}

// ---------------------------------------------------------------------------
// Protocol

TEST(ProtocolTest, BlankAndCommentLinesAreSkipped) {
  EXPECT_EQ(ParseNetLine("").kind, NetLine::Kind::kSkip);
  EXPECT_EQ(ParseNetLine("   \r").kind, NetLine::Kind::kSkip);
  EXPECT_EQ(ParseNetLine("# comment").kind, NetLine::Kind::kSkip);
}

TEST(ProtocolTest, StatsVerbIsCaseInsensitive) {
  EXPECT_EQ(ParseNetLine("stats").kind, NetLine::Kind::kStats);
  EXPECT_EQ(ParseNetLine("  STATS \r").kind, NetLine::Kind::kStats);
}

TEST(ProtocolTest, ParsesRequestLine) {
  const NetLine line = ParseNetLine("d695 16 improve iters=8 seed=3");
  ASSERT_EQ(line.kind, NetLine::Kind::kRequest);
  EXPECT_EQ(line.request.soc_spec, "d695");
  EXPECT_EQ(line.request.tam_width, 16);
  EXPECT_EQ(line.request.mode, BatchMode::kImprove);
  EXPECT_EQ(line.request.iterations, 8);
  EXPECT_EQ(line.request.seed, 3u);
  EXPECT_FALSE(line.deadline_ms.has_value());
}

TEST(ProtocolTest, DeadlineIsTransportLevelAndNeverReachesTheRequest) {
  const NetLine plain = ParseNetLine("d695 16 schedule");
  const NetLine budgeted = ParseNetLine("d695 16 deadline_ms=250 schedule");
  ASSERT_EQ(plain.kind, NetLine::Kind::kRequest);
  ASSERT_EQ(budgeted.kind, NetLine::Kind::kRequest);
  ASSERT_TRUE(budgeted.deadline_ms.has_value());
  EXPECT_EQ(*budgeted.deadline_ms, 250);
  // The canonical dedup key must be byte-identical with and without the
  // transport param — a deadline can never split a dedup bucket.
  EXPECT_EQ(FormatRequestParams(plain.request),
            FormatRequestParams(budgeted.request));
}

TEST(ProtocolTest, BadDeadlineIsAnError) {
  EXPECT_EQ(ParseNetLine("d695 16 schedule deadline_ms=0").kind,
            NetLine::Kind::kError);
  EXPECT_EQ(ParseNetLine("d695 16 schedule deadline_ms=soon").kind,
            NetLine::Kind::kError);
}

TEST(ProtocolTest, MalformedRequestsAreErrorsNotCrashes) {
  EXPECT_EQ(ParseNetLine("d695").kind, NetLine::Kind::kError);
  EXPECT_EQ(ParseNetLine("d695 16 interpolate").kind, NetLine::Kind::kError);
  EXPECT_EQ(ParseNetLine("no-such-soc 16 schedule").kind,
            NetLine::Kind::kError);
  EXPECT_EQ(ParseNetLine(std::string("d695 16 schedule\0junk", 21)).kind,
            NetLine::Kind::kError);
}

// ---------------------------------------------------------------------------
// SocServer helpers

ServerOptions BaseOptions() {
  ServerOptions options;
  options.batch.threads = 2;
  options.batch.shards = 2;
  options.batch.dedup = true;
  options.admission_depth = 64;
  options.idle_timeout_ms = 0;  // tests own connection lifetimes
  options.drain_ms = 10000;
  return options;
}

class RunningServer {
 public:
  explicit RunningServer(const ServerOptions& options) : server_(options) {
    std::string error;
    EXPECT_TRUE(server_.Start(&error)) << error;
  }
  SocServer* operator->() { return &server_; }
  SocServer& operator*() { return server_; }

  LineClient Connect() {
    LineClient client;
    std::string error;
    EXPECT_TRUE(client.Connect(server_.port(), &error)) << error;
    return client;
  }

  // Spins until `predicate(stats())` holds or the deadline passes.
  bool WaitFor(const std::function<bool(const ServerStats&)>& predicate,
               std::chrono::milliseconds deadline = 5000ms) {
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
      if (predicate(server_.stats())) return true;
      std::this_thread::sleep_for(2ms);
    }
    return predicate(server_.stats());
  }

 private:
  SocServer server_;
};

// The mixed workload the bit-identity matrix serves: every mode, duplicate
// lines (dedup food), and a cache-straining width mix — all on the embedded
// d695 benchmark so nothing touches the filesystem.
std::vector<std::string> MixedLines() {
  return {
      "d695 24 schedule search=1",
      "d695 16 schedule",
      "d695 16 sweep min=12",
      "d695 24 improve iters=8 batch=2 seed=7",
      "d695 16 schedule",
      "d695 32 schedule preempt=1",
      "d695 16 sweep min=12",
      "d695 24 improve iters=8 batch=2 seed=7",
  };
}

// Serves MixedLines offline through BatchScheduler::Run and formats each
// result exactly as the server would — the expected bytes on the wire.
std::vector<std::string> OfflineExpectedLines() {
  std::string text;
  for (const std::string& line : MixedLines()) text += line + '\n';
  RequestFileResult parsed = ParseRequestText(text, "request");
  auto* requests = std::get_if<std::vector<BatchRequest>>(&parsed);
  EXPECT_NE(requests, nullptr);
  BatchOptions options;
  options.threads = 1;
  options.shards = 1;
  options.dedup = false;
  BatchScheduler scheduler(options);
  const BatchOutcome outcome = scheduler.Run(*requests);
  std::vector<std::string> lines;
  for (const BatchItemResult& item : outcome.results) {
    EXPECT_TRUE(item.ok()) << *item.error;
    lines.push_back(FormatMakespanLine(item));
  }
  return lines;
}

// Sorts response lines by their "req=N" tag — responses may arrive in any
// completion order; request indices realign them with what was sent.
std::vector<std::string> SortByRequestIndex(std::vector<std::string> lines) {
  std::map<int, std::string> by_index;
  for (std::string& line : lines) {
    const std::size_t tag = line.find("req=");
    EXPECT_NE(tag, std::string::npos) << line;
    if (tag == std::string::npos) continue;
    by_index[std::stoi(line.substr(tag + 4))] = std::move(line);
  }
  std::vector<std::string> sorted;
  sorted.reserve(by_index.size());
  for (auto& [index, line] : by_index) sorted.push_back(std::move(line));
  return sorted;
}

// ---------------------------------------------------------------------------
// Bit-identity: socket responses == offline batch bytes, across the matrix.

TEST(SocServerTest, ResponsesBitIdenticalToOfflineBatchAcrossMatrix) {
  const std::vector<std::string> expected = OfflineExpectedLines();
  ASSERT_EQ(expected.size(), MixedLines().size());

  for (const int threads : {1, 8}) {
    for (const int shards : {1, 4}) {
      for (const bool dedup : {false, true}) {
        ServerOptions options = BaseOptions();
        options.batch.threads = threads;
        options.batch.shards = shards;
        options.batch.dedup = dedup;
        RunningServer server(options);
        LineClient client = server.Connect();
        for (const std::string& line : MixedLines()) {
          ASSERT_TRUE(client.SendLine(line));
        }
        client.ShutdownWrite();
        std::vector<std::string> responses = client.ReadRemaining();
        ASSERT_EQ(responses.size(), expected.size())
            << "threads=" << threads << " shards=" << shards
            << " dedup=" << dedup;
        responses = SortByRequestIndex(std::move(responses));
        EXPECT_EQ(responses, expected)
            << "threads=" << threads << " shards=" << shards
            << " dedup=" << dedup;
        server->Stop();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Protocol behavior over a live socket.

TEST(SocServerTest, StatsVerbAnswersTheCountersLine) {
  RunningServer server(BaseOptions());
  LineClient client = server.Connect();
  ASSERT_TRUE(client.SendLine("d695 16 schedule"));
  ASSERT_TRUE(client.SendLine("stats"));
  client.ShutdownWrite();
  const std::vector<std::string> responses = client.ReadRemaining();
  ASSERT_EQ(responses.size(), 2u);
  bool saw_stats = false;
  for (const std::string& line : responses) {
    if (line.rfind("STATS server ", 0) == 0) {
      saw_stats = true;
      EXPECT_NE(line.find("accepted=1"), std::string::npos) << line;
      EXPECT_NE(line.find("shed_overload=0"), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(saw_stats);
}

TEST(SocServerTest, MalformedLinesAnswerParseErrorsAndKeepSequence) {
  RunningServer server(BaseOptions());
  LineClient client = server.Connect();
  ASSERT_TRUE(client.SendLine("d695 16 frobnicate"));  // bad mode -> req=0
  ASSERT_TRUE(client.SendLine("# a comment consumes nothing"));
  ASSERT_TRUE(client.SendLine(""));
  ASSERT_TRUE(client.SendLine("d695 16 schedule"));  // -> req=1
  client.ShutdownWrite();
  std::vector<std::string> responses = client.ReadRemaining();
  ASSERT_EQ(responses.size(), 2u);
  responses = SortByRequestIndex(std::move(responses));
  EXPECT_EQ(responses[0].rfind("ERROR req=0 parse:", 0), 0u) << responses[0];
  EXPECT_EQ(responses[1].rfind("MAKESPAN req=1 ", 0), 0u) << responses[1];
  EXPECT_EQ(server->stats().parse_errors, 1);
}

TEST(SocServerTest, FinalLineWithoutNewlineStillServes) {
  RunningServer server(BaseOptions());
  LineClient client = server.Connect();
  // Half-close after an UNTERMINATED final line: EOF must flush it as a
  // request rather than drop it.
  ASSERT_TRUE(client.SendRaw("d695 16 schedule\nd695 24 schedule"));
  client.ShutdownWrite();
  const std::vector<std::string> responses = client.ReadRemaining();
  EXPECT_EQ(responses.size(), 2u);
}

TEST(SocServerTest, OversizedLineAnswersParseErrorAndCloses) {
  RunningServer server(BaseOptions());
  LineClient client = server.Connect();
  // > 1 MiB with no newline anywhere: the server must cap its read buffer,
  // answer a parse error, and close — the send may die mid-flood once the
  // server gives up reading, so its return value proves nothing.
  const std::string flood((std::size_t{1} << 20) + 8192, 'x');
  (void)client.SendRaw(flood);
  ASSERT_TRUE(server.WaitFor(
      [](const ServerStats& s) { return s.parse_errors == 1; }));
  // The connection is torn down (possibly by RST, which can discard the
  // buffered error line) — the client must see the stream end, not a hang.
  (void)client.ReadRemaining(5000);
  EXPECT_EQ(server->stats().parse_errors, 1);
}

TEST(SocServerTest, EvalFailureAnswersErrorLine) {
  // A SOC whose only core exceeds the power budget parses fine but cannot
  // be scheduled — the failure must surface at EVALUATION as an ERROR line.
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "soctest_net_infeasible.soc";
  {
    std::ofstream out(path);
    out << "soc hot\ncore only\n  inputs 4\n  outputs 4\n  patterns 10\n"
           "  power 100\nend\npowermax 10\n";
  }
  RunningServer server(BaseOptions());
  LineClient client = server.Connect();
  ASSERT_TRUE(client.SendLine("file:" + path.string() + " 16 schedule"));
  client.ShutdownWrite();
  const std::vector<std::string> responses = client.ReadRemaining();
  std::filesystem::remove(path);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].rfind("ERROR req=0 ", 0), 0u) << responses[0];
  EXPECT_EQ(server->stats().eval_failures, 1);
}

// ---------------------------------------------------------------------------
// Overload shedding.

TEST(SocServerTest, AdmissionOverflowShedsExplicitly) {
  FaultInjector faults;
  faults.hold_workers.store(true);  // park workers so the queue fills
  ServerOptions options = BaseOptions();
  options.batch.threads = 1;
  options.admission_depth = 2;
  options.faults = &faults;
  RunningServer server(options);

  LineClient client = server.Connect();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.SendLine("d695 16 schedule"));
  }
  // Workers are parked, the queue holds 2: exactly 3 requests shed NOW.
  ASSERT_TRUE(server.WaitFor(
      [](const ServerStats& s) { return s.shed_overload == 3; }));
  faults.hold_workers.store(false);

  client.ShutdownWrite();
  std::vector<std::string> responses = client.ReadRemaining();
  ASSERT_EQ(responses.size(), 5u);
  responses = SortByRequestIndex(std::move(responses));
  int makespans = 0;
  int overloaded = 0;
  for (const std::string& line : responses) {
    if (line.rfind("MAKESPAN ", 0) == 0) ++makespans;
    if (line.find("overloaded: admission queue full") != std::string::npos) {
      ++overloaded;
    }
  }
  EXPECT_EQ(makespans, 2);
  EXPECT_EQ(overloaded, 3);
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.shed_overload, 3);
  EXPECT_EQ(stats.queue_depth_peak, 2);
  EXPECT_EQ(stats.served, 2);
}

// ---------------------------------------------------------------------------
// Deadline budgets.

TEST(SocServerTest, ExpiredDeadlinesAreShedBeforeEvaluation) {
  FaultInjector faults;
  faults.hold_workers.store(true);
  ServerOptions options = BaseOptions();
  options.batch.threads = 1;
  options.faults = &faults;
  RunningServer server(options);

  LineClient client = server.Connect();
  ASSERT_TRUE(client.SendLine("d695 16 schedule deadline_ms=40"));
  ASSERT_TRUE(client.SendLine("d695 24 schedule deadline_ms=40"));
  ASSERT_TRUE(client.SendLine("d695 20 schedule"));  // no budget: must serve
  ASSERT_TRUE(server.WaitFor(
      [](const ServerStats& s) { return s.requests == 3; }));
  std::this_thread::sleep_for(120ms);  // let both budgets expire while queued
  faults.hold_workers.store(false);

  client.ShutdownWrite();
  std::vector<std::string> responses = client.ReadRemaining();
  ASSERT_EQ(responses.size(), 3u);
  responses = SortByRequestIndex(std::move(responses));
  EXPECT_NE(responses[0].find("deadline: deadline expired"), std::string::npos)
      << responses[0];
  EXPECT_NE(responses[1].find("deadline: deadline expired"), std::string::npos)
      << responses[1];
  EXPECT_EQ(responses[2].rfind("MAKESPAN req=2 ", 0), 0u) << responses[2];
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.shed_deadline, 2);
  EXPECT_EQ(stats.served, 1);
  EXPECT_EQ(stats.service_time_count, 1);  // shed work was never evaluated
}

TEST(SocServerTest, ServerDefaultDeadlineApplies) {
  FaultInjector faults;
  faults.hold_workers.store(true);
  ServerOptions options = BaseOptions();
  options.batch.threads = 1;
  options.deadline_ms = 30;  // every request inherits this budget
  options.faults = &faults;
  RunningServer server(options);

  LineClient client = server.Connect();
  ASSERT_TRUE(client.SendLine("d695 16 schedule"));
  ASSERT_TRUE(server.WaitFor(
      [](const ServerStats& s) { return s.requests == 1; }));
  std::this_thread::sleep_for(100ms);
  faults.hold_workers.store(false);

  client.ShutdownWrite();
  const std::vector<std::string> responses = client.ReadRemaining();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_NE(responses[0].find("deadline:"), std::string::npos) << responses[0];
  EXPECT_EQ(server->stats().shed_deadline, 1);
}

// ---------------------------------------------------------------------------
// Slow readers stall (and lose) only their own connection.

TEST(SocServerTest, SlowReaderStallsOnlyItsOwnConnection) {
  FaultInjector faults;
  faults.stall_new_connection_writes.store(true);
  ServerOptions options = BaseOptions();
  options.batch.threads = 1;
  options.write_buffer_lines = 4;
  options.faults = &faults;
  RunningServer server(options);

  // Connection A is accepted while the stall flag is up: its writer never
  // drains, so its responses pile into the bounded outbox.
  LineClient slow = server.Connect();
  ASSERT_TRUE(server.WaitFor(
      [](const ServerStats& s) { return s.accepted == 1; }));
  faults.stall_new_connection_writes.store(false);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(slow.SendLine("d695 16 schedule"));
  }
  ASSERT_TRUE(server.WaitFor(
      [](const ServerStats& s) { return s.responses >= 3; }));

  // Connection B, accepted after the flag cleared, is served normally WHILE
  // A sits stalled — the whole point: one slow reader cannot wedge serving.
  LineClient fast = server.Connect();
  ASSERT_TRUE(fast.SendLine("d695 24 schedule"));
  const auto fast_response = fast.ReadLine(5000);
  ASSERT_TRUE(fast_response.has_value());
  EXPECT_EQ(fast_response->rfind("MAKESPAN req=0 ", 0), 0u) << *fast_response;
  fast.Close();

  // Push A's outbox past its bound: the 5th undrained response closes A
  // with every queued line counted dropped — bounded memory, no stall of
  // anyone else, no silent loss.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(slow.SendLine("d695 16 schedule"));
  }
  ASSERT_TRUE(server.WaitFor(
      [](const ServerStats& s) { return s.slow_client_closed == 1; }));
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.slow_client_closed, 1);
  EXPECT_EQ(stats.responses_dropped, 5);  // 4 queued + the one that overflowed
  EXPECT_EQ(slow.ReadRemaining(2000).size(), 0u);  // A got nothing, then EOF
}

// ---------------------------------------------------------------------------
// Idle reaping and injected I/O failures.

TEST(SocServerTest, IdleConnectionsAreReaped) {
  ServerOptions options = BaseOptions();
  options.idle_timeout_ms = 200;
  RunningServer server(options);
  LineClient client = server.Connect();
  ASSERT_TRUE(server.WaitFor(
      [](const ServerStats& s) { return s.timeouts == 1; }));
  EXPECT_FALSE(client.ReadLine(2000).has_value());  // EOF, not a hang
}

TEST(SocServerTest, InjectedAcceptFailureDropsOnlyThatConnection) {
  FaultInjector faults;
  faults.fail_accepts.store(1);
  ServerOptions options = BaseOptions();
  options.faults = &faults;
  RunningServer server(options);

  LineClient doomed = server.Connect();  // TCP connects, server drops it
  EXPECT_FALSE(doomed.ReadLine(3000).has_value());
  ASSERT_TRUE(server.WaitFor(
      [](const ServerStats& s) { return s.accept_errors == 1; }));

  LineClient fine = server.Connect();
  ASSERT_TRUE(fine.SendLine("d695 16 schedule"));
  EXPECT_TRUE(fine.ReadLine(5000).has_value());
}

TEST(SocServerTest, InjectedReadFailureTearsDownCleanly) {
  FaultInjector faults;
  faults.fail_reads.store(1);
  ServerOptions options = BaseOptions();
  options.faults = &faults;
  RunningServer server(options);

  LineClient doomed = server.Connect();
  ASSERT_TRUE(doomed.SendLine("d695 16 schedule"));
  ASSERT_TRUE(server.WaitFor(
      [](const ServerStats& s) { return s.read_errors == 1; }));
  EXPECT_FALSE(doomed.ReadLine(3000).has_value());  // EOF

  LineClient fine = server.Connect();
  ASSERT_TRUE(fine.SendLine("d695 16 schedule"));
  EXPECT_TRUE(fine.ReadLine(5000).has_value());
}

TEST(SocServerTest, InjectedWriteFailureCountsDroppedResponses) {
  FaultInjector faults;
  faults.fail_writes.store(1);
  ServerOptions options = BaseOptions();
  options.faults = &faults;
  RunningServer server(options);

  LineClient doomed = server.Connect();
  ASSERT_TRUE(doomed.SendLine("d695 16 schedule"));
  ASSERT_TRUE(server.WaitFor([](const ServerStats& s) {
    return s.write_errors == 1 && s.responses_dropped >= 1;
  }));
  EXPECT_FALSE(doomed.ReadLine(3000).has_value());

  LineClient fine = server.Connect();
  ASSERT_TRUE(fine.SendLine("d695 16 schedule"));
  EXPECT_TRUE(fine.ReadLine(5000).has_value());
}

TEST(SocServerTest, ConnectionLimitRefusesWithAnExplicitLine) {
  ServerOptions options = BaseOptions();
  options.max_connections = 1;
  RunningServer server(options);

  LineClient holder = server.Connect();
  ASSERT_TRUE(server.WaitFor(
      [](const ServerStats& s) { return s.accepted == 1; }));
  LineClient refused = server.Connect();
  const auto line = refused.ReadLine(5000);
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("overloaded: connection limit reached"),
            std::string::npos)
      << *line;
  EXPECT_EQ(server->stats().connections_refused, 1);

  // The held connection still works.
  ASSERT_TRUE(holder.SendLine("d695 16 schedule"));
  EXPECT_TRUE(holder.ReadLine(5000).has_value());
}

// ---------------------------------------------------------------------------
// Graceful drain.

TEST(SocServerTest, GracefulDrainServesEverythingQueued) {
  FaultInjector faults;
  faults.hold_workers.store(true);
  ServerOptions options = BaseOptions();
  options.batch.threads = 2;
  options.drain_ms = 30000;  // generous budget: everything must SERVE
  options.faults = &faults;
  RunningServer server(options);

  LineClient client = server.Connect();
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.SendLine("d695 16 schedule"));
  }
  ASSERT_TRUE(server.WaitFor(
      [](const ServerStats& s) { return s.requests == kRequests; }));

  // Stop() with the queue still full: workers un-park on stopping_, drain
  // the queue inside the budget, writers flush, and ONLY then Stop returns.
  server->Stop();
  faults.hold_workers.store(false);  // (already released by stopping_)

  const std::vector<std::string> responses = client.ReadRemaining();
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kRequests));
  for (const std::string& line : responses) {
    EXPECT_EQ(line.rfind("MAKESPAN ", 0), 0u) << line;
  }
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.served, kRequests);
  EXPECT_EQ(stats.shed_drain, 0);
  EXPECT_EQ(stats.responses_dropped, 0);
}

TEST(SocServerTest, DrainHardStopShedsButAnswersEveryRequest) {
  FaultInjector faults;
  faults.hold_workers.store(true);
  ServerOptions options = BaseOptions();
  options.batch.threads = 1;
  options.drain_ms = 0;  // budget already spent: every queued request sheds
  options.faults = &faults;
  RunningServer server(options);

  LineClient client = server.Connect();
  constexpr int kRequests = 4;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.SendLine("d695 16 schedule"));
  }
  ASSERT_TRUE(server.WaitFor(
      [](const ServerStats& s) { return s.requests == kRequests; }));
  server->Stop();

  // Zero lost responses even at hard stop: every admitted request answers,
  // as a shed rather than a result.
  const std::vector<std::string> responses = client.ReadRemaining();
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kRequests));
  for (const std::string& line : responses) {
    EXPECT_NE(line.find("draining: server shutting down"), std::string::npos)
        << line;
  }
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.shed_drain, kRequests);
  EXPECT_EQ(stats.served, 0);
  EXPECT_EQ(stats.responses_dropped, 0);
}

TEST(SocServerTest, StopIsIdempotentAndDestructorSafe) {
  ServerOptions options = BaseOptions();
  RunningServer server(options);
  LineClient client = server.Connect();
  ASSERT_TRUE(client.SendLine("d695 16 schedule"));
  EXPECT_TRUE(client.ReadLine(5000).has_value());
  server->Stop();
  server->Stop();  // second Stop is a no-op; destructor Stop()s again
}

}  // namespace
}  // namespace soctest
