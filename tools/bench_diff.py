#!/usr/bin/env python3
"""Compare two bench_results JSON files (or directories of them).

bench/run_all.sh writes one BENCH_<name>.json per bench binary, holding the
wall-clock plus every "MAKESPAN key=value" and "STATS key=value" line the
bench printed, parsed into "makespans" / "stats" object arrays. This tool
diffs a baseline capture against a current one:

  * "makespans" must match exactly (order-sensitive) — schedule quality is
    deterministic for fixed inputs, so any drift is a real behavior change.
  * "stats" must match exactly after dropping the volatile keys — counters
    that depend on thread interleaving (cache hit/miss/eviction splits,
    compile counts, dedup hits/joins) legitimately differ across machines
    and runs, so they are ignored by default; everything else (improver
    improvements/drawn/evaluated/rounds, the engine's noops/dups/
    bound_aborts and per-move accepted/attempted splits — all deterministic
    by the improver's thread-invariance contract, candidate bounding
    included, since candidates race the already-reduced incumbent rather
    than each other — B&B node counts, admission rounds and the scheduler's
    candidates_examined/buckets_skipped) is deterministic and compared.
    The power/priority scenario counters (power_scenarios' constant/
    throttled makespans and hot-lot finish times, perf_micro's
    optimize_throttled rounds, multisite_driven's rail caps, spans, and
    per-site makespans) are single-threaded scheduler outputs —
    deterministic by the bit-identity contract, so all of them are gated.
  * wall_ms deltas are reported for information only — they never fail the
    diff (CI machines vary too much for a hard wall-clock gate).

Exit status: 0 when all compared files match, 1 on any mismatch, 2 on usage
or missing-file errors.

Usage:
  tools/bench_diff.py BASELINE.json CURRENT.json
  tools/bench_diff.py baseline_dir/ current_dir/   # matches BENCH_*.json by name
  ... [--ignore-key KEY]...   # extend the volatile-key list
"""

import argparse
import json
import os
import sys

# Stats keys that depend on thread/shard interleaving or machine parallelism
# rather than on the algorithms under test. Everything not listed here is
# treated as deterministic and diffed strictly.
DEFAULT_IGNORED_KEYS = frozenset({
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "compiles",
    "core_hits",
    "core_misses",
    "core_evictions",
    "core_collisions",
    "core_compiles",
    "core_entries",
    "dedup_hits",
    "dedup_joins",
    "evaluations",
    # Serving-front-end counters: load timing, queue occupancy, and latency
    # percentiles vary run to run by construction — only the deterministic
    # response content (and counts like requests/served) is gated.
    "accepted",
    "queue_depth_peak",
    "p50_service_us",
    "p99_service_us",
    "service_time_count",
    "qps",
    "elapsed_us",
    "shed_overload",
    "shed_deadline",
    "shed_drain",
    "timeouts",
    "responses",
    "responses_dropped",
})


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def strip_ignored(entries, ignored):
    return [
        {k: v for k, v in entry.items() if k not in ignored}
        for entry in entries
    ]


def diff_entry_lists(label, base, cur, out):
    """Appends human-readable mismatch lines to `out`; returns match bool."""
    if base == cur:
        return True
    out.append(f"  {label}: MISMATCH")
    if len(base) != len(cur):
        out.append(f"    entry count: baseline {len(base)} vs current {len(cur)}")
    for i, (b, c) in enumerate(zip(base, cur)):
        if b != c:
            out.append(f"    [{i}] baseline: {json.dumps(b, sort_keys=True)}")
            out.append(f"    [{i}]  current: {json.dumps(c, sort_keys=True)}")
    for i in range(min(len(base), len(cur)), len(base)):
        out.append(f"    [{i}] only in baseline: {json.dumps(base[i], sort_keys=True)}")
    for i in range(min(len(base), len(cur)), len(cur)):
        out.append(f"    [{i}] only in current:  {json.dumps(cur[i], sort_keys=True)}")
    return False


def compare_files(base_path, cur_path, ignored):
    base = load(base_path)
    cur = load(cur_path)
    name = base.get("bench", os.path.basename(base_path))
    lines = [f"== {name} =="]
    ok = True

    base_wall = base.get("wall_ms")
    cur_wall = cur.get("wall_ms")
    if isinstance(base_wall, (int, float)) and isinstance(cur_wall, (int, float)):
        delta = cur_wall - base_wall
        pct = (100.0 * delta / base_wall) if base_wall else float("inf")
        lines.append(
            f"  wall_ms: {base_wall} -> {cur_wall} ({delta:+d} ms, {pct:+.1f}%)"
            " [informational]"
        )

    if base.get("status") != cur.get("status"):
        lines.append(
            f"  status: MISMATCH baseline={base.get('status')!r}"
            f" current={cur.get('status')!r}"
        )
        ok = False

    ok &= diff_entry_lists(
        "makespans", base.get("makespans", []), cur.get("makespans", []), lines
    )
    ok &= diff_entry_lists(
        "stats (volatile keys ignored)",
        strip_ignored(base.get("stats", []), ignored),
        strip_ignored(cur.get("stats", []), ignored),
        lines,
    )
    if ok:
        lines.append("  makespans/stats: identical")
    return ok, lines


def collect_pairs(base_arg, cur_arg):
    """Yields (baseline, current) file pairs; raises FileNotFoundError."""
    if os.path.isdir(base_arg) != os.path.isdir(cur_arg):
        raise ValueError("pass two files or two directories, not a mix")
    if not os.path.isdir(base_arg):
        return [(base_arg, cur_arg)]
    names = sorted(
        n for n in os.listdir(base_arg)
        if n.startswith("BENCH_") and n.endswith(".json")
    )
    if not names:
        raise ValueError(f"no BENCH_*.json files in {base_arg}")
    pairs = []
    for n in names:
        cur_path = os.path.join(cur_arg, n)
        if not os.path.exists(cur_path):
            raise FileNotFoundError(f"{cur_path} (present in baseline dir)")
        pairs.append((os.path.join(base_arg, n), cur_path))
    return pairs


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff bench_results JSON against a baseline."
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json file or directory")
    parser.add_argument("current", help="current BENCH_*.json file or directory")
    parser.add_argument(
        "--ignore-key",
        action="append",
        default=[],
        metavar="KEY",
        help="additional stats key to ignore (repeatable)",
    )
    args = parser.parse_args(argv)

    ignored = DEFAULT_IGNORED_KEYS | set(args.ignore_key)
    try:
        pairs = collect_pairs(args.baseline, args.current)
    except (ValueError, FileNotFoundError) as e:
        print(f"bench_diff: error: {e}", file=sys.stderr)
        return 2

    all_ok = True
    for base_path, cur_path in pairs:
        try:
            ok, lines = compare_files(base_path, cur_path, ignored)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_diff: error reading {base_path} vs {cur_path}: {e}",
                  file=sys.stderr)
            return 2
        print("\n".join(lines))
        all_ok &= ok

    if not all_ok:
        print("bench_diff: FAIL — deterministic results drifted from the "
              "baseline (regenerate it only for an intentional change)")
        return 1
    print("bench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
