// soctest_cli — command-line driver for the library.
//
// Subcommands:
//   benchmarks                               list embedded benchmark SOCs
//   wrapper   <soc> <core> [--wmax N]        T(w) curve + Pareto widths
//   schedule  <soc> --width W [--preempt] [--power-factor F]
//             [--budget start:pmax[,start:pmax...]] [--no-prio]
//             [--s N] [--delta N] [--search] [--threads N] [--gantt]
//             [--wires] [--json PATH] [--csv PATH] [--svg PATH]
//   sweep     <soc> [--min N] [--max N] [--rho R] [--threads N] [--csv PATH]
//   batch     <request-file> [--threads N] [--shards N] [--cache-entries N]
//             [--dedup] [--result-entries N] [--core-cache-entries N]
//             serve many SOC requests off the shared CompiledProblem cache
//             (one request per line: "<soc> <width> <mode> [key=value ...]";
//             see src/service/request.h for the format); --dedup serves
//             identical request lines one evaluation
//   serve     [--port N] [--threads N] [--shards N] [--cache-entries N]
//             [--dedup] [--result-entries N] [--core-cache-entries N]
//             [--admission-depth N] [--deadline-ms N] [--idle-timeout-ms N]
//             [--drain-ms N] [--max-connections N]
//             TCP front-end on 127.0.0.1 speaking the batch request-line
//             protocol (one request per line in, MAKESPAN/ERROR lines out,
//             "stats" for counters); prints "LISTENING port=N", serves
//             until SIGINT/SIGTERM, then drains gracefully
//   lowerbound <soc> --width W
//   advise    <soc> [--threshold R] [--max-budget N]   preemption budgets
//
// <soc> is either an embedded benchmark name (d695, p22810s, p34392s,
// p93791s) or a path to a .soc file; an existing file wins over a benchmark
// of the same name, and "bench:<name>" / "file:<path>" force either.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <thread>
#include <utility>

#include "baseline/lower_bound.h"
#include "constraints/power.h"
#include "core/gantt.h"
#include "core/idle_analysis.h"
#include "core/improver.h"
#include "core/optimizer.h"
#include "core/preemption_advisor.h"
#include "core/validator.h"
#include "core/wire_assign.h"
#include "io/schedule_export.h"
#include "search/driver.h"
#include "service/batch_scheduler.h"
#include "service/net/protocol.h"
#include "service/net/soc_server.h"
#include "soc/benchmarks.h"
#include "soc/soc_parser.h"
#include "tdv/effective_width.h"
#include "util/args.h"
#include "util/strings.h"
#include "util/table.h"
#include "wrapper/pareto.h"

using namespace soctest;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: soctest_cli <benchmarks|wrapper|schedule|sweep|batch|"
               "serve|lowerbound|advise> ...\n"
               "run with a subcommand and --help-style args; see the header "
               "of tools/soctest_cli.cc\n");
  return 2;
}

// Loads an SOC (with optional declared constraints) by spec token — an
// existing file wins over an embedded benchmark of the same name, and
// "bench:<name>" / "file:<path>" force either resolution (LoadSocSpec).
// Returns nullopt after printing an error.
std::optional<TestProblem> LoadProblem(const std::string& spec) {
  const ParseResult parsed = LoadSocSpec(spec);
  if (const auto* err = std::get_if<ParseError>(&parsed)) {
    std::fprintf(stderr, "%s\n", err->ToString().c_str());
    return std::nullopt;
  }
  return TestProblem::FromParsed(std::get<ParsedSoc>(parsed));
}

bool WriteFileOrWarn(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  f << content;
  std::printf("wrote %s\n", path.c_str());
  return true;
}

int CmdBenchmarks() {
  TablePrinter table({"name", "cores", "total test bits"}, {Align::kLeft});
  for (const auto& soc : AllBenchmarkSocs()) {
    table.AddRow({soc.name(), std::to_string(soc.num_cores()),
                  WithCommas(soc.TotalTestBits())});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

int CmdWrapper(int argc, const char* const* argv) {
  ArgParser args({}, {"wmax"});
  if (!args.Parse(argc, argv, 2) || args.positional().size() != 2) {
    std::fprintf(stderr, "usage: soctest_cli wrapper <soc> <core> [--wmax N]\n");
    return 2;
  }
  const auto problem = LoadProblem(args.positional()[0]);
  if (!problem) return 1;
  const CoreId core = problem->soc.FindCore(args.positional()[1]);
  if (core == kNoCore) {
    std::fprintf(stderr, "no core named '%s'\n", args.positional()[1].c_str());
    return 1;
  }
  const int wmax = args.Int32Or("wmax", 64);
  const TimeCurve curve(problem->soc.core(core), std::max(1, wmax));
  TablePrinter table({"w", "T(w) cycles", "Pareto"});
  const auto pareto = ParetoPoints(curve);
  for (int w = 1; w <= curve.w_max(); ++w) {
    bool is_pareto = false;
    for (const auto& p : pareto) is_pareto |= p.width == w;
    table.AddRow({std::to_string(w), WithCommas(curve.TimeAt(w)),
                  is_pareto ? "*" : ""});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

int CmdSchedule(int argc, const char* const* argv) {
  // --search runs the restart-grid search (paper parameter sweep) on
  // --threads workers; --sweep is the historical spelling of --search.
  // --wide widens the grid with the extended axes (rank=width, idle-fill
  // slack, preemption budget caps). --improve N runs the batched hill-climb
  // improver for N candidate draws on top of the restart search (composing
  // with --wide), evaluating --batch candidates per round on
  // --improver-threads workers (default: the --threads value). The improver
  // engine layers (core/improver.h) are on by default; --no-bound and
  // --no-memo disable incumbent bounding and candidate memoization,
  // --adaptive turns on UCB1 move selection over --moves (comma-separated
  // subset of nudge,swap,block), and --max-evals M caps scheduler runs.
  ArgParser args({"preempt", "sweep", "search", "wide", "adaptive",
                  "no-bound", "no-memo", "no-prio", "gantt", "wires"},
                 {"width", "power-factor", "budget", "s", "delta", "threads",
                  "improve", "improver-threads", "batch", "moves", "max-evals",
                  "json", "csv", "svg"});
  if (!args.Parse(argc, argv, 2) || args.positional().size() != 1) {
    std::fprintf(stderr, "usage: soctest_cli schedule <soc> --width W "
                         "[--preempt] [--power-factor F] "
                         "[--budget start:pmax[,start:pmax...]] [--no-prio] "
                         "[--s N] [--delta N] "
                         "[--search] [--wide] [--threads N] [--improve N] "
                         "[--improver-threads N] [--batch K] [--adaptive] "
                         "[--moves m1,m2] [--no-bound] [--no-memo] "
                         "[--max-evals M] [--gantt] [--wires] [--json P] "
                         "[--csv P] [--svg P]\n%s\n",
                 args.Error().c_str());
    return 2;
  }
  auto problem = LoadProblem(args.positional()[0]);
  if (!problem) return 1;

  const double power_factor = args.DoubleOr("power-factor", 0.0);
  if (power_factor > 0.0) {
    problem->power = PowerModel::FromSoc(problem->soc, power_factor);
  }
  if (const auto budget_text = args.Option("budget")) {
    // Replace the problem's budget timeline in place (deriving per-core power
    // if the SOC declared none) so the optimizer, the validator, and every
    // report below all see the same time-varying cap.
    std::string error;
    const auto budget = ParseBudgetTimeline(*budget_text, &error);
    if (!budget) {
      std::fprintf(stderr, "--budget: %s\n", error.c_str());
      return 2;
    }
    problem->power = WithBudget(problem->soc, problem->power, *budget);
  }

  OptimizerParams params;
  params.tam_width = args.Int32Or("width", 32);
  params.s_percent = args.DoubleOr("s", 5.0);
  params.delta = args.Int32Or("delta", 1);
  params.allow_preemption = args.HasFlag("preempt");
  params.honor_priority = !args.HasFlag("no-prio");
  // Default 0 = all hardware threads, matching the sweep subcommand.
  const int threads = args.Int32Or("threads", 0);
  const int improve_iters = args.Int32Or("improve", 0);
  // Falls back to --threads so one thread flag governs both search modes.
  const int improver_threads =
      args.Int32Or("improver-threads", threads);
  const int batch = args.Int32Or("batch", 8);
  const GridExtent extent =
      args.HasFlag("wide") ? GridExtent::kWide : GridExtent::kCanonical;
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.Error().c_str());
    return 2;
  }
  const bool searching = args.HasFlag("search") || args.HasFlag("sweep");
  // Silently ignoring a mode-shaping flag misleads more than a warning.
  if (improve_iters <= 0) {
    for (const char* dep : {"batch", "improver-threads", "moves",
                            "max-evals"}) {
      if (args.Option(dep)) {
        std::fprintf(stderr,
                     "warning: --%s shapes only the improver and has no "
                     "effect without --improve\n", dep);
      }
    }
    for (const char* dep : {"adaptive", "no-bound", "no-memo"}) {
      if (args.HasFlag(dep)) {
        std::fprintf(stderr,
                     "warning: --%s shapes only the improver and has no "
                     "effect without --improve\n", dep);
      }
    }
    if (!searching && args.HasFlag("wide")) {
      std::fprintf(stderr,
                   "warning: --wide has no effect without --search or "
                   "--improve; running a single schedule\n");
    }
  }

  // Compile once, then search/schedule against the shared artifacts.
  const CompiledProblem compiled(*problem, params.w_max);
  OptimizerResult result;
  if (improve_iters > 0) {
    // Restart search + batched parallel hill climb (core/improver.h).
    ImproverParams improver;
    improver.optimizer = params;
    improver.grid = extent;
    improver.iterations = improve_iters;
    improver.threads = improver_threads;
    improver.batch = batch;
    improver.adaptive = args.HasFlag("adaptive");
    improver.bound_candidates = !args.HasFlag("no-bound");
    improver.memoize = !args.HasFlag("no-memo");
    improver.max_evaluations = args.Int32Or("max-evals", 0);
    if (const auto moves = args.Option("moves")) {
      if (!improver.adaptive) {
        std::fprintf(stderr, "warning: --moves selects bandit arms and has "
                             "no effect without --adaptive\n");
      }
      improver.moves.clear();
      for (const auto& name : Split(*moves, ',')) {
        const std::string token = ToLower(Trim(name));
        if (token == "nudge") {
          improver.moves.push_back(ImproverMove::kNudge);
        } else if (token == "swap") {
          improver.moves.push_back(ImproverMove::kPairSwap);
        } else if (token == "block") {
          improver.moves.push_back(ImproverMove::kBlockPerturb);
        } else {
          std::fprintf(stderr, "unknown move '%s' (expected nudge, swap, "
                               "or block)\n", token.c_str());
          return 2;
        }
      }
    }
    ImproverResult improved = ImproveSchedule(compiled, improver);
    if (improved.best.ok()) {
      std::printf("improver: %s -> %s cycles (%d accepted / %d drawn, "
                  "%d evaluated, %d rounds of %d)\n",
                  WithCommas(improved.initial_makespan).c_str(),
                  WithCommas(improved.best.makespan).c_str(),
                  improved.improvements, improved.drawn, improved.evaluated,
                  improved.rounds, improved.batch);
      // Deterministic engine counters, grep-parsable like the bench lines
      // (key=value). Per-kind fields are accepted/attempted.
      std::printf("STATS bench=improve adaptive=%d bound=%d memo=%d "
                  "drawn=%d evaluated=%d noops=%d dups=%d bound_aborts=%d "
                  "improvements=%d rounds=%d "
                  "nudge=%d/%d swap=%d/%d block=%d/%d "
                  "initial=%lld final=%lld\n",
                  improver.adaptive ? 1 : 0,
                  improver.bound_candidates ? 1 : 0,
                  improver.memoize ? 1 : 0,
                  improved.drawn, improved.evaluated, improved.noops,
                  improved.duplicates_skipped, improved.bound_aborts,
                  improved.improvements, improved.rounds,
                  improved.accepted[0], improved.attempted[0],
                  improved.accepted[1], improved.attempted[1],
                  improved.accepted[2], improved.attempted[2],
                  static_cast<long long>(improved.initial_makespan),
                  static_cast<long long>(improved.best.makespan));
    }
    result = std::move(improved.best);
  } else if (searching) {
    SearchOptions options;
    options.threads = threads;
    options.extent = extent;
    result = RunRestartSearch(compiled, params, options).best;
  } else {
    result = Optimize(compiled, params);
  }
  if (!result.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n", result.error->c_str());
    return 1;
  }

  const auto violations = ValidateSchedule(*problem, result.schedule);
  const auto lb = ComputeLowerBound(problem->soc, params.tam_width, params.w_max);
  std::printf("%s @ W=%d: makespan %s cycles (LB %s, +%.1f%%), valid: %s\n",
              problem->soc.name().c_str(), params.tam_width,
              WithCommas(result.makespan).c_str(),
              WithCommas(lb.value()).c_str(),
              100.0 * (static_cast<double>(result.makespan) /
                           static_cast<double>(lb.value()) -
                       1.0),
              violations.empty() ? "yes" : "NO");
  if (!violations.empty()) {
    std::fputs(FormatViolations(violations).c_str(), stderr);
    return 1;
  }
  std::fputs(FormatIdleReport(AnalyzeIdle(result.schedule), 3).c_str(), stdout);

  if (args.HasFlag("gantt")) {
    std::fputs(RenderCoreGantt(problem->soc, result.schedule).c_str(), stdout);
  }
  std::optional<WireAssignment> wires;
  if (args.HasFlag("wires") || args.Option("svg")) {
    wires = AssignWires(result.schedule);
  }
  if (args.HasFlag("wires") && wires) {
    std::fputs(RenderWireGantt(problem->soc, result.schedule, *wires).c_str(),
               stdout);
  }
  if (const auto path = args.Option("json")) {
    WriteFileOrWarn(*path, ScheduleToJson(problem->soc, result.schedule));
  }
  if (const auto path = args.Option("csv")) {
    WriteFileOrWarn(*path, ScheduleToCsv(problem->soc, result.schedule));
  }
  if (const auto path = args.Option("svg")) {
    WriteFileOrWarn(*path, ScheduleToSvg(problem->soc, result.schedule));
  }
  return 0;
}

int CmdSweep(int argc, const char* const* argv) {
  ArgParser args({}, {"min", "max", "rho", "threads", "csv"});
  if (!args.Parse(argc, argv, 2) || args.positional().size() != 1) {
    std::fprintf(stderr, "usage: soctest_cli sweep <soc> [--min N] [--max N] "
                         "[--rho R] [--threads N] [--csv P]\n%s\n",
                 args.Error().c_str());
    return 2;
  }
  const auto problem = LoadProblem(args.positional()[0]);
  if (!problem) return 1;
  SweepOptions options;
  options.min_width = args.Int32Or("min", 8);
  options.max_width = args.Int32Or("max", 64);
  options.threads = args.Int32Or("threads", 0);
  const double rho = args.DoubleOr("rho", 0.5);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.Error().c_str());
    return 2;
  }
  const auto sweep = SweepWidths(*problem, options);
  if (sweep.empty()) {
    std::fprintf(stderr, "sweep produced no points\n");
    return 1;
  }
  const auto curve = CostCurve(sweep, rho);
  std::string csv = "w,time_cycles,volume_bits,cost\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    csv += StrFormat("%d,%lld,%lld,%.4f\n", sweep[i].tam_width,
                     static_cast<long long>(sweep[i].test_time),
                     static_cast<long long>(sweep[i].data_volume),
                     curve[i].cost);
  }
  if (const auto path = args.Option("csv")) {
    WriteFileOrWarn(*path, csv);
  } else {
    std::fputs(csv.c_str(), stdout);
  }
  const TradeoffRow row = MakeTradeoffRow(sweep, rho);
  std::printf("effective width W_E(rho=%.2f) = %d (C=%.3f, T=%s, D=%s)\n", rho,
              row.effective_width, row.min_cost,
              WithCommas(row.time_at_effective).c_str(),
              WithCommas(row.volume_at_effective).c_str());
  return 0;
}

int CmdBatch(int argc, const char* const* argv) {
  // --dedup serves semantically identical request lines one evaluation
  // (cross-request result deduplication with single-flight coordination);
  // --result-entries bounds the result cache it fills. Batch output is
  // bit-identical with and without it — only the STATS line can tell.
  ArgParser args({"dedup"}, {"threads", "shards", "cache-entries",
                             "result-entries", "core-cache-entries"});
  if (!args.Parse(argc, argv, 2) || args.positional().size() != 1) {
    std::fprintf(stderr, "usage: soctest_cli batch <request-file> "
                         "[--threads N] [--shards N] [--cache-entries N] "
                         "[--dedup] [--result-entries N] "
                         "[--core-cache-entries N]\n%s\n",
                 args.Error().c_str());
    return 2;
  }
  BatchOptions options;
  options.threads = args.Int32Or("threads", 0);
  options.shards = args.Int32Or("shards", 4);
  options.cache_entries = args.Int32Or("cache-entries", 64);
  options.dedup = args.HasFlag("dedup");
  options.result_entries = args.Int32Or("result-entries", 256);
  // Per-core artifact cache under the compiled-problem cache: near-duplicate
  // SOCs recompile only their edited cores. 0 disables; makespans are
  // bit-identical either way.
  options.core_cache_entries = args.Int32Or("core-cache-entries", 4096);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.Error().c_str());
    return 2;
  }

  const RequestFileResult loaded = LoadRequestFile(args.positional()[0]);
  if (const auto* err = std::get_if<RequestParseError>(&loaded)) {
    std::fprintf(stderr, "%s\n", err->ToString().c_str());
    return 1;
  }
  const auto& requests = std::get<std::vector<BatchRequest>>(loaded);
  if (requests.empty()) {
    std::fprintf(stderr, "request file has no requests\n");
    return 1;
  }

  BatchScheduler scheduler(options);
  const BatchOutcome outcome = scheduler.Run(requests);
  for (const BatchItemResult& item : outcome.results) {
    if (!item.ok()) {
      std::fprintf(stderr, "req %d (%s @ W=%d, %s): %s\n", item.index,
                   item.soc_name.c_str(), item.tam_width,
                   BatchModeName(item.mode), item.error->c_str());
      continue;
    }
    // No cache/dedup annotations here: which request hits, misses, or joins
    // varies with thread interleaving, and MAKESPAN lines are the output the
    // (threads, shards, dedup) bit-identity contract covers. Work-done
    // counters live on the STATS line below. The formatter is shared with
    // the TCP front-end, so a request served over a socket answers with
    // these exact bytes.
    std::printf("%s\n", FormatMakespanLine(item).c_str());
  }
  // evaluations: search/improve/sweep runs actually executed (failed ones
  // included — both paths evaluate and report them) — with dedup on, the
  // result-cache misses; without it, every request.
  const long long evaluations =
      options.dedup ? outcome.dedup.misses
                    : static_cast<long long>(requests.size());
  std::printf("STATS bench=batch requests=%d served=%d failed=%d "
              "threads=%d shards=%d "
              "cache_hits=%lld cache_misses=%lld cache_evictions=%lld "
              "cache_collisions=%lld compiles=%lld entries=%d "
              "dedup=%d evaluations=%lld dedup_hits=%lld dedup_joins=%lld "
              "dedup_evictions=%lld result_entries=%d "
              "core_hits=%lld core_misses=%lld core_evictions=%lld "
              "core_collisions=%lld core_compiles=%lld core_entries=%d\n",
              static_cast<int>(requests.size()), outcome.served,
              static_cast<int>(requests.size()) - outcome.served,
              scheduler.threads(), scheduler.cache().shards(),
              static_cast<long long>(outcome.cache.hits),
              static_cast<long long>(outcome.cache.misses),
              static_cast<long long>(outcome.cache.evictions),
              static_cast<long long>(outcome.cache.collisions),
              static_cast<long long>(outcome.cache.compiles),
              outcome.cache.entries, options.dedup ? 1 : 0, evaluations,
              static_cast<long long>(outcome.dedup.hits),
              static_cast<long long>(outcome.dedup.joins),
              static_cast<long long>(outcome.dedup.evictions),
              outcome.dedup.entries,
              static_cast<long long>(outcome.core.hits),
              static_cast<long long>(outcome.core.misses),
              static_cast<long long>(outcome.core.evictions),
              static_cast<long long>(outcome.core.collisions),
              static_cast<long long>(outcome.core.compiles),
              outcome.core.entries);
  // Exit non-zero when ANY request failed — scripted callers must not need
  // to scrape stderr to notice a partial batch.
  return outcome.served == static_cast<int>(requests.size()) ? 0 : 1;
}

// SIGINT/SIGTERM flip this; the serve loop polls it and drains gracefully.
std::atomic<bool> g_serve_stop{false};

void HandleStopSignal(int) { g_serve_stop.store(true); }

int CmdServe(int argc, const char* const* argv) {
  ArgParser args({"dedup"},
                 {"port", "threads", "shards", "cache-entries",
                  "result-entries", "core-cache-entries", "admission-depth",
                  "deadline-ms", "idle-timeout-ms", "drain-ms",
                  "max-connections"});
  if (!args.Parse(argc, argv, 2) || !args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: soctest_cli serve [--port N] [--threads N] "
                 "[--shards N] [--cache-entries N] [--dedup] "
                 "[--result-entries N] [--core-cache-entries N] "
                 "[--admission-depth N] [--deadline-ms N] "
                 "[--idle-timeout-ms N] [--drain-ms N] "
                 "[--max-connections N]\n%s\n",
                 args.Error().c_str());
    return 2;
  }
  ServerOptions options;
  options.port = args.Int32Or("port", 0);
  options.batch.threads = args.Int32Or("threads", 0);
  options.batch.shards = args.Int32Or("shards", 4);
  options.batch.cache_entries = args.Int32Or("cache-entries", 64);
  options.batch.dedup = args.HasFlag("dedup");
  options.batch.result_entries = args.Int32Or("result-entries", 256);
  options.batch.core_cache_entries = args.Int32Or("core-cache-entries", 4096);
  options.admission_depth = args.Int32Or("admission-depth", 128);
  options.deadline_ms = args.Int32Or("deadline-ms", 0);
  options.idle_timeout_ms = args.Int32Or("idle-timeout-ms", 10000);
  options.drain_ms = args.Int32Or("drain-ms", 2000);
  options.max_connections = args.Int32Or("max-connections", 64);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.Error().c_str());
    return 2;
  }

  SocServer server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "serve: %s\n", error.c_str());
    return 1;
  }
  // Flushed immediately so a parent process (or a shell script) can scrape
  // the kernel-assigned port before sending traffic.
  std::printf("LISTENING port=%d\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "serve: draining (budget %d ms)\n", options.drain_ms);
  server.Stop();
  std::printf("%s\n", server.StatsLine().c_str());
  return 0;
}

int CmdLowerBound(int argc, const char* const* argv) {
  ArgParser args({}, {"width"});
  if (!args.Parse(argc, argv, 2) || args.positional().size() != 1) {
    std::fprintf(stderr, "usage: soctest_cli lowerbound <soc> --width W\n");
    return 2;
  }
  const auto problem = LoadProblem(args.positional()[0]);
  if (!problem) return 1;
  const int width = args.Int32Or("width", 32);
  const auto lb = ComputeLowerBound(problem->soc, width, 64);
  std::printf("LB(W=%d) = %s cycles  (bottleneck %s via core %d, area bound "
              "%s from %s wire-cycles)\n",
              width, WithCommas(lb.value()).c_str(),
              WithCommas(lb.bottleneck_bound).c_str(), lb.bottleneck_core,
              WithCommas(lb.area_bound).c_str(),
              WithCommas(lb.total_min_area).c_str());
  return 0;
}

int CmdAdvise(int argc, const char* const* argv) {
  ArgParser args({}, {"threshold", "max-budget"});
  if (!args.Parse(argc, argv, 2) || args.positional().size() != 1) {
    std::fprintf(stderr, "usage: soctest_cli advise <soc> [--threshold R] "
                         "[--max-budget N]\n");
    return 2;
  }
  const auto problem = LoadProblem(args.positional()[0]);
  if (!problem) return 1;
  AdvisorParams params;
  params.ratio_threshold = args.DoubleOr("threshold", 50.0);
  params.max_budget = args.Int32Or("max-budget", 3);
  TablePrinter table({"core", "T@16 (cycles)", "flush (s_i+s_o)",
                      "T/flush", "recommended budget"},
                     {Align::kLeft});
  for (const auto& advice : AdvisePreemption(problem->soc, params)) {
    table.AddRow({problem->soc.core(advice.core).name,
                  WithCommas(advice.test_time), WithCommas(advice.flush_cost),
                  StrFormat("%.1f", advice.ratio),
                  std::to_string(advice.recommended_budget)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "benchmarks") return CmdBenchmarks();
  if (cmd == "wrapper") return CmdWrapper(argc, argv);
  if (cmd == "schedule") return CmdSchedule(argc, argv);
  if (cmd == "sweep") return CmdSweep(argc, argv);
  if (cmd == "batch") return CmdBatch(argc, argv);
  if (cmd == "serve") return CmdServe(argc, argv);
  if (cmd == "lowerbound") return CmdLowerBound(argc, argv);
  if (cmd == "advise") return CmdAdvise(argc, argv);
  return Usage();
}
