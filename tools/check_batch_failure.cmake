# Asserts the `soctest_cli batch` failure contract: a batch containing a
# request that cannot be served must exit NON-zero, still print MAKESPAN
# lines for the requests that did serve, and report the failure count on the
# STATS line. Run with:
#   cmake -DCLI=<soctest_cli> -DREQUESTS=<request-file> -P this_file
execute_process(
  COMMAND ${CLI} batch ${REQUESTS} --threads 2
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE code)

if(code EQUAL 0)
  message(FATAL_ERROR "batch with a failing request exited 0; stdout:\n${out}")
endif()
if(NOT out MATCHES "MAKESPAN req=0 ")
  message(FATAL_ERROR "missing MAKESPAN for the servable request:\n${out}")
endif()
if(NOT out MATCHES "failed=1")
  message(FATAL_ERROR "STATS line does not report failed=1:\n${out}")
endif()
if(NOT err MATCHES "req 1 ")
  message(FATAL_ERROR "stderr does not diagnose the failing request:\n${err}")
endif()
