// Local-search schedule improver.
//
// The paper's heuristic is a single greedy pass over one (S, delta)
// configuration; OptimizeBestOverParams already restarts across the
// parameter grid. This module adds the next natural refinement (explored by
// several follow-up works to the paper): perturb the per-core preferred
// widths around the best greedy solution and re-run the packer, keeping
// improvements — a randomized hill climb over the width-assignment space.
//
// The climb is batched and parallel: each round draws `batch` candidate
// width vectors from the RNG (serially, so the random stream never depends
// on thread count), evaluates them concurrently against the shared
// CompiledProblem — one reusable ScheduleWorkspace per worker — and accepts
// the best improving candidate, ties broken by the smallest candidate index.
// That reduction mirrors search/driver.h's (makespan, index) rule, so the
// result is bit-identical for every thread count; batch = 1 reproduces the
// historical one-move-at-a-time climb exactly.
//
// Three engine layers make wasted evaluations cheap and aim the budget at
// moves that get accepted (PR 9):
//
//   * Incumbent bounding (`bound_candidates`): every candidate runs with
//     OptimizerParams::makespan_bound = the current incumbent, so a
//     candidate provably no better than the incumbent aborts mid-schedule
//     instead of packing its tail. Acceptance requires a makespan strictly
//     below the incumbent, so the accepted set — and the final schedule —
//     is bit-identical to the unbounded climb.
//   * Memoization (`memoize`): a per-run SeenSet (search/seen_set.h) of
//     every candidate drawn skips re-evaluating duplicates. Sound without
//     caveats: a repeat's makespan was already >= the incumbent in force
//     when it was first evaluated (it either lost that round or became the
//     incumbent itself), and incumbents only decrease, so a repeat can
//     never be accepted — the trajectory is unchanged, only the duplicate
//     scheduler runs disappear.
//   * Adaptive move selection (`adaptive`): a deterministic UCB1 bandit
//     (search/bandit.h) chooses each candidate's move kind among `moves`.
//     Arms are pulled serially while candidates are drawn and rewarded
//     serially at the round boundary from the serially reduced acceptance
//     results (reward 1 for the accepted draw, 0 otherwise) — the same
//     RNG-serial/evaluate-parallel contract as the climb itself, so
//     adaptive runs are bit-identical across thread counts and reproducible
//     for a fixed seed.
//
// Deterministic for a fixed seed and batch size; never returns a worse
// schedule than its starting point.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/optimizer.h"
#include "search/bandit.h"
#include "search/grid.h"

namespace soctest {

// The hill-climb move kinds (the bandit's arms).
enum class ImproverMove {
  kNudge = 0,         // step cores_per_move cores one Pareto width up/down
  kPairSwap = 1,      // swap two cores' preferred widths (snapped)
  kBlockPerturb = 2,  // nudge a block of k cores, k annealed over the run
};
inline constexpr int kNumImproverMoves = 3;

// Short stable names for CLI/STATS surfaces: nudge, swap, block.
const char* ImproverMoveName(ImproverMove move);

struct ImproverParams {
  OptimizerParams optimizer;   // base configuration (tam_width etc.)
  // Restart grid swept for the starting point (kWide adds the extended
  // axes; see search/grid.h).
  GridExtent grid = GridExtent::kCanonical;
  std::uint64_t seed = 1;
  int iterations = 200;        // candidate draws (across all rounds)
  // kNudge / kBlockPerturb step this many cores' preferred widths to a
  // neighboring Pareto width (up or down one step); kBlockPerturb anneals
  // its own larger count down toward this over the run.
  int cores_per_move = 2;
  // Worker threads for the initial restart-grid search AND the batched move
  // evaluation (0 = hardware, matching OptimizerParams/CLI conventions).
  int threads = 0;
  // Candidate moves evaluated per hill-climb round. All of a round's
  // candidates perturb the same base solution; the best improving one is
  // accepted. Values < 1 clamp to 1 (the sequential climb).
  int batch = 8;

  // ---- Engine layers (see the header comment) ---------------------------
  // Evaluate candidates under OptimizerParams::makespan_bound = the current
  // incumbent. Never changes accepted moves or the final schedule; rejected
  // candidates stop paying for full schedules.
  bool bound_candidates = true;
  // Skip re-evaluating duplicate candidates via a per-run SeenSet. Never
  // changes the trajectory; skipped draws still consume the draw budget
  // (`iterations`) but not the evaluation budget (`max_evaluations`).
  bool memoize = true;
  // UCB1 bandit move selection over `moves`. Off: every candidate is a
  // kNudge — the historical climb, RNG-compatible draw for draw.
  bool adaptive = false;
  // The arms available to the bandit (adaptive mode only; duplicates are
  // dropped, an empty list falls back to kNudge).
  std::vector<ImproverMove> moves = {ImproverMove::kNudge,
                                     ImproverMove::kPairSwap,
                                     ImproverMove::kBlockPerturb};
  // UCB1 exploration constant (search/bandit.h).
  double exploration = kUcb1Exploration;
  // When > 0, stop once this many candidates have been EVALUATED (scheduler
  // runs), regardless of remaining draws — the budget mode in which memo
  // skips buy extra fresh candidates instead of merely finishing sooner.
  // 0 = bounded by `iterations` alone (the historical semantics).
  int max_evaluations = 0;
};

struct ImproverResult {
  OptimizerResult best;
  Time initial_makespan = 0;
  int improvements = 0;        // accepted moves
  // Budget accounting. `drawn` counts every candidate drawn from the RNG;
  // `evaluated` counts actual scheduler runs; `noops` the draws identical
  // to the current base solution; `duplicates_skipped` the draws identical
  // to an earlier candidate (within the round when memoize is off, across
  // the whole run when on). Invariant, regression-tested:
  //   evaluated + duplicates_skipped + noops == drawn.
  int drawn = 0;
  int evaluated = 0;
  int noops = 0;
  int duplicates_skipped = 0;
  // Evaluations abandoned at the incumbent bound (bound_candidates only) —
  // each one is a rejected candidate that did not pay for its full schedule.
  int bound_aborts = 0;
  int rounds = 0;              // batched rounds evaluated
  int batch = 0;               // effective round size (params.batch clamped)
  // Per-move-kind observability, indexed by ImproverMove. Non-adaptive runs
  // land entirely in kNudge.
  std::array<int, kNumImproverMoves> attempted{};  // draws per kind
  std::array<int, kNumImproverMoves> accepted{};   // accepted moves per kind
};

// Runs the restart-grid search (at the params.grid extent) for the starting
// point, then hill-climbs.
// Propagates the underlying error if the problem is unschedulable. The
// CompiledProblem overload reuses artifacts compiled once — every move then
// costs only a scheduler run; the TestProblem overload compiles privately.
ImproverResult ImproveSchedule(const TestProblem& problem,
                               const ImproverParams& params);
ImproverResult ImproveSchedule(const CompiledProblem& compiled,
                               const ImproverParams& params);

}  // namespace soctest
