// Local-search schedule improver.
//
// The paper's heuristic is a single greedy pass over one (S, delta)
// configuration; OptimizeBestOverParams already restarts across the
// parameter grid. This module adds the next natural refinement (explored by
// several follow-up works to the paper): perturb the per-core preferred
// widths around the best greedy solution and re-run the packer, keeping
// improvements — a randomized hill climb over the width-assignment space.
//
// The climb is batched and parallel: each round draws `batch` candidate
// width vectors from the RNG (serially, so the random stream never depends
// on thread count), evaluates them concurrently against the shared
// CompiledProblem — one reusable ScheduleWorkspace per worker — and accepts
// the best improving candidate, ties broken by the smallest candidate index.
// That reduction mirrors search/driver.h's (makespan, index) rule, so the
// result is bit-identical for every thread count; batch = 1 reproduces the
// historical one-move-at-a-time climb exactly.
//
// Deterministic for a fixed seed and batch size; never returns a worse
// schedule than its starting point.
#pragma once

#include <cstdint>

#include "core/optimizer.h"
#include "search/grid.h"

namespace soctest {

struct ImproverParams {
  OptimizerParams optimizer;   // base configuration (tam_width etc.)
  // Restart grid swept for the starting point (kWide adds the extended
  // axes; see search/grid.h).
  GridExtent grid = GridExtent::kCanonical;
  std::uint64_t seed = 1;
  int iterations = 200;        // perturbation attempts (across all rounds)
  // Each attempt nudges this many cores' preferred widths to a neighboring
  // Pareto width (up or down one step).
  int cores_per_move = 2;
  // Worker threads for the initial restart-grid search AND the batched move
  // evaluation (0 = hardware, matching OptimizerParams/CLI conventions).
  int threads = 0;
  // Candidate moves evaluated per hill-climb round. All of a round's
  // candidates perturb the same base solution; the best improving one is
  // accepted. Values < 1 clamp to 1 (the sequential climb).
  int batch = 8;
};

struct ImproverResult {
  OptimizerResult best;
  Time initial_makespan = 0;
  int improvements = 0;        // accepted moves
  int attempts = 0;            // candidates drawn (skipped no-ops included)
  int rounds = 0;              // batched rounds evaluated
  int batch = 0;               // effective round size (params.batch clamped)
};

// Runs the restart-grid search (at the params.grid extent) for the starting
// point, then hill-climbs.
// Propagates the underlying error if the problem is unschedulable. The
// CompiledProblem overload reuses artifacts compiled once — every move then
// costs only a scheduler run; the TestProblem overload compiles privately.
ImproverResult ImproveSchedule(const TestProblem& problem,
                               const ImproverParams& params);
ImproverResult ImproveSchedule(const CompiledProblem& compiled,
                               const ImproverParams& params);

}  // namespace soctest
