// Local-search schedule improver.
//
// The paper's heuristic is a single greedy pass over one (S, delta)
// configuration; OptimizeBestOverParams already restarts across the
// parameter grid. This module adds the next natural refinement (explored by
// several follow-up works to the paper): perturb the per-core preferred
// widths around the best greedy solution and re-run the packer, keeping
// improvements — a randomized hill climb over the width-assignment space.
//
// Deterministic for a fixed seed; never returns a worse schedule than its
// starting point.
#pragma once

#include <cstdint>

#include "core/optimizer.h"

namespace soctest {

struct ImproverParams {
  OptimizerParams optimizer;   // base configuration (tam_width etc.)
  std::uint64_t seed = 1;
  int iterations = 200;        // perturbation attempts
  // Each attempt nudges this many cores' preferred widths to a neighboring
  // Pareto width (up or down one step).
  int cores_per_move = 2;
  // Worker threads for the initial restart-grid search (0 = hardware). The
  // hill climb itself is sequential: each move's acceptance feeds the next.
  int threads = 1;
};

struct ImproverResult {
  OptimizerResult best;
  Time initial_makespan = 0;
  int improvements = 0;        // accepted moves
  int attempts = 0;
};

// Runs OptimizeBestOverParams for the starting point, then hill-climbs.
// Propagates the underlying error if the problem is unschedulable. The
// CompiledProblem overload reuses artifacts compiled once — every move then
// costs only a scheduler run; the TestProblem overload compiles privately.
ImproverResult ImproveSchedule(const TestProblem& problem,
                               const ImproverParams& params);
ImproverResult ImproveSchedule(const CompiledProblem& compiled,
                               const ImproverParams& params);

}  // namespace soctest
