#include "core/compiled_core.h"

namespace soctest {

CompiledCore::CompiledCore(const CoreSpec& core, int w_max)
    // TimeCurve runs DesignWrapper per width; the from-curve RectangleSet
    // constructor then derives the Pareto points without re-designing —
    // identical artifacts to RectangleSet(core, w_max, w_max), minus the
    // spec's core id (kNoCore keeps the artifact position-free).
    : w_max_(w_max), rect_(kNoCore, TimeCurve(core, w_max), w_max) {}

}  // namespace soctest
