#include "core/improver.h"

#include <algorithm>
#include <vector>

#include "util/rng.h"
#include "wrapper/rectangles.h"

namespace soctest {
namespace {

// Returns the Pareto width one step above/below `width` (clamped to the set).
int NeighborWidth(const RectangleSet& rect, int width, bool up) {
  const auto& pareto = rect.pareto();
  for (std::size_t i = 0; i < pareto.size(); ++i) {
    if (pareto[i].width == width) {
      if (up && i + 1 < pareto.size()) return pareto[i + 1].width;
      if (!up && i > 0) return pareto[i - 1].width;
      return width;
    }
  }
  // `width` off the grid: snap.
  return rect.SnapWidth(width);
}

}  // namespace

ImproverResult ImproveSchedule(const TestProblem& problem,
                               const ImproverParams& params) {
  const CompiledProblem compiled(problem, params.optimizer.w_max);
  return ImproveSchedule(compiled, params);
}

ImproverResult ImproveSchedule(const CompiledProblem& compiled,
                               const ImproverParams& params) {
  ImproverResult result;
  result.best = OptimizeBestOverParams(compiled, params.optimizer, params.threads);
  if (!result.best.ok()) return result;
  result.initial_makespan = result.best.makespan;

  // Clipped views of the compiled curves — no wrapper re-design.
  const auto rects = compiled.RectsFor(params.optimizer.tam_width);
  const TestProblem& problem = compiled.problem();

  // Current width assignment = the best run's preferred widths.
  std::vector<int> widths;
  widths.reserve(result.best.assignments.size());
  for (const auto& a : result.best.assignments) {
    widths.push_back(a.preferred_width);
  }

  Rng rng(params.seed);
  OptimizerParams move_params = params.optimizer;
  move_params.preferred_width_override = widths;  // installed per move below

  for (int it = 0; it < params.iterations; ++it) {
    ++result.attempts;
    std::vector<int> candidate = widths;
    for (int m = 0; m < params.cores_per_move; ++m) {
      const auto core = static_cast<std::size_t>(
          rng.UniformInt(0, problem.soc.num_cores() - 1));
      const bool up = rng.Bernoulli(0.5);
      candidate[core] =
          NeighborWidth(rects[core], candidate[core], up);
    }
    if (candidate == widths) continue;

    move_params.preferred_width_override = candidate;
    OptimizerResult attempt = Optimize(compiled, move_params);
    if (!attempt.ok()) continue;
    if (attempt.makespan < result.best.makespan) {
      result.best = std::move(attempt);
      widths = std::move(candidate);
      ++result.improvements;
    }
  }
  return result;
}

}  // namespace soctest
