#include "core/improver.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "runtime/thread_pool.h"
#include "runtime/workspace_pool.h"
#include "search/driver.h"
#include "search/seen_set.h"
#include "util/rng.h"
#include "wrapper/rectangles.h"

namespace soctest {
namespace {

// Returns the Pareto width one step above/below `width` (clamped to the set).
int NeighborWidth(const RectangleSet& rect, int width, bool up) {
  const auto& pareto = rect.pareto();
  for (std::size_t i = 0; i < pareto.size(); ++i) {
    if (pareto[i].width == width) {
      if (up && i + 1 < pareto.size()) return pareto[i + 1].width;
      if (!up && i > 0) return pareto[i - 1].width;
      return width;
    }
  }
  // `width` off the grid: snap.
  return rect.SnapWidth(width);
}

// The bandit's arm list: params.moves deduplicated in order, kNudge when
// empty or when adaptive selection is off.
std::vector<ImproverMove> ResolveArms(const ImproverParams& params) {
  std::vector<ImproverMove> arms;
  if (params.adaptive) {
    for (const ImproverMove move : params.moves) {
      if (std::find(arms.begin(), arms.end(), move) == arms.end()) {
        arms.push_back(move);
      }
    }
  }
  if (arms.empty()) arms.push_back(ImproverMove::kNudge);
  return arms;
}

}  // namespace

const char* ImproverMoveName(ImproverMove move) {
  switch (move) {
    case ImproverMove::kNudge:
      return "nudge";
    case ImproverMove::kPairSwap:
      return "swap";
    case ImproverMove::kBlockPerturb:
      return "block";
  }
  return "?";
}

ImproverResult ImproveSchedule(const TestProblem& problem,
                               const ImproverParams& params) {
  const CompiledProblem compiled(problem, params.optimizer.w_max);
  return ImproveSchedule(compiled, params);
}

ImproverResult ImproveSchedule(const CompiledProblem& compiled,
                               const ImproverParams& params) {
  ImproverResult result;
  // The improver owns incumbent bounding; a bound left in the caller's base
  // params would silently truncate the restart search and every candidate.
  OptimizerParams base = params.optimizer;
  base.makespan_bound = 0;

  SearchOptions search;
  search.threads = params.threads;
  search.extent = params.grid;
  // The restart grid is where most of an improver run's time goes; racing
  // its configurations against the best completed so far returns the same
  // winner for a fraction of the packing work (see SearchOptions).
  search.bound_with_incumbent = params.bound_candidates;
  result.best = RunRestartSearch(compiled, base, search).best;
  if (!result.best.ok()) return result;
  result.initial_makespan = result.best.makespan;

  // Clipped views of the compiled curves — no wrapper re-design.
  const auto rects = compiled.RectsFor(base.tam_width);
  const TestProblem& problem = compiled.problem();
  const int num_cores = problem.soc.num_cores();

  // Current width assignment = the best run's preferred widths.
  std::vector<int> widths;
  widths.reserve(result.best.assignments.size());
  for (const auto& a : result.best.assignments) {
    widths.push_back(a.preferred_width);
  }

  Rng rng(params.seed);
  // More candidates per round than total draws would be dead weight.
  const int batch = std::max(1, std::min(params.batch, params.iterations));
  result.batch = batch;
  const std::vector<ImproverMove> arms = ResolveArms(params);
  Ucb1Bandit bandit(arms.size(), params.exploration);
  SeenSet seen;
  if (params.memoize) seen.Insert(widths);  // base solutions are never new

  // Candidates are generated serially from the RNG (below), so the pool size
  // affects only wall-clock, never the stream. One workspace per worker slot
  // keeps each worker's scheduler runs allocation-free after its first.
  ThreadPool pool(std::min(ResolveThreadCount(params.threads), batch));
  WorkspacePool workspaces(pool);

  std::vector<std::vector<int>> candidates(static_cast<std::size_t>(batch));
  std::vector<OptimizerResult> evaluated(static_cast<std::size_t>(batch));
  std::vector<std::size_t> cand_arm(static_cast<std::size_t>(batch), 0);
  std::vector<std::size_t> round_pulls;  // arm index per draw this round
  round_pulls.reserve(static_cast<std::size_t>(batch));

  // Nudges `count` cores one Pareto step up or down. This is the historical
  // move's exact RNG pattern — two variates per core — so non-adaptive runs
  // replay the pre-bandit candidate stream draw for draw.
  const auto apply_nudges = [&](std::vector<int>& candidate, int count) {
    for (int m = 0; m < count; ++m) {
      const auto core =
          static_cast<std::size_t>(rng.UniformInt(0, num_cores - 1));
      const bool up = rng.Bernoulli(0.5);
      candidate[core] = NeighborWidth(rects[core], candidate[core], up);
    }
  };

  while (result.drawn < params.iterations &&
         (params.max_evaluations <= 0 ||
          result.evaluated < params.max_evaluations)) {
    // ---- Draw this round's candidates (serial: RNG order is canonical) ----
    const int want = std::min(batch, params.iterations - result.drawn);
    int k = 0;  // candidates worth evaluating this round
    round_pulls.clear();
    for (int j = 0; j < want; ++j) {
      // Under an evaluation budget, stop drawing once this round already
      // holds enough candidates to exhaust it.
      if (params.max_evaluations > 0 &&
          result.evaluated + k >= params.max_evaluations) {
        break;
      }
      ++result.drawn;
      // Non-adaptive runs never touch the bandit: move selection must stay a
      // pure function of nothing so the climb is RNG-compatible with the
      // historical single-move implementation.
      const std::size_t arm = params.adaptive ? bandit.SelectAndPull() : 0;
      if (params.adaptive) round_pulls.push_back(arm);
      const ImproverMove kind = arms[arm];
      ++result.attempted[static_cast<std::size_t>(kind)];

      std::vector<int>& candidate = candidates[static_cast<std::size_t>(k)];
      candidate = widths;
      switch (kind) {
        case ImproverMove::kNudge:
          apply_nudges(candidate, params.cores_per_move);
          break;
        case ImproverMove::kPairSwap: {
          if (num_cores >= 2) {
            const int a = rng.UniformInt(0, num_cores - 1);
            int b = rng.UniformInt(0, num_cores - 2);
            if (b >= a) ++b;  // uniform over pairs with a != b
            const int wa = candidate[static_cast<std::size_t>(a)];
            const int wb = candidate[static_cast<std::size_t>(b)];
            candidate[static_cast<std::size_t>(a)] =
                rects[static_cast<std::size_t>(a)].SnapWidth(wb);
            candidate[static_cast<std::size_t>(b)] =
                rects[static_cast<std::size_t>(b)].SnapWidth(wa);
          }
          break;
        }
        case ImproverMove::kBlockPerturb: {
          // Anneal the block size from a quarter of the SOC down to the
          // plain nudge size as the draw budget is spent: wide early
          // exploration, fine late refinement.
          const int lo = std::max(1, params.cores_per_move);
          const int hi = std::max(lo + 1, num_cores / 4);
          const double progress =
              static_cast<double>(result.drawn - 1) /
              static_cast<double>(std::max(1, params.iterations));
          const int block = std::clamp(
              hi - static_cast<int>(progress * static_cast<double>(hi - lo)),
              lo, hi);
          apply_nudges(candidate, block);
          break;
        }
      }

      if (candidate == widths) {  // no-op move: draw, don't evaluate
        ++result.noops;
        continue;
      }
      if (params.memoize) {
        // Seen before (this run): its makespan was already >= the incumbent
        // in force when it was first evaluated, and incumbents only
        // decrease, so it can never be accepted now — skip the run.
        if (!seen.Insert(candidate)) {
          ++result.duplicates_skipped;
          continue;
        }
      } else {
        // Duplicate of an earlier candidate this round: a second evaluation
        // would return the same makespan at a larger index, so the reduction
        // could never pick it — skip the redundant scheduler run. (The RNG
        // stream is untouched; only the evaluation set shrinks.)
        bool duplicate = false;
        for (int p = 0; p < k && !duplicate; ++p) {
          duplicate = candidate == candidates[static_cast<std::size_t>(p)];
        }
        if (duplicate) {
          ++result.duplicates_skipped;
          continue;
        }
      }
      cand_arm[static_cast<std::size_t>(k)] = arm;
      ++k;
    }
    if (k == 0) {
      // Every draw was a no-op or a repeat; nothing ran, nothing rewarded.
      for (const std::size_t arm : round_pulls) bandit.Reward(arm, 0.0);
      continue;
    }
    ++result.rounds;
    result.evaluated += k;

    // ---- Evaluate the batch on the pool (per-index slots) -----------------
    // Candidates run under the incumbent bound: any schedule provably unable
    // to beat result.best aborts as soon as its packed time reaches the
    // bound. Acceptance below requires strictly < the incumbent, so bounding
    // never changes which candidates win — only how much losers cost.
    const Time bound = params.bound_candidates ? result.best.makespan : 0;
    pool.ParallelForWorker(
        static_cast<std::size_t>(k), [&](std::size_t worker, std::size_t i) {
          OptimizerParams move_params = base;
          move_params.preferred_width_override = candidates[i];
          move_params.makespan_bound = bound;
          evaluated[i] =
              Optimize(compiled, move_params, workspaces.slot(worker));
        });

    // ---- Serial reduction: best improving candidate, smallest index wins --
    int pick = -1;
    for (int i = 0; i < k; ++i) {
      const OptimizerResult& attempt = evaluated[static_cast<std::size_t>(i)];
      if (!attempt.ok()) continue;
      if (attempt.aborted_by_bound) {
        // Abandoned at the incumbent: a rejection, observed cheaply. (Its
        // partial makespan is already >= the incumbent, so the improvement
        // test below would reject it anyway; the flag just says why.)
        ++result.bound_aborts;
        continue;
      }
      if (attempt.makespan >= result.best.makespan) continue;
      if (pick < 0 ||
          attempt.makespan < evaluated[static_cast<std::size_t>(pick)].makespan) {
        pick = i;
      }
    }
    if (pick >= 0) {
      result.best = std::move(evaluated[static_cast<std::size_t>(pick)]);
      widths = std::move(candidates[static_cast<std::size_t>(pick)]);
      // The accepted candidate's buffer was moved from; leave the slot valid.
      candidates[static_cast<std::size_t>(pick)].clear();
      ++result.improvements;
      ++result.accepted[static_cast<std::size_t>(arms[cand_arm[
          static_cast<std::size_t>(pick)]])];
    }

    // ---- Reward the round's pulls (serial, at the boundary) ---------------
    if (params.adaptive) {
      // The accepted draw's arm earns 1; every other pull this round earns 0.
      // Attribution is by arm: the first pull of the winning arm takes the
      // reward (per-arm sums are what UCB1 reads, so which pull is moot).
      std::size_t reward_arm = arms.size();  // sentinel: no acceptance
      if (pick >= 0) reward_arm = cand_arm[static_cast<std::size_t>(pick)];
      bool paid = false;
      for (const std::size_t arm : round_pulls) {
        const bool wins = !paid && arm == reward_arm;
        bandit.Reward(arm, wins ? 1.0 : 0.0);
        paid = paid || wins;
      }
    }
  }
  return result;
}

}  // namespace soctest
