#include "core/improver.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "runtime/thread_pool.h"
#include "runtime/workspace_pool.h"
#include "search/driver.h"
#include "util/rng.h"
#include "wrapper/rectangles.h"

namespace soctest {
namespace {

// Returns the Pareto width one step above/below `width` (clamped to the set).
int NeighborWidth(const RectangleSet& rect, int width, bool up) {
  const auto& pareto = rect.pareto();
  for (std::size_t i = 0; i < pareto.size(); ++i) {
    if (pareto[i].width == width) {
      if (up && i + 1 < pareto.size()) return pareto[i + 1].width;
      if (!up && i > 0) return pareto[i - 1].width;
      return width;
    }
  }
  // `width` off the grid: snap.
  return rect.SnapWidth(width);
}

}  // namespace

ImproverResult ImproveSchedule(const TestProblem& problem,
                               const ImproverParams& params) {
  const CompiledProblem compiled(problem, params.optimizer.w_max);
  return ImproveSchedule(compiled, params);
}

ImproverResult ImproveSchedule(const CompiledProblem& compiled,
                               const ImproverParams& params) {
  ImproverResult result;
  SearchOptions search;
  search.threads = params.threads;
  search.extent = params.grid;
  result.best = RunRestartSearch(compiled, params.optimizer, search).best;
  if (!result.best.ok()) return result;
  result.initial_makespan = result.best.makespan;

  // Clipped views of the compiled curves — no wrapper re-design.
  const auto rects = compiled.RectsFor(params.optimizer.tam_width);
  const TestProblem& problem = compiled.problem();
  const int num_cores = problem.soc.num_cores();

  // Current width assignment = the best run's preferred widths.
  std::vector<int> widths;
  widths.reserve(result.best.assignments.size());
  for (const auto& a : result.best.assignments) {
    widths.push_back(a.preferred_width);
  }

  Rng rng(params.seed);
  // More candidates per round than total attempts would be dead weight.
  const int batch = std::max(1, std::min(params.batch, params.iterations));
  result.batch = batch;
  // Candidates are generated serially from the RNG (below), so the pool size
  // affects only wall-clock, never the stream. One workspace per worker slot
  // keeps each worker's scheduler runs allocation-free after its first.
  ThreadPool pool(std::min(ResolveThreadCount(params.threads), batch));
  WorkspacePool workspaces(pool);

  std::vector<std::vector<int>> candidates(static_cast<std::size_t>(batch));
  std::vector<OptimizerResult> evaluated(static_cast<std::size_t>(batch));

  while (result.attempts < params.iterations) {
    // ---- Draw this round's candidates (serial: RNG order is canonical) ----
    const int want = std::min(batch, params.iterations - result.attempts);
    int k = 0;  // candidates worth evaluating this round
    for (int j = 0; j < want; ++j) {
      ++result.attempts;
      std::vector<int>& candidate = candidates[static_cast<std::size_t>(k)];
      candidate = widths;
      for (int m = 0; m < params.cores_per_move; ++m) {
        const auto core =
            static_cast<std::size_t>(rng.UniformInt(0, num_cores - 1));
        const bool up = rng.Bernoulli(0.5);
        candidate[core] = NeighborWidth(rects[core], candidate[core], up);
      }
      if (candidate == widths) continue;  // no-op move: draw, don't evaluate
      // Duplicate of an earlier candidate this round: a second evaluation
      // would return the same makespan at a larger index, so the reduction
      // could never pick it — skip the redundant scheduler run. (The RNG
      // stream is untouched; only the evaluation set shrinks.)
      bool duplicate = false;
      for (int p = 0; p < k && !duplicate; ++p) {
        duplicate = candidate == candidates[static_cast<std::size_t>(p)];
      }
      if (duplicate) continue;
      ++k;
    }
    if (k == 0) continue;
    ++result.rounds;

    // ---- Evaluate the batch on the pool (per-index slots) -----------------
    pool.ParallelForWorker(
        static_cast<std::size_t>(k), [&](std::size_t worker, std::size_t i) {
          OptimizerParams move_params = params.optimizer;
          move_params.preferred_width_override = candidates[i];
          evaluated[i] =
              Optimize(compiled, move_params, workspaces.slot(worker));
        });

    // ---- Serial reduction: best improving candidate, smallest index wins --
    int pick = -1;
    for (int i = 0; i < k; ++i) {
      const OptimizerResult& attempt = evaluated[static_cast<std::size_t>(i)];
      if (!attempt.ok()) continue;
      if (attempt.makespan >= result.best.makespan) continue;
      if (pick < 0 ||
          attempt.makespan < evaluated[static_cast<std::size_t>(pick)].makespan) {
        pick = i;
      }
    }
    if (pick >= 0) {
      result.best = std::move(evaluated[static_cast<std::size_t>(pick)]);
      widths = std::move(candidates[static_cast<std::size_t>(pick)]);
      ++result.improvements;
    }
  }
  return result;
}

}  // namespace soctest
