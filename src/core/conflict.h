// The paper's Conflict subroutine (Fig. 7): decides whether a candidate core
// may be scheduled alongside the currently-active set.
//
// A candidate is blocked when
//   (i)   a precedence predecessor has not completed,
//   (ii)  a concurrency-constrained partner is active (covers hierarchy
//         parent/child and BIST-resource sharing), or
//   (iii) adding its power to the active load would exceed Pmax.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "constraints/concurrency.h"
#include "constraints/power.h"
#include "constraints/precedence.h"
#include "util/bitset.h"
#include "util/interval.h"

namespace soctest {

class ConflictPolicy {
 public:
  ConflictPolicy(const PrecedenceGraph* precedence,
                 const ConcurrencySet* concurrency, const PowerModel* power)
      : precedence_(precedence), concurrency_(concurrency), power_(power) {}

  // Returns a human-readable reason the candidate cannot run now, or nullopt
  // if scheduling it is allowed. `completed[c]` marks finished tests; `active`
  // lists currently-running cores; `active_power` is their power sum.
  std::optional<std::string> Blocked(CoreId candidate,
                                     const std::vector<bool>& completed,
                                     const std::vector<CoreId>& active,
                                     std::int64_t active_power) const;

  // Same check against the scheduler's bitset completion state (the hot-path
  // layout — see ScheduleWorkspace). Both overloads answer identically for
  // identical membership.
  std::optional<std::string> Blocked(CoreId candidate,
                                     const CoreBitset& completed,
                                     const std::vector<CoreId>& active,
                                     std::int64_t active_power) const;

  // Time-aware variant for time-varying budgets: the power check runs against
  // BudgetAt(now), or — when hold > 0 — against the minimum budget over
  // [now, now + hold). Admissions that can never be preempted later pass
  // their full remaining run as `hold` so a future budget drop cannot catch
  // them mid-flight. With a single-segment budget this answers identically to
  // the time-unaware overloads for any (now, hold).
  std::optional<std::string> Blocked(CoreId candidate,
                                     const CoreBitset& completed,
                                     const std::vector<CoreId>& active,
                                     std::int64_t active_power, Time now,
                                     Time hold) const;

 private:
  const PrecedenceGraph* precedence_;
  const ConcurrencySet* concurrency_;
  const PowerModel* power_;
};

}  // namespace soctest
