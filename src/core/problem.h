// Problem bundle: everything the scheduler needs about one SOC test job.
#pragma once

#include "constraints/concurrency.h"
#include "constraints/power.h"
#include "constraints/precedence.h"
#include "soc/soc.h"
#include "soc/soc_parser.h"

namespace soctest {

// An SOC plus its scheduling constraints (paper Problem 2 inputs).
struct TestProblem {
  Soc soc;
  PrecedenceGraph precedence;   // i < j  : i completes before j starts
  ConcurrencySet concurrency;   // i ~ j  : never overlap (incl. hierarchy/BIST)
  PowerModel power;             // per-core power + Pmax (unlimited by default)

  // Builds a problem with hierarchy/resource-derived concurrency and no
  // power budget.
  static TestProblem FromSoc(Soc soc);

  // Builds a problem from a parsed .soc file (resolves declared constraints;
  // power budget only if the file declares powermax or powerbudget — the
  // latter yields a time-varying PowerBudget timeline).
  static TestProblem FromParsed(const ParsedSoc& parsed);
};

}  // namespace soctest
