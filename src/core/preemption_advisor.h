// Preemption budget advisor.
//
// The paper's conclusion calls for "a careful investigation of the effects
// of preemption and the use of the maxpreempts parameter considering test
// lengths": preempting a test costs an (s_i + s_o) scan flush, so short
// tests lose proportionally more than long ones gain in packing freedom.
// This module implements that investigation as a policy: it recommends a
// per-core preemption budget from the ratio of test length to flush cost.
#pragma once

#include <vector>

#include "soc/soc.h"
#include "util/interval.h"

namespace soctest {

struct AdvisorParams {
  // A core is granted one preemption per `cycles_per_preemption` multiple of
  // its flush cost, i.e. budget = floor(T / (ratio_threshold * flush)),
  // capped at max_budget. With ratio_threshold=50, a test must be at least
  // 50 flushes long to earn its first preemption.
  double ratio_threshold = 50.0;
  int max_budget = 3;
  // Reference width for estimating T and the flush cost (the advisor runs
  // before widths are assigned; the preferred-width regime is close enough).
  int reference_width = 16;
};

struct PreemptionAdvice {
  CoreId core = kNoCore;
  Time test_time = 0;      // at the reference width
  Time flush_cost = 0;     // s_i + s_o at the reference width
  double ratio = 0.0;      // test_time / flush_cost
  int recommended_budget = 0;
};

// Computes advice for every core.
std::vector<PreemptionAdvice> AdvisePreemption(const Soc& soc,
                                               const AdvisorParams& params = {});

// Applies the advice in place (sets CoreSpec::max_preemptions).
void ApplyPreemptionAdvice(Soc& soc, const AdvisorParams& params = {});

}  // namespace soctest
