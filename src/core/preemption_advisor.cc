#include "core/preemption_advisor.h"

#include <algorithm>
#include <cmath>

#include "wrapper/wrapper_design.h"

namespace soctest {

std::vector<PreemptionAdvice> AdvisePreemption(const Soc& soc,
                                               const AdvisorParams& params) {
  std::vector<PreemptionAdvice> out;
  out.reserve(static_cast<std::size_t>(soc.num_cores()));
  const int ref = std::max(1, params.reference_width);
  for (const auto& core : soc.cores()) {
    const WrapperConfig config = DesignWrapper(core, ref);
    PreemptionAdvice advice;
    advice.core = core.id;
    advice.test_time = config.TestTime(core.num_patterns);
    advice.flush_cost = config.scan_in_length + config.scan_out_length;
    if (advice.flush_cost <= 0) {
      // Purely combinational wrapper with no cells on either side cannot
      // happen for valid cores, but stay defensive: flushes are free, so
      // preemption costs nothing.
      advice.ratio = static_cast<double>(advice.test_time);
      advice.recommended_budget = params.max_budget;
    } else {
      advice.ratio = static_cast<double>(advice.test_time) /
                     static_cast<double>(advice.flush_cost);
      const double budget =
          std::floor(advice.ratio / std::max(1e-9, params.ratio_threshold));
      advice.recommended_budget = static_cast<int>(
          std::clamp(budget, 0.0, static_cast<double>(params.max_budget)));
    }
    out.push_back(advice);
  }
  return out;
}

void ApplyPreemptionAdvice(Soc& soc, const AdvisorParams& params) {
  for (const auto& advice : AdvisePreemption(soc, params)) {
    soc.mutable_core(advice.core).max_preemptions = advice.recommended_budget;
  }
}

}  // namespace soctest
