#include "core/validator.h"

#include <algorithm>
#include <map>

#include "util/interval.h"
#include "util/strings.h"
#include "wrapper/wrapper_design.h"

namespace soctest {
namespace {

void Check(std::vector<Violation>& out, bool ok, std::string message) {
  if (!ok) out.push_back(Violation{std::move(message)});
}

}  // namespace

std::vector<Violation> ValidateSchedule(const TestProblem& problem,
                                        const Schedule& schedule,
                                        const ValidationOptions& options) {
  std::vector<Violation> out;
  const Soc& soc = problem.soc;

  // 1. Coverage: each core exactly once.
  std::map<CoreId, const CoreSchedule*> by_core;
  for (const auto& entry : schedule.entries()) {
    Check(out, entry.core >= 0 && entry.core < soc.num_cores(),
          StrFormat("entry references unknown core id %d", entry.core));
    if (entry.core < 0 || entry.core >= soc.num_cores()) continue;
    const bool inserted = by_core.emplace(entry.core, &entry).second;
    Check(out, inserted,
          StrFormat("core %d ('%s') scheduled more than once", entry.core,
                    soc.core(entry.core).name.c_str()));
  }
  for (const auto& core : soc.cores()) {
    Check(out, by_core.count(core.id) == 1,
          StrFormat("core %d ('%s') missing from schedule", core.id,
                    core.name.c_str()));
  }

  StepProfile width_profile;
  StepProfile power_profile;

  for (const auto& [core_id, entry] : by_core) {
    const CoreSpec& core = soc.core(core_id);
    const char* cname = core.name.c_str();

    // 2. Segment structure.
    Check(out, !entry->segments.empty(),
          StrFormat("core '%s' has no segments", cname));
    Check(out, entry->assigned_width >= 1 &&
                   entry->assigned_width <= schedule.tam_width(),
          StrFormat("core '%s' width %d outside [1, %d]", cname,
                    entry->assigned_width, schedule.tam_width()));
    Time prev_end = -1;
    for (const auto& seg : entry->segments) {
      Check(out, seg.span.begin >= 0 && seg.span.length() > 0,
            StrFormat("core '%s' has an empty/negative segment", cname));
      Check(out, seg.span.begin >= prev_end,
            StrFormat("core '%s' segments overlap or are unsorted", cname));
      Check(out, seg.width == entry->assigned_width,
            StrFormat("core '%s' segment width %d != assigned width %d", cname,
                      seg.width, entry->assigned_width));
      prev_end = seg.span.end;
      width_profile.Add(seg.span, seg.width);
      power_profile.Add(seg.span, problem.power.PowerOf(core_id));
    }

    // 4. Exact durations.
    if (options.check_exact_durations) {
      const WrapperConfig config =
          DesignWrapper(core, std::min(entry->assigned_width,
                                       std::max(1, options.w_max)));
      const Time base = config.TestTime(core.num_patterns);
      const Time penalty =
          (config.scan_in_length + config.scan_out_length) * entry->preemptions;
      Check(out, entry->ActiveTime() == base + penalty,
            StrFormat("core '%s' active time %lld != T(%d)=%lld + penalty %lld",
                      cname, static_cast<long long>(entry->ActiveTime()),
                      entry->assigned_width, static_cast<long long>(base),
                      static_cast<long long>(penalty)));
      Check(out, entry->overhead_cycles == penalty,
            StrFormat("core '%s' recorded overhead %lld != expected %lld",
                      cname, static_cast<long long>(entry->overhead_cycles),
                      static_cast<long long>(penalty)));
    }

    // 5. Preemption accounting.
    Check(out,
          static_cast<int>(entry->segments.size()) <= entry->preemptions + 1,
          StrFormat("core '%s' has %zu segments but only %d preemptions", cname,
                    entry->segments.size(), entry->preemptions));
    if (options.check_preemption_limits) {
      Check(out, entry->preemptions <= core.max_preemptions,
            StrFormat("core '%s' preempted %d times, limit %d", cname,
                      entry->preemptions, core.max_preemptions));
    }
  }

  // 3. TAM width capacity.
  const auto peak_width = width_profile.Max();
  Check(out, peak_width <= schedule.tam_width(),
        StrFormat("peak TAM usage %lld exceeds W=%d",
                  static_cast<long long>(peak_width), schedule.tam_width()));

  // 6. Precedence.
  for (const auto& [a, entry_a] : by_core) {
    for (CoreId b : problem.precedence.SuccessorsOf(a)) {
      const auto it = by_core.find(b);
      if (it == by_core.end()) continue;
      Check(out, it->second->BeginTime() >= entry_a->EndTime(),
            StrFormat("precedence violated: core %d starts at %lld before "
                      "core %d ends at %lld",
                      b, static_cast<long long>(it->second->BeginTime()), a,
                      static_cast<long long>(entry_a->EndTime())));
    }
  }

  // 7. Concurrency.
  for (const auto& [a, b] : problem.concurrency.Pairs()) {
    const auto ia = by_core.find(a);
    const auto ib = by_core.find(b);
    if (ia == by_core.end() || ib == by_core.end()) continue;
    for (const auto& sa : ia->second->segments) {
      for (const auto& sb : ib->second->segments) {
        Check(out, !Overlaps(sa.span, sb.span),
              StrFormat("concurrency violated: cores %d and %d overlap in "
                        "[%lld,%lld)x[%lld,%lld)",
                        a, b, static_cast<long long>(sa.span.begin),
                        static_cast<long long>(sa.span.end),
                        static_cast<long long>(sb.span.begin),
                        static_cast<long long>(sb.span.end)));
      }
    }
  }

  // 8. Power.
  if (!problem.power.unlimited()) {
    const PowerBudget& budget = problem.power.budget();
    if (!budget.has_changes()) {
      const auto peak_power = power_profile.Max();
      Check(out, peak_power <= problem.power.pmax(),
            StrFormat("peak power %lld exceeds Pmax %lld",
                      static_cast<long long>(peak_power),
                      static_cast<long long>(problem.power.pmax())));
    } else {
      // Time-varying budget: the profile is piecewise constant, so checking
      // each flattened step against the minimum budget over that step checks
      // every instant exactly.
      const auto steps = power_profile.Flatten();
      for (std::size_t i = 0; i < steps.breakpoints.size(); ++i) {
        if (steps.values[i] <= 0) continue;
        const Time begin = steps.breakpoints[i];
        const Time end = i + 1 < steps.breakpoints.size()
                             ? steps.breakpoints[i + 1]
                             : begin + 1;
        const std::int64_t cap = budget.MinOver(begin, end);
        Check(out, cap < 0 || steps.values[i] <= cap,
              StrFormat("power %lld over [%lld,%lld) exceeds budget %lld",
                        static_cast<long long>(steps.values[i]),
                        static_cast<long long>(begin),
                        static_cast<long long>(end),
                        static_cast<long long>(cap)));
      }
    }
  }

  // 9. Priority-order diagnostics (optional; see ValidationOptions).
  if (options.check_priority_order) {
    Time makespan = 0;
    for (const auto& [core_id, entry] : by_core) {
      makespan = std::max(makespan, entry->EndTime());
    }
    const PowerBudget& budget = problem.power.budget();
    for (const auto& [low_id, low] : by_core) {
      const Time t = low->BeginTime();
      const int low_prio = soc.core(low_id).prio;
      // The question is "should the scheduler have admitted a hotter core
      // INSTEAD of this one at t" — so the low core's own width and power
      // contribution at its start instant is excluded from the feasibility
      // arithmetic below.
      const std::int64_t low_width = low->assigned_width;
      const std::int64_t low_power = problem.power.PowerOf(low_id);
      for (const auto& [high_id, high] : by_core) {
        const CoreSpec& hspec = soc.core(high_id);
        if (hspec.prio >= low_prio) continue;       // not strictly higher class
        if (high->BeginTime() <= t) continue;       // already started by t
        // Width: enough free TAM for the core's maximum useful width.
        const int need =
            std::min(hspec.MaxUsefulWidth(), schedule.tam_width());
        if (schedule.tam_width() - (width_profile.ValueAt(t) - low_width) <
            need) {
          continue;
        }
        // Power: fits under the minimum budget through the makespan.
        if (!problem.power.unlimited() &&
            budget.MinOver(t, makespan + 1) >= 0 &&
            power_profile.ValueAt(t) - low_power +
                    problem.power.PowerOf(high_id) >
                budget.MinOver(t, makespan + 1)) {
          continue;
        }
        // Concurrency: nothing active at t conflicts with it (the low core
        // itself excluded — it would not be running had `high` been picked).
        bool conflict = false;
        for (const auto& [other_id, other] : by_core) {
          if (other_id == high_id || other_id == low_id) continue;
          if (!problem.concurrency.Conflicts(high_id, other_id)) continue;
          for (const auto& seg : other->segments) {
            if (seg.span.Contains(t)) { conflict = true; break; }
          }
          if (conflict) break;
        }
        if (conflict) continue;
        // Precedence: all predecessors complete by t.
        bool blocked = false;
        for (CoreId pred : problem.precedence.PredecessorsOf(high_id)) {
          const auto it = by_core.find(pred);
          if (it == by_core.end() || it->second->EndTime() > t) {
            blocked = true;
            break;
          }
        }
        if (blocked) continue;
        Check(out, false,
              StrFormat("priority order violated: class-%d core '%s' idle at "
                        "%lld while class-%d core '%s' starts",
                        hspec.prio, hspec.name.c_str(),
                        static_cast<long long>(t), low_prio,
                        soc.core(low_id).name.c_str()));
      }
    }
  }

  return out;
}

bool IsValidSchedule(const TestProblem& problem, const Schedule& schedule,
                     const ValidationOptions& options) {
  return ValidateSchedule(problem, schedule, options).empty();
}

std::string FormatViolations(const std::vector<Violation>& violations) {
  std::string out;
  for (const auto& v : violations) {
    out += "  - " + v.message + "\n";
  }
  return out;
}

}  // namespace soctest
