// Idle-time analysis of a schedule.
//
// The unfilled area of the packing bin is idle TAM wire-time (paper Fig. 2
// marks it explicitly); the scheduler's insertion heuristics exist to shrink
// it. This module quantifies where the idle area sits so users can see which
// heuristic opportunities remain.
#pragma once

#include <string>
#include <vector>

#include "core/schedule.h"

namespace soctest {

// A maximal time window with a constant number of free wires (> 0).
struct IdleWindow {
  Interval span;
  int free_width = 0;

  std::int64_t Area() const { return span.length() * free_width; }
};

struct IdleReport {
  std::int64_t total_idle_area = 0;   // == schedule.IdleArea()
  std::int64_t used_area = 0;
  double utilization = 0.0;
  std::vector<IdleWindow> windows;    // sorted by start time

  // The single largest idle window by area (span x free width).
  const IdleWindow* LargestWindow() const;

  // Idle area before the last test finishes (the part heuristics can fill;
  // trailing idle after makespan does not exist by definition).
  std::int64_t InteriorIdleArea() const { return total_idle_area; }
};

// Builds the report by sweeping the schedule's width profile.
IdleReport AnalyzeIdle(const Schedule& schedule);

// Human-readable summary (top windows, utilization).
std::string FormatIdleReport(const IdleReport& report, std::size_t max_windows = 5);

}  // namespace soctest
