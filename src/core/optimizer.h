// TAM_schedule_optimizer — the paper's integrated wrapper/TAM co-optimization
// and constraint-driven preemptive scheduling algorithm (Figs. 4-8).
//
// Overview of the event-driven loop:
//   * Initialize: build each core's time curve / Pareto rectangles and its
//     preferred TAM width (smallest width within S% of the time at Wmax,
//     bumped to the top Pareto width when within `delta` wires).
//   * Admission round (at the current time, with the currently available
//     wires):
//       Priority 1  — paused cores that have exhausted their preemption
//                     budget resume first, at their assigned width.
//       Priority 2/3 — remaining candidates (paused cores at their assigned
//                     width, unstarted cores at their preferred width) are
//                     admitted greedily in decreasing remaining-time order.
//                     In non-preemptive mode paused cores always outrank
//                     unstarted ones; in preemptive mode they compete purely
//                     on remaining time, which is what lets a long unstarted
//                     test preempt short resumed ones (see DESIGN.md).
//       Idle fill   — if wires are still free, an unstarted core whose
//                     preferred width exceeds the free wires by at most
//                     `idle_fill_slack` (paper: 3) is admitted at the largest
//                     Pareto width that fits.
//       Width boost — remaining free wires are granted to the just-started
//                     core that gains the most test-time reduction from them
//                     (its width snaps to the largest Pareto width <= old +
//                     free).
//   * Update: advance time to the earliest completion among running tests,
//     close the elapsed segment for every running test, retire finished
//     tests, and re-contend (paper Fig. 8). A paused test that resumes after
//     a gap counts one preemption and pays (s_i + s_o) extra cycles for the
//     scan flush/reload (paper Section 4, Assign line 5).
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/compiled_problem.h"
#include "core/conflict.h"
#include "core/problem.h"
#include "core/schedule.h"
#include "wrapper/pareto.h"
#include "wrapper/rectangles.h"

namespace soctest {

// How the admission loop ranks candidate cores (paper: remaining test time).
enum class AdmissionRank {
  kTime,   // largest remaining test time first (paper Fig. 4)
  kWidth,  // widest rectangle first, time as tie-break (strip-packing order)
  kArea,   // largest width*time area first
};

struct OptimizerParams {
  // Total SOC TAM width (bin height). Must be >= 1.
  int tam_width = 32;

  // Per-core maximum TAM width / reference width for preferred-width
  // selection (the paper uses 64). Must match the CompiledProblem's w_max
  // when scheduling against pre-compiled artifacts.
  int w_max = kDefaultWMax;

  // Preferred-width heuristic knobs (paper script-S in [1,10], script-D in
  // [0,4]).
  double s_percent = 5.0;
  int delta = 1;

  // Idle-time rectangle insertion window (paper: 3 wires).
  int idle_fill_slack = 3;

  // Caps every core's preemption budget at this value when >= 0 (ignored in
  // non-preemptive mode). A cap can only tighten CoreSpec::max_preemptions —
  // never raise it past what the hardware declares — so schedules stay valid
  // under the per-core validator check. Swept as a wide-grid axis
  // (search/grid.h).
  int preemption_budget_override = -1;

  // Master switch for preemption. When false every core is treated as
  // non-preemptable regardless of CoreSpec::max_preemptions (Table 1's
  // "non-preemptive" column).
  bool allow_preemption = false;

  // When non-empty (one entry per core), these widths replace the computed
  // preferred widths; each is snapped to the core's Pareto grid and clamped
  // to tam_width. Used by the local-search improver (core/improver.h).
  std::vector<int> preferred_width_override;

  // Ablation switches (all true for the paper's algorithm).
  bool enable_idle_fill = true;
  bool enable_width_boost = true;

  // Candidate ordering for priorities 2/3.
  AdmissionRank rank = AdmissionRank::kTime;

  // Deadline-driven preferred widths: instead of sizing every core within S%
  // of its own time at w_max (paper Fig. 5), size it to the smallest Pareto
  // width whose time is within S% of the SOC's lower bound at this W — so
  // the large tests start together and finish together near the area bound.
  // Swept as an alternative sizing mode by OptimizeBestOverParams.
  bool deadline_sizing = false;

  // Incumbent bound for early abandonment (0 = unbounded). At every round
  // boundary the run holds an admissible certificate for its own final
  // makespan:
  //
  //     certificate = now + ceil(sum of unstarted cores' min areas / W)
  //
  // where a core's min area is min over its (clipped) Pareto points of
  // width * time — no schedule can test the core in less TAM area, whatever
  // widths the heuristics later pick. Every unstarted core runs entirely
  // after `now` inside a W-wire TAM, so the true final makespan is always
  // >= the certificate; and `now` is monotone non-decreasing with the final
  // makespan equal to the final `now`, so the certificate converges on the
  // exact makespan as the run drains. The moment it reaches this bound the
  // run provably cannot come in below the bound and aborts: the result
  // carries aborted_by_bound = true, an EMPTY schedule, and makespan = the
  // certificate (>= the bound, <= the makespan the full run would have
  // produced). A caller racing candidates against an incumbent
  // (core/improver.h, search/driver.h) sets the bound so that aborted
  // candidates are exactly ones that could never have been accepted —
  // acceptance decisions, and therefore the final schedule, are
  // bit-identical to the unbounded run, while losers stop paying for the
  // bulk of their packing loop.
  //
  // Both certificate terms are power-free (pure wire-area and elapsed-time
  // arguments), so they stay admissible under ANY power-budget timeline —
  // budget drops can only delay admissions and stretch tests, never shorten
  // the schedule below the certificate. Bounded runs therefore remain
  // bit-identical to unbounded ones under time-varying budgets too.
  Time makespan_bound = 0;

  // Extra idle-time insertion heuristic (the paper reports using "several
  // heuristics that seek to insert tests to minimize the idle time" beyond
  // the 3-wire window it details): admit an unstarted core at the largest
  // Pareto width that fits the currently free wires, provided its resulting
  // test time does not exceed the longest remaining active test — i.e. the
  // insertion can never stretch the running critical path.
  bool enable_insert_fill = true;

  // Replaces the problem's power-budget timeline when non-empty: validated
  // like PowerBudget::FromSegments (start 0 first, strictly increasing
  // starts, positive caps) — Run() reports an error otherwise. Per-core
  // power comes from the problem's model when it has one; else it is derived
  // from the specs (explicit power, or BitsPerPattern — the FromParsed
  // rule). Living in OptimizerParams, the override flows unchanged through
  // the restart search, the improver, and width sweeps, so every evaluation
  // of one request honors one timeline.
  std::vector<PowerBudget::Segment> power_budget_override;

  // When false, per-core priority classes (CoreSpec::prio) are ignored and
  // admission uses the paper's pure heuristic order. The default honors
  // them: AdmitRanked and the limit-reached resume order gain a leading
  // priority-class key (hot-lot prio 0 first), with the existing heuristic
  // unchanged within a class. With uniform priorities the comparators never
  // consult the class at all, keeping schedules bit-identical to the
  // pre-priority scheduler.
  bool honor_priority = true;
};

// Per-core diagnostic emitted alongside the schedule.
struct CoreAssignment {
  CoreId core = kNoCore;
  int preferred_width = 0;
  int assigned_width = 0;
  Time test_time = 0;        // at the assigned width, without penalties
  Time scheduled_time = 0;   // including preemption overhead
  int preemptions = 0;
};

struct OptimizerResult {
  Schedule schedule;
  std::vector<CoreAssignment> assignments;
  Time makespan = 0;
  int admission_rounds = 0;  // number of Update events

  // Admission-selection effort counters (deterministic for fixed inputs,
  // like the schedule itself). `candidates_examined` counts candidates the
  // admission helpers actually looked at; `buckets_skipped` counts non-empty
  // width buckets the admission index pruned without scanning because their
  // width could not fit the free wires. Together they quantify the pruning
  // the bucketed index buys over the historical scan-everything loops; the
  // perf benches surface them in STATS lines.
  std::int64_t candidates_examined = 0;
  std::int64_t buckets_skipped = 0;

  // True when the run was abandoned because its makespan certificate
  // reached params.makespan_bound (see OptimizerParams::makespan_bound).
  // The schedule is empty, makespan holds the certificate (>= the bound,
  // and a lower bound on the makespan the full run would have produced),
  // and the phase counters above (admission_rounds, candidates_examined,
  // buckets_skipped) cover only the phases actually run. Not an error:
  // ok() stays true — the caller asked for exactly this outcome.
  bool aborted_by_bound = false;

  // Set when the input was unschedulable; the schedule is empty then.
  std::optional<std::string> error;

  bool ok() const { return !error.has_value(); }
};

// Reusable scratch for TamScheduleOptimizer::Run — the allocation sink for
// restart loops. One scheduler run needs per-core state vectors, an admission
// candidate list, the active-core set, and (dominating everything) the
// rectangle sets clipped to the run's TAM width. Callers that run the
// scheduler many times against one CompiledProblem (the restart driver, the
// hill-climb improver, the width sweeps) pass one workspace per worker thread
// and every run after the first reuses the previous run's buffers; the
// clipped rectangle sets are additionally cached while (compiled, tam_width)
// is unchanged, which removes the largest per-run allocation entirely.
//
// Reuse never changes results: every field is (re)initialized by Run before
// use, and the rectangle cache holds immutable values. A workspace is NOT
// thread-safe — give each worker its own. The rectangle cache is keyed by
// CompiledProblem::id() — a process-unique, never-reused compilation
// identity — so one workspace can safely serve runs against different
// compiled problems (each switch just rebuilds the cache). Treat the
// members as opaque.
//
// Layout (PR 7): the per-core state is struct-of-arrays. Admission scans
// used to stride over an array of CoreState structs — each one dragging a
// std::vector<ScheduleSegment> and two Times past the two ints a scan
// actually reads — so every hot loop now touches a dense array of exactly
// the field it needs, and the boolean flags are CoreBitset words so
// "iterate the unstarted cores" skips 64 finished cores per word. On top of
// the arrays sit the admission index (paused/unstarted cores bucketed by the
// minimum TAM width they can use — see AdmitLimitReached/AdmitIdleFill) and
// flat per-width snap/time lookup tables derived from the clipped rectangle
// sets, cached under the same (compilation id, TAM width) key.
struct ScheduleWorkspace {
  // One admission candidate (selection scratch).
  struct Candidate {
    CoreId core;
    Time remaining;
    bool begun;
    int width;
    int prio;  // priority class (0 = hot-lot); 0 when priorities are uniform
  };

  // ---- (compilation id, TAM width)-keyed cache --------------------------
  // Rectangle sets clipped to `rects_tam_width`, plus the flat per-width
  // lookup tables derived from them, cached while the key is unchanged.
  std::uint64_t rects_source_id = 0;  // 0 = cache empty
  int rects_tam_width = 0;
  std::vector<RectangleSet> rects;
  // snap_lut[c * lut_stride + w] = rects[c].SnapWidth(w) and
  // time_lut[c * lut_stride + w] = rects[c].TimeAtWidth(w) for w in
  // [0, rects_tam_width]; lut_stride = rects_tam_width + 1. Admission does
  // millions of these lookups per sweep — a flat load beats re-walking the
  // Pareto list every time, and the fill loop is branch-light.
  int lut_stride = 0;
  std::vector<int> snap_lut;
  std::vector<Time> time_lut;
  // min_area[c] = min over rects[c].pareto() of width * time: the least TAM
  // area any schedule can spend testing core c at this clip. Feeds the
  // makespan_bound certificate (see OptimizerParams::makespan_bound).
  std::vector<Time> min_area;

  // ---- Per-core state, struct-of-arrays, reset per run ------------------
  std::vector<int> preferred;        // preferred width (static after init)
  std::vector<int> max_preemptions;  // static after init
  std::vector<int> prio;             // priority class; all 0 when uniform
  std::vector<int> assigned_width;
  std::vector<Time> time_remaining;
  std::vector<Time> first_begin;
  std::vector<Time> end_time;   // last instant the core ran (pause/finish)
  std::vector<int> preemptions;
  std::vector<Time> overhead;
  // Moved into the emitted schedule at the end of a run (buffer not kept).
  std::vector<std::vector<ScheduleSegment>> segments;

  // Status bitsets. complete doubles as the conflict policy's "finished"
  // membership; unstarted (= !begun and !complete) is what the idle/insert
  // fill heuristics iterate.
  CoreBitset begun;
  CoreBitset running;
  CoreBitset complete;
  CoreBitset unstarted;

  // ---- Admission index --------------------------------------------------
  // Paused cores bucketed by their (fixed) assigned width: a paused core can
  // only resume onto >= assigned_width free wires, so admission rescans only
  // the buckets that fit and prunes the rest unseen. Unstarted cores are
  // bucketed by preferred width for the idle-fill window lookup; each bucket
  // keeps ascending core-id order (the selection tie-break). Membership is
  // maintained incrementally by Admit/AdvanceTime.
  std::vector<std::vector<CoreId>> paused_by_width;
  std::vector<std::vector<CoreId>> unstarted_by_pref;
  int paused_count = 0;
  // Cores first admitted at the current time (the width-boost candidates);
  // cleared whenever time advances.
  std::vector<CoreId> started_now;

  // Selection scratch.
  std::vector<Candidate> candidates;  // AdmitRanked's heap
  std::vector<Candidate> eligible;    // deferred-conflict selection lists
  std::vector<CoreId> active;  // cores currently running, admission order
};

class TamScheduleOptimizer {
 public:
  // Schedules against pre-compiled wrapper artifacts (the fast path: restart
  // drivers build one CompiledProblem and run many optimizers against it).
  // `compiled` must outlive the optimizer; params.w_max must match
  // compiled.w_max() or Run() reports an error.
  TamScheduleOptimizer(const CompiledProblem& compiled, OptimizerParams params);

  // Compatibility path: compiles the problem privately (at params.w_max),
  // then schedules. One-shot callers keep working unchanged.
  TamScheduleOptimizer(const TestProblem& problem, OptimizerParams params);

  // Runs the full co-optimization. Deterministic for fixed inputs, and
  // independent of the workspace's prior contents: Run(ws) with a reused
  // workspace is bit-identical to Run() with a fresh one. The no-argument
  // overload allocates a private workspace.
  OptimizerResult Run();
  OptimizerResult Run(ScheduleWorkspace& ws);

 private:
  // Admission helpers; all return true if at least one core was scheduled.
  bool AdmitLimitReached();
  bool AdmitRanked();
  bool AdmitIdleFill();
  bool AdmitInsertFill();
  bool BoostJustStarted();
  void AdvanceTime();  // paper's Update

  // Starts/resumes `core` at `width` now. Handles preemption accounting and
  // the admission-index bookkeeping (bucket removal, status bits).
  void Admit(CoreId core, int width);

  // Conflict check for admitting `core` at `width` now. Under a time-varying
  // budget the power test covers the window [now_, now_ + HoldFor(...)):
  // instantaneous for admissions that can still be preempted at the next
  // event, the full remaining run for ones that cannot — so a future budget
  // drop can never catch an uninterruptible test mid-flight (the validator
  // would reject the resulting schedule). With a static budget HoldFor is
  // never consulted and the check is exactly the historical instantaneous
  // one.
  bool IsBlocked(CoreId core, int width) const;

  // The contiguous-run length an admission of `core` at `width` commits to:
  // 0 when the core could be preempted again afterwards (its budget check
  // may be instantaneous), else its full remaining test time — including the
  // resume flush penalty when the admission would close a gap (which also
  // consumes the final preemption credit, hence "after this admission" is
  // what is tested).
  Time HoldFor(CoreId core, int width) const;

  int AvailableWidth() const { return params_.tam_width - used_width_; }

  // Admissible lower bound on this run's final makespan, behind
  // makespan_bound's early abandonment. The max of two certificates:
  //   area — now_ + ceil(remaining work area / W): unstarted cores
  //     contribute their Pareto-minimal area, begun incomplete ones the
  //     exact area of their remaining test — all of it must fit into the
  //     W-wire TAM after now_. Tight when the bound binds mid-schedule.
  //   critical path — a core observed running with r remaining at time t
  //     finishes no earlier than t + r: its width is committed (boosts act
  //     only in the start round, before AdvanceTime records the term) and
  //     preemption penalties only stretch r. Tight on schedule tails,
  //     where a few narrow cores drain and the area bound collapses.
  Time MakespanCertificate() const {
    const Time area = now_ + (remaining_min_area_ + begun_remaining_area_ +
                              params_.tam_width - 1) /
                                 params_.tam_width;
    return std::max(area, critical_path_lb_);
  }

  // Flat per-width lookups (== rects[c].SnapWidth/TimeAtWidth; see
  // ScheduleWorkspace::snap_lut). `w` may exceed the TAM width only through
  // the defensive clamp; admission always passes w in [0, tam_width].
  int SnapLut(CoreId c, int w) const;
  Time TimeLut(CoreId c, int w) const;

  // Candidate ordering for AdmitRanked (paper priorities 2/3): true when a
  // precedes b. A total order (core id last), so heap-pop order == the
  // historical full-sort order.
  bool RankedBefore(const ScheduleWorkspace::Candidate& a,
                    const ScheduleWorkspace::Candidate& b) const;

  // (s_i + s_o) preemption penalty for `core` at `width`.
  Time PreemptionPenalty(CoreId core, int width) const;

  std::unique_ptr<CompiledProblem> owned_;  // compatibility ctor only
  const CompiledProblem* compiled_;
  const TestProblem* problem_;
  OptimizerParams params_;
  // Effective power model: the problem's own, unless
  // params_.power_budget_override swaps in a different timeline (then
  // override_power_ holds the model the conflict policy reads). A malformed
  // override is recorded here and reported by Run().
  std::optional<std::string> override_error_;
  PowerModel override_power_;
  const PowerModel* effective_power_;
  ConflictPolicy conflict_;
  // True iff the effective budget actually changes over time. Everything the
  // timeline machinery adds (event clamping, window checks, idle advance) is
  // gated on this flag, so static-budget runs execute the exact historical
  // path — the bit-identity contract's enforcement point.
  bool timeline_ = false;
  // True iff every core shares one priority class this run (always true when
  // honor_priority is off). Uniform runs never consult the class key.
  bool priority_uniform_ = true;

  // Per-run state lives in the workspace; these track the active set
  // incrementally so admission never rescans all cores per candidate.
  std::unique_ptr<ScheduleWorkspace> default_ws_;  // Run() overload only
  ScheduleWorkspace* ws_ = nullptr;
  int used_width_ = 0;
  std::int64_t active_power_ = 0;
  // max time_remaining over the active set (the running critical path the
  // insertion heuristics compare against); maintained by Admit, reset when
  // the active set drains. Only consumed before BoostJustStarted can shorten
  // an active test, so no downward maintenance is needed.
  Time active_critical_ = 0;
  Time now_ = 0;
  int incomplete_ = 0;
  int rounds_ = 0;
  // Makespan-certificate state (maintained only while makespan_bound > 0;
  // see MakespanCertificate):
  //   remaining_min_area_  — sum of ws_->min_area over not-yet-begun cores;
  //                          Admit moves a core out the first time it starts.
  //   begun_remaining_area_ — sum of assigned_width * time_remaining over
  //                          begun, incomplete cores: the exact wire-time
  //                          their remaining tests will occupy absent future
  //                          preemptions (which only add). Maintained O(1):
  //                          Admit adds the start/penalty terms, the width
  //                          boost re-prices its core, AdvanceTime retires
  //                          elapsed * used_width_.
  Time remaining_min_area_ = 0;
  Time begun_remaining_area_ = 0;
  //   critical_path_lb_    — running max of now_ + time_remaining over the
  //                          active set, recorded by AdvanceTime once the
  //                          round's widths are final. Monotone; never
  //                          needs downward maintenance.
  Time critical_path_lb_ = 0;
  std::int64_t candidates_examined_ = 0;
  std::int64_t buckets_skipped_ = 0;
};

// Convenience wrappers: build + run in one call. The TestProblem overload
// compiles the wrapper artifacts privately; the CompiledProblem overload
// reuses artifacts compiled once (the fast path for restart loops).
OptimizerResult Optimize(const TestProblem& problem, const OptimizerParams& params);
OptimizerResult Optimize(const CompiledProblem& compiled,
                         const OptimizerParams& params);

// Fast path for restart loops: like the CompiledProblem overload but reuses
// `ws` across calls (see ScheduleWorkspace). Same result, fewer allocations.
OptimizerResult Optimize(const CompiledProblem& compiled,
                         const OptimizerParams& params, ScheduleWorkspace& ws);

// Sweeps the paper's restart grid (rank x sizing x S in [1,10] x delta in
// [0,4]; see search/grid.h for the canonical order) on `threads` workers and
// returns the smallest-makespan result. Tie-break, explicit and guaranteed:
// equal makespans resolve to the smallest grid index — the first winner the
// historical serial loop would have found — so the result is bit-identical
// for every thread count. threads = 1 is serial; 0 uses the hardware.
OptimizerResult OptimizeBestOverParams(const TestProblem& problem,
                                       OptimizerParams params, int threads = 1);
OptimizerResult OptimizeBestOverParams(const CompiledProblem& compiled,
                                       OptimizerParams params, int threads = 1);

}  // namespace soctest
