// TAM_schedule_optimizer — the paper's integrated wrapper/TAM co-optimization
// and constraint-driven preemptive scheduling algorithm (Figs. 4-8).
//
// Overview of the event-driven loop:
//   * Initialize: build each core's time curve / Pareto rectangles and its
//     preferred TAM width (smallest width within S% of the time at Wmax,
//     bumped to the top Pareto width when within `delta` wires).
//   * Admission round (at the current time, with the currently available
//     wires):
//       Priority 1  — paused cores that have exhausted their preemption
//                     budget resume first, at their assigned width.
//       Priority 2/3 — remaining candidates (paused cores at their assigned
//                     width, unstarted cores at their preferred width) are
//                     admitted greedily in decreasing remaining-time order.
//                     In non-preemptive mode paused cores always outrank
//                     unstarted ones; in preemptive mode they compete purely
//                     on remaining time, which is what lets a long unstarted
//                     test preempt short resumed ones (see DESIGN.md).
//       Idle fill   — if wires are still free, an unstarted core whose
//                     preferred width exceeds the free wires by at most
//                     `idle_fill_slack` (paper: 3) is admitted at the largest
//                     Pareto width that fits.
//       Width boost — remaining free wires are granted to the just-started
//                     core that gains the most test-time reduction from them
//                     (its width snaps to the largest Pareto width <= old +
//                     free).
//   * Update: advance time to the earliest completion among running tests,
//     close the elapsed segment for every running test, retire finished
//     tests, and re-contend (paper Fig. 8). A paused test that resumes after
//     a gap counts one preemption and pays (s_i + s_o) extra cycles for the
//     scan flush/reload (paper Section 4, Assign line 5).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/compiled_problem.h"
#include "core/conflict.h"
#include "core/problem.h"
#include "core/schedule.h"
#include "wrapper/pareto.h"
#include "wrapper/rectangles.h"

namespace soctest {

// How the admission loop ranks candidate cores (paper: remaining test time).
enum class AdmissionRank {
  kTime,   // largest remaining test time first (paper Fig. 4)
  kWidth,  // widest rectangle first, time as tie-break (strip-packing order)
  kArea,   // largest width*time area first
};

struct OptimizerParams {
  // Total SOC TAM width (bin height). Must be >= 1.
  int tam_width = 32;

  // Per-core maximum TAM width / reference width for preferred-width
  // selection (the paper uses 64). Must match the CompiledProblem's w_max
  // when scheduling against pre-compiled artifacts.
  int w_max = kDefaultWMax;

  // Preferred-width heuristic knobs (paper script-S in [1,10], script-D in
  // [0,4]).
  double s_percent = 5.0;
  int delta = 1;

  // Idle-time rectangle insertion window (paper: 3 wires).
  int idle_fill_slack = 3;

  // Caps every core's preemption budget at this value when >= 0 (ignored in
  // non-preemptive mode). A cap can only tighten CoreSpec::max_preemptions —
  // never raise it past what the hardware declares — so schedules stay valid
  // under the per-core validator check. Swept as a wide-grid axis
  // (search/grid.h).
  int preemption_budget_override = -1;

  // Master switch for preemption. When false every core is treated as
  // non-preemptable regardless of CoreSpec::max_preemptions (Table 1's
  // "non-preemptive" column).
  bool allow_preemption = false;

  // When non-empty (one entry per core), these widths replace the computed
  // preferred widths; each is snapped to the core's Pareto grid and clamped
  // to tam_width. Used by the local-search improver (core/improver.h).
  std::vector<int> preferred_width_override;

  // Ablation switches (all true for the paper's algorithm).
  bool enable_idle_fill = true;
  bool enable_width_boost = true;

  // Candidate ordering for priorities 2/3.
  AdmissionRank rank = AdmissionRank::kTime;

  // Deadline-driven preferred widths: instead of sizing every core within S%
  // of its own time at w_max (paper Fig. 5), size it to the smallest Pareto
  // width whose time is within S% of the SOC's lower bound at this W — so
  // the large tests start together and finish together near the area bound.
  // Swept as an alternative sizing mode by OptimizeBestOverParams.
  bool deadline_sizing = false;

  // Extra idle-time insertion heuristic (the paper reports using "several
  // heuristics that seek to insert tests to minimize the idle time" beyond
  // the 3-wire window it details): admit an unstarted core at the largest
  // Pareto width that fits the currently free wires, provided its resulting
  // test time does not exceed the longest remaining active test — i.e. the
  // insertion can never stretch the running critical path.
  bool enable_insert_fill = true;
};

// Per-core diagnostic emitted alongside the schedule.
struct CoreAssignment {
  CoreId core = kNoCore;
  int preferred_width = 0;
  int assigned_width = 0;
  Time test_time = 0;        // at the assigned width, without penalties
  Time scheduled_time = 0;   // including preemption overhead
  int preemptions = 0;
};

struct OptimizerResult {
  Schedule schedule;
  std::vector<CoreAssignment> assignments;
  Time makespan = 0;
  int admission_rounds = 0;  // number of Update events

  // Set when the input was unschedulable; the schedule is empty then.
  std::optional<std::string> error;

  bool ok() const { return !error.has_value(); }
};

// Reusable scratch for TamScheduleOptimizer::Run — the allocation sink for
// restart loops. One scheduler run needs per-core state vectors, an admission
// candidate list, the active-core set, and (dominating everything) the
// rectangle sets clipped to the run's TAM width. Callers that run the
// scheduler many times against one CompiledProblem (the restart driver, the
// hill-climb improver, the width sweeps) pass one workspace per worker thread
// and every run after the first reuses the previous run's buffers; the
// clipped rectangle sets are additionally cached while (compiled, tam_width)
// is unchanged, which removes the largest per-run allocation entirely.
//
// Reuse never changes results: every field is (re)initialized by Run before
// use, and the rectangle cache holds immutable values. A workspace is NOT
// thread-safe — give each worker its own. The rectangle cache is keyed by
// CompiledProblem::id() — a process-unique, never-reused compilation
// identity — so one workspace can safely serve runs against different
// compiled problems (each switch just rebuilds the cache). Treat the
// members as opaque.
struct ScheduleWorkspace {
  // Per-core scheduling state, reset per run. (`segments` is moved into the
  // emitted schedule at the end of a run, so its buffer is not retained.)
  struct CoreState {
    // Static after Initialize.
    int preferred_width = 0;
    int max_preemptions = 0;

    // Dynamic.
    int assigned_width = 0;
    bool begun = false;
    bool running = false;
    bool complete = false;
    Time first_begin = 0;
    Time end_time = 0;      // last instant the core was running (pause/finish)
    Time time_remaining = 0;
    int preemptions = 0;
    std::vector<ScheduleSegment> segments;
    Time overhead = 0;

    void Reset() {
      preferred_width = 0;
      max_preemptions = 0;
      assigned_width = 0;
      begun = running = complete = false;
      first_begin = end_time = time_remaining = 0;
      preemptions = 0;
      segments.clear();
      overhead = 0;
    }
  };

  // One admission candidate (AdmitRanked scratch).
  struct Candidate {
    CoreId core;
    Time remaining;
    bool begun;
    int width;
  };

  // Rectangle sets clipped to `rects_tam_width`, cached while the
  // (compilation id, TAM width) pair is unchanged.
  std::uint64_t rects_source_id = 0;  // 0 = cache empty
  int rects_tam_width = 0;
  std::vector<RectangleSet> rects;

  std::vector<int> preferred;
  std::vector<CoreState> state;
  std::vector<bool> completed;
  std::vector<Candidate> candidates;
  std::vector<CoreId> active;  // cores currently running, admission order
};

class TamScheduleOptimizer {
 public:
  // Schedules against pre-compiled wrapper artifacts (the fast path: restart
  // drivers build one CompiledProblem and run many optimizers against it).
  // `compiled` must outlive the optimizer; params.w_max must match
  // compiled.w_max() or Run() reports an error.
  TamScheduleOptimizer(const CompiledProblem& compiled, OptimizerParams params);

  // Compatibility path: compiles the problem privately (at params.w_max),
  // then schedules. One-shot callers keep working unchanged.
  TamScheduleOptimizer(const TestProblem& problem, OptimizerParams params);

  // Runs the full co-optimization. Deterministic for fixed inputs, and
  // independent of the workspace's prior contents: Run(ws) with a reused
  // workspace is bit-identical to Run() with a fresh one. The no-argument
  // overload allocates a private workspace.
  OptimizerResult Run();
  OptimizerResult Run(ScheduleWorkspace& ws);

 private:
  using CoreState = ScheduleWorkspace::CoreState;

  // Admission helpers; all return true if at least one core was scheduled.
  bool AdmitLimitReached();
  bool AdmitRanked();
  bool AdmitIdleFill();
  bool AdmitInsertFill();
  bool BoostJustStarted();
  void AdvanceTime();  // paper's Update

  // Starts/resumes `core` at `width` now. Handles preemption accounting.
  void Admit(CoreId core, int width);

  bool IsBlocked(CoreId core) const;
  int AvailableWidth() const { return params_.tam_width - used_width_; }

  // (s_i + s_o) preemption penalty for `core` at `width`.
  Time PreemptionPenalty(CoreId core, int width) const;

  std::unique_ptr<CompiledProblem> owned_;  // compatibility ctor only
  const CompiledProblem* compiled_;
  const TestProblem* problem_;
  OptimizerParams params_;
  ConflictPolicy conflict_;

  // Per-run state lives in the workspace; these track the active set
  // incrementally so admission never rescans all cores per candidate.
  std::unique_ptr<ScheduleWorkspace> default_ws_;  // Run() overload only
  ScheduleWorkspace* ws_ = nullptr;
  int used_width_ = 0;
  std::int64_t active_power_ = 0;
  Time now_ = 0;
  int incomplete_ = 0;
  int rounds_ = 0;
};

// Convenience wrappers: build + run in one call. The TestProblem overload
// compiles the wrapper artifacts privately; the CompiledProblem overload
// reuses artifacts compiled once (the fast path for restart loops).
OptimizerResult Optimize(const TestProblem& problem, const OptimizerParams& params);
OptimizerResult Optimize(const CompiledProblem& compiled,
                         const OptimizerParams& params);

// Fast path for restart loops: like the CompiledProblem overload but reuses
// `ws` across calls (see ScheduleWorkspace). Same result, fewer allocations.
OptimizerResult Optimize(const CompiledProblem& compiled,
                         const OptimizerParams& params, ScheduleWorkspace& ws);

// Sweeps the paper's restart grid (rank x sizing x S in [1,10] x delta in
// [0,4]; see search/grid.h for the canonical order) on `threads` workers and
// returns the smallest-makespan result. Tie-break, explicit and guaranteed:
// equal makespans resolve to the smallest grid index — the first winner the
// historical serial loop would have found — so the result is bit-identical
// for every thread count. threads = 1 is serial; 0 uses the hardware.
OptimizerResult OptimizeBestOverParams(const TestProblem& problem,
                                       OptimizerParams params, int threads = 1);
OptimizerResult OptimizeBestOverParams(const CompiledProblem& compiled,
                                       OptimizerParams params, int threads = 1);

}  // namespace soctest
