// ASCII Gantt rendering of a schedule (paper Fig. 2): rows are cores (or
// physical wires), the x-axis is time, glyphs identify the core under test.
#pragma once

#include <string>

#include "core/schedule.h"
#include "core/wire_assign.h"
#include "soc/soc.h"

namespace soctest {

struct GanttOptions {
  int width_chars = 96;   // characters used for the time axis
  bool show_widths = true;  // append "wN" annotations per row
};

// One row per core; '#' marks active intervals, '.' idle.
std::string RenderCoreGantt(const Soc& soc, const Schedule& schedule,
                            const GanttOptions& options = {});

// One row per physical TAM wire; rows show which core occupies each wire over
// time (letters/digits cycle through core ids). Requires a wire assignment.
std::string RenderWireGantt(const Soc& soc, const Schedule& schedule,
                            const WireAssignment& wires,
                            const GanttOptions& options = {});

}  // namespace soctest
