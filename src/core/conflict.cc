#include "core/conflict.h"

#include "util/strings.h"

namespace soctest {
namespace {

// Shared body: `Completed` is any callable mapping core index -> finished?
// (vector<bool> indexing or CoreBitset::test). Kept a template so the two
// public overloads cannot drift apart. `now`/`hold` feed the time-varying
// budget check; (0, 0) reproduces the legacy static-Pmax behavior exactly.
template <typename Completed>
std::optional<std::string> BlockedImpl(const PrecedenceGraph* precedence,
                                       const ConcurrencySet* concurrency,
                                       const PowerModel* power,
                                       CoreId candidate,
                                       const Completed& completed,
                                       const std::vector<CoreId>& active,
                                       std::int64_t active_power, Time now,
                                       Time hold) {
  if (precedence != nullptr && candidate < precedence->num_cores()) {
    for (CoreId pred : precedence->PredecessorsOf(candidate)) {
      if (!completed(static_cast<std::size_t>(pred))) {
        return StrFormat("precedence: core %d must complete first", pred);
      }
    }
  }
  if (concurrency != nullptr) {
    for (CoreId other : active) {
      if (concurrency->Conflicts(candidate, other)) {
        return StrFormat("concurrency: conflicts with active core %d", other);
      }
    }
  }
  if (power != nullptr && !power->unlimited()) {
    const std::int64_t p = power->PowerOf(candidate);
    if (!power->FitsAt(active_power, p, now, hold)) {
      return StrFormat("power: load %lld + %lld exceeds Pmax %lld",
                       static_cast<long long>(active_power),
                       static_cast<long long>(p),
                       static_cast<long long>(
                           hold > 0 ? power->budget().MinOver(now, now + hold)
                                    : power->budget().BudgetAt(now)));
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> ConflictPolicy::Blocked(
    CoreId candidate, const std::vector<bool>& completed,
    const std::vector<CoreId>& active, std::int64_t active_power) const {
  return BlockedImpl(
      precedence_, concurrency_, power_, candidate,
      [&completed](std::size_t c) { return static_cast<bool>(completed[c]); },
      active, active_power, 0, 0);
}

std::optional<std::string> ConflictPolicy::Blocked(
    CoreId candidate, const CoreBitset& completed,
    const std::vector<CoreId>& active, std::int64_t active_power) const {
  return BlockedImpl(
      precedence_, concurrency_, power_, candidate,
      [&completed](std::size_t c) { return completed.test(c); }, active,
      active_power, 0, 0);
}

std::optional<std::string> ConflictPolicy::Blocked(
    CoreId candidate, const CoreBitset& completed,
    const std::vector<CoreId>& active, std::int64_t active_power, Time now,
    Time hold) const {
  return BlockedImpl(
      precedence_, concurrency_, power_, candidate,
      [&completed](std::size_t c) { return completed.test(c); }, active,
      active_power, now, hold);
}

}  // namespace soctest
