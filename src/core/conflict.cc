#include "core/conflict.h"

#include "util/strings.h"

namespace soctest {

std::optional<std::string> ConflictPolicy::Blocked(
    CoreId candidate, const std::vector<bool>& completed,
    const std::vector<CoreId>& active, std::int64_t active_power) const {
  if (precedence_ != nullptr && candidate < precedence_->num_cores()) {
    for (CoreId pred : precedence_->PredecessorsOf(candidate)) {
      if (!completed[static_cast<std::size_t>(pred)]) {
        return StrFormat("precedence: core %d must complete first", pred);
      }
    }
  }
  if (concurrency_ != nullptr) {
    for (CoreId other : active) {
      if (concurrency_->Conflicts(candidate, other)) {
        return StrFormat("concurrency: conflicts with active core %d", other);
      }
    }
  }
  if (power_ != nullptr && !power_->unlimited()) {
    const std::int64_t p = power_->PowerOf(candidate);
    if (!power_->Fits(active_power, p)) {
      return StrFormat("power: load %lld + %lld exceeds Pmax %lld",
                       static_cast<long long>(active_power),
                       static_cast<long long>(p),
                       static_cast<long long>(power_->pmax()));
    }
  }
  return std::nullopt;
}

}  // namespace soctest
