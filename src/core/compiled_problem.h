// CompiledProblem — the immutable per-core artifacts of the wrapper pipeline,
// built ONCE per TestProblem and shared by every scheduler run.
//
// The co-optimization (core/optimizer.h) is a greedy packer that production
// callers wrap in restarts: the S/delta parameter grid, the local-search
// improver, and the tester-data-volume width sweeps all re-run the scheduler
// hundreds of times on the same SOC. Historically every run re-derived every
// core's wrapper designs, time curve T(w), Pareto points, and rectangle set
// from scratch — by far the dominant cost of a restart. CompiledProblem
// splits the pipeline in two:
//
//   compile (once)      TestProblem -> { TimeCurve, Pareto points,
//                                        RectangleSet, max useful width,
//                                        flush penalties, SOC bounds }
//   search/schedule (N) CompiledProblem + OptimizerParams -> Schedule
//
// The per-core artifacts themselves are CompiledCore values
// (core/compiled_core.h) held by shared_ptr: a CompiledProblem is an
// ASSEMBLY of per-core units plus cheap SOC-level aggregation, not a
// monolith. The compiling constructor builds every unit fresh; the assembly
// constructor accepts pre-built (typically cached — service/core_cache.h)
// units, which is what makes a near-duplicate SOC compile ~1/N of the cost:
// N-1 cores come from the shared artifact cache and only the edited core
// runs wrapper design. Both paths produce bit-identical artifacts, because
// core compilation is a deterministic function of (core spec, w_max).
//
// Everything here is immutable after construction and safe to share across
// threads without synchronization (see search/driver.h), which is what makes
// the parallel restart grid possible. The compiled artifacts are evaluated up
// to `w_max` and are independent of the SOC TAM width, so one CompiledProblem
// serves sweeps over tam_width as well: RectsFor(tam_width) clips the
// compiled curves to a concrete bin height without re-running wrapper design.
//
// Lifetime: CompiledProblem stores a reference to the TestProblem; the
// problem must outlive it (same convention as TamScheduleOptimizer). The
// CompiledCores are co-owned and outlive any cache they came from.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/compiled_core.h"
#include "core/problem.h"
#include "wrapper/rectangles.h"

namespace soctest {

// Default per-core curve evaluation bound (the paper uses 64). Shared by
// CompiledProblem's constructor and OptimizerParams::w_max so the two
// defaults cannot drift apart (a mismatch is a runtime error in Run()).
inline constexpr int kDefaultWMax = 64;

// SOC-level aggregates over the rectangle sets clipped to a TAM width. These
// are the lower-bound ingredients the optimizer's deadline sizing bisects
// against (and the two terms of the Section 6 scheduling lower bound).
struct SocBounds {
  Time bottleneck_time = 0;        // max_i T_i at the clipped top width
  std::int64_t total_min_area = 0; // sum_i min_w (w * T_i(w)), clipped
  Time serial_time = 0;            // sum_i T_i(1): serial width-1 upper bound

  // ceil(total_min_area / tam_width): the area term of the lower bound.
  Time AreaBound(int tam_width) const {
    if (tam_width <= 0) return 0;
    return (total_min_area + tam_width - 1) / tam_width;
  }

  // max(bottleneck, area): no schedule at this width can finish earlier.
  Time LowerBound(int tam_width) const {
    const Time area = AreaBound(tam_width);
    return bottleneck_time > area ? bottleneck_time : area;
  }
};

class CompiledProblem {
 public:
  // Compiles every core's wrapper artifacts up to `w_max` (paper: 64). On an
  // invalid input (w_max < 1, or Soc::Validate failure) no artifacts are
  // built and error() carries the reason; the optimizer propagates it.
  explicit CompiledProblem(const TestProblem& problem,
                           int w_max = kDefaultWMax);

  // Assembles from pre-built per-core artifacts: cores[i] must be the
  // compiled artifacts of problem.soc.cores()[i] at this same `w_max` (the
  // core-artifact cache guarantees it by keying on content — see
  // service/core_cache.h). Validation matches the compiling constructor; a
  // malformed handoff (size or w_max mismatch, null unit) is reported
  // through error() rather than trusted. Deterministic compilation makes
  // the two constructors indistinguishable downstream.
  CompiledProblem(const TestProblem& problem, int w_max,
                  std::vector<CompiledCorePtr> cores);

  const TestProblem& problem() const { return *problem_; }
  int w_max() const { return w_max_; }
  int num_cores() const { return static_cast<int>(cores_.size()); }

  // Process-unique identity of this compilation (monotonic, never reused).
  // Caches keyed on a CompiledProblem (e.g. ScheduleWorkspace's clipped
  // rectangle sets) compare ids instead of addresses, so a new problem
  // allocated where a dead one lived can never serve stale artifacts.
  std::uint64_t id() const { return id_; }

  bool ok() const { return !error_.has_value(); }
  const std::optional<std::string>& error() const { return error_; }

  // Per-core artifacts (valid only when ok()).
  const TimeCurve& curve(CoreId c) const { return unit(c).curve(); }
  const std::vector<ParetoPoint>& pareto(CoreId c) const {
    return unit(c).pareto();
  }
  // Clipped only by w_max; core_id() is kNoCore (artifacts are shared across
  // problems and carry no position — RectsFor() attaches the real ids).
  const RectangleSet& rect(CoreId c) const { return unit(c).rect(); }

  // The shareable per-core unit itself (e.g. to seed another assembly).
  const CompiledCorePtr& core_artifact(CoreId c) const {
    return cores_[static_cast<std::size_t>(c)];
  }

  // Highest width worth wiring to core c (its top Pareto width at w_max);
  // assigning more wires cannot reduce its test time.
  int max_useful_width(CoreId c) const { return unit(c).max_useful_width(); }

  // (s_i + s_o) scan flush/reload cost of core c's wrapper at `width` — the
  // per-preemption penalty. O(1): recorded during compilation.
  Time FlushPenalty(CoreId c, int width) const {
    return unit(c).FlushPenalty(width);
  }

  // Rectangle sets clipped to a concrete SOC TAM width. Cheap: copies the
  // compiled curves and re-clips the Pareto points; no wrapper design runs.
  std::vector<RectangleSet> RectsFor(int tam_width) const;

  // Aggregates of RectsFor(tam_width) without materializing it.
  SocBounds Bounds(int tam_width) const;

 private:
  const CompiledCore& unit(CoreId c) const {
    return *cores_[static_cast<std::size_t>(c)];
  }

  // Shared validation; returns false (with error_ set) when no artifacts
  // may be built.
  bool ValidateInputs();

  const TestProblem* problem_;
  int w_max_ = 0;
  std::uint64_t id_ = 0;
  std::optional<std::string> error_;
  std::vector<CompiledCorePtr> cores_;  // [i] compiled from soc.cores()[i]
};

}  // namespace soctest
