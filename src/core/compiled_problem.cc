#include "core/compiled_problem.h"

#include <algorithm>
#include <atomic>

namespace soctest {

namespace {
std::uint64_t NextCompilationId() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;  // 0 is reserved for "no compilation" in caches
}
}  // namespace

CompiledProblem::CompiledProblem(const TestProblem& problem, int w_max)
    : problem_(&problem), w_max_(w_max), id_(NextCompilationId()) {
  if (w_max_ < 1) {
    error_ = "w_max must be >= 1";
    return;
  }
  if (auto invalid = problem.soc.Validate()) {
    error_ = *invalid;
    return;
  }
  rects_.reserve(static_cast<std::size_t>(problem.soc.num_cores()));
  for (const auto& core : problem.soc.cores()) {
    // Clip only by w_max here: the compiled artifacts must serve every SOC
    // TAM width, so the per-width clipping happens in RectsFor.
    rects_.emplace_back(core, w_max_, w_max_);
  }
}

std::vector<RectangleSet> CompiledProblem::RectsFor(int tam_width) const {
  std::vector<RectangleSet> out;
  out.reserve(rects_.size());
  for (const auto& rect : rects_) {
    out.emplace_back(rect.core_id(), rect.curve(), tam_width);
  }
  return out;
}

SocBounds CompiledProblem::Bounds(int tam_width) const {
  SocBounds out;
  for (const auto& rect : rects_) {
    // Same clipping rule as the rectangle sets the scheduler packs
    // (RectsFor): RectangleSet owns the clipped min-time/min-area math.
    out.bottleneck_time = std::max(out.bottleneck_time,
                                   rect.MinTimeAtMost(tam_width));
    out.total_min_area += rect.MinAreaAtMost(tam_width);
    out.serial_time += rect.curve().TimeAt(1);
  }
  return out;
}

}  // namespace soctest
