#include "core/compiled_problem.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace soctest {

namespace {
std::uint64_t NextCompilationId() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;  // 0 is reserved for "no compilation" in caches
}
}  // namespace

bool CompiledProblem::ValidateInputs() {
  if (w_max_ < 1) {
    error_ = "w_max must be >= 1";
    return false;
  }
  if (auto invalid = problem_->soc.Validate()) {
    error_ = *invalid;
    return false;
  }
  return true;
}

CompiledProblem::CompiledProblem(const TestProblem& problem, int w_max)
    : problem_(&problem), w_max_(w_max), id_(NextCompilationId()) {
  if (!ValidateInputs()) return;
  cores_.reserve(static_cast<std::size_t>(problem.soc.num_cores()));
  for (const auto& core : problem.soc.cores()) {
    // Clip only by w_max here: the compiled artifacts must serve every SOC
    // TAM width, so the per-width clipping happens in RectsFor.
    cores_.push_back(std::make_shared<const CompiledCore>(core, w_max_));
  }
}

CompiledProblem::CompiledProblem(const TestProblem& problem, int w_max,
                                 std::vector<CompiledCorePtr> cores)
    : problem_(&problem), w_max_(w_max), id_(NextCompilationId()) {
  if (!ValidateInputs()) return;
  if (static_cast<int>(cores.size()) != problem.soc.num_cores()) {
    error_ = "assembly core count does not match the SOC";
    return;
  }
  for (const CompiledCorePtr& core : cores) {
    if (core == nullptr || core->w_max() != w_max_) {
      error_ = "assembly core artifact missing or compiled at another w_max";
      return;
    }
  }
  cores_ = std::move(cores);
}

std::vector<RectangleSet> CompiledProblem::RectsFor(int tam_width) const {
  std::vector<RectangleSet> out;
  out.reserve(cores_.size());
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    // The shared artifacts are position-free; the per-problem core id (==
    // index, the Soc::AddCore invariant) is attached here. The unit's Pareto
    // points were extracted at compile time, so clipping is a prefix copy —
    // no Pareto re-extraction per (problem, TAM width).
    out.emplace_back(static_cast<CoreId>(i), cores_[i]->curve(),
                     cores_[i]->pareto(), tam_width);
  }
  return out;
}

SocBounds CompiledProblem::Bounds(int tam_width) const {
  SocBounds out;
  for (const CompiledCorePtr& core : cores_) {
    // Same clipping rule as the rectangle sets the scheduler packs
    // (RectsFor): RectangleSet owns the clipped min-time/min-area math.
    const RectangleSet& rect = core->rect();
    out.bottleneck_time = std::max(out.bottleneck_time,
                                   rect.MinTimeAtMost(tam_width));
    out.total_min_area += rect.MinAreaAtMost(tam_width);
    out.serial_time += rect.curve().TimeAt(1);
  }
  return out;
}

}  // namespace soctest
