#include "core/wire_assign.h"

#include <algorithm>
#include <map>

#include "util/strings.h"

namespace soctest {

int WireGrant::NumFragments() const {
  if (wires.empty()) return 0;
  int fragments = 1;
  for (std::size_t i = 1; i < wires.size(); ++i) {
    if (wires[i] != wires[i - 1] + 1) ++fragments;
  }
  return fragments;
}

int WireAssignment::MaxFragments() const {
  int best = 0;
  for (const auto& g : grants) best = std::max(best, g.NumFragments());
  return best;
}

double WireAssignment::ForkShare() const {
  if (grants.empty()) return 0.0;
  int forked = 0;
  for (const auto& g : grants) {
    if (g.NumFragments() > 1) ++forked;
  }
  return static_cast<double>(forked) / static_cast<double>(grants.size());
}

std::optional<WireAssignment> AssignWires(const Schedule& schedule) {
  struct Event {
    Time at;
    bool release;  // releases sort before acquisitions at the same instant
    CoreId core;
    std::size_t grant_index;
    int width;
  };

  WireAssignment out;
  out.tam_width = schedule.tam_width();

  std::vector<Event> events;
  for (const auto& entry : schedule.entries()) {
    for (const auto& seg : entry.segments) {
      const std::size_t grant_index = out.grants.size();
      out.grants.push_back(WireGrant{entry.core, seg.span, {}});
      events.push_back(Event{seg.span.begin, false, entry.core, grant_index,
                             seg.width});
      events.push_back(Event{seg.span.end, true, entry.core, grant_index, 0});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.release != b.release) return a.release;  // free wires first
    return a.grant_index < b.grant_index;
  });

  std::vector<bool> in_use(static_cast<std::size_t>(schedule.tam_width()), false);
  for (const auto& ev : events) {
    auto& grant = out.grants[ev.grant_index];
    if (ev.release) {
      for (int wire : grant.wires) in_use[static_cast<std::size_t>(wire)] = false;
      continue;
    }
    for (int w = 0; w < schedule.tam_width() &&
                    static_cast<int>(grant.wires.size()) < ev.width;
         ++w) {
      if (!in_use[static_cast<std::size_t>(w)]) {
        in_use[static_cast<std::size_t>(w)] = true;
        grant.wires.push_back(w);
      }
    }
    if (static_cast<int>(grant.wires.size()) < ev.width) {
      return std::nullopt;  // aggregate usage exceeded W somewhere
    }
  }
  return out;
}

std::optional<std::string> CheckWireAssignment(
    const Schedule& schedule, const WireAssignment& assignment) {
  // Grant arity: match each grant back to its segment width.
  std::size_t expected_grants = 0;
  for (const auto& entry : schedule.entries()) expected_grants += entry.segments.size();
  if (assignment.grants.size() != expected_grants) {
    return StrFormat("expected %zu grants, got %zu", expected_grants,
                     assignment.grants.size());
  }

  for (const auto& grant : assignment.grants) {
    std::vector<int> wires = grant.wires;
    std::sort(wires.begin(), wires.end());
    if (std::adjacent_find(wires.begin(), wires.end()) != wires.end()) {
      return StrFormat("core %d grant repeats a wire id", grant.core);
    }
    for (int w : wires) {
      if (w < 0 || w >= assignment.tam_width) {
        return StrFormat("core %d grant uses wire %d outside [0,%d)",
                         grant.core, w, assignment.tam_width);
      }
    }
  }

  // Per-wire exclusivity via sweep.
  std::map<int, std::vector<Interval>> by_wire;
  for (const auto& grant : assignment.grants) {
    for (int w : grant.wires) by_wire[w].push_back(grant.span);
  }
  for (auto& [wire, spans] : by_wire) {
    std::sort(spans.begin(), spans.end(),
              [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i].begin < spans[i - 1].end) {
        return StrFormat("wire %d double-booked around time %lld", wire,
                         static_cast<long long>(spans[i].begin));
      }
    }
  }
  return std::nullopt;
}

}  // namespace soctest
