// Schedule validation: checks every invariant the paper's problem statements
// impose. Used by tests (property suites) and by examples to certify output.
#pragma once

#include <string>
#include <vector>

#include "core/problem.h"
#include "core/schedule.h"

namespace soctest {

struct ValidationOptions {
  // When true, each core's active time must equal its wrapper test time at
  // the assigned width plus (s_i + s_o) per preemption.
  bool check_exact_durations = true;

  // Per-core preemption limits (CoreSpec::max_preemptions) are enforced.
  // Disable for schedules produced with preemption turned off but limits set.
  bool check_preemption_limits = true;

  // Reference width used when recomputing wrapper test times.
  int w_max = 64;
};

// A single violated invariant, human-readable.
struct Violation {
  std::string message;
};

// Returns all violations found (empty = valid schedule).
//
// Checked invariants:
//   1. every core appears exactly once and is fully scheduled;
//   2. per-core segments are disjoint, ordered, positive-length, and carry
//      the core's assigned width;
//   3. the aggregate TAM width in use never exceeds the bin height W;
//   4. per-core active time matches T(width) + preemptions * (s_i + s_o);
//   5. segment count <= preemptions + 1 and preemptions <= max_preemptions;
//   6. precedence: successor starts after predecessor's last segment ends;
//   7. concurrency: constrained pairs never overlap;
//   8. power: aggregate active power never exceeds Pmax.
std::vector<Violation> ValidateSchedule(const TestProblem& problem,
                                        const Schedule& schedule,
                                        const ValidationOptions& options = {});

// Convenience predicate.
bool IsValidSchedule(const TestProblem& problem, const Schedule& schedule,
                     const ValidationOptions& options = {});

// Formats violations for diagnostics.
std::string FormatViolations(const std::vector<Violation>& violations);

}  // namespace soctest
