// Schedule validation: checks every invariant the paper's problem statements
// impose. Used by tests (property suites) and by examples to certify output.
#pragma once

#include <string>
#include <vector>

#include "core/problem.h"
#include "core/schedule.h"

namespace soctest {

struct ValidationOptions {
  // When true, each core's active time must equal its wrapper test time at
  // the assigned width plus (s_i + s_o) per preemption.
  bool check_exact_durations = true;

  // Per-core preemption limits (CoreSpec::max_preemptions) are enforced.
  // Disable for schedules produced with preemption turned off but limits set.
  bool check_preemption_limits = true;

  // Priority-feasibility diagnostics (off by default — heuristic, not an
  // invariant of every valid schedule): flags an instant where a strictly
  // higher-priority core sat unstarted while a lower-class core was admitted,
  // even though the higher-priority core was clearly admissible — enough free
  // TAM width for its maximum useful width, power fits the minimum budget
  // through the makespan, no concurrency conflict with anything active, and
  // all predecessors complete. Used by the mixed-priority scenario tests.
  bool check_priority_order = false;

  // Reference width used when recomputing wrapper test times.
  int w_max = 64;
};

// A single violated invariant, human-readable.
struct Violation {
  std::string message;
};

// Returns all violations found (empty = valid schedule).
//
// Checked invariants:
//   1. every core appears exactly once and is fully scheduled;
//   2. per-core segments are disjoint, ordered, positive-length, and carry
//      the core's assigned width;
//   3. the aggregate TAM width in use never exceeds the bin height W;
//   4. per-core active time matches T(width) + preemptions * (s_i + s_o);
//   5. segment count <= preemptions + 1 and preemptions <= max_preemptions;
//   6. precedence: successor starts after predecessor's last segment ends;
//   7. concurrency: constrained pairs never overlap;
//   8. power: aggregate active power never exceeds the budget in force at
//      each instant — Pmax for a constant budget, BudgetAt(t) when the
//      problem carries a time-varying PowerBudget timeline.
std::vector<Violation> ValidateSchedule(const TestProblem& problem,
                                        const Schedule& schedule,
                                        const ValidationOptions& options = {});

// Convenience predicate.
bool IsValidSchedule(const TestProblem& problem, const Schedule& schedule,
                     const ValidationOptions& options = {});

// Formats violations for diagnostics.
std::string FormatViolations(const std::vector<Violation>& violations);

}  // namespace soctest
