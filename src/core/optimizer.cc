#include "core/optimizer.h"

#include <algorithm>
#include <cassert>

#include "search/driver.h"
#include "util/strings.h"

namespace soctest {

TestProblem TestProblem::FromSoc(Soc soc) {
  TestProblem p;
  p.soc = std::move(soc);
  p.precedence = PrecedenceGraph(p.soc.num_cores());
  p.concurrency = ConcurrencySet::FromSoc(p.soc);
  return p;
}

TestProblem TestProblem::FromParsed(const ParsedSoc& parsed) {
  TestProblem p;
  p.soc = parsed.soc;
  p.precedence = PrecedenceGraph(p.soc.num_cores());
  for (const auto& [a, b] : parsed.precedence) p.precedence.Add(a, b);
  p.concurrency = ConcurrencySet::FromSoc(p.soc, parsed.concurrency);
  if (parsed.power_max > 0) {
    std::vector<std::int64_t> power;
    power.reserve(static_cast<std::size_t>(p.soc.num_cores()));
    for (const auto& core : p.soc.cores()) {
      power.push_back(core.power > 0 ? core.power : core.BitsPerPattern());
    }
    p.power = PowerModel(std::move(power), parsed.power_max);
  }
  return p;
}

TamScheduleOptimizer::TamScheduleOptimizer(const CompiledProblem& compiled,
                                           OptimizerParams params)
    : compiled_(&compiled),
      problem_(&compiled.problem()),
      params_(std::move(params)),
      conflict_(&problem_->precedence, &problem_->concurrency,
                &problem_->power) {}

TamScheduleOptimizer::TamScheduleOptimizer(const TestProblem& problem,
                                           OptimizerParams params)
    : owned_(std::make_unique<CompiledProblem>(problem, params.w_max)),
      compiled_(owned_.get()),
      problem_(&problem),
      params_(std::move(params)),
      conflict_(&problem.precedence, &problem.concurrency, &problem.power) {}

bool TamScheduleOptimizer::IsBlocked(CoreId core) const {
  // The active set, its power sum, and the used width are tracked
  // incrementally (Admit/AdvanceTime), so a conflict check is O(active) with
  // no allocation — it used to rescan every core and build a fresh vector.
  return conflict_
      .Blocked(core, ws_->completed, ws_->active, active_power_)
      .has_value();
}

Time TamScheduleOptimizer::PreemptionPenalty(CoreId core, int width) const {
  // O(1): the flush length (s_i + s_o) was recorded per width while the
  // curve was compiled, so resuming a test no longer re-runs wrapper design.
  return compiled_->FlushPenalty(core, std::max(1, width));
}

void TamScheduleOptimizer::Admit(CoreId core, int width) {
  auto& s = ws_->state[static_cast<std::size_t>(core)];
  assert(!s.running && !s.complete);
  const auto& rect = ws_->rects[static_cast<std::size_t>(core)];
  if (!s.begun) {
    s.assigned_width = rect.SnapWidth(width);
    s.time_remaining = rect.TimeAtWidth(s.assigned_width);
    s.begun = true;
    s.first_begin = now_;
    s.end_time = now_;
  } else if (s.end_time < now_) {
    // Resuming after a gap: one preemption event and a scan flush/reload.
    ++s.preemptions;
    const Time penalty = PreemptionPenalty(core, s.assigned_width);
    s.time_remaining += penalty;
    s.overhead += penalty;
  }
  s.running = true;
  ws_->active.push_back(core);
  used_width_ += s.assigned_width;
  active_power_ += problem_->power.PowerOf(core);
}

bool TamScheduleOptimizer::AdmitLimitReached() {
  // Paper Priority 1: paused cores that may not be preempted (again) resume
  // before anything else claims wires; largest remaining time first.
  bool any = false;
  while (true) {
    CoreId best = kNoCore;
    Time best_rem = -1;
    const int avail = AvailableWidth();
    for (CoreId c = 0; c < problem_->soc.num_cores(); ++c) {
      const auto& s = ws_->state[static_cast<std::size_t>(c)];
      if (!s.begun || s.running || s.complete) continue;
      if (s.preemptions < s.max_preemptions) continue;  // still preemptible
      if (s.assigned_width > avail) continue;
      if (IsBlocked(c)) continue;
      if (s.time_remaining > best_rem) {
        best = c;
        best_rem = s.time_remaining;
      }
    }
    if (best == kNoCore) break;
    Admit(best, ws_->state[static_cast<std::size_t>(best)].assigned_width);
    any = true;
  }
  return any;
}

bool TamScheduleOptimizer::AdmitRanked() {
  // Paper Priorities 2 and 3: paused cores (at their assigned width) and
  // unstarted cores (at their preferred width), admitted greedily by
  // decreasing remaining test time. In non-preemptive mode paused cores rank
  // strictly ahead of unstarted ones, which makes pausing impossible in
  // practice (they are all re-admitted instantly after every Update).
  using Candidate = ScheduleWorkspace::Candidate;
  std::vector<Candidate>& candidates = ws_->candidates;  // reused scratch
  candidates.clear();
  for (CoreId c = 0; c < problem_->soc.num_cores(); ++c) {
    const auto& s = ws_->state[static_cast<std::size_t>(c)];
    if (s.running || s.complete) continue;
    if (s.begun) {
      candidates.push_back({c, s.time_remaining, true, s.assigned_width});
    } else {
      candidates.push_back(
          {c, ws_->rects[static_cast<std::size_t>(c)].TimeAtWidth(s.preferred_width),
           false, s.preferred_width});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [this](const Candidate& a, const Candidate& b) {
              if (!params_.allow_preemption && a.begun != b.begun) {
                return a.begun;  // paused cores first (paper P2 before P3)
              }
              switch (params_.rank) {
                case AdmissionRank::kWidth:
                  if (a.width != b.width) return a.width > b.width;
                  break;
                case AdmissionRank::kArea: {
                  const auto aa = static_cast<std::int64_t>(a.width) * a.remaining;
                  const auto ab = static_cast<std::int64_t>(b.width) * b.remaining;
                  if (aa != ab) return aa > ab;
                  break;
                }
                case AdmissionRank::kTime:
                  break;
              }
              if (a.remaining != b.remaining) return a.remaining > b.remaining;
              if (a.begun != b.begun) return a.begun;  // stable tie-break
              return a.core < b.core;
            });

  bool any = false;
  for (const auto& cand : candidates) {
    const auto& s = ws_->state[static_cast<std::size_t>(cand.core)];
    if (s.running) continue;  // defensive; set is rebuilt per round
    const int avail = AvailableWidth();
    int width = cand.width;
    if (width > avail) {
      // Inline shrink-to-fit (part of the insert-fill family): an unstarted
      // core may start narrower than preferred when the slower test still
      // finishes within the running critical path.
      if (!params_.enable_insert_fill || cand.begun || avail <= 0) continue;
      Time critical = 0;
      for (const CoreId a : ws_->active) {
        critical = std::max(critical,
                            ws_->state[static_cast<std::size_t>(a)].time_remaining);
      }
      const auto& rect = ws_->rects[static_cast<std::size_t>(cand.core)];
      const int shrunk = rect.SnapWidth(avail);
      if (shrunk > avail || rect.TimeAtWidth(shrunk) > critical) continue;
      width = shrunk;
    }
    if (IsBlocked(cand.core)) continue;
    Admit(cand.core, width);
    any = true;
  }
  return any;
}

bool TamScheduleOptimizer::AdmitIdleFill() {
  // Paper lines 13-14: rather than leaving the remaining wires idle, admit an
  // unstarted core whose preferred width is within `idle_fill_slack` wires of
  // what is available, at the largest Pareto width that actually fits.
  if (!params_.enable_idle_fill) return false;
  bool any = false;
  while (true) {
    const int avail = AvailableWidth();
    if (avail <= 0) break;
    CoreId best = kNoCore;
    int best_pref = 0;
    for (CoreId c = 0; c < problem_->soc.num_cores(); ++c) {
      const auto& s = ws_->state[static_cast<std::size_t>(c)];
      if (s.begun || s.running || s.complete) continue;
      if (s.preferred_width > avail + params_.idle_fill_slack) continue;
      if (s.preferred_width <= avail) continue;  // ranked admission's job
      if (IsBlocked(c)) continue;
      // Paper: pick the core with the smallest preferred width (closest fit).
      if (best == kNoCore || s.preferred_width < best_pref) {
        best = c;
        best_pref = s.preferred_width;
      }
    }
    if (best == kNoCore) break;
    const int width = ws_->rects[static_cast<std::size_t>(best)].SnapWidth(avail);
    if (width <= 0 || width > avail) break;
    Admit(best, width);
    any = true;
  }
  return any;
}

bool TamScheduleOptimizer::AdmitInsertFill() {
  // Extra insertion heuristic (see OptimizerParams::enable_insert_fill):
  // shrink an unstarted core onto the free wires when doing so cannot extend
  // the running critical path.
  if (!params_.enable_insert_fill) return false;
  bool any = false;
  while (true) {
    const int avail = AvailableWidth();
    if (avail <= 0) break;
    Time critical = 0;  // longest remaining active test
    for (const CoreId a : ws_->active) {
      critical = std::max(critical,
                          ws_->state[static_cast<std::size_t>(a)].time_remaining);
    }
    if (critical == 0) break;  // nothing active: not an insertion situation
    CoreId best = kNoCore;
    Time best_time = -1;
    int best_width = 0;
    for (CoreId c = 0; c < problem_->soc.num_cores(); ++c) {
      const auto& s = ws_->state[static_cast<std::size_t>(c)];
      if (s.begun || s.running || s.complete) continue;
      const auto& rect = ws_->rects[static_cast<std::size_t>(c)];
      const int width = rect.SnapWidth(avail);
      if (width > avail) continue;
      const Time t = rect.TimeAtWidth(width);
      if (t > critical) continue;  // would stretch the critical path
      if (IsBlocked(c)) continue;
      // Prefer the insertion that converts the most idle area into work.
      if (t > best_time) {
        best = c;
        best_time = t;
        best_width = width;
      }
    }
    if (best == kNoCore) break;
    Admit(best, best_width);
    any = true;
  }
  return any;
}

bool TamScheduleOptimizer::BoostJustStarted() {
  // Paper lines 15-16: grant leftover wires to the just-started core that
  // benefits the most, snapping to its Pareto grid.
  if (!params_.enable_width_boost) return false;
  bool any = false;
  while (true) {
    const int avail = AvailableWidth();
    if (avail <= 0) break;
    CoreId best = kNoCore;
    Time best_gain = 0;
    int best_new_width = 0;
    for (CoreId c = 0; c < problem_->soc.num_cores(); ++c) {
      const auto& s = ws_->state[static_cast<std::size_t>(c)];
      if (!s.running || s.first_begin != now_) continue;
      const auto& rect = ws_->rects[static_cast<std::size_t>(c)];
      const int new_width = rect.SnapWidth(s.assigned_width + avail);
      if (new_width <= s.assigned_width) continue;
      const Time gain =
          rect.TimeAtWidth(s.assigned_width) - rect.TimeAtWidth(new_width);
      if (gain > best_gain) {
        best = c;
        best_gain = gain;
        best_new_width = new_width;
      }
    }
    if (best == kNoCore) break;
    auto& s = ws_->state[static_cast<std::size_t>(best)];
    // The core started at `now_` and has made no progress yet, so replacing
    // its rectangle is free: adopt the wider width and its (shorter) time.
    used_width_ += best_new_width - s.assigned_width;
    s.assigned_width = best_new_width;
    s.time_remaining =
        ws_->rects[static_cast<std::size_t>(best)].TimeAtWidth(best_new_width) +
        s.overhead;
    any = true;
  }
  return any;
}

void TamScheduleOptimizer::AdvanceTime() {
  // Paper's Update (Fig. 8): run every active test to the earliest
  // completion, close the elapsed segments, retire completed tests, and pause
  // the rest for re-contention.
  Time min_rem = -1;
  for (const CoreId a : ws_->active) {
    const auto& s = ws_->state[static_cast<std::size_t>(a)];
    if (min_rem < 0 || s.time_remaining < min_rem) min_rem = s.time_remaining;
  }
  assert(min_rem > 0 && "AdvanceTime requires at least one running core");
  const Time new_time = now_ + min_rem;
  for (const CoreId c : ws_->active) {
    auto& s = ws_->state[static_cast<std::size_t>(c)];
    // Extend the last segment if contiguous at the same width.
    if (!s.segments.empty() && s.segments.back().span.end == now_ &&
        s.segments.back().width == s.assigned_width) {
      s.segments.back().span.end = new_time;
    } else {
      s.segments.push_back(
          ScheduleSegment{Interval{now_, new_time}, s.assigned_width});
    }
    s.time_remaining -= min_rem;
    s.running = false;
    s.end_time = new_time;
    if (s.time_remaining <= 0) {
      s.complete = true;
      ws_->completed[static_cast<std::size_t>(c)] = true;
      --incomplete_;
    }
  }
  // Every running test paused or retired: the active set drains in one step.
  ws_->active.clear();
  used_width_ = 0;
  active_power_ = 0;
  now_ = new_time;
  ++rounds_;
}

OptimizerResult TamScheduleOptimizer::Run() {
  if (!default_ws_) default_ws_ = std::make_unique<ScheduleWorkspace>();
  return Run(*default_ws_);
}

OptimizerResult TamScheduleOptimizer::Run(ScheduleWorkspace& ws) {
  ws_ = &ws;
  OptimizerResult result;

  // ---- Input validation -------------------------------------------------
  if (params_.tam_width < 1) {
    result.error = "tam_width must be >= 1";
    return result;
  }
  if (params_.w_max < 1) {
    result.error = "w_max must be >= 1";
    return result;
  }
  if (!compiled_->ok()) {
    result.error = *compiled_->error();
    return result;
  }
  if (params_.w_max != compiled_->w_max()) {
    result.error = StrFormat(
        "params.w_max (%d) does not match the CompiledProblem's w_max (%d)",
        params_.w_max, compiled_->w_max());
    return result;
  }
  if (auto problem = problem_->soc.Validate()) {
    result.error = *problem;
    return result;
  }
  if (problem_->precedence.HasCycle()) {
    result.error = "precedence constraints form a cycle";
    return result;
  }
  if (!problem_->power.unlimited()) {
    for (const auto& core : problem_->soc.cores()) {
      if (problem_->power.PowerOf(core.id) > problem_->power.pmax()) {
        result.error = StrFormat(
            "core '%s' has power %lld > Pmax %lld and can never be scheduled",
            core.name.c_str(),
            static_cast<long long>(problem_->power.PowerOf(core.id)),
            static_cast<long long>(problem_->power.pmax()));
        return result;
      }
    }
  }

  // ---- Initialize (paper Fig. 5) ----------------------------------------
  // The wrapper artifacts were compiled once (CompiledProblem); clipping them
  // to this run's TAM width is cheap and runs no wrapper design. The clipped
  // sets are immutable during a run, so a reused workspace keeps them across
  // runs while (compiled, tam_width) is unchanged — restart grids and
  // improver moves share one TAM width, making every run after the first
  // clip-free.
  if (ws_->rects_source_id != compiled_->id() ||
      ws_->rects_tam_width != params_.tam_width) {
    ws_->rects = compiled_->RectsFor(params_.tam_width);
    ws_->rects_source_id = compiled_->id();
    ws_->rects_tam_width = params_.tam_width;
  }
  const std::vector<RectangleSet>& rects = ws_->rects;
  std::vector<int>& preferred = ws_->preferred;
  preferred.clear();
  if (!params_.preferred_width_override.empty()) {
    if (params_.preferred_width_override.size() !=
        static_cast<std::size_t>(problem_->soc.num_cores())) {
      result.error = "preferred_width_override must have one entry per core";
      return result;
    }
    for (CoreId c = 0; c < problem_->soc.num_cores(); ++c) {
      const int w = params_.preferred_width_override[static_cast<std::size_t>(c)];
      preferred.push_back(rects[static_cast<std::size_t>(c)].SnapWidth(
          std::clamp(w, 1, params_.tam_width)));
    }
  } else if (params_.deadline_sizing) {
    // Size all cores against a common deadline M: each core gets the
    // smallest Pareto width meeting M, and M is binary-searched down to the
    // tightest value whose total width demand still fits in W. The large
    // tests then start together and finish together near the area bound
    // instead of serializing behind each other. Width demand is
    // non-increasing in M, so the bisection is exact.
    const SocBounds bounds = compiled_->Bounds(params_.tam_width);
    // Deadline window: the SOC lower bound (bottleneck/area terms, owned by
    // the compiled problem) up to the serial width-1 time.
    Time lo = bounds.LowerBound(params_.tam_width);
    Time hi = bounds.serial_time;

    auto width_for_deadline = [this](const RectangleSet& rect, Time deadline) {
      int pref = rect.MaxWidth();  // fastest width if the deadline is unmet
      for (const auto& p : rect.pareto()) {
        if (p.time <= deadline) {
          pref = p.width;
          break;
        }
      }
      return rect.SnapWidth(std::min(pref, params_.tam_width));
    };
    auto demand = [&](Time deadline) {
      int total = 0;
      for (const auto& rect : rects) total += width_for_deadline(rect, deadline);
      return total;
    };

    Time deadline = hi;
    if (demand(lo) <= params_.tam_width) {
      deadline = lo;
    } else {
      // Invariant: demand(lo) > W, demand(hi) <= W (width-1 everywhere) or
      // the SOC simply has more cores than wires — bisect anyway and take hi.
      while (lo + 1 < hi) {
        const Time mid = lo + (hi - lo) / 2;
        if (demand(mid) <= params_.tam_width) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      deadline = hi;
    }
    // S% relaxes the deadline slightly, adding sweep diversity.
    deadline = static_cast<Time>(static_cast<double>(deadline) *
                                 (1.0 + params_.s_percent / 100.0));
    for (const auto& rect : rects) {
      preferred.push_back(width_for_deadline(rect, deadline));
    }
  } else {
    PreferredWidthParams pw{params_.s_percent, params_.delta};
    for (const auto& rect : rects) {
      const int pref = PreferredWidth(rect.curve(), pw);
      preferred.push_back(rect.SnapWidth(std::min(pref, params_.tam_width)));
    }
  }

  const auto n = static_cast<std::size_t>(problem_->soc.num_cores());
  ws_->state.resize(n);
  ws_->completed.assign(n, false);
  ws_->active.clear();
  for (std::size_t i = 0; i < n; ++i) {
    auto& s = ws_->state[i];
    s.Reset();
    s.preferred_width = preferred[i];
    if (params_.allow_preemption) {
      s.max_preemptions = problem_->soc.cores()[i].max_preemptions;
      if (params_.preemption_budget_override >= 0) {
        s.max_preemptions =
            std::min(s.max_preemptions, params_.preemption_budget_override);
      }
    }
  }
  now_ = 0;
  rounds_ = 0;
  incomplete_ = problem_->soc.num_cores();
  used_width_ = 0;
  active_power_ = 0;

  // ---- Main loop (paper Fig. 4) ------------------------------------------
  while (incomplete_ > 0) {
    bool progress = false;
    progress |= AdmitLimitReached();
    progress |= AdmitRanked();
    progress |= AdmitIdleFill();
    progress |= AdmitInsertFill();
    BoostJustStarted();

    if (ws_->active.empty()) {
      if (!progress) {
        // Structurally unreachable for valid inputs (see DESIGN.md): with an
        // empty active set, power and concurrency cannot block, and an
        // acyclic precedence graph always has a ready core.
        result.error = "scheduler deadlock: no core admissible";
        return result;
      }
      continue;
    }
    AdvanceTime();
  }

  // ---- Emit schedule -----------------------------------------------------
  result.schedule = Schedule(problem_->soc.name(), params_.tam_width);
  for (CoreId c = 0; c < problem_->soc.num_cores(); ++c) {
    auto& s = ws_->state[static_cast<std::size_t>(c)];
    CoreSchedule entry;
    entry.core = c;
    entry.assigned_width = s.assigned_width;
    entry.segments = std::move(s.segments);
    entry.preemptions = s.preemptions;
    entry.overhead_cycles = s.overhead;
    result.schedule.Add(std::move(entry));

    CoreAssignment assignment;
    assignment.core = c;
    assignment.preferred_width = s.preferred_width;
    assignment.assigned_width = s.assigned_width;
    assignment.test_time =
        rects[static_cast<std::size_t>(c)].TimeAtWidth(s.assigned_width);
    assignment.scheduled_time = assignment.test_time + s.overhead;
    assignment.preemptions = s.preemptions;
    result.assignments.push_back(assignment);
  }
  result.makespan = result.schedule.Makespan();
  result.admission_rounds = rounds_;
  return result;
}

OptimizerResult Optimize(const TestProblem& problem,
                         const OptimizerParams& params) {
  return TamScheduleOptimizer(problem, params).Run();
}

OptimizerResult Optimize(const CompiledProblem& compiled,
                         const OptimizerParams& params) {
  return TamScheduleOptimizer(compiled, params).Run();
}

OptimizerResult Optimize(const CompiledProblem& compiled,
                         const OptimizerParams& params, ScheduleWorkspace& ws) {
  return TamScheduleOptimizer(compiled, params).Run(ws);
}

OptimizerResult OptimizeBestOverParams(const TestProblem& problem,
                                       OptimizerParams params, int threads) {
  const CompiledProblem compiled(problem, params.w_max);
  return OptimizeBestOverParams(compiled, std::move(params), threads);
}

OptimizerResult OptimizeBestOverParams(const CompiledProblem& compiled,
                                       OptimizerParams params, int threads) {
  SearchOptions options;
  options.threads = threads;
  return RunRestartSearch(compiled, params, options).best;
}

}  // namespace soctest
