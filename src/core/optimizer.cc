#include "core/optimizer.h"

#include <algorithm>
#include <cassert>

#include "search/driver.h"
#include "util/strings.h"

// Hot-path notes (PR 7). The admission loop runs thousands of times per
// served request, so its inner helpers are structured around three ideas,
// none of which may change results (the reference implementation in
// tests/reference_optimizer.cc is the bit-identity oracle):
//
//   * Struct-of-arrays state. Scans read dense arrays (time_remaining[],
//     assigned_width[]) and word-sized status bitsets instead of striding
//     over CoreState structs.
//   * Width-bucketed admission index. Paused cores sit in buckets keyed by
//     their fixed resume width; unstarted cores in buckets keyed by
//     preferred width. A selection over "cores that fit `avail` wires" scans
//     only the buckets whose width fits and prunes the rest unseen. Pruning
//     is sound because a bucket's width is the *minimum* TAM allocation its
//     members accept in that role: a paused core must resume at exactly
//     assigned_width, and the idle-fill window is defined directly on
//     preferred width.
//   * Selection instead of sorting. AdmitRanked admits candidates in a
//     total order; a heap pops them in exactly full-sort order but stops at
//     the first point where no further admission is possible (avail == 0),
//     and single-winner selections (limit-reached, idle fill, insert fill)
//     walk candidates best-first and call the O(active) conflict check only
//     until the first unblocked winner. Deferred conflict checks are sound
//     because within one admission phase blockedness is monotone — admitting
//     a core can only add conflicts, and nothing completes — so a candidate
//     observed blocked stays blocked for the rest of the phase, and the
//     first unblocked candidate in best-first order is exactly the max the
//     historical scan-everything loop picked.
namespace soctest {

TestProblem TestProblem::FromSoc(Soc soc) {
  TestProblem p;
  p.soc = std::move(soc);
  p.precedence = PrecedenceGraph(p.soc.num_cores());
  p.concurrency = ConcurrencySet::FromSoc(p.soc);
  return p;
}

TestProblem TestProblem::FromParsed(const ParsedSoc& parsed) {
  TestProblem p;
  p.soc = parsed.soc;
  p.precedence = PrecedenceGraph(p.soc.num_cores());
  for (const auto& [a, b] : parsed.precedence) p.precedence.Add(a, b);
  p.concurrency = ConcurrencySet::FromSoc(p.soc, parsed.concurrency);
  if (parsed.power_max > 0 || !parsed.budget.empty()) {
    std::vector<std::int64_t> power;
    power.reserve(static_cast<std::size_t>(p.soc.num_cores()));
    for (const auto& core : p.soc.cores()) {
      power.push_back(core.power > 0 ? core.power : core.BitsPerPattern());
    }
    // The parser pre-validates powerbudget segments, so FromSegments cannot
    // fail here; powermax is the single-segment spelling of the same model.
    PowerBudget budget =
        parsed.budget.empty()
            ? PowerBudget::Constant(parsed.power_max)
            : PowerBudget::FromSegments(parsed.budget).value_or(PowerBudget());
    p.power = PowerModel(std::move(power), std::move(budget));
  }
  return p;
}

namespace {

// Removes one occurrence of `core`, preserving the bucket's order (the
// unstarted buckets are kept in ascending core-id order for tie-breaks).
void OrderedBucketErase(std::vector<CoreId>& bucket, CoreId core) {
  const auto it = std::find(bucket.begin(), bucket.end(), core);
  assert(it != bucket.end());
  bucket.erase(it);
}

// Removes one occurrence of `core`; order not preserved (the paused buckets
// are consumed through order-independent best-first selection).
void UnorderedBucketErase(std::vector<CoreId>& bucket, CoreId core) {
  const auto it = std::find(bucket.begin(), bucket.end(), core);
  assert(it != bucket.end());
  *it = bucket.back();
  bucket.pop_back();
}

// Builds the model an optimizer's power_budget_override swaps in: the
// problem's per-core powers (derived from the specs when the problem has no
// model of its own) under the override timeline. A malformed override is
// reported through *error and the problem's own model is left in force —
// Run() surfaces the error before scheduling anything.
static PowerModel MakeOverridePower(
    const TestProblem& problem,
    const std::vector<PowerBudget::Segment>& segments,
    std::optional<std::string>* error) {
  if (segments.empty()) return PowerModel();
  std::string message;
  auto budget = PowerBudget::FromSegments(segments, &message);
  if (!budget) {
    *error = "power_budget_override: " + message;
    return PowerModel();
  }
  return WithBudget(problem.soc, problem.power, std::move(*budget));
}

}  // namespace

TamScheduleOptimizer::TamScheduleOptimizer(const CompiledProblem& compiled,
                                           OptimizerParams params)
    : compiled_(&compiled),
      problem_(&compiled.problem()),
      params_(std::move(params)),
      override_power_(MakeOverridePower(*problem_,
                                        params_.power_budget_override,
                                        &override_error_)),
      effective_power_(params_.power_budget_override.empty() || override_error_
                           ? &problem_->power
                           : &override_power_),
      conflict_(&problem_->precedence, &problem_->concurrency,
                effective_power_) {}

TamScheduleOptimizer::TamScheduleOptimizer(const TestProblem& problem,
                                           OptimizerParams params)
    : owned_(std::make_unique<CompiledProblem>(problem, params.w_max)),
      compiled_(owned_.get()),
      problem_(&problem),
      params_(std::move(params)),
      override_power_(MakeOverridePower(problem,
                                        params_.power_budget_override,
                                        &override_error_)),
      effective_power_(params_.power_budget_override.empty() || override_error_
                           ? &problem.power
                           : &override_power_),
      conflict_(&problem.precedence, &problem.concurrency, effective_power_) {}

bool TamScheduleOptimizer::IsBlocked(CoreId core, int width) const {
  // The active set, its power sum, and the used width are tracked
  // incrementally (Admit/AdvanceTime), so a conflict check is O(active) with
  // no allocation — it used to rescan every core and build a fresh vector.
  // Under a time-varying budget the power test additionally covers the
  // admission's committed window (see HoldFor); with a static budget the
  // (now, hold) pair is (now_, 0) and the check is the historical one.
  return conflict_
      .Blocked(core, ws_->complete, ws_->active, active_power_, now_,
               timeline_ ? HoldFor(core, width) : 0)
      .has_value();
}

Time TamScheduleOptimizer::HoldFor(CoreId core, int width) const {
  const auto u = static_cast<std::size_t>(core);
  const bool gap = ws_->begun.test(u) && ws_->end_time[u] < now_;
  // A gap resume consumes one preemption credit at Admit time, so what
  // matters is whether the core could still be preempted AFTER this
  // admission. If yes, the admission only commits power until the next
  // event: an instantaneous check (hold 0) suffices, because any budget
  // drop pauses the core like any other event.
  const int preemptions_after = ws_->preemptions[u] + (gap ? 1 : 0);
  if (params_.allow_preemption &&
      preemptions_after < ws_->max_preemptions[u]) {
    return 0;
  }
  // Uninterruptible: the admission commits a contiguous run to completion.
  if (!ws_->begun.test(u)) return TimeLut(core, SnapLut(core, width));
  Time remaining = ws_->time_remaining[u];
  if (gap) remaining += PreemptionPenalty(core, ws_->assigned_width[u]);
  return remaining;
}

Time TamScheduleOptimizer::PreemptionPenalty(CoreId core, int width) const {
  // O(1): the flush length (s_i + s_o) was recorded per width while the
  // curve was compiled, so resuming a test no longer re-runs wrapper design.
  return compiled_->FlushPenalty(core, std::max(1, width));
}

int TamScheduleOptimizer::SnapLut(CoreId c, int w) const {
  w = std::clamp(w, 0, ws_->rects_tam_width);
  return ws_->snap_lut[static_cast<std::size_t>(c) *
                           static_cast<std::size_t>(ws_->lut_stride) +
                       static_cast<std::size_t>(w)];
}

Time TamScheduleOptimizer::TimeLut(CoreId c, int w) const {
  w = std::clamp(w, 0, ws_->rects_tam_width);
  return ws_->time_lut[static_cast<std::size_t>(c) *
                           static_cast<std::size_t>(ws_->lut_stride) +
                       static_cast<std::size_t>(w)];
}

void TamScheduleOptimizer::Admit(CoreId core, int width) {
  const auto u = static_cast<std::size_t>(core);
  assert(!ws_->running.test(u) && !ws_->complete.test(u));
  if (!ws_->begun.test(u)) {
    const int w = SnapLut(core, width);
    ws_->assigned_width[u] = w;
    ws_->time_remaining[u] = TimeLut(core, w);
    ws_->begun.set(u);
    ws_->unstarted.reset(u);
    OrderedBucketErase(
        ws_->unstarted_by_pref[static_cast<std::size_t>(ws_->preferred[u])],
        core);
    ws_->first_begin[u] = now_;
    ws_->end_time[u] = now_;
    ws_->started_now.push_back(core);
    if (params_.makespan_bound > 0) {
      // Certificate bookkeeping: the core moves from the unstarted area
      // floor to the exact remaining area of its chosen rectangle.
      remaining_min_area_ -= ws_->min_area[u];
      begun_remaining_area_ += static_cast<Time>(w) * ws_->time_remaining[u];
    }
  } else {
    UnorderedBucketErase(
        ws_->paused_by_width[static_cast<std::size_t>(ws_->assigned_width[u])],
        core);
    --ws_->paused_count;
    if (ws_->end_time[u] < now_) {
      // Resuming after a gap: one preemption event and a scan flush/reload.
      ++ws_->preemptions[u];
      const Time penalty = PreemptionPenalty(core, ws_->assigned_width[u]);
      ws_->time_remaining[u] += penalty;
      ws_->overhead[u] += penalty;
      if (params_.makespan_bound > 0) {
        begun_remaining_area_ +=
            static_cast<Time>(ws_->assigned_width[u]) * penalty;
      }
    }
  }
  ws_->running.set(u);
  ws_->active.push_back(core);
  used_width_ += ws_->assigned_width[u];
  active_power_ += effective_power_->PowerOf(core);
  active_critical_ = std::max(active_critical_, ws_->time_remaining[u]);
}

bool TamScheduleOptimizer::AdmitLimitReached() {
  // Paper Priority 1: paused cores that may not be preempted (again) resume
  // before anything else claims wires; largest remaining time first.
  if (ws_->paused_count == 0) return false;
  const int avail0 = AvailableWidth();
  if (avail0 <= 0) return false;

  // Gather the eligible set from the width buckets: only buckets whose
  // resume width fits the free wires are scanned; wider ones are pruned
  // unseen. Eligibility cannot grow during this phase (no core pauses, and
  // budgets only tighten), so one gather suffices.
  std::vector<ScheduleWorkspace::Candidate>& eligible = ws_->eligible;
  eligible.clear();
  const int fit = std::min(avail0, params_.tam_width);
  for (int w = 1; w <= fit; ++w) {
    for (const CoreId c : ws_->paused_by_width[static_cast<std::size_t>(w)]) {
      ++candidates_examined_;
      const auto u = static_cast<std::size_t>(c);
      if (ws_->preemptions[u] < ws_->max_preemptions[u]) continue;  // preemptible
      eligible.push_back({c, ws_->time_remaining[u], true, w, ws_->prio[u]});
    }
  }
  for (int w = fit + 1; w <= params_.tam_width; ++w) {
    if (!ws_->paused_by_width[static_cast<std::size_t>(w)].empty()) {
      ++buckets_skipped_;
    }
  }
  if (eligible.empty()) return false;

  // Best-first walk (priority class first — hot-lot resumes before
  // best-effort when wires or budget are tight — then largest remaining
  // time, then smallest core id, the historical ascending-id scan's
  // tie-break; with uniform priorities the leading key never discriminates
  // and the order is exactly the historical one). Every skip is permanent:
  // avail only shrinks, so a non-fitting candidate never fits later, and
  // blockedness is monotone within the phase, so a blocked candidate stays
  // blocked. One pass therefore reproduces the pick-max-admit-repeat loop.
  std::sort(eligible.begin(), eligible.end(),
            [](const ScheduleWorkspace::Candidate& a,
               const ScheduleWorkspace::Candidate& b) {
              if (a.prio != b.prio) return a.prio < b.prio;
              if (a.remaining != b.remaining) return a.remaining > b.remaining;
              return a.core < b.core;
            });
  bool any = false;
  for (const auto& cand : eligible) {
    if (cand.width > AvailableWidth()) continue;
    if (IsBlocked(cand.core, cand.width)) continue;
    Admit(cand.core, cand.width);
    any = true;
  }
  return any;
}

bool TamScheduleOptimizer::RankedBefore(
    const ScheduleWorkspace::Candidate& a,
    const ScheduleWorkspace::Candidate& b) const {
  if (!params_.allow_preemption && a.begun != b.begun) {
    return a.begun;  // paused cores first (paper P2 before P3)
  }
  // Priority classes lead the heuristic order but stay BEHIND the
  // non-preemptive begun-first rule: a paused non-preemptable core must
  // resume gap-free whatever its class, or the resume would burn a
  // preemption credit it does not have. Guarded by the uniform flag so
  // uniform-priority runs compare exactly the historical keys.
  if (!priority_uniform_ && a.prio != b.prio) {
    return a.prio < b.prio;  // hot-lot (0) before best-effort (3)
  }
  switch (params_.rank) {
    case AdmissionRank::kWidth:
      if (a.width != b.width) return a.width > b.width;
      break;
    case AdmissionRank::kArea: {
      const auto aa = static_cast<std::int64_t>(a.width) * a.remaining;
      const auto ab = static_cast<std::int64_t>(b.width) * b.remaining;
      if (aa != ab) return aa > ab;
      break;
    }
    case AdmissionRank::kTime:
      break;
  }
  if (a.remaining != b.remaining) return a.remaining > b.remaining;
  if (a.begun != b.begun) return a.begun;  // stable tie-break
  return a.core < b.core;
}

bool TamScheduleOptimizer::AdmitRanked() {
  // Paper Priorities 2 and 3: paused cores (at their assigned width) and
  // unstarted cores (at their preferred width), admitted greedily by
  // decreasing remaining test time. In non-preemptive mode paused cores rank
  // strictly ahead of unstarted ones, which makes pausing impossible in
  // practice (they are all re-admitted instantly after every Update).
  using Candidate = ScheduleWorkspace::Candidate;
  std::vector<Candidate>& candidates = ws_->candidates;  // reused scratch
  candidates.clear();
  for (int w = 1; w <= params_.tam_width; ++w) {
    for (const CoreId c : ws_->paused_by_width[static_cast<std::size_t>(w)]) {
      const auto u = static_cast<std::size_t>(c);
      candidates.push_back({c, ws_->time_remaining[u], true, w, ws_->prio[u]});
    }
  }
  ws_->unstarted.ForEachSet([&](std::size_t u) {
    const auto c = static_cast<CoreId>(u);
    const int pw = ws_->preferred[u];
    candidates.push_back({c, TimeLut(c, pw), false, pw, ws_->prio[u]});
  });

  // RankedBefore is a strict total order, so popping a heap built on it
  // yields exactly the full-sort order — but admission can stop at the first
  // pop that finds the TAM exhausted (every remaining candidate would be
  // skipped), leaving the tail unsorted and unexamined.
  const auto heap_comp = [this](const Candidate& a, const Candidate& b) {
    return RankedBefore(b, a);
  };
  std::make_heap(candidates.begin(), candidates.end(), heap_comp);
  auto heap_end = candidates.end();

  bool any = false;
  while (heap_end != candidates.begin()) {
    const int avail = AvailableWidth();
    if (avail <= 0) break;  // nothing further can be admitted or shrunk
    std::pop_heap(candidates.begin(), heap_end, heap_comp);
    --heap_end;
    const Candidate& cand = *heap_end;
    ++candidates_examined_;
    int width = cand.width;
    if (width > avail) {
      // Inline shrink-to-fit (part of the insert-fill family): an unstarted
      // core may start narrower than preferred when the slower test still
      // finishes within the running critical path.
      if (!params_.enable_insert_fill || cand.begun) continue;
      const int shrunk = SnapLut(cand.core, avail);
      if (shrunk > avail || TimeLut(cand.core, shrunk) > active_critical_) {
        continue;
      }
      width = shrunk;
    }
    if (IsBlocked(cand.core, width)) continue;
    Admit(cand.core, width);
    any = true;
  }
  return any;
}

bool TamScheduleOptimizer::AdmitIdleFill() {
  // Paper lines 13-14: rather than leaving the remaining wires idle, admit an
  // unstarted core whose preferred width is within `idle_fill_slack` wires of
  // what is available, at the largest Pareto width that actually fits. The
  // candidates are exactly the preferred-width buckets in the window
  // (avail, avail + slack]; walking them in ascending width and, within a
  // bucket, ascending core id reproduces the historical smallest-preferred-
  // width-first-id selection, and the first unblocked core wins.
  if (!params_.enable_idle_fill) return false;
  bool any = false;
  while (true) {
    const int avail = AvailableWidth();
    if (avail <= 0) break;
    const int hi = std::min(avail + params_.idle_fill_slack, params_.tam_width);
    CoreId best = kNoCore;
    for (int w = avail + 1; w <= hi && best == kNoCore; ++w) {
      for (const CoreId c :
           ws_->unstarted_by_pref[static_cast<std::size_t>(w)]) {
        ++candidates_examined_;
        // The admission below runs at SnapLut(c, avail) — the window check
        // must cover that width's duration, so pass `avail`, not `w`.
        if (IsBlocked(c, avail)) continue;
        best = c;
        break;
      }
    }
    for (int w = hi + 1; w <= params_.tam_width; ++w) {
      if (!ws_->unstarted_by_pref[static_cast<std::size_t>(w)].empty()) {
        ++buckets_skipped_;
      }
    }
    if (best == kNoCore) break;
    const int width = SnapLut(best, avail);
    if (width <= 0 || width > avail) break;
    Admit(best, width);
    any = true;
  }
  return any;
}

bool TamScheduleOptimizer::AdmitInsertFill() {
  // Extra insertion heuristic (see OptimizerParams::enable_insert_fill):
  // shrink an unstarted core onto the free wires when doing so cannot extend
  // the running critical path.
  if (!params_.enable_insert_fill) return false;
  bool any = false;
  while (true) {
    const int avail = AvailableWidth();
    if (avail <= 0) break;
    const Time critical = active_critical_;  // longest remaining active test
    if (critical == 0) break;  // nothing active: not an insertion situation
    // Collect the unstarted cores whose shrunk-to-fit test stays within the
    // critical path; the per-width LUT makes each probe two flat loads.
    std::vector<ScheduleWorkspace::Candidate>& eligible = ws_->eligible;
    eligible.clear();
    ws_->unstarted.ForEachSet([&](std::size_t u) {
      const auto c = static_cast<CoreId>(u);
      ++candidates_examined_;
      const int width = SnapLut(c, avail);
      if (width > avail) return;
      const Time t = TimeLut(c, width);
      if (t > critical) return;
      eligible.push_back({c, t, false, width, ws_->prio[u]});
    });
    if (eligible.empty()) break;
    // Prefer the insertion that converts the most idle area into work:
    // largest time, smallest core id on ties (eligible is in ascending id
    // order, so a strict > keeps the first of equals). The conflict check is
    // deferred to the winner: if it is blocked it stays blocked for this
    // phase, so drop it and re-select.
    CoreId best = kNoCore;
    Time best_time = -1;
    int best_width = 0;
    while (!eligible.empty()) {
      std::size_t pick = 0;
      for (std::size_t i = 1; i < eligible.size(); ++i) {
        if (eligible[i].remaining > eligible[pick].remaining) pick = i;
      }
      const auto cand = eligible[pick];
      if (!IsBlocked(cand.core, cand.width)) {
        best = cand.core;
        best_time = cand.remaining;
        best_width = cand.width;
        break;
      }
      eligible.erase(eligible.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    (void)best_time;
    if (best == kNoCore) break;
    Admit(best, best_width);
    any = true;
  }
  return any;
}

bool TamScheduleOptimizer::BoostJustStarted() {
  // Paper lines 15-16: grant leftover wires to the just-started core that
  // benefits the most, snapping to its Pareto grid. The candidates are
  // exactly ws_->started_now (cores first admitted at now_; all still
  // running, since nothing pauses before the next Update). The list is in
  // admission order, so the tie-break compares core ids explicitly to keep
  // the historical smallest-id-wins rule.
  if (!params_.enable_width_boost) return false;
  bool any = false;
  while (true) {
    const int avail = AvailableWidth();
    if (avail <= 0) break;
    CoreId best = kNoCore;
    Time best_gain = 0;
    int best_new_width = 0;
    for (const CoreId c : ws_->started_now) {
      const auto u = static_cast<std::size_t>(c);
      const int new_width = SnapLut(c, ws_->assigned_width[u] + avail);
      if (new_width <= ws_->assigned_width[u]) continue;
      const Time gain =
          TimeLut(c, ws_->assigned_width[u]) - TimeLut(c, new_width);
      if (gain > best_gain ||
          (gain == best_gain && best != kNoCore && gain > 0 && c < best)) {
        best = c;
        best_gain = gain;
        best_new_width = new_width;
      }
    }
    if (best == kNoCore) break;
    const auto u = static_cast<std::size_t>(best);
    // The core started at `now_` and has made no progress yet, so replacing
    // its rectangle is free: adopt the wider width and its (shorter) time.
    if (params_.makespan_bound > 0) {
      // Re-price the certificate term: the old rectangle leaves, the new
      // one (exact, possibly smaller area) enters.
      begun_remaining_area_ -= static_cast<Time>(ws_->assigned_width[u]) *
                               ws_->time_remaining[u];
      begun_remaining_area_ +=
          static_cast<Time>(best_new_width) *
          (TimeLut(best, best_new_width) + ws_->overhead[u]);
    }
    used_width_ += best_new_width - ws_->assigned_width[u];
    ws_->assigned_width[u] = best_new_width;
    ws_->time_remaining[u] = TimeLut(best, best_new_width) + ws_->overhead[u];
    any = true;
  }
  return any;
}

void TamScheduleOptimizer::AdvanceTime() {
  // Paper's Update (Fig. 8): run every active test to the earliest
  // completion, close the elapsed segments, retire completed tests, and pause
  // the rest for re-contention.
  Time min_rem = -1;
  Time max_rem = 0;
  for (const CoreId a : ws_->active) {
    const Time rem = ws_->time_remaining[static_cast<std::size_t>(a)];
    if (min_rem < 0 || rem < min_rem) min_rem = rem;
    if (rem > max_rem) max_rem = rem;
  }
  assert(min_rem > 0 && "AdvanceTime requires at least one running core");
  Time new_time = now_ + min_rem;
  if (timeline_) {
    // Budget change-points are scheduling events: stop there, pause
    // everything, and re-contend under the new cap. At a drop, running tests
    // that no longer fit simply stay paused (preemptive cores burn a credit
    // on their later gap resume; uninterruptible ones were admitted under a
    // window check covering the drop, so their gap-free resume always
    // succeeds). At a raise, the freed budget admits new work immediately.
    const auto change = effective_power_->budget().NextChangeAfter(now_);
    if (change && *change < new_time) new_time = *change;
  }
  const Time elapsed = new_time - now_;  // >= 1: change-points are > now_
  if (params_.makespan_bound > 0) {
    // Every active core runs `elapsed` at its assigned width; the
    // certificate sheds exactly the wire-time consumed.
    begun_remaining_area_ -= elapsed * static_cast<Time>(used_width_);
    // Widths are final for every core in the active set (boosts act only in
    // the start round, already past), so the slowest active core pins the
    // makespan at now_ + max_rem from here on. Valid under budget events
    // too: preemption penalties and paused gaps only stretch a core's
    // completion past this.
    critical_path_lb_ = std::max(critical_path_lb_, now_ + max_rem);
  }
  for (const CoreId c : ws_->active) {
    const auto u = static_cast<std::size_t>(c);
    // Extend the last segment if contiguous at the same width.
    auto& segs = ws_->segments[u];
    if (!segs.empty() && segs.back().span.end == now_ &&
        segs.back().width == ws_->assigned_width[u]) {
      segs.back().span.end = new_time;
    } else {
      segs.push_back(
          ScheduleSegment{Interval{now_, new_time}, ws_->assigned_width[u]});
    }
    ws_->time_remaining[u] -= elapsed;
    ws_->running.reset(u);
    ws_->end_time[u] = new_time;
    if (ws_->time_remaining[u] <= 0) {
      ws_->complete.set(u);
      --incomplete_;
    } else {
      // Paused: enters the admission index at its fixed resume width.
      ws_->paused_by_width[static_cast<std::size_t>(ws_->assigned_width[u])]
          .push_back(c);
      ++ws_->paused_count;
    }
  }
  // Every running test paused or retired: the active set drains in one step.
  ws_->active.clear();
  ws_->started_now.clear();
  used_width_ = 0;
  active_power_ = 0;
  active_critical_ = 0;
  now_ = new_time;
  ++rounds_;
}

OptimizerResult TamScheduleOptimizer::Run() {
  if (!default_ws_) default_ws_ = std::make_unique<ScheduleWorkspace>();
  return Run(*default_ws_);
}

OptimizerResult TamScheduleOptimizer::Run(ScheduleWorkspace& ws) {
  ws_ = &ws;
  OptimizerResult result;

  // ---- Input validation -------------------------------------------------
  if (params_.tam_width < 1) {
    result.error = "tam_width must be >= 1";
    return result;
  }
  if (params_.w_max < 1) {
    result.error = "w_max must be >= 1";
    return result;
  }
  if (!compiled_->ok()) {
    result.error = *compiled_->error();
    return result;
  }
  if (params_.w_max != compiled_->w_max()) {
    result.error = StrFormat(
        "params.w_max (%d) does not match the CompiledProblem's w_max (%d)",
        params_.w_max, compiled_->w_max());
    return result;
  }
  if (auto problem = problem_->soc.Validate()) {
    result.error = *problem;
    return result;
  }
  if (problem_->precedence.HasCycle()) {
    result.error = "precedence constraints form a cycle";
    return result;
  }
  if (override_error_) {
    result.error = *override_error_;
    return result;
  }
  const PowerModel& power = *effective_power_;
  if (!power.unlimited()) {
    // A core must fit the most generous cap the timeline ever grants; for a
    // static budget MaxBudget() == pmax() and this is the historical check.
    const std::int64_t max_budget = power.budget().MaxBudget();
    for (const auto& core : problem_->soc.cores()) {
      if (power.PowerOf(core.id) > max_budget) {
        result.error = StrFormat(
            "core '%s' has power %lld > Pmax %lld and can never be scheduled",
            core.name.c_str(),
            static_cast<long long>(power.PowerOf(core.id)),
            static_cast<long long>(max_budget));
        return result;
      }
    }
  }
  timeline_ = !power.unlimited() && power.budget().has_changes();

  // ---- Initialize (paper Fig. 5) ----------------------------------------
  // The wrapper artifacts were compiled once (CompiledProblem); clipping them
  // to this run's TAM width is cheap and runs no wrapper design. The clipped
  // sets — and the flat per-width snap/time tables derived from them — are
  // immutable during a run, so a reused workspace keeps them across runs
  // while (compiled, tam_width) is unchanged — restart grids and improver
  // moves share one TAM width, making every run after the first clip-free.
  const auto n = static_cast<std::size_t>(problem_->soc.num_cores());
  if (ws_->rects_source_id != compiled_->id() ||
      ws_->rects_tam_width != params_.tam_width) {
    ws_->rects = compiled_->RectsFor(params_.tam_width);
    ws_->rects_source_id = compiled_->id();
    ws_->rects_tam_width = params_.tam_width;
    // Per-width lookup tables: one flat row per core, filled by walking the
    // (already sorted) Pareto list once — snap_lut[w] is the largest Pareto
    // width <= w and time_lut[w] its test time, with the SnapWidth clamp to
    // [1, w_limit] baked in at the row edges.
    const int stride = params_.tam_width + 1;
    ws_->lut_stride = stride;
    ws_->snap_lut.assign(n * static_cast<std::size_t>(stride), 0);
    ws_->time_lut.assign(n * static_cast<std::size_t>(stride), 0);
    ws_->min_area.assign(n, 0);
    for (std::size_t c = 0; c < n; ++c) {
      const auto& pareto = ws_->rects[c].pareto();
      int* snap_row = ws_->snap_lut.data() + c * static_cast<std::size_t>(stride);
      Time* time_row = ws_->time_lut.data() + c * static_cast<std::size_t>(stride);
      std::size_t k = 0;
      for (int w = 0; w < stride; ++w) {
        while (k + 1 < pareto.size() && pareto[k + 1].width <= w) ++k;
        snap_row[w] = pareto[k].width;
        time_row[w] = pareto[k].time;
      }
      // Least TAM area any schedule can spend on this core at this clip
      // (the makespan_bound certificate's per-core term).
      Time min_area = pareto.front().time * pareto.front().width;
      for (const auto& p : pareto) {
        min_area = std::min(min_area, p.time * static_cast<Time>(p.width));
      }
      ws_->min_area[c] = min_area;
    }
  }
  const std::vector<RectangleSet>& rects = ws_->rects;
  std::vector<int>& preferred = ws_->preferred;
  preferred.clear();
  if (!params_.preferred_width_override.empty()) {
    if (params_.preferred_width_override.size() != n) {
      result.error = "preferred_width_override must have one entry per core";
      return result;
    }
    for (CoreId c = 0; c < problem_->soc.num_cores(); ++c) {
      const int w = params_.preferred_width_override[static_cast<std::size_t>(c)];
      preferred.push_back(SnapLut(c, std::clamp(w, 1, params_.tam_width)));
    }
  } else if (params_.deadline_sizing) {
    // Size all cores against a common deadline M: each core gets the
    // smallest Pareto width meeting M, and M is binary-searched down to the
    // tightest value whose total width demand still fits in W. The large
    // tests then start together and finish together near the area bound
    // instead of serializing behind each other. Width demand is
    // non-increasing in M, so the bisection is exact.
    const SocBounds bounds = compiled_->Bounds(params_.tam_width);
    // Deadline window: the SOC lower bound (bottleneck/area terms, owned by
    // the compiled problem) up to the serial width-1 time.
    Time lo = bounds.LowerBound(params_.tam_width);
    Time hi = bounds.serial_time;

    auto width_for_deadline = [this](const RectangleSet& rect, Time deadline) {
      int pref = rect.MaxWidth();  // fastest width if the deadline is unmet
      for (const auto& p : rect.pareto()) {
        if (p.time <= deadline) {
          pref = p.width;
          break;
        }
      }
      return rect.SnapWidth(std::min(pref, params_.tam_width));
    };
    auto demand = [&](Time deadline) {
      int total = 0;
      for (const auto& rect : rects) total += width_for_deadline(rect, deadline);
      return total;
    };

    Time deadline = hi;
    if (demand(lo) <= params_.tam_width) {
      deadline = lo;
    } else {
      // Invariant: demand(lo) > W, demand(hi) <= W (width-1 everywhere) or
      // the SOC simply has more cores than wires — bisect anyway and take hi.
      while (lo + 1 < hi) {
        const Time mid = lo + (hi - lo) / 2;
        if (demand(mid) <= params_.tam_width) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      deadline = hi;
    }
    // S% relaxes the deadline slightly, adding sweep diversity.
    deadline = static_cast<Time>(static_cast<double>(deadline) *
                                 (1.0 + params_.s_percent / 100.0));
    for (const auto& rect : rects) {
      preferred.push_back(width_for_deadline(rect, deadline));
    }
  } else {
    PreferredWidthParams pw{params_.s_percent, params_.delta};
    for (const auto& rect : rects) {
      const int pref = PreferredWidth(rect.curve(), pw);
      preferred.push_back(rect.SnapWidth(std::min(pref, params_.tam_width)));
    }
  }

  // ---- Reset the SoA state and the admission index ----------------------
  ws_->max_preemptions.assign(n, 0);
  ws_->assigned_width.assign(n, 0);
  ws_->time_remaining.assign(n, 0);
  ws_->first_begin.assign(n, 0);
  ws_->end_time.assign(n, 0);
  ws_->preemptions.assign(n, 0);
  ws_->overhead.assign(n, 0);
  ws_->segments.resize(n);
  for (auto& segs : ws_->segments) segs.clear();
  ws_->begun.AssignClear(n);
  ws_->running.AssignClear(n);
  ws_->complete.AssignClear(n);
  ws_->unstarted.AssignSet(n);
  const auto buckets = static_cast<std::size_t>(params_.tam_width) + 1;
  ws_->paused_by_width.resize(std::max(ws_->paused_by_width.size(), buckets));
  for (auto& bucket : ws_->paused_by_width) bucket.clear();
  ws_->paused_count = 0;
  ws_->unstarted_by_pref.resize(
      std::max(ws_->unstarted_by_pref.size(), buckets));
  for (auto& bucket : ws_->unstarted_by_pref) bucket.clear();
  for (std::size_t i = 0; i < n; ++i) {
    // Ascending core id per bucket: the idle-fill tie-break order.
    ws_->unstarted_by_pref[static_cast<std::size_t>(preferred[i])].push_back(
        static_cast<CoreId>(i));
  }
  ws_->started_now.clear();
  if (params_.allow_preemption) {
    for (std::size_t i = 0; i < n; ++i) {
      int budget = problem_->soc.cores()[i].max_preemptions;
      if (params_.preemption_budget_override >= 0) {
        budget = std::min(budget, params_.preemption_budget_override);
      }
      ws_->max_preemptions[i] = budget;
    }
  }
  ws_->prio.assign(n, 0);
  priority_uniform_ = true;
  if (params_.honor_priority && n > 0) {
    const auto& cores = problem_->soc.cores();
    for (std::size_t i = 0; i < n; ++i) {
      ws_->prio[i] = cores[i].prio;
      if (cores[i].prio != cores[0].prio) priority_uniform_ = false;
    }
  }
  ws_->active.clear();
  now_ = 0;
  rounds_ = 0;
  remaining_min_area_ = 0;
  begun_remaining_area_ = 0;
  critical_path_lb_ = 0;
  if (params_.makespan_bound > 0) {
    // Only bounded runs pay for the certificate bookkeeping.
    for (std::size_t i = 0; i < n; ++i) {
      remaining_min_area_ += ws_->min_area[i];
    }
  }
  incomplete_ = problem_->soc.num_cores();
  used_width_ = 0;
  active_power_ = 0;
  active_critical_ = 0;
  candidates_examined_ = 0;
  buckets_skipped_ = 0;

  // ---- Main loop (paper Fig. 4) ------------------------------------------
  while (incomplete_ > 0) {
    bool progress = false;
    progress |= AdmitLimitReached();
    progress |= AdmitRanked();
    progress |= AdmitIdleFill();
    progress |= AdmitInsertFill();
    BoostJustStarted();

    if (ws_->active.empty()) {
      if (!progress) {
        if (timeline_) {
          // Nothing fits under the budget in force, but the cap will change:
          // idle-advance to the next change-point and re-contend. A raise
          // can admit cores the current cap blocks, and moving a pending
          // drop behind `now_` shrinks uninterruptible cores' check windows.
          // Terminates: change-points are finite and strictly increasing.
          if (const auto change =
                  effective_power_->budget().NextChangeAfter(now_)) {
            now_ = *change;
            continue;
          }
        }
        // Structurally unreachable for valid static-budget inputs (see
        // DESIGN.md): with an empty active set, power and concurrency cannot
        // block, and an acyclic precedence graph always has a ready core.
        // Reachable under a timeline whose every remaining window is too
        // tight for some uninterruptible core — a genuinely unschedulable
        // input.
        result.error = "scheduler deadlock: no core admissible";
        return result;
      }
      continue;
    }
    AdvanceTime();
    // Incumbent-bounded early abandonment: the certificate (packed time +
    // the unstarted cores' area floor) is an admissible lower bound on this
    // run's final makespan, so reaching the bound proves the run can never
    // come in below it (see OptimizerParams::makespan_bound). Abort with
    // the effort counters for the phases actually run.
    if (params_.makespan_bound > 0) {
      const Time certificate = MakespanCertificate();
      if (certificate >= params_.makespan_bound) {
        result.aborted_by_bound = true;
        result.makespan = certificate;
        result.admission_rounds = rounds_;
        result.candidates_examined = candidates_examined_;
        result.buckets_skipped = buckets_skipped_;
        return result;
      }
    }
  }

  // ---- Emit schedule -----------------------------------------------------
  result.schedule = Schedule(problem_->soc.name(), params_.tam_width);
  for (CoreId c = 0; c < problem_->soc.num_cores(); ++c) {
    const auto u = static_cast<std::size_t>(c);
    CoreSchedule entry;
    entry.core = c;
    entry.assigned_width = ws_->assigned_width[u];
    entry.segments = std::move(ws_->segments[u]);
    entry.preemptions = ws_->preemptions[u];
    entry.overhead_cycles = ws_->overhead[u];
    result.schedule.Add(std::move(entry));

    CoreAssignment assignment;
    assignment.core = c;
    assignment.preferred_width = ws_->preferred[u];
    assignment.assigned_width = ws_->assigned_width[u];
    assignment.test_time = TimeLut(c, ws_->assigned_width[u]);
    assignment.scheduled_time = assignment.test_time + ws_->overhead[u];
    assignment.preemptions = ws_->preemptions[u];
    result.assignments.push_back(assignment);
  }
  result.makespan = result.schedule.Makespan();
  result.admission_rounds = rounds_;
  result.candidates_examined = candidates_examined_;
  result.buckets_skipped = buckets_skipped_;
  return result;
}

OptimizerResult Optimize(const TestProblem& problem,
                         const OptimizerParams& params) {
  return TamScheduleOptimizer(problem, params).Run();
}

OptimizerResult Optimize(const CompiledProblem& compiled,
                         const OptimizerParams& params) {
  return TamScheduleOptimizer(compiled, params).Run();
}

OptimizerResult Optimize(const CompiledProblem& compiled,
                         const OptimizerParams& params, ScheduleWorkspace& ws) {
  return TamScheduleOptimizer(compiled, params).Run(ws);
}

OptimizerResult OptimizeBestOverParams(const TestProblem& problem,
                                       OptimizerParams params, int threads) {
  const CompiledProblem compiled(problem, params.w_max);
  return OptimizeBestOverParams(compiled, std::move(params), threads);
}

OptimizerResult OptimizeBestOverParams(const CompiledProblem& compiled,
                                       OptimizerParams params, int threads) {
  SearchOptions options;
  options.threads = threads;
  return RunRestartSearch(compiled, params, options).best;
}

}  // namespace soctest
