// Exact solver for small instances of the paper's Problem P_NPS
// (non-preemptive wrapper/TAM co-optimization + scheduling, no side
// constraints). Used to certify the heuristic's optimality gap in tests and
// benches; the problem is NP-hard, so this is only practical for roughly
// <= 8 cores with modest Pareto sets.
//
// Search space: for each core choose one Pareto rectangle, then schedule by
// branch-and-bound over "active" schedules — each unplaced core starts at
// the earliest instant (0 or a placed core's completion) where its width
// fits. For cumulative-resource scheduling, some optimal schedule is active,
// so restricting start times to completion events preserves optimality.
//
// Pruning: partial makespan, remaining-area bound, and per-core floor-time
// bound against the incumbent (seeded by the rectangle-packing heuristic).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/optimizer.h"
#include "core/problem.h"
#include "core/schedule.h"

namespace soctest {

struct ExactPackOptions {
  int w_max = 64;
  // Per-core cap on candidate rectangles (largest widths kept; width 1 is
  // always retained). Keeps the choice product tractable.
  int max_choices_per_core = 6;
  // Node budget; 0 = unlimited. When exceeded the result is the best found
  // so far and `proven_optimal` is false.
  std::int64_t max_nodes = 5'000'000;
  // Hard cap on instance size; larger SOCs return nullopt immediately.
  int max_cores = 10;

  // Warm start (ROADMAP "exact-solver warm starts"). When warm_makespan > 0
  // it must be the makespan of a known-feasible NON-PREEMPTIVE schedule —
  // typically the parallel restart search's best; use SeedWarmStart, which
  // enforces that — and the B&B prunes EXCLUSIVELY at it:
  // only strictly better solutions are searched for. If the tree is
  // exhausted without finding one, the warm solution itself is proven
  // optimal and `warm_schedule` is returned. The warm path also skips the
  // cold path's internal heuristic run (the bound is the caller's
  // responsibility; every real warm source dominates that single run). The
  // candidate enumeration order is untouched, so the warm tree is a subset
  // of the cold tree — strictly smaller whenever the cold search expands
  // any node that cannot beat the warm bound (in particular whenever it
  // merely re-discovers an optimum the restart search already found).
  Time warm_makespan = 0;
  // The warm solution's schedule; copied into the result when the B&B
  // proves nothing strictly better exists. Required when warm_makespan > 0.
  Schedule warm_schedule;
  // Optional width assignment of the warm solution (one entry per core,
  // e.g. OptimizerResult::assignments[i].assigned_width). Before branching,
  // the solver DIVES this assignment — places every core at its warm
  // rectangle in branch order at the earliest feasible start — and installs
  // the result as the first incumbent if it beats the bound. The dive is
  // incumbent construction, not search: it is not counted in
  // nodes_explored and can only tighten the bound. Ignored when the size
  // does not match the core count.
  std::vector<int> warm_widths;
};

struct ExactPackResult {
  Time makespan = 0;
  Schedule schedule;
  bool proven_optimal = false;
  std::int64_t nodes_explored = 0;
};

// Solves P_NPS exactly (subject to the option caps). Returns nullopt if the
// instance exceeds max_cores. Ignores precedence/concurrency/power — it
// targets the pure packing problem the heuristic's quality is judged on.
std::optional<ExactPackResult> ExactPack(const Soc& soc, int tam_width,
                                         const ExactPackOptions& options = {});

// Seeds `options`' warm-start fields (makespan bound, schedule, per-core
// widths) from a heuristic result — the restart search's or the improver's
// best. The single place the warm contract is spelled out. No-op when the
// result is an error OR when its schedule preempts any test: ExactPack
// solves the NON-preemptive problem P_NPS, and a preemptive makespan can
// undercut the packing optimum — seeding it would make the B&B "prove" a
// bound no schedule in its own search space achieves. Callers therefore
// need no ok()/preemption dance of their own.
void SeedWarmStart(ExactPackOptions& options, const OptimizerResult& warm);

}  // namespace soctest
