// Exact solver for small instances of the paper's Problem P_NPS
// (non-preemptive wrapper/TAM co-optimization + scheduling, no side
// constraints). Used to certify the heuristic's optimality gap in tests and
// benches; the problem is NP-hard, so this is only practical for roughly
// <= 8 cores with modest Pareto sets.
//
// Search space: for each core choose one Pareto rectangle, then schedule by
// branch-and-bound over "active" schedules — each unplaced core starts at
// the earliest instant (0 or a placed core's completion) where its width
// fits. For cumulative-resource scheduling, some optimal schedule is active,
// so restricting start times to completion events preserves optimality.
//
// Pruning: partial makespan, remaining-area bound, and per-core floor-time
// bound against the incumbent (seeded by the rectangle-packing heuristic).
#pragma once

#include <cstdint>
#include <optional>

#include "core/problem.h"
#include "core/schedule.h"

namespace soctest {

struct ExactPackOptions {
  int w_max = 64;
  // Per-core cap on candidate rectangles (largest widths kept; width 1 is
  // always retained). Keeps the choice product tractable.
  int max_choices_per_core = 6;
  // Node budget; 0 = unlimited. When exceeded the result is the best found
  // so far and `proven_optimal` is false.
  std::int64_t max_nodes = 5'000'000;
  // Hard cap on instance size; larger SOCs return nullopt immediately.
  int max_cores = 10;
};

struct ExactPackResult {
  Time makespan = 0;
  Schedule schedule;
  bool proven_optimal = false;
  std::int64_t nodes_explored = 0;
};

// Solves P_NPS exactly (subject to the option caps). Returns nullopt if the
// instance exceeds max_cores. Ignores precedence/concurrency/power — it
// targets the pure packing problem the heuristic's quality is judged on.
std::optional<ExactPackResult> ExactPack(const Soc& soc, int tam_width,
                                         const ExactPackOptions& options = {});

}  // namespace soctest
