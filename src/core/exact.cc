#include "core/exact.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/optimizer.h"
#include "wrapper/rectangles.h"

namespace soctest {
namespace {

struct Candidate {
  int width;
  Time time;
};

struct Placement {
  Time start = 0;
  Time end = 0;
  int width = 0;
  int choice = 0;  // index into the core's candidate list
};

struct SearchState {
  int tam_width = 0;
  std::int64_t max_nodes = 0;
  std::vector<std::vector<Candidate>> candidates;  // per core
  std::vector<std::int64_t> min_area;              // per core
  std::vector<Time> floor_time;                    // per core min time

  std::vector<Placement> placed;   // indexed by core; end==0 && width==0 => unplaced
  std::vector<bool> is_placed;
  std::int64_t remaining_area = 0;
  Time current_makespan = 0;

  Time best = 0;
  std::vector<Placement> best_placed;
  std::int64_t nodes = 0;
  bool truncated = false;
};

// Width in use at instant t (exclusive of cores ending exactly at t).
int WidthInUse(const SearchState& s, Time t) {
  int used = 0;
  for (std::size_t c = 0; c < s.placed.size(); ++c) {
    if (!s.is_placed[c]) continue;
    const auto& p = s.placed[c];
    if (p.start <= t && t < p.end) used += p.width;
  }
  return used;
}

// True iff `width` wires are free during [start, start + duration).
bool Fits(const SearchState& s, Time start, Time duration, int width) {
  // Capacity changes only at placement boundaries; check at `start` and at
  // every placed start inside the window.
  if (WidthInUse(s, start) + width > s.tam_width) return false;
  const Time end = start + duration;
  for (std::size_t c = 0; c < s.placed.size(); ++c) {
    if (!s.is_placed[c]) continue;
    const auto& p = s.placed[c];
    if (p.start > start && p.start < end) {
      if (WidthInUse(s, p.start) + width > s.tam_width) return false;
    }
  }
  return true;
}

void Branch(SearchState& s) {
  if (s.max_nodes > 0 && s.nodes >= s.max_nodes) {
    s.truncated = true;
    return;
  }
  ++s.nodes;

  // All placed: record incumbent.
  bool done = true;
  for (bool placed : s.is_placed) done &= placed;
  if (done) {
    if (s.current_makespan < s.best) {
      s.best = s.current_makespan;
      s.best_placed = s.placed;
    }
    return;
  }

  // Bounds: area of the unplaced work cannot fit below `area_lb`.
  const Time area_lb =
      (s.remaining_area + s.tam_width - 1) / s.tam_width;  // from time 0
  if (std::max(s.current_makespan, area_lb) >= s.best) return;

  // Candidate start times: 0 and the ends of placed cores.
  std::vector<Time> starts{0};
  for (std::size_t c = 0; c < s.placed.size(); ++c) {
    if (s.is_placed[c]) starts.push_back(s.placed[c].end);
  }
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());

  // Pick the unplaced core with the largest minimal area first (hardest to
  // fit); deterministic tie-break by id.
  int core = -1;
  for (std::size_t c = 0; c < s.placed.size(); ++c) {
    if (s.is_placed[c]) continue;
    if (core < 0 || s.min_area[c] > s.min_area[static_cast<std::size_t>(core)]) {
      core = static_cast<int>(c);
    }
  }
  const auto uc = static_cast<std::size_t>(core);

  if (s.current_makespan + 0 >= s.best) return;
  if (s.floor_time[uc] >= s.best) return;  // cannot finish below incumbent

  for (std::size_t choice = 0; choice < s.candidates[uc].size(); ++choice) {
    const Candidate cand = s.candidates[uc][choice];
    for (Time start : starts) {
      if (start + cand.time >= s.best) break;  // starts sorted: all later worse
      if (!Fits(s, start, cand.time, cand.width)) continue;
      s.placed[uc] = Placement{start, start + cand.time, cand.width,
                               static_cast<int>(choice)};
      s.is_placed[uc] = true;
      const Time saved_makespan = s.current_makespan;
      s.current_makespan = std::max(s.current_makespan, start + cand.time);
      s.remaining_area -= s.min_area[uc];
      Branch(s);
      s.remaining_area += s.min_area[uc];
      s.current_makespan = saved_makespan;
      s.is_placed[uc] = false;
      // Active-schedule restriction: trying the SAME rectangle at later
      // starts is still needed (a later start may dodge a capacity bump), so
      // no break here.
    }
  }
}

// Installs the warm solution as the first incumbent by descending the warm
// width assignment before any branching: cores are placed in the order
// Branch picks them (largest min_area first, smallest id on ties), each at
// its warm candidate rectangle, at the earliest active start where it fits.
// This is incumbent construction, not search — it does not touch s.nodes —
// and it can only lower s.best, so the branched tree only shrinks.
void DiveWarmStart(SearchState& s, const std::vector<int>& warm_widths) {
  const std::size_t n = s.placed.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&s](std::size_t a, std::size_t b) {
    if (s.min_area[a] != s.min_area[b]) return s.min_area[a] > s.min_area[b];
    return a < b;
  });

  Time makespan = 0;
  for (const std::size_t c : order) {
    // Largest candidate width <= the warm width (the warm width itself
    // unless trimming dropped it); candidates are sorted by width, and
    // width 1 is always retained.
    const auto& cands = s.candidates[c];
    std::size_t choice = 0;
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (cands[i].width <= warm_widths[c]) choice = i;
    }
    const Candidate cand = cands[choice];

    std::vector<Time> starts{0};
    for (std::size_t p = 0; p < n; ++p) {
      if (s.is_placed[p]) starts.push_back(s.placed[p].end);
    }
    std::sort(starts.begin(), starts.end());
    for (const Time start : starts) {
      // The latest start (every placed core already ended) always fits, so
      // the dive never fails.
      if (!Fits(s, start, cand.time, cand.width)) continue;
      s.placed[c] = Placement{start, start + cand.time, cand.width,
                              static_cast<int>(choice)};
      s.is_placed[c] = true;
      makespan = std::max(makespan, start + cand.time);
      break;
    }
  }
  if (makespan > 0 && makespan < s.best) {
    s.best = makespan;
    s.best_placed = s.placed;
  }
  s.placed.assign(n, Placement{});
  s.is_placed.assign(n, false);
}

}  // namespace

void SeedWarmStart(ExactPackOptions& options, const OptimizerResult& warm) {
  // Refusal clears any previously-seeded fields so one options object can be
  // reused across instances without a stale bound leaking into the next run.
  // A preempted schedule lives outside P_NPS's search space; its makespan is
  // not a sound exclusive bound for the non-preemptive B&B (see header).
  if (!warm.ok() || warm.makespan <= 0 ||
      warm.schedule.TotalPreemptions() > 0) {
    options.warm_makespan = 0;
    options.warm_schedule = Schedule();
    options.warm_widths.clear();
    return;
  }
  options.warm_makespan = warm.makespan;
  options.warm_schedule = warm.schedule;
  options.warm_widths.clear();
  options.warm_widths.reserve(warm.assignments.size());
  for (const auto& a : warm.assignments) {
    options.warm_widths.push_back(a.assigned_width);
  }
}

std::optional<ExactPackResult> ExactPack(const Soc& soc, int tam_width,
                                         const ExactPackOptions& options) {
  if (soc.num_cores() > options.max_cores || soc.num_cores() == 0 ||
      tam_width < 1) {
    return std::nullopt;
  }

  SearchState s;
  s.tam_width = tam_width;
  s.max_nodes = options.max_nodes;

  const auto rects = BuildRectangleSets(soc, options.w_max, tam_width);
  for (const auto& rect : rects) {
    std::vector<Candidate> cands;
    for (const auto& p : rect.pareto()) {
      cands.push_back(Candidate{p.width, p.time});
    }
    // Keep the widest `max_choices_per_core` candidates plus width 1.
    if (static_cast<int>(cands.size()) > options.max_choices_per_core) {
      std::vector<Candidate> trimmed;
      trimmed.push_back(cands.front());  // width 1
      const std::size_t keep =
          static_cast<std::size_t>(options.max_choices_per_core) - 1;
      trimmed.insert(trimmed.end(), cands.end() - static_cast<std::ptrdiff_t>(keep),
                     cands.end());
      cands = std::move(trimmed);
    }
    s.candidates.push_back(std::move(cands));
    s.min_area.push_back(rect.MinArea());
    s.floor_time.push_back(rect.MinTime());
    s.remaining_area += rect.MinArea();
  }

  s.placed.assign(static_cast<std::size_t>(soc.num_cores()), Placement{});
  s.is_placed.assign(static_cast<std::size_t>(soc.num_cores()), false);

  // Incumbent seeding. Warm path: the caller-supplied feasible makespan
  // (e.g. the restart search's best over the whole parameter grid) bounds
  // the search EXCLUSIVELY — only strictly better solutions are worth
  // finding, because options.warm_schedule already realizes warm_makespan —
  // and the internal heuristic run is skipped entirely (every real warm
  // source dominates a single default-parameter run). Cold path: one
  // heuristic run, inclusive (+1) bound so an equal exact solution is still
  // materialized from the tree.
  const bool warm = options.warm_makespan > 0;
  OptimizerResult heuristic;  // cold path only
  if (warm) {
    s.best = options.warm_makespan;
    if (static_cast<int>(options.warm_widths.size()) == soc.num_cores()) {
      DiveWarmStart(s, options.warm_widths);
    }
  } else {
    const TestProblem problem = TestProblem::FromSoc(soc);
    OptimizerParams params;
    params.tam_width = tam_width;
    params.w_max = options.w_max;
    heuristic = Optimize(problem, params);
    s.best = heuristic.ok() ? heuristic.makespan + 1
                            : std::numeric_limits<Time>::max() / 2;
  }

  Branch(s);

  ExactPackResult result;
  result.nodes_explored = s.nodes;
  result.proven_optimal = !s.truncated;
  if (s.best_placed.empty()) {
    // Nothing strictly better than the starting incumbent was found: that
    // incumbent — the warm solution, or the cold path's heuristic — is the
    // optimum (or, under truncation, the best known solution).
    if (warm) {
      result.makespan = options.warm_makespan;
      result.schedule = options.warm_schedule;
    } else {
      result.makespan = heuristic.makespan;
      result.schedule = heuristic.schedule;
    }
    return result;
  }
  result.makespan = s.best;
  result.schedule = Schedule(soc.name(), tam_width);
  for (std::size_t c = 0; c < s.best_placed.size(); ++c) {
    const auto& p = s.best_placed[c];
    CoreSchedule entry;
    entry.core = static_cast<CoreId>(c);
    entry.assigned_width = p.width;
    entry.segments.push_back(ScheduleSegment{Interval{p.start, p.end}, p.width});
    result.schedule.Add(std::move(entry));
  }
  return result;
}

}  // namespace soctest
