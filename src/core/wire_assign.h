// Physical TAM wire assignment.
//
// The scheduler tracks only aggregate width usage; rectangles may be split
// vertically because non-contiguous TAM wires can be forked to a core and
// merged back (paper Section 3). This module materializes that claim: it
// assigns concrete wire ids [0, W) to every schedule segment such that no
// wire carries two cores at once, proving the schedule is physically
// realizable, and it reports fork/merge statistics (how fragmented each
// core's wire group is).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/schedule.h"

namespace soctest {

// Wire ids granted to one schedule segment of one core.
struct WireGrant {
  CoreId core = kNoCore;
  Interval span;
  std::vector<int> wires;  // sorted, size == segment width

  // Number of maximal runs of consecutive wire ids; 1 = contiguous block,
  // >1 = the TAM forked for this core.
  int NumFragments() const;
};

struct WireAssignment {
  int tam_width = 0;
  std::vector<WireGrant> grants;

  // Largest fragment count over all grants (1 = a contiguous design would
  // have sufficed for every core).
  int MaxFragments() const;

  // Share of grants that needed forked (non-contiguous) wires.
  double ForkShare() const;
};

// Assigns wires greedily (lowest free id first) by sweeping segment start
// times. Always succeeds for schedules whose aggregate usage respects W;
// returns nullopt otherwise.
std::optional<WireAssignment> AssignWires(const Schedule& schedule);

// Verifies that no wire is used by two overlapping grants and every grant has
// exactly its segment's width. Returns an error description or nullopt.
std::optional<std::string> CheckWireAssignment(const Schedule& schedule,
                                               const WireAssignment& assignment);

}  // namespace soctest
