#include "core/gantt.h"

#include <algorithm>

#include "util/strings.h"

namespace soctest {
namespace {

char GlyphFor(CoreId core) {
  static const char kGlyphs[] =
      "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
  const std::size_t n = sizeof(kGlyphs) - 1;
  return kGlyphs[static_cast<std::size_t>(core) % n];
}

int TimeToColumn(Time t, Time makespan, int width_chars) {
  if (makespan <= 0) return 0;
  const auto col = static_cast<int>((static_cast<double>(t) /
                                     static_cast<double>(makespan)) *
                                    width_chars);
  return std::clamp(col, 0, width_chars);
}

std::string AxisLine(Time makespan, int width_chars, std::size_t label_pad) {
  std::string out(label_pad, ' ');
  out += "0";
  const std::string end = WithCommas(makespan);
  if (static_cast<std::size_t>(width_chars) > end.size() + 1) {
    out += std::string(static_cast<std::size_t>(width_chars) - end.size() - 1, ' ');
  }
  out += end + " cycles\n";
  return out;
}

}  // namespace

std::string RenderCoreGantt(const Soc& soc, const Schedule& schedule,
                            const GanttOptions& options) {
  const Time makespan = schedule.Makespan();
  const int width = std::max(16, options.width_chars);

  std::size_t label_pad = 0;
  for (const auto& core : soc.cores()) {
    label_pad = std::max(label_pad, core.name.size());
  }
  label_pad += 2;

  std::string out = StrFormat("Test schedule for %s  (W=%d, makespan=%s)\n",
                              schedule.soc_name().c_str(), schedule.tam_width(),
                              WithCommas(makespan).c_str());
  for (const auto& entry : schedule.entries()) {
    const CoreSpec& core = soc.core(entry.core);
    std::string row(static_cast<std::size_t>(width), '.');
    for (const auto& seg : entry.segments) {
      const int c0 = TimeToColumn(seg.span.begin, makespan, width);
      int c1 = TimeToColumn(seg.span.end, makespan, width);
      if (c1 <= c0) c1 = c0 + 1;  // always visible
      for (int c = c0; c < std::min(c1, width); ++c) {
        row[static_cast<std::size_t>(c)] = GlyphFor(entry.core);
      }
    }
    std::string label = core.name;
    label += std::string(label_pad - core.name.size(), ' ');
    out += label + row;
    if (options.show_widths) {
      out += StrFormat("  w=%d", entry.assigned_width);
      if (entry.preemptions > 0) out += StrFormat(" (preempted %dx)", entry.preemptions);
    }
    out += '\n';
  }
  out += AxisLine(makespan, width, label_pad);
  return out;
}

std::string RenderWireGantt(const Soc& soc, const Schedule& schedule,
                            const WireAssignment& wires,
                            const GanttOptions& options) {
  (void)soc;
  const Time makespan = schedule.Makespan();
  const int width = std::max(16, options.width_chars);
  const std::size_t label_pad = 8;

  std::vector<std::string> rows(
      static_cast<std::size_t>(wires.tam_width),
      std::string(static_cast<std::size_t>(width), '.'));
  for (const auto& grant : wires.grants) {
    const int c0 = TimeToColumn(grant.span.begin, makespan, width);
    int c1 = TimeToColumn(grant.span.end, makespan, width);
    if (c1 <= c0) c1 = c0 + 1;
    for (int wire : grant.wires) {
      auto& row = rows[static_cast<std::size_t>(wire)];
      for (int c = c0; c < std::min(c1, width); ++c) {
        row[static_cast<std::size_t>(c)] = GlyphFor(grant.core);
      }
    }
  }

  std::string out = StrFormat(
      "TAM wire occupancy for %s  (W=%d; glyph = core id; '.' = idle)\n",
      schedule.soc_name().c_str(), schedule.tam_width());
  for (int w = 0; w < wires.tam_width; ++w) {
    std::string label = StrFormat("w%02d", w);
    label += std::string(label_pad - label.size(), ' ');
    out += label + rows[static_cast<std::size_t>(w)] + "\n";
  }
  out += AxisLine(makespan, width, label_pad);
  return out;
}

}  // namespace soctest
