// CompiledCore — one core's immutable compiled wrapper artifacts, as an
// independently shareable unit.
//
// Everything the scheduler ever reads about a single core — the time curve
// T(w) with its recorded scan-flush lengths, the Pareto points, the
// rectangle set clipped to w_max, the max useful width — is a pure function
// of (CoreSpec wrapper fields, w_max); see soc/core_hash.h for the exact
// field contract. CompiledCore packages that unit so a CompiledProblem is
// ASSEMBLED from per-core artifacts instead of owning them: near-duplicate
// SOCs (one core swapped, everything else identical) share N-1 of their N
// artifacts through the core-artifact cache (service/core_cache.h), and a
// variant compile pays for one core instead of the whole SOC.
//
// A CompiledCore is self-contained — it copies what it needs from the
// CoreSpec and holds no references — so a handout survives both the spec it
// was compiled from and any cache eviction. It is immutable after
// construction and safe to share across threads and across CompiledProblems
// without synchronization.
//
// Position independence: the artifact must serve core index 3 of one SOC
// and index 7 of another, so its RectangleSet carries core_id == kNoCore.
// CompiledProblem::RectsFor() re-attaches the per-problem core ids when it
// materializes the clipped sets the scheduler packs.
#pragma once

#include <memory>
#include <vector>

#include "soc/core_spec.h"
#include "wrapper/rectangles.h"

namespace soctest {

class CompiledCore {
 public:
  // Runs wrapper design at every width in [1, w_max] (the expensive step a
  // cache hit skips). Requires w_max >= 1 and a valid CoreSpec — callers
  // validate the SOC before compiling (CompiledProblem's constructors do).
  CompiledCore(const CoreSpec& core, int w_max);

  int w_max() const { return w_max_; }

  // The artifact set, clipped only by w_max (core_id == kNoCore; see above).
  const RectangleSet& rect() const { return rect_; }
  const TimeCurve& curve() const { return rect_.curve(); }
  const std::vector<ParetoPoint>& pareto() const { return rect_.pareto(); }

  // Highest width worth wiring (top Pareto width at w_max).
  int max_useful_width() const { return rect_.MaxWidth(); }

  // (s_i + s_o) scan flush/reload cost at `width` — the per-preemption
  // penalty. O(1): recorded during curve evaluation.
  Time FlushPenalty(int width) const {
    return rect_.curve().FlushAt(width < 1 ? 1 : width);
  }

 private:
  int w_max_ = 0;
  RectangleSet rect_;
};

using CompiledCorePtr = std::shared_ptr<const CompiledCore>;

}  // namespace soctest
