#include "core/schedule.h"

#include <algorithm>

namespace soctest {

Time CoreSchedule::ActiveTime() const {
  Time total = 0;
  for (const auto& seg : segments) total += seg.span.length();
  return total;
}

const CoreSchedule* Schedule::FindCore(CoreId core) const {
  for (const auto& e : entries_) {
    if (e.core == core) return &e;
  }
  return nullptr;
}

Time Schedule::Makespan() const {
  Time end = 0;
  for (const auto& e : entries_) end = std::max(end, e.EndTime());
  return end;
}

Time Schedule::TotalActiveTime() const {
  Time total = 0;
  for (const auto& e : entries_) total += e.ActiveTime();
  return total;
}

std::int64_t Schedule::UsedArea() const {
  std::int64_t area = 0;
  for (const auto& e : entries_) {
    for (const auto& seg : e.segments) {
      area += static_cast<std::int64_t>(seg.width) * seg.span.length();
    }
  }
  return area;
}

std::int64_t Schedule::IdleArea() const {
  return static_cast<std::int64_t>(tam_width_) * Makespan() - UsedArea();
}

double Schedule::Utilization() const {
  const std::int64_t bin = static_cast<std::int64_t>(tam_width_) * Makespan();
  if (bin <= 0) return 0.0;
  return static_cast<double>(UsedArea()) / static_cast<double>(bin);
}

int Schedule::PeakWidth() const {
  StepProfile profile;
  for (const auto& e : entries_) {
    for (const auto& seg : e.segments) profile.Add(seg.span, seg.width);
  }
  return static_cast<int>(profile.Max());
}

int Schedule::TotalPreemptions() const {
  int total = 0;
  for (const auto& e : entries_) total += e.preemptions;
  return total;
}

}  // namespace soctest
