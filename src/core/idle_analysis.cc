#include "core/idle_analysis.h"

#include <algorithm>

#include "util/interval.h"
#include "util/strings.h"

namespace soctest {

const IdleWindow* IdleReport::LargestWindow() const {
  const IdleWindow* best = nullptr;
  for (const auto& w : windows) {
    if (best == nullptr || w.Area() > best->Area()) best = &w;
  }
  return best;
}

IdleReport AnalyzeIdle(const Schedule& schedule) {
  IdleReport report;
  report.used_area = schedule.UsedArea();
  report.total_idle_area = schedule.IdleArea();
  report.utilization = schedule.Utilization();

  const Time makespan = schedule.Makespan();
  if (makespan <= 0) return report;

  StepProfile profile;
  for (const auto& entry : schedule.entries()) {
    for (const auto& seg : entry.segments) profile.Add(seg.span, seg.width);
  }
  const auto steps = profile.Flatten();

  // Walk the piecewise-constant usage; gaps between steps have usage of the
  // previous value (Flatten reports value changes only), so iterate segments
  // [bp[i], bp[i+1]) with value v[i], and a final [bp.last, makespan) with
  // the last value (which is 0 for finite schedules).
  Time cursor = 0;
  std::int64_t usage = 0;
  auto emit = [&](Time begin, Time end, std::int64_t used) {
    if (begin >= end) return;
    const int free_width = schedule.tam_width() - static_cast<int>(used);
    if (free_width <= 0) return;
    // Merge with the previous window when contiguous at equal free width.
    if (!report.windows.empty() && report.windows.back().span.end == begin &&
        report.windows.back().free_width == free_width) {
      report.windows.back().span.end = end;
      return;
    }
    report.windows.push_back(IdleWindow{Interval{begin, end}, free_width});
  };
  for (std::size_t i = 0; i < steps.breakpoints.size(); ++i) {
    const Time t = std::min(steps.breakpoints[i], makespan);
    emit(cursor, t, usage);
    cursor = t;
    usage = steps.values[i];
  }
  emit(cursor, makespan, usage);
  return report;
}

std::string FormatIdleReport(const IdleReport& report, std::size_t max_windows) {
  std::string out =
      StrFormat("utilization %.1f%%, idle area %s wire-cycles over %zu windows\n",
                100.0 * report.utilization,
                WithCommas(report.total_idle_area).c_str(),
                report.windows.size());
  std::vector<IdleWindow> by_area = report.windows;
  std::sort(by_area.begin(), by_area.end(),
            [](const IdleWindow& a, const IdleWindow& b) {
              return a.Area() > b.Area();
            });
  for (std::size_t i = 0; i < std::min(max_windows, by_area.size()); ++i) {
    const auto& w = by_area[i];
    out += StrFormat("  [%s, %s) x %d wires = %s wire-cycles\n",
                     WithCommas(w.span.begin).c_str(),
                     WithCommas(w.span.end).c_str(), w.free_width,
                     WithCommas(w.Area()).c_str());
  }
  return out;
}

}  // namespace soctest
