// Schedule data structures: the output of the wrapper/TAM co-optimization.
//
// A core's test occupies one or more time segments (more than one iff it was
// preempted); each segment carries the TAM width in use during that segment.
// The non-preemptive problem (paper P_NPS) yields exactly one segment per
// core at a single width; the preemptive problem (P_PS) allows horizontal
// splits (segments) while the width stays fixed once the test has begun.
#pragma once

#include <string>
#include <vector>

#include "soc/soc.h"
#include "util/interval.h"

namespace soctest {

// A contiguous run of a core's test on the TAM.
struct ScheduleSegment {
  Interval span;   // [begin, end) in cycles
  int width = 0;   // TAM wires in use during this segment
};

// Complete scheduling record for one core.
struct CoreSchedule {
  CoreId core = kNoCore;
  int assigned_width = 0;           // width of the selected rectangle
  std::vector<ScheduleSegment> segments;  // sorted by begin time
  int preemptions = 0;              // number of times the test was preempted
  Time overhead_cycles = 0;         // extra cycles added by preemptions

  Time BeginTime() const { return segments.empty() ? 0 : segments.front().span.begin; }
  Time EndTime() const { return segments.empty() ? 0 : segments.back().span.end; }

  // Total scheduled cycles across all segments.
  Time ActiveTime() const;
};

// SOC-level schedule.
class Schedule {
 public:
  Schedule() = default;
  Schedule(std::string soc_name, int tam_width)
      : soc_name_(std::move(soc_name)), tam_width_(tam_width) {}

  const std::string& soc_name() const { return soc_name_; }
  int tam_width() const { return tam_width_; }

  void Add(CoreSchedule entry) { entries_.push_back(std::move(entry)); }

  const std::vector<CoreSchedule>& entries() const { return entries_; }
  std::vector<CoreSchedule>& mutable_entries() { return entries_; }

  const CoreSchedule* FindCore(CoreId core) const;

  // SOC test time: the completion time of the last test (paper: the width to
  // which the bin is filled).
  Time Makespan() const;

  // Sum over entries of active time (excludes idle TAM area).
  Time TotalActiveTime() const;

  // TAM wire-cycles actually used: sum over segments of width * length.
  std::int64_t UsedArea() const;

  // Idle wire-cycles in the bin: tam_width * makespan - used area.
  std::int64_t IdleArea() const;

  // Fraction of the bin that is doing useful work, in [0, 1].
  double Utilization() const;

  // Maximum aggregate TAM width in use at any instant.
  int PeakWidth() const;

  // Total number of preemptions across all cores.
  int TotalPreemptions() const;

 private:
  std::string soc_name_;
  int tam_width_ = 0;
  std::vector<CoreSchedule> entries_;
};

}  // namespace soctest
