// Text format for SOC test specifications, modeled on the ITC'02 SOC Test
// Benchmarks module descriptions, extended with the scheduling attributes of
// the DAC'02 paper (power, hierarchy, resources, preemption limits) and
// SOC-level constraint declarations.
//
// Grammar (line-oriented; '#' starts a comment; blank lines ignored):
//
//   soc <name>
//   core <name>
//     inputs <n>
//     outputs <n>
//     bidirs <n>
//     patterns <n>
//     scanchains <len> <len> ...        # omit or empty = combinational
//     power <n>                         # optional
//     parent <core-name>                # optional
//     resources <id> <id> ...           # optional
//     maxpreemptions <n>                # optional
//     prio <n>                          # optional, 0 (hot-lot) .. 3
//   end
//   precedence <before> < <after>       # optional, repeatable
//   concurrency <a> ~ <b>               # optional, repeatable
//   powermax <n>                        # optional
//   powerbudget <start> <pmax>          # optional, repeatable; a
//                                       # piecewise-constant budget timeline
//
// `powerbudget` declares one segment of a time-varying power budget: the cap
// is <pmax> from cycle <start> until the next segment's start (the last
// segment extends forever). Segments must be declared in strictly increasing
// start order, the first must start at cycle 0, and every pmax must be
// positive. `powermax` and `powerbudget` are mutually exclusive — a single
// static cap is just the degenerate one-segment timeline, and keeping the two
// spellings distinct lets existing files serialize byte-identically.
//
// Core declarations must precede constraint declarations that reference them.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "constraints/concurrency.h"
#include "constraints/power.h"
#include "constraints/precedence.h"
#include "soc/soc.h"

namespace soctest {

// Parse result: the SOC plus the constraint declarations resolved to core ids.
struct ParsedSoc {
  Soc soc;
  std::vector<std::pair<CoreId, CoreId>> precedence;   // (before, after)
  std::vector<std::pair<CoreId, CoreId>> concurrency;  // symmetric pairs
  std::int64_t power_max = -1;                         // -1 = not specified
  // Time-varying budget from `powerbudget` lines (empty = not specified;
  // mutually exclusive with power_max). Already validated by the parser.
  std::vector<PowerBudget::Segment> budget;
};

struct ParseError {
  int line = 0;  // 1-based line of the problem; 0 = file-level
  std::string message;
  // Source file of the failing input. ParseSocFile fills it in so multi-SOC
  // batch failures attribute to the right file; ParseSocText leaves it empty.
  std::string file;

  // "file:line: message" with the parts that are known: the file prefix only
  // when `file` is set, the line only when > 0 ("file: message" and
  // "line N: message" are the degenerate forms; a bare message otherwise).
  std::string ToString() const;
};

using ParseResult = std::variant<ParsedSoc, ParseError>;

// Parses from a string. On error returns ParseError with a line number.
ParseResult ParseSocText(const std::string& text);

// Parses from a file; file-read failures are reported as line 0 errors.
ParseResult ParseSocFile(const std::string& path);

// Serializes to the same format (round-trips through ParseSocText).
std::string SerializeSoc(const ParsedSoc& parsed);
std::string SerializeSoc(const Soc& soc);

}  // namespace soctest
