#include "soc/soc.h"

#include <unordered_set>

#include "util/strings.h"

namespace soctest {

CoreId Soc::AddCore(CoreSpec core) {
  core.id = static_cast<CoreId>(cores_.size());
  cores_.push_back(std::move(core));
  return cores_.back().id;
}

CoreId Soc::FindCore(const std::string& name) const {
  for (const auto& c : cores_) {
    if (c.name == name) return c.id;
  }
  return kNoCore;
}

std::vector<CoreId> Soc::ChildrenOf(CoreId id) const {
  std::vector<CoreId> out;
  for (const auto& c : cores_) {
    if (c.parent && *c.parent == id) out.push_back(c.id);
  }
  return out;
}

std::int64_t Soc::TotalTestBits() const {
  std::int64_t total = 0;
  for (const auto& c : cores_) total += c.TotalTestBits();
  return total;
}

std::optional<std::string> Soc::Validate() const {
  if (name_.empty()) return "SOC has an empty name";
  if (cores_.empty()) return "SOC has no cores";

  std::unordered_set<std::string> names;
  for (const auto& c : cores_) {
    if (auto problem = c.Validate()) return problem;
    if (!names.insert(c.name).second) {
      return StrFormat("duplicate core name '%s'", c.name.c_str());
    }
  }
  for (const auto& c : cores_) {
    if (!c.parent) continue;
    if (*c.parent < 0 || *c.parent >= num_cores()) {
      return StrFormat("core '%s': parent id %d out of range", c.name.c_str(),
                       *c.parent);
    }
    if (*c.parent == c.id) {
      return StrFormat("core '%s': is its own parent", c.name.c_str());
    }
  }
  // Hierarchy must be acyclic: walk parent links with a visited set.
  for (const auto& c : cores_) {
    std::unordered_set<CoreId> seen;
    CoreId cur = c.id;
    while (true) {
      if (!seen.insert(cur).second) {
        return StrFormat("hierarchy cycle involving core '%s'", c.name.c_str());
      }
      const auto& parent = cores_[static_cast<std::size_t>(cur)].parent;
      if (!parent) break;
      cur = *parent;
    }
  }
  return std::nullopt;
}

}  // namespace soctest
