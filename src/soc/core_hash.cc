#include "soc/core_hash.h"

#include "util/strings.h"

namespace soctest {
namespace {

// FNV-1a over the canonical text, then the four w_max bytes — the same
// mixing discipline as CompiledProblemCache::KeyHash, with a caller-chosen
// offset basis so two seeds yield independent 64-bit digests.
std::uint64_t Fnv1a(const std::string& text, int w_max, std::uint64_t basis) {
  std::uint64_t h = basis;
  const auto mix = [&h](unsigned char byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (const char c : text) mix(static_cast<unsigned char>(c));
  for (int i = 0; i < 4; ++i) {
    mix(static_cast<unsigned char>((static_cast<unsigned>(w_max) >> (8 * i)) &
                                   0xff));
  }
  return h;
}

}  // namespace

std::string CanonicalCoreText(const CoreSpec& core) {
  std::string out =
      StrFormat("io %d %d %d\npatterns %lld\nchains", core.num_inputs,
                core.num_outputs, core.num_bidirs,
                static_cast<long long>(core.num_patterns));
  for (const int len : core.scan_chain_lengths) out += StrFormat(" %d", len);
  out += '\n';
  return out;
}

CoreHash128 CoreContentHash(const std::string& canonical, int w_max) {
  return {Fnv1a(canonical, w_max, 14695981039346656037ull),
          Fnv1a(canonical, w_max, 0x9e3779b97f4a7c15ull)};
}

CoreHash128 CoreContentHash(const CoreSpec& core, int w_max) {
  return CoreContentHash(CanonicalCoreText(core), w_max);
}

}  // namespace soctest
