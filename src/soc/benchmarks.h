// Embedded benchmark SOCs.
//
// d695 is reconstructed from the publicly documented ITC'02 SOC Test
// Benchmark parameters (ten ISCAS-85/89 cores with their terminal, pattern,
// and scan-chain statistics; per-chain length splits are near-equal
// partitions of the published flip-flop totals). The three Philips
// industrial SOCs are NOT redistributable, so p22810s/p34392s/p93791s are
// deterministic synthetic stand-ins matched to the published scale of each
// design: core count, hierarchy, total test-data volume, and (for p34392s)
// the dominant bottleneck core that pins the SOC test time at W >= 32.
// See DESIGN.md for the substitution rationale.
#pragma once

#include <string>
#include <vector>

#include "core/problem.h"
#include "soc/soc.h"
#include "soc/soc_parser.h"

namespace soctest {

// Academic benchmark (Duke University), 10 cores.
Soc MakeD695();

// Synthetic stand-ins for the Philips industrial SOCs.
Soc MakeP22810s();  // ~28 cores, ~15 Mbit total test data
Soc MakeP34392s();  // ~19 cores, ~34 Mbit, with a bottleneck core
Soc MakeP93791s();  // ~32 cores, ~60 Mbit

// All four, in paper order (d695, p22810s, p34392s, p93791s).
std::vector<Soc> AllBenchmarkSocs();

// Looks a benchmark up by name; returns an empty SOC (0 cores) when unknown.
Soc BenchmarkByName(const std::string& name);

// Resolves an SOC spec token (the <soc> argument of soctest_cli and the
// batch request format) to a parsed SOC:
//   "bench:<name>"  an embedded benchmark, by name only;
//   "file:<path>"   a .soc file, by path only;
//   anything else   an existing file on disk first, the benchmark table
//                   second — so a local file named `d695` is loaded, not
//                   silently shadowed by the embedded benchmark.
ParseResult LoadSocSpec(const std::string& spec);

// The Table-1 experiment configuration for a benchmark SOC:
//  * preemption budget 2 for the larger cores (paper Section 6),
//  * the paper's power model (power = bits/pattern, Pmax = 1.5 * peak),
//  * hierarchy-derived concurrency constraints.
TestProblem MakeBenchmarkProblem(Soc soc, bool with_power_budget);

}  // namespace soctest
