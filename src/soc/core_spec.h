// Per-core test specification — the inputs of the wrapper/TAM co-optimization.
//
// This mirrors the ITC'02 SOC Test Benchmarks module description: functional
// terminal counts, scan structure (fixed-length internal scan chains, per the
// paper's assumption), pattern count, plus the scheduling-related attributes
// used by Problem 2 of the paper (power, hierarchy, BIST resources,
// preemptability).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace soctest {

using CoreId = int;

inline constexpr CoreId kNoCore = -1;

struct CoreSpec {
  CoreId id = kNoCore;
  std::string name;

  // Functional (non-scan) terminals. Bidirectional terminals need a wrapper
  // cell on both the scan-in and scan-out paths.
  int num_inputs = 0;
  int num_outputs = 0;
  int num_bidirs = 0;

  // Number of scan test patterns to apply through the wrapper.
  std::int64_t num_patterns = 0;

  // Lengths (in flip-flops) of the core's internal scan chains. Empty for
  // purely combinational cores. Lengths are fixed (paper Section 3).
  std::vector<int> scan_chain_lengths;

  // Test power dissipation (arbitrary units). The paper uses a hypothetical
  // value proportional to the test-data bits per pattern; PowerModel can
  // derive that automatically when this is 0.
  std::int64_t power = 0;

  // Hierarchical parent core (Intest of the parent conflicts with Intest of
  // the children, because child wrappers must be in Extest mode).
  std::optional<CoreId> parent;

  // Identifiers of shared test resources (e.g. an on-chip BIST engine). Two
  // cores sharing a resource id must not be tested concurrently.
  std::vector<int> resources;

  // Maximum number of preemptions the integrator allows for this core's test.
  // 0 = non-preemptable (the default, matching non-preemptive scheduling).
  int max_preemptions = 0;

  // Priority class for admission ordering: 0 = hot-lot (most urgent) through
  // 3 = best-effort. The scheduler admits higher classes (lower values) first
  // at every contention point; within a class the paper's heuristic order is
  // unchanged. Like power and preemptability, this is a scheduling attribute:
  // it does NOT participate in the core's canonical text (soc/core_hash.h),
  // so a priority edit keeps compiled wrapper artifacts cached.
  int prio = 0;

  // --- Derived quantities -------------------------------------------------

  // Total internal scan flip-flops.
  std::int64_t TotalScanCells() const;

  // Wrapper scan-in cells = functional inputs + bidirs; scan-out likewise.
  int ScanInIoCells() const { return num_inputs + num_bidirs; }
  int ScanOutIoCells() const { return num_outputs + num_bidirs; }

  // Test data bits per pattern: every pattern shifts in (inputs + bidirs +
  // scan cells) stimulus bits and shifts out (outputs + bidirs + scan cells)
  // response bits.
  std::int64_t BitsPerPattern() const;

  // Total stimulus + response bits across all patterns — the core's tester
  // data footprint, independent of wrapper width.
  std::int64_t TotalTestBits() const;

  // Upper bound on a useful wrapper/TAM width for this core: one wrapper
  // chain per internal scan chain plus one per I/O cell is never beneficial
  // to exceed.
  int MaxUsefulWidth() const;

  // Returns a human-readable description of the first structural problem, or
  // nullopt if the spec is well-formed (non-negative counts, positive chain
  // lengths, at least one of {patterns with terminals/scan}).
  std::optional<std::string> Validate() const;
};

}  // namespace soctest
