#include "soc/core_spec.h"

#include <algorithm>
#include <numeric>

#include "util/strings.h"

namespace soctest {

std::int64_t CoreSpec::TotalScanCells() const {
  return std::accumulate(scan_chain_lengths.begin(), scan_chain_lengths.end(),
                         std::int64_t{0});
}

std::int64_t CoreSpec::BitsPerPattern() const {
  const std::int64_t scan = TotalScanCells();
  const std::int64_t in_bits = ScanInIoCells() + scan;
  const std::int64_t out_bits = ScanOutIoCells() + scan;
  return in_bits + out_bits;
}

std::int64_t CoreSpec::TotalTestBits() const {
  return BitsPerPattern() * num_patterns;
}

int CoreSpec::MaxUsefulWidth() const {
  const auto chains = static_cast<int>(scan_chain_lengths.size());
  const int io = std::max(ScanInIoCells(), ScanOutIoCells());
  return std::max(1, chains + io);
}

std::optional<std::string> CoreSpec::Validate() const {
  if (name.empty()) return "core has an empty name";
  if (num_inputs < 0 || num_outputs < 0 || num_bidirs < 0) {
    return StrFormat("core '%s': negative terminal count", name.c_str());
  }
  if (num_patterns <= 0) {
    return StrFormat("core '%s': pattern count must be positive", name.c_str());
  }
  for (int len : scan_chain_lengths) {
    if (len <= 0) {
      return StrFormat("core '%s': scan chain length must be positive", name.c_str());
    }
  }
  if (num_inputs + num_outputs + num_bidirs == 0 && scan_chain_lengths.empty()) {
    return StrFormat("core '%s': no terminals and no scan chains", name.c_str());
  }
  if (power < 0) return StrFormat("core '%s': negative power", name.c_str());
  if (max_preemptions < 0) {
    return StrFormat("core '%s': negative preemption limit", name.c_str());
  }
  if (prio < 0 || prio > 3) {
    return StrFormat("core '%s': priority class must be in [0, 3]",
                     name.c_str());
  }
  return std::nullopt;
}

}  // namespace soctest
