// Deterministic synthetic SOC generation.
//
// Two uses:
//  * building the scaled stand-ins for the Philips industrial SOCs whose
//    ITC'02 data files are not redistributable (see DESIGN.md), and
//  * fuzzing inputs for the property-based test suites.
#pragma once

#include <cstdint>
#include <string>

#include "constraints/power.h"
#include "soc/soc.h"
#include "util/interval.h"
#include "util/rng.h"

namespace soctest {

struct GeneratorParams {
  std::string name = "synthetic";
  std::uint64_t seed = 1;

  int num_cores = 10;

  // Terminal count ranges.
  int min_inputs = 8;
  int max_inputs = 256;
  int min_outputs = 8;
  int max_outputs = 256;
  double bidir_probability = 0.15;  // per core: some bidirectional pins
  int max_bidirs = 32;

  // Pattern count range (log-uniform-ish: favors smaller counts).
  std::int64_t min_patterns = 10;
  std::int64_t max_patterns = 1200;

  // Scan structure. A core is combinational with this probability; otherwise
  // it gets [min_chains, max_chains] chains of [min_chain_len, max_chain_len]
  // flip-flops.
  double combinational_probability = 0.15;
  int min_chains = 1;
  int max_chains = 32;
  int min_chain_len = 8;
  int max_chain_len = 200;

  // Hierarchy: probability that a core (other than the first) is nested
  // under a previously generated core.
  double child_probability = 0.0;

  // Shared BIST resources: number of distinct resource ids handed out, and
  // the probability a core uses one.
  int num_resources = 0;
  double resource_probability = 0.0;

  // Preemption budget given to every generated core.
  int max_preemptions = 0;

  // Priority classes: with the default 1 every core keeps prio 0 (uniform —
  // and no RNG draw happens, so existing seeds generate byte-identical SOCs).
  // With k > 1, each core draws its class uniformly from [0, min(k, 4) - 1].
  int priority_classes = 1;
};

// Generates a structurally valid SOC (Soc::Validate passes).
Soc GenerateSoc(const GeneratorParams& params);

// Scales all cores' pattern counts by `factor` (>= minimum of 1 pattern) —
// used to calibrate synthetic SOCs to a target test-data volume.
void ScalePatterns(Soc& soc, double factor);

// A throttling-window budget timeline for scenario benches and property
// tests: alternating high/low caps starting high at cycle 0, with segment
// lengths `high_span`/`low_span`, until `horizon` — after which the final
// segment restores `high` forever (so the tail of any schedule is never
// artificially capped). Requires positive caps and spans; high >= low.
PowerBudget MakeThrottleTimeline(std::int64_t high, std::int64_t low,
                                 Time high_span, Time low_span, Time horizon);

}  // namespace soctest
