#include "soc/benchmarks.h"

#include <algorithm>
#include <filesystem>

#include "soc/generator.h"
#include "util/strings.h"

namespace soctest {
namespace {

// Splits `total` flip-flops into `chains` near-equal scan chains.
std::vector<int> EvenChains(int total, int chains) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(chains));
  const int base = total / chains;
  int extra = total % chains;
  for (int i = 0; i < chains; ++i) {
    out.push_back(base + (extra-- > 0 ? 1 : 0));
  }
  return out;
}

CoreSpec IscasCore(const std::string& name, int inputs, int outputs,
                   std::int64_t patterns, int scan_ffs, int chains) {
  CoreSpec core;
  core.name = name;
  core.num_inputs = inputs;
  core.num_outputs = outputs;
  core.num_patterns = patterns;
  if (scan_ffs > 0 && chains > 0) {
    core.scan_chain_lengths = EvenChains(scan_ffs, chains);
  }
  return core;
}

}  // namespace

Soc MakeD695() {
  Soc soc("d695");
  soc.AddCore(IscasCore("c6288", 32, 32, 12, 0, 0));
  soc.AddCore(IscasCore("c7552", 207, 108, 73, 0, 0));
  soc.AddCore(IscasCore("s838", 34, 1, 75, 32, 1));
  soc.AddCore(IscasCore("s9234", 36, 39, 105, 211, 4));
  soc.AddCore(IscasCore("s38584", 38, 304, 110, 1426, 32));
  soc.AddCore(IscasCore("s13207", 62, 152, 234, 638, 16));
  soc.AddCore(IscasCore("s15850", 77, 150, 95, 534, 16));
  soc.AddCore(IscasCore("s5378", 35, 49, 97, 179, 4));
  soc.AddCore(IscasCore("s35932", 35, 320, 12, 1728, 32));
  soc.AddCore(IscasCore("s38417", 28, 106, 68, 1636, 32));
  return soc;
}

Soc MakeP22810s() {
  GeneratorParams params;
  params.name = "p22810s";
  params.seed = 22810;
  params.num_cores = 28;
  params.min_inputs = 4;
  params.max_inputs = 120;
  params.min_outputs = 4;
  params.max_outputs = 120;
  params.bidir_probability = 0.25;
  params.max_bidirs = 40;
  params.min_patterns = 12;
  params.max_patterns = 800;
  params.combinational_probability = 0.2;
  params.min_chains = 1;
  params.max_chains = 24;
  params.min_chain_len = 10;
  params.max_chain_len = 180;
  params.child_probability = 0.12;
  Soc soc = GenerateSoc(params);
  // Calibrate to roughly 15 Mbit of total test data (2x the published
  // tester-memory minimum of ~7.4 Mbit; see DESIGN.md).
  const double target_bits = 15.0e6;
  ScalePatterns(soc, target_bits / static_cast<double>(soc.TotalTestBits()));
  return soc;
}

Soc MakeP34392s() {
  GeneratorParams params;
  params.name = "p34392s";
  params.seed = 34392;
  params.num_cores = 18;  // +1 bottleneck core added below
  params.min_inputs = 8;
  params.max_inputs = 160;
  params.min_outputs = 8;
  params.max_outputs = 160;
  params.bidir_probability = 0.2;
  params.max_bidirs = 48;
  params.min_patterns = 20;
  params.max_patterns = 900;
  params.combinational_probability = 0.1;
  params.min_chains = 2;
  params.max_chains = 28;
  params.min_chain_len = 16;
  params.max_chain_len = 220;
  params.child_probability = 0.1;
  Soc soc = GenerateSoc(params);
  // Calibrated so that the area lower bound at W=28..32 falls below the
  // bottleneck core's 541k-cycle floor — like the real p34392, whose test
  // time saturates at Core 18's minimum for W >= 28 (paper Table 1).
  const double target_bits = 21.0e6;
  ScalePatterns(soc, target_bits / static_cast<double>(soc.TotalTestBits()));

  // The bottleneck core: p34392's Core 18 pins the SOC test time to ~544579
  // cycles for every W >= its top Pareto width of 10 (paper Section 4). Ten
  // long chains + a high pattern count reproduce that saturation behaviour:
  // T(10) = (1 + 600) * 900 + 600 = 541 500, and no wider TAM helps.
  CoreSpec bottleneck;
  bottleneck.name = "core18_bottleneck";
  bottleneck.num_inputs = 40;
  bottleneck.num_outputs = 30;
  bottleneck.num_patterns = 900;
  bottleneck.scan_chain_lengths.assign(10, 600);
  soc.AddCore(std::move(bottleneck));
  return soc;
}

Soc MakeP93791s() {
  GeneratorParams params;
  params.name = "p93791s";
  params.seed = 93791;
  params.num_cores = 32;
  params.min_inputs = 8;
  params.max_inputs = 220;
  params.min_outputs = 8;
  params.max_outputs = 220;
  params.bidir_probability = 0.3;
  params.max_bidirs = 64;
  params.min_patterns = 20;
  params.max_patterns = 1500;
  params.combinational_probability = 0.12;
  params.min_chains = 2;
  params.max_chains = 40;
  params.min_chain_len = 20;
  params.max_chain_len = 260;
  params.child_probability = 0.15;
  Soc soc = GenerateSoc(params);
  const double target_bits = 60.0e6;
  ScalePatterns(soc, target_bits / static_cast<double>(soc.TotalTestBits()));
  return soc;
}

std::vector<Soc> AllBenchmarkSocs() {
  std::vector<Soc> out;
  out.push_back(MakeD695());
  out.push_back(MakeP22810s());
  out.push_back(MakeP34392s());
  out.push_back(MakeP93791s());
  return out;
}

Soc BenchmarkByName(const std::string& name) {
  if (name == "d695") return MakeD695();
  if (name == "p22810s" || name == "p22810") return MakeP22810s();
  if (name == "p34392s" || name == "p34392") return MakeP34392s();
  if (name == "p93791s" || name == "p93791") return MakeP93791s();
  return Soc();
}

ParseResult LoadSocSpec(const std::string& spec) {
  const auto embedded = [](const std::string& name) -> ParseResult {
    Soc soc = BenchmarkByName(name);
    if (soc.num_cores() == 0) {
      return ParseError{0, StrFormat("unknown benchmark '%s'", name.c_str()),
                        name};
    }
    ParsedSoc parsed;
    parsed.soc = std::move(soc);
    return parsed;
  };
  if (StartsWith(spec, "bench:")) return embedded(spec.substr(6));
  if (StartsWith(spec, "file:")) return ParseSocFile(spec.substr(5));

  // Bare token: an existing file wins over an embedded benchmark of the same
  // name (use the explicit prefixes to force either resolution).
  std::error_code ec;
  if (std::filesystem::is_regular_file(spec, ec)) return ParseSocFile(spec);
  if (Soc soc = BenchmarkByName(spec); soc.num_cores() > 0) {
    ParsedSoc parsed;
    parsed.soc = std::move(soc);
    return parsed;
  }
  return ParseError{
      0,
      StrFormat("'%s' is neither an embedded benchmark nor a readable .soc "
                "file", spec.c_str()),
      spec};
}

TestProblem MakeBenchmarkProblem(Soc soc, bool with_power_budget) {
  // Preemption budget 2 for the "larger" cores: those whose minimum test
  // data volume is above the SOC median (paper Section 6 sets the limit for
  // the larger cores only; short tests lose more to flush overhead than they
  // gain from preemption).
  std::vector<std::int64_t> bits;
  bits.reserve(static_cast<std::size_t>(soc.num_cores()));
  for (const auto& core : soc.cores()) bits.push_back(core.TotalTestBits());
  std::vector<std::int64_t> sorted = bits;
  std::sort(sorted.begin(), sorted.end());
  const std::int64_t median = sorted[sorted.size() / 2];
  for (int i = 0; i < soc.num_cores(); ++i) {
    soc.mutable_core(i).max_preemptions =
        bits[static_cast<std::size_t>(i)] >= median ? 2 : 0;
  }

  TestProblem problem = TestProblem::FromSoc(std::move(soc));
  if (with_power_budget) {
    problem.power = PowerModel::FromSoc(problem.soc, /*budget_factor=*/1.5);
  }
  return problem;
}

}  // namespace soctest
