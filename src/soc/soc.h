// The system-on-chip under test: a named collection of cores plus the
// SOC-level constraints (hierarchy is stored on the cores; precedence and
// concurrency constraints live in constraints/).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "soc/core_spec.h"

namespace soctest {

class Soc {
 public:
  Soc() = default;
  explicit Soc(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Adds a core; its id is assigned (= index) and returned.
  CoreId AddCore(CoreSpec core);

  int num_cores() const { return static_cast<int>(cores_.size()); }
  const std::vector<CoreSpec>& cores() const { return cores_; }

  const CoreSpec& core(CoreId id) const { return cores_.at(static_cast<std::size_t>(id)); }
  CoreSpec& mutable_core(CoreId id) { return cores_.at(static_cast<std::size_t>(id)); }

  // Finds a core by name; kNoCore if absent.
  CoreId FindCore(const std::string& name) const;

  // Direct children of `id` in the design hierarchy.
  std::vector<CoreId> ChildrenOf(CoreId id) const;

  // Total test-data bits over all cores (sum of CoreSpec::TotalTestBits).
  std::int64_t TotalTestBits() const;

  // Structural validation: per-core validity, unique names, parent ids in
  // range, hierarchy acyclic. Returns the first problem found.
  std::optional<std::string> Validate() const;

 private:
  std::string name_;
  std::vector<CoreSpec> cores_;
};

}  // namespace soctest
