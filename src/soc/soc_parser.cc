#include "soc/soc_parser.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace soctest {
namespace {

struct PendingEdge {
  std::string a;
  std::string b;
  int line = 0;
};

ParseError Err(int line, std::string message) {
  return ParseError{line, std::move(message), /*file=*/{}};
}

// Parses "key value..." core attribute lines. Returns an error message or "".
std::string ApplyCoreAttribute(CoreSpec& core, const std::string& key,
                               const std::vector<std::string>& args,
                               std::vector<std::string>* parent_names) {
  auto one_int = [&args](std::int64_t& out) -> bool {
    if (args.size() != 1) return false;
    const auto v = ParseInt(args[0]);
    if (!v) return false;
    out = *v;
    return true;
  };

  std::int64_t value = 0;
  if (key == "inputs") {
    if (!one_int(value) || value < 0) return "inputs expects one non-negative integer";
    core.num_inputs = static_cast<int>(value);
  } else if (key == "outputs") {
    if (!one_int(value) || value < 0) return "outputs expects one non-negative integer";
    core.num_outputs = static_cast<int>(value);
  } else if (key == "bidirs") {
    if (!one_int(value) || value < 0) return "bidirs expects one non-negative integer";
    core.num_bidirs = static_cast<int>(value);
  } else if (key == "patterns") {
    if (!one_int(value) || value <= 0) return "patterns expects one positive integer";
    core.num_patterns = value;
  } else if (key == "power") {
    if (!one_int(value) || value < 0) return "power expects one non-negative integer";
    core.power = value;
  } else if (key == "maxpreemptions") {
    if (!one_int(value) || value < 0) {
      return "maxpreemptions expects one non-negative integer";
    }
    core.max_preemptions = static_cast<int>(value);
  } else if (key == "prio") {
    if (!one_int(value) || value < 0 || value > 3) {
      return "prio expects one integer in [0, 3]";
    }
    core.prio = static_cast<int>(value);
  } else if (key == "scanchains") {
    core.scan_chain_lengths.clear();
    for (const auto& a : args) {
      const auto len = ParseInt(a);
      if (!len || *len <= 0) return "scanchains expects positive integer lengths";
      core.scan_chain_lengths.push_back(static_cast<int>(*len));
    }
  } else if (key == "resources") {
    core.resources.clear();
    for (const auto& a : args) {
      const auto id = ParseInt(a);
      if (!id) return "resources expects integer ids";
      core.resources.push_back(static_cast<int>(*id));
    }
  } else if (key == "parent") {
    if (args.size() != 1) return "parent expects one core name";
    parent_names->back() = args[0];
  } else {
    return StrFormat("unknown core attribute '%s'", key.c_str());
  }
  return "";
}

}  // namespace

std::string ParseError::ToString() const {
  if (!file.empty()) {
    if (line > 0) {
      return StrFormat("%s:%d: %s", file.c_str(), line, message.c_str());
    }
    return StrFormat("%s: %s", file.c_str(), message.c_str());
  }
  if (line > 0) return StrFormat("line %d: %s", line, message.c_str());
  return message;
}

ParseResult ParseSocText(const std::string& text) {
  ParsedSoc out;
  bool have_soc = false;
  bool in_core = false;
  CoreSpec current;
  // Parallel to cores as they are added: textual parent name ("" = none).
  std::vector<std::string> parent_names;
  std::vector<PendingEdge> precedence_edges;
  std::vector<PendingEdge> concurrency_edges;

  const std::vector<std::string> lines = SplitLines(text);
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const int line_no = static_cast<int>(li) + 1;
    std::string line = lines[li];
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    const auto tokens = SplitWhitespace(line);
    if (tokens.empty()) continue;
    const std::string key = ToLower(tokens[0]);
    const std::vector<std::string> args(tokens.begin() + 1, tokens.end());

    if (key == "soc") {
      if (have_soc) return Err(line_no, "duplicate 'soc' declaration");
      if (args.size() != 1) return Err(line_no, "soc expects one name");
      out.soc.set_name(args[0]);
      have_soc = true;
      continue;
    }
    if (!have_soc) return Err(line_no, "expected 'soc <name>' first");

    if (key == "core") {
      if (in_core) return Err(line_no, "nested 'core' (missing 'end'?)");
      if (args.size() != 1) return Err(line_no, "core expects one name");
      if (out.soc.FindCore(args[0]) != kNoCore) {
        return Err(line_no, StrFormat("duplicate core '%s'", args[0].c_str()));
      }
      in_core = true;
      current = CoreSpec{};
      current.name = args[0];
      parent_names.emplace_back();
      continue;
    }
    if (key == "end") {
      if (!in_core) return Err(line_no, "'end' outside a core block");
      if (!args.empty()) return Err(line_no, "'end' takes no arguments");
      out.soc.AddCore(current);
      in_core = false;
      continue;
    }
    if (in_core) {
      const std::string problem = ApplyCoreAttribute(current, key, args, &parent_names);
      if (!problem.empty()) return Err(line_no, problem);
      continue;
    }

    if (key == "precedence" || key == "concurrency") {
      // Forms: "precedence a < b" / "concurrency a ~ b".
      const char* sep = key == "precedence" ? "<" : "~";
      if (args.size() != 3 || args[1] != sep) {
        return Err(line_no,
                   StrFormat("%s expects '<a> %s <b>'", key.c_str(), sep));
      }
      PendingEdge edge{args[0], args[2], line_no};
      (key == "precedence" ? precedence_edges : concurrency_edges)
          .push_back(std::move(edge));
      continue;
    }
    if (key == "powermax") {
      if (args.size() != 1) return Err(line_no, "powermax expects one integer");
      const auto v = ParseInt(args[0]);
      if (!v || *v <= 0) return Err(line_no, "powermax expects a positive integer");
      if (!out.budget.empty()) {
        return Err(line_no, "powermax and powerbudget are mutually exclusive");
      }
      out.power_max = *v;
      continue;
    }
    if (key == "powerbudget") {
      if (args.size() != 2) {
        return Err(line_no, "powerbudget expects '<start> <pmax>'");
      }
      const auto start = ParseInt(args[0]);
      const auto pmax = ParseInt(args[1]);
      if (!start || *start < 0) {
        return Err(line_no, "powerbudget start must be a non-negative integer");
      }
      if (!pmax || *pmax <= 0) {
        return Err(line_no, "powerbudget pmax must be a positive integer");
      }
      if (out.power_max > 0) {
        return Err(line_no, "powermax and powerbudget are mutually exclusive");
      }
      if (out.budget.empty() && *start != 0) {
        return Err(line_no, "first powerbudget segment must start at cycle 0");
      }
      if (!out.budget.empty() && *start <= out.budget.back().start) {
        return Err(line_no,
                   "powerbudget segments must be declared in increasing "
                   "start order");
      }
      out.budget.push_back({*start, *pmax});
      continue;
    }
    return Err(line_no, StrFormat("unknown directive '%s'", key.c_str()));
  }

  if (in_core) return Err(0, StrFormat("core '%s' not closed with 'end'", current.name.c_str()));
  if (!have_soc) return Err(0, "no 'soc' declaration found");

  // Resolve parents.
  for (CoreId id = 0; id < out.soc.num_cores(); ++id) {
    const std::string& pname = parent_names[static_cast<std::size_t>(id)];
    if (pname.empty()) continue;
    const CoreId parent = out.soc.FindCore(pname);
    if (parent == kNoCore) {
      return Err(0, StrFormat("core '%s': unknown parent '%s'",
                              out.soc.core(id).name.c_str(), pname.c_str()));
    }
    out.soc.mutable_core(id).parent = parent;
  }

  // Resolve constraint edges.
  auto resolve = [&out](const std::vector<PendingEdge>& edges,
                        std::vector<std::pair<CoreId, CoreId>>& dst)
      -> std::optional<ParseError> {
    for (const auto& e : edges) {
      const CoreId a = out.soc.FindCore(e.a);
      const CoreId b = out.soc.FindCore(e.b);
      if (a == kNoCore) return Err(e.line, StrFormat("unknown core '%s'", e.a.c_str()));
      if (b == kNoCore) return Err(e.line, StrFormat("unknown core '%s'", e.b.c_str()));
      if (a == b) return Err(e.line, "constraint relates a core to itself");
      dst.emplace_back(a, b);
    }
    return std::nullopt;
  };
  if (auto err = resolve(precedence_edges, out.precedence)) return *err;
  if (auto err = resolve(concurrency_edges, out.concurrency)) return *err;

  if (auto problem = out.soc.Validate()) return Err(0, *problem);

  // Reject cyclic precedence right away: such inputs are unschedulable.
  PrecedenceGraph graph(out.soc.num_cores());
  for (const auto& [a, b] : out.precedence) graph.Add(a, b);
  if (graph.HasCycle()) return Err(0, "precedence constraints form a cycle");

  return out;
}

ParseResult ParseSocFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return ParseError{0, "cannot open file", path};
  std::ostringstream ss;
  ss << f.rdbuf();
  ParseResult result = ParseSocText(ss.str());
  // Annotate every text-level error with its source file so callers juggling
  // many SOCs (the batch-serving layer) can attribute failures.
  if (auto* err = std::get_if<ParseError>(&result)) err->file = path;
  return result;
}

std::string SerializeSoc(const ParsedSoc& parsed) {
  const Soc& soc = parsed.soc;
  std::string out = StrFormat("soc %s\n", soc.name().c_str());
  for (const auto& core : soc.cores()) {
    out += StrFormat("core %s\n", core.name.c_str());
    out += StrFormat("  inputs %d\n", core.num_inputs);
    out += StrFormat("  outputs %d\n", core.num_outputs);
    if (core.num_bidirs != 0) out += StrFormat("  bidirs %d\n", core.num_bidirs);
    out += StrFormat("  patterns %lld\n", static_cast<long long>(core.num_patterns));
    if (!core.scan_chain_lengths.empty()) {
      out += "  scanchains";
      for (int len : core.scan_chain_lengths) out += StrFormat(" %d", len);
      out += '\n';
    }
    if (core.power != 0) {
      out += StrFormat("  power %lld\n", static_cast<long long>(core.power));
    }
    if (core.parent) {
      out += StrFormat("  parent %s\n", soc.core(*core.parent).name.c_str());
    }
    if (!core.resources.empty()) {
      out += "  resources";
      for (int r : core.resources) out += StrFormat(" %d", r);
      out += '\n';
    }
    if (core.max_preemptions != 0) {
      out += StrFormat("  maxpreemptions %d\n", core.max_preemptions);
    }
    if (core.prio != 0) {
      out += StrFormat("  prio %d\n", core.prio);
    }
    out += "end\n";
  }
  for (const auto& [a, b] : parsed.precedence) {
    out += StrFormat("precedence %s < %s\n", soc.core(a).name.c_str(),
                     soc.core(b).name.c_str());
  }
  for (const auto& [a, b] : parsed.concurrency) {
    out += StrFormat("concurrency %s ~ %s\n", soc.core(a).name.c_str(),
                     soc.core(b).name.c_str());
  }
  if (parsed.power_max > 0) {
    out += StrFormat("powermax %lld\n", static_cast<long long>(parsed.power_max));
  }
  for (const auto& segment : parsed.budget) {
    out += StrFormat("powerbudget %lld %lld\n",
                     static_cast<long long>(segment.start),
                     static_cast<long long>(segment.pmax));
  }
  return out;
}

std::string SerializeSoc(const Soc& soc) {
  ParsedSoc parsed;
  parsed.soc = soc;
  return SerializeSoc(parsed);
}

}  // namespace soctest
