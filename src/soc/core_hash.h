// Canonical per-core serialization + 128-bit content hash — the cache
// identity of one core's COMPILED wrapper artifacts (core/compiled_core.h)
// in the core-artifact cache (service/core_cache.h).
//
// The wrapper pipeline consumes only a core's functional terminal counts,
// pattern count, and internal scan-chain lengths (wrapper/wrapper_design.h):
// the time curve T(w), scan-flush lengths, Pareto points, and rectangle set
// are pure functions of those fields plus the evaluation bound w_max. The
// canonical text therefore covers EXACTLY those fields — never the core's
// name, id, power, hierarchy parent, resource ids, preemption budget, or
// priority class (CoreSpec::prio), which shape scheduling but not the
// compiled artifacts. Consequences, both intentional:
//
//   * two cores agreeing on the canonical text share compiled artifacts
//     byte-for-byte, regardless of which SOC they appear in, their position
//     within it, or what they are called — this is what makes a one-core SOC
//     edit compile ~1/N of the whole-SOC cost;
//   * an edit touching only scheduling attributes (power cap, priority,
//     preemption budget, hierarchy) keeps the core's artifacts cached.
//
// Scan-chain ORDER is part of the identity: wrapper design is only known to
// be deterministic for a fixed input order, so two cores listing the same
// lengths in different orders conservatively hash apart.
//
// The 128-bit hash is two independently seeded 64-bit FNV-1a digests of
// (canonical text, w_max) — the same construction as the result cache's SOC
// content hash (service/result_cache.h). The artifact cache still compares
// canonical texts exactly on lookup, so even a full 128-bit collision can
// displace an entry but never serve the wrong artifacts.
#pragma once

#include <cstdint>
#include <string>

#include "soc/core_spec.h"

namespace soctest {

struct CoreHash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const CoreHash128&) const = default;
};

// The canonical compile-identity text of `core`: terminals, patterns, and
// scan chains only (see the contract above). Stable across releases only in
// the sense that equal texts mean equal artifacts — it is a cache key, not a
// file format.
std::string CanonicalCoreText(const CoreSpec& core);

// 128-bit content hash of (canonical text, w_max).
CoreHash128 CoreContentHash(const std::string& canonical, int w_max);
CoreHash128 CoreContentHash(const CoreSpec& core, int w_max);

}  // namespace soctest
