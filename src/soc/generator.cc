#include "soc/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/strings.h"

namespace soctest {
namespace {

// Log-uniform integer in [lo, hi]: spans orders of magnitude without the
// huge values dominating every draw.
std::int64_t LogUniform(Rng& rng, std::int64_t lo, std::int64_t hi) {
  assert(lo >= 1 && lo <= hi);
  const double llo = std::log(static_cast<double>(lo));
  const double lhi = std::log(static_cast<double>(hi));
  const double x = std::exp(llo + rng.UniformDouble() * (lhi - llo));
  return std::clamp(static_cast<std::int64_t>(std::llround(x)), lo, hi);
}

}  // namespace

Soc GenerateSoc(const GeneratorParams& params) {
  Rng rng(params.seed);
  Soc soc(params.name);

  for (int i = 0; i < std::max(1, params.num_cores); ++i) {
    CoreSpec core;
    core.name = StrFormat("core%02d", i);
    core.num_inputs =
        static_cast<int>(rng.UniformInt(params.min_inputs, params.max_inputs));
    core.num_outputs =
        static_cast<int>(rng.UniformInt(params.min_outputs, params.max_outputs));
    if (rng.Bernoulli(params.bidir_probability) && params.max_bidirs > 0) {
      core.num_bidirs = static_cast<int>(rng.UniformInt(1, params.max_bidirs));
    }
    core.num_patterns = LogUniform(rng, std::max<std::int64_t>(1, params.min_patterns),
                                   std::max(params.min_patterns, params.max_patterns));

    if (!rng.Bernoulli(params.combinational_probability)) {
      const int chains = static_cast<int>(
          rng.UniformInt(std::max(1, params.min_chains), std::max(1, params.max_chains)));
      for (int c = 0; c < chains; ++c) {
        core.scan_chain_lengths.push_back(static_cast<int>(rng.UniformInt(
            std::max(1, params.min_chain_len), std::max(1, params.max_chain_len))));
      }
    }

    if (i > 0 && rng.Bernoulli(params.child_probability)) {
      core.parent = static_cast<CoreId>(rng.UniformInt(0, i - 1));
    }
    if (params.num_resources > 0 && rng.Bernoulli(params.resource_probability)) {
      core.resources.push_back(
          static_cast<int>(rng.UniformInt(0, params.num_resources - 1)));
    }
    core.max_preemptions = params.max_preemptions;
    if (params.priority_classes > 1) {
      core.prio = static_cast<int>(
          rng.UniformInt(0, std::min(params.priority_classes, 4) - 1));
    }
    soc.AddCore(std::move(core));
  }

  assert(!soc.Validate().has_value());
  return soc;
}

PowerBudget MakeThrottleTimeline(std::int64_t high, std::int64_t low,
                                 Time high_span, Time low_span, Time horizon) {
  assert(high >= low && low > 0 && high_span > 0 && low_span > 0);
  if (horizon <= 0) return PowerBudget::Constant(high);
  std::vector<PowerBudget::Segment> segments;
  Time t = 0;
  bool is_high = true;
  while (t < horizon) {
    segments.push_back({t, is_high ? high : low});
    t += is_high ? high_span : low_span;
    is_high = !is_high;
  }
  if (segments.back().pmax != high) segments.push_back({t, high});
  // Construction above always satisfies FromSegments' invariants; fall back
  // to a constant cap rather than crash if a caller violates the requires.
  auto budget = PowerBudget::FromSegments(std::move(segments));
  return budget ? *budget : PowerBudget::Constant(high);
}

void ScalePatterns(Soc& soc, double factor) {
  for (int i = 0; i < soc.num_cores(); ++i) {
    auto& core = soc.mutable_core(i);
    const auto scaled = static_cast<std::int64_t>(
        std::llround(static_cast<double>(core.num_patterns) * factor));
    core.num_patterns = std::max<std::int64_t>(1, scaled);
  }
}

}  // namespace soctest
