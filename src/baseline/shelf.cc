#include "baseline/shelf.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace soctest {

Schedule ShelfPack(const Soc& soc, int tam_width, const ShelfOptions& options) {
  assert(tam_width >= 1);
  Schedule schedule(soc.name(), tam_width);
  const auto rects = BuildRectangleSets(soc, options.w_max, tam_width);

  // One rectangle per core: preferred width (clamped to the bin), time there.
  struct Item {
    CoreId core;
    int width;
    Time time;
  };
  std::vector<Item> items;
  items.reserve(static_cast<std::size_t>(soc.num_cores()));
  for (int c = 0; c < soc.num_cores(); ++c) {
    const auto& rect = rects[static_cast<std::size_t>(c)];
    const int pref = PreferredWidth(rect.curve(), options.preferred);
    const int width = rect.SnapWidth(std::min(pref, tam_width));
    items.push_back(Item{c, width, rect.TimeAtWidth(width)});
  }

  // Decreasing-height order, the "DH" in NFDH/FFDH. In this transposition
  // the shelf extent is the TIME axis (a shelf's length is its first item's
  // test time) and the packed dimension is TAM width, so items sort by
  // decreasing time. Later items then never extend an open shelf.
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.time != b.time) return a.time > b.time;
    if (a.width != b.width) return a.width > b.width;
    return a.core < b.core;
  });

  struct Shelf {
    Time start = 0;     // time offset of the shelf
    Time length = 0;    // longest rectangle on the shelf
    int used_width = 0; // total TAM wires consumed by the shelf's rectangles
  };
  std::vector<Shelf> shelves;

  auto place = [&schedule](const Item& item, Shelf& shelf) {
    CoreSchedule entry;
    entry.core = item.core;
    entry.assigned_width = item.width;
    entry.segments.push_back(
        ScheduleSegment{Interval{shelf.start, shelf.start + item.time}, item.width});
    schedule.Add(std::move(entry));
    shelf.used_width += item.width;
    shelf.length = std::max(shelf.length, item.time);
  };

  for (const auto& item : items) {
    Shelf* target = nullptr;
    if (options.policy == ShelfPolicy::kFirstFitDecreasingHeight) {
      for (auto& shelf : shelves) {
        if (shelf.used_width + item.width <= tam_width) {
          target = &shelf;
          break;
        }
      }
    } else if (!shelves.empty() &&
               shelves.back().used_width + item.width <= tam_width) {
      target = &shelves.back();
    }
    if (target == nullptr) {
      Shelf shelf;
      shelf.start = shelves.empty()
                        ? 0
                        : shelves.back().start + shelves.back().length;
      shelves.push_back(shelf);
      target = &shelves.back();
      // A fresh shelf always fits: item.width <= tam_width by construction.
    }
    place(item, *target);
  }

  return schedule;
}

}  // namespace soctest
