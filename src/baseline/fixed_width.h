// Fixed-width TAM architecture baseline (the method family of paper ref [12]).
//
// The total width W is explicitly partitioned into B fixed buses of widths
// w_1 + ... + w_B = W; each core is assigned to exactly one bus and the cores
// on a bus are tested serially. The SOC test time is max_b (sum of T_i(w_b)
// over the cores on bus b). The exact method enumerates all partitions of W
// into B parts and, for each partition, solves the core-to-bus assignment by
// branch-and-bound — exactly the combinatorial explosion the paper's
// rectangle-packing approach avoids (its CPU-time comparison in Section 6).
#pragma once

#include <cstdint>
#include <vector>

#include "soc/soc.h"
#include "util/interval.h"
#include "wrapper/rectangles.h"

namespace soctest {

struct FixedWidthResult {
  Time test_time = 0;                 // best makespan found
  std::vector<int> bus_widths;        // the winning partition of W
  std::vector<int> core_to_bus;       // assignment, indexed by core id
  std::int64_t partitions_tried = 0;  // enumeration effort
  std::int64_t nodes_explored = 0;    // branch-and-bound effort
};

struct FixedWidthOptions {
  int num_buses = 2;
  int w_max = 64;   // per-core width cap (matches the flexible-width runs)
  // Safety valve for the exponential search; 0 = unlimited.
  std::int64_t max_nodes = 0;
};

// Exact fixed-width optimization. Exponential in cores/buses — intended for
// small instances and for the CPU-time comparison bench.
FixedWidthResult OptimizeFixedWidth(const Soc& soc, int tam_width,
                                    const FixedWidthOptions& options);

// Greedy heuristic (largest test first onto the currently least-loaded bus),
// used as the starting incumbent for B&B and as a fast baseline by itself.
FixedWidthResult GreedyFixedWidth(const Soc& soc, int tam_width,
                                  const FixedWidthOptions& options);

}  // namespace soctest
