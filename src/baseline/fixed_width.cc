#include "baseline/fixed_width.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace soctest {
namespace {

// Test time of every core at each candidate bus width 1..W.
std::vector<std::vector<Time>> TimeTable(const Soc& soc, int tam_width,
                                         int w_max) {
  std::vector<std::vector<Time>> table(
      static_cast<std::size_t>(soc.num_cores()));
  const auto rects = BuildRectangleSets(soc, w_max, tam_width);
  for (int c = 0; c < soc.num_cores(); ++c) {
    auto& row = table[static_cast<std::size_t>(c)];
    row.resize(static_cast<std::size_t>(tam_width) + 1, 0);
    for (int w = 1; w <= tam_width; ++w) {
      row[static_cast<std::size_t>(w)] =
          rects[static_cast<std::size_t>(c)].TimeAtWidth(w);
    }
  }
  return table;
}

struct AssignContext {
  const std::vector<std::vector<Time>>* times = nullptr;
  const std::vector<int>* widths = nullptr;  // bus widths
  std::vector<int> order;                    // cores, longest-first
  std::vector<Time> load;                    // per-bus accumulated time
  std::vector<int> assignment;               // per-core bus (by core id)
  std::vector<int> best_assignment;
  Time best = 0;
  std::int64_t nodes = 0;
  std::int64_t max_nodes = 0;
  bool truncated = false;
};

void Branch(AssignContext& ctx, std::size_t depth) {
  if (ctx.max_nodes > 0 && ctx.nodes >= ctx.max_nodes) {
    ctx.truncated = true;
    return;
  }
  ++ctx.nodes;
  if (depth == ctx.order.size()) {
    const Time makespan = *std::max_element(ctx.load.begin(), ctx.load.end());
    if (makespan < ctx.best) {
      ctx.best = makespan;
      ctx.best_assignment = ctx.assignment;
    }
    return;
  }
  const int core = ctx.order[depth];
  // Symmetry breaking: buses with equal width and equal current load are
  // interchangeable; try only the first of each equivalence class.
  for (std::size_t b = 0; b < ctx.load.size(); ++b) {
    bool duplicate = false;
    for (std::size_t b2 = 0; b2 < b; ++b2) {
      if ((*ctx.widths)[b2] == (*ctx.widths)[b] && ctx.load[b2] == ctx.load[b]) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    const Time t = (*ctx.times)[static_cast<std::size_t>(core)]
                               [static_cast<std::size_t>((*ctx.widths)[b])];
    if (ctx.load[b] + t >= ctx.best) continue;  // bound
    ctx.load[b] += t;
    ctx.assignment[static_cast<std::size_t>(core)] = static_cast<int>(b);
    Branch(ctx, depth + 1);
    ctx.load[b] -= t;
  }
}

// Greedy longest-processing-time assignment for a fixed partition.
Time GreedyAssign(const std::vector<std::vector<Time>>& times,
                  const std::vector<int>& widths,
                  std::vector<int>* assignment_out) {
  const std::size_t n = times.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    // Sort by time at the widest bus (a stable proxy for size).
    const std::size_t w = widths.empty() ? 1 : static_cast<std::size_t>(
        *std::max_element(widths.begin(), widths.end()));
    return times[static_cast<std::size_t>(a)][w] >
           times[static_cast<std::size_t>(b)][w];
  });
  std::vector<Time> load(widths.size(), 0);
  std::vector<int> assignment(n, 0);
  for (int core : order) {
    std::size_t best_bus = 0;
    Time best_finish = -1;
    for (std::size_t b = 0; b < widths.size(); ++b) {
      const Time finish =
          load[b] + times[static_cast<std::size_t>(core)]
                         [static_cast<std::size_t>(widths[b])];
      if (best_finish < 0 || finish < best_finish) {
        best_finish = finish;
        best_bus = b;
      }
    }
    load[best_bus] += times[static_cast<std::size_t>(core)]
                           [static_cast<std::size_t>(widths[best_bus])];
    assignment[static_cast<std::size_t>(core)] = static_cast<int>(best_bus);
  }
  if (assignment_out != nullptr) *assignment_out = assignment;
  return *std::max_element(load.begin(), load.end());
}

// Enumerates non-increasing partitions of `total` into exactly `parts`
// positive parts, invoking fn(partition).
template <typename Fn>
void ForEachPartition(int total, int parts, Fn&& fn) {
  std::vector<int> current(static_cast<std::size_t>(parts));
  auto rec = [&](auto&& self, int remaining, int index, int limit) -> void {
    if (index == parts - 1) {
      if (remaining >= 1 && remaining <= limit) {
        current[static_cast<std::size_t>(index)] = remaining;
        fn(current);
      }
      return;
    }
    const int slots_left = parts - index - 1;
    for (int v = std::min(limit, remaining - slots_left); v >= 1; --v) {
      // Each later part is <= v, so we need remaining - v <= v * slots_left.
      if (remaining - v > v * slots_left) break;
      current[static_cast<std::size_t>(index)] = v;
      self(self, remaining - v, index + 1, v);
    }
  };
  if (parts >= 1 && total >= parts) rec(rec, total, 0, total);
}

}  // namespace

FixedWidthResult GreedyFixedWidth(const Soc& soc, int tam_width,
                                  const FixedWidthOptions& options) {
  assert(tam_width >= options.num_buses && options.num_buses >= 1);
  const auto times = TimeTable(soc, tam_width, options.w_max);

  FixedWidthResult best;
  ForEachPartition(tam_width, options.num_buses,
                   [&](const std::vector<int>& widths) {
                     ++best.partitions_tried;
                     std::vector<int> assignment;
                     const Time t = GreedyAssign(times, widths, &assignment);
                     if (best.test_time == 0 || t < best.test_time) {
                       best.test_time = t;
                       best.bus_widths = widths;
                       best.core_to_bus = std::move(assignment);
                     }
                   });
  return best;
}

FixedWidthResult OptimizeFixedWidth(const Soc& soc, int tam_width,
                                    const FixedWidthOptions& options) {
  assert(tam_width >= options.num_buses && options.num_buses >= 1);
  const auto times = TimeTable(soc, tam_width, options.w_max);

  // Longest-first exploration order sharpens the bound early.
  FixedWidthResult best;
  best.test_time = 0;

  ForEachPartition(tam_width, options.num_buses, [&](const std::vector<int>& widths) {
    ++best.partitions_tried;
    AssignContext ctx;
    ctx.times = &times;
    ctx.widths = &widths;
    ctx.order.resize(times.size());
    std::iota(ctx.order.begin(), ctx.order.end(), 0);
    const auto widest = static_cast<std::size_t>(
        *std::max_element(widths.begin(), widths.end()));
    std::sort(ctx.order.begin(), ctx.order.end(), [&](int a, int b) {
      return times[static_cast<std::size_t>(a)][widest] >
             times[static_cast<std::size_t>(b)][widest];
    });
    ctx.load.assign(widths.size(), 0);
    ctx.assignment.assign(times.size(), 0);
    std::vector<int> greedy_assignment;
    ctx.best = GreedyAssign(times, widths, &greedy_assignment) + 1;
    ctx.best_assignment = greedy_assignment;
    ctx.max_nodes = options.max_nodes;
    Branch(ctx, 0);
    best.nodes_explored += ctx.nodes;
    const Time t = ctx.best;
    if (best.test_time == 0 || t < best.test_time) {
      best.test_time = t;
      best.bus_widths = widths;
      best.core_to_bus = ctx.best_assignment;
    }
  });
  return best;
}

}  // namespace soctest
