// Level-oriented (shelf) rectangle packing baselines, after the NFDH/FFDH
// algorithms of Coffman, Garey, Johnson & Tarjan (paper ref [8]).
//
// Each core contributes one rectangle (its preferred width x test time).
// Rectangles are packed into "shelves": a shelf is opened with the height
// (= TAM width here) of its first rectangle; subsequent rectangles join the
// shelf while the running width budget allows (NFDH: only the newest shelf;
// FFDH: first shelf that fits). Shelves are laid end to end on the time
// axis, so the makespan is the sum of shelf lengths.
//
// This is the classical packing the paper generalizes; comparing it against
// TamScheduleOptimizer quantifies the benefit of width tailoring, idle-time
// filling, and preemption.
#pragma once

#include "core/schedule.h"
#include "soc/soc.h"
#include "wrapper/pareto.h"
#include "wrapper/rectangles.h"

namespace soctest {

enum class ShelfPolicy {
  kNextFitDecreasingHeight,   // NFDH
  kFirstFitDecreasingHeight,  // FFDH
};

struct ShelfOptions {
  ShelfPolicy policy = ShelfPolicy::kFirstFitDecreasingHeight;
  int w_max = 64;
  // Preferred-width knobs used to pick each core's single rectangle.
  PreferredWidthParams preferred;
};

// Packs one rectangle per core; returns a schedule in the same format as the
// optimizer (single segment per core). Always valid w.r.t. width capacity.
Schedule ShelfPack(const Soc& soc, int tam_width, const ShelfOptions& options);

}  // namespace soctest
