#include "baseline/lower_bound.h"

namespace soctest {

LowerBoundBreakdown ComputeLowerBound(const std::vector<RectangleSet>& rects,
                                      int tam_width) {
  LowerBoundBreakdown out;
  for (const auto& rect : rects) {
    const Time t_min = rect.MinTime();
    if (t_min > out.bottleneck_bound) {
      out.bottleneck_bound = t_min;
      out.bottleneck_core = rect.core_id();
    }
    out.total_min_area += rect.MinArea();
  }
  if (tam_width > 0) {
    out.area_bound = (out.total_min_area + tam_width - 1) / tam_width;
  }
  return out;
}

LowerBoundBreakdown ComputeLowerBound(const Soc& soc, int tam_width, int w_max) {
  return ComputeLowerBound(BuildRectangleSets(soc, w_max, tam_width), tam_width);
}

}  // namespace soctest
