// Lower bound on SOC test time (paper Section 6, Table 1):
//
//   LB(W) = max(  max_i T_i(min(W, w_max)),          // bottleneck core
//                 ceil( sum_i A_i / W )  )            // area bound
//
// where T_i is core i's time curve and A_i = min_w (w * T_i(w)) is the
// smallest rectangle area core i can be packed with. No schedule under TAM
// width W can beat either term: a single core can never finish faster than
// at full width, and the bin of height W cannot absorb more than W cycles of
// rectangle area per cycle of makespan.
#pragma once

#include "core/problem.h"
#include "util/interval.h"
#include "wrapper/rectangles.h"

namespace soctest {

struct LowerBoundBreakdown {
  Time bottleneck_bound = 0;   // max_i T_i(min(W, w_max))
  Time area_bound = 0;         // ceil(total min area / W)
  std::int64_t total_min_area = 0;
  CoreId bottleneck_core = kNoCore;

  Time value() const {
    return bottleneck_bound > area_bound ? bottleneck_bound : area_bound;
  }
};

// Computes both terms. w_max bounds per-core widths (paper: 64).
LowerBoundBreakdown ComputeLowerBound(const Soc& soc, int tam_width, int w_max);

// Convenience overload reusing prebuilt rectangle sets.
LowerBoundBreakdown ComputeLowerBound(const std::vector<RectangleSet>& rects,
                                      int tam_width);

}  // namespace soctest
