#include "util/table.h"

#include <algorithm>

namespace soctest {

TablePrinter::TablePrinter(std::vector<std::string> header, std::vector<Align> aligns)
    : header_(std::move(header)), aligns_(std::move(aligns)) {
  aligns_.resize(header_.size(), Align::kRight);
  if (!header_.empty()) aligns_[0] = aligns_.empty() ? Align::kLeft : aligns_[0];
}

bool TablePrinter::AddRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) return false;
  rows_.push_back(std::move(row));
  return true;
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto rule = [&widths]() {
    std::string out = "+";
    for (std::size_t w : widths) {
      out += std::string(w + 2, '-');
      out += '+';
    }
    out += '\n';
    return out;
  };

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (std::size_t i = 0; i < row.size(); ++i) {
      const std::size_t pad = widths[i] - row[i].size();
      out += ' ';
      if (aligns_[i] == Align::kRight) out += std::string(pad, ' ');
      out += row[i];
      if (aligns_[i] == Align::kLeft) out += std::string(pad, ' ');
      out += " |";
    }
    out += '\n';
    return out;
  };

  std::string out = rule();
  out += render_row(header_);
  out += rule();
  bool last_was_sep = false;
  for (const auto& row : rows_) {
    if (row.empty()) {
      if (!last_was_sep) out += rule();
      last_was_sep = true;
      continue;
    }
    out += render_row(row);
    last_was_sep = false;
  }
  if (!last_was_sep) out += rule();
  return out;
}

}  // namespace soctest
