#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace soctest {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
  // Guard against an all-zero state (astronomically unlikely but invalid).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(Next());  // full 64-bit span
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t x = Next();
  while (x >= limit) x = Next();
  return lo + static_cast<std::int64_t>(x % range);
}

double Rng::UniformDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  assert(total > 0.0);
  double x = UniformDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (x < w) return i;
    x -= w;
  }
  // Floating-point slack: return the last positive-weight index.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return 0;
}

}  // namespace soctest
