#include "util/args.h"

#include <algorithm>
#include <limits>

#include "util/strings.h"

namespace soctest {

ArgParser::ArgParser(std::vector<std::string> known_flags,
                     std::vector<std::string> known_options)
    : known_flags_(std::move(known_flags)),
      known_options_(std::move(known_options)) {}

bool ArgParser::Parse(int argc, const char* const* argv, int start) {
  auto is_flag = [this](const std::string& name) {
    return std::find(known_flags_.begin(), known_flags_.end(), name) !=
           known_flags_.end();
  };
  auto is_option = [this](const std::string& name) {
    return std::find(known_options_.begin(), known_options_.end(), name) !=
           known_options_.end();
  };

  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline_value = true;
    }
    if (is_flag(arg)) {
      if (has_inline_value) {
        error_ = StrFormat("flag --%s takes no value", arg.c_str());
        return false;
      }
      flags_.push_back(arg);
      continue;
    }
    if (is_option(arg)) {
      if (!has_inline_value) {
        if (i + 1 >= argc) {
          error_ = StrFormat("option --%s needs a value", arg.c_str());
          return false;
        }
        value = argv[++i];
      }
      values_[arg] = value;
      continue;
    }
    error_ = StrFormat("unknown argument --%s", arg.c_str());
    return false;
  }
  return true;
}

bool ArgParser::HasFlag(const std::string& name) const {
  return std::find(flags_.begin(), flags_.end(), name) != flags_.end();
}

std::optional<std::string> ArgParser::Option(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::StringOr(const std::string& name,
                                const std::string& def) const {
  return Option(name).value_or(def);
}

std::int64_t ArgParser::IntOr(const std::string& name, std::int64_t def) {
  const auto raw = Option(name);
  if (!raw) return def;
  const auto parsed = ParseInt(*raw);
  if (!parsed) {
    error_ = StrFormat("option --%s: '%s' is not an integer", name.c_str(),
                       raw->c_str());
    return def;
  }
  return *parsed;
}

int ArgParser::Int32Or(const std::string& name, int def) {
  const std::int64_t wide = IntOr(name, def);
  if (wide < std::numeric_limits<int>::min() ||
      wide > std::numeric_limits<int>::max()) {
    error_ = StrFormat("option --%s: %lld is out of range", name.c_str(),
                       static_cast<long long>(wide));
    return def;
  }
  return static_cast<int>(wide);
}

double ArgParser::DoubleOr(const std::string& name, double def) {
  const auto raw = Option(name);
  if (!raw) return def;
  const auto parsed = ParseDouble(*raw);
  if (!parsed) {
    error_ = StrFormat("option --%s: '%s' is not a number", name.c_str(),
                       raw->c_str());
    return def;
  }
  return *parsed;
}

}  // namespace soctest
