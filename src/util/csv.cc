#include "util/csv.h"

namespace soctest {

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

bool CsvWriter::AddRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) return false;
  rows_.push_back(std::move(row));
  return true;
}

std::string CsvWriter::Escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out.push_back(',');
      out += Escape(row[i]);
    }
    out.push_back('\n');
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

bool CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << ToString();
  return static_cast<bool>(f);
}

}  // namespace soctest
