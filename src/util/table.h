// ASCII table renderer used by the bench binaries to print paper-style tables.
#pragma once

#include <string>
#include <vector>

namespace soctest {

// Column alignment for TablePrinter.
enum class Align { kLeft, kRight };

// Builds fixed-width ASCII tables:
//
//   +------+---------+
//   | SOC  |  cycles |
//   +------+---------+
//   | d695 |   41232 |
//   +------+---------+
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header,
                        std::vector<Align> aligns = {});

  bool AddRow(std::vector<std::string> row);

  // Inserts a horizontal separator after the most recently added row.
  void AddSeparator();

  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;   // empty row == separator
};

}  // namespace soctest
