#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace soctest {

std::string_view TrimView(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> SplitLines(std::string_view s) {
  std::vector<std::string> lines = Split(s, '\n');
  for (auto& line : lines) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
  }
  return lines;
}

std::optional<std::int64_t> ParseInt(std::string_view s) {
  s = TrimView(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> ParseUint(std::string_view s) {
  s = TrimView(s);
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view s) {
  s = TrimView(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars<double> is available in libstdc++ 11+; use it directly.
  double value = 0.0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string WithCommas(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace soctest
