// FixedBucketHistogram — a lock-free latency histogram with power-of-two
// buckets, built for the serving front-end's service-time percentiles.
//
// Recording must be cheap enough to sit on the request hot path and safe to
// call from every worker thread concurrently, so the histogram is a fixed
// array of relaxed atomic counters: bucket i counts values whose bit width
// is i, i.e. the half-open range [2^(i-1), 2^i) with bucket 0 holding zero.
// 40 buckets cover every microsecond count up to ~6 days — service times
// saturate into the last bucket instead of indexing out of bounds.
//
// Percentile(p) walks the cumulative counts and reports the UPPER bound of
// the bucket holding the p-th value, so the answer is conservative (a true
// p99 of 700us reports 1024us, never 512us) and deterministic for a fixed
// set of recorded values. The coarse buckets are the point: the serving
// counters these feed (STATS lines, BENCH_*.json) are trend telemetry, not
// measurements — and a fixed layout means no allocation, no rebinning, and
// no lock anywhere.
//
// Relaxed ordering is deliberate: counts published while other threads are
// still recording can be momentarily short, which a stats snapshot
// tolerates; totals are exact once writers quiesce (e.g. after a drain).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace soctest {

class FixedBucketHistogram {
 public:
  static constexpr int kBuckets = 40;

  FixedBucketHistogram() = default;
  FixedBucketHistogram(const FixedBucketHistogram&) = delete;
  FixedBucketHistogram& operator=(const FixedBucketHistogram&) = delete;

  // Records one value (negative values clamp to 0). Thread-safe, wait-free.
  void Record(std::int64_t value);

  // Total values recorded.
  std::int64_t count() const;

  // Upper bound of the bucket containing the p-th percentile value
  // (0 < p <= 100), computed by nearest-rank over the bucket counts.
  // Returns 0 when nothing has been recorded.
  std::int64_t Percentile(double p) const;

  // The inclusive upper bound of bucket i: 0, 1, 3, 7, ... 2^i - 1.
  static std::int64_t BucketUpperBound(int bucket);

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
};

}  // namespace soctest
