// Terminal scatter/line plot for reproducing the paper's figures as ASCII art.
//
// bench/fig1_pareto_staircase and bench/fig9_tdv_curves print both the raw
// series (CSV-style rows, for external plotting) and an AsciiPlot so the
// staircase / U-shape is visible directly in the bench output.
#pragma once

#include <string>
#include <vector>

namespace soctest {

class AsciiPlot {
 public:
  // width/height are the size of the plotting canvas in characters.
  AsciiPlot(int width, int height);

  void SetTitle(std::string title) { title_ = std::move(title); }
  void SetXLabel(std::string label) { x_label_ = std::move(label); }
  void SetYLabel(std::string label) { y_label_ = std::move(label); }

  // Adds a named series drawn with the given glyph.
  void AddSeries(const std::vector<double>& xs, const std::vector<double>& ys,
                 char glyph);

  std::string Render() const;

 private:
  struct Series {
    std::vector<double> xs;
    std::vector<double> ys;
    char glyph;
  };

  int width_;
  int height_;
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
};

}  // namespace soctest
