#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/strings.h"

namespace soctest {

AsciiPlot::AsciiPlot(int width, int height)
    : width_(std::max(16, width)), height_(std::max(6, height)) {}

void AsciiPlot::AddSeries(const std::vector<double>& xs,
                          const std::vector<double>& ys, char glyph) {
  Series s;
  const std::size_t n = std::min(xs.size(), ys.size());
  s.xs.assign(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(n));
  s.ys.assign(ys.begin(), ys.begin() + static_cast<std::ptrdiff_t>(n));
  s.glyph = glyph;
  series_.push_back(std::move(s));
}

std::string AsciiPlot::Render() const {
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -std::numeric_limits<double>::infinity();
  double ymin = xmin, ymax = xmax;
  for (const auto& s : series_) {
    for (double x : s.xs) { xmin = std::min(xmin, x); xmax = std::max(xmax, x); }
    for (double y : s.ys) { ymin = std::min(ymin, y); ymax = std::max(ymax, y); }
  }
  if (!std::isfinite(xmin) || !std::isfinite(ymin)) return "(empty plot)\n";
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;

  std::vector<std::string> canvas(static_cast<std::size_t>(height_),
                                  std::string(static_cast<std::size_t>(width_), ' '));
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const double fx = (s.xs[i] - xmin) / (xmax - xmin);
      const double fy = (s.ys[i] - ymin) / (ymax - ymin);
      auto cx = static_cast<int>(std::lround(fx * (width_ - 1)));
      auto cy = static_cast<int>(std::lround(fy * (height_ - 1)));
      cx = std::clamp(cx, 0, width_ - 1);
      cy = std::clamp(cy, 0, height_ - 1);
      canvas[static_cast<std::size_t>(height_ - 1 - cy)]
            [static_cast<std::size_t>(cx)] = s.glyph;
    }
  }

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  if (!y_label_.empty()) out += y_label_ + "\n";
  const std::string ymax_s = StrFormat("%.4g", ymax);
  const std::string ymin_s = StrFormat("%.4g", ymin);
  const std::size_t gutter = std::max(ymax_s.size(), ymin_s.size());
  for (int r = 0; r < height_; ++r) {
    std::string label;
    if (r == 0) label = ymax_s;
    else if (r == height_ - 1) label = ymin_s;
    out += std::string(gutter - label.size(), ' ') + label + " |";
    out += canvas[static_cast<std::size_t>(r)];
    out += '\n';
  }
  out += std::string(gutter, ' ') + " +" + std::string(static_cast<std::size_t>(width_), '-') + "\n";
  const std::string xmin_s = StrFormat("%.4g", xmin);
  const std::string xmax_s = StrFormat("%.4g", xmax);
  std::string axis = std::string(gutter + 2, ' ') + xmin_s;
  const std::size_t room = static_cast<std::size_t>(width_) + gutter + 2;
  if (axis.size() + xmax_s.size() < room) {
    axis += std::string(room - axis.size() - xmax_s.size(), ' ');
  } else {
    axis += ' ';
  }
  axis += xmax_s;
  out += axis + "\n";
  if (!x_label_.empty()) out += std::string(gutter + 2, ' ') + x_label_ + "\n";
  return out;
}

}  // namespace soctest
