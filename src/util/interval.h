// Half-open time intervals [begin, end) and sweep-line utilities.
//
// Schedules in this library are unions of width-carrying time segments; the
// validator and the TDV analysis need "what is the aggregate width/power in
// use at every instant" queries, which StepProfile answers exactly via a
// sweep over segment endpoints.
#pragma once

#include <cstdint>
#include <vector>

namespace soctest {

using Time = std::int64_t;  // test cycles

// Half-open interval [begin, end). Empty iff begin >= end.
struct Interval {
  Time begin = 0;
  Time end = 0;

  Time length() const { return end > begin ? end - begin : 0; }
  bool empty() const { return end <= begin; }
  bool Contains(Time t) const { return t >= begin && t < end; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

// True iff the two half-open intervals share at least one instant.
bool Overlaps(const Interval& a, const Interval& b);

// Intersection (possibly empty) of two intervals.
Interval Intersect(const Interval& a, const Interval& b);

// A piecewise-constant function of time built from weighted intervals.
// Add(interval, w) adds w over [begin, end); queries are exact.
class StepProfile {
 public:
  void Add(const Interval& iv, std::int64_t weight);

  // Maximum aggregate value over all time (0 if no intervals).
  std::int64_t Max() const;

  // Value at a specific instant.
  std::int64_t ValueAt(Time t) const;

  // The distinct breakpoints and the value on [breakpoint[i], breakpoint[i+1]).
  // steps.size() == breakpoints.size(); the value after the final breakpoint
  // is always 0 (profiles built from finite intervals decay to zero).
  struct Steps {
    std::vector<Time> breakpoints;
    std::vector<std::int64_t> values;
  };
  Steps Flatten() const;

  // Integral of the profile over all time (sum of weight * length).
  std::int64_t Area() const;

 private:
  // (time, delta) events; compacted lazily by Flatten().
  std::vector<std::pair<Time, std::int64_t>> events_;
};

// Merges overlapping/adjacent intervals into a minimal sorted disjoint set.
std::vector<Interval> NormalizeIntervals(std::vector<Interval> ivs);

// Total covered length of a set of (possibly overlapping) intervals.
Time TotalCoverage(const std::vector<Interval>& ivs);

}  // namespace soctest
