// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in this library (synthetic SOC generation,
// property-test fuzzing) draws from Rng so that a fixed seed reproduces the
// exact same benchmark inputs on every platform. We deliberately avoid
// std::mt19937 + std::uniform_int_distribution because the distribution
// implementations are not portable across standard libraries.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace soctest {

// SplitMix64: used for seeding and as a simple standalone generator.
// Reference: Sebastiano Vigna, public-domain reference implementation.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Xoshiro256** — fast, high-quality 64-bit generator with 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return Next(); }

  std::uint64_t Next();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Picks an index in [0, weights.size()) proportionally to weights.
  // Zero/negative weights are treated as zero. Requires a positive total.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace soctest
