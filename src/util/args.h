// Tiny command-line argument helper for the CLI tool and examples.
//
// Supports "--flag", "--key value" and "--key=value" plus positional
// arguments; unknown flags are collected as errors so tools can fail fast.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace soctest {

class ArgParser {
 public:
  // known_flags: names (without "--") that take no value.
  // known_options: names that take exactly one value.
  ArgParser(std::vector<std::string> known_flags,
            std::vector<std::string> known_options);

  // Parses argv[start..); returns false (with Error()) on unknown/malformed
  // arguments.
  bool Parse(int argc, const char* const* argv, int start = 1);

  bool HasFlag(const std::string& name) const;
  std::optional<std::string> Option(const std::string& name) const;

  // Typed accessors with defaults; parse failures surface via Error().
  std::string StringOr(const std::string& name, const std::string& def) const;
  std::int64_t IntOr(const std::string& name, std::int64_t def);
  // IntOr narrowed to int with a range check: "--width 4294967297" is an
  // error (via Error()), not a silent 1. Every int-typed option should go
  // through this instead of static_cast<int>(IntOr(...)).
  int Int32Or(const std::string& name, int def);
  double DoubleOr(const std::string& name, double def);

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& Error() const { return error_; }
  bool ok() const { return error_.empty(); }

 private:
  std::vector<std::string> known_flags_;
  std::vector<std::string> known_options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> flags_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace soctest
