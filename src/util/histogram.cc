#include "util/histogram.h"

#include <bit>
#include <cmath>

namespace soctest {

namespace {

// Bucket index for a non-negative value: its bit width, clamped to the
// fixed range. bit_width(0) == 0, bit_width(1) == 1, bit_width(700) == 10.
int BucketFor(std::int64_t value) {
  const int width = std::bit_width(static_cast<std::uint64_t>(value));
  return width < FixedBucketHistogram::kBuckets
             ? width
             : FixedBucketHistogram::kBuckets - 1;
}

}  // namespace

void FixedBucketHistogram::Record(std::int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
}

std::int64_t FixedBucketHistogram::count() const {
  std::int64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

std::int64_t FixedBucketHistogram::BucketUpperBound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  return (std::int64_t{1} << bucket) - 1;
}

std::int64_t FixedBucketHistogram::Percentile(double p) const {
  const std::int64_t total = count();
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(p/100 * total), i.e. the bucket holding the p-th value.
  std::int64_t rank = static_cast<std::int64_t>(
      std::ceil((p / 100.0) * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::int64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kBuckets - 1);
}

}  // namespace soctest
