// Minimal CSV writer used by benches and examples to dump series for plotting.
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace soctest {

// Accumulates rows and writes RFC-4180-ish CSV (quotes fields containing
// comma, quote, or newline). All rows must have the same arity as the header.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  std::size_t columns() const { return header_.size(); }
  std::size_t rows() const { return rows_.size(); }

  // Adds a row; returns false (and drops the row) on arity mismatch.
  bool AddRow(std::vector<std::string> row);

  // Convenience: formats arithmetic values with operator<<.
  template <typename... Ts>
  bool Add(const Ts&... values) {
    std::vector<std::string> row;
    row.reserve(sizeof...(values));
    (row.push_back(ToCell(values)), ...);
    return AddRow(std::move(row));
  }

  std::string ToString() const;

  // Returns true on success.
  bool WriteFile(const std::string& path) const;

 private:
  template <typename T>
  static std::string ToCell(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  static std::string Escape(const std::string& field);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace soctest
