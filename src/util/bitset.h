// CoreBitset — a dense dynamic bitset over 64-bit words, sized to the SOC's
// core count. The scheduler's per-core status flags (begun/running/complete/
// unstarted) live in these instead of std::vector<bool>: a membership scan
// touches n/64 cache-resident words and skips empty words wholesale, which is
// what makes "iterate the incomplete cores" O(set bits) instead of O(n) in
// the admission hot path. Iteration order is ascending index — the same
// order as the historical `for (CoreId c = 0; ...)` loops — so selection
// tie-breaks ("first core found wins") are preserved bit-for-bit.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace soctest {

class CoreBitset {
 public:
  CoreBitset() = default;

  // Resizes to `n` bits, all clear / all set. Reuses the word buffer, so a
  // reused workspace re-Assigns without reallocating.
  void AssignClear(std::size_t n) {
    size_ = n;
    words_.assign(WordCount(n), 0);
  }
  void AssignSet(std::size_t n) {
    size_ = n;
    words_.assign(WordCount(n), ~std::uint64_t{0});
    ClearTail();
  }

  std::size_t size() const { return size_; }

  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }

  bool any() const {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  std::size_t count() const {
    std::size_t n = 0;
    for (const std::uint64_t w : words_) {
      n += static_cast<std::size_t>(std::popcount(w));
    }
    return n;
  }

  // Calls fn(index) for every set bit in ascending index order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        fn((wi << 6) + static_cast<std::size_t>(bit));
        w &= w - 1;  // clear lowest set bit
      }
    }
  }

 private:
  static std::size_t WordCount(std::size_t n) { return (n + 63) >> 6; }

  // Bits past size_ must stay clear so any()/count()/ForEachSet never see
  // phantom cores.
  void ClearTail() {
    const std::size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace soctest
