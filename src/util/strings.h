// Small string helpers shared by the .soc parser and report writers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace soctest {

// Removes leading/trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

// Splits on a single character; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

// Splits on runs of whitespace; empty tokens are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

// Splits into lines on '\n' ('\r' is trimmed).
std::vector<std::string> SplitLines(std::string_view s);

// Strict integer / double parsing; returns nullopt on any trailing garbage.
std::optional<std::int64_t> ParseInt(std::string_view s);
// Unsigned variant covering the full uint64 range (rejects any '-' sign);
// for values like RNG seeds that int64 parsing would truncate at 2^63.
std::optional<std::uint64_t> ParseUint(std::string_view s);
std::optional<double> ParseDouble(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
std::string ToLower(std::string_view s);

// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Formats an integer with thousands separators ("1234567" -> "1,234,567").
std::string WithCommas(std::int64_t value);

}  // namespace soctest
