#include "util/interval.h"

#include <algorithm>

namespace soctest {

bool Overlaps(const Interval& a, const Interval& b) {
  return a.begin < b.end && b.begin < a.end && !a.empty() && !b.empty();
}

Interval Intersect(const Interval& a, const Interval& b) {
  return Interval{std::max(a.begin, b.begin), std::min(a.end, b.end)};
}

void StepProfile::Add(const Interval& iv, std::int64_t weight) {
  if (iv.empty() || weight == 0) return;
  events_.emplace_back(iv.begin, weight);
  events_.emplace_back(iv.end, -weight);
}

StepProfile::Steps StepProfile::Flatten() const {
  Steps out;
  if (events_.empty()) return out;
  auto sorted = events_;
  std::sort(sorted.begin(), sorted.end());
  std::int64_t value = 0;
  for (std::size_t i = 0; i < sorted.size();) {
    const Time t = sorted[i].first;
    std::int64_t delta = 0;
    while (i < sorted.size() && sorted[i].first == t) {
      delta += sorted[i].second;
      ++i;
    }
    if (delta == 0) continue;
    value += delta;
    if (!out.breakpoints.empty() && out.values.back() == value) continue;
    out.breakpoints.push_back(t);
    out.values.push_back(value);
  }
  return out;
}

std::int64_t StepProfile::Max() const {
  const Steps s = Flatten();
  std::int64_t best = 0;
  for (std::int64_t v : s.values) best = std::max(best, v);
  return best;
}

std::int64_t StepProfile::ValueAt(Time t) const {
  const Steps s = Flatten();
  std::int64_t value = 0;
  for (std::size_t i = 0; i < s.breakpoints.size(); ++i) {
    if (s.breakpoints[i] > t) break;
    value = s.values[i];
  }
  return value;
}

std::int64_t StepProfile::Area() const {
  std::int64_t area = 0;
  const Steps s = Flatten();
  for (std::size_t i = 0; i + 1 < s.breakpoints.size(); ++i) {
    area += s.values[i] * (s.breakpoints[i + 1] - s.breakpoints[i]);
  }
  // The profile is zero after the last breakpoint by construction.
  return area;
}

std::vector<Interval> NormalizeIntervals(std::vector<Interval> ivs) {
  ivs.erase(std::remove_if(ivs.begin(), ivs.end(),
                           [](const Interval& iv) { return iv.empty(); }),
            ivs.end());
  std::sort(ivs.begin(), ivs.end(), [](const Interval& a, const Interval& b) {
    return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
  });
  std::vector<Interval> out;
  for (const auto& iv : ivs) {
    if (!out.empty() && iv.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, iv.end);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

Time TotalCoverage(const std::vector<Interval>& ivs) {
  Time total = 0;
  for (const auto& iv : NormalizeIntervals(ivs)) total += iv.length();
  return total;
}

}  // namespace soctest
