// Schedule export: JSON (machine-readable, for downstream tooling), CSV
// (segments table), and SVG (publication-grade Gantt rendering).
#pragma once

#include <string>

#include "core/schedule.h"
#include "core/wire_assign.h"
#include "soc/soc.h"

namespace soctest {

// JSON document:
// {
//   "soc": "...", "tam_width": W, "makespan": T, "utilization": u,
//   "cores": [ { "id": .., "name": "..", "width": .., "preemptions": ..,
//                "overhead_cycles": ..,
//                "segments": [ {"begin": .., "end": ..}, ... ] }, ... ]
// }
std::string ScheduleToJson(const Soc& soc, const Schedule& schedule);

// CSV with one row per segment:
//   core_id,core_name,width,segment_index,begin,end,preemptions
std::string ScheduleToCsv(const Soc& soc, const Schedule& schedule);

struct SvgOptions {
  int width_px = 960;
  int row_height_px = 22;
  int label_width_px = 120;
};

// Standalone SVG Gantt: one row per core, one <rect> per segment, a time
// axis, and tooltips (<title>) carrying exact cycle counts.
std::string ScheduleToSvg(const Soc& soc, const Schedule& schedule,
                          const SvgOptions& options = {});

// SVG wire-occupancy map (one row per physical TAM wire).
std::string WireMapToSvg(const Soc& soc, const Schedule& schedule,
                         const WireAssignment& wires,
                         const SvgOptions& options = {});

}  // namespace soctest
