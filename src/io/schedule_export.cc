#include "io/schedule_export.h"

#include <algorithm>

#include "util/strings.h"

namespace soctest {
namespace {

// Minimal JSON string escaping (names are ASCII identifiers in practice).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// A qualitative 12-color palette for SVG core rectangles.
const char* ColorFor(CoreId core) {
  static const char* kPalette[] = {
      "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948",
      "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac", "#86bcb6", "#d37295"};
  return kPalette[static_cast<std::size_t>(core) % 12];
}

double Scale(Time t, Time makespan, int span_px) {
  if (makespan <= 0) return 0.0;
  return static_cast<double>(t) / static_cast<double>(makespan) * span_px;
}

}  // namespace

std::string ScheduleToJson(const Soc& soc, const Schedule& schedule) {
  std::string out = "{\n";
  out += StrFormat("  \"soc\": \"%s\",\n", JsonEscape(schedule.soc_name()).c_str());
  out += StrFormat("  \"tam_width\": %d,\n", schedule.tam_width());
  out += StrFormat("  \"makespan\": %lld,\n",
                   static_cast<long long>(schedule.Makespan()));
  out += StrFormat("  \"utilization\": %.6f,\n", schedule.Utilization());
  out += "  \"cores\": [\n";
  const auto& entries = schedule.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    const std::string name =
        e.core >= 0 && e.core < soc.num_cores() ? soc.core(e.core).name : "";
    out += StrFormat(
        "    {\"id\": %d, \"name\": \"%s\", \"width\": %d, "
        "\"preemptions\": %d, \"overhead_cycles\": %lld, \"segments\": [",
        e.core, JsonEscape(name).c_str(), e.assigned_width, e.preemptions,
        static_cast<long long>(e.overhead_cycles));
    for (std::size_t j = 0; j < e.segments.size(); ++j) {
      const auto& seg = e.segments[j];
      out += StrFormat("%s{\"begin\": %lld, \"end\": %lld}", j ? ", " : "",
                       static_cast<long long>(seg.span.begin),
                       static_cast<long long>(seg.span.end));
    }
    out += StrFormat("]}%s\n", i + 1 < entries.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

std::string ScheduleToCsv(const Soc& soc, const Schedule& schedule) {
  std::string out = "core_id,core_name,width,segment_index,begin,end,preemptions\n";
  for (const auto& e : schedule.entries()) {
    const std::string name =
        e.core >= 0 && e.core < soc.num_cores() ? soc.core(e.core).name : "";
    for (std::size_t j = 0; j < e.segments.size(); ++j) {
      out += StrFormat("%d,%s,%d,%zu,%lld,%lld,%d\n", e.core, name.c_str(),
                       e.assigned_width, j,
                       static_cast<long long>(e.segments[j].span.begin),
                       static_cast<long long>(e.segments[j].span.end),
                       e.preemptions);
    }
  }
  return out;
}

std::string ScheduleToSvg(const Soc& soc, const Schedule& schedule,
                          const SvgOptions& options) {
  const Time makespan = std::max<Time>(1, schedule.Makespan());
  const int rows = static_cast<int>(schedule.entries().size());
  const int chart_w = options.width_px - options.label_width_px;
  const int height = (rows + 2) * options.row_height_px;

  std::string out = StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "font-family=\"monospace\" font-size=\"12\">\n",
      options.width_px, height);
  out += StrFormat(
      "<text x=\"4\" y=\"14\">%s W=%d makespan=%s cycles</text>\n",
      JsonEscape(schedule.soc_name()).c_str(), schedule.tam_width(),
      WithCommas(schedule.Makespan()).c_str());

  int row = 1;
  for (const auto& e : schedule.entries()) {
    const int y = row * options.row_height_px;
    const std::string name =
        e.core >= 0 && e.core < soc.num_cores() ? soc.core(e.core).name : "?";
    out += StrFormat("<text x=\"4\" y=\"%d\">%s</text>\n",
                     y + options.row_height_px - 8, JsonEscape(name).c_str());
    for (const auto& seg : e.segments) {
      const double x0 =
          options.label_width_px + Scale(seg.span.begin, makespan, chart_w);
      const double x1 =
          options.label_width_px + Scale(seg.span.end, makespan, chart_w);
      out += StrFormat(
          "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" "
          "fill=\"%s\" stroke=\"#333\"><title>%s [%lld, %lld) w=%d"
          "</title></rect>\n",
          x0, y + 2, std::max(1.0, x1 - x0), options.row_height_px - 4,
          ColorFor(e.core), JsonEscape(name).c_str(),
          static_cast<long long>(seg.span.begin),
          static_cast<long long>(seg.span.end), seg.width);
    }
    ++row;
  }
  // Time axis.
  const int axis_y = (rows + 1) * options.row_height_px;
  out += StrFormat(
      "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#333\"/>\n",
      options.label_width_px, axis_y, options.width_px, axis_y);
  out += StrFormat("<text x=\"%d\" y=\"%d\">0</text>\n", options.label_width_px,
                   axis_y + 14);
  out += StrFormat("<text x=\"%d\" y=\"%d\" text-anchor=\"end\">%s</text>\n",
                   options.width_px - 2, axis_y + 14,
                   WithCommas(schedule.Makespan()).c_str());
  out += "</svg>\n";
  return out;
}

std::string WireMapToSvg(const Soc& soc, const Schedule& schedule,
                         const WireAssignment& wires, const SvgOptions& options) {
  const Time makespan = std::max<Time>(1, schedule.Makespan());
  const int chart_w = options.width_px - options.label_width_px;
  const int row_h = std::max(6, options.row_height_px / 2);
  const int height = (wires.tam_width + 3) * row_h;

  std::string out = StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "font-family=\"monospace\" font-size=\"10\">\n",
      options.width_px, height);
  out += StrFormat("<text x=\"4\" y=\"12\">%s TAM wire occupancy</text>\n",
                   JsonEscape(schedule.soc_name()).c_str());
  for (const auto& grant : wires.grants) {
    const std::string name = grant.core >= 0 && grant.core < soc.num_cores()
                                 ? soc.core(grant.core).name
                                 : "?";
    const double x0 =
        options.label_width_px + Scale(grant.span.begin, makespan, chart_w);
    const double x1 =
        options.label_width_px + Scale(grant.span.end, makespan, chart_w);
    for (int wire : grant.wires) {
      const int y = (wire + 1) * row_h + 8;
      out += StrFormat(
          "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" "
          "fill=\"%s\"><title>%s on wire %d</title></rect>\n",
          x0, y, std::max(1.0, x1 - x0), row_h - 1, ColorFor(grant.core),
          JsonEscape(name).c_str(), wire);
    }
  }
  out += "</svg>\n";
  return out;
}

}  // namespace soctest
