#include "service/request.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "soc/benchmarks.h"
#include "util/strings.h"

namespace soctest {
namespace {

RequestParseError Err(const std::string& file, int line, std::string message) {
  return RequestParseError{file, line, std::move(message)};
}

// Loads the <soc> token (soc/benchmarks.h LoadSocSpec: file-on-disk first,
// embedded benchmark second, `file:`/`bench:` prefixes to force either).
// Returns an error message ("" on success) so the caller owns the file:line.
std::string LoadSoc(const std::string& spec, ParsedSoc& out) {
  ParseResult parsed = LoadSocSpec(spec);
  if (const auto* err = std::get_if<ParseError>(&parsed)) {
    return StrFormat("cannot load soc '%s': %s", spec.c_str(),
                     err->ToString().c_str());
  }
  out = std::move(std::get<ParsedSoc>(parsed));
  return "";
}

// Applies one key=value flag. Returns an error message or "".
std::string ApplyFlag(BatchRequest& req, const std::string& key,
                      const std::string& value) {
  const auto as_int = ParseInt(value);
  const auto as_double = ParseDouble(value);
  const auto bool_flag = [&](bool& out) -> std::string {
    if (!as_int || (*as_int != 0 && *as_int != 1)) {
      return StrFormat("%s expects 0 or 1", key.c_str());
    }
    out = *as_int == 1;
    return "";
  };
  // Every int-typed knob range-checks against INT_MAX before narrowing:
  // "iters=4294967297" must be an error, not a silent 1.
  const auto positive_int = [&](int& out) -> std::string {
    if (!as_int || *as_int <= 0) {
      return StrFormat("%s expects a positive integer", key.c_str());
    }
    if (*as_int > std::numeric_limits<int>::max()) {
      return StrFormat("%s value %lld is out of range (max %d)", key.c_str(),
                       static_cast<long long>(*as_int),
                       std::numeric_limits<int>::max());
    }
    out = static_cast<int>(*as_int);
    return "";
  };

  // Shared flags first, then mode-specific ones; a flag on the wrong mode is
  // an error rather than a silent no-op.
  if (key == "preempt") return bool_flag(req.preempt);
  if (key == "s") {
    if (!as_double || *as_double <= 0) return "s expects a positive percent";
    req.s_percent = *as_double;
    return "";
  }
  if (key == "delta") {
    if (!as_int || *as_int < 0) return "delta expects a non-negative integer";
    if (*as_int > std::numeric_limits<int>::max()) {
      return StrFormat("delta value %lld is out of range (max %d)",
                       static_cast<long long>(*as_int),
                       std::numeric_limits<int>::max());
    }
    req.delta = static_cast<int>(*as_int);
    return "";
  }
  if (key == "budget") {
    std::string error;
    const auto parsed = ParseBudgetTimeline(value, &error);
    if (!parsed || parsed->unlimited()) {
      if (error.empty()) error = "expected 'start:pmax[,start:pmax...]'";
      return StrFormat("budget: %s", error.c_str());
    }
    req.budget = parsed->segments();
    return "";
  }
  if (key == "prio") return bool_flag(req.use_priority);
  if (key == "wide" && req.mode != BatchMode::kSweep) {
    return bool_flag(req.wide);
  }
  if (req.mode == BatchMode::kSchedule) {
    if (key == "search") return bool_flag(req.search);
  } else if (req.mode == BatchMode::kImprove) {
    if (key == "iters") return positive_int(req.iterations);
    if (key == "batch") return positive_int(req.batch);
    if (key == "seed") {
      // Full uint64 range: the improver's seed is 64-bit, and Format emits
      // it as %llu — an int64 parse would reject everything >= 2^63 that
      // Format can produce, breaking the round-trip contract.
      const auto as_uint = ParseUint(value);
      if (!as_uint) return "seed expects a non-negative integer";
      req.seed = *as_uint;
      return "";
    }
  } else if (req.mode == BatchMode::kSweep) {
    if (key == "min") return positive_int(req.sweep_min);
    if (key == "max") return positive_int(req.sweep_max);
  }
  return StrFormat("unknown flag '%s' for mode %s", key.c_str(),
                   BatchModeName(req.mode));
}

}  // namespace

const char* BatchModeName(BatchMode mode) {
  switch (mode) {
    case BatchMode::kSchedule: return "schedule";
    case BatchMode::kImprove: return "improve";
    case BatchMode::kSweep: return "sweep";
  }
  return "?";
}

std::string FormatRequestParams(const BatchRequest& request) {
  const BatchRequest defaults;
  std::string out =
      StrFormat("%d %s", request.tam_width, BatchModeName(request.mode));
  if (request.preempt) out += " preempt=1";
  if (request.s_percent != defaults.s_percent) {
    // %.17g: enough digits that ParseDouble reproduces the exact value — a
    // rounded "s" would re-parse to a different request (and a different
    // dedup key) than the one formatted.
    out += StrFormat(" s=%.17g", request.s_percent);
  }
  if (request.delta != defaults.delta) {
    out += StrFormat(" delta=%d", request.delta);
  }
  if (!request.budget.empty()) {
    // Segments were validated by ApplyFlag, so FromSegments cannot fail and
    // FormatBudgetTimeline reproduces the exact text ApplyFlag parsed.
    out += " budget=" + FormatBudgetTimeline(
                            PowerBudget::FromSegments(request.budget).value());
  }
  if (!request.use_priority) out += " prio=0";
  // Emit each remaining flag only for modes whose ApplyFlag accepts it, and
  // only when Serve() actually consults it — so every formatted line
  // re-parses, and two requests that schedule identically format identically
  // (the canonical-key property the dedup layer builds on). Concretely:
  // `search` applies to schedule mode only, and `wide` only matters when a
  // restart grid is actually built (schedule search=1, or improve mode).
  if (request.mode == BatchMode::kSchedule && request.search) {
    out += " search=1";
    if (request.wide) out += " wide=1";
  }
  if (request.mode == BatchMode::kImprove) {
    if (request.wide) out += " wide=1";
    if (request.iterations != defaults.iterations) {
      out += StrFormat(" iters=%d", request.iterations);
    }
    if (request.batch != defaults.batch) {
      out += StrFormat(" batch=%d", request.batch);
    }
    if (request.seed != defaults.seed) {
      out += StrFormat(" seed=%llu",
                       static_cast<unsigned long long>(request.seed));
    }
  }
  if (request.mode == BatchMode::kSweep) {
    if (request.sweep_min != defaults.sweep_min) {
      out += StrFormat(" min=%d", request.sweep_min);
    }
    if (request.sweep_max != defaults.sweep_max) {
      out += StrFormat(" max=%d", request.sweep_max);
    }
  }
  return out;
}

std::string FormatRequestLine(const BatchRequest& request) {
  return request.soc_spec + " " + FormatRequestParams(request);
}

std::string RequestParseError::ToString() const {
  if (line > 0) {
    return StrFormat("%s:%d: %s", file.c_str(), line, message.c_str());
  }
  return StrFormat("%s: %s", file.c_str(), message.c_str());
}

RequestFileResult ParseRequestText(const std::string& text,
                                   const std::string& file) {
  std::vector<BatchRequest> out;
  const std::vector<std::string> lines = SplitLines(text);
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const int line_no = static_cast<int>(li) + 1;
    std::string line = lines[li];
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    const auto tokens = SplitWhitespace(line);
    if (tokens.empty()) continue;
    if (tokens.size() < 3) {
      return Err(file, line_no,
                 "expected '<soc> <width> <mode> [key=value ...]'");
    }

    BatchRequest req;
    req.soc_spec = tokens[0];

    const auto width = ParseInt(tokens[1]);
    if (!width || *width <= 0) {
      return Err(file, line_no,
                 StrFormat("bad width '%s' (expected a positive integer)",
                           tokens[1].c_str()));
    }
    if (*width > std::numeric_limits<int>::max()) {
      // Without this check the narrowing below turns 4294967297 into 1.
      return Err(file, line_no,
                 StrFormat("width %s is out of range (max %d)",
                           tokens[1].c_str(), std::numeric_limits<int>::max()));
    }
    req.tam_width = static_cast<int>(*width);

    const std::string mode = ToLower(tokens[2]);
    if (mode == "schedule") {
      req.mode = BatchMode::kSchedule;
    } else if (mode == "improve") {
      req.mode = BatchMode::kImprove;
    } else if (mode == "sweep") {
      req.mode = BatchMode::kSweep;
    } else {
      return Err(file, line_no,
                 StrFormat("unknown mode '%s' (expected schedule, improve, "
                           "or sweep)", tokens[2].c_str()));
    }

    for (std::size_t t = 3; t < tokens.size(); ++t) {
      const auto eq = tokens[t].find('=');
      if (eq == std::string::npos || eq == 0) {
        return Err(file, line_no,
                   StrFormat("bad flag '%s' (expected key=value)",
                             tokens[t].c_str()));
      }
      const std::string problem = ApplyFlag(req, ToLower(tokens[t].substr(0, eq)),
                                            tokens[t].substr(eq + 1));
      if (!problem.empty()) return Err(file, line_no, problem);
    }
    if (req.mode == BatchMode::kSchedule && req.wide && !req.search) {
      // Serve() consults the grid extent only when searching; diagnose the
      // contradiction here rather than silently running a single greedy pass.
      return Err(file, line_no, "wide=1 requires search=1 in schedule mode");
    }
    if (req.mode == BatchMode::kSweep) {
      // sweep_max = 0 defaults to the width column — validate the range the
      // sweep will actually run, so a bad min fails here with file:line
      // instead of surfacing later as a bogus "no feasible points".
      const int effective_max =
          req.sweep_max > 0 ? req.sweep_max : req.tam_width;
      if (effective_max < req.sweep_min) {
        return Err(file, line_no, "sweep max is below min");
      }
    }

    if (std::string problem = LoadSoc(req.soc_spec, req.soc); !problem.empty()) {
      return Err(file, line_no, std::move(problem));
    }
    out.push_back(std::move(req));
  }
  return out;
}

RequestFileResult LoadRequestFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return RequestParseError{path, 0, "cannot open file"};
  std::ostringstream ss;
  ss << f.rdbuf();
  return ParseRequestText(ss.str(), path);
}

}  // namespace soctest
