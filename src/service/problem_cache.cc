#include "service/problem_cache.h"

#include <algorithm>
#include <utility>

namespace soctest {
namespace {

// Test hook for KeyHash; see SetKeyHashHookForTest.
std::uint64_t (*g_key_hash_hook)(const std::string&, int) = nullptr;

}  // namespace

void CompiledProblemCache::SetKeyHashHookForTest(
    std::uint64_t (*hook)(const std::string&, int)) {
  g_key_hash_hook = hook;
}

CompiledProblemCache::CompiledProblemCache(const Options& options) {
  const int capacity = std::max(1, options.capacity);
  // The capacity is a hard bound on resident entries, so distribute it by
  // floor (and never spin up more shards than entries): shards * per-shard
  // <= capacity always holds, at the cost of some shards under-filling when
  // shards does not divide capacity.
  const int shards = std::min(std::max(1, options.shards), capacity);
  capacity_per_shard_ = std::max(1, capacity / shards);
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options.core_entries > 0) {
    core_cache_ = std::make_unique<CoreArtifactCache>(
        CoreArtifactCache::Options{options.shards, options.core_entries});
  }
}

std::string CompiledProblemCache::CanonicalKey(const ParsedSoc& parsed) {
  return SerializeSoc(parsed);
}

std::uint64_t CompiledProblemCache::KeyHash(const std::string& canonical,
                                            int w_max) {
  if (g_key_hash_hook != nullptr) return g_key_hash_hook(canonical, w_max);
  // FNV-1a over the canonical text, then the four w_max bytes.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](unsigned char byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (const char c : canonical) mix(static_cast<unsigned char>(c));
  for (int i = 0; i < 4; ++i) {
    mix(static_cast<unsigned char>((static_cast<unsigned>(w_max) >> (8 * i)) &
                                   0xff));
  }
  return h;
}

std::shared_ptr<CompiledProblemCache::Entry> CompiledProblemCache::Compile(
    const ParsedSoc& parsed, std::string canonical, int w_max) const {
  auto entry = std::make_shared<Entry>();
  entry->canonical = std::move(canonical);
  entry->w_max = w_max;
  entry->problem = TestProblem::FromParsed(parsed);
  // Built only after `problem` has its final address inside the entry.
  // Incremental path: fetch each core's artifacts from the core cache and
  // assemble. Guarded on the same validation the compiling constructor runs,
  // so an invalid spec takes the monolithic path (which records the error)
  // and never pollutes the core cache.
  if (core_cache_ != nullptr && w_max >= 1 &&
      !entry->problem.soc.Validate().has_value()) {
    std::vector<CompiledCorePtr> cores;
    cores.reserve(
        static_cast<std::size_t>(entry->problem.soc.num_cores()));
    for (const auto& core : entry->problem.soc.cores()) {
      cores.push_back(core_cache_->GetOrCompile(core, w_max));
    }
    entry->compiled = std::make_unique<CompiledProblem>(entry->problem, w_max,
                                                        std::move(cores));
  } else {
    entry->compiled = std::make_unique<CompiledProblem>(entry->problem, w_max);
  }
  return entry;
}

std::shared_ptr<const CompiledProblem> CompiledProblemCache::GetOrCompile(
    const ParsedSoc& parsed, int w_max, bool* was_hit) {
  return GetOrCompile(parsed, CanonicalKey(parsed), w_max, was_hit);
}

std::shared_ptr<const CompiledProblem> CompiledProblemCache::GetOrCompile(
    const ParsedSoc& parsed, std::string canonical, int w_max, bool* was_hit) {
  const std::uint64_t hash = KeyHash(canonical, w_max);
  Shard& shard = *shards_[hash % shards_.size()];

  const auto matches = [&](const Entry& e) {
    return e.w_max == w_max && e.canonical == canonical;
  };

  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(hash);
    if (it != shard.index.end() && matches(**it->second)) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++shard.hits;
      if (was_hit != nullptr) *was_hit = true;
      const std::shared_ptr<Entry>& entry = shard.lru.front();
      return {entry, entry->compiled.get()};
    }
  }

  // Miss: compile outside the lock so other shard keys keep flowing. (The
  // canonical text moves into the entry; compare via entry->canonical below.)
  std::shared_ptr<Entry> entry = Compile(parsed, std::move(canonical), w_max);

  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.misses;
  ++shard.compiles;
  if (was_hit != nullptr) *was_hit = false;
  const auto it = shard.index.find(hash);
  if (it != shard.index.end()) {
    if ((*it->second)->w_max == w_max &&
        (*it->second)->canonical == entry->canonical) {
      // Lost a same-key race: adopt the winner's entry, drop ours.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      const std::shared_ptr<Entry>& resident = shard.lru.front();
      return {resident, resident->compiled.get()};
    }
    // 64-bit hash collision between different keys: the newcomer replaces
    // the squatter (the index holds one entry per hash). Counted apart from
    // capacity evictions — growing the cache cannot fix a collision.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.collisions;
  }
  shard.lru.push_front(entry);
  shard.index[hash] = shard.lru.begin();
  while (static_cast<int>(shard.lru.size()) > capacity_per_shard_) {
    const std::shared_ptr<Entry>& victim = shard.lru.back();
    shard.index.erase(KeyHash(victim->canonical, victim->w_max));
    shard.lru.pop_back();
    ++shard.evictions;
  }
  return {entry, entry->compiled.get()};
}

CacheStats CompiledProblemCache::stats() const {
  CacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.collisions += shard->collisions;
    out.compiles += shard->compiles;
    out.entries += static_cast<int>(shard->lru.size());
  }
  return out;
}

CoreCacheStats CompiledProblemCache::core_stats() const {
  if (core_cache_ == nullptr) return CoreCacheStats{};
  return core_cache_->stats();
}

}  // namespace soctest
