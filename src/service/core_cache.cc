#include "service/core_cache.h"

#include <algorithm>
#include <utility>

namespace soctest {
namespace {

// Test hook for KeyHash; see SetKeyHashHookForTest.
CoreHash128 (*g_key_hash_hook)(const std::string&, int) = nullptr;

}  // namespace

void CoreArtifactCache::SetKeyHashHookForTest(
    CoreHash128 (*hook)(const std::string&, int)) {
  g_key_hash_hook = hook;
}

CoreArtifactCache::CoreArtifactCache(const Options& options) {
  const int capacity = std::max(1, options.capacity);
  // The capacity is a hard bound on resident entries, so distribute it by
  // floor (and never spin up more shards than entries): shards * per-shard
  // <= capacity always holds.
  const int shards = std::min(std::max(1, options.shards), capacity);
  capacity_per_shard_ = std::max(1, capacity / shards);
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string CoreArtifactCache::CanonicalKey(const CoreSpec& core) {
  return CanonicalCoreText(core);
}

CoreHash128 CoreArtifactCache::KeyHash(const std::string& canonical,
                                       int w_max) {
  if (g_key_hash_hook != nullptr) return g_key_hash_hook(canonical, w_max);
  return CoreContentHash(canonical, w_max);
}

CompiledCorePtr CoreArtifactCache::GetOrCompile(const CoreSpec& core,
                                                int w_max, bool* was_hit) {
  std::string canonical = CanonicalKey(core);
  const CoreHash128 hash = KeyHash(canonical, w_max);
  Shard& shard = *shards_[hash.lo % shards_.size()];

  const auto matches = [&](const Entry& e) {
    return e.w_max == w_max && e.canonical == canonical;
  };

  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(hash);
    if (it != shard.index.end() && matches(*it->second)) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++shard.hits;
      if (was_hit != nullptr) *was_hit = true;
      return shard.lru.front().core;
    }
  }

  // Miss: compile outside the lock so other cores keep flowing — this is
  // the expensive step (one wrapper design per width up to w_max). (The
  // canonical text moves into the entry; compare via entry.canonical below.)
  Entry entry;
  entry.canonical = std::move(canonical);
  entry.w_max = w_max;
  entry.core = std::make_shared<const CompiledCore>(core, w_max);

  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.misses;
  ++shard.compiles;
  if (was_hit != nullptr) *was_hit = false;
  const auto it = shard.index.find(hash);
  if (it != shard.index.end()) {
    if (it->second->w_max == w_max &&
        it->second->canonical == entry.canonical) {
      // Lost a same-key race: adopt the winner's entry, drop ours.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return shard.lru.front().core;
    }
    // 128-bit hash collision between different keys: the newcomer replaces
    // the squatter (the index holds one entry per hash). Counted apart from
    // capacity evictions — growing the cache cannot fix a collision.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.collisions;
  }
  shard.lru.push_front(std::move(entry));
  shard.index[hash] = shard.lru.begin();
  while (static_cast<int>(shard.lru.size()) > capacity_per_shard_) {
    const Entry& victim = shard.lru.back();
    shard.index.erase(KeyHash(victim.canonical, victim.w_max));
    shard.lru.pop_back();
    ++shard.evictions;
  }
  return shard.lru.front().core;
}

CoreCacheStats CoreArtifactCache::stats() const {
  CoreCacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.collisions += shard->collisions;
    out.compiles += shard->compiles;
    out.entries += static_cast<int>(shard->lru.size());
  }
  return out;
}

}  // namespace soctest
