// BatchItemResult — one batch request's outcome.
//
// Split out of batch_scheduler.h so the result cache (result_cache.h) can
// store results without depending on the scheduler that produces them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "service/request.h"
#include "tdv/data_volume.h"

namespace soctest {

// One request's outcome, in the slot matching its position in the input.
// Deliberately free of work-done annotations (which lookup hit, missed, or
// joined): those vary with thread interleaving and dedup, and the result
// vector is covered by the bit-identity contract. Aggregate counters live in
// CacheStats / ResultCacheStats on the BatchOutcome.
struct BatchItemResult {
  int index = -1;
  std::string soc_name;
  BatchMode mode = BatchMode::kSchedule;
  int tam_width = 0;

  // The figure every mode reports: the schedule makespan for schedule and
  // improve, the minimum test time over the sweep range for sweep; -1 on
  // failure.
  Time makespan = -1;

  OptimizerResult result;        // schedule / improve modes (sweep: empty)
  std::vector<SweepPoint> sweep; // sweep mode

  std::optional<std::string> error;
  bool ok() const { return !error.has_value(); }
};

}  // namespace soctest
