#include "service/batch_scheduler.h"

#include <utility>

#include "core/improver.h"
#include "search/driver.h"
#include "search/grid.h"

namespace soctest {

BatchScheduler::BatchScheduler(const BatchOptions& options)
    : options_(options),
      cache_(CompiledProblemCache::Options{options.shards,
                                           options.cache_entries,
                                           options.core_cache_entries}),
      results_(ResultCache::Options{options.shards, options.result_entries}),
      pool_(options.threads),
      workspaces_(pool_) {}

BatchItemResult BatchScheduler::ServeOne(const BatchRequest& request, int index,
                                      ScheduleWorkspace& ws) {
  // One canonical SOC serialization per request — shared by the result key
  // and the compiled-problem lookup, which would otherwise each run
  // SerializeSoc on the same ParsedSoc.
  std::string canonical = CompiledProblemCache::CanonicalKey(request.soc);
  if (!options_.dedup) {
    return Evaluate(request, index, std::move(canonical), ws);
  }

  const std::string key =
      ResultCache::CanonicalKey(request, options_.w_max, canonical);
  const ResultCache::Lookup found = results_.Begin(key);
  std::shared_ptr<const BatchItemResult> resident = found.result;
  if (found.leader) {
    // The pool contract already forbids throwing tasks, but an uncommitted
    // key would park every joiner forever — publish an error result on
    // unwind as a backstop.
    struct CommitBackstop {
      ResultCache& cache;
      const std::string& key;
      bool armed = true;
      ~CommitBackstop() {
        if (!armed) return;
        BatchItemResult aborted;
        aborted.error = "evaluation aborted before publishing a result";
        cache.Commit(key, std::move(aborted));
      }
    } backstop{results_, key};
    resident = results_.Commit(
        key, Evaluate(request, /*index=*/-1, std::move(canonical), ws));
    backstop.armed = false;
  }
  // The resident copy is index-neutral (the leader evaluates with -1), so
  // hit, join, and leader all read the same bytes and patch their own slot
  // index — a dedup-served result is indistinguishable from an evaluation.
  BatchItemResult item = *resident;
  item.index = index;
  return item;
}

BatchItemResult BatchScheduler::Evaluate(const BatchRequest& request,
                                         int index, std::string canonical,
                                         ScheduleWorkspace& ws) {
  BatchItemResult item;
  item.index = index;
  item.soc_name = request.soc.soc.name();
  item.mode = request.mode;
  item.tam_width = request.tam_width;

  const std::shared_ptr<const CompiledProblem> compiled =
      cache_.GetOrCompile(request.soc, std::move(canonical), options_.w_max);
  if (!compiled->ok()) {
    item.error = *compiled->error();
    return item;
  }

  OptimizerParams params;
  params.tam_width = request.tam_width;
  params.w_max = options_.w_max;
  params.s_percent = request.s_percent;
  params.delta = request.delta;
  params.allow_preemption = request.preempt;
  params.power_budget_override = request.budget;
  params.honor_priority = request.use_priority;
  const GridExtent extent =
      request.wide ? GridExtent::kWide : GridExtent::kCanonical;

  switch (request.mode) {
    case BatchMode::kSchedule: {
      // A single greedy run, or the restart grid drained serially on this
      // worker's workspace — the driver's own serial overload, so the
      // reduction contract lives in exactly one place (search/driver.cc).
      item.result =
          request.search
              ? RunRestartSearch(*compiled, BuildRestartGrid(params, extent),
                                 ws)
                    .best
              : Optimize(*compiled, params, ws);
      break;
    }
    case BatchMode::kImprove: {
      // The improver (like the sweep below) manages its own serial workspace
      // internally, reused across all of this request's iterations — the
      // worker's `ws` would add nothing: its rectangle cache holds one
      // (problem, width) key, which heterogeneous requests invalidate anyway.
      ImproverParams improver;
      improver.optimizer = params;
      improver.grid = extent;
      improver.iterations = request.iterations;
      improver.batch = request.batch;
      improver.seed = request.seed;
      improver.threads = 1;  // all parallelism lives at the request level
      item.result = ImproveSchedule(*compiled, improver).best;
      break;
    }
    case BatchMode::kSweep: {
      SweepOptions sweep;
      sweep.min_width = request.sweep_min;
      sweep.max_width =
          request.sweep_max > 0 ? request.sweep_max : request.tam_width;
      sweep.optimizer = params;
      sweep.threads = 1;  // all parallelism lives at the request level
      item.sweep = SweepWidths(*compiled, sweep);
      if (item.sweep.empty()) {
        item.error = "sweep produced no feasible points";
      } else {
        item.makespan = MinTimePoint(item.sweep).test_time;
      }
      return item;
    }
  }

  if (!item.result.ok()) {
    item.error = *item.result.error;
  } else {
    item.makespan = item.result.makespan;
  }
  return item;
}

BatchOutcome BatchScheduler::Run(const std::vector<BatchRequest>& requests) {
  BatchOutcome outcome;
  outcome.results.resize(requests.size());
  pool_.ParallelForWorker(
      requests.size(), [&](std::size_t worker, std::size_t i) {
        outcome.results[i] = ServeOne(requests[i], static_cast<int>(i),
                                   workspaces_.slot(worker));
      });
  for (const BatchItemResult& item : outcome.results) {
    if (item.ok()) ++outcome.served;
  }
  outcome.cache = cache_.stats();
  outcome.dedup = results_.stats();
  outcome.core = cache_.core_stats();
  return outcome;
}

}  // namespace soctest
