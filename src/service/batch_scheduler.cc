#include "service/batch_scheduler.h"

#include <utility>

#include "core/improver.h"
#include "search/driver.h"
#include "search/grid.h"

namespace soctest {

BatchScheduler::BatchScheduler(const BatchOptions& options)
    : options_(options),
      cache_(CompiledProblemCache::Options{options.shards,
                                           options.cache_entries}),
      pool_(options.threads),
      workspaces_(pool_) {}

BatchItemResult BatchScheduler::Serve(const BatchRequest& request, int index,
                                      ScheduleWorkspace& ws) {
  BatchItemResult item;
  item.index = index;
  item.soc_name = request.soc.soc.name();
  item.mode = request.mode;
  item.tam_width = request.tam_width;

  const std::shared_ptr<const CompiledProblem> compiled =
      cache_.GetOrCompile(request.soc, options_.w_max, &item.cache_hit);
  if (!compiled->ok()) {
    item.error = *compiled->error();
    return item;
  }

  OptimizerParams params;
  params.tam_width = request.tam_width;
  params.w_max = options_.w_max;
  params.s_percent = request.s_percent;
  params.delta = request.delta;
  params.allow_preemption = request.preempt;
  const GridExtent extent =
      request.wide ? GridExtent::kWide : GridExtent::kCanonical;

  switch (request.mode) {
    case BatchMode::kSchedule: {
      // A single greedy run, or the restart grid drained serially on this
      // worker's workspace — the driver's own serial overload, so the
      // reduction contract lives in exactly one place (search/driver.cc).
      item.result =
          request.search
              ? RunRestartSearch(*compiled, BuildRestartGrid(params, extent),
                                 ws)
                    .best
              : Optimize(*compiled, params, ws);
      break;
    }
    case BatchMode::kImprove: {
      // The improver (like the sweep below) manages its own serial workspace
      // internally, reused across all of this request's iterations — the
      // worker's `ws` would add nothing: its rectangle cache holds one
      // (problem, width) key, which heterogeneous requests invalidate anyway.
      ImproverParams improver;
      improver.optimizer = params;
      improver.grid = extent;
      improver.iterations = request.iterations;
      improver.batch = request.batch;
      improver.seed = request.seed;
      improver.threads = 1;  // all parallelism lives at the request level
      item.result = ImproveSchedule(*compiled, improver).best;
      break;
    }
    case BatchMode::kSweep: {
      SweepOptions sweep;
      sweep.min_width = request.sweep_min;
      sweep.max_width =
          request.sweep_max > 0 ? request.sweep_max : request.tam_width;
      sweep.optimizer = params;
      sweep.threads = 1;  // all parallelism lives at the request level
      item.sweep = SweepWidths(*compiled, sweep);
      if (item.sweep.empty()) {
        item.error = "sweep produced no feasible points";
      } else {
        item.makespan = MinTimePoint(item.sweep).test_time;
      }
      return item;
    }
  }

  if (!item.result.ok()) {
    item.error = *item.result.error;
  } else {
    item.makespan = item.result.makespan;
  }
  return item;
}

BatchOutcome BatchScheduler::Run(const std::vector<BatchRequest>& requests) {
  BatchOutcome outcome;
  outcome.results.resize(requests.size());
  pool_.ParallelForWorker(
      requests.size(), [&](std::size_t worker, std::size_t i) {
        outcome.results[i] = Serve(requests[i], static_cast<int>(i),
                                   workspaces_.slot(worker));
      });
  for (const BatchItemResult& item : outcome.results) {
    if (item.ok()) ++outcome.served;
  }
  outcome.cache = cache_.stats();
  return outcome;
}

}  // namespace soctest
