// CoreArtifactCache — a sharded, LRU-bounded cache of per-core compiled
// wrapper artifacts (core/compiled_core.h), shared across SOC compilations.
//
// Production traffic is dominated by VARIANTS: the same SOC with one core
// swapped, a tweaked power cap, a different w_max. The compiled-problem
// cache (service/problem_cache.h) keys on the whole-SOC content hash, so
// any one-core edit misses it and — without this layer — recompiles all N
// cores. Because every per-core artifact is a pure function of (core
// wrapper fields, w_max) (the soc/core_hash.h contract), this cache makes a
// variant compile cost ~1/N: N-1 cores are fetched, one is compiled.
//
// The contracts match CompiledProblemCache's, one level down:
//
//   * Keyed by content, not provenance: the key is the per-core canonical
//     text (CanonicalCoreText — wrapper fields only, never the core's name,
//     SOC, or position) paired with w_max; routing and indexing use the
//     128-bit content hash (CoreContentHash), so distinct cores essentially
//     never share an index slot. Lookup still compares the canonical text
//     exactly — even a forced 128-bit collision (SetKeyHashHookForTest) can
//     displace an entry but never serve the wrong artifacts.
//   * Sharded: entries are distributed over N independently locked shards
//     by hash, so one SOC's cores compile without contending on one mutex.
//     Shard count shapes contention only — never results.
//   * LRU-bounded per shard: each shard holds at most floor(capacity /
//     shards) entries (minimum 1; the shard count clamps to the capacity),
//     so the total resident count never exceeds Options::capacity.
//   * Eviction-safe handout: a CompiledCore is self-contained (no external
//     references), so the shared_ptr handout trivially outlives eviction —
//     and every CompiledProblem assembled from it co-owns it.
//   * Same-key races adopt the winner: on a miss the compile runs outside
//     the shard lock; two racing requesters for one core may both compile,
//     and the loser adopts the winner's entry (both count as misses — the
//     stats describe work done, not an interleaving-independent quantity;
//     results are interleaving-independent regardless, because core
//     compilation is deterministic).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/compiled_core.h"
#include "soc/core_hash.h"
#include "soc/core_spec.h"

namespace soctest {

// Point-in-time counters, aggregated over all shards.
struct CoreCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;     // lookups that compiled (includes lost races)
  std::int64_t evictions = 0;  // entries dropped by the LRU capacity bound
  std::int64_t collisions = 0; // distinct keys displaced by a 128-bit hash
                               // collision (not a capacity signal: two hot
                               // colliding keys thrash at any capacity)
  std::int64_t compiles = 0;   // CompiledCores actually built
  int entries = 0;             // currently resident
};

class CoreArtifactCache {
 public:
  struct Options {
    int shards = 4;       // < 1 clamps to 1; > capacity clamps to capacity
    int capacity = 4096;  // hard total entry bound across shards; < 1 clamps
  };

  explicit CoreArtifactCache(const Options& options);

  CoreArtifactCache(const CoreArtifactCache&) = delete;
  CoreArtifactCache& operator=(const CoreArtifactCache&) = delete;

  // The canonical cache identity of a core: its compile-relevant fields
  // only (soc/core_hash.h).
  static std::string CanonicalKey(const CoreSpec& core);

  // 128-bit content hash of (canonical, w_max): shard router and index key.
  static CoreHash128 KeyHash(const std::string& canonical, int w_max);

  // Test-only: overrides KeyHash (pass nullptr to restore) so suites can
  // force 128-bit hash collisions between distinct cores. Not safe to flip
  // while other threads are inside GetOrCompile.
  static void SetKeyHashHookForTest(CoreHash128 (*hook)(const std::string&,
                                                        int));

  // Returns the compiled artifacts for `core` at `w_max`, compiling and
  // inserting on a miss. The returned pointer stays valid for the caller's
  // lifetime regardless of later evictions. `was_hit`, when non-null,
  // reports whether this lookup was served from cache. Requires a valid
  // core spec and w_max >= 1 (callers validate the SOC before compiling).
  CompiledCorePtr GetOrCompile(const CoreSpec& core, int w_max,
                               bool* was_hit = nullptr);

  CoreCacheStats stats() const;
  int shards() const { return static_cast<int>(shards_.size()); }
  int capacity_per_shard() const { return capacity_per_shard_; }

 private:
  struct Entry {
    std::string canonical;
    int w_max = 0;
    CompiledCorePtr core;
  };

  struct Shard {
    mutable std::mutex mutex;
    // Front = most recently used. The map indexes the list by the 128-bit
    // content hash; a collision falls back to comparing (canonical, w_max)
    // exactly.
    std::list<Entry> lru;
    struct Hash128Hasher {
      std::size_t operator()(const CoreHash128& h) const {
        return static_cast<std::size_t>(h.lo);
      }
    };
    std::unordered_map<CoreHash128, std::list<Entry>::iterator, Hash128Hasher>
        index;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::int64_t collisions = 0;
    std::int64_t compiles = 0;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  int capacity_per_shard_ = 1;
};

}  // namespace soctest
