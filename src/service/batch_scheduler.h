// BatchScheduler — the multi-SOC batch-serving layer.
//
// Generalizes the restart driver's parallelism one level up: where
// search/driver.h distributes restarts-within-one-SOC over a worker pool,
// BatchScheduler distributes requests-across-SOCs over the same runtime
// primitives (runtime/thread_pool.h + runtime/workspace_pool.h), with a
// sharded CompiledProblemCache (service/problem_cache.h) owning the compiled
// wrapper artifacts across requests.
//
// Determinism contract — the same one as search/driver.h, one level up: the
// result vector is bit-identical for every (threads, shards, dedup on/off)
// combination. Four ingredients make that true:
//   1. each request is served entirely serially on one worker (the inner
//      search / improver / sweep all run at threads = 1), and every serving
//      path is deterministic for fixed inputs;
//   2. each request writes its result into its own request-indexed slot, so
//      execution order cannot matter;
//   3. the cache can only change WHEN a CompiledProblem is built, never what
//      it contains — compilation is deterministic, so a cache hit, a miss,
//      and a post-eviction recompile all serve identical artifacts;
//   4. cross-request dedup (options.dedup + service/result_cache.h) can only
//      change WHICH request evaluates, never what any request receives —
//      identical requests evaluate identically, so a result served from the
//      result cache (or adopted from an in-flight evaluation) is
//      bit-identical to the evaluation it displaced.
// Cache STATS (hits/misses/compiles, dedup hits/joins) describe work done
// and may vary with interleaving; results never do.
//
// A BatchScheduler is long-lived: the cache and the worker pool persist
// across Run() calls, so a service loop pays compilation once per distinct
// (SOC, w_max) for as long as the entry stays resident. Run() itself is not
// re-entrant (one Run at a time per scheduler).
#pragma once

#include <string>
#include <vector>

#include "core/optimizer.h"
#include "runtime/thread_pool.h"
#include "runtime/workspace_pool.h"
#include "service/batch_item.h"
#include "service/problem_cache.h"
#include "service/request.h"
#include "service/result_cache.h"

namespace soctest {

struct BatchOptions {
  int threads = 0;        // workers serving requests (0 = hardware)
  int shards = 4;         // CompiledProblemCache / ResultCache shards
  int cache_entries = 64; // total compiled-problem capacity across shards
  int w_max = kDefaultWMax;  // compilation bound shared by every request

  // Cross-request deduplication: serve semantically identical requests one
  // evaluation (service/result_cache.h), with single-flight coordination for
  // identical requests in flight concurrently. Off by default — a batch with
  // no repetition pays the canonical-key formatting for nothing.
  bool dedup = false;
  int result_entries = 256;  // total ResultCache capacity across shards

  // Per-core artifact cache layered under the compiled-problem cache
  // (service/core_cache.h): a whole-SOC miss fetches or compiles each core
  // individually, so near-duplicate SOCs compile ~1/N of the cost. On by
  // default — core compilation is deterministic, so results are bit-identical
  // with the cache on, off, or at any capacity. 0 disables.
  int core_cache_entries = 4096;
};

struct BatchOutcome {
  std::vector<BatchItemResult> results;  // results[i] answers requests[i]
  CacheStats cache;                      // cumulative across Run() calls
  ResultCacheStats dedup;                // all-zero when options.dedup is off
  CoreCacheStats core;                   // all-zero when the core cache is off
  int served = 0;                        // results with ok()
};

class BatchScheduler {
 public:
  explicit BatchScheduler(const BatchOptions& options);

  // Serves every request and reduces into a request-indexed result vector;
  // see the determinism contract above.
  BatchOutcome Run(const std::vector<BatchRequest>& requests);

  // Serves ONE request on a caller-owned workspace — the entry the TCP
  // front-end (service/net/soc_server.h) drives from its own worker
  // threads. This is exactly the per-request path Run() distributes, so a
  // request served over a socket is bit-identical to the same request in an
  // offline batch. Thread-safe: the caches are sharded and the dedup path
  // is single-flight; concurrent callers need only distinct workspaces.
  // `index` is the caller's slot/sequence tag, echoed in the result.
  BatchItemResult ServeOne(const BatchRequest& request, int index,
                           ScheduleWorkspace& ws);

  const CompiledProblemCache& cache() const { return cache_; }
  const ResultCache& results() const { return results_; }
  int threads() const { return pool_.size(); }

 private:

  // One full evaluation (compile lookup + search/improve/sweep). `canonical`
  // is the request SOC's canonical serialization, computed once in ServeOne.
  BatchItemResult Evaluate(const BatchRequest& request, int index,
                           std::string canonical, ScheduleWorkspace& ws);

  BatchOptions options_;
  CompiledProblemCache cache_;
  ResultCache results_;
  ThreadPool pool_;
  WorkspacePool workspaces_;
};

}  // namespace soctest
