// BatchScheduler — the multi-SOC batch-serving layer.
//
// Generalizes the restart driver's parallelism one level up: where
// search/driver.h distributes restarts-within-one-SOC over a worker pool,
// BatchScheduler distributes requests-across-SOCs over the same runtime
// primitives (runtime/thread_pool.h + runtime/workspace_pool.h), with a
// sharded CompiledProblemCache (service/problem_cache.h) owning the compiled
// wrapper artifacts across requests.
//
// Determinism contract — the same one as search/driver.h, one level up: the
// result vector is bit-identical for every (threads, shards) combination.
// Three ingredients make that true:
//   1. each request is served entirely serially on one worker (the inner
//      search / improver / sweep all run at threads = 1), and every serving
//      path is deterministic for fixed inputs;
//   2. each request writes its result into its own request-indexed slot, so
//      execution order cannot matter;
//   3. the cache can only change WHEN a CompiledProblem is built, never what
//      it contains — compilation is deterministic, so a cache hit, a miss,
//      and a post-eviction recompile all serve identical artifacts.
// Cache STATS (hits/misses/compiles) describe work done and may vary with
// interleaving; results never do.
//
// A BatchScheduler is long-lived: the cache and the worker pool persist
// across Run() calls, so a service loop pays compilation once per distinct
// (SOC, w_max) for as long as the entry stays resident. Run() itself is not
// re-entrant (one Run at a time per scheduler).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "runtime/thread_pool.h"
#include "runtime/workspace_pool.h"
#include "service/problem_cache.h"
#include "service/request.h"
#include "tdv/data_volume.h"

namespace soctest {

struct BatchOptions {
  int threads = 0;        // workers serving requests (0 = hardware)
  int shards = 4;         // CompiledProblemCache shards
  int cache_entries = 64; // total cache capacity across shards
  int w_max = kDefaultWMax;  // compilation bound shared by every request
};

// One request's outcome, in the slot matching its position in the input.
struct BatchItemResult {
  int index = -1;
  std::string soc_name;
  BatchMode mode = BatchMode::kSchedule;
  int tam_width = 0;
  bool cache_hit = false;  // served from resident compiled artifacts

  // The figure every mode reports: the schedule makespan for schedule and
  // improve, the minimum test time over the sweep range for sweep; -1 on
  // failure.
  Time makespan = -1;

  OptimizerResult result;        // schedule / improve modes (sweep: empty)
  std::vector<SweepPoint> sweep; // sweep mode

  std::optional<std::string> error;
  bool ok() const { return !error.has_value(); }
};

struct BatchOutcome {
  std::vector<BatchItemResult> results;  // results[i] answers requests[i]
  CacheStats cache;                      // cumulative across Run() calls
  int served = 0;                        // results with ok()
};

class BatchScheduler {
 public:
  explicit BatchScheduler(const BatchOptions& options);

  // Serves every request and reduces into a request-indexed result vector;
  // see the determinism contract above.
  BatchOutcome Run(const std::vector<BatchRequest>& requests);

  const CompiledProblemCache& cache() const { return cache_; }
  int threads() const { return pool_.size(); }

 private:
  BatchItemResult Serve(const BatchRequest& request, int index,
                        ScheduleWorkspace& ws);

  BatchOptions options_;
  CompiledProblemCache cache_;
  ThreadPool pool_;
  WorkspacePool workspaces_;
};

}  // namespace soctest
