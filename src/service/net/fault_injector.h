// FaultInjector — the deterministic failure seam of the serving front-end.
//
// Every degraded path the server promises to survive (accept failure, a
// client whose reads or writes die mid-stream, a reader too slow to drain
// its responses, an evaluation that outlives its deadline) is reachable on
// demand through this struct, so the CTest suites exercise them as ordinary
// assertions instead of hoping a stress run stumbles into the right race.
//
// A server is given at most one injector (ServerOptions::faults, normally
// nullptr); tests own it and flip the knobs below. Budget counters
// (fail_accepts/fail_reads/fail_writes) are consumed one per I/O attempt via
// Consume; gates (hold_workers, stall_new_connection_writes) stay in force
// until the test clears them. All fields are atomic so tests mutate them
// while server threads run — no locks, no ordering requirements beyond
// "eventually observed", which the polling sites guarantee.
#pragma once

#include <atomic>

namespace soctest {

struct FaultInjector {
  // The next N accept()ed connections are dropped as if accept failed
  // (counted in ServerStats::accept_errors; the accept loop keeps going).
  std::atomic<int> fail_accepts{0};

  // The next N socket reads across all connections fail as if the peer
  // vanished: the connection tears down through the same path a real
  // ECONNRESET takes (counted in ServerStats::read_errors).
  std::atomic<int> fail_reads{0};

  // The next N response writes fail; the writing connection is closed and
  // the failure counted (ServerStats::write_errors).
  std::atomic<int> fail_writes{0};

  // While set, workers park BEFORE popping the admission queue, so a test
  // can fill the queue to a known depth (overflow shedding) or let queued
  // deadlines expire (deadline shedding) with zero scheduling races.
  std::atomic<bool> hold_workers{false};

  // Sleep this long before each evaluation — a deterministic "slow SOC"
  // for drain and backlog tests.
  std::atomic<int> eval_delay_ms{0};

  // Connections accepted while this is set have their writer stalled for
  // the connection's whole life (the flag is snapshotted at accept, so
  // clearing it afterwards un-stalls nobody) — a deterministic slow reader
  // whose response buffer fills while later connections stay live. The
  // stall yields to Stop() so a drain never waits on it.
  std::atomic<bool> stall_new_connection_writes{false};

  // Decrements `budget` if positive; true when a fault was consumed.
  static bool Consume(std::atomic<int>& budget) {
    int current = budget.load(std::memory_order_relaxed);
    while (current > 0) {
      if (budget.compare_exchange_weak(current, current - 1,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }
};

}  // namespace soctest
