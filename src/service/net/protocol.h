// Wire protocol of the TCP serving front-end — and the place the offline
// batch path and the socket path meet.
//
// Requests: one request-file line per network line (the EXACT grammar of
// service/request.h — "<soc> <width> <mode> [key=value ...]"), optionally
// carrying transport-level parameters the request grammar never sees:
//
//   deadline_ms=<n>   per-request service budget; a request still queued
//                     when it expires is shed, never evaluated
//
// Transport parameters are stripped here, BEFORE the request parser runs,
// for a load-bearing reason: they shape serving (shed or not), not
// scheduling (what a served request computes), so they must not enter
// FormatRequestParams or the dedup canonical key — two lines differing only
// in deadline_ms dedup to one evaluation.
//
// Blank lines and '#' comments are skipped without consuming a request
// index, mirroring the request-file parser, so the i-th request on a
// connection is the i-th request of the same text fed to `soctest_cli
// batch`. The control verb "STATS" (a line of its own) returns a counters
// line and also consumes no index.
//
// Responses: one line per request, tagged with the per-connection request
// index (responses to a pipelined connection may arrive out of order):
//
//   MAKESPAN req=<i> soc=<name> w=<w> mode=<m> cycles=<c>   (success)
//   ERROR req=<i> <kind>: <detail>                          (failure)
//
// with <kind> one of: parse (bad request line), overloaded (admission queue
// full), deadline (budget expired while queued), draining (shed by the
// graceful-drain hard stop), eval (the evaluation itself failed).
// FormatMakespanLine is byte-for-byte the MAKESPAN line `soctest_cli batch`
// prints — the bit-identity contract between the socket path and the
// offline path is anchored on this one formatter.
#pragma once

#include <optional>
#include <string>

#include "service/batch_item.h"
#include "service/request.h"

namespace soctest {

// One parsed network line, exactly one of the four shapes.
struct NetLine {
  enum class Kind {
    kSkip,     // blank / comment: no request index consumed
    kStats,    // control verb: respond with the server counters line
    kRequest,  // a well-formed request (+ optional transport deadline)
    kError,    // malformed: `error` says why, a parse ERROR response is owed
  };
  Kind kind = Kind::kSkip;
  BatchRequest request;                 // kRequest only
  std::optional<int> deadline_ms;       // kRequest only; nullopt = server default
  std::string error;                    // kError only
};

// Parses one network line (no trailing newline; a trailing '\r' is
// tolerated — CRLF clients exist). Total: any byte sequence yields one of
// the four shapes, never a crash — fuzz-tested alongside the .soc parser.
NetLine ParseNetLine(const std::string& line);

// "MAKESPAN req=<i> soc=<s> w=<w> mode=<m> cycles=<c>" — shared verbatim by
// the batch CLI and the server (see the bit-identity note above).
std::string FormatMakespanLine(const BatchItemResult& item);

// "ERROR req=<i> <kind>: <detail>".
std::string FormatErrorLine(int request_index, const char* kind,
                            const std::string& detail);

}  // namespace soctest
