#include "service/net/soc_server.h"

#include <condition_variable>
#include <deque>
#include <utility>

#include "service/net/protocol.h"
#include "util/strings.h"

namespace soctest {

namespace {

using Clock = std::chrono::steady_clock;

// A stream without newlines cannot be resynchronized, so a line this long
// is answered with a parse error and the connection is closed — the bound
// that keeps a hostile client from growing the read buffer without limit.
constexpr std::size_t kMaxLineBytes = std::size_t{1} << 20;

// The server's workers call ServeOne directly, so the scheduler's internal
// pool must stay serial (a pool sized to batch.threads would add idle OS
// threads the server never uses).
BatchOptions SerialSchedulerOptions(BatchOptions batch) {
  batch.threads = 1;
  return batch;
}

}  // namespace

// Per-connection state. The reader parses and admits requests, the writer
// drains the bounded outbox; both hold `mutex` only for queue/flag flips,
// never across I/O, so a stalled socket can block only its own thread.
struct SocServer::Connection {
  Socket socket;
  std::mutex mutex;
  std::condition_variable out_ready;
  std::deque<std::string> outbox;  // bounded by options.write_buffer_lines
  bool closed = false;        // fd shut down; nothing further is queued
  bool reader_done = false;   // EOF/teardown seen; writer may exit once idle
  int inflight = 0;           // requests admitted but not yet answered
  bool stall_writes = false;  // fault-injected slow reader (set at accept)
  std::thread reader;
  std::thread writer;
  std::atomic<bool> reader_exited{false};
  std::atomic<bool> writer_exited{false};
};

SocServer::SocServer(const ServerOptions& options)
    : options_(options),
      scheduler_(SerialSchedulerOptions(options.batch)),
      workspaces_(ResolveThreadCount(options.batch.threads)),
      queue_(options.admission_depth) {}

SocServer::~SocServer() { Stop(); }

bool SocServer::Start(std::string* error) {
  if (started_.load()) {
    if (error) *error = "server already started";
    return false;
  }
  ListenResult listen = ListenOnLoopback(options_.port, /*backlog=*/128);
  if (!listen.socket.valid()) {
    if (error) *error = listen.error;
    return false;
  }
  listener_ = std::move(listen.socket);
  port_ = listen.port;
  started_.store(true);

  const int workers = workspaces_.size();
  worker_threads_.reserve(static_cast<std::size_t>(workers));
  for (int slot = 0; slot < workers; ++slot) {
    worker_threads_.emplace_back(&SocServer::WorkerLoop, this, slot);
  }
  accept_thread_ = std::thread(&SocServer::AcceptLoop, this);
  return true;
}

void SocServer::AcceptLoop() {
  while (!stopping_.load()) {
    // The poll timeout doubles as the reap cadence for finished connections
    // and bounds how long Stop() waits for this loop to notice stopping_.
    const int readable = PollReadable(listener_.fd(), 100);
    ReapFinishedConnections(/*all=*/false);
    if (stopping_.load() || readable <= 0) continue;

    std::string error;
    Socket sock = AcceptConnection(listener_, &error);
    if (!sock.valid()) {
      accept_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (options_.faults &&
        FaultInjector::Consume(options_.faults->fail_accepts)) {
      accept_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;  // dropped as if accept() itself had failed
    }
    if (active_connections_.load() >= options_.max_connections) {
      // Refuse explicitly — the one response this connection will ever get
      // says why, instead of a silent close the client must guess about.
      connections_refused_.fetch_add(1, std::memory_order_relaxed);
      WriteAll(sock.fd(),
               FormatErrorLine(-1, "overloaded",
                               StrFormat("connection limit reached (max %d)",
                                         options_.max_connections)) +
                   "\n");
      continue;
    }

    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_connections_.fetch_add(1);
    auto conn = std::make_shared<Connection>();
    SetSendTimeout(sock.fd(), options_.send_timeout_ms);
    conn->socket = std::move(sock);
    conn->stall_writes =
        options_.faults && options_.faults->stall_new_connection_writes.load();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(conn);
    }
    conn->reader = std::thread(&SocServer::ReaderLoop, this, conn);
    conn->writer = std::thread(&SocServer::WriterLoop, this, conn);
  }
}

void SocServer::ReaderLoop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[4096];
  int seq = 0;
  int idle_ms = 0;
  constexpr int kPollStepMs = 100;

  while (!stopping_.load()) {
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->closed) break;
    }
    const int readable = PollReadable(conn->socket.fd(), kPollStepMs);
    if (readable < 0) {
      read_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (readable == 0) {
      idle_ms += kPollStepMs;
      if (options_.idle_timeout_ms > 0 && idle_ms >= options_.idle_timeout_ms) {
        bool quiet;
        {
          std::lock_guard<std::mutex> lock(conn->mutex);
          quiet = conn->inflight == 0 && conn->outbox.empty();
        }
        if (quiet) {
          // Nothing owed in either direction: reap the dead client.
          timeouts_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        idle_ms = 0;  // responses pending — the client is waiting on us
      }
      continue;
    }
    if (options_.faults &&
        FaultInjector::Consume(options_.faults->fail_reads)) {
      read_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    const ssize_t n = ReadSome(conn->socket.fd(), chunk, sizeof(chunk));
    if (n < 0) {
      read_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (n == 0) {
      // EOF: the client finished sending. A final unterminated line still
      // counts — half-close after the last request needs no trailing '\n'.
      if (!buffer.empty()) HandleLine(conn, seq, buffer);
      break;
    }
    idle_ms = 0;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      HandleLine(conn, seq, line);
    }
    if (buffer.size() > kMaxLineBytes) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      PushResponse(conn, FormatErrorLine(seq, "parse",
                                         "request line exceeds 1 MiB"));
      break;
    }
  }

  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->reader_done = true;
  }
  conn->out_ready.notify_all();
  conn->reader_exited.store(true);
}

void SocServer::HandleLine(const std::shared_ptr<Connection>& conn, int& seq,
                           const std::string& line) {
  NetLine parsed = ParseNetLine(line);
  switch (parsed.kind) {
    case NetLine::Kind::kSkip:
      return;
    case NetLine::Kind::kStats:
      PushResponse(conn, StatsLine());
      return;
    case NetLine::Kind::kError:
      // Malformed lines consume a request index so responses on a pipelined
      // connection stay alignable with what the client sent.
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      PushResponse(conn, FormatErrorLine(seq++, "parse", parsed.error));
      return;
    case NetLine::Kind::kRequest:
      break;
  }

  const int index = seq++;
  requests_.fetch_add(1, std::memory_order_relaxed);
  Queued item;
  item.conn = conn;
  item.seq = index;
  item.request = std::move(parsed.request);
  const int deadline_ms = parsed.deadline_ms.value_or(options_.deadline_ms);
  if (deadline_ms > 0) {
    item.has_deadline = true;
    item.deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  }
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    ++conn->inflight;
  }
  if (!queue_.TryPush(std::move(item))) {
    // Bounded admission: shed NOW with an explicit line — the reader never
    // blocks, the queue never grows past its depth.
    shed_overload_.fetch_add(1, std::memory_order_relaxed);
    PushResponse(conn,
                 FormatErrorLine(index, "overloaded",
                                 StrFormat("admission queue full (depth %d)",
                                           queue_.depth())));
    FinishRequest(conn);
  }
}

void SocServer::WorkerLoop(int slot) {
  Queued item;
  for (;;) {
    if (options_.faults) {
      // Test seam: park BEFORE popping so suites can fill the queue or let
      // deadlines expire with no scheduling race.
      while (options_.faults->hold_workers.load() && !stopping_.load()) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    if (!queue_.Pop(item)) break;

    const auto now = Clock::now();
    if (stopping_.load() && now >= drain_deadline_) {
      // Drain hard stop: the budget is spent, but every queued request
      // still gets its response — a shed, never a silent drop.
      shed_drain_.fetch_add(1, std::memory_order_relaxed);
      PushResponse(item.conn, FormatErrorLine(item.seq, "draining",
                                              "server shutting down"));
      FinishRequest(item.conn);
      item = Queued{};
      continue;
    }
    if (item.has_deadline && now > item.deadline) {
      // Deadline check at DEQUEUE: work that waited out its budget is shed
      // before it costs an evaluation.
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      PushResponse(item.conn,
                   FormatErrorLine(item.seq, "deadline",
                                   "deadline expired before evaluation"));
      FinishRequest(item.conn);
      item = Queued{};
      continue;
    }
    if (options_.faults) {
      const int delay_ms = options_.faults->eval_delay_ms.load();
      if (delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
    }

    const auto start = Clock::now();
    const BatchItemResult result =
        scheduler_.ServeOne(item.request, item.seq, workspaces_.slot(slot));
    service_us_.Record(std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - start)
                           .count());
    if (result.ok()) {
      served_.fetch_add(1, std::memory_order_relaxed);
      PushResponse(item.conn, FormatMakespanLine(result));
    } else {
      eval_failures_.fetch_add(1, std::memory_order_relaxed);
      PushResponse(item.conn,
                   FormatErrorLine(item.seq, "eval", *result.error));
    }
    FinishRequest(item.conn);
    item = Queued{};  // release the connection reference promptly
  }
}

void SocServer::PushResponse(const std::shared_ptr<Connection>& conn,
                             std::string line) {
  line += '\n';
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) {
      responses_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (static_cast<int>(conn->outbox.size()) >= options_.write_buffer_lines) {
      // Slow client: its outbox is full and the writer is not draining.
      // Close THIS connection rather than stall a shared worker or buffer
      // without bound — the drops are counted, never silent.
      conn->closed = true;
      overflow = true;
      responses_dropped_.fetch_add(
          static_cast<std::int64_t>(conn->outbox.size()) + 1,
          std::memory_order_relaxed);
      conn->outbox.clear();
    } else {
      conn->outbox.push_back(std::move(line));
      responses_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (overflow) {
    slow_client_closed_.fetch_add(1, std::memory_order_relaxed);
    conn->socket.ShutdownBoth();
  }
  conn->out_ready.notify_all();
}

void SocServer::FinishRequest(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    --conn->inflight;
  }
  // The writer's exit predicate watches inflight reach zero.
  conn->out_ready.notify_all();
}

void SocServer::WriterLoop(std::shared_ptr<Connection> conn) {
  for (;;) {
    std::string line;
    {
      std::unique_lock<std::mutex> lock(conn->mutex);
      conn->out_ready.wait(lock, [&] {
        return conn->closed || !conn->outbox.empty() ||
               (conn->reader_done && conn->inflight == 0);
      });
      if (conn->closed) break;
      if (conn->outbox.empty()) {
        if (conn->reader_done && conn->inflight == 0) break;  // fully flushed
        continue;
      }
      if (conn->stall_writes && !stopping_.load()) {
        // Fault-injected slow reader (snapshotted at accept, so it stalls
        // ONLY this connection): leave the line queued so backpressure
        // builds in the outbox, where the overflow policy can see it.
        lock.unlock();
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      line = std::move(conn->outbox.front());
      conn->outbox.pop_front();
    }

    bool failed = options_.faults &&
                  FaultInjector::Consume(options_.faults->fail_writes);
    if (!failed) failed = !WriteAll(conn->socket.fd(), line);
    if (failed) {
      write_errors_.fetch_add(1, std::memory_order_relaxed);
      std::size_t dropped;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        conn->closed = true;
        dropped = conn->outbox.size() + 1;  // + the line in hand
        conn->outbox.clear();
      }
      responses_dropped_.fetch_add(static_cast<std::int64_t>(dropped),
                                   std::memory_order_relaxed);
      conn->socket.ShutdownBoth();
      break;
    }
  }

  // Either torn down (closed) or flushed after the reader finished; both
  // ways the client gets EOF rather than a half-dead connection.
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->closed = true;
  }
  conn->out_ready.notify_all();
  conn->socket.ShutdownBoth();
  conn->writer_exited.store(true);
  active_connections_.fetch_sub(1);
}

void SocServer::ReapFinishedConnections(bool all) {
  std::vector<std::shared_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    auto keep = connections_.begin();
    for (auto& conn : connections_) {
      const bool done =
          all || (conn->reader_exited.load() && conn->writer_exited.load());
      if (done) {
        finished.push_back(std::move(conn));
      } else {
        *keep++ = std::move(conn);
      }
    }
    connections_.erase(keep, connections_.end());
  }
  for (auto& conn : finished) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
}

void SocServer::Stop() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (!started_.load() || stopped_.load()) return;

  // Publish the drain deadline BEFORE stopping_: workers read it only after
  // observing stopping_ == true, so the plain write is ordered by the
  // atomic store.
  drain_deadline_ = Clock::now() + std::chrono::milliseconds(options_.drain_ms);
  stopping_.store(true);

  // 1. Stop accepting. The accept loop notices stopping_ within its poll
  //    step; shutting the listener down also wakes a blocked poll.
  listener_.ShutdownBoth();
  accept_thread_.join();

  // 2. Stop reading: half-close every connection's read side so readers see
  //    EOF promptly instead of waiting out their poll step.
  {
    std::lock_guard<std::mutex> conns(connections_mutex_);
    for (auto& conn : connections_) conn->socket.ShutdownRead();
  }

  // 3. Drain the admission queue: no new pushes; workers keep popping until
  //    empty, serving while the drain budget lasts and shedding after.
  queue_.Close();
  for (std::thread& worker : worker_threads_) worker.join();

  // 4. Flush and join every connection. Writers exit once drained (every
  //    admitted request has produced its response by now) or once a write
  //    fails; the kernel send timeout bounds a client that stopped reading.
  ReapFinishedConnections(/*all=*/true);
  stopped_.store(true);
}

ServerStats SocServer::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.accept_errors = accept_errors_.load(std::memory_order_relaxed);
  s.connections_refused = connections_refused_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.responses_dropped = responses_dropped_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.eval_failures = eval_failures_.load(std::memory_order_relaxed);
  s.shed_overload = shed_overload_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.shed_drain = shed_drain_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.read_errors = read_errors_.load(std::memory_order_relaxed);
  s.write_errors = write_errors_.load(std::memory_order_relaxed);
  s.slow_client_closed = slow_client_closed_.load(std::memory_order_relaxed);
  s.queue_depth_peak = queue_.peak();
  s.service_time_count = service_us_.count();
  s.p50_service_us = service_us_.Percentile(50.0);
  s.p99_service_us = service_us_.Percentile(99.0);
  return s;
}

std::string SocServer::StatsLine() const {
  const ServerStats s = stats();
  const CacheStats cache = scheduler_.cache().stats();
  const ResultCacheStats dedup = scheduler_.results().stats();
  const CoreCacheStats core = scheduler_.cache().core_stats();
  return StrFormat(
      "STATS server accepted=%lld accept_errors=%lld connections_refused=%lld "
      "requests=%lld parse_errors=%lld responses=%lld responses_dropped=%lld "
      "served=%lld eval_failures=%lld shed_overload=%lld shed_deadline=%lld "
      "shed_drain=%lld timeouts=%lld read_errors=%lld write_errors=%lld "
      "slow_client_closed=%lld queue_depth_peak=%lld service_time_count=%lld "
      "p50_service_us=%lld p99_service_us=%lld cache_hits=%lld "
      "cache_misses=%lld compiles=%lld dedup_hits=%lld dedup_joins=%lld "
      "core_hits=%lld core_compiles=%lld",
      static_cast<long long>(s.accepted),
      static_cast<long long>(s.accept_errors),
      static_cast<long long>(s.connections_refused),
      static_cast<long long>(s.requests),
      static_cast<long long>(s.parse_errors),
      static_cast<long long>(s.responses),
      static_cast<long long>(s.responses_dropped),
      static_cast<long long>(s.served),
      static_cast<long long>(s.eval_failures),
      static_cast<long long>(s.shed_overload),
      static_cast<long long>(s.shed_deadline),
      static_cast<long long>(s.shed_drain),
      static_cast<long long>(s.timeouts),
      static_cast<long long>(s.read_errors),
      static_cast<long long>(s.write_errors),
      static_cast<long long>(s.slow_client_closed),
      static_cast<long long>(s.queue_depth_peak),
      static_cast<long long>(s.service_time_count),
      static_cast<long long>(s.p50_service_us),
      static_cast<long long>(s.p99_service_us),
      static_cast<long long>(cache.hits),
      static_cast<long long>(cache.misses),
      static_cast<long long>(cache.compiles),
      static_cast<long long>(dedup.hits),
      static_cast<long long>(dedup.joins),
      static_cast<long long>(core.hits),
      static_cast<long long>(core.compiles));
}

}  // namespace soctest
