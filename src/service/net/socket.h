// Thin RAII + error-string wrappers over the POSIX socket calls the serving
// front-end uses. Nothing here knows about the protocol or the server; the
// contract is just "no leaked fds, no EINTR surprises, errors as values".
//
// All factory helpers bind/connect on the IPv4 loopback interface: the
// front-end is an ingress for co-located load balancers and tests, and
// binding 127.0.0.1 keeps a dev box from accidentally exposing a port.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <sys/types.h>

namespace soctest {

// Move-only owner of a socket fd; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

  // Half-close helpers; safe on an already-closed socket.
  void ShutdownRead();
  void ShutdownWrite();
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

// Creates a listening TCP socket on 127.0.0.1:`port` (0 = kernel-assigned;
// the bound port is written back). Invalid socket + `error` on failure.
struct ListenResult {
  Socket socket;
  int port = 0;
  std::string error;
};
ListenResult ListenOnLoopback(int port, int backlog);

// Blocking accept; invalid Socket on error (errno text in *error if set).
Socket AcceptConnection(const Socket& listener, std::string* error);

// Blocking connect to 127.0.0.1:`port`; invalid Socket + *error on failure.
Socket ConnectToLoopback(int port, std::string* error);

// poll() for readability: 1 = readable (or peer closed), 0 = timeout,
// -1 = error. Retries EINTR.
int PollReadable(int fd, int timeout_ms);

// One read(); returns bytes read, 0 on EOF, -1 on error. Retries EINTR.
ssize_t ReadSome(int fd, char* buf, std::size_t len);

// Writes all of `data`, retrying partial writes and EINTR; false on error
// (including a send timeout, if one is set on the socket).
bool WriteAll(int fd, std::string_view data);

// Bounds how long a blocking send may stall on a full socket buffer before
// failing — the kernel-level half of the slow-client defense.
bool SetSendTimeout(int fd, int timeout_ms);

}  // namespace soctest
