#include "service/net/protocol.h"

#include <limits>
#include <utility>
#include <variant>
#include <vector>

#include "util/strings.h"

namespace soctest {

namespace {

// Strips transport-level `deadline_ms=` from the token stream, leaving the
// request grammar's tokens untouched (see the header for why this happens
// before the request parser runs). Returns an error string or "".
std::string ExtractTransportParams(std::vector<std::string>& tokens,
                                   std::optional<int>& deadline_ms) {
  std::vector<std::string> kept;
  kept.reserve(tokens.size());
  for (std::string& token : tokens) {
    const std::string_view view(token);
    constexpr std::string_view kKey = "deadline_ms=";
    if (!StartsWith(view, kKey)) {
      kept.push_back(std::move(token));
      continue;
    }
    const auto value = ParseInt(view.substr(kKey.size()));
    if (!value || *value <= 0 || *value > std::numeric_limits<int>::max()) {
      return "deadline_ms expects a positive integer of milliseconds";
    }
    deadline_ms = static_cast<int>(*value);
  }
  tokens = std::move(kept);
  return "";
}

}  // namespace

NetLine ParseNetLine(const std::string& line) {
  NetLine out;
  // A socket delivers raw bytes: embedded NUL and '\r' must parse as
  // ordinary (request-breaking) characters, not crash anything downstream.
  std::string_view view = TrimView(line);
  if (view.empty() || view.front() == '#') return out;  // kSkip
  if (ToLower(view) == "stats") {
    out.kind = NetLine::Kind::kStats;
    return out;
  }

  std::vector<std::string> tokens = SplitWhitespace(view);
  if (const std::string problem = ExtractTransportParams(tokens, out.deadline_ms);
      !problem.empty()) {
    out.kind = NetLine::Kind::kError;
    out.error = problem;
    return out;
  }
  std::string request_text;
  for (const std::string& token : tokens) {
    if (!request_text.empty()) request_text += ' ';
    request_text += token;
  }

  // The request-file parser IS the network request parser — one grammar, one
  // set of diagnostics, one round-trip contract. It loads the SOC eagerly,
  // so a kRequest result is fully served off embedded/compiled state.
  RequestFileResult parsed = ParseRequestText(request_text, "request");
  if (auto* err = std::get_if<RequestParseError>(&parsed)) {
    out.kind = NetLine::Kind::kError;
    out.error = std::move(err->message);
    return out;
  }
  auto& requests = std::get<std::vector<BatchRequest>>(parsed);
  if (requests.size() != 1) {
    // Unreachable for a non-blank single line, but the protocol promises
    // totality, not cleverness.
    out.kind = NetLine::Kind::kError;
    out.error = "expected exactly one request on the line";
    return out;
  }
  out.kind = NetLine::Kind::kRequest;
  out.request = std::move(requests.front());
  return out;
}

std::string FormatMakespanLine(const BatchItemResult& item) {
  return StrFormat("MAKESPAN req=%d soc=%s w=%d mode=%s cycles=%lld",
                   item.index, item.soc_name.c_str(), item.tam_width,
                   BatchModeName(item.mode),
                   static_cast<long long>(item.makespan));
}

std::string FormatErrorLine(int request_index, const char* kind,
                            const std::string& detail) {
  return StrFormat("ERROR req=%d %s: %s", request_index, kind, detail.c_str());
}

}  // namespace soctest
