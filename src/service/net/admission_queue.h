// BoundedQueue — the admission queue between connection readers and the
// serving workers, and the reason the server's memory is bounded.
//
// The DAQ-front-end shape (bounded stage, explicit shed, drop accounting):
// readers TryPush and handle `false` by shedding with an explicit ERROR
// response — there is no blocking push, so a flooded server answers
// "overloaded" instead of growing a queue or stalling its readers. Workers
// Pop (blocking); Close() wakes them all and lets the queue drain: pops
// keep succeeding until empty, so closing never discards queued work —
// what happens to the drained items (serve vs shed) is the worker's drain
// policy, not the queue's.
//
// `peak()` records the high-water depth ever reached — the capacity-planning
// counter the STATS line reports as queue_depth_peak.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace soctest {

template <typename T>
class BoundedQueue {
 public:
  // depth < 1 clamps to 1 — a zero-depth admission queue would shed every
  // request, which is never what a config meant.
  explicit BoundedQueue(int depth) : depth_(depth < 1 ? 1 : depth) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // False when full or closed — the caller owes the item an explicit shed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || static_cast<int>(items_.size()) >= depth_) return false;
      items_.push_back(std::move(item));
      if (static_cast<std::int64_t>(items_.size()) > peak_) {
        peak_ = static_cast<std::int64_t>(items_.size());
      }
    }
    ready_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed AND empty
  // (drained); false only in the latter case.
  bool Pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  // Rejects future pushes and wakes every blocked Pop; idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  int depth() const { return depth_; }

  int size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int>(items_.size());
  }

  std::int64_t peak() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_;
  }

 private:
  const int depth_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
  std::int64_t peak_ = 0;
};

}  // namespace soctest
