#include "service/net/client.h"

#include <utility>

namespace soctest {

bool LineClient::Connect(int port, std::string* error) {
  std::string problem;
  Socket socket = ConnectToLoopback(port, &problem);
  if (!socket.valid()) {
    if (error != nullptr) *error = problem;
    return false;
  }
  socket_ = std::move(socket);
  buffer_.clear();
  return true;
}

bool LineClient::SendLine(const std::string& line) {
  if (!socket_.valid()) return false;
  std::string payload = line;
  payload += '\n';
  return WriteAll(socket_.fd(), payload);
}

bool LineClient::SendRaw(const std::string& bytes) {
  if (!socket_.valid()) return false;
  return WriteAll(socket_.fd(), bytes);
}

std::optional<std::string> LineClient::ReadLine(int timeout_ms) {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    if (!socket_.valid()) return std::nullopt;
    if (timeout_ms >= 0) {
      const int readable = PollReadable(socket_.fd(), timeout_ms);
      if (readable <= 0) return std::nullopt;  // timeout or poll error
    }
    char chunk[4096];
    const long got = ReadSome(socket_.fd(), chunk, sizeof(chunk));
    if (got <= 0) {
      // EOF / error: whatever is buffered has no terminator — drop it, the
      // protocol only ever speaks whole lines.
      socket_.Close();
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

void LineClient::ShutdownWrite() { socket_.ShutdownWrite(); }

std::vector<std::string> LineClient::ReadRemaining(int timeout_ms) {
  std::vector<std::string> lines;
  while (auto line = ReadLine(timeout_ms)) lines.push_back(std::move(*line));
  return lines;
}

void LineClient::Close() {
  socket_.Close();
  buffer_.clear();
}

}  // namespace soctest
