// SocServer — the hardened TCP serving front-end over BatchScheduler.
//
// The serving stack (core cache → problem cache → result cache → batch
// scheduler) previously stopped at `soctest_cli batch <file>`; this class
// is its ingress, built failure-first: every stage between the socket and
// the schedulers is a bounded queue with an explicit shed path, so overload
// degrades into accounted ERROR lines instead of unbounded memory, silent
// drops, or a wedged process.
//
//   accept loop ──► per-connection reader ──► bounded admission queue
//                                                     │ TryPush fails:
//                                                     │ ERROR overloaded
//                                              worker threads (deadline
//                                              check at dequeue: expired
//                                              work is shed, never run)
//                                                     │
//                per-connection writer ◄── bounded per-connection outbox
//                (slow reader stalls — or loses — only its own connection)
//
// Robustness contracts, each enforced by a deterministic fault-injection
// test (service/net/fault_injector.h):
//  * Bounded admission: the queue holds at most admission_depth requests;
//    overflow answers `ERROR req=i overloaded: ...` immediately and counts
//    shed_overload. Readers never block on admission.
//  * Deadline budgets: a request carries deadline_ms= (or the server
//    default); expiry is checked when a WORKER DEQUEUES it, so work that
//    waited out its budget is shed (shed_deadline) without evaluating.
//  * Write backpressure: responses queue per connection, bounded by
//    write_buffer_lines, drained by that connection's writer with a kernel
//    send timeout behind it. A full outbox or a dead write closes THAT
//    connection (slow_client_closed / write_errors); workers never block on
//    any client's socket.
//  * Idle reaping: a connection with nothing in flight and no bytes for
//    idle_timeout_ms is closed (timeouts).
//  * Graceful drain: Stop() stops accepting, half-closes reads, then lets
//    workers drain the queue — serving while the drain_ms budget lasts,
//    shedding `ERROR ... draining:` once it runs out — flushes writers, and
//    joins everything. Every admitted request gets exactly one response;
//    the hard-stop bound is drain_ms + one in-flight evaluation + the send
//    timeout.
//
// Results are bit-identical to the offline batch path by construction: both
// go through BatchScheduler::ServeOne and print responses with the same
// formatter (service/net/protocol.h), for every (threads, shards, dedup,
// core-cache) setting — the loopback CTest asserts the bytes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/workspace_pool.h"
#include "service/batch_scheduler.h"
#include "service/net/admission_queue.h"
#include "service/net/fault_injector.h"
#include "service/net/socket.h"
#include "util/histogram.h"

namespace soctest {

struct ServerOptions {
  int port = 0;              // 0 = kernel-assigned (see SocServer::port())
  // batch.threads is the number of serving worker threads (0 = hardware);
  // the rest of BatchOptions (shards, cache capacities, dedup, w_max) shape
  // the shared caches exactly as in offline batch mode. The scheduler's own
  // pool stays serial — the server's workers drive ServeOne directly.
  BatchOptions batch;
  int admission_depth = 128; // bounded admission queue (requests)
  int deadline_ms = 0;       // default per-request budget; 0 = none
  int idle_timeout_ms = 10000;  // reap idle connections; 0 = never
  int drain_ms = 2000;       // graceful-drain budget in Stop()
  int max_connections = 64;  // concurrent connections; excess is refused
  int write_buffer_lines = 256;  // per-connection response outbox bound
  int send_timeout_ms = 2000;    // kernel-level write stall bound
  FaultInjector* faults = nullptr;  // test seam; normally nullptr
};

// Counters the STATS verb reports. Monotonic over the server's life except
// queue_depth_peak (high-water) and the percentile snapshots.
struct ServerStats {
  std::int64_t accepted = 0;          // connections taken in
  std::int64_t accept_errors = 0;     // accept() failures (injected or real)
  std::int64_t connections_refused = 0;  // over max_connections
  std::int64_t requests = 0;          // well-formed request lines admitted or shed
  std::int64_t parse_errors = 0;      // malformed lines answered ERROR parse
  std::int64_t responses = 0;         // lines queued to some connection outbox
  std::int64_t responses_dropped = 0; // queued lines lost to a dead/slow client
  std::int64_t served = 0;            // evaluations that returned ok()
  std::int64_t eval_failures = 0;     // evaluations that returned an error
  std::int64_t shed_overload = 0;     // admission queue full
  std::int64_t shed_deadline = 0;     // budget expired while queued
  std::int64_t shed_drain = 0;        // drain hard stop
  std::int64_t timeouts = 0;          // idle connections reaped
  std::int64_t read_errors = 0;       // connection reads that died
  std::int64_t write_errors = 0;      // connection writes that died
  std::int64_t slow_client_closed = 0;  // outbox overflow closes
  std::int64_t queue_depth_peak = 0;  // admission-queue high water
  std::int64_t service_time_count = 0;  // evaluations measured
  std::int64_t p50_service_us = 0;    // conservative bucket upper bounds
  std::int64_t p99_service_us = 0;
};

class SocServer {
 public:
  explicit SocServer(const ServerOptions& options);
  ~SocServer();  // Stop()s if still running

  SocServer(const SocServer&) = delete;
  SocServer& operator=(const SocServer&) = delete;

  // Binds, listens, and spawns the accept loop + worker threads. False with
  // `*error` set on failure (port in use, no fds, ...); Start is one-shot.
  bool Start(std::string* error);

  // The bound port — the useful one when options.port was 0.
  int port() const { return port_; }

  // Graceful drain (see the header comment); idempotent, safe concurrently.
  void Stop();

  ServerStats stats() const;

  // The "STATS server ..." counters line the STATS verb answers with —
  // exposed so the CLI and benches print the same bytes a client would see.
  std::string StatsLine() const;

  const BatchScheduler& scheduler() const { return scheduler_; }

 private:
  struct Connection;
  struct Queued {
    std::shared_ptr<Connection> conn;
    int seq = 0;  // per-connection request index
    BatchRequest request;
    std::chrono::steady_clock::time_point deadline{};  // epoch == none
    bool has_deadline = false;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void WriterLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop(int slot);

  void HandleLine(const std::shared_ptr<Connection>& conn, int& seq,
                  const std::string& line);
  void PushResponse(const std::shared_ptr<Connection>& conn,
                    std::string line);
  void FinishRequest(const std::shared_ptr<Connection>& conn);
  void ReapFinishedConnections(bool all);

  ServerOptions options_;
  BatchScheduler scheduler_;
  WorkspacePool workspaces_;
  BoundedQueue<Queued> queue_;
  FixedBucketHistogram service_us_;

  Socket listener_;
  int port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::chrono::steady_clock::time_point drain_deadline_{};
  std::mutex stop_mutex_;

  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::atomic<int> active_connections_{0};

  // Counters (relaxed atomics; snapshotted by stats()).
  std::atomic<std::int64_t> accepted_{0}, accept_errors_{0},
      connections_refused_{0}, requests_{0}, parse_errors_{0}, responses_{0},
      responses_dropped_{0}, served_{0}, eval_failures_{0}, shed_overload_{0},
      shed_deadline_{0}, shed_drain_{0}, timeouts_{0}, read_errors_{0},
      write_errors_{0}, slow_client_closed_{0};
};

}  // namespace soctest
