#include "service/net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/strings.h"

namespace soctest {

namespace {

std::string ErrnoText(const char* what) {
  return StrFormat("%s: %s", what, std::strerror(errno));
}

sockaddr_in LoopbackAddr(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  return addr;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

ListenResult ListenOnLoopback(int port, int backlog) {
  ListenResult result;
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    result.error = ErrnoText("socket");
    return result;
  }
  // Restart-friendly: a drained server's port is reusable immediately
  // instead of sitting in TIME_WAIT.
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    result.error = ErrnoText("bind");
    return result;
  }
  if (::listen(sock.fd(), backlog) != 0) {
    result.error = ErrnoText("listen");
    return result;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    result.error = ErrnoText("getsockname");
    return result;
  }
  result.port = ntohs(addr.sin_port);
  result.socket = std::move(sock);
  return result;
}

Socket AcceptConnection(const Socket& listener, std::string* error) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    if (error) *error = ErrnoText("accept");
    return Socket();
  }
}

Socket ConnectToLoopback(int port, std::string* error) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    if (error) *error = ErrnoText("socket");
    return Socket();
  }
  sockaddr_in addr = LoopbackAddr(port);
  for (;;) {
    if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return sock;
    }
    if (errno == EINTR) continue;
    if (error) *error = ErrnoText("connect");
    return Socket();
  }
}

int PollReadable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r >= 0) return r > 0 ? 1 : 0;
    if (errno == EINTR) continue;
    return -1;
  }
}

ssize_t ReadSome(int fd, char* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, len);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    return -1;
  }
}

bool WriteAll(int fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE, not SIGPIPE —
    // a dead client must never take the server process down.
    const ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                             MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool SetSendTimeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  return ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

}  // namespace soctest
