// LineClient — the minimal loopback client for the request-line protocol.
//
// Exists for the loopback CTests and bench/load_server: connect, send
// request lines, read response lines. It is deliberately blocking and
// single-threaded per instance — test clients want determinism, not
// throughput — but ReadLine takes a timeout so a test that expects NO
// response (a shed connection, a stalled writer) can assert that without
// hanging CTest.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "service/net/socket.h"

namespace soctest {

class LineClient {
 public:
  LineClient() = default;

  // Connects to 127.0.0.1:port. False (with *error) on failure.
  bool Connect(int port, std::string* error);

  bool connected() const { return socket_.valid(); }

  // Sends `line` + '\n'. False when the connection is dead.
  bool SendLine(const std::string& line);

  // Sends bytes exactly as given — the seam for testing unterminated lines
  // and oversized floods. False when the connection is dead.
  bool SendRaw(const std::string& bytes);

  // Next '\n'-terminated line (terminator stripped), or nullopt on EOF /
  // error / timeout. timeout_ms < 0 blocks indefinitely.
  std::optional<std::string> ReadLine(int timeout_ms = -1);

  // Half-close: tells the server this client is done sending. Responses can
  // still be read — the drain tests end exactly this way.
  void ShutdownWrite();

  // Reads lines until EOF (or until a single read stalls past timeout_ms).
  std::vector<std::string> ReadRemaining(int timeout_ms = 5000);

  void Close();

 private:
  Socket socket_;
  std::string buffer_;  // bytes read past the last returned line
};

}  // namespace soctest
