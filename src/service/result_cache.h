// ResultCache — cross-request, single-flight deduplication of batch results.
//
// The problem cache (service/problem_cache.h) removes re-COMPILATION; this
// cache removes re-EVALUATION. Two request lines with the same semantic
// identity — same SOC content, same w_max, same mode, same value for every
// parameter that mode consumes — pay one restart-grid / improver / sweep run
// between them, and both receive the same BatchItemResult. Determinism is
// what makes that safe: every serving path is deterministic for fixed
// inputs, so a cached result is bit-identical to the evaluation it displaced
// and dedup can never change batch output (the scheduler's (threads, shards,
// dedup) bit-identity contract in service/batch_scheduler.h).
//
// Identity is textual — see CanonicalKey: a 128-bit content hash of the
// SOC's canonical serialization (never the spec token: `d695`, a copy of it
// on disk, and `file:./d695` all dedup together), the compilation bound
// w_max, and the hardened FormatRequestParams encoding, which emits exactly
// the parameters the request's mode consults. Lookup compares full key
// strings, so a 64-bit routing-hash collision between distinct keys can
// displace a resident entry (counted in `collisions`) but can never serve
// the wrong schedule.
//
// Single-flight: when an identical request arrives while the first is still
// evaluating, it blocks on the leader's future instead of starting a
// duplicate evaluation — the problem cache's adopt-the-winner race
// discipline, strengthened from "both compute, loser adopts" to "only the
// leader computes" (evaluations cost orders of magnitude more than
// compiles). The wait cannot deadlock on the batch scheduler's fixed worker
// pool: a follower only ever blocks on a key whose leader registered the
// in-flight entry from inside its own evaluation turn, i.e. the leader is
// already running to completion on another worker.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/batch_item.h"
#include "service/request.h"

namespace soctest {

// Point-in-time counters, aggregated over all shards. hits + joins is the
// work saved; misses is the evaluations actually run.
struct ResultCacheStats {
  std::int64_t hits = 0;       // served from a completed resident result
  std::int64_t joins = 0;      // waited on an in-flight evaluation
  std::int64_t misses = 0;     // evaluations started (Begin returned leader)
  std::int64_t evictions = 0;  // entries dropped by the LRU capacity bound
  std::int64_t collisions = 0; // distinct keys displaced by a hash collision
  int entries = 0;             // currently resident
};

class ResultCache {
 public:
  struct Options {
    int shards = 4;      // < 1 clamps to 1; > capacity clamps to capacity
    int capacity = 256;  // hard total entry bound across shards; < 1 clamps
  };

  explicit ResultCache(const Options& options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // The canonical dedup identity of `request` served at `w_max`:
  //   "<128-bit SOC content hash> w<w_max> <FormatRequestParams(request)>"
  // The second overload takes the SOC's canonical serialization
  // (CompiledProblemCache::CanonicalKey) precomputed, so a caller that also
  // feeds the problem cache serializes the SOC once.
  static std::string CanonicalKey(const BatchRequest& request, int w_max);
  static std::string CanonicalKey(const BatchRequest& request, int w_max,
                                  const std::string& soc_canonical);

  // 64-bit FNV-1a of the key: shard router and completed-entry index.
  static std::uint64_t KeyHash(const std::string& key);

  // Test-only: overrides KeyHash (pass nullptr to restore) so suites can
  // force collisions. Not safe to flip while other threads are inside
  // Begin/Commit.
  static void SetKeyHashHookForTest(std::uint64_t (*hook)(const std::string&));

  // Exactly one of the two shapes on return:
  //   * result != nullptr (leader == false): a resident result (hit), or an
  //     in-flight leader's result this call blocked for (joined == true);
  //   * result == nullptr, leader == true: the caller owns the evaluation
  //     and MUST call Commit(key, ...) exactly once, error results included
  //     (failures are as deterministic as successes, so they cache too —
  //     and an uncommitted key would block joiners forever).
  struct Lookup {
    std::shared_ptr<const BatchItemResult> result;
    bool leader = false;
    bool joined = false;
  };
  Lookup Begin(const std::string& key);

  // Publishes the leader's result: wakes every joiner with it, inserts it
  // into the LRU (with collision / capacity accounting), and returns the
  // resident copy. The caller's per-request fields (index) are expected to
  // be neutral — every consumer, leader included, patches its own.
  std::shared_ptr<const BatchItemResult> Commit(const std::string& key,
                                                BatchItemResult result);

  ResultCacheStats stats() const;
  int shards() const { return static_cast<int>(shards_.size()); }
  int capacity_per_shard() const { return capacity_per_shard_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const BatchItemResult> result;
  };

  // One pending evaluation. Joiners wait on `future` outside the shard lock;
  // the map below is keyed by the exact key string (not the hash), so a
  // routing-hash collision can never join the wrong evaluation.
  struct InFlight {
    std::promise<std::shared_ptr<const BatchItemResult>> promise;
    std::shared_future<std::shared_ptr<const BatchItemResult>> future;
  };

  struct Shard {
    mutable std::mutex mutex;
    // Front = most recently used. The index maps key hash -> list position;
    // hash collisions fall back to comparing the key strings exactly.
    std::list<Entry> lru;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight;
    std::int64_t hits = 0;
    std::int64_t joins = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::int64_t collisions = 0;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  int capacity_per_shard_ = 1;
};

}  // namespace soctest
