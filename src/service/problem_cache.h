// CompiledProblemCache — a sharded, LRU-bounded cache of CompiledProblems
// for the multi-SOC batch-serving layer.
//
// A long-lived service answering schedule requests for many SOCs pays the
// wrapper-compilation cost (CompiledProblem construction — by far the
// dominant cost of a cold request, see core/compiled_problem.h) once per
// distinct (SOC, w_max) pair instead of once per request. The cache is the
// layer that owns those artifacts across requests:
//
//   * Keyed by content, not provenance: the key is the canonical .soc
//     serialization of the parsed SOC plus its declared constraints
//     (SerializeSoc round-trips the format), paired with w_max. Two request
//     files pointing at byte-different paths with the same SOC hit the same
//     entry; routing uses a 64-bit FNV-1a hash of that canonical text.
//   * Sharded: entries are distributed over N independently locked shards by
//     key hash, so concurrent requests for different SOCs never contend on
//     one mutex. Shard count shapes contention only — never results.
//   * LRU-bounded per shard: each shard holds at most floor(capacity /
//     shards) entries (minimum 1; the shard count itself clamps to the
//     capacity) and evicts its least recently used — so the total resident
//     count never exceeds Options::capacity.
//   * Eviction-safe handout: lookups return shared_ptr<const CompiledProblem>
//     aliased to the cache entry (which owns the TestProblem the compiled
//     artifacts reference), so an in-flight request keeps its problem alive
//     even if the entry is evicted mid-request. Compilation is deterministic,
//     so a recompiled entry is indistinguishable from the evicted one —
//     eviction can never change a schedule.
//
// Thread safety: all methods are safe to call concurrently. On a miss the
// compile runs outside the shard lock; two racing requesters for the same
// key may both compile, and the loser adopts the winner's entry (both count
// as misses — the stats describe work done, not an interleaving-independent
// quantity; results are interleaving-independent regardless).
//
// Incremental compilation: with Options::core_entries > 0 the cache layers a
// CoreArtifactCache (service/core_cache.h) UNDER itself — a whole-SOC miss
// fetches or compiles each core's artifacts individually and assembles the
// CompiledProblem from them, so a near-duplicate SOC (one core edited) pays
// one core's wrapper design instead of N. Core compilation is deterministic,
// so the assembled problem is bit-identical to a monolithic compile and
// nothing above this layer (BatchScheduler, ResultCache, the (threads,
// shards, dedup) bit-identity contract) can tell the difference.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/compiled_problem.h"
#include "core/problem.h"
#include "service/core_cache.h"
#include "soc/soc_parser.h"

namespace soctest {

// Point-in-time counters, aggregated over all shards.
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;     // lookups that compiled (includes lost races)
  std::int64_t evictions = 0;  // entries dropped by the LRU capacity bound
  std::int64_t collisions = 0; // distinct keys displaced by a 64-bit hash
                               // collision (not a capacity signal: two hot
                               // colliding keys thrash at any capacity)
  std::int64_t compiles = 0;   // CompiledProblems actually built
  int entries = 0;             // currently resident
};

class CompiledProblemCache {
 public:
  struct Options {
    int shards = 4;     // < 1 clamps to 1; > capacity clamps to capacity
    int capacity = 64;  // hard total entry bound across shards; < 1 clamps to 1
    // Capacity of the per-core artifact cache layered under this one
    // (service/core_cache.h); 0 disables it, making every whole-SOC miss a
    // monolithic compile. Either way the compiled artifacts are bit-identical.
    int core_entries = 0;
  };

  explicit CompiledProblemCache(const Options& options);

  CompiledProblemCache(const CompiledProblemCache&) = delete;
  CompiledProblemCache& operator=(const CompiledProblemCache&) = delete;

  // The canonical cache identity of a parsed SOC: its serialized text, which
  // captures the cores, constraints, and power budget byte-for-byte.
  static std::string CanonicalKey(const ParsedSoc& parsed);

  // 64-bit FNV-1a of (canonical, w_max): shard router and hash-map key.
  static std::uint64_t KeyHash(const std::string& canonical, int w_max);

  // Test-only: overrides KeyHash (pass nullptr to restore) so suites can
  // force hash collisions between distinct keys. Not safe to flip while
  // other threads are inside GetOrCompile.
  static void SetKeyHashHookForTest(std::uint64_t (*hook)(const std::string&,
                                                          int));

  // Returns the compiled artifacts for `parsed` at `w_max`, compiling and
  // inserting on a miss. The returned pointer (and the TestProblem it
  // references) stays valid for the caller's lifetime regardless of later
  // evictions. `was_hit`, when non-null, reports whether this lookup was
  // served from cache. A CompiledProblem that failed to compile (!ok()) is
  // cached too: the error is deterministic, so re-asking cannot fix it.
  std::shared_ptr<const CompiledProblem> GetOrCompile(const ParsedSoc& parsed,
                                                      int w_max,
                                                      bool* was_hit = nullptr);

  // As above, with CanonicalKey(parsed) precomputed by the caller — the
  // batch scheduler serializes each request's SOC once and shares the text
  // between the result-cache key and this lookup.
  std::shared_ptr<const CompiledProblem> GetOrCompile(const ParsedSoc& parsed,
                                                      std::string canonical,
                                                      int w_max,
                                                      bool* was_hit = nullptr);

  CacheStats stats() const;
  int shards() const { return static_cast<int>(shards_.size()); }
  int capacity_per_shard() const { return capacity_per_shard_; }

  // The per-core artifact cache, or nullptr when Options::core_entries == 0.
  const CoreArtifactCache* core_cache() const { return core_cache_.get(); }

  // Core-level counters; all zeros when the core cache is disabled.
  CoreCacheStats core_stats() const;

 private:
  // One cached compilation. `problem` must never move after `compiled` is
  // built (the CompiledProblem holds a reference into it), which the
  // heap-allocated, never-relocated Entry guarantees.
  struct Entry {
    std::string canonical;
    int w_max = 0;
    TestProblem problem;
    std::unique_ptr<CompiledProblem> compiled;
  };

  struct Shard {
    mutable std::mutex mutex;
    // Front = most recently used. The map indexes the list by key hash;
    // hash collisions fall back to comparing (canonical, w_max) exactly.
    std::list<std::shared_ptr<Entry>> lru;
    std::unordered_map<std::uint64_t,
                       std::list<std::shared_ptr<Entry>>::iterator>
        index;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::int64_t collisions = 0;
    std::int64_t compiles = 0;
  };

  // Builds a cache entry, compiling the SOC. With the core cache enabled and
  // a valid (soc, w_max), fetches each core's artifacts from it and uses the
  // assembly constructor; otherwise compiles monolithically.
  std::shared_ptr<Entry> Compile(const ParsedSoc& parsed,
                                 std::string canonical, int w_max) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  int capacity_per_shard_ = 1;
  std::unique_ptr<CoreArtifactCache> core_cache_;
};

}  // namespace soctest
