// Batch request model + request-file parser for the batch-serving layer.
//
// A request file is line-oriented ('#' starts a comment, blank lines are
// ignored); each line is one schedule request:
//
//   <soc> <width> <mode> [key=value ...]
//
//   <soc>    embedded benchmark name (d695, p22810s, ...) or a .soc file
//            path; an existing file wins over a benchmark of the same name,
//            and the explicit forms "bench:<name>" / "file:<path>" force
//            either resolution (soc/benchmarks.h LoadSocSpec)
//   <width>  the SOC TAM width to schedule at (positive integer)
//   <mode>   schedule | improve | sweep
//
// Optional key=value flags (any order; unknown keys and keys that do not
// apply to the line's mode are diagnosed with file:line):
//
//   all modes: preempt={0,1}  s=<percent>  delta=<int>
//              budget=<start:pmax[,start:pmax...]>  (power-budget override —
//                a piecewise-constant timeline; see constraints/power.h
//                ParseBudgetTimeline for the grammar and validation)
//              prio={0,1}  (honor per-core priority classes; default 1)
//   schedule:  search={0,1}  wide={0,1}   (restart-grid search / wide grid;
//                                          wide=1 requires search=1)
//   improve:   iters=<n>  batch=<k>  seed=<n>  wide={0,1}
//   sweep:     min=<w>  max=<w>              (default: min=1, max=<width>)
//
// Example:
//
//   d695        24 schedule search=1
//   designs/a.soc 32 improve iters=64 batch=8 preempt=1
//   d695        16 sweep min=8 max=16
//
// The parser loads each line's SOC eagerly (so every diagnostic carries the
// request file's line), via soc/benchmarks.h for embedded names and
// soc/soc_parser.h for paths.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "constraints/power.h"
#include "soc/soc_parser.h"

namespace soctest {

enum class BatchMode { kSchedule, kImprove, kSweep };

// "schedule" / "improve" / "sweep".
const char* BatchModeName(BatchMode mode);

struct BatchRequest {
  std::string soc_spec;  // the <soc> token as written (diagnostics/reports)
  ParsedSoc soc;         // loaded SOC + declared constraints
  int tam_width = 32;
  BatchMode mode = BatchMode::kSchedule;

  // Shared scheduler knobs.
  bool preempt = false;
  double s_percent = 5.0;
  int delta = 1;

  // Power-budget override: validated segments handed to the optimizer as
  // OptimizerParams::power_budget_override. Empty = use the SOC's declared
  // budget (powermax/powerbudget directives), if any.
  std::vector<PowerBudget::Segment> budget;

  // Honor per-core priority classes (CoreSpec::prio). prio=0 schedules as if
  // every core had class 0 — the pre-priority behavior.
  bool use_priority = true;

  // schedule mode: run the restart-grid search instead of a single greedy
  // pass; `wide` selects the extended grid (also honored by improve mode).
  bool search = false;
  bool wide = false;

  // improve mode.
  int iterations = 32;
  int batch = 8;
  std::uint64_t seed = 1;

  // sweep mode; sweep_max = 0 means "the tam_width column".
  int sweep_min = 1;
  int sweep_max = 0;
};

// One request back as a request-file line (no <soc> re-serialization — the
// original spec token is reused). Non-default flags only, fixed order, each
// flag emitted only for modes that accept it and only when it shapes what
// Serve() runs. Two consequences, both load-bearing:
//   * Format output always re-parses, and Parse(Format(r)) reproduces every
//     semantic field of r — the round-trip contract;
//   * two requests that schedule identically format identically, which is
//     what lets the line double as the dedup canonical key
//     (service/result_cache.h).
std::string FormatRequestLine(const BatchRequest& request);

// The line minus the leading <soc> token: "<width> <mode> [key=value ...]".
// This is the parameter half of the dedup key — the SOC half is hashed from
// content, not from the spec token, so two spellings of one SOC dedup.
std::string FormatRequestParams(const BatchRequest& request);

struct RequestParseError {
  std::string file;  // request file (label passed to ParseRequestText)
  int line = 0;      // 1-based; 0 = file-level
  std::string message;

  std::string ToString() const;  // "file:line: message"
};

using RequestFileResult =
    std::variant<std::vector<BatchRequest>, RequestParseError>;

// Parses request lines from text; `file` labels diagnostics.
RequestFileResult ParseRequestText(const std::string& text,
                                   const std::string& file);

// Reads and parses a request file from disk.
RequestFileResult LoadRequestFile(const std::string& path);

}  // namespace soctest
