#include "service/result_cache.h"

#include <algorithm>
#include <utility>

#include "service/problem_cache.h"
#include "util/strings.h"

namespace soctest {
namespace {

// Test hook for KeyHash; see SetKeyHashHookForTest.
std::uint64_t (*g_key_hash_hook)(const std::string&) = nullptr;

// FNV-1a with a caller-chosen offset basis. CanonicalKey concatenates two
// differently seeded 64-bit digests of the SOC text into a 128-bit content
// hash: the key must identify the SOC essentially collision-free, because a
// content-hash collision here would silently serve the wrong schedule (the
// exact-text fallback that saves the problem cache has nothing to compare —
// the SOC text is not part of the result key).
std::uint64_t Fnv1a(const std::string& text, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

void ResultCache::SetKeyHashHookForTest(
    std::uint64_t (*hook)(const std::string&)) {
  g_key_hash_hook = hook;
}

ResultCache::ResultCache(const Options& options) {
  const int capacity = std::max(1, options.capacity);
  // Same bound discipline as the problem cache: shards * per-shard capacity
  // never exceeds the requested total.
  const int shards = std::min(std::max(1, options.shards), capacity);
  capacity_per_shard_ = std::max(1, capacity / shards);
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string ResultCache::CanonicalKey(const BatchRequest& request, int w_max) {
  return CanonicalKey(request, w_max,
                      CompiledProblemCache::CanonicalKey(request.soc));
}

std::string ResultCache::CanonicalKey(const BatchRequest& request, int w_max,
                                      const std::string& soc_canonical) {
  return StrFormat(
      "%016llx%016llx w%d %s",
      static_cast<unsigned long long>(
          Fnv1a(soc_canonical, 14695981039346656037ull)),
      static_cast<unsigned long long>(
          Fnv1a(soc_canonical, 0x9e3779b97f4a7c15ull)),
      w_max, FormatRequestParams(request).c_str());
}

std::uint64_t ResultCache::KeyHash(const std::string& key) {
  if (g_key_hash_hook != nullptr) return g_key_hash_hook(key);
  return Fnv1a(key, 14695981039346656037ull);
}

ResultCache::Lookup ResultCache::Begin(const std::string& key) {
  const std::uint64_t hash = KeyHash(key);
  Shard& shard = *shards_[hash % shards_.size()];

  std::shared_future<std::shared_ptr<const BatchItemResult>> wait_on;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(hash);
    if (it != shard.index.end() && it->second->key == key) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++shard.hits;
      return {shard.lru.front().result, /*leader=*/false, /*joined=*/false};
    }
    const auto in = shard.inflight.find(key);
    if (in == shard.inflight.end()) {
      auto flight = std::make_shared<InFlight>();
      flight->future = flight->promise.get_future().share();
      shard.inflight.emplace(key, std::move(flight));
      ++shard.misses;
      return {nullptr, /*leader=*/true, /*joined=*/false};
    }
    ++shard.joins;
    wait_on = in->second->future;
  }
  // Block outside the shard lock: other keys keep flowing while we wait for
  // the leader (who is already running — see the deadlock note on the class).
  return {wait_on.get(), /*leader=*/false, /*joined=*/true};
}

std::shared_ptr<const BatchItemResult> ResultCache::Commit(
    const std::string& key, BatchItemResult result) {
  auto resident = std::make_shared<const BatchItemResult>(std::move(result));
  const std::uint64_t hash = KeyHash(key);
  Shard& shard = *shards_[hash % shards_.size()];

  std::shared_ptr<InFlight> flight;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto in = shard.inflight.find(key);
    if (in != shard.inflight.end()) {
      flight = std::move(in->second);
      shard.inflight.erase(in);
    }
    const auto it = shard.index.find(hash);
    if (it != shard.index.end()) {
      if (it->second->key == key) {
        // Can only happen on a Commit without a matching Begin (the in-flight
        // entry excludes a second leader); refresh the resident result.
        it->second->result = resident;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      } else {
        // Hash collision between distinct keys: the newcomer replaces the
        // squatter (the index holds one entry per hash). Counted apart from
        // capacity evictions — growing the cache cannot fix a collision.
        shard.lru.erase(it->second);
        shard.index.erase(it);
        ++shard.collisions;
      }
    }
    if (shard.index.find(hash) == shard.index.end()) {
      shard.lru.push_front(Entry{key, resident});
      shard.index[hash] = shard.lru.begin();
      while (static_cast<int>(shard.lru.size()) > capacity_per_shard_) {
        shard.index.erase(KeyHash(shard.lru.back().key));
        shard.lru.pop_back();
        ++shard.evictions;
      }
    }
  }
  // Wake joiners off the shard lock; an evicted-before-woken entry is fine,
  // the future holds its own reference.
  if (flight) flight->promise.set_value(resident);
  return resident;
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.hits += shard->hits;
    out.joins += shard->joins;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.collisions += shard->collisions;
    out.entries += static_cast<int>(shard->lru.size());
  }
  return out;
}

}  // namespace soctest
