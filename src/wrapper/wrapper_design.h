// Test wrapper design for a single core (the paper's Design_wrapper, after
// Iyengar/Chakrabarty/Marinissen JETTA'02): partition the core's internal
// scan chains and functional I/O wrapper cells into `w` wrapper scan chains
// so that the longest wrapper scan-in / scan-out chain is minimized, then
// derive the core test application time.
//
// Test time model (standard for TAM-based scan test):
//   T(w) = (1 + max(s_i, s_o)) * p + min(s_i, s_o)
// where p is the pattern count, s_i the longest wrapper scan-in chain and
// s_o the longest wrapper scan-out chain: each pattern overlaps the shift-out
// of the previous response with the shift-in of the next stimulus, plus one
// final flush of min(s_i, s_o)... (the max-side flush is accounted in the
// (1 + max) * p term).
#pragma once

#include <cstdint>
#include <vector>

#include "soc/core_spec.h"
#include "util/interval.h"

namespace soctest {

// One wrapper scan chain: a set of internal scan chains (we store only the
// total length) plus input/output wrapper cells threaded onto it.
struct WrapperChain {
  std::int64_t scan_cells = 0;          // sum of internal chain lengths
  std::vector<int> internal_chains;     // indices into CoreSpec::scan_chain_lengths
  int input_cells = 0;                  // wrapper input cells on this chain
  int output_cells = 0;                 // wrapper output cells on this chain

  std::int64_t ScanInLength() const { return scan_cells + input_cells; }
  std::int64_t ScanOutLength() const { return scan_cells + output_cells; }
};

// A complete wrapper design for one core at a given TAM width.
struct WrapperConfig {
  int tam_width = 0;                 // requested width w
  int used_width = 0;                // chains actually populated (<= w)
  std::vector<WrapperChain> chains;  // size == used_width

  std::int64_t scan_in_length = 0;   // s_i = max_j ScanInLength(j)
  std::int64_t scan_out_length = 0;  // s_o = max_j ScanOutLength(j)

  // Test application time for `patterns` test patterns under the model above.
  Time TestTime(std::int64_t patterns) const;
};

// Designs a wrapper for `core` with at most `tam_width` wrapper chains using
// the Best-Fit-Decreasing heuristic. tam_width must be >= 1.
WrapperConfig DesignWrapper(const CoreSpec& core, int tam_width);

// Convenience: test time of `core` at TAM width `tam_width`.
Time WrapperTestTime(const CoreSpec& core, int tam_width);

}  // namespace soctest
