#include "wrapper/rectangles.h"

#include <algorithm>
#include <cassert>

namespace soctest {

RectangleSet::RectangleSet(const CoreSpec& core, int w_max, int w_limit)
    : core_id_(core.id),
      w_limit_(std::max(1, std::min(w_max, w_limit))),
      curve_(core, std::max(1, w_max)) {
  const auto all = ParetoPoints(curve_);
  for (const auto& p : all) {
    if (p.width <= w_limit_) pareto_.push_back(p);
  }
  assert(!pareto_.empty());  // width 1 is always Pareto-optimal
}

RectangleSet::RectangleSet(CoreId core_id, TimeCurve curve, int w_limit)
    : core_id_(core_id),
      w_limit_(std::max(1, std::min(curve.w_max(), w_limit))),
      curve_(std::move(curve)) {
  const auto all = ParetoPoints(curve_);
  for (const auto& p : all) {
    if (p.width <= w_limit_) pareto_.push_back(p);
  }
  assert(!pareto_.empty());  // width 1 is always Pareto-optimal
}

RectangleSet::RectangleSet(CoreId core_id, TimeCurve curve,
                           const std::vector<ParetoPoint>& pareto, int w_limit)
    : core_id_(core_id),
      w_limit_(std::max(1, std::min(curve.w_max(), w_limit))),
      curve_(std::move(curve)) {
  // `pareto` is sorted by width, so the clip is the longest prefix with
  // width <= w_limit_: find its length, then bulk-copy.
  std::size_t len = 0;
  while (len < pareto.size() && pareto[len].width <= w_limit_) ++len;
  pareto_.assign(pareto.begin(), pareto.begin() + static_cast<std::ptrdiff_t>(len));
  assert(!pareto_.empty());  // width 1 is always Pareto-optimal
}

Time RectangleSet::TimeAtWidth(int w) const {
  return curve_.TimeAt(SnapWidth(w));
}

int RectangleSet::SnapWidth(int w) const {
  w = std::clamp(w, 1, w_limit_);
  return LargestParetoWidthAtMost(pareto_, w);
}

int RectangleSet::MaxWidth() const { return pareto_.back().width; }

Time RectangleSet::MinTime() const { return pareto_.back().time; }

std::int64_t RectangleSet::MinArea() const { return MinAreaAtMost(w_limit_); }

Time RectangleSet::MinTimeAtMost(int w) const {
  w = std::clamp(w, 1, w_limit_);
  Time best = pareto_.front().time;  // width 1 is always Pareto-optimal
  for (const auto& p : pareto_) {
    if (p.width <= w) best = p.time;  // sorted by width, time decreasing
  }
  return best;
}

std::int64_t RectangleSet::MinAreaAtMost(int w) const {
  w = std::clamp(w, 1, w_limit_);
  std::int64_t best = -1;
  for (const auto& p : pareto_) {
    if (p.width > w) continue;
    const std::int64_t area = static_cast<std::int64_t>(p.width) * p.time;
    if (best < 0 || area < best) best = area;
  }
  return best;
}

std::vector<RectangleSet> BuildRectangleSets(const Soc& soc, int w_max,
                                             int w_limit) {
  std::vector<RectangleSet> out;
  out.reserve(static_cast<std::size_t>(soc.num_cores()));
  for (const auto& core : soc.cores()) {
    out.emplace_back(core, w_max, w_limit);
  }
  return out;
}

}  // namespace soctest
