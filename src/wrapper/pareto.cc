#include "wrapper/pareto.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace soctest {

std::vector<ParetoPoint> ParetoPoints(const TimeCurve& curve) {
  std::vector<ParetoPoint> out;
  for (int w = 1; w <= curve.w_max(); ++w) {
    if (w == 1 || curve.TimeAt(w) < curve.TimeAt(w - 1)) {
      out.push_back(ParetoPoint{w, curve.TimeAt(w)});
    }
  }
  return out;
}

int PreferredWidth(const TimeCurve& curve, const PreferredWidthParams& params) {
  assert(!curve.empty());
  const Time floor_time = curve.TimeAt(curve.w_max());
  const double slack = std::max(0.0, params.s_percent) / 100.0;
  const auto threshold = static_cast<Time>(
      std::floor(static_cast<double>(floor_time) * (1.0 + slack)));

  int preferred = curve.w_max();
  for (int w = 1; w <= curve.w_max(); ++w) {
    if (curve.TimeAt(w) <= threshold) {
      preferred = w;
      break;
    }
  }

  // Snap to the Pareto grid: the preferred width is by construction a width
  // where the curve just crossed the threshold, which is a Pareto width (the
  // time strictly dropped there or w == 1).
  const int top = curve.SaturationWidth();
  if (top - preferred <= params.delta && top > preferred) {
    preferred = top;
  }
  return preferred;
}

int LargestParetoWidthAtMost(const std::vector<ParetoPoint>& pareto, int w) {
  int best = 1;
  for (const auto& p : pareto) {
    if (p.width <= w) best = std::max(best, p.width);
  }
  return best;
}

}  // namespace soctest
