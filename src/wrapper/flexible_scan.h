// Flexible scan-chain wrapper model (the Aerts/Marinissen-style assumption
// of paper ref [1], which this paper explicitly does NOT make: "Unlike in
// [1], we assume that the lengths of scan chains are fixed").
//
// Here the core's flip-flops may be stitched into any number of equal-length
// chains at wrapper-design time, so at TAM width w every wrapper chain gets
// ceil(FF / w) scan cells plus balanced I/O cells. This is a lower bound on
// what any fixed-chain wrapper can achieve for the same flip-flop count —
// exposed so users can quantify the cost of the paper's fixed-chain
// assumption on their designs.
#pragma once

#include "soc/core_spec.h"
#include "util/interval.h"
#include "wrapper/time_curve.h"

namespace soctest {

// Test time at width w assuming freely re-stitchable scan chains.
Time FlexibleScanTestTime(const CoreSpec& core, int tam_width);

// Full curve (1..w_max), same conventions as TimeCurve.
std::vector<Time> FlexibleScanCurve(const CoreSpec& core, int w_max);

// Aggregate penalty of fixed chains for one core: max over w in [1, w_max]
// of T_fixed(w) / T_flexible(w). 1.0 = the fixed chains cost nothing.
double FixedChainPenalty(const CoreSpec& core, int w_max);

}  // namespace soctest
