// The core test-time-vs-TAM-width curve T(w), w = 1..w_max.
//
// T(w) is a non-increasing staircase: it only drops at core-specific
// thresholds (paper Fig. 1). TimeCurve caches the full curve so Pareto
// extraction, preferred-width selection, and the scheduler can query it in
// O(1) per width.
#pragma once

#include <vector>

#include "soc/core_spec.h"
#include "util/interval.h"

namespace soctest {

class TimeCurve {
 public:
  TimeCurve() = default;

  // Computes T(w) for w in [1, w_max] by running DesignWrapper at each width.
  TimeCurve(const CoreSpec& core, int w_max);

  int w_max() const { return static_cast<int>(times_.size()); }
  bool empty() const { return times_.empty(); }

  // T(w); w is clamped into [1, w_max].
  Time TimeAt(int w) const;

  // Scan flush/reload cost (s_i + s_o) of the wrapper designed at width w —
  // the per-preemption penalty the scheduler pays when a test resumes after a
  // gap (paper Section 4, Assign line 5). Recorded for free while computing
  // T(w), so the scheduler never has to re-run wrapper design. w is clamped
  // into [1, w_max].
  Time FlushAt(int w) const;

  // Smallest width whose time is <= the time at w_max (i.e. the width beyond
  // which extra wires buy nothing). This is the highest Pareto width.
  int SaturationWidth() const;

  const std::vector<Time>& times() const { return times_; }

 private:
  std::vector<Time> times_;    // times_[w-1] = T(w)
  std::vector<Time> flushes_;  // flushes_[w-1] = s_i + s_o at width w
};

}  // namespace soctest
